#include <gtest/gtest.h>

#include "graph/random_walk.h"

namespace umgad {
namespace {

SparseMatrix PathGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1});
  return SparseMatrix::FromEdges(n, edges, true);
}

TEST(RwrTest, IncludesSeed) {
  Rng rng(1);
  RwrConfig config;
  config.target_size = 5;
  std::vector<int> sub = SampleRwrSubgraph(PathGraph(20), 10, config, &rng);
  EXPECT_EQ(sub[0], 10);
}

TEST(RwrTest, RespectsTargetSize) {
  Rng rng(2);
  RwrConfig config;
  config.target_size = 6;
  config.max_steps = 10000;
  std::vector<int> sub = SampleRwrSubgraph(PathGraph(50), 25, config, &rng);
  EXPECT_LE(static_cast<int>(sub.size()), 6);
  EXPECT_GE(static_cast<int>(sub.size()), 2);
}

TEST(RwrTest, NodesAreDistinct) {
  Rng rng(3);
  RwrConfig config;
  config.target_size = 8;
  std::vector<int> sub = SampleRwrSubgraph(PathGraph(30), 15, config, &rng);
  std::set<int> uniq(sub.begin(), sub.end());
  EXPECT_EQ(uniq.size(), sub.size());
}

TEST(RwrTest, StaysInComponent) {
  // Two disconnected paths: a walk from the first must never reach the
  // second.
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < 10; ++i) edges.push_back(Edge{i, i + 1});
  for (int i = 10; i + 1 < 20; ++i) edges.push_back(Edge{i, i + 1});
  SparseMatrix adj = SparseMatrix::FromEdges(20, edges, true);
  Rng rng(4);
  RwrConfig config;
  config.target_size = 10;
  std::vector<int> sub = SampleRwrSubgraph(adj, 3, config, &rng);
  for (int v : sub) EXPECT_LT(v, 10);
}

TEST(RwrTest, IsolatedSeedReturnsSelf) {
  SparseMatrix adj = SparseMatrix::FromEdges(5, {Edge{1, 2}}, true);
  Rng rng(5);
  RwrConfig config;
  config.target_size = 4;
  config.max_steps = 50;
  std::vector<int> sub = SampleRwrSubgraph(adj, 0, config, &rng);
  EXPECT_EQ(sub, (std::vector<int>{0}));
}

TEST(RwrTest, DeterministicGivenSeed) {
  SparseMatrix adj = PathGraph(40);
  RwrConfig config;
  config.target_size = 6;
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(SampleRwrSubgraph(adj, 20, config, &a),
            SampleRwrSubgraph(adj, 20, config, &b));
}

TEST(RwrTest, BatchSamplerUsesDistinctSeeds) {
  Rng rng(8);
  RwrConfig config;
  config.target_size = 3;
  std::vector<std::vector<int>> subs =
      SampleRwrSubgraphs(PathGraph(30), 10, config, &rng);
  EXPECT_EQ(subs.size(), 10u);
  std::set<int> seeds;
  for (const auto& s : subs) seeds.insert(s[0]);
  EXPECT_EQ(seeds.size(), 10u);
}

TEST(RwrTest, HighRestartStaysLocal) {
  Rng rng(9);
  RwrConfig config;
  config.target_size = 10;
  config.restart_prob = 0.95;
  config.max_steps = 500;
  std::vector<int> sub = SampleRwrSubgraph(PathGraph(100), 50, config, &rng);
  // With aggressive restarts the walk hugs the seed.
  for (int v : sub) EXPECT_NEAR(v, 50, 10);
}

}  // namespace
}  // namespace umgad
