// Differential tests for the parallel edge-softmax backward and the three
// row-partitioned loss closures against their kept-serial oracles
// (GatAttentionNaive / *LossNaive / EdgeSoftmaxBackwardNaive), across
// UMGAD_THREADS x UMGAD_ARENA through the shared harness. These are the
// acceptance tests of the "no float may change" contract: every comparison
// is MaxAbsDiff == 0, never a tolerance.

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/loss.h"
#include "oracle_harness.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace umgad {
namespace {

using ::umgad::testing::ExpectBitIdentical;
using ::umgad::testing::Tensors;

Tensor Rand(int r, int c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return RandomNormal(r, c, 0.0, scale, &rng);
}

SparseMatrix RandomAdj(int n, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> e;
  for (int k = 0; k < edges; ++k) {
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u != v) e.push_back(Edge{u, v});
  }
  return SparseMatrix::FromEdges(n, e, /*symmetrize=*/true);
}

/// Forward + Backward of a scalar loss over fresh leaves; returns the loss
/// value followed by every leaf's gradient. Rebuilt from scratch per call,
/// as the harness requires.
Tensors LossOutputs(
    const std::vector<Tensor>& inputs,
    const std::function<ag::VarPtr(const std::vector<ag::VarPtr>&)>& build) {
  std::vector<ag::VarPtr> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(ag::Leaf(t));
  ag::VarPtr loss = build(leaves);
  ag::Backward(loss);
  Tensors out{loss->value()};
  for (const auto& leaf : leaves) out.push_back(leaf->grad());
  return out;
}

// ---------------------------------------------------------------------------
// ScaledCosineLoss
// ---------------------------------------------------------------------------

struct CosShape {
  int rows;
  int cols;
  int stride;  // every stride-th row lands in idx
};

class ScaledCosineOracle : public ::testing::TestWithParam<CosShape> {};

TEST_P(ScaledCosineOracle, BitIdenticalToNaive) {
  const CosShape shape = GetParam();
  const int rows = shape.rows;
  const int cols = shape.cols;
  const int stride = shape.stride;
  Tensor recon = Rand(rows, cols, 11);
  Tensor target = Rand(rows, cols, 13);
  std::vector<int> idx;
  for (int i = 0; i < rows; i += stride) idx.push_back(i);
  for (float eta : {1.0f, 2.0f}) {
    ExpectBitIdentical(
        "scaled_cosine",
        [&] {
          return LossOutputs({recon}, [&](const auto& v) {
            return ag::ScaledCosineLoss(v[0], target, idx, eta);
          });
        },
        [&] {
          return LossOutputs({recon}, [&](const auto& v) {
            return ag::ScaledCosineLossNaive(v[0], target, idx, eta);
          });
        });
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScaledCosineOracle,
                         ::testing::Values(CosShape{5, 4, 2},     // tiny
                                           CosShape{256, 48, 1},  // grain edge
                                           CosShape{700, 48, 2},  // crosses it
                                           CosShape{301, 7, 3}));

TEST(ScaledCosineOracleTest, DuplicateRowsFallBackToSerial) {
  // Duplicate targets alias the scatter; the kernel must detect them and
  // reproduce the serial accumulation exactly.
  Tensor recon = Rand(40, 8, 17);
  Tensor target = Rand(40, 8, 19);
  std::vector<int> idx = {3, 7, 3, 12, 7, 3, 30, 12};
  ExpectBitIdentical(
      "scaled_cosine_dup",
      [&] {
        return LossOutputs({recon}, [&](const auto& v) {
          return ag::ScaledCosineLoss(v[0], target, idx, 2.0f);
        });
      },
      [&] {
        return LossOutputs({recon}, [&](const auto& v) {
          return ag::ScaledCosineLossNaive(v[0], target, idx, 2.0f);
        });
      });
}

// ---------------------------------------------------------------------------
// MaskedEdgeSoftmaxCE
// ---------------------------------------------------------------------------

struct EdgeCeShape {
  int n;
  int d;
  int sets;
  int negatives;
};

class EdgeSoftmaxCeOracle : public ::testing::TestWithParam<EdgeCeShape> {};

TEST_P(EdgeSoftmaxCeOracle, BitIdenticalToNaive) {
  const EdgeCeShape shape = GetParam();
  const int n = shape.n;
  const int d = shape.d;
  Tensor z = Rand(n, d, 23, 0.5);
  Rng rng(29);
  // Random sets alias sources and candidates across sets — the worst case
  // for the ownership scatter.
  std::vector<ag::EdgeCandidateSet> sets =
      nn::RandomEdgeCandidates(n, shape.sets, shape.negatives, &rng);
  ExpectBitIdentical(
      "masked_edge_softmax_ce",
      [&] {
        return LossOutputs({z}, [&](const auto& v) {
          return ag::MaskedEdgeSoftmaxCE(v[0], sets);
        });
      },
      [&] {
        return LossOutputs({z}, [&](const auto& v) {
          return ag::MaskedEdgeSoftmaxCENaive(v[0], sets);
        });
      });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EdgeSoftmaxCeOracle,
    ::testing::Values(EdgeCeShape{6, 3, 4, 2},       // tiny, heavy aliasing
                      EdgeCeShape{64, 16, 300, 4},   // many sets, few rows
                      EdgeCeShape{400, 32, 120, 6},  // training-like
                      EdgeCeShape{1000, 48, 256, 4}));

// ---------------------------------------------------------------------------
// DualContrastiveLoss
// ---------------------------------------------------------------------------

struct DualShape {
  int n;
  int d;
};

class DualContrastiveOracle : public ::testing::TestWithParam<DualShape> {};

TEST_P(DualContrastiveOracle, BitIdenticalToNaive) {
  const DualShape shape = GetParam();
  const int n = shape.n;
  const int d = shape.d;
  Tensor zo = Rand(n, d, 31, 0.4);
  Tensor za = Rand(n, d, 37, 0.4);
  Rng rng(41);
  std::vector<int> neg = nn::SampleContrastiveNegatives(n, &rng);
  ExpectBitIdentical(
      "dual_contrastive",
      [&] {
        return LossOutputs({zo, za}, [&](const auto& v) {
          return ag::DualContrastiveLoss(v[0], v[1], neg);
        });
      },
      [&] {
        return LossOutputs({zo, za}, [&](const auto& v) {
          return ag::DualContrastiveLossNaive(v[0], v[1], neg);
        });
      });
}

INSTANTIATE_TEST_SUITE_P(Shapes, DualContrastiveOracle,
                         ::testing::Values(DualShape{3, 4},    // degenerate
                                           DualShape{256, 24},  // grain edge
                                           DualShape{700, 16},  // crosses it
                                           DualShape{90, 48}));

TEST(DualContrastiveOracleTest, SkewedNegativesShareOneRow) {
  // All negatives collapse onto two rows: the scatter's most contended
  // shape, and the one where an unordered reduction would drift first.
  // (Row 9 draws itself — excluded by the real samplers, but the kernel's
  // tie ordering must still match the serial loop.)
  const int n = 300;
  Tensor zo = Rand(n, 12, 43, 0.4);
  Tensor za = Rand(n, 12, 47, 0.4);
  std::vector<int> neg(n);
  for (int i = 0; i < n; ++i) neg[i] = (i % 2 == 0 && i != 8) ? 8 : 9;
  ExpectBitIdentical(
      "dual_contrastive_skew",
      [&] {
        return LossOutputs({zo, za}, [&](const auto& v) {
          return ag::DualContrastiveLoss(v[0], v[1], neg);
        });
      },
      [&] {
        return LossOutputs({zo, za}, [&](const auto& v) {
          return ag::DualContrastiveLossNaive(v[0], v[1], neg);
        });
      });
}

// ---------------------------------------------------------------------------
// GatAttention / edge-softmax backward
// ---------------------------------------------------------------------------

struct GatShape {
  int n;
  int d;
  int edges;
};

class GatAttentionOracle : public ::testing::TestWithParam<GatShape> {};

TEST_P(GatAttentionOracle, BitIdenticalToNaive) {
  const GatShape shape = GetParam();
  const int n = shape.n;
  const int d = shape.d;
  auto adj = std::make_shared<const SparseMatrix>(
      RandomAdj(n, shape.edges, 53).NormalizedWithSelfLoops());
  Tensor h = Rand(n, d, 59, 0.5);
  Tensor a_src = Rand(1, d, 61, 0.5);
  Tensor a_dst = Rand(1, d, 67, 0.5);
  Tensor probe = Rand(n, d, 71);
  // Outputs: attention forward, then grads of h / a_src / a_dst under a
  // random upstream gradient (loss = sum(out .* probe)).
  auto run = [&](bool naive) {
    return [&, naive]() -> Tensors {
      ag::VarPtr hv = ag::Leaf(h);
      ag::VarPtr as = ag::Leaf(a_src);
      ag::VarPtr ad = ag::Leaf(a_dst);
      ag::VarPtr out = naive ? ag::GatAttentionNaive(hv, as, ad, adj, 0.2f)
                             : ag::GatAttention(hv, as, ad, adj, 0.2f);
      ag::Backward(ag::Sum(ag::Hadamard(out, ag::Constant(probe))));
      return Tensors{out->value(), hv->grad(), as->grad(), ad->grad()};
    };
  };
  ExpectBitIdentical("gat_attention", run(false), run(true));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GatAttentionOracle,
    ::testing::Values(GatShape{5, 3, 8},       // tiny
                      GatShape{300, 32, 1200},  // crosses the row grain
                      GatShape{600, 24, 300},   // mostly isolated nodes
                      GatShape{1000, 48, 4000}));

TEST(GatAttentionOracleTest, ConstantFeaturesSkipDh) {
  // h as a Constant: io.dh == nullptr inside the backward kernels; only the
  // attention vectors receive gradients.
  const int n = 200;
  const int d = 16;
  auto adj = std::make_shared<const SparseMatrix>(
      RandomAdj(n, 900, 73).NormalizedWithSelfLoops());
  Tensor h = Rand(n, d, 79, 0.5);
  Tensor probe = Rand(n, d, 83);
  Tensor a_src = Rand(1, d, 89, 0.5);
  Tensor a_dst = Rand(1, d, 97, 0.5);
  auto run = [&](bool naive) {
    return [&, naive]() -> Tensors {
      ag::VarPtr as = ag::Leaf(a_src);
      ag::VarPtr ad = ag::Leaf(a_dst);
      ag::VarPtr out =
          naive
              ? ag::GatAttentionNaive(ag::Constant(h), as, ad, adj, 0.2f)
              : ag::GatAttention(ag::Constant(h), as, ad, adj, 0.2f);
      ag::Backward(ag::Sum(ag::Hadamard(out, ag::Constant(probe))));
      return Tensors{out->value(), as->grad(), ad->grad()};
    };
  };
  ExpectBitIdentical("gat_attention_const_h", run(false), run(true));
}

TEST(EdgeSoftmaxKernelTest, BackwardAccumulatesBitIdentically) {
  // Kernel-level differential, off the tape: real forward state, a random
  // upstream gradient, and accumulators pre-filled with random values to
  // pin the += semantics of both kernels.
  const int n = 350;
  const int d = 20;
  SparseMatrix adj = RandomAdj(n, 1400, 101).NormalizedWithSelfLoops();
  Tensor h = Rand(n, d, 103, 0.5);
  Tensor a_src = Rand(1, d, 107, 0.5);
  Tensor a_dst = Rand(1, d, 109, 0.5);
  Tensor g = Rand(n, d, 113);

  Tensor out;
  std::vector<float> alpha;
  std::vector<char> pos;
  ag::EdgeSoftmaxForwardNaive(adj, 0.2f, h, a_src, a_dst, &out, &alpha, &pos);

  auto run = [&](bool naive) {
    return [&, naive]() -> Tensors {
      Tensor dh = Rand(n, d, 127);
      Tensor das = Rand(1, d, 131);
      Tensor dad = Rand(1, d, 137);
      ag::EdgeSoftmaxGrads io;
      io.g = &g;
      io.h = &h;
      io.a_src = &a_src;
      io.a_dst = &a_dst;
      io.dh = &dh;
      io.da_src = &das;
      io.da_dst = &dad;
      if (naive) {
        ag::EdgeSoftmaxBackwardNaive(adj, 0.2f, alpha, pos, io);
      } else {
        ag::EdgeSoftmaxBackward(adj, 0.2f, alpha, pos, io);
      }
      return Tensors{dh, das, dad};
    };
  };
  ExpectBitIdentical("edge_softmax_backward", run(false), run(true));
}

TEST(EdgeSoftmaxKernelTest, ForwardParallelMatchesNaive) {
  const int n = 500;
  const int d = 24;
  SparseMatrix adj = RandomAdj(n, 2000, 139).NormalizedWithSelfLoops();
  Tensor h = Rand(n, d, 149, 0.5);
  Tensor a_src = Rand(1, d, 151, 0.5);
  Tensor a_dst = Rand(1, d, 157, 0.5);
  auto run = [&](bool naive) {
    return [&, naive]() -> Tensors {
      Tensor out;
      std::vector<float> alpha;
      std::vector<char> pos;
      if (naive) {
        ag::EdgeSoftmaxForwardNaive(adj, 0.2f, h, a_src, a_dst, &out, &alpha,
                                    &pos);
      } else {
        ag::EdgeSoftmaxForward(adj, 0.2f, h, a_src, a_dst, &out, &alpha,
                               &pos);
      }
      Tensor alpha_t(1, static_cast<int>(alpha.size()));
      for (size_t k = 0; k < alpha.size(); ++k) {
        alpha_t.data()[k] = alpha[k];
      }
      return Tensors{out, alpha_t};
    };
  };
  ExpectBitIdentical("edge_softmax_forward", run(false), run(true));
}

}  // namespace
}  // namespace umgad
