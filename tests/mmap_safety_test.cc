// Lifetime and safety pins for the mmap-backed .umgb reader. The mapping
// contract (docs/FORMATS.md) promises: the mapped bytes outlive every view
// handed out — across file deletion, double loads, wrapper destruction, and
// any destruction order; writes can never reach the mapping (the borrowed
// tensor rejects mutable access, the pages themselves are PROT_READ, and
// mutable_attributes() is copy-on-write); and the UMGAD_NO_MMAP knob drops
// to the copying loader with an identical graph. The resident-bytes meter
// is pinned too: a mapped load must not materialise the attribute section.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/datasets.h"
#include "graph/io/binary_format.h"
#include "graph/io/mmap_format.h"
#include "graph/multiplex_graph.h"
#include "oracle_harness.h"
#include "tensor/init.h"

namespace umgad {
namespace {

using umgad::testing::ExpectGraphsBitIdentical;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + ".umgb";
}

/// Saves `g`, loads it back through the mapping, and fails the test if the
/// platform cannot map (callers GTEST_SKIP on !MmapSupported() first).
MappedGraph SaveAndMap(const MultiplexGraph& g, const std::string& path) {
  UMGAD_CHECK(SaveGraphBinary(g, path).ok());
  Result<MappedGraph> mapped = MappedGraph::Load(path);
  UMGAD_CHECK(mapped.ok());
  UMGAD_CHECK(mapped->mapped());
  return std::move(*mapped);
}

TEST(MmapSafetyTest, MappingSurvivesFileDeletion) {
  if (!MmapSupported()) GTEST_SKIP() << "no mmap on this platform";
  const std::string path = TempPath("umgad_mmap_unlink");
  const MultiplexGraph reference = MakeTiny(5);
  MappedGraph mapped = SaveAndMap(reference, path);
  // POSIX keeps the inode alive while the mapping holds a reference; every
  // byte must still read back after the path is gone.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  ExpectGraphsBitIdentical("after unlink", mapped.graph(), reference);
}

TEST(MmapSafetyTest, DoubleLoadYieldsIndependentMappings) {
  if (!MmapSupported()) GTEST_SKIP() << "no mmap on this platform";
  const std::string path = TempPath("umgad_mmap_double");
  const MultiplexGraph reference = MakeTiny(5);
  MappedGraph first = SaveAndMap(reference, path);
  Result<MappedGraph> second = MappedGraph::Load(path);
  ASSERT_TRUE(second.ok());
  // Destroy the first mapping; the second must be unaffected (each load
  // owns its own mapping, nothing is shared or cached between them).
  { MappedGraph discard = std::move(first); }
  ExpectGraphsBitIdentical("second load", second->graph(), reference);
  std::remove(path.c_str());
}

TEST(MmapSafetyTest, GraphOutlivesWrapperAndLayerOutlivesGraph) {
  if (!MmapSupported()) GTEST_SKIP() << "no mmap on this platform";
  const std::string path = TempPath("umgad_mmap_lifetime");
  const MultiplexGraph reference = MakeTiny(5);
  SparseMatrix layer;
  {
    MultiplexGraph graph;
    {
      MappedGraph mapped = SaveAndMap(reference, path);
      graph = mapped.TakeGraph();
      // Wrapper dies here; the views' keepalives hold the mapping.
    }
    ExpectGraphsBitIdentical("after wrapper death", graph, reference);
    layer = graph.layer(0);
    // Graph dies here; the layer's keepalive still holds the mapping.
  }
  EXPECT_EQ(layer.row_ptr(), reference.layer(0).row_ptr());
  EXPECT_EQ(layer.col_idx(), reference.layer(0).col_idx());
  std::remove(path.c_str());
}

TEST(MmapSafetyTest, MutableAttributesIsCopyOnWrite) {
  if (!MmapSupported()) GTEST_SKIP() << "no mmap on this platform";
  const std::string path = TempPath("umgad_mmap_cow");
  const MultiplexGraph reference = MakeTiny(5);
  MappedGraph mapped = SaveAndMap(reference, path);
  MultiplexGraph graph = mapped.TakeGraph();
  ASSERT_TRUE(graph.attributes().borrowed());
  // The first mutable request materialises an owned copy; writes land in
  // the copy and the mapped bytes (re-read via a fresh load) are untouched.
  Tensor& attrs = graph.mutable_attributes();
  EXPECT_FALSE(graph.attributes().borrowed());
  attrs.at(0, 0) = 1234.5f;
  EXPECT_EQ(graph.attributes().at(0, 0), 1234.5f);
  Result<MappedGraph> fresh = MappedGraph::Load(path);
  ASSERT_TRUE(fresh.ok());
  ExpectGraphsBitIdentical("mapped bytes after COW write", fresh->graph(),
                           reference);
  std::remove(path.c_str());
}

TEST(MmapSafetyTest, NoMmapKnobFallsBackToCopyingLoader) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string path = TempPath("umgad_mmap_knob");
  const MultiplexGraph reference = MakeTiny(5);
  ASSERT_TRUE(SaveGraphBinary(reference, path).ok());
  ASSERT_EQ(setenv("UMGAD_NO_MMAP", "1", 1), 0);
  EXPECT_FALSE(MmapSupported());
  Result<MappedGraph> fallback = MappedGraph::Load(path);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->mapped());
  EXPECT_EQ(fallback->resident_bytes(), 0);
  EXPECT_FALSE(fallback->graph().attributes().borrowed());
  ExpectGraphsBitIdentical("fallback", fallback->graph(), reference);
  ASSERT_EQ(unsetenv("UMGAD_NO_MMAP"), 0);
  EXPECT_TRUE(MmapSupported());
  std::remove(path.c_str());
#else
  GTEST_SKIP() << "env knobs are POSIX-only here";
#endif
}

#if defined(POSIX_FADV_DONTNEED)
void EvictFromPageCache(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  fdatasync(fd);
  posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  close(fd);
}

TEST(MmapSafetyTest, LoadDoesNotMaterialiseTheAttributeSection) {
  if (!MmapSupported()) GTEST_SKIP() << "no mmap on this platform";
  // Attribute-heavy graph: 4096 x 128 floats (2 MB) dwarf the CSR arrays,
  // so a loader that faults the attribute section in is unmissable.
  Rng rng(21);
  Tensor x = RandomNormal(4096, 128, 0, 1, &rng);
  SparseMatrix a = SparseMatrix::FromEdges(
      4096, {Edge{0, 1}, Edge{1, 2}, Edge{100, 2000}}, true);
  auto built = MultiplexGraph::Create("fat", std::move(x), {a}, {"r"});
  ASSERT_TRUE(built.ok());
  const std::string path = TempPath("umgad_mmap_resident");
  ASSERT_TRUE(SaveGraphBinary(*built, path).ok());
  EvictFromPageCache(path);
  Result<MappedGraph> mapped = MappedGraph::Load(path);
  ASSERT_TRUE(mapped.ok() && mapped->mapped());
  const int64_t resident = mapped->resident_bytes();
  const int64_t file = mapped->file_bytes();
  EXPECT_GT(resident, 0);
  EXPECT_LE(resident, file);
  // The load reads the header and row_ptr (~32 KB here) and nothing of the
  // 2 MB attribute section; half the file is a generous ceiling that still
  // fails hard if the loader (or stray readahead) pulls attributes in.
  EXPECT_LT(resident, file / 2)
      << "mapped load materialised most of the file";
  std::remove(path.c_str());
}
#endif  // POSIX_FADV_DONTNEED

TEST(MmapSafetyDeathTest, BorrowedTensorRejectsMutableAccess) {
  if (!MmapSupported()) GTEST_SKIP() << "no mmap on this platform";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = TempPath("umgad_mmap_borrowed_write");
  const MultiplexGraph reference = MakeTiny(5);
  MappedGraph mapped = SaveAndMap(reference, path);
  // Tensor's mutable accessors UMGAD_CHECK-fail on borrowed storage — the
  // only sanctioned mutable route is mutable_attributes(), which is COW.
  // (A Tensor *copy* of borrowed storage materialises an owned buffer, so
  // the view itself must be re-borrowed here to exercise the rejection.)
  Tensor view = Tensor::FromBorrowed(
      mapped.graph().attributes().data(), mapped.graph().num_nodes(),
      mapped.graph().feature_dim(), std::make_shared<int>(0));
  ASSERT_TRUE(view.borrowed());
  EXPECT_DEATH({ view.data()[0] = 1.0f; }, "");
  std::remove(path.c_str());
}

TEST(MmapSafetyDeathTest, WritingThroughTheMappingFaults) {
  if (!MmapSupported()) GTEST_SKIP() << "no mmap on this platform";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = TempPath("umgad_mmap_protread");
  const MultiplexGraph reference = MakeTiny(5);
  MappedGraph mapped = SaveAndMap(reference, path);
  // Even a const_cast around every software check dies on the hardware
  // protection: the pages are PROT_READ.
  const float* attr = mapped.graph().attributes().data();
  EXPECT_DEATH(
      { *const_cast<float*>(attr) = 1.0f; }, "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace umgad
