#ifndef UMGAD_TESTS_GOLDEN_SCORES_COMMON_H_
#define UMGAD_TESTS_GOLDEN_SCORES_COMMON_H_

// Shared setup of the golden-score regression fixture: one deterministic
// graph + config, scored by UMGAD (GAT encoder — the edge-softmax backward
// path) and the AnomMAN baseline. The generator
// (tests/golden_scores_gen.cc) serialises the first kGoldenScoreCount
// scores of each as raw double bit patterns into
// tests/golden_scores_fixture.h; golden_scores_test.cc asserts
// bit-equality against them across thread counts and arena modes. Change
// anything here and the fixture must be regenerated:
//
//   cmake --build build --target golden_scores_gen
//   ./build/tests/golden_scores_gen > tests/golden_scores_fixture.h

#include <memory>
#include <vector>

#include "baselines/detector.h"
#include "common/check.h"
#include "core/umgad.h"
#include "graph/datasets.h"

namespace umgad {
namespace testing {

inline constexpr uint64_t kGoldenGraphSeed = 123;
inline constexpr uint64_t kGoldenDetectorSeed = 7;
inline constexpr int kGoldenScoreCount = 32;  // per detector

inline UmgadConfig GoldenUmgadConfig() {
  UmgadConfig config;
  // Small but complete: GAT encoder (default), all three views, both
  // reconstruction branches, contrastive refinement — every parallel loss
  // and the edge-softmax backward sit on this path.
  config.epochs = 8;
  config.hidden_dim = 16;
  config.mask_repeats = 2;
  config.num_subgraphs = 2;
  config.subgraph_size = 6;
  config.seed = kGoldenDetectorSeed;
  return config;
}

inline std::vector<double> GoldenUmgadScores() {
  MultiplexGraph graph = MakeTiny(kGoldenGraphSeed);
  UmgadModel model(GoldenUmgadConfig());
  UMGAD_CHECK(model.Fit(graph).ok());
  std::vector<double> scores = model.scores();
  scores.resize(kGoldenScoreCount);
  return scores;
}

inline std::vector<double> GoldenAnomManScores() {
  MultiplexGraph graph = MakeTiny(kGoldenGraphSeed);
  Result<std::unique_ptr<Detector>> detector =
      MakeDetector("AnomMAN", kGoldenDetectorSeed);
  UMGAD_CHECK(detector.ok());
  UMGAD_CHECK((*detector)->Fit(graph).ok());
  std::vector<double> scores = (*detector)->scores();
  scores.resize(kGoldenScoreCount);
  return scores;
}

}  // namespace testing
}  // namespace umgad

#endif  // UMGAD_TESTS_GOLDEN_SCORES_COMMON_H_
