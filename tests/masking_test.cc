#include <set>

#include <gtest/gtest.h>

#include "core/masking.h"
#include "tensor/init.h"

namespace umgad {
namespace {

TEST(MaskingTest, SampleMaskedNodesCount) {
  Rng rng(1);
  std::vector<int> masked = SampleMaskedNodes(100, 0.4, &rng);
  EXPECT_EQ(masked.size(), 40u);
  std::set<int> uniq(masked.begin(), masked.end());
  EXPECT_EQ(uniq.size(), 40u);
}

TEST(MaskingTest, SampleMaskedNodesAtLeastOne) {
  Rng rng(2);
  EXPECT_EQ(SampleMaskedNodes(50, 0.0, &rng).size(), 1u);
  EXPECT_EQ(SampleMaskedNodes(50, 1.0, &rng).size(), 50u);
}

TEST(MaskingTest, AttributeSwapChangesOnlySwappedRows) {
  Rng data_rng(3);
  Tensor x = RandomNormal(50, 6, 0, 1, &data_rng);
  Rng rng(4);
  AttributeSwap swap = MakeAttributeSwap(x, 0.2, &rng);
  EXPECT_EQ(swap.swapped_nodes.size(), 10u);
  std::set<int> swapped(swap.swapped_nodes.begin(),
                        swap.swapped_nodes.end());
  for (int i = 0; i < 50; ++i) {
    const double diff =
        MaxAbsDiff(GatherRows(x, {i}), GatherRows(swap.augmented, {i}));
    if (swapped.count(i) == 0) {
      EXPECT_LT(diff, 1e-9) << "non-swapped row " << i << " changed";
    }
  }
}

TEST(MaskingTest, AttributeSwapCopiesExistingRow) {
  Rng data_rng(5);
  Tensor x = RandomNormal(30, 4, 0, 1, &data_rng);
  Rng rng(6);
  AttributeSwap swap = MakeAttributeSwap(x, 0.3, &rng);
  // Every swapped row must equal some other original row.
  for (int i : swap.swapped_nodes) {
    bool found = false;
    for (int j = 0; j < 30 && !found; ++j) {
      if (j == i) continue;
      found = MaxAbsDiff(GatherRows(swap.augmented, {i}),
                         GatherRows(x, {j})) < 1e-9;
    }
    EXPECT_TRUE(found) << "swapped row " << i << " matches no source";
  }
}

SparseMatrix GridGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1});
  for (int i = 0; i + 5 < n; ++i) edges.push_back(Edge{i, i + 5});
  return SparseMatrix::FromEdges(n, edges, true);
}

TEST(MaskingTest, SubgraphMaskRemovesIncidentEdges) {
  Rng rng(7);
  SparseMatrix adj = GridGraph(60);
  SubgraphMask mask = MakeSubgraphMask(adj, 3, 5, 0.3, &rng);
  EXPECT_FALSE(mask.masked_nodes.empty());
  for (int v : mask.masked_nodes) {
    EXPECT_EQ(mask.remaining.RowNnz(v), 0)
        << "masked node " << v << " still has edges";
  }
}

TEST(MaskingTest, SubgraphMaskEdgesAccountedFor) {
  Rng rng(8);
  SparseMatrix adj = GridGraph(60);
  SubgraphMask mask = MakeSubgraphMask(adj, 2, 6, 0.3, &rng);
  // remaining nnz + 2 * removed undirected (non-loop) edges == original.
  int64_t removed_directed = 0;
  for (const Edge& e : mask.removed_edges) {
    removed_directed += e.src == e.dst ? 1 : 2;
  }
  EXPECT_EQ(mask.remaining.nnz() + removed_directed, adj.nnz());
}

TEST(MaskingTest, SubgraphMaskSizeScalesWithCount) {
  Rng rng(9);
  SparseMatrix adj = GridGraph(100);
  SubgraphMask small = MakeSubgraphMask(adj, 1, 4, 0.3, &rng);
  SubgraphMask large = MakeSubgraphMask(adj, 8, 8, 0.3, &rng);
  EXPECT_LT(small.masked_nodes.size(), large.masked_nodes.size());
}

}  // namespace
}  // namespace umgad
