// Cross-loader differential harness: every on-disk representation of a
// graph must load back bit-for-bit identically — text v1, binary v3
// through the copying reader, binary v3 through the mmap reader, and the
// edge-list dialect through both the serial and the forced-multi-chunk
// importer — for every registry dataset and any thread count. This is the
// io analogue of the kernel oracle sweeps: the reference is the in-memory
// graph the generators built, and each loader is an independent
// implementation that must reproduce its exact bits (memcmp on floats, so
// the check is NaN-proof and catches any precision loss).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "graph/datasets.h"
#include "graph/io/binary_format.h"
#include "graph/io/edge_list.h"
#include "graph/io/mmap_format.h"
#include "graph/io/text_format.h"
#include "oracle_harness.h"

namespace umgad {
namespace {

using umgad::testing::ExpectGraphsBitIdentical;

MultiplexGraph BuildDataset(const std::string& name) {
  if (name == "Tiny") return MakeTiny(7);
  // Small but structurally non-trivial: multiple relations, subset layers,
  // injected anomalies, isolated tail nodes at this scale.
  Result<MultiplexGraph> g = MakeDataset(name, /*seed=*/7, /*scale=*/0.03);
  UMGAD_CHECK(g.ok());
  return std::move(*g);
}

class IoDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IoDifferentialTest, AllLoadersBitIdentical) {
  const std::string name = GetParam();
  const MultiplexGraph reference = BuildDataset(name);

  const std::string base = ::testing::TempDir() + "/umgad_iodiff_" + name;
  const std::string text_path = base + ".txt";
  const std::string binary_path = base + ".umgb";
  const std::string edges_path = base + ".tsv";
  const std::string features_path = base + "_features.tsv";
  const std::string labels_path = base + "_labels.tsv";

  ASSERT_TRUE(SaveGraph(reference, text_path).ok());
  ASSERT_TRUE(SaveGraphBinary(reference, binary_path).ok());
  ASSERT_TRUE(
      ExportEdgeList(reference, edges_path, features_path, labels_path).ok());

  EdgeListOptions import;
  import.name = reference.name();
  import.features_path = features_path;
  import.labels_path = labels_path;
  for (int r = 0; r < reference.num_relations(); ++r) {
    import.relation_names.push_back(reference.relation_name(r));
  }

  const int saved_threads = NumThreads();
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    const std::string tag =
        name + " threads=" + std::to_string(threads) + " ";

    Result<MultiplexGraph> text = LoadGraph(text_path);
    ASSERT_TRUE(text.ok()) << tag << text.status().message();
    ExpectGraphsBitIdentical(tag + "text", *text, reference);

    Result<MultiplexGraph> binary = LoadGraphBinary(binary_path);
    ASSERT_TRUE(binary.ok()) << tag << binary.status().message();
    ExpectGraphsBitIdentical(tag + "binary", *binary, reference);

    Result<MappedGraph> mapped = MappedGraph::Load(binary_path);
    ASSERT_TRUE(mapped.ok()) << tag << mapped.status().message();
    EXPECT_EQ(mapped->mapped(), MmapSupported()) << tag;
    ExpectGraphsBitIdentical(tag + "mmap", mapped->graph(), reference);

    EdgeListOptions serial = import;
    serial.parallel = false;
    Result<MultiplexGraph> from_serial = ImportEdgeList(edges_path, serial);
    ASSERT_TRUE(from_serial.ok()) << tag << from_serial.status().message();
    ExpectGraphsBitIdentical(tag + "edge-list serial", *from_serial,
                             reference);

    // Force a multi-chunk merge even on these small files so the
    // chunk-boundary and merge logic is exercised, not just the
    // one-chunk fast path.
    EdgeListOptions chunked = import;
    chunked.import_chunks = 5;
    Result<MultiplexGraph> from_chunks = ImportEdgeList(edges_path, chunked);
    ASSERT_TRUE(from_chunks.ok()) << tag << from_chunks.status().message();
    ExpectGraphsBitIdentical(tag + "edge-list chunked", *from_chunks,
                             reference);
  }
  SetNumThreads(saved_threads);

  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());
  std::remove(edges_path.c_str());
  std::remove(features_path.c_str());
  std::remove(labels_path.c_str());
}

std::string ParamName(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string out;
  for (const char c : info.param) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      out.push_back(c);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, IoDifferentialTest,
                         ::testing::Values("Retail", "Alibaba", "Amazon",
                                           "YelpChi", "DG-Fin", "T-Social",
                                           "Tiny"),
                         ParamName);

}  // namespace
}  // namespace umgad
