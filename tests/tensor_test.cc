#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "oracle_harness.h"
#include "tensor/init.h"
#include "tensor/tensor.h"

namespace umgad {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  return RandomNormal(r, c, 0.0, 1.0, &rng);
}

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.at(2, 3), 0.0f);
  EXPECT_EQ(t.ShapeString(), "(3, 4)");
}

TEST(TensorTest, FullAndIdentity) {
  Tensor f = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(f.at(1, 1), 3.5f);
  Tensor id = Tensor::Identity(3);
  EXPECT_EQ(id.at(0, 0), 1.0f);
  EXPECT_EQ(id.at(0, 1), 0.0f);
  EXPECT_DOUBLE_EQ(id.Sum(), 3.0);
}

TEST(TensorTest, RowVector) {
  Tensor v = Tensor::RowVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.cols(), 3);
  EXPECT_EQ(v.at(0, 2), 3.0f);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Tensor::Full(2, 2, 2.0f);
  a.AddInPlace(b);
  EXPECT_EQ(a.at(0, 0), 3.0f);
  a.AxpyInPlace(-2.0f, b);
  EXPECT_EQ(a.at(1, 1), -1.0f);
  a.ScaleInPlace(-3.0f);
  EXPECT_EQ(a.at(0, 1), 3.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t(2, 2, {1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_DOUBLE_EQ(t.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(t.Max(), 3.0);
  EXPECT_DOUBLE_EQ(t.Min(), -4.0);
  EXPECT_DOUBLE_EQ(t.SquaredNorm(), 1 + 4 + 9 + 16);
  EXPECT_TRUE(t.AllFinite());
  t.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.AllFinite());
}

TEST(TensorTest, RowNormAndDot) {
  Tensor t(2, 2, {3.0f, 4.0f, 1.0f, 0.0f});
  EXPECT_DOUBLE_EQ(t.RowNorm(0), 5.0);
  EXPECT_DOUBLE_EQ(t.RowDot(0, t, 1), 3.0);
}

TEST(TensorTest, ScalarAccessor) {
  Tensor t(1, 1, {7.0f});
  EXPECT_EQ(t.scalar(), 7.0f);
}

TEST(TensorTest, MatMulHandValues) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatMulIdentityIsNoop) {
  Tensor a = RandomTensor(4, 4, 1);
  EXPECT_LT(MaxAbsDiff(MatMul(a, Tensor::Identity(4)), a), 1e-6);
  EXPECT_LT(MaxAbsDiff(MatMul(Tensor::Identity(4), a), a), 1e-6);
}

struct MatShapes {
  int m;
  int k;
  int n;
};

class MatMulProperty : public ::testing::TestWithParam<MatShapes> {};

TEST_P(MatMulProperty, TransposedVariantsAgree) {
  const auto [m, k, n] = GetParam();
  Tensor a = RandomTensor(m, k, 11);
  Tensor b = RandomTensor(k, n, 13);
  Tensor c = MatMul(a, b);
  // A * B == (A * B) via MatMulTransB(A, B^T) and MatMulTransA(A^T, B).
  EXPECT_LT(MaxAbsDiff(c, MatMulTransB(a, Transpose(b))), 1e-4);
  EXPECT_LT(MaxAbsDiff(c, MatMulTransA(Transpose(a), b)), 1e-4);
  // (A * B)^T == B^T * A^T.
  EXPECT_LT(MaxAbsDiff(Transpose(c), MatMul(Transpose(b), Transpose(a))),
            1e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulProperty,
                         ::testing::Values(MatShapes{1, 1, 1},
                                           MatShapes{2, 3, 4},
                                           MatShapes{5, 1, 7},
                                           MatShapes{8, 8, 8},
                                           MatShapes{3, 17, 2},
                                           MatShapes{16, 5, 11}));

// Cross-checks of the blocked/parallel kernels against the naive reference
// loops — through the shared differential-oracle harness, so every shape
// also sweeps UMGAD_THREADS x UMGAD_ARENA — on shapes that exercise every
// edge of the tiling: non-square, odd-size, single row/column, panel-width
// (64) boundaries, and micro-kernel row (8) boundaries. MatMul and
// MatMulTransA preserve the reference kernels' ascending-k float
// accumulation, so they must agree bit-exactly; MatMulTransB replaces the
// reference's double accumulation with float, so it gets a small tolerance
// scaled by depth.
class MatMulVsNaive : public ::testing::TestWithParam<MatShapes> {};

TEST_P(MatMulVsNaive, BlockedMatchesNaive) {
  const MatShapes shape = GetParam();
  Tensor a = RandomTensor(shape.m, shape.k, 101);
  Tensor b = RandomTensor(shape.k, shape.n, 103);
  umgad::testing::ExpectBitIdentical(
      "matmul", [&] { return umgad::testing::Tensors{MatMul(a, b)}; },
      [&] { return umgad::testing::Tensors{MatMulNaive(a, b)}; });
}

TEST_P(MatMulVsNaive, TransAMatchesNaive) {
  const MatShapes shape = GetParam();
  Tensor a = RandomTensor(shape.k, shape.m, 107);  // (k,m): A^T is (m,k)
  Tensor b = RandomTensor(shape.k, shape.n, 109);
  umgad::testing::ExpectBitIdentical(
      "matmul_trans_a",
      [&] { return umgad::testing::Tensors{MatMulTransA(a, b)}; },
      [&] { return umgad::testing::Tensors{MatMulTransANaive(a, b)}; });
}

TEST_P(MatMulVsNaive, TransBMatchesNaiveWithinFloatAccumulation) {
  const MatShapes shape = GetParam();
  Tensor a = RandomTensor(shape.m, shape.k, 113);
  Tensor b = RandomTensor(shape.n, shape.k, 127);  // (n,k): B^T is (k,n)
  umgad::testing::OracleSweep sweep;
  sweep.tolerance = 1e-6 * shape.k * 8.0 + 1e-6;
  umgad::testing::ExpectBitIdentical(
      "matmul_trans_b",
      [&] { return umgad::testing::Tensors{MatMulTransB(a, b)}; },
      [&] { return umgad::testing::Tensors{MatMulTransBNaive(a, b)}; },
      sweep);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulVsNaive,
    ::testing::Values(MatShapes{1, 1, 1},        // degenerate
                      MatShapes{7, 13, 9},       // small odd (naive path)
                      MatShapes{64, 64, 64},     // exact panel boundary
                      MatShapes{65, 63, 65},     // just past/short of panels
                      MatShapes{129, 65, 200},   // odd rows, 8-row remainder
                      MatShapes{8, 300, 1},      // single output column
                      MatShapes{1, 300, 90},     // single output row
                      MatShapes{250, 3, 250},    // shallow k
                      MatShapes{100, 257, 31},   // sub-panel n, odd k
                      MatShapes{1000, 48, 32})); // GMAE projection shape

TEST(TensorTest, MatMulThreadCountInvariance) {
  Tensor a = RandomTensor(143, 77, 131);
  Tensor b = RandomTensor(77, 180, 137);
  SetNumThreads(1);
  Tensor c1 = MatMul(a, b);
  SetNumThreads(4);
  Tensor c4 = MatMul(a, b);
  SetNumThreads(1);
  EXPECT_EQ(MaxAbsDiff(c1, c4), 0.0);
}

TEST(TensorTest, ElementwiseOpsThreadCountInvariance) {
  // Big enough to cross the parallel-dispatch threshold (32k entries).
  Tensor a = RandomTensor(300, 200, 139);
  Tensor b = RandomTensor(300, 200, 149);
  SetNumThreads(4);
  Tensor sum = Add(a, b);
  Tensor had = Hadamard(a, b);
  SetNumThreads(1);
  Tensor sum_serial = Add(a, b);
  Tensor had_serial = Hadamard(a, b);
  EXPECT_EQ(MaxAbsDiff(sum, sum_serial), 0.0);
  EXPECT_EQ(MaxAbsDiff(had, had_serial), 0.0);
}

TEST(TensorTest, TransposeInvolution) {
  Tensor a = RandomTensor(3, 5, 17);
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 1e-7);
}

TEST(TensorTest, AddSubHadamardScale) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {4, 5, 6});
  EXPECT_EQ(Add(a, b).at(0, 2), 9.0f);
  EXPECT_EQ(Sub(b, a).at(0, 0), 3.0f);
  EXPECT_EQ(Hadamard(a, b).at(0, 1), 10.0f);
  EXPECT_EQ(Scale(a, 2.0f).at(0, 2), 6.0f);
}

TEST(TensorTest, GatherRowsPicksRows) {
  Tensor a(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);
  EXPECT_EQ(g.at(2, 1), 6.0f);
}

TEST(TensorTest, RowL2NormalizeMakesUnitRows) {
  Tensor a = RandomTensor(5, 4, 19);
  Tensor n = RowL2Normalize(a);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(n.RowNorm(i), 1.0, 1e-5);
}

TEST(TensorTest, RowL2NormalizeKeepsZeroRows) {
  Tensor a(2, 3);
  a.at(1, 0) = 2.0f;
  Tensor n = RowL2Normalize(a);
  EXPECT_EQ(n.at(0, 0), 0.0f);
  EXPECT_NEAR(n.at(1, 0), 1.0f, 1e-6);
}

TEST(TensorTest, RowCosineBounds) {
  Tensor a = RandomTensor(10, 6, 23);
  Tensor b = RandomTensor(10, 6, 29);
  Tensor cos = RowCosine(a, b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(cos.at(i, 0), -1.0001f);
    EXPECT_LE(cos.at(i, 0), 1.0001f);
  }
  Tensor self = RowCosine(a, a);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(self.at(i, 0), 1.0f, 1e-5);
}

TEST(TensorTest, RowDistances) {
  Tensor a(1, 2, {0.0f, 0.0f});
  Tensor b(1, 2, {3.0f, 4.0f});
  EXPECT_NEAR(RowL2Distance(a, b).at(0, 0), 5.0f, 1e-6);
  EXPECT_NEAR(RowL1Distance(a, b).at(0, 0), 7.0f, 1e-6);
}

TEST(InitTest, XavierBoundsRespected) {
  Rng rng(31);
  Tensor w = XavierUniform(20, 30, &rng);
  const double bound = std::sqrt(6.0 / 50.0);
  EXPECT_LE(w.Max(), bound + 1e-6);
  EXPECT_GE(w.Min(), -bound - 1e-6);
}

TEST(InitTest, HeNormalScale) {
  Rng rng(37);
  Tensor w = HeNormal(100, 50, &rng);
  const double var = w.SquaredNorm() / w.size();
  EXPECT_NEAR(var, 2.0 / 100.0, 0.005);
}

TEST(InitTest, RandomNormalMoments) {
  Rng rng(41);
  Tensor w = RandomNormal(80, 80, 1.0, 0.5, &rng);
  EXPECT_NEAR(w.Sum() / w.size(), 1.0, 0.02);
}

TEST(InitTest, RandomUniformRange) {
  Rng rng(43);
  Tensor w = RandomUniform(30, 30, -2.0, 3.0, &rng);
  EXPECT_GE(w.Min(), -2.0);
  EXPECT_LT(w.Max(), 3.0);
}

}  // namespace
}  // namespace umgad
