// The dataset io subsystem: bit-exact round trips through both on-disk
// formats for every registered dataset, malformed-file error paths for
// each loader, the generic edge-list importer, and LoadDataset's
// dispatch/UMGAD_DATASET_DIR resolution.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/dataset_registry.h"
#include "graph/datasets.h"
#include "graph/io/binary_format.h"
#include "graph/io/edge_list.h"
#include "graph/io/graph_io.h"
#include "graph/io/text_format.h"

namespace umgad {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void ExpectBitIdentical(const MultiplexGraph& actual,
                        const MultiplexGraph& expected) {
  EXPECT_EQ(actual.name(), expected.name());
  ASSERT_EQ(actual.num_nodes(), expected.num_nodes());
  ASSERT_EQ(actual.num_relations(), expected.num_relations());
  ASSERT_EQ(actual.feature_dim(), expected.feature_dim());
  EXPECT_EQ(actual.labels(), expected.labels());
  for (int r = 0; r < actual.num_relations(); ++r) {
    EXPECT_EQ(actual.relation_name(r), expected.relation_name(r));
    EXPECT_EQ(actual.layer(r).row_ptr(), expected.layer(r).row_ptr());
    EXPECT_EQ(actual.layer(r).col_idx(), expected.layer(r).col_idx());
    EXPECT_EQ(actual.layer(r).values(), expected.layer(r).values());
  }
  EXPECT_EQ(MaxAbsDiff(actual.attributes(), expected.attributes()), 0.0);
}

/// Small but real instance of a registered dataset (both anomaly regimes
/// are covered by the parameterised sweep below).
MultiplexGraph BuildSmall(const std::string& name) {
  const DatasetSpec* spec = DatasetRegistry::Global().Find(name);
  UMGAD_CHECK(spec != nullptr);
  const double scale = spec->group == DatasetGroup::kLarge ? 0.01 : 0.05;
  return BuildDataset(*spec, /*seed=*/17, scale);
}

// ------------------------- round trips ------------------------------------

class RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTrip, TextIsBitExact) {
  MultiplexGraph g = BuildSmall(GetParam());
  const std::string path = TempPath(GetParam() + "_rt.txt");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitIdentical(*loaded, g);
  std::remove(path.c_str());
}

TEST_P(RoundTrip, BinaryIsBitExact) {
  MultiplexGraph g = BuildSmall(GetParam());
  const std::string path = TempPath(GetParam() + "_rt.umgb");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitIdentical(*loaded, g);
  std::remove(path.c_str());
}

TEST_P(RoundTrip, TextToBinaryToTextIsBitExact) {
  MultiplexGraph g = BuildSmall(GetParam());
  const std::string text1 = TempPath(GetParam() + "_c1.txt");
  const std::string binary = TempPath(GetParam() + "_c.umgb");
  ASSERT_TRUE(SaveGraph(g, text1).ok());
  auto from_text = LoadGraph(text1);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(SaveGraphBinary(*from_text, binary).ok());
  auto from_binary = LoadGraphBinary(binary);
  ASSERT_TRUE(from_binary.ok());
  ExpectBitIdentical(*from_binary, g);
  std::remove(text1.c_str());
  std::remove(binary.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, RoundTrip,
                         ::testing::Values("Retail", "Alibaba", "Amazon",
                                           "YelpChi", "DG-Fin", "T-Social",
                                           "Tiny"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

MultiplexGraph GraphWithSpacedNames() {
  Tensor x(4, 2);
  x.at(0, 0) = 0.5f;
  x.at(3, 1) = -2.25f;
  SparseMatrix a = SparseMatrix::FromEdges(4, {Edge{0, 1}, Edge{2, 3}}, true);
  auto g = MultiplexGraph::Create("my spaced dataset", std::move(x), {a},
                                  {"relation with spaces"}, {0, 1, 0, 0});
  UMGAD_CHECK(g.ok());
  return *std::move(g);
}

TEST(TextFormatTest, NamesWithSpacesRoundTrip) {
  MultiplexGraph g = GraphWithSpacedNames();
  const std::string path = TempPath("spaced.txt");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "my spaced dataset");
  EXPECT_EQ(loaded->relation_name(0), "relation with spaces");
  ExpectBitIdentical(*loaded, g);
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, NamesWithSpacesRoundTrip) {
  MultiplexGraph g = GraphWithSpacedNames();
  const std::string path = TempPath("spaced.umgb");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitIdentical(*loaded, g);
  std::remove(path.c_str());
}

// ------------------------- text error paths -------------------------------

std::string ValidTextHeader() {
  return "umgad-graph v1\nname t\nnodes 4\nfeatures 2\nrelations 1\n"
         "labeled 0\n";
}

TEST(TextFormatTest, LoadsCrlfFiles) {
  // Files edited or written on Windows carry \r\n endings; the loader must
  // not embed '\r' in names nor fail the strict relation-count parse.
  MultiplexGraph g = MakeTiny(11);
  const std::string unix_path = TempPath("crlf_src.txt");
  const std::string crlf_path = TempPath("crlf.txt");
  ASSERT_TRUE(SaveGraph(g, unix_path).ok());
  std::string content = ReadFile(unix_path);
  std::string crlf;
  for (char c : content) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  WriteFile(crlf_path, crlf);
  auto loaded = LoadGraph(crlf_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitIdentical(*loaded, g);
  std::remove(unix_path.c_str());
  std::remove(crlf_path.c_str());
}

TEST(TextFormatTest, RejectsGarbageAndMissingFile) {
  const std::string path = TempPath("garbage.txt");
  WriteFile(path, "not a graph\n");
  EXPECT_FALSE(LoadGraph(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadGraph("/nonexistent/path.txt").ok());
}

TEST(TextFormatTest, EmptyRelationRoundTrips) {
  // A relation layer with zero edges (the importer produces these for
  // pinned-but-unused relation names) must survive the text format: the
  // loader may only skip operator>>'s trailing newline when edges were
  // actually read.
  Tensor x(3, 2);
  x.at(1, 0) = 4.0f;
  SparseMatrix a = SparseMatrix::FromEdges(3, {Edge{0, 1}}, true);
  SparseMatrix empty = SparseMatrix::FromEdges(3, {}, true);
  auto g = MultiplexGraph::Create("with-empty", std::move(x), {a, empty},
                                  {"a", "empty"}, {0, 0, 1});
  ASSERT_TRUE(g.ok());
  const std::string path = TempPath("empty_rel.txt");
  ASSERT_TRUE(SaveGraph(*g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitIdentical(*loaded, *g);
  EXPECT_EQ(loaded->num_edges(1), 0);
  std::remove(path.c_str());
}

TEST(TextFormatTest, RejectsNegativeEdgeCount) {
  const std::string path = TempPath("neg_edges.txt");
  WriteFile(path, ValidTextHeader() + "relation r -3\nattributes\n");
  auto result = LoadGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("negative edge count"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TextFormatTest, RejectsDuplicateRelationNames) {
  const std::string path = TempPath("dup_rel.txt");
  WriteFile(path,
            "umgad-graph v1\nname t\nnodes 4\nfeatures 2\nrelations 2\n"
            "labeled 0\nrelation r 1\n0 1\nrelation r 1\n2 3\n");
  auto result = LoadGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate relation"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TextFormatTest, RejectsOversizedHeader) {
  const std::string path = TempPath("oversized.txt");
  WriteFile(path,
            "umgad-graph v1\nname t\nnodes 2000000000\nfeatures 2000000\n"
            "relations 1\nlabeled 0\n");
  auto result = LoadGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("oversized"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TextFormatTest, CorruptEdgeCountFailsWithoutOom) {
  // An absurd edge count must fail on the truncated list, not allocate.
  const std::string path = TempPath("huge_count.txt");
  WriteFile(path, ValidTextHeader() + "relation r 4000000000\n0 1\n");
  auto result = LoadGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("truncated edge list"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TextFormatTest, RejectsOutOfRangeEdgesAndTruncatedSections) {
  const std::string out_of_range = TempPath("oor.txt");
  WriteFile(out_of_range, ValidTextHeader() + "relation r 1\n0 9\n");
  EXPECT_EQ(LoadGraph(out_of_range).status().code(), StatusCode::kOutOfRange);
  std::remove(out_of_range.c_str());

  const std::string no_attributes = TempPath("no_attr.txt");
  WriteFile(no_attributes, ValidTextHeader() + "relation r 1\n0 1\n");
  EXPECT_FALSE(LoadGraph(no_attributes).ok());
  std::remove(no_attributes.c_str());

  const std::string short_attributes = TempPath("short_attr.txt");
  WriteFile(short_attributes,
            ValidTextHeader() + "relation r 1\n0 1\nattributes\n0.5 1.0\n");
  auto result = LoadGraph(short_attributes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("truncated attribute"),
            std::string::npos);
  std::remove(short_attributes.c_str());
}

// ------------------------- binary error paths -----------------------------

TEST(BinaryFormatTest, RejectsBadMagicAndVersion) {
  const std::string path = TempPath("bad_magic.umgb");
  WriteFile(path, "XXXXYYYYZZZZ");
  auto result = LoadGraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("not a umgad binary"),
            std::string::npos);

  // Valid magic, wrong version byte.
  MultiplexGraph g = MakeTiny(1);
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  bytes[4] = 0x7f;  // version field
  WriteFile(path, bytes);
  result = LoadGraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unsupported binary graph"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsTruncation) {
  MultiplexGraph g = MakeTiny(2);
  const std::string path = TempPath("trunc.umgb");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  const std::string bytes = ReadFile(path);
  // Cut at several depths: mid-header, mid-CSR, and just before the
  // trailer (the trailer is what catches a file missing only its tail).
  for (size_t cut : {size_t{6}, size_t{40}, bytes.size() / 2,
                     bytes.size() - 2}) {
    WriteFile(path, bytes.substr(0, cut));
    EXPECT_FALSE(LoadGraphBinary(path).ok()) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, CorruptNnzFailsWithoutOom) {
  MultiplexGraph g = MakeTiny(3);
  const std::string path = TempPath("corrupt_nnz.umgb");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  // The first relation's nnz field sits after magic/version/flags (12),
  // name (4 + 4), node/feature/relation counts (24), and the relation
  // name "rel-a" (4 + 5).
  const size_t nnz_offset = 12 + 8 + 24 + 9;
  for (int b = 0; b < 8; ++b) {
    bytes[nnz_offset + b] = static_cast<char>(0xff);
  }
  WriteFile(path, bytes);
  auto result = LoadGraphBinary(path);
  ASSERT_FALSE(result.ok());

  // A count crafted so that count * sizeof(T) wraps int64 to a small
  // positive number must still be rejected (the size check divides
  // instead of multiplying).
  const uint64_t wrapping_nnz = 0x2000000000000001ULL;  // * 8 wraps to 8
  for (int b = 0; b < 8; ++b) {
    bytes[nnz_offset + b] =
        static_cast<char>((wrapping_nnz >> (8 * b)) & 0xff);
  }
  WriteFile(path, bytes);
  result = LoadGraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("corrupt"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsCorruptCsr) {
  MultiplexGraph g = MakeTiny(4);
  const std::string path = TempPath("corrupt_csr.umgb");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  // v3 zero-pads to an 8-byte boundary between the nnz field (ends at 61)
  // and the row_ptr array, so row_ptr starts at 64.
  const size_t row_ptr_offset = 12 + 8 + 24 + 9 + 8 + 3;
  // row_ptr[0] must be 0; make it wild.
  bytes[row_ptr_offset] = 0x33;
  WriteFile(path, bytes);
  auto result = LoadGraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row_ptr"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, WriterEnforcesNameCap) {
  // A name the reader would reject must not be writable in the first
  // place (the library must never produce a file it cannot read back).
  Tensor x(2, 1);
  SparseMatrix a = SparseMatrix::FromEdges(2, {Edge{0, 1}}, true);
  auto g = MultiplexGraph::Create(std::string(5000, 'x'), std::move(x), {a},
                                  {"r"});
  ASSERT_TRUE(g.ok());
  const std::string path = TempPath("long_name.umgb");
  auto saved = SaveGraphBinary(*g, path);
  ASSERT_FALSE(saved.ok());
  EXPECT_NE(saved.message().find("format cap"), std::string::npos);
}

TEST(BinaryFormatTest, SniffsFormat) {
  MultiplexGraph g = MakeTiny(5);
  const std::string binary = TempPath("sniff.umgb");
  const std::string text = TempPath("sniff.txt");
  ASSERT_TRUE(SaveGraphBinary(g, binary).ok());
  ASSERT_TRUE(SaveGraph(g, text).ok());
  EXPECT_TRUE(LooksLikeBinaryGraph(binary));
  EXPECT_FALSE(LooksLikeBinaryGraph(text));
  EXPECT_FALSE(LooksLikeBinaryGraph("/nonexistent"));
  std::remove(binary.c_str());
  std::remove(text.c_str());
}

// ------------------------- edge-list importer -----------------------------

TEST(EdgeListTest, ImportsTsvWithRelationsFeaturesAndLabels) {
  const std::string edges = TempPath("import.tsv");
  const std::string features = TempPath("import_features.tsv");
  const std::string labels = TempPath("import_labels.txt");
  WriteFile(edges,
            "# comment line\n"
            "src\tdst\trelation\n"
            "0\t1\tfollows\n"
            "1\t2\tfollows\n"
            "0\t3\ttransacts\n"
            "2\t3\ttransacts\n");
  WriteFile(features, "1.0\t0.5\n0.25\t-1\n0\t0\n2\t3\n");
  WriteFile(labels, "0\n0\n1\n0\n");

  EdgeListOptions options;
  options.name = "imported-tsv";
  options.features_path = features;
  options.labels_path = labels;
  auto graph = ImportEdgeList(edges, options);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->name(), "imported-tsv");
  EXPECT_EQ(graph->num_nodes(), 4);
  EXPECT_EQ(graph->num_relations(), 2);
  EXPECT_EQ(graph->relation_name(0), "follows");
  EXPECT_EQ(graph->relation_name(1), "transacts");
  EXPECT_EQ(graph->num_edges(0), 2);
  EXPECT_EQ(graph->num_edges(1), 2);
  EXPECT_EQ(graph->feature_dim(), 2);
  EXPECT_EQ(graph->attributes().at(3, 1), 3.0f);
  EXPECT_EQ(graph->num_anomalies(), 1);
  std::remove(edges.c_str());
  std::remove(features.c_str());
  std::remove(labels.c_str());
}

TEST(EdgeListTest, ImportsCsvAndWhitespaceWithoutSideFiles) {
  const std::string csv = TempPath("import.csv");
  WriteFile(csv, "0,1\n1,2\n2,0\n");
  auto from_csv = ImportEdgeList(csv);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  EXPECT_EQ(from_csv->num_nodes(), 3);
  EXPECT_EQ(from_csv->num_relations(), 1);
  EXPECT_EQ(from_csv->relation_name(0), "edges");
  // Structural features: per-relation normalised degree + constant.
  EXPECT_EQ(from_csv->feature_dim(), 2);
  EXPECT_EQ(from_csv->attributes().at(0, 1), 1.0f);
  EXPECT_FALSE(from_csv->has_labels());
  std::remove(csv.c_str());

  const std::string spaces = TempPath("import_spaces.txt");
  WriteFile(spaces, "0 1\n1  2\n");
  auto from_spaces = ImportEdgeList(spaces);
  ASSERT_TRUE(from_spaces.ok()) << from_spaces.status().ToString();
  EXPECT_EQ(from_spaces->num_nodes(), 3);
  std::remove(spaces.c_str());
}

TEST(EdgeListTest, HeaderAutoDetectionRegressions) {
  // Regression: the old heuristic skipped the first row when *either* of
  // its first two fields failed to parse as an integer, so a data row like
  // "0,weight" was silently dropped instead of rejected. kAuto now skips
  // only when NEITHER parses; a mixed row is data with a bad id.
  const std::string mixed = TempPath("header_mixed.csv");
  WriteFile(mixed, "0,weight\n1,2\n");
  auto from_mixed = ImportEdgeList(mixed);
  ASSERT_FALSE(from_mixed.ok());
  EXPECT_NE(from_mixed.status().message().find("line 1"), std::string::npos)
      << from_mixed.status().message();
  EXPECT_NE(from_mixed.status().message().find("bad node ids"),
            std::string::npos)
      << from_mixed.status().message();
  std::remove(mixed.c_str());

  // kAuto keeps an all-numeric first row as data...
  const std::string numeric = TempPath("header_numeric.tsv");
  WriteFile(numeric, "0\t1\n1\t2\n");
  auto from_auto = ImportEdgeList(numeric);
  ASSERT_TRUE(from_auto.ok()) << from_auto.status().ToString();
  EXPECT_EQ(from_auto->num_nodes(), 3);
  EXPECT_EQ(from_auto->total_edges(), 2);

  // ...while kAlways skips it (the only way to consume a header that
  // happens to be all digits, e.g. column indices).
  EdgeListOptions always;
  always.header = HeaderMode::kAlways;
  auto skipped = ImportEdgeList(numeric, always);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_EQ(skipped->num_nodes(), 3);
  EXPECT_EQ(skipped->total_edges(), 1);
  std::remove(numeric.c_str());

  // kAlways on a header-only file: nothing left to import.
  const std::string only_header = TempPath("header_only.tsv");
  WriteFile(only_header, "src\tdst\n");
  auto empty = ImportEdgeList(only_header, always);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("no edges after header"),
            std::string::npos)
      << empty.status().message();
  std::remove(only_header.c_str());

  // kNever never skips: a textual first row is malformed data.
  const std::string textual = TempPath("header_textual.tsv");
  WriteFile(textual, "src\tdst\n0\t1\n");
  EdgeListOptions never;
  never.header = HeaderMode::kNever;
  auto rejected = ImportEdgeList(textual, never);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("bad node ids"),
            std::string::npos)
      << rejected.status().message();
  // Same file under kAuto: the textual header is skipped.
  auto accepted = ImportEdgeList(textual);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted->total_edges(), 1);
  std::remove(textual.c_str());
}

TEST(EdgeListTest, AcceptsSubnormalFeatureValues) {
  // strtof sets ERANGE for subnormal results; those are legitimate tiny
  // values (exported probabilities), not malformed fields.
  const std::string edges = TempPath("subnormal.tsv");
  const std::string features = TempPath("subnormal_features.tsv");
  WriteFile(edges, "0\t1\n");
  WriteFile(features, "1e-42\t1\n0\t2\n");
  EdgeListOptions options;
  options.features_path = features;
  auto graph = ImportEdgeList(edges, options);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_GT(graph->attributes().at(0, 0), 0.0f);
  EXPECT_LT(graph->attributes().at(0, 0), 1e-40f);

  // Non-finite values are rejected: overflow to infinity, and textual
  // nan/inf (numpy writes 'nan' for missing values) which would silently
  // poison every downstream loss.
  for (const char* bad : {"1e99\t1\n0\t2\n", "nan\t1\n0\t2\n",
                          "inf\t1\n0\t2\n"}) {
    WriteFile(features, bad);
    EXPECT_FALSE(ImportEdgeList(edges, options).ok()) << bad;
  }
  std::remove(edges.c_str());
  std::remove(features.c_str());
}

TEST(EdgeListTest, FeatureRowsDefineIsolatedTrailingNodes) {
  const std::string edges = TempPath("iso.tsv");
  const std::string features = TempPath("iso_features.tsv");
  WriteFile(edges, "0\t1\n");
  WriteFile(features, "1\n2\n3\n4\n");  // nodes 2 and 3 are isolated
  EdgeListOptions options;
  options.features_path = features;
  auto graph = ImportEdgeList(edges, options);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_nodes(), 4);
  std::remove(edges.c_str());
  std::remove(features.c_str());
}

TEST(EdgeListTest, InjectsAnomaliesWhenUnlabeled) {
  const std::string edges = TempPath("inject.tsv");
  std::string content;
  // A ring over 60 nodes, large enough for the injection protocol.
  for (int i = 0; i < 60; ++i) {
    content += std::to_string(i) + "\t" + std::to_string((i + 1) % 60) + "\n";
  }
  WriteFile(edges, content);
  EdgeListOptions options;
  options.inject_if_unlabeled = true;
  options.injection.clique_size = 4;
  options.injection.num_cliques = 2;
  options.injection.num_attribute_anomalies = 4;
  options.injection.candidate_pool = 10;
  options.injection_seed = 9;
  auto graph = ImportEdgeList(edges, options);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph->has_labels());
  EXPECT_EQ(graph->num_anomalies(), 2 * 4 + 4);
  // Deterministic in the injection seed.
  auto again = ImportEdgeList(edges, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->labels(), graph->labels());
  std::remove(edges.c_str());
}

TEST(EdgeListTest, PinnedRelationOrderAndUnknownRelation) {
  const std::string edges = TempPath("pinned.tsv");
  WriteFile(edges, "0\t1\tb\n1\t2\ta\n");
  EdgeListOptions options;
  options.relation_names = {"a", "b", "c"};
  auto graph = ImportEdgeList(edges, options);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_relations(), 3);
  EXPECT_EQ(graph->relation_name(0), "a");
  EXPECT_EQ(graph->num_edges(2), 0);  // listed but empty

  options.relation_names = {"a"};
  auto unknown = ImportEdgeList(edges, options);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown relation"),
            std::string::npos);
  std::remove(edges.c_str());
}

TEST(EdgeListTest, MalformedInputsAreRejected) {
  const std::string path = TempPath("bad_edge_list.tsv");

  WriteFile(path, "# only comments\n");
  EXPECT_FALSE(ImportEdgeList(path).ok());

  WriteFile(path, "0\tx\n");
  EXPECT_FALSE(ImportEdgeList(path).ok());

  WriteFile(path, "0\t1\trel\textra\n");
  EXPECT_FALSE(ImportEdgeList(path).ok());

  WriteFile(path, "-4\t1\n");
  EXPECT_FALSE(ImportEdgeList(path).ok());

  // Node id beyond the declared node count.
  WriteFile(path, "0\t7\n");
  EdgeListOptions options;
  options.num_nodes = 4;
  EXPECT_EQ(ImportEdgeList(path, options).status().code(),
            StatusCode::kOutOfRange);

  // Label / feature side-file shape mismatches.
  const std::string side = TempPath("bad_side.txt");
  WriteFile(path, "0\t1\n");
  WriteFile(side, "0\n1\n0\n");
  options = EdgeListOptions();
  options.labels_path = side;
  EXPECT_FALSE(ImportEdgeList(path, options).ok());

  WriteFile(side, "1 2\n3\n");
  options = EdgeListOptions();
  options.features_path = side;
  EXPECT_FALSE(ImportEdgeList(path, options).ok());

  std::remove(path.c_str());
  std::remove(side.c_str());
}

// ------------------------- LoadDataset dispatch ---------------------------

TEST(LoadDatasetTest, ResolvesRegisteredNamesAndFiles) {
  LoadDatasetOptions options;
  options.seed = 21;
  options.scale = 0.05;
  auto from_registry = LoadDataset("Retail", options);
  ASSERT_TRUE(from_registry.ok());
  ExpectBitIdentical(*from_registry, *MakeDataset("Retail", 21, 0.05));

  const std::string text = TempPath("dispatch.txt");
  const std::string binary = TempPath("dispatch.umgb");
  ASSERT_TRUE(SaveGraph(*from_registry, text).ok());
  ASSERT_TRUE(SaveGraphBinary(*from_registry, binary).ok());
  auto from_text = LoadDataset(text);
  ASSERT_TRUE(from_text.ok());
  ExpectBitIdentical(*from_text, *from_registry);
  auto from_binary = LoadDataset(binary);
  ASSERT_TRUE(from_binary.ok());
  ExpectBitIdentical(*from_binary, *from_registry);
  std::remove(text.c_str());
  std::remove(binary.c_str());

  auto missing = LoadDataset("NoSuchDatasetOrFile");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(LoadDatasetTest, EdgeListFilesDispatchToImporter) {
  const std::string edges = TempPath("dispatch_edges.csv");
  WriteFile(edges, "0,1\n1,2\n");
  LoadDatasetOptions options;
  options.edge_list.name = "via-dispatch";
  auto graph = LoadDataset(edges, options);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->name(), "via-dispatch");
  EXPECT_EQ(graph->num_nodes(), 3);
  std::remove(edges.c_str());
}

TEST(LoadDatasetTest, DatasetDirRedirectsRegisteredNames) {
  // SaveGraphAuto picks the format from the extension.
  MultiplexGraph g = MakeTiny(77);
  const std::string dir = ::testing::TempDir();
  const std::string file = dir + "/Tiny." + kBinaryGraphExtension;
  ASSERT_TRUE(SaveGraphAuto(g, file).ok());

  setenv("UMGAD_DATASET_DIR", dir.c_str(), 1);
  EXPECT_EQ(FindDatasetFile("Tiny"), file);
  auto redirected = LoadDataset("Tiny");
  ASSERT_TRUE(redirected.ok());
  // Seed 77 graph regardless of the requested seed: the file wins.
  LoadDatasetOptions options;
  options.seed = 1;
  auto still_redirected = LoadDataset("Tiny", options);
  ASSERT_TRUE(still_redirected.ok());
  ExpectBitIdentical(*redirected, g);
  ExpectBitIdentical(*still_redirected, g);

  // Opt-out rebuilds from the registry.
  options.use_dataset_dir = false;
  options.seed = 77;
  auto rebuilt = LoadDataset("Tiny", options);
  ASSERT_TRUE(rebuilt.ok());
  ExpectBitIdentical(*rebuilt, g);

  unsetenv("UMGAD_DATASET_DIR");
  EXPECT_EQ(FindDatasetFile("Tiny"), "");
  std::remove(file.c_str());
}

// ------------------------- FromCsr validation -----------------------------

TEST(FromCsrTest, RejectsBrokenInvariants) {
  // Valid 2x2 with one symmetric pair.
  auto ok = SparseMatrix::FromCsr(2, 2, {0, 1, 2}, {1, 0}, {1.0f, 1.0f});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->nnz(), 2);

  EXPECT_FALSE(
      SparseMatrix::FromCsr(2, 2, {0, 1}, {1, 0}, {1.0f, 1.0f}).ok());
  EXPECT_FALSE(
      SparseMatrix::FromCsr(2, 2, {0, 2, 1}, {1, 0}, {1.0f, 1.0f}).ok());
  EXPECT_FALSE(
      SparseMatrix::FromCsr(2, 2, {0, 1, 2}, {1, 5}, {1.0f, 1.0f}).ok());
  EXPECT_FALSE(SparseMatrix::FromCsr(2, 2, {0, 2, 2}, {1, 1}, {1.0f, 1.0f})
                   .ok());  // duplicate column in row
  EXPECT_FALSE(
      SparseMatrix::FromCsr(2, 2, {0, 1, 2}, {1, 0}, {1.0f}).ok());
}

}  // namespace
}  // namespace umgad
