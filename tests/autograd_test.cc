#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/pool.h"

namespace umgad {
namespace ag {
namespace {

/// Reduce an arbitrary-shape op output to a scalar with a fixed random
/// probe so every output element influences the loss with a distinct
/// weight: loss = sum(out .* probe).
VarPtr ToScalar(const VarPtr& v, const Tensor& probe) {
  return Sum(Hadamard(v, Constant(probe)));
}

using BuildFn =
    std::function<VarPtr(const std::vector<VarPtr>& leaves)>;

/// Central-difference gradient check of `build` at `inputs`. float32
/// arithmetic bounds the achievable agreement, hence the loose tolerances.
void CheckGradients(const std::vector<Tensor>& inputs, const BuildFn& build,
                    double eps = 1e-2, double rel_tol = 5e-2,
                    double abs_tol = 2e-3) {
  // Analytic gradients.
  std::vector<VarPtr> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(Leaf(t));
  VarPtr loss = build(leaves);
  ASSERT_EQ(loss->value().size(), 1);
  Backward(loss);
  std::vector<Tensor> analytic;
  for (const auto& leaf : leaves) analytic.push_back(leaf->grad());

  auto eval = [&](const std::vector<Tensor>& xs) -> double {
    std::vector<VarPtr> ls;
    for (const Tensor& t : xs) ls.push_back(Leaf(t));
    return build(ls)->value().scalar();
  };

  for (size_t p = 0; p < inputs.size(); ++p) {
    for (int64_t i = 0; i < inputs[p].size(); ++i) {
      std::vector<Tensor> plus = inputs;
      std::vector<Tensor> minus = inputs;
      plus[p].data()[i] += static_cast<float>(eps);
      minus[p].data()[i] -= static_cast<float>(eps);
      const double numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
      const double exact = analytic[p].data()[i];
      const double err = std::abs(numeric - exact);
      const double scale = std::max(std::abs(numeric), std::abs(exact));
      EXPECT_LE(err, abs_tol + rel_tol * scale)
          << "param " << p << " element " << i << ": numeric=" << numeric
          << " analytic=" << exact;
    }
  }
}

Tensor Rand(int r, int c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return RandomNormal(r, c, 0.0, scale, &rng);
}

std::shared_ptr<const SparseMatrix> SmallGraph(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int k = 0; k < 3 * n; ++k) {
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u != v) edges.push_back(Edge{u, v});
  }
  return std::make_shared<const SparseMatrix>(
      SparseMatrix::FromEdges(n, edges, true).NormalizedWithSelfLoops());
}

TEST(AutogradTest, AddGradient) {
  Tensor probe = Rand(3, 4, 99);
  CheckGradients({Rand(3, 4, 1), Rand(3, 4, 2)}, [&](const auto& v) {
    return ToScalar(Add(v[0], v[1]), probe);
  });
}

TEST(AutogradTest, SubGradient) {
  Tensor probe = Rand(3, 4, 98);
  CheckGradients({Rand(3, 4, 3), Rand(3, 4, 4)}, [&](const auto& v) {
    return ToScalar(Sub(v[0], v[1]), probe);
  });
}

TEST(AutogradTest, AddNGradient) {
  Tensor probe = Rand(2, 3, 97);
  CheckGradients({Rand(2, 3, 5), Rand(2, 3, 6), Rand(2, 3, 7)},
                 [&](const auto& v) {
                   return ToScalar(AddN({v[0], v[1], v[2]}), probe);
                 });
}

TEST(AutogradTest, HadamardGradient) {
  Tensor probe = Rand(3, 3, 96);
  CheckGradients({Rand(3, 3, 8), Rand(3, 3, 9)}, [&](const auto& v) {
    return ToScalar(Hadamard(v[0], v[1]), probe);
  });
}

TEST(AutogradTest, ScalarMulGradient) {
  Tensor probe = Rand(2, 5, 95);
  CheckGradients({Rand(2, 5, 10)}, [&](const auto& v) {
    return ToScalar(ScalarMul(v[0], -1.7f), probe);
  });
}

TEST(AutogradTest, MatMulGradient) {
  Tensor probe = Rand(3, 4, 94);
  CheckGradients({Rand(3, 5, 11), Rand(5, 4, 12)}, [&](const auto& v) {
    return ToScalar(MatMul(v[0], v[1]), probe);
  });
}

TEST(AutogradTest, SpmmGradient) {
  auto s = SmallGraph(6, 42);
  Tensor probe = Rand(6, 3, 93);
  CheckGradients({Rand(6, 3, 13)}, [&](const auto& v) {
    return ToScalar(Spmm(s, v[0]), probe);
  });
}

TEST(AutogradTest, AddRowBroadcastGradient) {
  Tensor probe = Rand(4, 3, 92);
  CheckGradients({Rand(4, 3, 14), Rand(1, 3, 15)}, [&](const auto& v) {
    return ToScalar(AddRowBroadcast(v[0], v[1]), probe);
  });
}

TEST(AutogradTest, ActivationGradients) {
  Tensor probe = Rand(3, 3, 91);
  for (auto fn : {+[](const VarPtr& x) { return Relu(x); },
                  +[](const VarPtr& x) { return LeakyRelu(x, 0.2f); },
                  +[](const VarPtr& x) { return Sigmoid(x); },
                  +[](const VarPtr& x) { return Tanh(x); },
                  +[](const VarPtr& x) { return Elu(x, 1.0f); }}) {
    CheckGradients({Rand(3, 3, 16, 0.8)}, [&](const auto& v) {
      return ToScalar(fn(v[0]), probe);
    });
  }
}

TEST(AutogradTest, RowL2NormalizeGradient) {
  Tensor probe = Rand(4, 3, 90);
  CheckGradients(
      {Rand(4, 3, 17)},
      [&](const auto& v) { return ToScalar(RowL2Normalize(v[0]), probe); },
      /*eps=*/5e-3);
}

TEST(AutogradTest, GatherRowsGradient) {
  Tensor probe = Rand(4, 3, 89);
  CheckGradients({Rand(5, 3, 18)}, [&](const auto& v) {
    return ToScalar(GatherRows(v[0], {0, 2, 2, 4}), probe);
  });
}

TEST(AutogradTest, MaskRowsGradient) {
  Tensor probe = Rand(5, 3, 88);
  CheckGradients({Rand(5, 3, 19), Rand(1, 3, 20)}, [&](const auto& v) {
    return ToScalar(MaskRows(v[0], {1, 3}, v[1]), probe);
  });
}

TEST(AutogradTest, SimplexWeightedSumGradient) {
  Tensor probe = Rand(3, 3, 87);
  CheckGradients(
      {Rand(3, 3, 21), Rand(3, 3, 22), Rand(1, 2, 23)},
      [&](const auto& v) {
        return ToScalar(SimplexWeightedSum({v[0], v[1]}, v[2]), probe);
      });
}

TEST(AutogradTest, SumAndMeanGradients) {
  CheckGradients({Rand(3, 4, 24)},
                 [&](const auto& v) { return Sum(v[0]); });
  CheckGradients({Rand(3, 4, 25)},
                 [&](const auto& v) { return Mean(v[0]); });
}

TEST(AutogradTest, ScaledCosineLossGradient) {
  Tensor target = Rand(5, 4, 26);
  for (float eta : {1.0f, 2.0f, 3.0f}) {
    CheckGradients(
        {Rand(5, 4, 27)},
        [&](const auto& v) {
          return ScaledCosineLoss(v[0], target, {0, 2, 4}, eta);
        },
        /*eps=*/5e-3);
  }
}

TEST(AutogradTest, MseLossGradient) {
  Tensor target = Rand(4, 3, 28);
  CheckGradients({Rand(4, 3, 29)}, [&](const auto& v) {
    return MseLoss(v[0], target);
  });
  CheckGradients({Rand(4, 3, 30)}, [&](const auto& v) {
    return MseLoss(v[0], target, {1, 3});
  });
}

TEST(AutogradTest, MaskedEdgeSoftmaxCEGradient) {
  std::vector<EdgeCandidateSet> sets = {
      {0, {1, 2, 3}},
      {2, {4, 0, 1}},
  };
  CheckGradients(
      {Rand(5, 3, 31, 0.5)},
      [&](const auto& v) { return MaskedEdgeSoftmaxCE(v[0], sets); },
      /*eps=*/5e-3);
}

TEST(AutogradTest, PairDotBceLossGradient) {
  std::vector<float> labels = {1.0f, 0.0f, 1.0f};
  CheckGradients(
      {Rand(3, 4, 32, 0.5), Rand(3, 4, 33, 0.5)},
      [&](const auto& v) { return PairDotBceLoss(v[0], v[1], labels); },
      /*eps=*/5e-3);
}

TEST(AutogradTest, DualContrastiveLossGradient) {
  std::vector<int> neg = {2, 0, 1};
  CheckGradients(
      {Rand(3, 4, 34, 0.4), Rand(3, 4, 35, 0.4)},
      [&](const auto& v) { return DualContrastiveLoss(v[0], v[1], neg); },
      /*eps=*/5e-3);
}

TEST(AutogradTest, GatAttentionGradient) {
  auto adj = SmallGraph(5, 77);
  Tensor probe = Rand(5, 3, 86);
  CheckGradients(
      {Rand(5, 3, 36, 0.5), Rand(1, 3, 37, 0.5), Rand(1, 3, 38, 0.5)},
      [&](const auto& v) {
        return ToScalar(GatAttention(v[0], v[1], v[2], adj, 0.2f), probe);
      },
      /*eps=*/5e-3);
}

TEST(AutogradTest, SharedSubexpressionAccumulates) {
  // loss = sum(x .* x) => dl/dx = 2x. Exercises the diamond topology.
  Tensor x = Rand(3, 3, 39);
  VarPtr leaf = Leaf(x);
  VarPtr loss = Sum(Hadamard(leaf, leaf));
  Backward(loss);
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(leaf->grad().data()[i], 2.0f * x.data()[i], 1e-4);
  }
}

TEST(AutogradTest, ParameterReusedAcrossBranches) {
  // loss = sum(W) + 2*sum(W) accumulated through two branches.
  Tensor w = Rand(2, 2, 40);
  VarPtr leaf = Leaf(w);
  VarPtr loss = Add(Sum(leaf), ScalarMul(Sum(leaf), 2.0f));
  Backward(loss);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(leaf->grad().data()[i], 3.0f, 1e-5);
  }
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  VarPtr c = Constant(Rand(2, 2, 41));
  VarPtr leaf = Leaf(Rand(2, 2, 42));
  VarPtr loss = Sum(Hadamard(c, leaf));
  Backward(loss);
  EXPECT_TRUE(leaf->has_grad());
  EXPECT_FALSE(c->has_grad());
}

TEST(AutogradTest, ZeroGradResets) {
  VarPtr leaf = Leaf(Rand(2, 2, 43));
  Backward(Sum(leaf));
  EXPECT_GT(leaf->grad().SquaredNorm(), 0.0);
  leaf->ZeroGrad();
  EXPECT_EQ(leaf->grad().SquaredNorm(), 0.0);
}

TEST(AutogradTest, BackwardTwiceAccumulates) {
  VarPtr leaf = Leaf(Rand(2, 2, 44));
  Backward(Sum(leaf));
  Backward(Sum(leaf));
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(leaf->grad().data()[i], 2.0f, 1e-5);
  }
}

// ---------------------------------------------------------------------------
// Arena tape: reuse across steps, arena on/off equivalence, steady-state
// allocation accounting, and thread-count invariance of the parallel
// backward sweep.
// ---------------------------------------------------------------------------

/// One training-step-shaped graph over persistent leaves: two branches
/// sharing W (so backward has cross-branch accumulation), an Spmm, and a
/// fused loss. Returns the loss root.
VarPtr StepGraph(const VarPtr& w, const VarPtr& bias, const Tensor& x,
                 const std::shared_ptr<const SparseMatrix>& adj) {
  VarPtr h = MatMul(Constant(x), w);
  h = AddRowBroadcast(h, bias);
  VarPtr branch_a = Relu(Spmm(adj, h));
  VarPtr branch_b = Tanh(MatMul(Constant(x), w));
  return Add(Mean(Hadamard(branch_a, branch_a)),
             ScalarMul(Mean(Hadamard(branch_b, branch_b)), 0.5f));
}

TEST(TapeTest, ResetReuseIsBitIdentical) {
  auto adj = SmallGraph(12, 51);
  Tensor x = Rand(12, 6, 52);
  VarPtr w = Leaf(Rand(6, 6, 53));
  VarPtr bias = Leaf(Rand(1, 6, 54));

  Tape::Global().Reset();
  Backward(StepGraph(w, bias, x, adj));
  Tensor gw = w->grad();
  Tensor gb = bias->grad();

  for (int step = 0; step < 3; ++step) {
    // Persistent leaves survive the rewind; the rebuilt graph must land on
    // recycled buffers/slabs and reproduce the gradients exactly.
    Tape::Global().Reset();
    w->ZeroGrad();
    bias->ZeroGrad();
    Backward(StepGraph(w, bias, x, adj));
    EXPECT_EQ(MaxAbsDiff(w->grad(), gw), 0.0) << "step " << step;
    EXPECT_EQ(MaxAbsDiff(bias->grad(), gb), 0.0) << "step " << step;
  }
}

TEST(TapeTest, SteadyStateStepsAllocateNothing) {
  const bool prev_arena = ArenaEnabled();
  SetArenaEnabled(true);
  // One lane: the exact-zero claim is deterministic only when the per-step
  // allocation pattern is (see the matching note in determinism_test.cc).
  SetNumThreads(1);
  auto adj = SmallGraph(20, 61);
  Tensor x = Rand(20, 8, 62);
  VarPtr w = Leaf(Rand(8, 8, 63));
  VarPtr bias = Leaf(Rand(1, 8, 64));

  // Warm-up: first steps may grow the pool and the node slabs.
  for (int step = 0; step < 2; ++step) {
    Tape::Global().Reset();
    w->ZeroGrad();
    bias->ZeroGrad();
    Backward(StepGraph(w, bias, x, adj));
  }
  const TensorPool::Stats pool0 = TensorPool::Global().stats();
  const Tape::Stats tape0 = Tape::Global().stats();
  for (int step = 0; step < 5; ++step) {
    Tape::Global().Reset();
    w->ZeroGrad();
    bias->ZeroGrad();
    Backward(StepGraph(w, bias, x, adj));
  }
  const TensorPool::Stats pool1 = TensorPool::Global().stats();
  const Tape::Stats tape1 = Tape::Global().stats();
  EXPECT_EQ(pool1.fresh_buffers, pool0.fresh_buffers)
      << "steady-state steps must reuse pooled tensor buffers";
  EXPECT_EQ(pool1.fresh_bytes, pool0.fresh_bytes);
  EXPECT_EQ(tape1.node_slabs, tape0.node_slabs)
      << "steady-state steps must reuse node slabs";
  EXPECT_GT(pool1.reused_buffers, pool0.reused_buffers);
  SetArenaEnabled(prev_arena);
}

TEST(TapeTest, ArenaOffMatchesArenaOn) {
  auto adj = SmallGraph(15, 71);
  Tensor x = Rand(15, 5, 72);

  const bool prev_arena = ArenaEnabled();
  Tensor grads[2];
  double losses[2];
  for (int mode = 0; mode < 2; ++mode) {
    SetArenaEnabled(mode == 1);
    Tape::Global().Reset();
    VarPtr w = Leaf(Rand(5, 5, 73));
    VarPtr bias = Leaf(Rand(1, 5, 74));
    VarPtr loss = StepGraph(w, bias, x, adj);
    Backward(loss);
    losses[mode] = loss->value().scalar();
    grads[mode] = w->grad();
  }
  SetArenaEnabled(prev_arena);
  EXPECT_EQ(losses[0], losses[1]);
  EXPECT_EQ(MaxAbsDiff(grads[0], grads[1]), 0.0);
}

TEST(TapeTest, BackwardBitIdenticalAcrossThreadCounts) {
  auto adj = SmallGraph(40, 81);
  Tensor x = Rand(40, 16, 82);
  VarPtr w = Leaf(Rand(16, 16, 83));
  VarPtr bias = Leaf(Rand(1, 16, 84));

  // A wide graph (many independent branches sharing w) so the batched
  // scheduler actually runs multi-node batches.
  auto build = [&]() {
    std::vector<VarPtr> terms;
    for (int b = 0; b < 6; ++b) {
      VarPtr h = MatMul(Constant(x), w);
      h = AddRowBroadcast(h, bias);
      h = b % 2 == 0 ? Relu(Spmm(adj, h)) : Sigmoid(Spmm(adj, h));
      terms.push_back(Mean(Hadamard(h, h)));
    }
    return AddN(terms);
  };

  SetNumThreads(1);
  Tape::Global().Reset();
  w->ZeroGrad();
  bias->ZeroGrad();
  Backward(build());
  Tensor gw1 = w->grad();
  Tensor gb1 = bias->grad();

  SetNumThreads(4);
  Tape::Global().Reset();
  w->ZeroGrad();
  bias->ZeroGrad();
  Backward(build());
  EXPECT_EQ(MaxAbsDiff(w->grad(), gw1), 0.0);
  EXPECT_EQ(MaxAbsDiff(bias->grad(), gb1), 0.0);
  SetNumThreads(1);
}

TEST(TapeTest, PersistentConstantSurvivesReset) {
  VarPtr frozen = PersistentConstant(Rand(1, 3, 91));
  Tensor before = frozen->value();
  Tape::Global().Reset();
  EXPECT_EQ(MaxAbsDiff(frozen->value(), before), 0.0);
  EXPECT_FALSE(frozen->requires_grad());
}

TEST(TapeTest, ParamScopeReclaimsPersistentLeaves) {
  const int64_t baseline = Tape::Global().stats().persistent_nodes;
  {
    ParamScope scope;
    VarPtr w = Leaf(Rand(4, 4, 101));
    VarPtr frozen = PersistentConstant(Rand(4, 4, 102));
    EXPECT_EQ(Tape::Global().stats().persistent_nodes, baseline + 2);
    // Scoped leaves behave like any other: forward + backward works and
    // the transient graph still dies at Reset as usual.
    Backward(Sum(MatMul(frozen, w)));
    EXPECT_EQ(w->grad().rows(), 4);
    Tape::Global().Reset();
    // VarPtr is non-owning; simply stop using the handles past this point.
  }
  EXPECT_EQ(Tape::Global().stats().persistent_nodes, baseline);

  // Enough leaves to cross slab boundaries: the rewind must walk the
  // whole suffix, not just the tail slab.
  {
    ParamScope scope;
    std::vector<VarPtr> leaves;
    for (int i = 0; i < 300; ++i) leaves.push_back(Leaf(Rand(1, 1, 200 + i)));
    EXPECT_EQ(Tape::Global().stats().persistent_nodes, baseline + 300);
    leaves.clear();
  }
  EXPECT_EQ(Tape::Global().stats().persistent_nodes, baseline);
}

TEST(TapeTest, ParamScopesNestLifo) {
  const int64_t baseline = Tape::Global().stats().persistent_nodes;
  {
    ParamScope outer;
    VarPtr a = Leaf(Rand(2, 2, 111));
    const Tensor a_before = a->value();
    {
      ParamScope inner;
      VarPtr b = Leaf(Rand(2, 2, 112));
      VarPtr c = Leaf(Rand(2, 2, 113));
      EXPECT_EQ(b->value().rows(), 2);
      EXPECT_EQ(c->value().cols(), 2);
      EXPECT_EQ(Tape::Global().stats().persistent_nodes, baseline + 3);
    }
    // The inner rewind reclaimed exactly its own suffix; the outer
    // scope's leaf is untouched and still readable.
    EXPECT_EQ(Tape::Global().stats().persistent_nodes, baseline + 1);
    EXPECT_EQ(MaxAbsDiff(a->value(), a_before), 0.0);
  }
  EXPECT_EQ(Tape::Global().stats().persistent_nodes, baseline);
}

}  // namespace
}  // namespace ag
}  // namespace umgad
