// Locks the public API surface exercised by every downstream consumer: a
// MultiplexGraph built through the validating factory, the UmgadModel
// detector, and a baseline constructed through the MakeDetector registry.
// If this file stops compiling, a PR changed the public API.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/detector.h"
#include "core/config.h"
#include "core/umgad.h"
#include "graph/datasets.h"
#include "graph/multiplex_graph.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace umgad {
namespace {

TEST(BuildSanityTest, MultiplexGraphFactoryValidates) {
  // Two relations over 4 nodes with 3-dim attributes.
  Tensor attributes(4, 3);
  std::vector<Edge> edges = {{0, 1}, {2, 3}};
  SparseMatrix layer = SparseMatrix::FromEdges(4, edges, /*symmetrize=*/true);
  auto graph = MultiplexGraph::Create("sanity", attributes, {layer, layer},
                                      {"buys", "reviews"}, {0, 0, 1, 0});
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 4);
  EXPECT_EQ(graph->num_relations(), 2);
  EXPECT_EQ(graph->feature_dim(), 3);
  EXPECT_EQ(graph->num_anomalies(), 1);
}

TEST(BuildSanityTest, UmgadModelImplementsDetector) {
  UmgadConfig config;
  config.epochs = 2;
  UmgadModel model(config);
  Detector* as_detector = &model;
  EXPECT_EQ(as_detector->name(), "UMGAD");

  MultiplexGraph g = MakeTiny(3);
  ASSERT_TRUE(as_detector->Fit(g).ok());
  EXPECT_EQ(model.scores().size(), static_cast<size_t>(g.num_nodes()));
  EXPECT_EQ(model.PredictUnsupervised().size(),
            static_cast<size_t>(g.num_nodes()));
}

TEST(BuildSanityTest, BaselineConstructibleViaRegistry) {
  Result<std::unique_ptr<Detector>> dominant = MakeDetector("DOMINANT", 1);
  ASSERT_TRUE(dominant.ok());
  EXPECT_EQ((*dominant)->name(), "DOMINANT");

  MultiplexGraph g = MakeTiny(5);
  ASSERT_TRUE((*dominant)->Fit(g).ok());
  EXPECT_EQ((*dominant)->scores().size(), static_cast<size_t>(g.num_nodes()));
}

}  // namespace
}  // namespace umgad
