#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace umgad {
namespace {

/// O(P*N) reference implementation for cross-validation.
double BruteForceAuc(const std::vector<double>& scores,
                     const std::vector<int>& labels) {
  double num = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 1) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] != 0) continue;
      ++pairs;
      if (scores[i] > scores[j]) num += 1.0;
      else if (scores[i] == scores[j]) num += 0.5;
    }
  }
  return pairs > 0 ? num / pairs : 0.5;
}

TEST(AucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, InvertedRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, AllTiesGiveHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
}

class AucRandomized : public ::testing::TestWithParam<int> {};

TEST_P(AucRandomized, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 150;
  std::vector<double> scores(n);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    // Quantised scores force tie handling to matter.
    scores[i] = static_cast<double>(rng.UniformInt(20)) / 20.0;
    labels[i] = rng.Bernoulli(0.2) ? 1 : 0;
  }
  EXPECT_NEAR(RocAuc(scores, labels), BruteForceAuc(scores, labels), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ConfusionTest, CountsCells) {
  Confusion c = ConfusionCounts({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.fn, 1);
}

TEST(F1Test, HandComputedValues) {
  Confusion c{/*tp=*/2, /*fp=*/1, /*tn=*/1, /*fn=*/1};
  EXPECT_NEAR(Precision(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Recall(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(F1Positive(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(F1Negative(c), 0.5, 1e-12);
}

TEST(F1Test, DegenerateCasesAreZero) {
  Confusion none{0, 0, 10, 5};
  EXPECT_DOUBLE_EQ(F1Positive(none), 0.0);
  Confusion no_neg{5, 5, 0, 0};
  EXPECT_DOUBLE_EQ(F1Negative(no_neg), 0.0);
}

TEST(MacroF1Test, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(MacroF1({1, 0, 1, 0}, {1, 0, 1, 0}), 1.0);
}

TEST(MacroF1Test, AllWrong) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 0, 1}, {1, 0, 1, 0}), 0.0);
}

TEST(MacroF1Test, IsMeanOfClassF1s) {
  std::vector<int> pred = {1, 1, 0, 0, 1};
  std::vector<int> labels = {1, 0, 0, 1, 1};
  Confusion c = ConfusionCounts(pred, labels);
  EXPECT_NEAR(MacroF1(pred, labels),
              0.5 * (F1Positive(c) + F1Negative(c)), 1e-12);
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}),
                   1.0);
}

TEST(AveragePrecisionTest, HandValue) {
  // Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision({0.9, 0.5, 0.4}, {1, 0, 1}),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5, 0.4}, {0, 0}), 0.0);
}

TEST(AggregateTest, MeanAndStd) {
  MeanStd ms = Aggregate({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_NEAR(ms.std, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(AggregateTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Aggregate({}).mean, 0.0);
  MeanStd one = Aggregate({5.0});
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.std, 0.0);
}

}  // namespace
}  // namespace umgad
