// Differential oracle for the sharded serving front-end: after any
// submitted-and-drained update stream, ShardRouter's published snapshot
// must be bit-identical to a flat single-scorer OnlineScorer (and through
// it to RescoreFullNaive) for every shards x UMGAD_THREADS x arena-mode
// combination — including streams with invalid updates (rejected in
// order, identically on every replica), insert/remove toggles split
// across bursts, and drop-mode shedding. Also covers the owner-masked
// component-provider mode of OnlineScorer directly, Query/Snapshot
// semantics, Stats() counters, and Create's option validation.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_io.h"
#include "core/umgad.h"
#include "graph/datasets.h"
#include "oracle_harness.h"
#include "serve/dynamic_adjacency.h"
#include "serve/online_scorer.h"
#include "serve/shard_router.h"

namespace umgad {
namespace {

using serve::DynamicAdjacency;
using serve::EdgeUpdate;
using serve::OnlineScorer;
using serve::RouterOptions;
using serve::RouterStats;
using serve::ScoreSnapshot;
using serve::ServeOptions;
using serve::ShardRouter;
using ::umgad::testing::OracleSweep;

UmgadConfig ServeConfig() {
  UmgadConfig config;
  config.epochs = 2;
  config.hidden_dim = 8;
  config.mask_repeats = 1;
  config.num_subgraphs = 1;
  config.subgraph_size = 4;
  config.num_score_negatives = 2;
  config.seed = 5;
  return config;
}

/// Train once per process; every test below reads from this snapshot.
struct RouterFixture {
  MultiplexGraph graph = MakeTiny(123);
  UmgadModel model{ServeConfig()};
  TrainedModel trained;

  RouterFixture() {
    UMGAD_CHECK(model.Fit(graph).ok());
    auto snapshot = TrainedModel::FromFitted(model, graph);
    UMGAD_CHECK(snapshot.ok());
    trained = *std::move(snapshot);
  }
};

const RouterFixture& Fixture() {
  static const RouterFixture* fixture = new RouterFixture();
  return *fixture;
}

/// Deterministic valid toggle sequence (same construction as the flat
/// serve oracle's): inserts always hit absent edges, removals present ones.
std::vector<EdgeUpdate> MakeUpdateSequence(const MultiplexGraph& graph,
                                           int count, uint64_t seed) {
  std::vector<DynamicAdjacency> mirror;
  for (int r = 0; r < graph.num_relations(); ++r) {
    mirror.emplace_back(graph.layer(r));
  }
  Rng rng(seed);
  std::vector<EdgeUpdate> updates;
  while (static_cast<int>(updates.size()) < count) {
    EdgeUpdate u;
    u.relation = static_cast<int>(rng.UniformInt(graph.num_relations()));
    u.src = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    u.dst = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    if (u.src == u.dst) continue;
    u.add = !mirror[u.relation].Has(u.src, u.dst);
    if (u.add) {
      mirror[u.relation].AddEntry(u.src, u.dst, 1.0f);
      mirror[u.relation].AddEntry(u.dst, u.src, 1.0f);
    } else {
      mirror[u.relation].RemoveEntry(u.src, u.dst);
      mirror[u.relation].RemoveEntry(u.dst, u.src);
    }
    updates.push_back(u);
  }
  return updates;
}

void ExpectSameBits(const std::vector<double>& got,
                    const std::vector<double>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " node " << i;
  }
}

/// The flat oracle with the router's apply discipline: one update at a
/// time, invalid updates skipped (counted), in stream order.
struct FlatRun {
  std::vector<double> initial;
  std::vector<double> final_scores;
  std::vector<double> full_rescore;
  int64_t rejected = 0;
};

FlatRun RunFlat(const std::vector<EdgeUpdate>& updates) {
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  UMGAD_CHECK(scorer.ok());
  FlatRun run;
  run.initial = (*scorer)->scores();
  for (const EdgeUpdate& u : updates) {
    if (!(*scorer)->ApplyEdgeUpdate(u).ok()) ++run.rejected;
  }
  run.final_scores = (*scorer)->scores();
  run.full_rescore = (*scorer)->RescoreFullNaive();
  return run;
}

Result<std::unique_ptr<ShardRouter>> MakeRouter(int shards,
                                                RouterOptions options = {}) {
  options.num_shards = shards;
  return ShardRouter::Create(Fixture().trained, Fixture().graph, options);
}

// ------------------------- the sharded oracle sweep -----------------------

TEST(ShardRouterTest, DrainedRouterMatchesFlatOracleAcrossGrid) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 12, /*seed=*/31);
  const OracleSweep sweep;  // {1, 4} threads x arena on/off
  const bool prev_arena = ArenaEnabled();
  SetNumThreads(1);
  SetArenaEnabled(true);
  const FlatRun flat = RunFlat(updates);
  ExpectSameBits(flat.final_scores, flat.full_rescore, "flat self-check");
  EXPECT_EQ(flat.rejected, 0);

  for (bool arena : sweep.arena_modes) {
    for (int threads : sweep.thread_counts) {
      for (int shards : {1, 2, 4}) {
        SetArenaEnabled(arena);
        SetNumThreads(threads);
        const std::string label = "shards=" + std::to_string(shards) +
                                  " threads=" + std::to_string(threads) +
                                  " arena=" + (arena ? "1" : "0");
        RouterOptions options;
        options.max_burst = 3;  // force mid-stream burst boundaries
        auto router = MakeRouter(shards, options);
        ASSERT_TRUE(router.ok()) << label << ": "
                                 << router.status().ToString();
        // The initial snapshot is epoch 1, stream-consistent, and equal to
        // the flat scorer's initial pass.
        auto initial = (*router)->Snapshot();
        ASSERT_NE(initial, nullptr) << label;
        EXPECT_EQ(initial->epoch, 1u) << label;
        EXPECT_TRUE(initial->stream_consistent) << label;
        ExpectSameBits(initial->scores, flat.initial, label + " init");

        EXPECT_EQ((*router)->Submit(updates),
                  static_cast<int64_t>(updates.size()))
            << label;
        (*router)->Flush();
        auto drained = (*router)->Snapshot();
        EXPECT_TRUE(drained->stream_consistent) << label;
        EXPECT_EQ(drained->max_applied,
                  static_cast<int64_t>(updates.size()))
            << label;
        ExpectSameBits(drained->scores, flat.final_scores, label);
      }
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

TEST(ShardRouterTest, InvalidUpdatesRejectIdenticallyOnEveryReplica) {
  // A stream salted with updates that fail validation mid-stream: a
  // duplicate insert (FailedPrecondition once the first insert landed), a
  // removal of an absent edge, an out-of-range node, and a self-loop.
  // Every shard must reject exactly the same set, in order, regardless of
  // how its queue chopped the stream into bursts.
  const std::vector<EdgeUpdate> valid =
      MakeUpdateSequence(Fixture().graph, 8, /*seed=*/53);
  const int n = Fixture().graph.num_nodes();
  std::vector<EdgeUpdate> updates;
  for (size_t k = 0; k < valid.size(); ++k) {
    updates.push_back(valid[k]);
    if (k == 1) updates.push_back(valid[1]);  // duplicate toggle: invalid
    if (k == 3) {
      EdgeUpdate bad = valid[3];
      bad.dst = n;  // out of range
      updates.push_back(bad);
    }
    if (k == 5) {
      EdgeUpdate loop;
      loop.relation = 0;
      loop.src = 2;
      loop.dst = 2;
      updates.push_back(loop);
    }
  }
  const FlatRun flat = RunFlat(updates);
  ASSERT_EQ(flat.rejected, 3);

  for (int shards : {2, 4}) {
    RouterOptions options;
    options.max_burst = 4;
    auto router = MakeRouter(shards, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    const std::string label = "shards=" + std::to_string(shards);
    (*router)->Submit(updates);
    (*router)->Flush();
    auto snap = (*router)->Snapshot();
    EXPECT_TRUE(snap->stream_consistent) << label;
    // Rejected updates still advance the stream position.
    EXPECT_EQ(snap->max_applied, static_cast<int64_t>(updates.size()))
        << label;
    ExpectSameBits(snap->scores, flat.final_scores, label);

    const RouterStats stats = (*router)->Stats();
    EXPECT_EQ(stats.total_rejected,
              flat.rejected * static_cast<int64_t>(shards))
        << label;
    for (const auto& s : stats.shards) {
      EXPECT_EQ(s.rejected, flat.rejected) << label << " shard " << s.shard;
    }
  }
}

TEST(ShardRouterTest, ToggleAcrossSubmitsConverges) {
  // Insert then remove the same edge, submitted separately so the two legs
  // can land in different bursts on different shards: the drained router
  // must come back to its initial snapshot exactly.
  const MultiplexGraph& graph = Fixture().graph;
  EdgeUpdate insert;
  insert.relation = 0;
  insert.src = 0;
  for (insert.dst = 1; insert.dst < graph.num_nodes(); ++insert.dst) {
    if (!graph.layer(0).Has(insert.src, insert.dst)) break;
  }
  ASSERT_LT(insert.dst, graph.num_nodes());
  insert.add = true;
  EdgeUpdate remove = insert;
  remove.add = false;

  RouterOptions options;
  options.max_burst = 1;  // every update is its own burst
  auto router = MakeRouter(2, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  const std::vector<double> initial = (*router)->Snapshot()->scores;

  (*router)->Submit({insert});
  (*router)->Submit({remove});
  (*router)->Flush();
  ExpectSameBits((*router)->Snapshot()->scores, initial, "toggle");
  EXPECT_EQ((*router)->Stats().total_rejected, 0);
}

TEST(ShardRouterTest, DropModeShedsAllOrNothing) {
  // drop_when_full: an update shed from one shard must be shed from all
  // (replicas would diverge otherwise). Submit one update at a time and
  // record which were accepted; the drained router must equal the flat
  // oracle run over exactly the accepted subsequence.
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 16, /*seed=*/71);
  RouterOptions options;
  options.queue_capacity = 1;  // shed whenever a worker is mid-burst
  options.max_burst = 1;
  options.drop_when_full = true;
  auto router = MakeRouter(2, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  std::vector<EdgeUpdate> accepted;
  for (const EdgeUpdate& u : updates) {
    if ((*router)->Submit({u}) == 1) accepted.push_back(u);
  }
  (*router)->Flush();

  const RouterStats stats = (*router)->Stats();
  EXPECT_EQ(stats.total_dropped,
            static_cast<int64_t>(updates.size() - accepted.size()));
  for (const auto& s : stats.shards) {
    // Same stream on every replica: each shard enqueued every accepted
    // update and nothing else.
    EXPECT_EQ(s.enqueued, static_cast<int64_t>(accepted.size()))
        << "shard " << s.shard;
  }

  // The accepted subsequence may skip toggles, which can strand a
  // removal whose insert was dropped — the flat oracle skips those the
  // same way the workers do.
  FlatRun flat = RunFlat(accepted);
  auto snap = (*router)->Snapshot();
  EXPECT_TRUE(snap->stream_consistent);
  ExpectSameBits(snap->scores, flat.final_scores, "drop mode");
}

// ------------------------- reads and metrics ------------------------------

TEST(ShardRouterTest, QueryReadsTheLatestSnapshot) {
  auto router = MakeRouter(2);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  const int n = (*router)->num_nodes();
  const std::vector<double>& all = (*router)->Snapshot()->scores;

  auto subset = (*router)->Query({0, n - 1, n / 2});
  ASSERT_TRUE(subset.ok()) << subset.status().ToString();
  ASSERT_EQ(subset->size(), 3u);
  EXPECT_EQ((*subset)[0], all[0]);
  EXPECT_EQ((*subset)[1], all[n - 1]);
  EXPECT_EQ((*subset)[2], all[n / 2]);

  EXPECT_FALSE((*router)->Query({n}).ok());
  EXPECT_FALSE((*router)->Query({-1}).ok());

  // Epochs advance monotonically with published work.
  const uint64_t before = (*router)->Snapshot()->epoch;
  (*router)->Submit(MakeUpdateSequence(Fixture().graph, 4, /*seed=*/83));
  (*router)->Flush();
  EXPECT_GT((*router)->Snapshot()->epoch, before);
}

TEST(ShardRouterTest, StatsCoverEveryCounter) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 10, /*seed=*/97);
  RouterOptions options;
  options.max_burst = 4;
  auto router = MakeRouter(2, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  (*router)->Submit(updates);
  (*router)->Flush();

  const RouterStats stats = (*router)->Stats();
  EXPECT_EQ(stats.num_shards, 2);
  EXPECT_TRUE(stats.stream_consistent);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.total_enqueued, static_cast<int64_t>(2 * updates.size()));
  EXPECT_EQ(stats.total_applied, static_cast<int64_t>(2 * updates.size()));
  EXPECT_EQ(stats.total_rejected, 0);
  EXPECT_EQ(stats.total_dropped, 0);
  // One latency sample per update per shard; publish at least once each.
  EXPECT_EQ(stats.update_latency.count,
            static_cast<int64_t>(2 * updates.size()));
  EXPECT_GT(stats.publish_latency.count, 0);
  EXPECT_GE(stats.update_latency.p99_us, stats.update_latency.p50_us);
  EXPECT_GE(stats.cache_hit_rate, 0.0);
  EXPECT_LE(stats.cache_hit_rate, 1.0);

  int owned_total = 0;
  ASSERT_EQ(stats.shards.size(), 2u);
  for (const auto& s : stats.shards) {
    owned_total += s.owned_nodes;
    EXPECT_GT(s.owned_nodes, 0) << "degenerate partition";
    EXPECT_EQ(s.queue_depth, 0);
    EXPECT_GT(s.queue_peak, 0);
    EXPECT_EQ(s.update_latency.count, static_cast<int64_t>(updates.size()));
  }
  EXPECT_EQ(owned_total, (*router)->num_nodes());
  // The human-readable rendering names the headline fields.
  const std::string text = FormatRouterStats(stats);
  EXPECT_NE(text.find("stream-consistent"), std::string::npos);
  EXPECT_NE(text.find("update latency"), std::string::npos);
  EXPECT_NE(text.find("shard 1"), std::string::npos);
}

// ------------------------- component-provider mode ------------------------

TEST(ShardRouterTest, OwnerMaskedScorerProvidesComponentsOnly) {
  const int n = Fixture().graph.num_nodes();
  ServeOptions masked;
  masked.owned_nodes.assign(n, 0);
  for (int i = 0; i < n; i += 2) masked.owned_nodes[i] = 1;
  auto scorer =
      OnlineScorer::Create(Fixture().trained, Fixture().graph, masked);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  EXPECT_TRUE((*scorer)->component_only());
  EXPECT_TRUE((*scorer)->scores().empty());
  auto query = (*scorer)->Query({0});
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kFailedPrecondition);

  // Owned component slices are bit-identical to the unmasked scorer's —
  // the invariant the router's board gather rests on.
  auto flat = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(flat.ok());
  const auto masked_comps = (*scorer)->Components();
  const auto flat_comps = (*flat)->Components();
  ASSERT_EQ(masked_comps.size(), flat_comps.size());
  for (size_t v = 0; v < masked_comps.size(); ++v) {
    ASSERT_EQ(masked_comps[v].attr_used, flat_comps[v].attr_used);
    ASSERT_EQ(masked_comps[v].struct_used, flat_comps[v].struct_used);
    for (int i = 0; i < n; i += 2) {
      if (masked_comps[v].attr_used) {
        EXPECT_EQ((*masked_comps[v].attr_val)[i], (*flat_comps[v].attr_val)[i])
            << "view " << v << " node " << i;
      }
      if (masked_comps[v].struct_used) {
        for (int r = 0; r < Fixture().graph.num_relations(); ++r) {
          EXPECT_EQ((*masked_comps[v].residual)[r][i],
                    (*flat_comps[v].residual)[r][i])
              << "view " << v << " rel " << r << " node " << i;
        }
      }
    }
  }

  // A wrongly sized mask is rejected at Create.
  ServeOptions bad;
  bad.owned_nodes.assign(n + 1, 1);
  EXPECT_FALSE(
      OnlineScorer::Create(Fixture().trained, Fixture().graph, bad).ok());
}

// ------------------------- option validation ------------------------------

TEST(ShardRouterTest, CreateValidatesOptions) {
  RouterOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(
      ShardRouter::Create(Fixture().trained, Fixture().graph, options).ok());
  options = RouterOptions();
  options.queue_capacity = 0;
  EXPECT_FALSE(
      ShardRouter::Create(Fixture().trained, Fixture().graph, options).ok());
  options = RouterOptions();
  options.max_burst = 0;
  EXPECT_FALSE(
      ShardRouter::Create(Fixture().trained, Fixture().graph, options).ok());
  options = RouterOptions();
  options.serve.owned_nodes.assign(Fixture().graph.num_nodes(), 1);
  EXPECT_FALSE(
      ShardRouter::Create(Fixture().trained, Fixture().graph, options).ok());

  // Fingerprint mismatches fail the same way the flat scorer's Create does.
  MultiplexGraph other = MakeTiny(124);
  auto mismatch = ShardRouter::Create(Fixture().trained, other);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace umgad
