#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_ops.h"
#include "graph/multiplex_graph.h"
#include "tensor/init.h"

namespace umgad {
namespace {

MultiplexGraph TwoLayerGraph() {
  Rng rng(1);
  Tensor x = RandomNormal(6, 4, 0, 1, &rng);
  SparseMatrix a = SparseMatrix::FromEdges(
      6, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}}, true);
  SparseMatrix b =
      SparseMatrix::FromEdges(6, {Edge{3, 4}, Edge{4, 5}}, true);
  auto result = MultiplexGraph::Create("test", x, {a, b}, {"r1", "r2"},
                                       {0, 0, 1, 0, 0, 1});
  UMGAD_CHECK(result.ok());
  return std::move(result).value();
}

TEST(MultiplexGraphTest, CreateValidGraph) {
  MultiplexGraph g = TwoLayerGraph();
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_relations(), 2);
  EXPECT_EQ(g.feature_dim(), 4);
  EXPECT_EQ(g.num_edges(0), 3);
  EXPECT_EQ(g.num_edges(1), 2);
  EXPECT_EQ(g.total_edges(), 5);
  EXPECT_EQ(g.num_anomalies(), 2);
  EXPECT_EQ(g.relation_name(1), "r2");
  EXPECT_NE(g.Summary().find("|V|=6"), std::string::npos);
}

TEST(MultiplexGraphTest, RejectsNoLayers) {
  Rng rng(2);
  auto result = MultiplexGraph::Create("bad", RandomNormal(3, 2, 0, 1, &rng),
                                       {}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MultiplexGraphTest, RejectsShapeMismatch) {
  Rng rng(3);
  SparseMatrix wrong = SparseMatrix::FromEdges(4, {Edge{0, 1}}, true);
  auto result = MultiplexGraph::Create(
      "bad", RandomNormal(6, 2, 0, 1, &rng), {wrong}, {"r"});
  EXPECT_FALSE(result.ok());
}

TEST(MultiplexGraphTest, RejectsAsymmetricLayer) {
  Rng rng(4);
  SparseMatrix asym =
      SparseMatrix::FromCoo(3, 3, {0}, {1}, {1.0f});  // (0,1) only
  auto result = MultiplexGraph::Create(
      "bad", RandomNormal(3, 2, 0, 1, &rng), {asym}, {"r"});
  EXPECT_FALSE(result.ok());
}

TEST(MultiplexGraphTest, RejectsBadLabels) {
  Rng rng(5);
  SparseMatrix a = SparseMatrix::FromEdges(3, {Edge{0, 1}}, true);
  auto short_labels = MultiplexGraph::Create(
      "bad", RandomNormal(3, 2, 0, 1, &rng), {a}, {"r"}, {0, 1});
  EXPECT_FALSE(short_labels.ok());
  auto bad_values = MultiplexGraph::Create(
      "bad", RandomNormal(3, 2, 0, 1, &rng), {a}, {"r"}, {0, 2, 0});
  EXPECT_FALSE(bad_values.ok());
}

TEST(MultiplexGraphTest, RejectsNameCountMismatch) {
  Rng rng(6);
  SparseMatrix a = SparseMatrix::FromEdges(3, {Edge{0, 1}}, true);
  auto result = MultiplexGraph::Create(
      "bad", RandomNormal(3, 2, 0, 1, &rng), {a}, {"r1", "r2"});
  EXPECT_FALSE(result.ok());
}

TEST(GraphOpsTest, FlattenUnionsLayers) {
  MultiplexGraph g = TwoLayerGraph();
  SparseMatrix flat = FlattenToSingleView(g);
  EXPECT_TRUE(flat.Has(0, 1));
  EXPECT_TRUE(flat.Has(4, 5));
  EXPECT_TRUE(flat.Has(3, 4));
  EXPECT_EQ(flat.nnz(), 10);  // 5 undirected edges
}

TEST(GraphOpsTest, SampleEdgeMaskRatio) {
  Rng rng(7);
  std::vector<Edge> edges;
  for (int i = 0; i < 100; ++i) edges.push_back(Edge{i, (i + 1) % 100});
  SparseMatrix adj = SparseMatrix::FromEdges(100, edges, true);
  EdgeMask mask = SampleEdgeMask(adj, 0.4, &rng);
  EXPECT_EQ(mask.masked.size(), 40u);
  // Removed edges are gone in both directions.
  for (const Edge& e : mask.masked) {
    EXPECT_FALSE(mask.remaining.Has(e.src, e.dst));
    EXPECT_FALSE(mask.remaining.Has(e.dst, e.src));
  }
  EXPECT_EQ(mask.remaining.nnz(), adj.nnz() - 80);
}

TEST(GraphOpsTest, SampleEdgeMaskZeroAndFull) {
  Rng rng(8);
  SparseMatrix adj = SparseMatrix::FromEdges(
      5, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}}, true);
  EdgeMask none = SampleEdgeMask(adj, 0.0, &rng);
  EXPECT_TRUE(none.masked.empty());
  EXPECT_EQ(none.remaining.nnz(), adj.nnz());
  EdgeMask all = SampleEdgeMask(adj, 1.0, &rng);
  EXPECT_EQ(all.masked.size(), 3u);
  EXPECT_EQ(all.remaining.nnz(), 0);
}

TEST(GraphOpsTest, RemoveEdgesKeepsOthers) {
  SparseMatrix adj = SparseMatrix::FromEdges(
      4, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}}, true);
  SparseMatrix out = RemoveEdges(adj, {Edge{1, 2}});
  EXPECT_TRUE(out.Has(0, 1));
  EXPECT_FALSE(out.Has(1, 2));
  EXPECT_FALSE(out.Has(2, 1));
  EXPECT_TRUE(out.Has(2, 3));
}

TEST(GraphOpsTest, RemoveIncidentEdges) {
  SparseMatrix adj = SparseMatrix::FromEdges(
      5, {Edge{0, 1}, Edge{1, 2}, Edge{3, 4}}, true);
  EdgeMask mask = RemoveIncidentEdges(adj, {1});
  EXPECT_FALSE(mask.remaining.Has(0, 1));
  EXPECT_FALSE(mask.remaining.Has(1, 2));
  EXPECT_TRUE(mask.remaining.Has(3, 4));
  EXPECT_EQ(mask.masked.size(), 2u);
}

TEST(GraphOpsTest, KHopNeighborhood) {
  SparseMatrix adj = SparseMatrix::FromEdges(
      6, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}, Edge{4, 5}}, true);
  EXPECT_EQ(KHopNeighborhood(adj, 0, 0), (std::vector<int>{0}));
  EXPECT_EQ(KHopNeighborhood(adj, 0, 1), (std::vector<int>{0, 1}));
  EXPECT_EQ(KHopNeighborhood(adj, 0, 2), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(KHopNeighborhood(adj, 0, 10), (std::vector<int>{0, 1, 2, 3}));
}

TEST(GraphOpsTest, SampleNonNeighborsExcludesNeighbors) {
  Rng rng(9);
  SparseMatrix adj = SparseMatrix::FromEdges(
      20, {Edge{0, 1}, Edge{0, 2}, Edge{0, 3}}, true);
  std::vector<int> negs = SampleNonNeighbors(adj, 0, 10, &rng);
  EXPECT_EQ(negs.size(), 10u);
  for (int v : negs) {
    EXPECT_NE(v, 0);
    EXPECT_FALSE(adj.Has(0, v));
  }
}

TEST(GraphOpsTest, SampleNonNeighborsDenseRowFallback) {
  // Node 0 is connected to everyone: fallback must still return `count`
  // ids (arbitrary but valid).
  Rng rng(10);
  std::vector<Edge> edges;
  for (int i = 1; i < 6; ++i) edges.push_back(Edge{0, i});
  SparseMatrix adj = SparseMatrix::FromEdges(6, edges, true);
  std::vector<int> negs = SampleNonNeighbors(adj, 0, 3, &rng);
  EXPECT_EQ(negs.size(), 3u);
}

}  // namespace
}  // namespace umgad
