#include <gtest/gtest.h>

#include "core/gmae.h"
#include "core/relation_fusion.h"
#include "tensor/init.h"

namespace umgad {
namespace {

std::shared_ptr<const SparseMatrix> ChainGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1});
  return std::make_shared<const SparseMatrix>(
      SparseMatrix::FromEdges(n, edges, true).NormalizedWithSelfLoops());
}

UmgadConfig SmallConfig(EncoderKind kind) {
  UmgadConfig config;
  config.encoder = kind;
  config.hidden_dim = 8;
  config.encoder_layers = 1;
  config.decoder_layers = 1;
  return config;
}

class GmaeEncoders : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(GmaeEncoders, ReconstructionShapes) {
  Rng rng(1);
  Gmae gmae(6, SmallConfig(GetParam()), &rng);
  auto adj = ChainGraph(10);
  Tensor x = RandomNormal(10, 6, 0, 1, &rng);
  ag::VarPtr recon = gmae.ReconstructAttributes(adj, x, {1, 3, 5});
  EXPECT_EQ(recon->value().rows(), 10);
  EXPECT_EQ(recon->value().cols(), 6);
  EXPECT_TRUE(recon->value().AllFinite());
  ag::VarPtr z = gmae.Embed(adj, x);
  EXPECT_EQ(z->value().rows(), 10);
  EXPECT_EQ(z->value().cols(), 8);
}

TEST_P(GmaeEncoders, MaskedInputChangesOutput) {
  Rng rng(2);
  Gmae gmae(4, SmallConfig(GetParam()), &rng);
  auto adj = ChainGraph(8);
  Tensor x = RandomNormal(8, 4, 0, 1, &rng);
  Tensor unmasked = gmae.ReconstructAttributes(adj, x, {})->value();
  Tensor masked = gmae.ReconstructAttributes(adj, x, {0, 1, 2, 3})->value();
  EXPECT_GT(MaxAbsDiff(unmasked, masked), 1e-6);
}

TEST_P(GmaeEncoders, DeeperEncoderBuilds) {
  Rng rng(3);
  UmgadConfig config = SmallConfig(GetParam());
  config.encoder_layers = 2;
  Gmae gmae(5, config, &rng);
  auto adj = ChainGraph(6);
  Tensor x = RandomNormal(6, 5, 0, 1, &rng);
  EXPECT_TRUE(gmae.Embed(adj, x)->value().AllFinite());
}

INSTANTIATE_TEST_SUITE_P(BothEncoders, GmaeEncoders,
                         ::testing::Values(EncoderKind::kGat,
                                           EncoderKind::kSgc),
                         [](const auto& info) {
                           return info.param == EncoderKind::kGat ? "GAT"
                                                                  : "SGC";
                         });

TEST(GmaeTest, MaskTokenIsTrainable) {
  Rng rng(4);
  Gmae gmae(4, SmallConfig(EncoderKind::kSgc), &rng);
  auto adj = ChainGraph(6);
  Tensor x = RandomNormal(6, 4, 0, 1, &rng);
  ag::VarPtr recon = gmae.ReconstructAttributes(adj, x, {2});
  ag::Backward(ag::Mean(recon));
  // The [MASK] token is the first registered parameter and must receive a
  // gradient through the masked row.
  bool token_has_grad = false;
  for (const auto& p : gmae.Parameters()) {
    if (p->value().rows() == 1 && p->value().cols() == 4 && p->has_grad() &&
        p->grad().SquaredNorm() > 0.0) {
      token_has_grad = true;
    }
  }
  EXPECT_TRUE(token_has_grad);
}

TEST(RelationFusionTest, LearnableWeightsAreTrainable) {
  Rng rng(5);
  RelationFusion fusion(3, /*learnable=*/true, &rng);
  EXPECT_EQ(fusion.Parameters().size(), 1u);
  std::vector<ag::VarPtr> xs = {
      ag::Constant(Tensor::Full(2, 2, 1.0f)),
      ag::Constant(Tensor::Full(2, 2, 2.0f)),
      ag::Constant(Tensor::Full(2, 2, 3.0f)),
  };
  ag::VarPtr fused = fusion.FuseTensors(xs);
  // Fused value is a convex combination: between min and max inputs.
  EXPECT_GT(fused->value().at(0, 0), 1.0f);
  EXPECT_LT(fused->value().at(0, 0), 3.0f);
  ag::Backward(ag::Mean(fused));
  EXPECT_GT(fusion.Parameters()[0]->grad().SquaredNorm(), 0.0);
}

TEST(RelationFusionTest, UniformModeHasNoParameters) {
  Rng rng(6);
  RelationFusion fusion(4, /*learnable=*/false, &rng);
  EXPECT_TRUE(fusion.Parameters().empty());
  std::vector<double> w = fusion.Weights();
  for (double v : w) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(RelationFusionTest, WeightsMatchSoftmaxOfLogits) {
  Rng rng(7);
  RelationFusion fusion(2, /*learnable=*/true, &rng);
  std::vector<double> w = fusion.Weights();
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-9);
  // Fusing scalar losses equals the weighted sum of the scalars.
  std::vector<ag::VarPtr> losses = {
      ag::Constant(Tensor::Full(1, 1, 2.0f)),
      ag::Constant(Tensor::Full(1, 1, 6.0f)),
  };
  ag::VarPtr fused = fusion.FuseLosses(losses);
  EXPECT_NEAR(fused->value().scalar(), w[0] * 2.0 + w[1] * 6.0, 1e-5);
}

}  // namespace
}  // namespace umgad
