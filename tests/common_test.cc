#include <algorithm>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace umgad {
namespace {

// --------------------------- Status / Result ------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad ratio");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ratio");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad ratio");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  UMGAD_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// --------------------------------- Rng ------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double mean = 0.0;
  double var = 0.0;
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.Normal();
    mean += xs[i];
  }
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  std::vector<int> s = rng.SampleWithoutReplacement(100, 40);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 40u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(23);
  std::vector<int> s = rng.SampleWithoutReplacement(10, 10);
  std::sort(s.begin(), s.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, PermutationIsBijection) {
  Rng rng(29);
  std::vector<int> p = rng.Permutation(50);
  std::set<int> uniq(p.begin(), p.end());
  EXPECT_EQ(uniq.size(), 50u);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.SampleDiscrete(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleDiscreteAllZeroFallsBackToUniform) {
  Rng rng(37);
  std::vector<double> w = {0.0, 0.0};
  int c1 = 0;
  for (int i = 0; i < 1000; ++i) c1 += rng.SampleDiscrete(w);
  EXPECT_GT(c1, 300);
  EXPECT_LT(c1, 700);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

// ----------------------------- string_util --------------------------------

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinBasic) {
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtilTest, FormatFloatPrecision) {
  EXPECT_EQ(FormatFloat(0.77025, 3), "0.770");
}

TEST(StringUtilTest, FormatMeanStdUsesPlusMinus) {
  std::string cell = FormatMeanStd(0.77, 0.009, 3);
  EXPECT_NE(cell.find("0.770"), std::string::npos);
  EXPECT_NE(cell.find("\xC2\xB1"), std::string::npos);
  EXPECT_NE(cell.find("0.009"), std::string::npos);
}

// ---------------------------- TablePrinter --------------------------------

TEST(TablePrinterTest, PrintsAlignedTable) {
  TablePrinter table("demo");
  table.SetHeader({"Method", "AUC"});
  table.AddRow({"Radar", "0.625"});
  table.AddRow({"UMGAD", "0.770"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("Radar"), std::string::npos);
  EXPECT_NE(out.find("0.770"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesCommas) {
  TablePrinter table;
  table.SetHeader({"a", "b"});
  table.AddRow({"x,y", "z"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table;
  table.SetHeader({"a"});
  EXPECT_EQ(table.num_rows(), 0);
  table.AddRow({"1"});
  EXPECT_EQ(table.num_rows(), 1);
}

// -------------------------------- Timer -----------------------------------

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

}  // namespace
}  // namespace umgad
