// Concurrency and lifetime regression for the serve layer, meant to run
// under TSan and ASan/LSan in CI as well as plain builds:
//  - readers hammer Query()/Snapshot()/Stats() while Submit() streams
//    update bursts through the shard workers — snapshots must never be
//    torn (right size, monotone epochs, coherent min/max positions) and
//    the drained result must still equal the flat oracle bit for bit;
//  - repeated TrainedModel::Load/Score and OnlineScorer/ShardRouter
//    rebuilds must not leak persistent tape nodes: every rebuild runs
//    inside a ParamScope that rewinds the persistent arena region
//    (ROADMAP item 2 — previously each rebuild leaked its parameter
//    leaves for the process lifetime).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_io.h"
#include "core/umgad.h"
#include "graph/datasets.h"
#include "serve/dynamic_adjacency.h"
#include "serve/online_scorer.h"
#include "serve/shard_router.h"
#include "tensor/autograd.h"

namespace umgad {
namespace {

using serve::DynamicAdjacency;
using serve::EdgeUpdate;
using serve::OnlineScorer;
using serve::RouterOptions;
using serve::ScoreSnapshot;
using serve::ShardRouter;

UmgadConfig ServeConfig() {
  UmgadConfig config;
  config.epochs = 2;
  config.hidden_dim = 8;
  config.mask_repeats = 1;
  config.num_subgraphs = 1;
  config.subgraph_size = 4;
  config.num_score_negatives = 2;
  config.seed = 5;
  return config;
}

struct ConcurrencyFixture {
  MultiplexGraph graph = MakeTiny(123);
  UmgadModel model{ServeConfig()};
  TrainedModel trained;

  ConcurrencyFixture() {
    UMGAD_CHECK(model.Fit(graph).ok());
    auto snapshot = TrainedModel::FromFitted(model, graph);
    UMGAD_CHECK(snapshot.ok());
    trained = *std::move(snapshot);
  }
};

const ConcurrencyFixture& Fixture() {
  static const ConcurrencyFixture* fixture = new ConcurrencyFixture();
  return *fixture;
}

std::vector<EdgeUpdate> MakeUpdateSequence(const MultiplexGraph& graph,
                                           int count, uint64_t seed) {
  std::vector<DynamicAdjacency> mirror;
  for (int r = 0; r < graph.num_relations(); ++r) {
    mirror.emplace_back(graph.layer(r));
  }
  Rng rng(seed);
  std::vector<EdgeUpdate> updates;
  while (static_cast<int>(updates.size()) < count) {
    EdgeUpdate u;
    u.relation = static_cast<int>(rng.UniformInt(graph.num_relations()));
    u.src = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    u.dst = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    if (u.src == u.dst) continue;
    u.add = !mirror[u.relation].Has(u.src, u.dst);
    if (u.add) {
      mirror[u.relation].AddEntry(u.src, u.dst, 1.0f);
      mirror[u.relation].AddEntry(u.dst, u.src, 1.0f);
    } else {
      mirror[u.relation].RemoveEntry(u.src, u.dst);
      mirror[u.relation].RemoveEntry(u.dst, u.src);
    }
    updates.push_back(u);
  }
  return updates;
}

// ------------------------- the TSan hammer --------------------------------

TEST(ServeConcurrencyTest, ConcurrentQueriesNeverTearDuringBursts) {
  const int n = Fixture().graph.num_nodes();
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 24, /*seed=*/131);

  RouterOptions options;
  options.num_shards = 2;
  options.max_burst = 3;
  auto router =
      ShardRouter::Create(Fixture().trained, Fixture().graph, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_epoch = 0;
      Rng rng(1000 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        auto snap = (*router)->Snapshot();
        // Never torn: the snapshot is immutable and fully formed at
        // publish, so its invariants hold no matter when it is read.
        if (snap == nullptr || snap->epoch == 0 ||
            snap->scores.size() != static_cast<size_t>(n) ||
            snap->min_applied > snap->max_applied ||
            snap->epoch < last_epoch) {
          failures.fetch_add(1);
          return;
        }
        last_epoch = snap->epoch;
        const int node = static_cast<int>(rng.UniformInt(n));
        auto score = (*router)->Query({node});
        if (!score.ok()) {
          failures.fetch_add(1);
          return;
        }
        if ((*score)[0] != snap->scores[node]) {
          // A Query after Snapshot may see a *newer* snapshot, never an
          // older or partial one. Same epoch means the same immutable
          // snapshot object, so differing bits would be a torn read.
          auto again = (*router)->Snapshot();
          if (again->epoch <= snap->epoch) {
            failures.fetch_add(1);
            return;
          }
        }
        const auto stats = (*router)->Stats();
        if (stats.num_shards != 2 || stats.total_applied < 0 ||
            stats.queue_depth < 0) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // Stream the updates in small bursts while the readers run.
  for (size_t k = 0; k < updates.size(); k += 4) {
    const size_t end = std::min(updates.size(), k + 4);
    std::vector<EdgeUpdate> burst(updates.begin() + static_cast<long>(k),
                                  updates.begin() + static_cast<long>(end));
    (*router)->Submit(burst);
  }
  (*router)->Flush();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Drained: the concurrent run still lands on the flat oracle's bits.
  auto flat = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(flat.ok());
  for (const EdgeUpdate& u : updates) {
    ASSERT_TRUE((*flat)->ApplyEdgeUpdate(u).ok());
  }
  auto snap = (*router)->Snapshot();
  EXPECT_TRUE(snap->stream_consistent);
  ASSERT_EQ(snap->scores.size(), (*flat)->scores().size());
  for (size_t i = 0; i < snap->scores.size(); ++i) {
    EXPECT_EQ(snap->scores[i], (*flat)->scores()[i]) << "node " << i;
  }
}

TEST(ServeConcurrencyTest, ConcurrentSubmittersShareOneStreamOrder) {
  // Two producers race Submit(); the router serialises them into one
  // global order, so every shard applies the same stream and the final
  // snapshot is stream-consistent. The two toggle sequences touch
  // disjoint edges, so every interleaving is valid and converges to the
  // same final adjacency.
  const std::vector<EdgeUpdate> a =
      MakeUpdateSequence(Fixture().graph, 8, /*seed=*/151);
  EdgeUpdate insert;  // a fresh edge 'b' toggles on and off repeatedly
  insert.relation = 0;
  insert.src = 0;
  const MultiplexGraph& graph = Fixture().graph;
  for (insert.dst = 1; insert.dst < graph.num_nodes(); ++insert.dst) {
    if (!graph.layer(0).Has(insert.src, insert.dst)) break;
  }
  ASSERT_LT(insert.dst, graph.num_nodes());
  bool overlaps = false;
  for (const EdgeUpdate& u : a) {
    if (u.relation == insert.relation &&
        ((u.src == insert.src && u.dst == insert.dst) ||
         (u.src == insert.dst && u.dst == insert.src))) {
      overlaps = true;
    }
  }
  ASSERT_FALSE(overlaps) << "fixture sequences must touch disjoint edges";

  RouterOptions options;
  options.num_shards = 2;
  options.max_burst = 2;
  auto router =
      ShardRouter::Create(Fixture().trained, Fixture().graph, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  std::thread producer_a([&] {
    for (const EdgeUpdate& u : a) (*router)->Submit({u});
  });
  std::thread producer_b([&] {
    for (int k = 0; k < 4; ++k) {
      EdgeUpdate on = insert;
      on.add = true;
      EdgeUpdate off = insert;
      off.add = false;
      (*router)->Submit({on, off});
    }
  });
  producer_a.join();
  producer_b.join();
  (*router)->Flush();

  const auto snap = (*router)->Snapshot();
  EXPECT_TRUE(snap->stream_consistent);
  EXPECT_EQ(snap->max_applied, static_cast<int64_t>(a.size() + 8));
  EXPECT_EQ((*router)->Stats().total_rejected, 0);

  // b's toggles cancel, so the result is just a's sequence applied flat.
  auto flat = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(flat.ok());
  for (const EdgeUpdate& u : a) {
    ASSERT_TRUE((*flat)->ApplyEdgeUpdate(u).ok());
  }
  ASSERT_EQ(snap->scores.size(), (*flat)->scores().size());
  for (size_t i = 0; i < snap->scores.size(); ++i) {
    EXPECT_EQ(snap->scores[i], (*flat)->scores()[i]) << "node " << i;
  }
}

// ------------------------- persistent-leaf reclamation --------------------

TEST(ServeConcurrencyTest, ScorerRebuildsDoNotLeakPersistentNodes) {
  ASSERT_GT(Fixture().graph.num_nodes(), 0);  // force fixture construction
  const int64_t baseline = ag::Tape::Global().stats().persistent_nodes;
  for (int round = 0; round < 3; ++round) {
    auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
    ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
    EXPECT_FALSE((*scorer)->scores().empty());
  }
  EXPECT_EQ(ag::Tape::Global().stats().persistent_nodes, baseline)
      << "OnlineScorer::Create leaked parameter leaves";
}

TEST(ServeConcurrencyTest, RouterRebuildsDoNotLeakPersistentNodes) {
  ASSERT_GT(Fixture().graph.num_nodes(), 0);
  const int64_t baseline = ag::Tape::Global().stats().persistent_nodes;
  for (int round = 0; round < 2; ++round) {
    RouterOptions options;
    options.num_shards = 2;
    auto router =
        ShardRouter::Create(Fixture().trained, Fixture().graph, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    (*router)->Submit(MakeUpdateSequence(Fixture().graph, 4, /*seed=*/161));
    (*router)->Flush();
  }
  EXPECT_EQ(ag::Tape::Global().stats().persistent_nodes, baseline)
      << "ShardRouter rebuilds leaked parameter leaves";
}

TEST(ServeConcurrencyTest, LoadScoreLoopsDoNotLeakPersistentNodes) {
  const std::string path = ::testing::TempDir() + "/leak_loop.umgm";
  ASSERT_TRUE(Fixture().trained.Save(path).ok());
  const int64_t baseline = ag::Tape::Global().stats().persistent_nodes;
  for (int round = 0; round < 3; ++round) {
    auto loaded = TrainedModel::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto scores = loaded->Score(Fixture().graph);
    ASSERT_TRUE(scores.ok()) << scores.status().ToString();
    EXPECT_EQ(scores->size(),
              static_cast<size_t>(Fixture().graph.num_nodes()));
  }
  std::remove(path.c_str());
  EXPECT_EQ(ag::Tape::Global().stats().persistent_nodes, baseline)
      << "TrainedModel::Load/Score loop leaked parameter leaves";
}

}  // namespace
}  // namespace umgad
