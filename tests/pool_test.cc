// TensorPool unit tests: bucket reuse, stats accounting, arena on/off
// behaviour, Trim, and the Tensor/PooledBuffer integration, plus the
// loss-backward ownership-bucket scratch reuse counter. The end-to-end
// "steady-state epochs allocate zero tensor bytes" contract is covered in
// determinism_test.cc and autograd_test.cc.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/loss.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace umgad {
namespace {

class ArenaGuard {
 public:
  ArenaGuard() : prev_(ArenaEnabled()) {}
  ~ArenaGuard() { SetArenaEnabled(prev_); }

 private:
  bool prev_;
};

TEST(TensorPoolTest, ReleasedBufferIsReused) {
  ArenaGuard guard;
  SetArenaEnabled(true);
  TensorPool& pool = TensorPool::Global();

  float* p = pool.Acquire(12345);
  const TensorPool::Stats before = pool.stats();
  pool.Release(p, 12345);
  float* q = pool.Acquire(12345);
  const TensorPool::Stats after = pool.stats();
  EXPECT_EQ(p, q) << "same-size acquire must pop the cached buffer";
  EXPECT_EQ(after.fresh_buffers, before.fresh_buffers);
  EXPECT_EQ(after.reused_buffers, before.reused_buffers + 1);
  pool.Release(q, 12345);
}

TEST(TensorPoolTest, AcquireZeroInitialises) {
  ArenaGuard guard;
  SetArenaEnabled(true);
  TensorPool& pool = TensorPool::Global();
  float* p = pool.AcquireUninit(777);
  for (size_t i = 0; i < 777; ++i) p[i] = 42.0f;
  pool.Release(p, 777);
  // Recycled buffer must come back zeroed through the zeroing entry point,
  // or results would depend on what previously lived in the buffer.
  float* q = pool.Acquire(777);
  for (size_t i = 0; i < 777; ++i) ASSERT_EQ(q[i], 0.0f) << i;
  pool.Release(q, 777);
}

TEST(TensorPoolTest, DisabledModeDoesNotCache) {
  ArenaGuard guard;
  SetArenaEnabled(false);
  TensorPool& pool = TensorPool::Global();
  const TensorPool::Stats before = pool.stats();
  float* p = pool.Acquire(4321);
  pool.Release(p, 4321);
  const TensorPool::Stats after = pool.stats();
  EXPECT_EQ(after.fresh_buffers, before.fresh_buffers + 1);
  EXPECT_EQ(after.cached_buffers, before.cached_buffers);
}

TEST(TensorPoolTest, TrimFreesCachedBuffers) {
  ArenaGuard guard;
  SetArenaEnabled(true);
  TensorPool& pool = TensorPool::Global();
  pool.Release(pool.Acquire(999), 999);
  EXPECT_GT(pool.stats().cached_buffers, 0);
  pool.Trim();
  EXPECT_EQ(pool.stats().cached_buffers, 0);
  EXPECT_EQ(pool.stats().cached_bytes, 0);
}

TEST(TensorPoolTest, TensorRoundTripsThroughPool) {
  ArenaGuard guard;
  SetArenaEnabled(true);
  TensorPool& pool = TensorPool::Global();
  pool.Trim();
  const float* recycled;
  {
    Tensor t(31, 7);
    t.Fill(3.0f);
    recycled = t.data();
  }  // t's buffer returns to the pool here
  Tensor u(31, 7);
  EXPECT_EQ(u.data(), recycled);
  EXPECT_DOUBLE_EQ(u.Sum(), 0.0) << "recycled tensors must be zeroed";
}

TEST(TensorPoolTest, TensorCopyAndMoveSemantics) {
  Tensor a(5, 4);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<float>(i);
  Tensor copy = a;
  EXPECT_NE(copy.data(), a.data());
  EXPECT_EQ(MaxAbsDiff(copy, a), 0.0);

  const float* buf = a.data();
  Tensor moved = std::move(a);
  EXPECT_EQ(moved.data(), buf) << "move must transfer the buffer";

  Tensor assigned(5, 4);
  assigned = copy;  // same size: reuses its own buffer
  EXPECT_EQ(MaxAbsDiff(assigned, copy), 0.0);
  Tensor reshaped(2, 2);
  reshaped = copy;  // different size: reallocates
  EXPECT_EQ(MaxAbsDiff(reshaped, copy), 0.0);
}

TEST(TensorPoolTest, LossBackwardScratchIsReusedAcrossSteps) {
  // The counting-sort ownership buckets both parallel losses build per
  // backward come from per-thread reusable scratch. Shapes repeat across
  // training steps, so after one warm step every further backward at the
  // same shapes must allocate zero fresh scratch bytes. Run at 4 threads:
  // the 1-thread fast path of MaskedEdgeSoftmaxCE skips the buckets
  // entirely, and wide-backward closures execute on this (the calling)
  // thread, so the same thread_local scratch serves every repeat.
  const int prev_threads = NumThreads();
  SetNumThreads(4);
  const int n = 60;
  Rng rng(51);
  Tensor z = RandomNormal(n, 8, 0.0, 0.5, &rng);
  Tensor zo = RandomNormal(n, 8, 0.0, 0.4, &rng);
  Tensor za = RandomNormal(n, 8, 0.0, 0.4, &rng);
  const std::vector<ag::EdgeCandidateSet> sets =
      nn::RandomEdgeCandidates(n, /*num_sets=*/40, /*negatives=*/4, &rng);
  const std::vector<int> neg = nn::SampleContrastiveNegatives(n, &rng);

  auto step = [&] {
    ag::Backward(ag::MaskedEdgeSoftmaxCE(ag::Leaf(z), sets));
    ag::Tape::Global().Reset();
    ag::Backward(ag::DualContrastiveLoss(ag::Leaf(zo), ag::Leaf(za), neg));
    ag::Tape::Global().Reset();
  };
  step();  // warm step: sizes the scratch once
  const int64_t warm_bytes = ag::LossScratchFreshBytes();
  for (int rep = 0; rep < 3; ++rep) step();
  EXPECT_EQ(ag::LossScratchFreshBytes(), warm_bytes)
      << "steady-state loss backwards must reuse the bucket scratch";
  SetNumThreads(prev_threads);
}

TEST(TensorPoolTest, PooledBufferReturnsOnScopeExit) {
  ArenaGuard guard;
  SetArenaEnabled(true);
  TensorPool& pool = TensorPool::Global();
  const float* inner;
  {
    PooledBuffer buf(2048);
    inner = buf.get();
  }
  float* again = pool.AcquireUninit(2048);
  EXPECT_EQ(again, inner);
  pool.Release(again, 2048);
}

}  // namespace
}  // namespace umgad
