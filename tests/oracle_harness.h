#ifndef UMGAD_TESTS_ORACLE_HARNESS_H_
#define UMGAD_TESTS_ORACLE_HARNESS_H_

// Differential-oracle harness: every parallel kernel in this repo ships
// with a kept-serial naive twin (MatMulNaive, MultiplyTransposedNaive,
// GatAttentionNaive, *LossNaive, ...), and its contract is "same floats,
// any UMGAD_THREADS, any UMGAD_ARENA mode". This header turns the
// previously copy-pasted sweep loops into one helper:
//
//   ExpectBitIdentical("matmul 129x65x200",
//                      [&] { return Tensors{MatMul(a, b)}; },
//                      [&] { return Tensors{MatMulNaive(a, b)}; });
//
// The naive callable runs once at 1 thread / arena on to produce the
// reference; then *both* callables re-run under every thread-count x
// arena-mode combination and every output tensor is compared against the
// reference with MaxAbsDiff (== 0 by default; a nonzero `tolerance` is for
// kernels that document a changed accumulation precision, e.g.
// MatMulTransB's float vs the naive double).
//
// Callables must rebuild their computation from scratch on every
// invocation: the harness rewinds the global tape before each call, so
// tape-based kernels (ops that run forward + Backward and return the loss
// and leaf gradients) get a fresh transient arena each time. Shape sweeps
// stay with the caller (gtest TEST_P), thread/arena sweeps live here.

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "graph/multiplex_graph.h"
#include "tensor/autograd.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace umgad {
namespace testing {

/// The sweep grid (and tolerance) ExpectBitIdentical runs.
struct OracleSweep {
  std::vector<int> thread_counts = {1, 4};
  std::vector<bool> arena_modes = {true, false};
  /// MaxAbsDiff bound per output tensor; 0 = bit-identical.
  double tolerance = 0.0;
};

using Tensors = std::vector<Tensor>;
using TensorsFn = std::function<Tensors()>;

inline void ExpectBitIdentical(const std::string& label,
                               const TensorsFn& kernel, const TensorsFn& naive,
                               const OracleSweep& sweep = {}) {
  const bool prev_arena = ArenaEnabled();
  SetNumThreads(1);
  SetArenaEnabled(true);
  ag::Tape::Global().Reset();
  const Tensors reference = naive();
  ASSERT_FALSE(reference.empty()) << label << ": oracle produced no outputs";

  for (bool arena : sweep.arena_modes) {
    for (int threads : sweep.thread_counts) {
      SetArenaEnabled(arena);
      SetNumThreads(threads);
      for (int variant = 0; variant < 2; ++variant) {
        ag::Tape::Global().Reset();
        const Tensors got = variant == 0 ? kernel() : naive();
        ASSERT_EQ(got.size(), reference.size())
            << label << ": output-count mismatch";
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_LE(MaxAbsDiff(got[i], reference[i]), sweep.tolerance)
              << label << " [" << (variant == 0 ? "kernel" : "naive")
              << "] output " << i << " threads=" << threads
              << " arena=" << (arena ? 1 : 0);
        }
      }
    }
  }
  ag::Tape::Global().Reset();
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

/// Asserts two graphs are bit-for-bit identical: same name, shapes,
/// relation names, labels, CSR arrays, and attribute *bytes*. Floats are
/// compared through memcmp, not ==, so the check is exact and NaN-proof —
/// the contract of the io differential harness is "every loader yields the
/// same bits", not "approximately the same graph".
inline void ExpectGraphsBitIdentical(const std::string& label,
                                     const MultiplexGraph& actual,
                                     const MultiplexGraph& expected) {
  EXPECT_EQ(actual.name(), expected.name()) << label;
  ASSERT_EQ(actual.num_nodes(), expected.num_nodes()) << label;
  ASSERT_EQ(actual.feature_dim(), expected.feature_dim()) << label;
  ASSERT_EQ(actual.num_relations(), expected.num_relations()) << label;
  EXPECT_EQ(actual.labels(), expected.labels()) << label;
  for (int r = 0; r < expected.num_relations(); ++r) {
    EXPECT_EQ(actual.relation_name(r), expected.relation_name(r))
        << label << ": relation " << r;
    const SparseMatrix& a = actual.layer(r);
    const SparseMatrix& e = expected.layer(r);
    EXPECT_EQ(a.row_ptr(), e.row_ptr())
        << label << ": layer " << r << " row_ptr";
    EXPECT_EQ(a.col_idx(), e.col_idx())
        << label << ": layer " << r << " col_idx";
    ASSERT_EQ(a.nnz(), e.nnz()) << label << ": layer " << r;
    EXPECT_EQ(std::memcmp(a.values().data(), e.values().data(),
                          static_cast<size_t>(e.nnz()) * sizeof(float)),
              0)
        << label << ": layer " << r << " values differ";
  }
  const size_t attr_bytes = static_cast<size_t>(expected.num_nodes()) *
                            expected.feature_dim() * sizeof(float);
  EXPECT_EQ(std::memcmp(actual.attributes().data(),
                        expected.attributes().data(), attr_bytes),
            0)
      << label << ": attribute bytes differ";
}

}  // namespace testing
}  // namespace umgad

#endif  // UMGAD_TESTS_ORACLE_HARNESS_H_
