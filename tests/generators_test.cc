#include <cstdio>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"

namespace umgad {
namespace {

TEST(GeneratorsTest, SbmHitsEdgeBudget) {
  Rng rng(1);
  SbmMultiplexConfig config;
  config.num_nodes = 500;
  config.feature_dim = 8;
  config.relations = {{.name = "a", .target_edges = 1500}};
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);
  // Duplicate draws collapse, so the realised count is slightly below the
  // budget but must be in the right ballpark.
  EXPECT_GT(g.num_edges(0), 1200);
  EXPECT_LE(g.num_edges(0), 1500);
}

TEST(GeneratorsTest, SubsetRelationIsSubset) {
  Rng rng(2);
  SbmMultiplexConfig config;
  config.num_nodes = 400;
  config.feature_dim = 8;
  config.relations = {
      {.name = "view", .target_edges = 1200},
      {.name = "cart", .target_edges = 0, .subset_of = 0,
       .subset_frac = 0.3},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);
  EXPECT_LT(g.num_edges(1), g.num_edges(0));
  // Every cart edge exists in view.
  const SparseMatrix& cart = g.layer(1);
  const auto& rp = cart.row_ptr();
  const auto& ci = cart.col_idx();
  for (int i = 0; i < cart.rows(); ++i) {
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      EXPECT_TRUE(g.layer(0).Has(i, ci[k]));
    }
  }
}

TEST(GeneratorsTest, AttributesClusterByCommunity) {
  Rng rng(3);
  SbmMultiplexConfig config;
  config.num_nodes = 300;
  config.feature_dim = 16;
  config.num_communities = 3;
  config.attribute_noise = 0.2;
  config.relations = {{.name = "a", .target_edges = 900,
                       .intra_community_prob = 0.95}};
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);
  // Connected nodes (mostly same community) are more similar than random
  // pairs on average.
  const Tensor& x = g.attributes();
  const SparseMatrix& adj = g.layer(0);
  double edge_sim = 0.0;
  int edge_count = 0;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  for (int i = 0; i < adj.rows(); ++i) {
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      edge_sim += x.RowDot(i, x, ci[k]) /
                  (x.RowNorm(i) * x.RowNorm(ci[k]) + 1e-12);
      ++edge_count;
    }
  }
  edge_sim /= edge_count;
  Rng pair_rng(4);
  double random_sim = 0.0;
  for (int t = 0; t < 2000; ++t) {
    int i = static_cast<int>(pair_rng.UniformInt(300));
    int j = static_cast<int>(pair_rng.UniformInt(300));
    random_sim += x.RowDot(i, x, j) /
                  (x.RowNorm(i) * x.RowNorm(j) + 1e-12);
  }
  random_sim /= 2000;
  EXPECT_GT(edge_sim, random_sim + 0.2);
}

TEST(GeneratorsTest, FraudRingsLabelMembers) {
  Rng rng(5);
  SbmMultiplexConfig config;
  config.num_nodes = 400;
  config.feature_dim = 8;
  config.relations = {
      {.name = "a", .target_edges = 1200},
      {.name = "b", .target_edges = 600},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);
  FraudRingConfig rings;
  rings.num_rings = 4;
  rings.ring_size = 6;
  rings.relation_affinity = {0.8, 0.4};
  std::vector<int> members = PlantFraudRings(&g, rings, &rng);
  EXPECT_EQ(members.size(), 24u);
  EXPECT_EQ(g.num_anomalies(), 24);
}

TEST(GeneratorsTest, FraudMembersDeviateFromOriginalAttributes) {
  Rng rng(6);
  SbmMultiplexConfig config;
  config.num_nodes = 300;
  config.feature_dim = 8;
  config.relations = {{.name = "a", .target_edges = 900}};
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);
  Tensor before = g.attributes();
  FraudRingConfig rings;
  rings.num_rings = 3;
  rings.ring_size = 5;
  rings.relation_affinity = {1.0};
  rings.camouflage = 0.5;
  std::vector<int> members = PlantFraudRings(&g, rings, &rng);
  for (int v : members) {
    EXPECT_GT(MaxAbsDiff(GatherRows(before, {v}),
                         GatherRows(g.attributes(), {v})),
              0.01);
  }
}

// ------------------------- dataset registry -------------------------------

class DatasetSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSmoke, GeneratesValidGraph) {
  // Tiny scale keeps the parameterised sweep fast; structure checks only.
  const double scale = (GetParam() == "DG-Fin" || GetParam() == "T-Social")
                           ? 0.02
                           : 0.15;
  auto result = MakeDataset(GetParam(), /*seed=*/11, scale);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MultiplexGraph& g = *result;
  EXPECT_GT(g.num_nodes(), 0);
  EXPECT_EQ(g.num_relations(), 3);
  EXPECT_TRUE(g.has_labels());
  EXPECT_GT(g.num_anomalies(), 0);
  EXPECT_LT(g.num_anomalies(), g.num_nodes() / 2);
  EXPECT_TRUE(g.attributes().AllFinite());
  EXPECT_EQ(g.name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSmoke,
                         ::testing::Values("Retail", "Alibaba", "Amazon",
                                           "YelpChi", "DG-Fin", "T-Social"));

TEST(DatasetsTest, UnknownNameIsNotFound) {
  auto result = MakeDataset("NoSuchDataset", 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatasetsTest, TinyDatasetShape) {
  MultiplexGraph g = MakeTiny(3);
  EXPECT_EQ(g.num_nodes(), 200);
  EXPECT_EQ(g.num_relations(), 2);
  EXPECT_EQ(g.num_anomalies(), 10);
}

TEST(DatasetsTest, NameListsMatchPaper) {
  EXPECT_EQ(SmallDatasetNames(),
            (std::vector<std::string>{"Retail", "Alibaba", "Amazon",
                                      "YelpChi"}));
  EXPECT_EQ(LargeDatasetNames(),
            (std::vector<std::string>{"DG-Fin", "T-Social"}));
}

TEST(DatasetsTest, DeterministicPerSeed) {
  MultiplexGraph a = MakeTiny(42);
  MultiplexGraph b = MakeTiny(42);
  EXPECT_LT(MaxAbsDiff(a.attributes(), b.attributes()), 1e-9);
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.layer(0).nnz(), b.layer(0).nnz());
}

TEST(DatasetsTest, SaveLoadRoundTrip) {
  MultiplexGraph g = MakeTiny(7);
  const std::string path = ::testing::TempDir() + "/tiny_roundtrip.txt";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_relations(), g.num_relations());
  EXPECT_EQ(loaded->labels(), g.labels());
  EXPECT_EQ(loaded->layer(0).nnz(), g.layer(0).nnz());
  EXPECT_EQ(loaded->layer(1).nnz(), g.layer(1).nnz());
  // max_digits10 serialisation makes the text round trip bit-exact.
  EXPECT_EQ(MaxAbsDiff(loaded->attributes(), g.attributes()), 0.0);
  std::remove(path.c_str());
}

TEST(DatasetsTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("not a graph\n", f);
  fclose(f);
  EXPECT_FALSE(LoadGraph(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadGraph("/nonexistent/path.txt").ok());
}

}  // namespace
}  // namespace umgad
