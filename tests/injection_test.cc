#include <gtest/gtest.h>

#include "graph/anomaly_injection.h"
#include "graph/generators.h"

namespace umgad {
namespace {

MultiplexGraph BaseGraph(uint64_t seed) {
  Rng rng(seed);
  SbmMultiplexConfig config;
  config.name = "base";
  config.num_nodes = 300;
  config.feature_dim = 8;
  config.num_communities = 4;
  config.relations = {
      {.name = "a", .target_edges = 900},
      {.name = "b", .target_edges = 400},
  };
  return GenerateSbmMultiplex(config, &rng);
}

TEST(InjectionTest, StructuralCreatesCliques) {
  MultiplexGraph g = BaseGraph(1);
  Rng rng(2);
  InjectionConfig config;
  config.clique_size = 4;
  config.num_cliques = 2;
  std::vector<int> affected = InjectStructuralAnomalies(&g, config, &rng);
  EXPECT_EQ(affected.size(), 8u);
  // Every clique is fully connected in at least one layer.
  for (int c = 0; c < 2; ++c) {
    for (int a = 0; a < 4; ++a) {
      for (int b = a + 1; b < 4; ++b) {
        const int u = affected[c * 4 + a];
        const int v = affected[c * 4 + b];
        bool connected = false;
        for (int r = 0; r < g.num_relations(); ++r) {
          connected = connected || g.layer(r).Has(u, v);
        }
        EXPECT_TRUE(connected) << "missing clique edge " << u << "-" << v;
      }
    }
  }
  for (int v : affected) EXPECT_EQ(g.labels()[v], 1);
  EXPECT_EQ(g.num_anomalies(), 8);
}

TEST(InjectionTest, AttributeSwapsToDistantNode) {
  MultiplexGraph g = BaseGraph(3);
  Tensor before = g.attributes();
  Rng rng(4);
  InjectionConfig config;
  config.num_attribute_anomalies = 10;
  config.candidate_pool = 40;
  std::vector<int> affected = InjectAttributeAnomalies(&g, config, &rng);
  EXPECT_EQ(affected.size(), 10u);
  int changed = 0;
  for (int v : affected) {
    EXPECT_EQ(g.labels()[v], 1);
    if (MaxAbsDiff(GatherRows(before, {v}),
                   GatherRows(g.attributes(), {v})) > 1e-6) {
      ++changed;
    }
  }
  // Swapping to the most distant of 40 candidates always changes the row
  // (identical rows would need exact duplicates in random data).
  EXPECT_EQ(changed, 10);
}

TEST(InjectionTest, CombinedInjectionDisjointSets) {
  MultiplexGraph g = BaseGraph(5);
  Rng rng(6);
  InjectionConfig config;
  config.clique_size = 5;
  config.num_cliques = 3;
  config.num_attribute_anomalies = 15;
  std::vector<int> affected = InjectAnomalies(&g, config, &rng);
  EXPECT_EQ(affected.size(), 30u);
  std::set<int> uniq(affected.begin(), affected.end());
  EXPECT_EQ(uniq.size(), 30u) << "structural and attribute sets overlap";
  EXPECT_EQ(g.num_anomalies(), 30);
}

TEST(InjectionTest, LabelsInitializedWhenMissing) {
  Rng rng(7);
  SbmMultiplexConfig config;
  config.num_nodes = 100;
  config.feature_dim = 4;
  config.relations = {{.name = "a", .target_edges = 200}};
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);
  g.mutable_labels().clear();  // simulate unlabelled input
  InjectionConfig inj;
  inj.num_attribute_anomalies = 5;
  InjectAttributeAnomalies(&g, inj, &rng);
  EXPECT_TRUE(g.has_labels());
  EXPECT_EQ(g.num_anomalies(), 5);
}

TEST(InjectionTest, InjectionPreservesSymmetry) {
  MultiplexGraph g = BaseGraph(8);
  Rng rng(9);
  InjectionConfig config;
  InjectStructuralAnomalies(&g, config, &rng);
  for (int r = 0; r < g.num_relations(); ++r) {
    const SparseMatrix& layer = g.layer(r);
    const auto& rp = layer.row_ptr();
    const auto& ci = layer.col_idx();
    for (int i = 0; i < layer.rows(); ++i) {
      for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
        EXPECT_TRUE(layer.Has(ci[k], i));
      }
    }
  }
}

}  // namespace
}  // namespace umgad
