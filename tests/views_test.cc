#include <cmath>

#include <gtest/gtest.h>

#include "core/views.h"
#include "graph/datasets.h"
#include "nn/optimizer.h"

namespace umgad {
namespace {

struct ViewFixture {
  MultiplexGraph graph = MakeTiny(21);
  std::vector<std::shared_ptr<const SparseMatrix>> norm_adjs;
  UmgadConfig config;
  Rng rng{7};

  ViewFixture() {
    for (int r = 0; r < graph.num_relations(); ++r) {
      norm_adjs.push_back(std::make_shared<const SparseMatrix>(
          graph.layer(r).NormalizedWithSelfLoops()));
    }
    config.hidden_dim = 16;
    config.mask_repeats = 2;
    config.num_subgraphs = 2;
  }

  ReconstructionView MakeView(ReconstructionView::Kind kind) {
    return ReconstructionView(kind, graph.feature_dim(),
                              graph.num_relations(), config, &rng);
  }
};

TEST(ViewsTest, OriginalViewProducesScalarLossAndRecon) {
  ViewFixture f;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  ViewForward out = view.Forward(f.graph, f.norm_adjs, &f.rng);
  ASSERT_TRUE(out.loss != nullptr);
  EXPECT_EQ(out.loss->value().size(), 1);
  EXPECT_TRUE(std::isfinite(out.loss->value().scalar()));
  EXPECT_GT(out.loss->value().scalar(), 0.0f);
  ASSERT_TRUE(out.fused_recon != nullptr);
  EXPECT_EQ(out.fused_recon->value().rows(), f.graph.num_nodes());
  EXPECT_EQ(out.fused_recon->value().cols(), f.graph.feature_dim());
}

TEST(ViewsTest, AttrAugmentedViewHasNoStructureBranch) {
  ViewFixture f;
  ReconstructionView view =
      f.MakeView(ReconstructionView::Kind::kAttrAugmented);
  ViewForward out = view.Forward(f.graph, f.norm_adjs, &f.rng);
  ASSERT_TRUE(out.loss != nullptr);
  EXPECT_TRUE(std::isfinite(out.loss->value().scalar()));

  // Scoring exposes embeddings from the shared encoder even though the
  // training loss is attribute-only.
  ViewScoring scoring = view.Score(f.graph, f.norm_adjs);
  EXPECT_FALSE(scoring.attr_recon.empty());
  EXPECT_EQ(scoring.embeddings.size(),
            static_cast<size_t>(f.graph.num_relations()));
}

TEST(ViewsTest, SubgraphViewProducesBothBranches) {
  ViewFixture f;
  ReconstructionView view =
      f.MakeView(ReconstructionView::Kind::kSubgraphAugmented);
  ViewForward out = view.Forward(f.graph, f.norm_adjs, &f.rng);
  ASSERT_TRUE(out.loss != nullptr);
  EXPECT_TRUE(std::isfinite(out.loss->value().scalar()));
  ASSERT_TRUE(out.fused_recon != nullptr);
}

TEST(ViewsTest, LossIsDifferentiableThroughAllParameters) {
  ViewFixture f;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  ViewForward out = view.Forward(f.graph, f.norm_adjs, &f.rng);
  ag::Backward(out.loss);
  int with_grad = 0;
  for (const auto& p : view.Parameters()) {
    if (p->has_grad() && p->grad().SquaredNorm() > 0.0) ++with_grad;
  }
  // Most parameters receive gradient every step (the mask token of the
  // structure-branch GMAEs legitimately does not — Embed() never masks).
  EXPECT_GT(with_grad, static_cast<int>(view.Parameters().size()) / 2);
}

TEST(ViewsTest, TrainingStepReducesViewLoss) {
  ViewFixture f;
  f.config.mask_repeats = 1;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  nn::Adam opt(view.Parameters(), 5e-3f);
  Rng train_rng(3);
  double first = 0.0;
  double last = 0.0;
  for (int step = 0; step < 25; ++step) {
    opt.ZeroGrad();
    // Fixed RNG per step so the masking noise does not hide the trend.
    Rng step_rng(11);
    ViewForward out = view.Forward(f.graph, f.norm_adjs, &step_rng);
    const double loss = out.loss->value().scalar();
    if (step == 0) first = loss;
    last = loss;
    ag::Backward(out.loss);
    opt.Step();
  }
  (void)train_rng;
  EXPECT_LT(last, first * 0.9);
}

TEST(ViewsTest, ScoreIsDeterministic) {
  ViewFixture f;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  ViewScoring a = view.Score(f.graph, f.norm_adjs);
  ViewScoring b = view.Score(f.graph, f.norm_adjs);
  EXPECT_LT(MaxAbsDiff(a.attr_recon, b.attr_recon), 1e-9);
  for (size_t r = 0; r < a.embeddings.size(); ++r) {
    EXPECT_LT(MaxAbsDiff(a.embeddings[r], b.embeddings[r]), 1e-9);
  }
}

TEST(ViewsTest, AttrOnlyConfigSkipsStructure) {
  ViewFixture f;
  f.config.use_structure_recon = false;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  ViewScoring scoring = view.Score(f.graph, f.norm_adjs);
  EXPECT_FALSE(scoring.attr_recon.empty());
  EXPECT_TRUE(scoring.embeddings.empty());
}

TEST(ViewsTest, StructOnlyConfigSkipsAttributes) {
  ViewFixture f;
  f.config.use_attribute_recon = false;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  ViewForward out = view.Forward(f.graph, f.norm_adjs, &f.rng);
  ASSERT_TRUE(out.loss != nullptr);
  EXPECT_TRUE(out.fused_recon == nullptr);
  ViewScoring scoring = view.Score(f.graph, f.norm_adjs);
  EXPECT_TRUE(scoring.attr_recon.empty());
  EXPECT_FALSE(scoring.embeddings.empty());
}

TEST(ViewsTest, NoMaskingAblationStillLearns) {
  ViewFixture f;
  f.config.use_masking = false;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  ViewForward out = view.Forward(f.graph, f.norm_adjs, &f.rng);
  ASSERT_TRUE(out.loss != nullptr);
  ag::Backward(out.loss);
  double grad_norm = 0.0;
  for (const auto& p : view.Parameters()) {
    if (p->has_grad()) grad_norm += p->grad().SquaredNorm();
  }
  EXPECT_GT(grad_norm, 0.0);
}

TEST(ViewsTest, FusionWeightsAreSimplex) {
  ViewFixture f;
  ReconstructionView view = f.MakeView(ReconstructionView::Kind::kOriginal);
  std::vector<double> w = view.FusionWeights();
  ASSERT_EQ(w.size(), static_cast<size_t>(f.graph.num_relations()));
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(ViewsTest, AllNodesHelper) {
  std::vector<int> all = AllNodes(4);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(AllNodes(0).empty());
}

}  // namespace
}  // namespace umgad
