#include <cmath>
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/scorer.h"
#include "graph/datasets.h"
#include "tensor/init.h"

namespace umgad {
namespace {

TEST(NormalizeTest, MinMaxMapsToUnitInterval) {
  std::vector<double> v = {3.0, 1.0, 5.0};
  std::vector<double> out = MinMaxNormalize(v);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(NormalizeTest, MinMaxConstantIsZero) {
  std::vector<double> out = MinMaxNormalize({2.0, 2.0, 2.0});
  for (double x : out) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(NormalizeTest, StandardizeMoments) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> z = Standardize(v);
  double mean = std::accumulate(z.begin(), z.end(), 0.0) / z.size();
  EXPECT_NEAR(mean, 0.0, 1e-12);
  double var = 0.0;
  for (double x : z) var += x * x;
  EXPECT_NEAR(var / z.size(), 1.0, 1e-12);
}

TEST(NormalizeTest, StandardizePreservesOrder) {
  std::vector<double> v = {5.0, -1.0, 3.0};
  std::vector<double> z = Standardize(v);
  EXPECT_GT(z[0], z[2]);
  EXPECT_GT(z[2], z[1]);
}

SparseMatrix TriangleWithTail() {
  return SparseMatrix::FromEdges(
      5, {Edge{0, 1}, Edge{1, 2}, Edge{0, 2}, Edge{2, 3}, Edge{3, 4}}, true);
}

TEST(StructureResidualTest, ExactAndSampledAgreeOnRanking) {
  SparseMatrix adj = TriangleWithTail();
  Rng init_rng(1);
  Tensor z = RandomNormal(5, 4, 0, 1, &init_rng);
  std::vector<double> exact = StructureResidualExact(adj, z);
  Rng rng(2);
  std::vector<double> sampled = StructureResidual(adj, z, 200, &rng);
  // With enough samples the two estimates converge (all nodes here have
  // few non-neighbours).
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(sampled[i], exact[i], 0.15);
}

TEST(StructureResidualTest, PerfectEmbeddingScoresLow) {
  // Embeddings engineered so that edges have large positive dots and
  // non-edges negative: two well-separated clusters.
  SparseMatrix adj = SparseMatrix::FromEdges(
      4, {Edge{0, 1}, Edge{2, 3}}, true);
  Tensor z(4, 2);
  z.at(0, 0) = 3.0f;
  z.at(1, 0) = 3.0f;
  z.at(2, 1) = 3.0f;
  z.at(3, 1) = 3.0f;
  std::vector<double> residual = StructureResidualExact(adj, z);
  for (double r : residual) EXPECT_LT(r, 0.8);

  // Breaking node 0's embedding raises its residual above the others.
  z.at(0, 0) = -3.0f;
  std::vector<double> broken = StructureResidualExact(adj, z);
  EXPECT_GT(broken[0], residual[0] + 0.5);
}

TEST(StructureResidualTest, IsolatedNodeOnlyLeaks) {
  SparseMatrix adj = SparseMatrix::FromEdges(3, {Edge{1, 2}}, true);
  Tensor z = Tensor::Full(3, 2, 0.0f);
  Rng rng(3);
  std::vector<double> residual = StructureResidual(adj, z, 10, &rng);
  // Zero embeddings: sigmoid(0) = 0.5 leak; node 0 has no edge-error term.
  EXPECT_NEAR(residual[0], 0.5, 1e-6);
}

TEST(ComputeScoresTest, CombinesViewsAndBranches) {
  MultiplexGraph g = MakeTiny(5);
  Rng init_rng(4);
  ViewScoring full;
  full.attr_recon = g.attributes();  // perfect recon -> zero attr part
  for (int r = 0; r < g.num_relations(); ++r) {
    full.embeddings.push_back(
        RandomNormal(g.num_nodes(), 8, 0, 1, &init_rng));
  }
  Rng rng(6);
  std::vector<double> scores =
      ComputeAnomalyScores(g, {full}, 0.5f, 8, &rng);
  EXPECT_EQ(scores.size(), static_cast<size_t>(g.num_nodes()));
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(ComputeScoresTest, AttrOnlyViewUsesAttrBranch) {
  MultiplexGraph g = MakeTiny(7);
  ViewScoring attr_only;
  Rng init_rng(8);
  attr_only.attr_recon =
      RandomNormal(g.num_nodes(), g.feature_dim(), 0, 1, &init_rng);
  Rng rng(9);
  std::vector<double> scores =
      ComputeAnomalyScores(g, {attr_only}, 0.5f, 8, &rng);
  // Standardised single-component scores: non-constant.
  const auto [mn, mx] = std::minmax_element(scores.begin(), scores.end());
  EXPECT_LT(*mn, *mx);
}

TEST(ComputeScoresTest, WorseReconstructionRanksHigher) {
  MultiplexGraph g = MakeTiny(11);
  ViewScoring view;
  view.attr_recon = g.attributes();
  // Corrupt the reconstruction of node 3 only.
  for (int d = 0; d < g.feature_dim(); ++d) {
    view.attr_recon.at(3, d) += 10.0f;
  }
  Rng rng(12);
  std::vector<double> scores =
      ComputeAnomalyScores(g, {view}, 1.0f, 0, &rng);
  const int argmax = static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
  EXPECT_EQ(argmax, 3);
}

}  // namespace
}  // namespace umgad
