// Low-precision serving (ServeOptions::precision): the quantized forward
// paths change the numbers but not the contract. For every precision mode
// the incremental scorer must stay bit-identical to its own
// RescoreFullNaive() after any update stream, across thread counts and
// arena modes; the sharded router must reproduce the flat quantized scorer
// exactly; the fp32 default must be byte-for-byte unaffected by the
// precision plumbing; and the quantized score vectors must track fp32
// closely (rank correlation — the per-dataset |dAUC| <= 1e-3 gate runs in
// CI against the real datasets via `umgad_cli serve --parity`).

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_io.h"
#include "core/umgad.h"
#include "graph/datasets.h"
#include "oracle_harness.h"
#include "serve/dynamic_adjacency.h"
#include "serve/online_scorer.h"
#include "serve/shard_router.h"
#include "tensor/dispatch/precision.h"

namespace umgad {
namespace {

using dispatch::Precision;
using serve::DynamicAdjacency;
using serve::EdgeUpdate;
using serve::OnlineScorer;
using serve::RouterOptions;
using serve::ServeOptions;
using serve::ShardRouter;
using ::umgad::testing::OracleSweep;

UmgadConfig ServeConfig() {
  UmgadConfig config;
  config.epochs = 2;
  config.hidden_dim = 8;
  config.mask_repeats = 1;
  config.num_subgraphs = 1;
  config.subgraph_size = 4;
  config.num_score_negatives = 2;
  config.seed = 5;
  return config;
}

struct ServeFixture {
  MultiplexGraph graph = MakeTiny(123);
  UmgadModel model{ServeConfig()};
  TrainedModel trained;

  ServeFixture() {
    UMGAD_CHECK(model.Fit(graph).ok());
    auto snapshot = TrainedModel::FromFitted(model, graph);
    UMGAD_CHECK(snapshot.ok());
    trained = *std::move(snapshot);
  }
};

const ServeFixture& Fixture() {
  static const ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

std::vector<EdgeUpdate> MakeUpdateSequence(const MultiplexGraph& graph,
                                           int count, uint64_t seed) {
  std::vector<DynamicAdjacency> mirror;
  for (int r = 0; r < graph.num_relations(); ++r) {
    mirror.emplace_back(graph.layer(r));
  }
  Rng rng(seed);
  std::vector<EdgeUpdate> updates;
  while (static_cast<int>(updates.size()) < count) {
    EdgeUpdate u;
    u.relation = static_cast<int>(rng.UniformInt(graph.num_relations()));
    u.src = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    u.dst = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    if (u.src == u.dst) continue;
    u.add = !mirror[u.relation].Has(u.src, u.dst);
    if (u.add) {
      mirror[u.relation].AddEntry(u.src, u.dst, 1.0f);
      mirror[u.relation].AddEntry(u.dst, u.src, 1.0f);
    } else {
      mirror[u.relation].RemoveEntry(u.src, u.dst);
      mirror[u.relation].RemoveEntry(u.dst, u.src);
    }
    updates.push_back(u);
  }
  return updates;
}

void ExpectSameBits(const std::vector<double>& got,
                    const std::vector<double>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " node " << i;
  }
}

/// Create a scorer at the given precision, play the update stream, and
/// return the score trace (initial + after every update), asserting the
/// incremental-vs-full-naive bit identity at each step.
std::vector<std::vector<double>> RunSequence(
    const std::vector<EdgeUpdate>& updates, Precision precision,
    const std::string& label, int cache_budget = -1) {
  ServeOptions options;
  options.precision = precision;
  options.cache_budget_nodes = cache_budget;
  auto scorer =
      OnlineScorer::Create(Fixture().trained, Fixture().graph, options);
  UMGAD_CHECK(scorer.ok());
  std::vector<std::vector<double>> trace;
  trace.push_back((*scorer)->scores());
  ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                 label + " init");
  for (size_t k = 0; k < updates.size(); ++k) {
    Status applied = (*scorer)->ApplyEdgeUpdate(updates[k]);
    EXPECT_TRUE(applied.ok())
        << label << " update " << k << ": " << applied.ToString();
    ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                   label + " update " + std::to_string(k));
    trace.push_back((*scorer)->scores());
  }
  return trace;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  const auto ranks = [](const std::vector<double>& v) {
    std::vector<int> order(v.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int x, int y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < order.size(); ++i) r[order[i]] = i;
    return r;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  const double n = static_cast<double>(a.size());
  const double mean = (n - 1.0) / 2.0;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    va += (ra[i] - mean) * (ra[i] - mean);
    vb += (rb[i] - mean) * (rb[i] - mean);
  }
  return cov / std::sqrt(va * vb);
}

// ------------------------- determinism per precision ----------------------

TEST(ServePrecisionTest, QuantizedIncrementalMatchesFullRescore) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 10, /*seed=*/61);
  const OracleSweep sweep;  // {1, 4} threads x arena on/off
  const bool prev_arena = ArenaEnabled();

  for (const Precision precision : {Precision::kInt8, Precision::kBf16}) {
    const std::string mode = dispatch::PrecisionName(precision);
    SetNumThreads(1);
    SetArenaEnabled(true);
    const std::vector<std::vector<double>> reference =
        RunSequence(updates, precision, mode + " reference");

    // The quantized trace is a pure function of the stream: identical bits
    // under every thread-count x arena combination and cache budget.
    for (bool arena : sweep.arena_modes) {
      for (int threads : sweep.thread_counts) {
        for (int budget : {-1, 0, 3}) {
          SetArenaEnabled(arena);
          SetNumThreads(threads);
          const std::string label = mode + " threads=" +
                                    std::to_string(threads) + " arena=" +
                                    (arena ? "1" : "0") + " budget=" +
                                    std::to_string(budget);
          const auto trace = RunSequence(updates, precision, label, budget);
          ASSERT_EQ(trace.size(), reference.size()) << label;
          for (size_t k = 0; k < trace.size(); ++k) {
            ExpectSameBits(trace[k], reference[k],
                           label + " step " + std::to_string(k));
          }
        }
      }
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

// ------------------------- fp32 stays exact -------------------------------

TEST(ServePrecisionTest, DefaultFp32PathIsUnaffectedByPrecisionPlumbing) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 8, /*seed=*/67);
  // A default-constructed ServeOptions and an explicit kFp32 request are
  // the same thing, and both keep the batch-replay path available.
  const auto explicit_trace =
      RunSequence(updates, Precision::kFp32, "fp32 explicit");
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  UMGAD_CHECK(scorer.ok());
  ExpectSameBits((*scorer)->scores(), explicit_trace.front(), "fp32 init");
  for (size_t k = 0; k < updates.size(); ++k) {
    ASSERT_TRUE((*scorer)->ApplyEdgeUpdate(updates[k]).ok());
    ExpectSameBits((*scorer)->scores(), explicit_trace[k + 1],
                   "fp32 update " + std::to_string(k));
  }
  EXPECT_TRUE((*scorer)->BatchReplayScores().ok());
}

// ------------------------- quantized tracks fp32 --------------------------

TEST(ServePrecisionTest, QuantizedScoresTrackFp32Ranking) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 10, /*seed=*/71);
  const auto fp32 = RunSequence(updates, Precision::kFp32, "fp32");
  for (const Precision precision : {Precision::kInt8, Precision::kBf16}) {
    const std::string mode = dispatch::PrecisionName(precision);
    const auto quant = RunSequence(updates, precision, mode);
    ASSERT_EQ(quant.size(), fp32.size());
    for (size_t k = 0; k < quant.size(); ++k) {
      for (const double s : quant[k]) {
        EXPECT_TRUE(std::isfinite(s)) << mode << " step " << k;
      }
      // Anomaly scoring consumes the ranking; quantization must not
      // scramble it. (The real gate is |dAUC| <= 1e-3 per dataset — this
      // is the in-process smoke version on the tiny fixture.)
      EXPECT_GT(SpearmanCorrelation(quant[k], fp32[k]), 0.95)
          << mode << " step " << k;
    }
  }
}

// ------------------------- sharded == flat per precision ------------------

TEST(ServePrecisionTest, ShardedRouterMatchesFlatQuantizedScorer) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 10, /*seed=*/73);
  for (const Precision precision : {Precision::kInt8, Precision::kBf16}) {
    const std::string mode = dispatch::PrecisionName(precision);
    ServeOptions serve_options;
    serve_options.precision = precision;
    auto flat = OnlineScorer::Create(Fixture().trained, Fixture().graph,
                                     serve_options);
    UMGAD_CHECK(flat.ok());
    const std::vector<double> initial = (*flat)->scores();
    for (const EdgeUpdate& u : updates) {
      ASSERT_TRUE((*flat)->ApplyEdgeUpdate(u).ok());
    }
    const std::vector<double> final_scores = (*flat)->scores();

    for (int shards : {1, 2, 4}) {
      const std::string label = mode + " shards=" + std::to_string(shards);
      RouterOptions options;
      options.num_shards = shards;
      options.max_burst = 3;
      options.serve.precision = precision;
      auto router =
          ShardRouter::Create(Fixture().trained, Fixture().graph, options);
      ASSERT_TRUE(router.ok()) << label << ": "
                               << router.status().ToString();
      ExpectSameBits((*router)->Snapshot()->scores, initial, label + " init");
      (*router)->Submit(updates);
      (*router)->Flush();
      auto snap = (*router)->Snapshot();
      EXPECT_TRUE(snap->stream_consistent) << label;
      ExpectSameBits(snap->scores, final_scores, label);
    }
  }
}

}  // namespace
}  // namespace umgad
