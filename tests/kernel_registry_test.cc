// Kernel-dispatch registry contract (src/tensor/dispatch/registry.h):
// priority selection over CPU-feature-gated variants, per-op and global
// overrides (SetOverride is the same code path the UMGAD_KERNEL env var
// runs through at startup — the CI cli-smoke leg exercises the env var
// itself across a process boundary), graceful fallback when an override
// needs features the host lacks, and the central invariant that every
// variant of one op is bit-identical to the naive reference for any
// UMGAD_THREADS x arena combination. The feature mask is faked through
// SetDisabledCpuFeaturesForTest, so the fallback paths run even on
// machines that do have AVX2.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "oracle_harness.h"
#include "tensor/dispatch/cpu_features.h"
#include "tensor/dispatch/registry.h"
#include "tensor/init.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace umgad {
namespace {

using dispatch::KernelOp;
using dispatch::KernelRegistry;
using dispatch::KernelSelection;
using ::umgad::testing::ExpectBitIdentical;
using ::umgad::testing::OracleSweep;
using ::umgad::testing::Tensors;

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  return RandomNormal(r, c, 0.0, 1.0, &rng);
}

SparseMatrix RandomSparse(int n, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> e;
  for (int i = 0; i < edges; ++i) {
    e.push_back(Edge{static_cast<int>(rng.UniformInt(n)),
                     static_cast<int>(rng.UniformInt(n))});
  }
  return SparseMatrix::FromEdges(n, e, /*symmetrize=*/true);
}

/// The registry is a process-wide singleton: every test restores the
/// no-override, no-masked-features state on exit so suites compose.
class KernelRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    KernelRegistry::Global()->ClearOverrides();
    dispatch::SetDisabledCpuFeaturesForTest(0);
  }
};

KernelSelection SelectionFor(KernelOp op) {
  for (KernelSelection& s : KernelRegistry::Global()->Selections()) {
    if (s.op == op) return s;
  }
  ADD_FAILURE() << "no selection for op " << dispatch::KernelOpName(op);
  return {};
}

bool HasVariant(const KernelSelection& sel, const std::string& name) {
  for (const auto& v : sel.variants) {
    if (v.name == name) return true;
  }
  return false;
}

// ------------------------- variant inventory ------------------------------

TEST_F(KernelRegistryTest, EveryOpHasANaiveFloorAndADefaultWinner) {
  const auto selections = KernelRegistry::Global()->Selections();
  ASSERT_EQ(static_cast<int>(selections.size()), dispatch::kNumKernelOps);
  for (const KernelSelection& sel : selections) {
    const std::string op = dispatch::KernelOpName(sel.op);
    EXPECT_TRUE(HasVariant(sel, "naive")) << op;
    EXPECT_FALSE(sel.variant.empty()) << op;
    EXPECT_FALSE(sel.overridden) << op;
    EXPECT_FALSE(sel.fell_back) << op;
    // Variants are reported priority-descending, and the active one is the
    // best whose feature requirements the effective mask satisfies.
    const unsigned have = dispatch::EffectiveCpuFeatures();
    for (size_t i = 1; i < sel.variants.size(); ++i) {
      EXPECT_GE(sel.variants[i - 1].priority, sel.variants[i].priority) << op;
    }
    for (const auto& v : sel.variants) {
      if ((v.required_features & have) == v.required_features) {
        EXPECT_EQ(sel.variant, v.name)
            << op << ": best eligible variant is not the active one";
        break;
      }
    }
  }
}

TEST_F(KernelRegistryTest, ResolveReturnsNonNullForEveryOp) {
  KernelRegistry* reg = KernelRegistry::Global();
  for (int i = 0; i < dispatch::kNumKernelOps; ++i) {
    EXPECT_NE(reg->Resolve(static_cast<KernelOp>(i)), nullptr);
  }
}

// ------------------------- overrides --------------------------------------

TEST_F(KernelRegistryTest, BareNameOverridePinsEveryOpThatHasIt) {
  KernelRegistry* reg = KernelRegistry::Global();
  ASSERT_TRUE(reg->SetOverride("naive").ok());
  for (const KernelSelection& sel : reg->Selections()) {
    EXPECT_TRUE(sel.overridden) << dispatch::KernelOpName(sel.op);
    EXPECT_EQ(sel.variant, "naive") << dispatch::KernelOpName(sel.op);
    EXPECT_FALSE(sel.fell_back) << dispatch::KernelOpName(sel.op);
  }
  reg->ClearOverrides();
  for (const KernelSelection& sel : reg->Selections()) {
    EXPECT_FALSE(sel.overridden) << dispatch::KernelOpName(sel.op);
  }
}

TEST_F(KernelRegistryTest, PerOpOverrideListPinsOnlyNamedOps) {
  KernelRegistry* reg = KernelRegistry::Global();
  ASSERT_TRUE(reg->SetOverride("matmul=naive,spmm=naive").ok());
  for (const KernelSelection& sel : reg->Selections()) {
    const bool pinned =
        sel.op == KernelOp::kMatMul || sel.op == KernelOp::kSpmm;
    EXPECT_EQ(sel.overridden, pinned) << dispatch::KernelOpName(sel.op);
    if (pinned) {
      EXPECT_EQ(sel.variant, "naive");
    }
  }
}

TEST_F(KernelRegistryTest, InvalidOverrideRejectsWithoutStateChange) {
  KernelRegistry* reg = KernelRegistry::Global();
  // Unknown variant name (globally and per-op), unknown op name, and a
  // list whose *last* entry is bad — the valid prefix must not stick.
  for (const char* spec :
       {"no_such_variant", "matmul=no_such_variant", "no_such_op=naive",
        "matmul=naive,spmm=no_such_variant", "matmul"}) {
    const Status s = reg->SetOverride(spec);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << spec;
    for (const KernelSelection& sel : reg->Selections()) {
      EXPECT_FALSE(sel.overridden)
          << spec << " leaked into " << dispatch::KernelOpName(sel.op);
    }
  }
}

// ------------------------- feature gating ---------------------------------

TEST_F(KernelRegistryTest, DisablingAFeatureDemotesTheSelection) {
  const KernelSelection before = SelectionFor(KernelOp::kMatMul);
  if (!HasVariant(before, "blocked_avx2") ||
      !(dispatch::EffectiveCpuFeatures() & dispatch::kFeatAvx2)) {
    GTEST_SKIP() << "no feature-gated matmul tier on this build/host";
  }
  EXPECT_EQ(before.variant, "blocked_avx2");

  dispatch::SetDisabledCpuFeaturesForTest(dispatch::kFeatAvx2);
  const KernelSelection masked = SelectionFor(KernelOp::kMatMul);
  EXPECT_EQ(masked.variant, "blocked");
  EXPECT_FALSE(masked.fell_back);  // priority selection, not a fallback

  dispatch::SetDisabledCpuFeaturesForTest(0);
  EXPECT_EQ(SelectionFor(KernelOp::kMatMul).variant, "blocked_avx2");
}

TEST_F(KernelRegistryTest, UnusableOverrideFallsBackGracefully) {
  KernelRegistry* reg = KernelRegistry::Global();
  const KernelSelection sel = SelectionFor(KernelOp::kMatMul);
  if (!HasVariant(sel, "blocked_avx2")) {
    GTEST_SKIP() << "no feature-gated matmul tier on this build";
  }
  // Pinning a variant the (masked) CPU cannot run is accepted — think of a
  // config file shared across heterogeneous hosts — and resolution warns
  // and falls back to the best eligible variant instead of crashing.
  dispatch::SetDisabledCpuFeaturesForTest(dispatch::kFeatAvx2);
  ASSERT_TRUE(reg->SetOverride("matmul=blocked_avx2").ok());

  Tensor a = RandomTensor(19, 23, 11);
  Tensor b = RandomTensor(23, 17, 12);
  const Tensor got = MatMul(a, b);  // must not execute AVX2 code
  EXPECT_EQ(MaxAbsDiff(got, MatMulNaive(a, b)), 0.0);

  // A fell-back pin reports fell_back, not overridden: the active variant
  // is NOT the requested one (inspect --kernels shows "(fallback)").
  const KernelSelection after = SelectionFor(KernelOp::kMatMul);
  EXPECT_FALSE(after.overridden);
  EXPECT_TRUE(after.fell_back);
  EXPECT_EQ(after.variant, "blocked");

  // Restoring the feature makes the pinned variant take effect for real.
  dispatch::SetDisabledCpuFeaturesForTest(0);
  const KernelSelection restored = SelectionFor(KernelOp::kMatMul);
  EXPECT_EQ(restored.variant, "blocked_avx2");
  EXPECT_FALSE(restored.fell_back);
}

// ------------------------- bit-identity -----------------------------------

// The registry's core promise: switching variants never changes a single
// bit. Pin each eligible variant in turn and sweep the differential
// harness against the naive reference.

TEST_F(KernelRegistryTest, EveryMatMulVariantIsBitIdenticalToNaive) {
  // Shapes straddle the 8-row / 64-col micro-kernel tiles and exceed the
  // small-product shortcut (37*29*71 multiplies > 2^15).
  Tensor a = RandomTensor(37, 29, 21);
  Tensor b = RandomTensor(29, 71, 22);
  KernelRegistry* reg = KernelRegistry::Global();
  const unsigned have = dispatch::EffectiveCpuFeatures();
  for (const auto& v : SelectionFor(KernelOp::kMatMul).variants) {
    if ((v.required_features & have) != v.required_features) continue;
    ASSERT_TRUE(reg->SetOverride("matmul=" + v.name).ok());
    ExpectBitIdentical("matmul variant " + v.name,
                       [&] { return Tensors{MatMul(a, b)}; },
                       [&] { return Tensors{MatMulNaive(a, b)}; });
  }
}

TEST_F(KernelRegistryTest, EveryMatMulTransBVariantIsBitIdenticalToNaive) {
  Tensor a = RandomTensor(33, 29, 31);
  Tensor b = RandomTensor(70, 29, 32);  // row-major weights, b.cols == a.cols
  KernelRegistry* reg = KernelRegistry::Global();
  const unsigned have = dispatch::EffectiveCpuFeatures();
  for (const auto& v : SelectionFor(KernelOp::kMatMulTransB).variants) {
    if ((v.required_features & have) != v.required_features) continue;
    ASSERT_TRUE(reg->SetOverride("matmul_transb=" + v.name).ok());
    ExpectBitIdentical(
        "matmul_transb variant " + v.name,
        [&] { return Tensors{MatMulTransB(a, b)}; },
        [&] { return Tensors{MatMulNaive(a, Transpose(b))}; });
  }
}

TEST_F(KernelRegistryTest, EverySpmmVariantIsBitIdenticalToSerial) {
  SparseMatrix s = RandomSparse(150, 900, 41);
  Tensor x = RandomTensor(150, 37, 42);
  KernelRegistry* reg = KernelRegistry::Global();

  ASSERT_TRUE(reg->SetOverride("spmm=naive").ok());
  const Tensor reference = s.Multiply(x);

  const unsigned have = dispatch::EffectiveCpuFeatures();
  for (const auto& v : SelectionFor(KernelOp::kSpmm).variants) {
    if ((v.required_features & have) != v.required_features) continue;
    ASSERT_TRUE(reg->SetOverride("spmm=" + v.name).ok());
    ExpectBitIdentical("spmm variant " + v.name,
                       [&] { return Tensors{s.Multiply(x)}; },
                       [&] { return Tensors{reference}; });
  }
}

}  // namespace
}  // namespace umgad
