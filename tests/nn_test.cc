#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "oracle_harness.h"
#include "tensor/init.h"

namespace umgad {
namespace {

std::shared_ptr<const SparseMatrix> RingGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) edges.push_back(Edge{i, (i + 1) % n});
  return std::make_shared<const SparseMatrix>(
      SparseMatrix::FromEdges(n, edges, true).NormalizedWithSelfLoops());
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear layer(4, 3, &rng);
  Tensor x = RandomNormal(5, 4, 0, 1, &rng);
  ag::VarPtr y = layer.Forward(ag::Constant(x));
  EXPECT_EQ(y->value().rows(), 5);
  EXPECT_EQ(y->value().cols(), 3);
  // weight (4x3) + bias (1x3)
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  nn::Linear layer(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(layer.ParameterCount(), 12);
}

TEST(ModuleTest, ParametersIncludeChildren) {
  Rng rng(3);
  nn::GcnConv conv(6, 4, nn::Activation::kRelu, &rng);
  EXPECT_EQ(conv.Parameters().size(), 2u);  // W + b
  EXPECT_EQ(conv.ParameterCount(), 6 * 4 + 4);
}

TEST(GcnTest, ForwardShape) {
  Rng rng(4);
  auto adj = RingGraph(6);
  nn::GcnConv conv(3, 5, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(6, 3, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_EQ(y->value().rows(), 6);
  EXPECT_EQ(y->value().cols(), 5);
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(GcnTest, ReluClampsNegative) {
  Rng rng(5);
  auto adj = RingGraph(4);
  nn::GcnConv conv(2, 3, nn::Activation::kRelu, &rng);
  Tensor x = RandomNormal(4, 2, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_GE(y->value().Min(), 0.0);
}

TEST(SgcTest, ZeroHopsIsLinear) {
  Rng rng(6);
  auto adj = RingGraph(5);
  nn::SgcConv conv(3, 3, /*hops=*/0, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(5, 3, 0, 1, &rng);
  // With 0 hops the adjacency must not matter.
  ag::VarPtr y1 = conv.Forward(adj, ag::Constant(x));
  ag::VarPtr y2 = conv.Forward(RingGraph(5), ag::Constant(x));
  EXPECT_LT(MaxAbsDiff(y1->value(), y2->value()), 1e-6);
}

TEST(SgcTest, HopsPropagate) {
  Rng rng(7);
  auto adj = RingGraph(8);
  nn::SgcConv conv1(2, 4, 1, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(8, 2, 0, 1, &rng);
  ag::VarPtr y = conv1.Forward(adj, ag::Constant(x));
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(GatTest, ForwardShapeAndFinite) {
  Rng rng(8);
  auto adj = RingGraph(7);
  nn::GatConv conv(3, 4, nn::Activation::kElu, &rng);
  Tensor x = RandomNormal(7, 3, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_EQ(y->value().rows(), 7);
  EXPECT_EQ(y->value().cols(), 4);
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(GatTest, AttentionIsConvexCombination) {
  // With identity weights (d_in == d_out forced via training-free check):
  // each output row is a convex combination of projected neighbour rows,
  // so outputs stay within the min/max envelope of h = x W.
  Rng rng(9);
  auto adj = RingGraph(6);
  nn::GatConv conv(3, 3, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(6, 3, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(ActivateTest, AllVariantsFinite) {
  Rng rng(10);
  Tensor x = RandomNormal(3, 3, 0, 2, &rng);
  for (auto act : {nn::Activation::kNone, nn::Activation::kRelu,
                   nn::Activation::kLeakyRelu, nn::Activation::kElu,
                   nn::Activation::kTanh}) {
    ag::VarPtr y = nn::Activate(ag::Constant(x), act);
    EXPECT_TRUE(y->value().AllFinite());
  }
}

// --------------------------- Optimisers -----------------------------------

/// Minimise ||W - target||^2; both optimisers must reduce the loss.
template <typename Opt>
double OptimizeQuadratic(Opt&& opt, const ag::VarPtr& w,
                         const Tensor& target, int steps) {
  double last = 0.0;
  for (int s = 0; s < steps; ++s) {
    opt.ZeroGrad();
    ag::VarPtr loss = ag::MseLoss(w, target);
    last = loss->value().scalar();
    ag::Backward(loss);
    opt.Step();
  }
  return last;
}

TEST(OptimizerTest, SgdConverges) {
  Rng rng(11);
  ag::VarPtr w = ag::Leaf(RandomNormal(3, 3, 0, 1, &rng));
  Tensor target = RandomNormal(3, 3, 0, 1, &rng);
  const double initial = ag::MseLoss(w, target)->value().scalar();
  nn::Sgd sgd({w}, 0.5f);
  const double final_loss = OptimizeQuadratic(sgd, w, target, 50);
  EXPECT_LT(final_loss, initial * 0.01);
}

TEST(OptimizerTest, AdamConverges) {
  Rng rng(12);
  ag::VarPtr w = ag::Leaf(RandomNormal(3, 3, 0, 1, &rng));
  Tensor target = RandomNormal(3, 3, 0, 1, &rng);
  const double initial = ag::MseLoss(w, target)->value().scalar();
  nn::Adam adam({w}, 0.1f);
  const double final_loss = OptimizeQuadratic(adam, w, target, 100);
  EXPECT_LT(final_loss, initial * 0.01);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Rng rng(13);
  ag::VarPtr w = ag::Leaf(Tensor::Full(2, 2, 1.0f));
  nn::Sgd sgd({w}, 0.1f, /*weight_decay=*/1.0f);
  // Gradient-free steps: decay alone shrinks the parameter.
  for (int s = 0; s < 5; ++s) {
    sgd.ZeroGrad();
    ag::Backward(ag::ScalarMul(ag::Sum(w), 0.0f));
    sgd.Step();
  }
  EXPECT_LT(w->value().at(0, 0), 1.0f);
}

TEST(OptimizerTest, StepWithoutGradIsNoop) {
  ag::VarPtr w = ag::Leaf(Tensor::Full(2, 2, 2.0f));
  nn::Adam adam({w}, 0.5f);
  adam.Step();  // no backward happened
  EXPECT_EQ(w->value().at(0, 0), 2.0f);
}

// ------------------------------ loss helpers ------------------------------

TEST(LossTest, BuildEdgeCandidatesShape) {
  Rng rng(14);
  SparseMatrix adj = SparseMatrix::FromEdges(
      10, {Edge{0, 1}, Edge{2, 3}, Edge{4, 5}}, true);
  std::vector<ag::EdgeCandidateSet> sets = nn::BuildEdgeCandidates(
      {Edge{0, 1}, Edge{2, 3}}, adj, 4, &rng);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].src, 0);
  EXPECT_EQ(sets[0].cands[0], 1);
  EXPECT_EQ(sets[0].cands.size(), 5u);
  // Negatives must not be neighbours of src.
  for (size_t c = 1; c < sets[0].cands.size(); ++c) {
    EXPECT_FALSE(adj.Has(0, sets[0].cands[c]));
  }
}

TEST(LossTest, ContrastiveNegativesAvoidSelf) {
  Rng rng(15);
  std::vector<int> neg = nn::SampleContrastiveNegatives(50, &rng);
  ASSERT_EQ(neg.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(neg[i], i);
    EXPECT_GE(neg[i], 0);
    EXPECT_LT(neg[i], 50);
  }
}

TEST(LossTest, ConvexCombineInterpolates) {
  ag::VarPtr a = ag::Constant(Tensor::Full(1, 1, 2.0f));
  ag::VarPtr b = ag::Constant(Tensor::Full(1, 1, 10.0f));
  EXPECT_NEAR(nn::ConvexCombine(a, b, 0.25f)->value().scalar(), 8.0f, 1e-5);
}

// -------------------- loss-gradient finite differences ---------------------
// Per-element central-difference checks of the three training losses'
// row-partitioned tape backward, run at both thread counts. float32
// arithmetic bounds the achievable agreement, hence the loose tolerances.

using LossBuildFn =
    std::function<ag::VarPtr(const std::vector<ag::VarPtr>& leaves)>;

void CheckLossGradients(const std::vector<Tensor>& inputs,
                        const LossBuildFn& build, double eps = 5e-3,
                        double rel_tol = 5e-2, double abs_tol = 2e-3) {
  auto eval = [&](const std::vector<Tensor>& xs) -> double {
    std::vector<ag::VarPtr> ls;
    ls.reserve(xs.size());
    for (const Tensor& t : xs) ls.push_back(ag::Leaf(t));
    return build(ls)->value().scalar();
  };
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    std::vector<ag::VarPtr> leaves;
    leaves.reserve(inputs.size());
    for (const Tensor& t : inputs) leaves.push_back(ag::Leaf(t));
    ag::VarPtr loss = build(leaves);
    ASSERT_EQ(loss->value().size(), 1);
    ag::Backward(loss);
    for (size_t p = 0; p < inputs.size(); ++p) {
      for (int64_t i = 0; i < inputs[p].size(); ++i) {
        std::vector<Tensor> plus = inputs;
        std::vector<Tensor> minus = inputs;
        plus[p].data()[i] += static_cast<float>(eps);
        minus[p].data()[i] -= static_cast<float>(eps);
        const double numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
        const double exact = leaves[p]->grad().data()[i];
        const double err = std::abs(numeric - exact);
        const double scale = std::max(std::abs(numeric), std::abs(exact));
        EXPECT_LE(err, abs_tol + rel_tol * scale)
            << "threads " << threads << " param " << p << " element " << i
            << ": numeric=" << numeric << " analytic=" << exact;
      }
    }
  }
  SetNumThreads(1);
}

TEST(LossGradientTest, ScaledCosineCentralDifferences) {
  Rng rng(21);
  Tensor recon = RandomNormal(6, 4, 0, 1, &rng);
  Tensor target = RandomNormal(6, 4, 0, 1, &rng);
  CheckLossGradients({recon}, [&](const auto& v) {
    return ag::ScaledCosineLoss(v[0], target, {0, 2, 3, 5}, 2.0f);
  });
}

TEST(LossGradientTest, MaskedEdgeSoftmaxCeCentralDifferences) {
  Rng rng(22);
  // Candidate sets built the way training builds them: from masked edges of
  // a real graph, negatives sampled among non-neighbours.
  SparseMatrix adj = SparseMatrix::FromEdges(
      8, {Edge{0, 1}, Edge{2, 3}, Edge{4, 5}, Edge{1, 6}}, true);
  std::vector<ag::EdgeCandidateSet> sets = nn::BuildEdgeCandidates(
      {Edge{0, 1}, Edge{2, 3}, Edge{1, 6}}, adj, 3, &rng);
  Tensor z = RandomNormal(8, 3, 0, 0.5, &rng);
  CheckLossGradients({z}, [&](const auto& v) {
    return ag::MaskedEdgeSoftmaxCE(v[0], sets);
  });
}

TEST(LossGradientTest, DualContrastiveCentralDifferences) {
  Rng rng(23);
  std::vector<int> neg = nn::SampleContrastiveNegatives(5, &rng);
  Tensor zo = RandomNormal(5, 4, 0, 0.4, &rng);
  Tensor za = RandomNormal(5, 4, 0, 0.4, &rng);
  CheckLossGradients({zo, za}, [&](const auto& v) {
    return ag::DualContrastiveLoss(v[0], v[1], neg);
  });
}

// ------------------- GAT layer vs kept-serial oracle -----------------------

TEST(GatTest, ForwardMatchesNaiveOracleBitIdentically) {
  // Module-level differential: the full layer (projection + parallel
  // edge-softmax attention + activation) against ForwardNaive, forward and
  // backward, across thread counts and arena modes.
  Rng rng(24);
  auto adj = RingGraph(40);
  nn::GatConv conv(5, 6, nn::Activation::kElu, &rng);
  Tensor x = RandomNormal(40, 5, 0, 1, &rng);
  Tensor probe = RandomNormal(40, 6, 0, 1, &rng);
  auto run = [&](bool naive) {
    return [&, naive]() -> umgad::testing::Tensors {
      ag::VarPtr out = naive ? conv.ForwardNaive(adj, ag::Constant(x))
                             : conv.Forward(adj, ag::Constant(x));
      for (const auto& p : conv.Parameters()) p->ZeroGrad();
      ag::Backward(ag::Sum(ag::Hadamard(out, ag::Constant(probe))));
      umgad::testing::Tensors result{out->value()};
      for (const auto& p : conv.Parameters()) result.push_back(p->grad());
      return result;
    };
  };
  umgad::testing::ExpectBitIdentical("gat_conv", run(false), run(true));
}

}  // namespace
}  // namespace umgad
