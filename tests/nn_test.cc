#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/init.h"

namespace umgad {
namespace {

std::shared_ptr<const SparseMatrix> RingGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) edges.push_back(Edge{i, (i + 1) % n});
  return std::make_shared<const SparseMatrix>(
      SparseMatrix::FromEdges(n, edges, true).NormalizedWithSelfLoops());
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear layer(4, 3, &rng);
  Tensor x = RandomNormal(5, 4, 0, 1, &rng);
  ag::VarPtr y = layer.Forward(ag::Constant(x));
  EXPECT_EQ(y->value().rows(), 5);
  EXPECT_EQ(y->value().cols(), 3);
  // weight (4x3) + bias (1x3)
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  nn::Linear layer(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(layer.ParameterCount(), 12);
}

TEST(ModuleTest, ParametersIncludeChildren) {
  Rng rng(3);
  nn::GcnConv conv(6, 4, nn::Activation::kRelu, &rng);
  EXPECT_EQ(conv.Parameters().size(), 2u);  // W + b
  EXPECT_EQ(conv.ParameterCount(), 6 * 4 + 4);
}

TEST(GcnTest, ForwardShape) {
  Rng rng(4);
  auto adj = RingGraph(6);
  nn::GcnConv conv(3, 5, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(6, 3, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_EQ(y->value().rows(), 6);
  EXPECT_EQ(y->value().cols(), 5);
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(GcnTest, ReluClampsNegative) {
  Rng rng(5);
  auto adj = RingGraph(4);
  nn::GcnConv conv(2, 3, nn::Activation::kRelu, &rng);
  Tensor x = RandomNormal(4, 2, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_GE(y->value().Min(), 0.0);
}

TEST(SgcTest, ZeroHopsIsLinear) {
  Rng rng(6);
  auto adj = RingGraph(5);
  nn::SgcConv conv(3, 3, /*hops=*/0, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(5, 3, 0, 1, &rng);
  // With 0 hops the adjacency must not matter.
  ag::VarPtr y1 = conv.Forward(adj, ag::Constant(x));
  ag::VarPtr y2 = conv.Forward(RingGraph(5), ag::Constant(x));
  EXPECT_LT(MaxAbsDiff(y1->value(), y2->value()), 1e-6);
}

TEST(SgcTest, HopsPropagate) {
  Rng rng(7);
  auto adj = RingGraph(8);
  nn::SgcConv conv1(2, 4, 1, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(8, 2, 0, 1, &rng);
  ag::VarPtr y = conv1.Forward(adj, ag::Constant(x));
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(GatTest, ForwardShapeAndFinite) {
  Rng rng(8);
  auto adj = RingGraph(7);
  nn::GatConv conv(3, 4, nn::Activation::kElu, &rng);
  Tensor x = RandomNormal(7, 3, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_EQ(y->value().rows(), 7);
  EXPECT_EQ(y->value().cols(), 4);
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(GatTest, AttentionIsConvexCombination) {
  // With identity weights (d_in == d_out forced via training-free check):
  // each output row is a convex combination of projected neighbour rows,
  // so outputs stay within the min/max envelope of h = x W.
  Rng rng(9);
  auto adj = RingGraph(6);
  nn::GatConv conv(3, 3, nn::Activation::kNone, &rng);
  Tensor x = RandomNormal(6, 3, 0, 1, &rng);
  ag::VarPtr y = conv.Forward(adj, ag::Constant(x));
  EXPECT_TRUE(y->value().AllFinite());
}

TEST(ActivateTest, AllVariantsFinite) {
  Rng rng(10);
  Tensor x = RandomNormal(3, 3, 0, 2, &rng);
  for (auto act : {nn::Activation::kNone, nn::Activation::kRelu,
                   nn::Activation::kLeakyRelu, nn::Activation::kElu,
                   nn::Activation::kTanh}) {
    ag::VarPtr y = nn::Activate(ag::Constant(x), act);
    EXPECT_TRUE(y->value().AllFinite());
  }
}

// --------------------------- Optimisers -----------------------------------

/// Minimise ||W - target||^2; both optimisers must reduce the loss.
template <typename Opt>
double OptimizeQuadratic(Opt&& opt, const ag::VarPtr& w,
                         const Tensor& target, int steps) {
  double last = 0.0;
  for (int s = 0; s < steps; ++s) {
    opt.ZeroGrad();
    ag::VarPtr loss = ag::MseLoss(w, target);
    last = loss->value().scalar();
    ag::Backward(loss);
    opt.Step();
  }
  return last;
}

TEST(OptimizerTest, SgdConverges) {
  Rng rng(11);
  ag::VarPtr w = ag::Leaf(RandomNormal(3, 3, 0, 1, &rng));
  Tensor target = RandomNormal(3, 3, 0, 1, &rng);
  const double initial = ag::MseLoss(w, target)->value().scalar();
  nn::Sgd sgd({w}, 0.5f);
  const double final_loss = OptimizeQuadratic(sgd, w, target, 50);
  EXPECT_LT(final_loss, initial * 0.01);
}

TEST(OptimizerTest, AdamConverges) {
  Rng rng(12);
  ag::VarPtr w = ag::Leaf(RandomNormal(3, 3, 0, 1, &rng));
  Tensor target = RandomNormal(3, 3, 0, 1, &rng);
  const double initial = ag::MseLoss(w, target)->value().scalar();
  nn::Adam adam({w}, 0.1f);
  const double final_loss = OptimizeQuadratic(adam, w, target, 100);
  EXPECT_LT(final_loss, initial * 0.01);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Rng rng(13);
  ag::VarPtr w = ag::Leaf(Tensor::Full(2, 2, 1.0f));
  nn::Sgd sgd({w}, 0.1f, /*weight_decay=*/1.0f);
  // Gradient-free steps: decay alone shrinks the parameter.
  for (int s = 0; s < 5; ++s) {
    sgd.ZeroGrad();
    ag::Backward(ag::ScalarMul(ag::Sum(w), 0.0f));
    sgd.Step();
  }
  EXPECT_LT(w->value().at(0, 0), 1.0f);
}

TEST(OptimizerTest, StepWithoutGradIsNoop) {
  ag::VarPtr w = ag::Leaf(Tensor::Full(2, 2, 2.0f));
  nn::Adam adam({w}, 0.5f);
  adam.Step();  // no backward happened
  EXPECT_EQ(w->value().at(0, 0), 2.0f);
}

// ------------------------------ loss helpers ------------------------------

TEST(LossTest, BuildEdgeCandidatesShape) {
  Rng rng(14);
  SparseMatrix adj = SparseMatrix::FromEdges(
      10, {Edge{0, 1}, Edge{2, 3}, Edge{4, 5}}, true);
  std::vector<ag::EdgeCandidateSet> sets = nn::BuildEdgeCandidates(
      {Edge{0, 1}, Edge{2, 3}}, adj, 4, &rng);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].src, 0);
  EXPECT_EQ(sets[0].cands[0], 1);
  EXPECT_EQ(sets[0].cands.size(), 5u);
  // Negatives must not be neighbours of src.
  for (size_t c = 1; c < sets[0].cands.size(); ++c) {
    EXPECT_FALSE(adj.Has(0, sets[0].cands[c]));
  }
}

TEST(LossTest, ContrastiveNegativesAvoidSelf) {
  Rng rng(15);
  std::vector<int> neg = nn::SampleContrastiveNegatives(50, &rng);
  ASSERT_EQ(neg.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(neg[i], i);
    EXPECT_GE(neg[i], 0);
    EXPECT_LT(neg[i], 50);
  }
}

TEST(LossTest, ConvexCombineInterpolates) {
  ag::VarPtr a = ag::Constant(Tensor::Full(1, 1, 2.0f));
  ag::VarPtr b = ag::Constant(Tensor::Full(1, 1, 10.0f));
  EXPECT_NEAR(nn::ConvexCombine(a, b, 0.25f)->value().scalar(), 8.0f, 1e-5);
}

}  // namespace
}  // namespace umgad
