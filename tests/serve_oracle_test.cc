// Differential oracle for the online scoring service: after any sequence
// of randomized edge inserts/removals, the incrementally maintained scores
// must be bit-identical to RescoreFullNaive() — a from-scratch serial
// recompute with the same kernels — for every UMGAD_THREADS x arena-mode
// combination (the grid comes from tests/oracle_harness.h) and every
// cache-budget setting. Also covers the batch-replay path against the
// fitted model's scores, the num_score_negatives == 0 equivalence with
// training-time scoring, batched bursts (ApplyEdgeUpdates ==
// one-at-a-time == full rescore, with prefix rollback on error),
// ApplyEdgeUpdate's error paths, and the DynamicAdjacency
// bit-compatibility contract.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_io.h"
#include "core/umgad.h"
#include "graph/datasets.h"
#include "oracle_harness.h"
#include "serve/dynamic_adjacency.h"
#include "serve/online_scorer.h"

namespace umgad {
namespace {

using serve::DynamicAdjacency;
using serve::EdgeUpdate;
using serve::OnlineScorer;
using serve::ServeOptions;
using ::umgad::testing::OracleSweep;

UmgadConfig ServeConfig() {
  UmgadConfig config;
  config.epochs = 2;
  config.hidden_dim = 8;
  config.mask_repeats = 1;
  config.num_subgraphs = 1;
  config.subgraph_size = 4;
  config.num_score_negatives = 2;
  config.seed = 5;
  return config;
}

/// Train once per process; every test below reads from this snapshot.
struct ServeFixture {
  MultiplexGraph graph = MakeTiny(123);
  UmgadModel model{ServeConfig()};
  TrainedModel trained;

  ServeFixture() {
    UMGAD_CHECK(model.Fit(graph).ok());
    auto snapshot = TrainedModel::FromFitted(model, graph);
    UMGAD_CHECK(snapshot.ok());
    trained = *std::move(snapshot);
  }
};

const ServeFixture& Fixture() {
  static const ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

/// A deterministic mixed insert/remove sequence: each step picks a
/// relation and a node pair and toggles the edge (tracked in mirror
/// adjacencies so inserts always hit absent edges and removals present
/// ones). Identical across every sweep configuration.
std::vector<EdgeUpdate> MakeUpdateSequence(const MultiplexGraph& graph,
                                           int count, uint64_t seed) {
  std::vector<DynamicAdjacency> mirror;
  for (int r = 0; r < graph.num_relations(); ++r) {
    mirror.emplace_back(graph.layer(r));
  }
  Rng rng(seed);
  std::vector<EdgeUpdate> updates;
  while (static_cast<int>(updates.size()) < count) {
    EdgeUpdate u;
    u.relation = static_cast<int>(rng.UniformInt(graph.num_relations()));
    u.src = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    u.dst = static_cast<int>(rng.UniformInt(graph.num_nodes()));
    if (u.src == u.dst) continue;
    u.add = !mirror[u.relation].Has(u.src, u.dst);
    if (u.add) {
      mirror[u.relation].AddEntry(u.src, u.dst, 1.0f);
      mirror[u.relation].AddEntry(u.dst, u.src, 1.0f);
    } else {
      mirror[u.relation].RemoveEntry(u.src, u.dst);
      mirror[u.relation].RemoveEntry(u.dst, u.src);
    }
    updates.push_back(u);
  }
  return updates;
}

void ExpectSameBits(const std::vector<double>& got,
                    const std::vector<double>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " node " << i;
  }
}

/// Create a scorer, run the update sequence, and return the score trace
/// (initial scores plus the scores after each update), asserting
/// incremental == full-naive at every step.
std::vector<std::vector<double>> RunSequence(
    const std::vector<EdgeUpdate>& updates, const ServeOptions& options,
    const std::string& label) {
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph,
                                     options);
  UMGAD_CHECK(scorer.ok());
  std::vector<std::vector<double>> trace;
  trace.push_back((*scorer)->scores());
  ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                 label + " init");
  for (size_t k = 0; k < updates.size(); ++k) {
    Status applied = (*scorer)->ApplyEdgeUpdate(updates[k]);
    EXPECT_TRUE(applied.ok()) << label << " update " << k << ": "
                              << applied.ToString();
    ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                   label + " update " + std::to_string(k));
    trace.push_back((*scorer)->scores());
  }
  EXPECT_EQ((*scorer)->stats().updates_applied,
            static_cast<int64_t>(updates.size()));
  return trace;
}

// ------------------------- the oracle sweep -------------------------------

TEST(ServeOracleTest, IncrementalMatchesFullRescoreAcrossThreadsAndArena) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 12, /*seed=*/31);

  const OracleSweep sweep;  // {1, 4} threads x arena on/off
  const bool prev_arena = ArenaEnabled();
  SetNumThreads(1);
  SetArenaEnabled(true);
  const std::vector<std::vector<double>> reference =
      RunSequence(updates, ServeOptions(), "reference");

  for (bool arena : sweep.arena_modes) {
    for (int threads : sweep.thread_counts) {
      SetArenaEnabled(arena);
      SetNumThreads(threads);
      const std::string label = "threads=" + std::to_string(threads) +
                                " arena=" + (arena ? "1" : "0");
      const auto trace = RunSequence(updates, ServeOptions(), label);
      ASSERT_EQ(trace.size(), reference.size());
      for (size_t k = 0; k < trace.size(); ++k) {
        ExpectSameBits(trace[k], reference[k],
                       label + " step " + std::to_string(k));
      }
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

TEST(ServeOracleTest, CacheBudgetNeverChangesScores) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 8, /*seed=*/47);
  const auto unlimited = RunSequence(updates, ServeOptions(), "unlimited");

  const int n = Fixture().graph.num_nodes();
  for (int budget : {0, n / 4}) {
    ServeOptions options;
    options.cache_budget_nodes = budget;
    auto scorer =
        OnlineScorer::Create(Fixture().trained, Fixture().graph, options);
    ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
    const std::string label = "budget=" + std::to_string(budget);
    ExpectSameBits((*scorer)->scores(), unlimited[0], label + " init");
    for (size_t k = 0; k < updates.size(); ++k) {
      ASSERT_TRUE((*scorer)->ApplyEdgeUpdate(updates[k]).ok());
      ExpectSameBits((*scorer)->scores(), unlimited[k + 1],
                     label + " step " + std::to_string(k));
    }
    // A bounded cache must actually have been recomputing evicted rows.
    EXPECT_GT((*scorer)->stats().cache_misses, 0) << label;
  }
}

// ------------------------- score-path equivalences ------------------------

TEST(ServeOracleTest, BatchReplayReproducesFittedScores) {
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  auto replay = (*scorer)->BatchReplayScores();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ExpectSameBits(*replay, Fixture().model.scores(), "batch replay");
}

TEST(ServeOracleTest, ZeroNegativesMatchesTrainingScores) {
  // With no structure negatives the per-node streams draw nothing, so the
  // incremental path's only divergence from training-time scoring
  // disappears: serve scores == fitted scores bit for bit.
  MultiplexGraph graph = MakeTiny(123);
  UmgadConfig config = ServeConfig();
  config.num_score_negatives = 0;
  UmgadModel model(config);
  ASSERT_TRUE(model.Fit(graph).ok());
  auto trained = TrainedModel::FromFitted(model, graph);
  ASSERT_TRUE(trained.ok());
  auto scorer = OnlineScorer::Create(*trained, graph);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  ExpectSameBits((*scorer)->scores(), model.scores(), "zero negatives");
  auto replay = (*scorer)->BatchReplayScores();
  ASSERT_TRUE(replay.ok());
  ExpectSameBits(*replay, model.scores(), "zero negatives replay");
}

TEST(ServeOracleTest, RevertedUpdateRestoresScores) {
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  const std::vector<double> initial = (*scorer)->scores();

  // An edge that does not exist: insert, then remove it again.
  const MultiplexGraph& graph = Fixture().graph;
  EdgeUpdate update;
  update.relation = 0;
  update.src = 0;
  for (update.dst = 1; update.dst < graph.num_nodes(); ++update.dst) {
    if (!graph.layer(0).Has(update.src, update.dst)) break;
  }
  ASSERT_LT(update.dst, graph.num_nodes());

  update.add = true;
  ASSERT_TRUE((*scorer)->ApplyEdgeUpdate(update).ok());
  EXPECT_GT((*scorer)->stats().last_dirty_rows, 0);
  EXPECT_GT((*scorer)->stats().last_rescored_nodes, 0);
  update.add = false;
  ASSERT_TRUE((*scorer)->ApplyEdgeUpdate(update).ok());

  ExpectSameBits((*scorer)->scores(), initial, "reverted update");
  EXPECT_EQ((*scorer)->stats().updates_applied, 2);
}

// ------------------------- batched updates --------------------------------

TEST(ServeOracleTest, BatchedUpdatesMatchSequentialAndFullRescore) {
  const std::vector<EdgeUpdate> updates =
      MakeUpdateSequence(Fixture().graph, 12, /*seed=*/61);

  // Reference: the same burst applied one update at a time.
  auto sequential =
      OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  for (const EdgeUpdate& u : updates) {
    ASSERT_TRUE((*sequential)->ApplyEdgeUpdate(u).ok());
  }

  // One coalesced pass over the whole burst (and a split into two bursts,
  // which must land on the same scores via a different coalescing).
  for (size_t split : {updates.size(), updates.size() / 2}) {
    auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
    ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
    const std::string label = "split=" + std::to_string(split);
    std::vector<EdgeUpdate> head(updates.begin(),
                                 updates.begin() + static_cast<long>(split));
    std::vector<EdgeUpdate> tail(updates.begin() + static_cast<long>(split),
                                 updates.end());
    ASSERT_TRUE((*scorer)->ApplyEdgeUpdates(head).ok()) << label;
    if (!tail.empty()) {
      ASSERT_TRUE((*scorer)->ApplyEdgeUpdates(tail).ok()) << label;
    }
    EXPECT_EQ((*scorer)->stats().updates_applied,
              static_cast<int64_t>(updates.size()))
        << label;
    ExpectSameBits((*scorer)->scores(), (*sequential)->scores(),
                   label + " vs sequential");
    ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                   label + " vs full rescore");
  }
}

TEST(ServeOracleTest, BatchedUpdatesAllowToggleWithinBurst) {
  // A burst may insert an edge and remove it again: validation runs against
  // the mutated prefix, so both legs are legal and the net effect is zero.
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  const std::vector<double> initial = (*scorer)->scores();
  const MultiplexGraph& graph = Fixture().graph;

  EdgeUpdate insert;
  insert.relation = 0;
  insert.src = 0;
  for (insert.dst = 1; insert.dst < graph.num_nodes(); ++insert.dst) {
    if (!graph.layer(0).Has(insert.src, insert.dst)) break;
  }
  ASSERT_LT(insert.dst, graph.num_nodes());
  insert.add = true;
  EdgeUpdate remove = insert;
  remove.add = false;

  ASSERT_TRUE((*scorer)->ApplyEdgeUpdates({insert, remove}).ok());
  EXPECT_EQ((*scorer)->stats().updates_applied, 2);
  ExpectSameBits((*scorer)->scores(), initial, "toggle burst");
  ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                 "toggle burst vs full rescore");

  // An empty burst is a no-op.
  ASSERT_TRUE((*scorer)->ApplyEdgeUpdates({}).ok());
  EXPECT_EQ((*scorer)->stats().updates_applied, 2);
}

TEST(ServeOracleTest, BatchedUpdatesRollBackOnError) {
  // A bad update mid-burst rolls back the applied prefix: the adjacency,
  // the cached state, and the stats all stay exactly as before the call.
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  const std::vector<double> initial = (*scorer)->scores();
  const MultiplexGraph& graph = Fixture().graph;

  EdgeUpdate good;
  good.relation = 0;
  good.src = 0;
  for (good.dst = 1; good.dst < graph.num_nodes(); ++good.dst) {
    if (!graph.layer(0).Has(good.src, good.dst)) break;
  }
  ASSERT_LT(good.dst, graph.num_nodes());
  good.add = true;

  EdgeUpdate duplicate = good;  // second insert of the same edge fails
  Status burst = (*scorer)->ApplyEdgeUpdates({good, duplicate});
  ASSERT_FALSE(burst.ok());
  EXPECT_EQ(burst.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*scorer)->stats().updates_applied, 0);
  ExpectSameBits((*scorer)->scores(), initial, "after failed burst");
  ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                 "state consistency after failed burst");

  // The rolled-back edge is still absent, so the insert succeeds now.
  ASSERT_TRUE((*scorer)->ApplyEdgeUpdate(good).ok());
  EXPECT_EQ((*scorer)->stats().updates_applied, 1);
}

// ------------------------- error paths ------------------------------------

TEST(ServeOracleTest, CreateChecksFingerprint) {
  MultiplexGraph other = MakeTiny(124);
  auto scorer = OnlineScorer::Create(Fixture().trained, other);
  ASSERT_FALSE(scorer.ok());
  EXPECT_EQ(scorer.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(scorer.status().message().find("fingerprint"),
            std::string::npos);
}

TEST(ServeOracleTest, ApplyEdgeUpdateRejectsInvalidUpdates) {
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  const std::vector<double> initial = (*scorer)->scores();
  const MultiplexGraph& graph = Fixture().graph;
  const int n = graph.num_nodes();

  EdgeUpdate bad;
  bad.src = 0;
  bad.dst = 1;
  bad.relation = graph.num_relations();
  EXPECT_FALSE((*scorer)->ApplyEdgeUpdate(bad).ok());
  bad.relation = -1;
  EXPECT_FALSE((*scorer)->ApplyEdgeUpdate(bad).ok());

  bad.relation = 0;
  bad.dst = n;
  EXPECT_FALSE((*scorer)->ApplyEdgeUpdate(bad).ok());
  bad.src = -1;
  bad.dst = 1;
  EXPECT_FALSE((*scorer)->ApplyEdgeUpdate(bad).ok());

  bad.src = 2;
  bad.dst = 2;  // self loop
  EXPECT_FALSE((*scorer)->ApplyEdgeUpdate(bad).ok());

  // Inserting a present edge / removing an absent one.
  EdgeUpdate conflict;
  conflict.relation = 0;
  conflict.src = graph.layer(0).row_ptr()[1] > 0 ? 0 : 1;
  bool found = false;
  for (int i = 0; i < n && !found; ++i) {
    for (int j = i + 1; j < n && !found; ++j) {
      if (graph.layer(0).Has(i, j)) {
        conflict.src = i;
        conflict.dst = j;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "fixture layer 0 has no edges";
  conflict.add = true;
  auto present = (*scorer)->ApplyEdgeUpdate(conflict);
  ASSERT_FALSE(present.ok());
  EXPECT_EQ(present.code(), StatusCode::kFailedPrecondition);

  found = false;
  EdgeUpdate absent;
  absent.relation = 0;
  for (int j = 1; j < n && !found; ++j) {
    if (!graph.layer(0).Has(0, j)) {
      absent.src = 0;
      absent.dst = j;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  absent.add = false;
  auto removal = (*scorer)->ApplyEdgeUpdate(absent);
  ASSERT_FALSE(removal.ok());
  EXPECT_EQ(removal.code(), StatusCode::kNotFound);

  // Every rejected update left the state untouched.
  EXPECT_EQ((*scorer)->stats().updates_applied, 0);
  ExpectSameBits((*scorer)->scores(), initial, "after rejected updates");
  ExpectSameBits((*scorer)->scores(), (*scorer)->RescoreFullNaive(),
                 "state consistency after rejections");
}

TEST(ServeOracleTest, QueryGathersAndValidates) {
  auto scorer = OnlineScorer::Create(Fixture().trained, Fixture().graph);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  const std::vector<double>& all = (*scorer)->scores();
  const int n = Fixture().graph.num_nodes();

  auto subset = (*scorer)->Query({0, n - 1, n / 2});
  ASSERT_TRUE(subset.ok()) << subset.status().ToString();
  ASSERT_EQ(subset->size(), 3u);
  EXPECT_EQ((*subset)[0], all[0]);
  EXPECT_EQ((*subset)[1], all[n - 1]);
  EXPECT_EQ((*subset)[2], all[n / 2]);

  EXPECT_FALSE((*scorer)->Query({n}).ok());
  EXPECT_FALSE((*scorer)->Query({-1}).ok());
}

// ------------------------- DynamicAdjacency contract ----------------------

TEST(ServeOracleTest, DynamicAdjacencyRoundTripsCsr) {
  const MultiplexGraph& graph = Fixture().graph;
  for (int r = 0; r < graph.num_relations(); ++r) {
    DynamicAdjacency dyn(graph.layer(r));
    SparseMatrix back = dyn.ToSparse();
    EXPECT_EQ(back.row_ptr(), graph.layer(r).row_ptr()) << "relation " << r;
    EXPECT_EQ(back.col_idx(), graph.layer(r).col_idx()) << "relation " << r;
    EXPECT_EQ(back.values(), graph.layer(r).values()) << "relation " << r;
  }
}

TEST(ServeOracleTest, DynamicAdjacencyMutationsMatchBatchOperator) {
  // After a burst of random symmetric mutations, the lazily maintained
  // row sums and the on-the-fly normalised row walk must equal what the
  // batch path computes from the rebuilt CSR.
  const MultiplexGraph& graph = Fixture().graph;
  const int n = graph.num_nodes();
  DynamicAdjacency dyn(graph.layer(0));
  Rng rng(99);
  for (int step = 0; step < 40; ++step) {
    const int i = static_cast<int>(rng.UniformInt(n));
    const int j = static_cast<int>(rng.UniformInt(n));
    if (i == j) continue;
    if (dyn.Has(i, j)) {
      EXPECT_TRUE(dyn.RemoveEntry(i, j));
      EXPECT_TRUE(dyn.RemoveEntry(j, i));
    } else {
      EXPECT_TRUE(dyn.AddEntry(i, j, 1.0f));
      EXPECT_TRUE(dyn.AddEntry(j, i, 1.0f));
    }
  }
  // Double insert / double remove are rejected without changing state.
  const int64_t nnz = dyn.nnz();
  if (dyn.degree(0) > 0) {
    EXPECT_FALSE(dyn.AddEntry(0, dyn.neighbors(0)[0], 1.0f));
  }
  EXPECT_FALSE(dyn.AddEntry(1, 1, 1.0f));
  EXPECT_FALSE(dyn.RemoveEntry(0, 0));
  EXPECT_EQ(dyn.nnz(), nnz);

  SparseMatrix rebuilt = dyn.ToSparse();
  const std::vector<double> sums = rebuilt.RowSums();
  const SparseMatrix norm = rebuilt.NormalizedWithSelfLoops();
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(dyn.row_sum(i), sums[i]) << "row " << i;
    std::vector<std::pair<int, float>> walked;
    dyn.ForEachNormEntry(i, [&](int j, float v) { walked.emplace_back(j, v); });
    const int64_t begin = norm.row_ptr()[i];
    const int64_t end = norm.row_ptr()[i + 1];
    ASSERT_EQ(static_cast<int64_t>(walked.size()), end - begin) << "row " << i;
    for (int64_t k = begin; k < end; ++k) {
      EXPECT_EQ(walked[k - begin].first, norm.col_idx()[k]) << "row " << i;
      EXPECT_EQ(walked[k - begin].second, norm.values()[k]) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace umgad
