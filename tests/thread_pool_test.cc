#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace umgad {
namespace {

TEST(ThreadPoolTest, ConstructAndDestructRepeatedly) {
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
  }
  // A pool of one lane spawns no workers and must still work.
  ThreadPool solo(1);
  int calls = 0;
  solo.ParallelFor(0, 5, 1, [&](int64_t b, int64_t e) {
    calls += static_cast<int>(e - b);
  });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, 16, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 200, 7, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  // sum of [100, 200)
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ThreadPoolTest, ZeroAndOneItemRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // empty range: body never runs
  pool.ParallelFor(7, 8, 1, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 7);
    EXPECT_EQ(e, 8);
  });
  EXPECT_EQ(calls, 1);  // single item: one inline call
}

TEST(ThreadPoolTest, RangeSmallerThanGrainRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 100, 1000, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCompletes) {
  ThreadPool pool(4);
  const int outer = 8;
  const int inner = 1000;
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, outer, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      EXPECT_TRUE(ThreadPool::InParallelRegion());
      // Nested: must run inline on this thread rather than deadlock on the
      // shared queue.
      pool.ParallelFor(0, inner, 1, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), outer * inner);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  auto throwing = [&] {
    pool.ParallelFor(0, 1000, 1, [&](int64_t b, int64_t) {
      if (b >= 500) throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(throwing(), std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int64_t> count{0};
  pool.ParallelFor(0, 256, 1, [&](int64_t b, int64_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPoolTest, ExceptionOnInlinePathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.ParallelFor(0, 10, 1,
                       [](int64_t, int64_t) {
                         throw std::invalid_argument("inline");
                       }),
      std::invalid_argument);
}

TEST(ThreadPoolTest, ParseThreadCount) {
  EXPECT_EQ(ParseThreadCount(nullptr), 0);
  EXPECT_EQ(ParseThreadCount(""), 0);
  EXPECT_EQ(ParseThreadCount("4"), 4);
  EXPECT_EQ(ParseThreadCount("1"), 1);
  EXPECT_EQ(ParseThreadCount("0"), 0);     // "auto"
  EXPECT_EQ(ParseThreadCount("-3"), 0);    // invalid -> auto
  EXPECT_EQ(ParseThreadCount("abc"), 0);   // invalid -> auto
  EXPECT_EQ(ParseThreadCount("4x"), 0);    // trailing junk -> auto
  EXPECT_EQ(ParseThreadCount("1000"), 0);  // out of range -> auto
}

TEST(ThreadPoolTest, SetNumThreadsRebuildsGlobalPool) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  std::atomic<int64_t> sum{0};
  ParallelFor(10000, 8, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), int64_t{9999} * 10000 / 2);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
}

TEST(ThreadPoolTest, FreeParallelForMatchesSerialSum) {
  SetNumThreads(4);
  const int n = 4096;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  std::vector<double> doubled(n, 0.0);
  ParallelFor(n, 64, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) doubled[i] = 2.0 * values[i];
  });
  for (int i = 0; i < n; ++i) ASSERT_EQ(doubled[i], 2.0 * i);
  SetNumThreads(1);
}

}  // namespace
}  // namespace umgad
