// Pins the declarative dataset registry to the legacy hand-written Make*
// generators it replaced: LegacyMake* below are verbatim copies of the
// pre-registry implementations (src/graph/datasets.cc before the dataset
// subsystem refactor), and every registered dataset must build
// bit-identically to them — same RNG stream consumption, same CSR arrays,
// same attribute bits, same labels.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/anomaly_injection.h"
#include "graph/dataset_registry.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace umgad {
namespace {

int ScaledNodes(int base, double scale) {
  return std::max(64, static_cast<int>(std::lround(base * scale)));
}

int64_t ScaledEdges(int64_t base, double scale) {
  return std::max<int64_t>(32, static_cast<int64_t>(std::llround(
      static_cast<double>(base) * scale)));
}

MultiplexGraph LegacyMakeRetail(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x5e7a11ULL);
  SbmMultiplexConfig config;
  config.name = "Retail";
  config.num_nodes = ScaledNodes(3228, scale);
  config.feature_dim = 32;
  config.num_communities = 10;
  config.attribute_noise = 0.35;
  config.relations = {
      {.name = "View", .target_edges = ScaledEdges(7537, scale),
       .intra_community_prob = 0.65, .noise_frac = 0.45},
      {.name = "Cart", .target_edges = 0, .subset_of = 0,
       .subset_frac = 0.11, .subset_intra_boost = 3.0},
      {.name = "Buy", .target_edges = 0, .subset_of = 1,
       .subset_frac = 0.6, .subset_intra_boost = 1.6},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);

  InjectionConfig inj;
  inj.clique_size = 5;
  inj.num_cliques = std::max(1, static_cast<int>(std::lround(3 * scale)));
  inj.num_attribute_anomalies = inj.clique_size * inj.num_cliques;
  InjectAnomalies(&g, inj, &rng);
  return g;
}

MultiplexGraph LegacyMakeAlibaba(uint64_t seed, double scale) {
  Rng rng(seed ^ 0xa11baba0ULL);
  SbmMultiplexConfig config;
  config.name = "Alibaba";
  config.num_nodes = ScaledNodes(2265, scale);
  config.feature_dim = 32;
  config.num_communities = 8;
  config.attribute_noise = 0.4;
  config.relations = {
      {.name = "View", .target_edges = ScaledEdges(3493, scale),
       .intra_community_prob = 0.6, .noise_frac = 0.5},
      {.name = "Cart", .target_edges = 0, .subset_of = 0,
       .subset_frac = 0.12, .subset_intra_boost = 3.0},
      {.name = "Buy", .target_edges = 0, .subset_of = 1,
       .subset_frac = 0.58, .subset_intra_boost = 1.6},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);

  InjectionConfig inj;
  inj.clique_size = 5;
  inj.num_cliques = std::max(1, static_cast<int>(std::lround(3 * scale)));
  inj.num_attribute_anomalies = inj.clique_size * inj.num_cliques;
  InjectAnomalies(&g, inj, &rng);
  return g;
}

MultiplexGraph LegacyMakeAmazon(uint64_t seed, double scale) {
  Rng rng(seed ^ 0xa3a204ULL);
  SbmMultiplexConfig config;
  config.name = "Amazon";
  config.num_nodes = ScaledNodes(1194, scale);
  config.feature_dim = 32;
  config.num_communities = 6;
  config.attribute_noise = 0.3;
  config.relations = {
      {.name = "U-P-U", .target_edges = ScaledEdges(8000, scale),
       .intra_community_prob = 0.9},
      {.name = "U-S-U", .target_edges = ScaledEdges(70000, scale),
       .intra_community_prob = 0.5, .noise_frac = 0.85},
      {.name = "U-V-U", .target_edges = ScaledEdges(24000, scale),
       .intra_community_prob = 0.7, .noise_frac = 0.3},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);

  FraudRingConfig rings;
  rings.ring_size = 8;
  rings.num_rings = std::max(1, static_cast<int>(std::lround(10 * scale)));
  rings.ring_density = 0.3;
  rings.relation_affinity = {0.9, 0.5, 0.75};
  rings.camouflage = 0.85;
  rings.contact_edges = 8;
  PlantFraudRings(&g, rings, &rng);
  return g;
}

MultiplexGraph LegacyMakeYelpChi(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x9e19c41ULL);
  SbmMultiplexConfig config;
  config.name = "YelpChi";
  config.num_nodes = ScaledNodes(4596, scale);
  config.feature_dim = 32;
  config.num_communities = 12;
  config.attribute_noise = 0.45;
  config.relations = {
      {.name = "R-U-R", .target_edges = ScaledEdges(4900, scale),
       .intra_community_prob = 0.9},
      {.name = "R-S-R", .target_edges = ScaledEdges(68000, scale),
       .intra_community_prob = 0.5, .noise_frac = 0.8},
      {.name = "R-T-R", .target_edges = ScaledEdges(23000, scale),
       .intra_community_prob = 0.6, .noise_frac = 0.45},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);

  FraudRingConfig rings;
  rings.ring_size = 10;
  rings.num_rings = std::max(1, static_cast<int>(std::lround(66 * scale)));
  rings.ring_density = 0.25;
  rings.relation_affinity = {0.85, 0.45, 0.6};
  rings.camouflage = 0.8;
  rings.contact_edges = 6;
  PlantFraudRings(&g, rings, &rng);
  return g;
}

MultiplexGraph LegacyMakeDGFin(uint64_t seed, double scale) {
  Rng rng(seed ^ 0xd9f17ULL);
  SbmMultiplexConfig config;
  config.name = "DG-Fin";
  config.num_nodes = ScaledNodes(37000, scale);
  config.feature_dim = 32;
  config.num_communities = 24;
  config.attribute_noise = 0.4;
  config.relations = {
      {.name = "U-C-U", .target_edges = ScaledEdges(4400, scale),
       .intra_community_prob = 0.95},
      {.name = "U-B-U", .target_edges = ScaledEdges(24000, scale),
       .intra_community_prob = 0.6, .noise_frac = 0.35},
      {.name = "U-R-U", .target_edges = ScaledEdges(14000, scale),
       .intra_community_prob = 0.8},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);

  FraudRingConfig rings;
  rings.ring_size = 5;
  rings.num_rings = std::max(1, static_cast<int>(std::lround(31 * scale)));
  rings.ring_density = 0.3;
  rings.relation_affinity = {0.3, 0.9, 0.6};
  rings.camouflage = 0.74;
  rings.contact_edges = 5;
  PlantFraudRings(&g, rings, &rng);
  return g;
}

MultiplexGraph LegacyMakeTSocial(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x7500c1a1ULL);
  SbmMultiplexConfig config;
  config.name = "T-Social";
  config.num_nodes = ScaledNodes(28900, scale);
  config.feature_dim = 32;
  config.num_communities = 20;
  config.attribute_noise = 0.4;
  config.relations = {
      {.name = "U-R-U", .target_edges = ScaledEdges(340000, scale),
       .intra_community_prob = 0.7, .noise_frac = 0.25},
      {.name = "U-F-U", .target_edges = ScaledEdges(15000, scale),
       .intra_community_prob = 0.85},
      {.name = "U-G-U", .target_edges = ScaledEdges(12000, scale),
       .intra_community_prob = 0.85},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);

  FraudRingConfig rings;
  rings.ring_size = 10;
  rings.num_rings = std::max(1, static_cast<int>(std::lround(87 * scale)));
  rings.ring_density = 0.25;
  rings.relation_affinity = {0.4, 0.9, 0.8};
  rings.camouflage = 0.7;
  rings.contact_edges = 6;
  PlantFraudRings(&g, rings, &rng);
  return g;
}

MultiplexGraph LegacyMakeTiny(uint64_t seed) {
  Rng rng(seed ^ 0x7171717ULL);
  SbmMultiplexConfig config;
  config.name = "Tiny";
  config.num_nodes = 200;
  config.feature_dim = 16;
  config.num_communities = 4;
  config.attribute_noise = 0.3;
  config.relations = {
      {.name = "rel-a", .target_edges = 600, .intra_community_prob = 0.9},
      {.name = "rel-b", .target_edges = 300, .intra_community_prob = 0.7},
  };
  MultiplexGraph g = GenerateSbmMultiplex(config, &rng);

  InjectionConfig inj;
  inj.clique_size = 5;
  inj.num_cliques = 1;
  inj.num_attribute_anomalies = 5;
  inj.candidate_pool = 30;
  InjectAnomalies(&g, inj, &rng);
  return g;
}

void ExpectBitIdentical(const MultiplexGraph& actual,
                        const MultiplexGraph& expected) {
  EXPECT_EQ(actual.name(), expected.name());
  ASSERT_EQ(actual.num_nodes(), expected.num_nodes());
  ASSERT_EQ(actual.num_relations(), expected.num_relations());
  ASSERT_EQ(actual.feature_dim(), expected.feature_dim());
  EXPECT_EQ(actual.labels(), expected.labels());
  for (int r = 0; r < actual.num_relations(); ++r) {
    EXPECT_EQ(actual.relation_name(r), expected.relation_name(r));
    EXPECT_EQ(actual.layer(r).row_ptr(), expected.layer(r).row_ptr())
        << "relation " << r;
    EXPECT_EQ(actual.layer(r).col_idx(), expected.layer(r).col_idx())
        << "relation " << r;
    EXPECT_EQ(actual.layer(r).values(), expected.layer(r).values())
        << "relation " << r;
  }
  EXPECT_EQ(MaxAbsDiff(actual.attributes(), expected.attributes()), 0.0);
}

struct LegacyCase {
  const char* name;
  MultiplexGraph (*legacy)(uint64_t, double);
  double scale;
};

class RegistryVsLegacy : public ::testing::TestWithParam<LegacyCase> {};

TEST_P(RegistryVsLegacy, BitIdentical) {
  const LegacyCase& c = GetParam();
  for (uint64_t seed : {uint64_t{1}, uint64_t{1234}}) {
    auto built = DatasetRegistry::Global().Build(c.name, seed, c.scale);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ExpectBitIdentical(*built, c.legacy(seed, c.scale));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, RegistryVsLegacy,
    ::testing::Values(
        LegacyCase{"Retail", LegacyMakeRetail, 0.12},
        LegacyCase{"Alibaba", LegacyMakeAlibaba, 0.12},
        LegacyCase{"Amazon", LegacyMakeAmazon, 0.12},
        LegacyCase{"YelpChi", LegacyMakeYelpChi, 0.12},
        LegacyCase{"DG-Fin", LegacyMakeDGFin, 0.02},
        LegacyCase{"T-Social", LegacyMakeTSocial, 0.02}),
    [](const ::testing::TestParamInfo<LegacyCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(DatasetRegistryTest, TinyMatchesLegacyAndIgnoresScale) {
  for (uint64_t seed : {uint64_t{7}, uint64_t{123}}) {
    auto built = DatasetRegistry::Global().Build("Tiny", seed, /*scale=*/1.0);
    ASSERT_TRUE(built.ok());
    ExpectBitIdentical(*built, LegacyMakeTiny(seed));
    // Tiny's shape is pinned: scale must not change anything.
    auto scaled = DatasetRegistry::Global().Build("Tiny", seed,
                                                  /*scale=*/3.0);
    ASSERT_TRUE(scaled.ok());
    ExpectBitIdentical(*scaled, *built);
  }
}

TEST(DatasetRegistryTest, MakeWrappersGoThroughRegistry) {
  ExpectBitIdentical(MakeRetail(5, 0.1),
                     *DatasetRegistry::Global().Build("Retail", 5, 0.1));
  ExpectBitIdentical(MakeTiny(5),
                     *DatasetRegistry::Global().Build("Tiny", 5));
}

TEST(DatasetRegistryTest, NamesAndGroups) {
  DatasetRegistry& registry = DatasetRegistry::Global();
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"Retail", "Alibaba", "Amazon",
                                      "YelpChi", "DG-Fin", "T-Social",
                                      "Tiny"}));
  EXPECT_EQ(registry.NamesInGroup(DatasetGroup::kSmall),
            SmallDatasetNames());
  EXPECT_EQ(registry.NamesInGroup(DatasetGroup::kLarge),
            LargeDatasetNames());
  EXPECT_EQ(registry.NamesInGroup(DatasetGroup::kTest),
            (std::vector<std::string>{"Tiny"}));
}

TEST(DatasetRegistryTest, FindAndBuildErrors) {
  DatasetRegistry& registry = DatasetRegistry::Global();
  EXPECT_NE(registry.Find("Retail"), nullptr);
  EXPECT_EQ(registry.Find("NoSuchDataset"), nullptr);
  EXPECT_FALSE(registry.Contains("NoSuchDataset"));
  auto missing = registry.Build("NoSuchDataset", 1);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(DatasetRegistryTest, PaperStatsPresentForPaperDatasets) {
  for (const DatasetSpec& spec : DatasetRegistry::Global().specs()) {
    if (spec.group == DatasetGroup::kTest) continue;
    EXPECT_FALSE(spec.paper_nodes.empty()) << spec.name;
    EXPECT_FALSE(spec.paper_anomalies.empty()) << spec.name;
  }
}

TEST(DatasetRegistryTest, RuntimeRegistrationAndShadowing) {
  // A fresh (non-global) registry keeps the Global() one clean.
  DatasetSpec custom;
  custom.name = "custom-sbm";
  custom.seed_salt = 0xc0ffeeULL;
  custom.group = DatasetGroup::kTest;
  custom.base_nodes = 120;
  custom.feature_dim = 8;
  custom.num_communities = 3;
  custom.relations = {
      {.name = "a", .target_edges = 400, .intra_community_prob = 0.9}};
  custom.anomalies.kind = AnomalySpec::Kind::kInjectedCliques;
  custom.anomalies.clique_size = 4;
  custom.anomalies.base_count = 1;

  DatasetRegistry& registry = DatasetRegistry::Global();
  const size_t before = registry.specs().size();
  registry.Register(custom);
  ASSERT_TRUE(registry.Contains("custom-sbm"));
  auto built = registry.Build("custom-sbm", 3);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->num_nodes(), 120);
  EXPECT_EQ(built->num_relations(), 1);
  EXPECT_GT(built->num_anomalies(), 0);

  // Re-registering replaces in place instead of duplicating.
  custom.base_nodes = 150;
  registry.Register(custom);
  EXPECT_EQ(registry.specs().size(), before + 1);
  EXPECT_EQ(registry.Build("custom-sbm", 3)->num_nodes(), 150);
}

}  // namespace
}  // namespace umgad
