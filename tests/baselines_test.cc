#include <cmath>

#include <gtest/gtest.h>

#include "baselines/detector.h"
#include "eval/metrics.h"
#include "graph/datasets.h"

namespace umgad {
namespace {

TEST(RegistryTest, AllNamesConstructible) {
  for (const std::string& name : AllDetectorNames()) {
    auto detector = MakeDetector(name, 1);
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_EQ((*detector)->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto result = MakeDetector("NoSuchMethod", 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, CountsMatchPaperTableII) {
  // 22 baselines + UMGAD.
  EXPECT_EQ(AllDetectorNames().size(), 23u);
  EXPECT_EQ(ScalableDetectorNames().size(), 9u);
}

TEST(RegistryTest, CategoriesMatchPaperBlocks) {
  EXPECT_EQ(CategoryOf("Radar"), DetectorCategory::kTraditional);
  EXPECT_EQ(CategoryOf("TAM"), DetectorCategory::kMpi);
  EXPECT_EQ(CategoryOf("CoLA"), DetectorCategory::kCl);
  EXPECT_EQ(CategoryOf("DOMINANT"), DetectorCategory::kGae);
  EXPECT_EQ(CategoryOf("AnomMAN"), DetectorCategory::kMv);
  EXPECT_EQ(CategoryOf("UMGAD"), DetectorCategory::kOurs);
  EXPECT_STREQ(CategoryName(DetectorCategory::kGae), "GAE");
}

TEST(RegistryTest, ScalableIsSubsetOfAll) {
  std::vector<std::string> all = AllDetectorNames();
  for (const std::string& name : ScalableDetectorNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

/// Every detector must fit the tiny dataset, produce one finite score per
/// node, and do meaningfully better than random on this easy benchmark.
class DetectorSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(DetectorSmoke, FitsAndScoresTinyDataset) {
  MultiplexGraph g = MakeTiny(13);
  auto detector = MakeDetector(GetParam(), 7);
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE((*detector)->Fit(g).ok()) << GetParam();
  const std::vector<double>& scores = (*detector)->scores();
  ASSERT_EQ(scores.size(), static_cast<size_t>(g.num_nodes()));
  for (double s : scores) EXPECT_TRUE(std::isfinite(s)) << GetParam();

  // Tiny has blatant injected anomalies; every mechanism should beat
  // random ranking on it. (Quality separation between methods is measured
  // by the benchmark harness, not asserted here.)
  EXPECT_GT(RocAuc(scores, g.labels()), 0.5) << GetParam();
  EXPECT_GE((*detector)->fit_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorSmoke, ::testing::ValuesIn(AllDetectorNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(DetectorTest, RejectsDegenerateGraph) {
  auto g = MultiplexGraph::Create(
      "micro", Tensor(2, 2),
      {SparseMatrix::FromEdges(2, {Edge{0, 1}}, true)}, {"r"});
  ASSERT_TRUE(g.ok());
  for (const char* name : {"Radar", "DOMINANT", "CoLA"}) {
    auto detector = MakeDetector(name, 1);
    ASSERT_TRUE(detector.ok());
    EXPECT_FALSE((*detector)->Fit(*g).ok()) << name;
  }
}

TEST(DetectorTest, DeterministicForSameSeed) {
  MultiplexGraph g = MakeTiny(14);
  for (const char* name : {"Radar", "PREM", "DOMINANT"}) {
    auto a = MakeDetector(name, 5);
    auto b = MakeDetector(name, 5);
    ASSERT_TRUE((*a)->Fit(g).ok());
    ASSERT_TRUE((*b)->Fit(g).ok());
    for (size_t i = 0; i < (*a)->scores().size(); ++i) {
      EXPECT_DOUBLE_EQ((*a)->scores()[i], (*b)->scores()[i]) << name;
    }
  }
}

TEST(DetectorTest, TrainedDetectorsReportEpochTime) {
  MultiplexGraph g = MakeTiny(15);
  auto trained = MakeDetector("DOMINANT", 3);
  ASSERT_TRUE((*trained)->Fit(g).ok());
  EXPECT_GT((*trained)->epoch_seconds(), 0.0);
  // Training-free methods report zero epoch time.
  auto free = MakeDetector("PREM", 3);
  ASSERT_TRUE((*free)->Fit(g).ok());
  EXPECT_EQ((*free)->epoch_seconds(), 0.0);
}

}  // namespace
}  // namespace umgad
