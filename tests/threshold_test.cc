#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/threshold.h"

namespace umgad {
namespace {

/// Sharply separated score set: `anomalies` values near `hi`, the rest near
/// `lo` — the curve shape the paper's Fig. 2 shows for a good detector.
std::vector<double> SharpScores(int n, int anomalies, double hi, double lo,
                                double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> s(n);
  for (int i = 0; i < n; ++i) {
    s[i] = (i < anomalies ? hi : lo) + rng.Normal(0.0, noise);
  }
  rng.Shuffle(&s);
  return s;
}

struct SharpCase {
  int n;
  int anomalies;
};

class InflectionRecovery : public ::testing::TestWithParam<SharpCase> {};

TEST_P(InflectionRecovery, FindsBoundaryOnSharpCurves) {
  const auto [n, anomalies] = GetParam();
  std::vector<double> scores =
      SharpScores(n, anomalies, 2.0, 0.1, 0.03, 17);
  ThresholdResult result = SelectThresholdInflection(scores);
  // The predicted count lands within the smoothing window of the truth.
  EXPECT_NEAR(result.num_predicted, anomalies,
              std::max(5, result.window + 2));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, InflectionRecovery,
    ::testing::Values(SharpCase{500, 25}, SharpCase{1000, 50},
                      SharpCase{1000, 120}, SharpCase{3000, 90},
                      SharpCase{5000, 400}, SharpCase{800, 8}));

TEST(ThresholdTest, DefaultWindowFollowsPaperFormula) {
  std::vector<double> scores = SharpScores(100000, 500, 2.0, 0.1, 0.02, 3);
  ThresholdResult r = SelectThresholdInflection(scores);
  EXPECT_EQ(r.window, 10);  // max(floor(1e-4 * 1e5), 5)
  std::vector<double> small = SharpScores(1000, 50, 2.0, 0.1, 0.02, 3);
  EXPECT_EQ(SelectThresholdInflection(small).window, 5);
}

TEST(ThresholdTest, ExplicitWindowOverrides) {
  std::vector<double> scores = SharpScores(1000, 50, 2.0, 0.1, 0.02, 5);
  EXPECT_EQ(SelectThresholdInflection(scores, 11).window, 11);
}

TEST(ThresholdTest, SmoothedSequenceIsSortedDescending) {
  std::vector<double> scores = SharpScores(400, 30, 2.0, 0.1, 0.05, 7);
  ThresholdResult r = SelectThresholdInflection(scores);
  for (size_t i = 1; i < r.smoothed.size(); ++i) {
    EXPECT_LE(r.smoothed[i], r.smoothed[i - 1] + 1e-9);
  }
}

TEST(ThresholdTest, HandlesTinyInputs) {
  ThresholdResult one = SelectThresholdInflection({1.0});
  EXPECT_EQ(one.num_predicted, 1);
  ThresholdResult two = SelectThresholdInflection({1.0, 0.0});
  EXPECT_GE(two.num_predicted, 1);
}

TEST(ThresholdTest, ConstantScoresPredictEverything) {
  std::vector<double> scores(100, 0.5);
  ThresholdResult r = SelectThresholdInflection(scores);
  EXPECT_EQ(r.num_predicted, 100);
}

TEST(ThresholdTest, TopKThresholdPassesExactlyK) {
  Rng rng(11);
  std::vector<double> scores(200);
  for (auto& s : scores) s = rng.Uniform();  // distinct w.h.p.
  const double threshold = ThresholdTopK(scores, 17);
  int passed = 0;
  for (double s : scores) passed += s >= threshold ? 1 : 0;
  EXPECT_EQ(passed, 17);
}

TEST(ThresholdTest, BestF1IsAtLeastTopKF1) {
  std::vector<double> scores = SharpScores(300, 30, 2.0, 0.1, 0.3, 13);
  // Labels: reconstruct from the generating process by rank (top 30 true).
  std::vector<int> order(300);
  for (int i = 0; i < 300; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<int> labels(300, 0);
  for (int k = 0; k < 30; ++k) labels[order[k]] = 1;

  auto f1_at = [&](double threshold) {
    int tp = 0;
    int fp = 0;
    int fn = 0;
    for (int i = 0; i < 300; ++i) {
      const bool pred = scores[i] >= threshold;
      if (pred && labels[i]) ++tp;
      if (pred && !labels[i]) ++fp;
      if (!pred && labels[i]) ++fn;
    }
    const double p = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0;
    const double r = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0;
    return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
  };
  const double best = f1_at(ThresholdBestF1(scores, labels));
  EXPECT_GE(best + 1e-12, f1_at(ThresholdTopK(scores, 30)));
  EXPECT_GE(best + 1e-12, f1_at(ThresholdTopK(scores, 60)));
}

TEST(ThresholdTest, PredictWithThresholdBoundary) {
  std::vector<int> pred = PredictWithThreshold({0.9, 0.5, 0.1}, 0.5);
  EXPECT_EQ(pred, (std::vector<int>{1, 1, 0}));
}

TEST(TwoSegmentTest, FindsCornerOfPiecewiseLinear) {
  // y = 10 - x for x < 40; flat 0.5 afterwards.
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) y.push_back(10.0 - 0.24 * i);
  for (int i = 40; i < 400; ++i) y.push_back(0.5 - 0.0001 * i);
  const int cp = TwoSegmentChangePoint(y);
  EXPECT_NEAR(cp, 40, 3);
}

TEST(TwoSegmentTest, ShortInputFallsBack) {
  EXPECT_EQ(TwoSegmentChangePoint({1.0, 0.5}), 1);
}

TEST(ThresholdTest, InflectionIndexMatchesThresholdValue) {
  std::vector<double> scores = SharpScores(600, 45, 2.0, 0.1, 0.04, 19);
  ThresholdResult r = SelectThresholdInflection(scores);
  ASSERT_GE(r.inflection_index, 0);
  ASSERT_LT(static_cast<size_t>(r.inflection_index), r.smoothed.size());
  EXPECT_DOUBLE_EQ(r.threshold, r.smoothed[r.inflection_index]);
}

// The radix-sorted selection path (engaged above 2048 scores) must produce
// exactly what the std::sort path produced: the smoothed curve is a direct
// window-mean of the descending-sorted scores, so recomputing it from
// std::sort in the test pins the internal sort bit-for-bit — including
// ties, negatives, zeros and denormals.
TEST(ThresholdTest, RadixSortedSelectionMatchesStdSortExactly) {
  Rng rng(333);
  for (int variant = 0; variant < 3; ++variant) {
    const int n = 6000;
    std::vector<double> scores(n);
    for (int i = 0; i < n; ++i) {
      switch (variant) {
        case 0:  // smooth anomaly curve, positive and negative values
          scores[i] = (i % 17 == 0 ? 2.0 : -0.3) + rng.Normal(0, 0.4);
          break;
        case 1:  // heavy ties
          scores[i] = static_cast<double>(rng.UniformInt(7));
          break;
        default:  // tiny magnitudes incl. denormals and zeros
          scores[i] = rng.Bernoulli(0.1)
                          ? 0.0
                          : rng.Normal(0, 1.0) * 1e-308;
          break;
      }
    }
    ThresholdResult r = SelectThresholdInflection(scores);
    std::vector<double> sorted = scores;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    const int w = r.window;
    ASSERT_EQ(r.smoothed.size(), sorted.size() - w + 1);
    double acc = 0.0;
    for (int i = 0; i < w; ++i) acc += sorted[i];
    EXPECT_EQ(r.smoothed[0], acc / w) << "variant " << variant;
    for (size_t i = 1; i < r.smoothed.size(); ++i) {
      acc += sorted[i + w - 1] - sorted[i - 1];
      ASSERT_EQ(r.smoothed[i], acc / w)
          << "variant " << variant << " index " << i;
    }
  }
}

}  // namespace
}  // namespace umgad
