// Low-precision forward kernels (src/tensor/dispatch/quantize.h, bf16.h):
// per-row symmetric int8 quantization edge cases (all-zero rows, saturating
// extremes, NaN/Inf rejection, the scale/2 round-trip bound), bfloat16
// round-to-nearest-even conversion, bitwise identity across every registered
// variant of the quantized ops (the registry promise applies to them too —
// exact int32 accumulation for int8, fixed fp32 accumulation order for
// bf16), serving-path row helpers against their batch kernels, and the
// analytic error bound of each quantized product against an fp64 reference
// — including a differential sweep through the oracle harness's tolerance
// mode, the quantized analogue of the repo's bit-identity sweeps.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "oracle_harness.h"
#include "tensor/dispatch/bf16.h"
#include "tensor/dispatch/quantize.h"
#include "tensor/dispatch/registry.h"
#include "tensor/init.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace umgad {
namespace {

using dispatch::Bf16FromFloat;
using dispatch::Bf16FromTensor;
using dispatch::Bf16GemmRow;
using dispatch::Bf16GemmTransB;
using dispatch::Bf16Matrix;
using dispatch::DequantizeRowsInt8;
using dispatch::FloatFromBf16;
using dispatch::Int8GemmRow;
using dispatch::Int8GemmTransB;
using dispatch::KernelOp;
using dispatch::KernelRegistry;
using dispatch::QuantizedRows;
using dispatch::QuantizeRowsInt8;
using dispatch::SpmmBf16;
using dispatch::TensorFromBf16;
using ::umgad::testing::ExpectBitIdentical;
using ::umgad::testing::OracleSweep;
using ::umgad::testing::Tensors;

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  return RandomNormal(r, c, 0.0, 1.0, &rng);
}

SparseMatrix RandomSparse(int n, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> e;
  for (int i = 0; i < edges; ++i) {
    e.push_back(Edge{static_cast<int>(rng.UniformInt(n)),
                     static_cast<int>(rng.UniformInt(n))});
  }
  return SparseMatrix::FromEdges(n, e, /*symmetrize=*/true);
}

class QuantizedKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { KernelRegistry::Global()->ClearOverrides(); }
};

// ------------------------- int8 quantization ------------------------------

TEST_F(QuantizedKernelsTest, RoundTripErrorBoundedByHalfScale) {
  const Tensor t = RandomTensor(13, 37, 101);
  auto q = QuantizeRowsInt8(t);
  ASSERT_TRUE(q.ok());
  const Tensor back = DequantizeRowsInt8(*q);
  for (int i = 0; i < t.rows(); ++i) {
    const float scale = q->scales[i];
    EXPECT_GT(scale, 0.0f);
    for (int j = 0; j < t.cols(); ++j) {
      // |x - q*scale| <= scale/2 = amax/254: symmetric rounding never clips
      // (amax itself maps to exactly +-127).
      EXPECT_LE(std::abs(t.at(i, j) - back.at(i, j)), scale * 0.5f + 1e-7f)
          << "row " << i << " col " << j;
    }
  }
}

TEST_F(QuantizedKernelsTest, AllZeroRowGetsScaleZeroAndZeroCodes) {
  Tensor t(3, 5);  // zero-initialised
  t.at(1, 0) = 2.0f;
  auto q = QuantizeRowsInt8(t);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->scales[0], 0.0f);
  EXPECT_EQ(q->scales[2], 0.0f);
  EXPECT_GT(q->scales[1], 0.0f);
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(q->row(0)[j], 0);
    EXPECT_EQ(q->row(2)[j], 0);
  }
  // Dequant of a scale-0 row is exactly zero, and a product against it
  // contributes exactly zero (scale products multiply).
  const Tensor back = DequantizeRowsInt8(*q);
  for (int j = 0; j < 5; ++j) EXPECT_EQ(back.at(0, j), 0.0f);
  const Tensor c = Int8GemmTransB(*q, *q);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(c.at(0, j), 0.0f);
    EXPECT_EQ(c.at(j, 2), 0.0f);
  }
}

TEST_F(QuantizedKernelsTest, SaturatingExtremesMapToPlusMinus127) {
  // amax maps to exactly +-127; near-amax values round toward the rails but
  // the clamp keeps every code inside [-127, 127] — -128 never appears, so
  // the code space stays symmetric and dequant needs no zero point.
  Tensor t(1, 6,
           {100.0f, -100.0f, 99.9f, -99.9f, 0.4f, -0.4f});
  auto q = QuantizeRowsInt8(t);
  ASSERT_TRUE(q.ok());
  EXPECT_FLOAT_EQ(q->scales[0], 100.0f / 127.0f);
  EXPECT_EQ(q->row(0)[0], 127);
  EXPECT_EQ(q->row(0)[1], -127);
  EXPECT_EQ(q->row(0)[2], 127);   // rounds up, clamp holds it at 127
  EXPECT_EQ(q->row(0)[3], -127);
  EXPECT_EQ(q->row(0)[4], 1);     // 0.4 * 1.27 rounds to 1
  EXPECT_EQ(q->row(0)[5], -1);
  for (int j = 0; j < 6; ++j) {
    EXPECT_GE(q->row(0)[j], -127);
    EXPECT_LE(q->row(0)[j], 127);
  }
}

TEST_F(QuantizedKernelsTest, NonFiniteInputIsRejectedWithStatus) {
  for (const float poison : {std::numeric_limits<float>::quiet_NaN(),
                             std::numeric_limits<float>::infinity(),
                             -std::numeric_limits<float>::infinity()}) {
    Tensor t = RandomTensor(4, 4, 7);
    t.at(2, 3) = poison;
    auto q = QuantizeRowsInt8(t);
    ASSERT_FALSE(q.ok()) << poison;
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << poison;
  }
}

// ------------------------- bf16 conversion --------------------------------

TEST_F(QuantizedKernelsTest, Bf16RoundsToNearestEven) {
  // Values with <= 7 mantissa bits survive the round trip exactly.
  for (const float exact : {0.0f, 1.0f, -1.0f, 0.5f, -2.0f, 1.5f, 160.0f}) {
    EXPECT_EQ(FloatFromBf16(Bf16FromFloat(exact)), exact) << exact;
  }
  // 0x3F808000 is exactly halfway between bf16 0x3F80 and 0x3F81: ties go
  // to the even code (0x3F80). 0x3F818000 is halfway between 0x3F81 and
  // 0x3F82: even is 0x3F82.
  const auto from_bits = [](uint32_t bits) {
    float x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
  };
  EXPECT_EQ(Bf16FromFloat(from_bits(0x3F808000u)), 0x3F80);
  EXPECT_EQ(Bf16FromFloat(from_bits(0x3F818000u)), 0x3F82);
  // Just above/below the tie rounds to the nearest, not the even.
  EXPECT_EQ(Bf16FromFloat(from_bits(0x3F808001u)), 0x3F81);
  EXPECT_EQ(Bf16FromFloat(from_bits(0x3F817FFFu)), 0x3F81);
  // Infinities survive; NaN payloads collapse to the canonical quiet NaN
  // (rounding must never turn a NaN into Inf).
  EXPECT_EQ(Bf16FromFloat(std::numeric_limits<float>::infinity()), 0x7F80);
  EXPECT_EQ(Bf16FromFloat(-std::numeric_limits<float>::infinity()), 0xFF80);
  EXPECT_EQ(Bf16FromFloat(std::numeric_limits<float>::quiet_NaN()), 0x7FC0);
  EXPECT_EQ(Bf16FromFloat(from_bits(0x7F800001u)), 0x7FC0);  // signalling NaN
}

TEST_F(QuantizedKernelsTest, Bf16TensorRoundTripWidensExactly) {
  const Tensor t = RandomTensor(9, 17, 103);
  const Bf16Matrix m = Bf16FromTensor(t);
  const Tensor wide = TensorFromBf16(m);
  for (int i = 0; i < t.rows(); ++i) {
    for (int j = 0; j < t.cols(); ++j) {
      // Widening is exact; rounding error is bounded by half a bf16 ulp
      // (2^-8 relative for normal values).
      EXPECT_LE(std::abs(wide.at(i, j) - t.at(i, j)),
                std::abs(t.at(i, j)) * 0x1p-8f + 1e-38f);
      // And the widened value re-rounds to the same code (idempotence).
      EXPECT_EQ(Bf16FromFloat(wide.at(i, j)), m.row(i)[j]);
    }
  }
}

// ------------------------- variant bit-identity ---------------------------

TEST_F(QuantizedKernelsTest, EveryInt8GemmVariantIsBitIdentical) {
  const Tensor a = RandomTensor(37, 29, 111);
  const Tensor w = RandomTensor(71, 29, 112);
  auto qa = QuantizeRowsInt8(a);
  auto qw = QuantizeRowsInt8(w);
  ASSERT_TRUE(qa.ok() && qw.ok());

  KernelRegistry* reg = KernelRegistry::Global();
  ASSERT_TRUE(reg->SetOverride("int8_gemm=naive").ok());
  const Tensor reference = Int8GemmTransB(*qa, *qw);

  for (const auto& sel : reg->Selections()) {
    if (sel.op != KernelOp::kInt8Gemm) continue;
    for (const auto& v : sel.variants) {
      ASSERT_TRUE(reg->SetOverride("int8_gemm=" + v.name).ok());
      ExpectBitIdentical("int8_gemm variant " + v.name,
                         [&] { return Tensors{Int8GemmTransB(*qa, *qw)}; },
                         [&] { return Tensors{reference}; });
    }
  }
}

TEST_F(QuantizedKernelsTest, EveryBf16VariantIsBitIdentical) {
  const Bf16Matrix a = Bf16FromTensor(RandomTensor(37, 29, 121));
  const Bf16Matrix w = Bf16FromTensor(RandomTensor(71, 29, 122));
  const SparseMatrix s = RandomSparse(90, 500, 123);
  const Bf16Matrix x = Bf16FromTensor(RandomTensor(90, 33, 124));

  KernelRegistry* reg = KernelRegistry::Global();
  ASSERT_TRUE(reg->SetOverride("bf16_gemm=naive,bf16_spmm=naive").ok());
  const Tensor gemm_ref = Bf16GemmTransB(a, w);
  const Tensor spmm_ref = SpmmBf16(s, x);

  for (const auto& sel : reg->Selections()) {
    if (sel.op == KernelOp::kBf16Gemm) {
      for (const auto& v : sel.variants) {
        ASSERT_TRUE(reg->SetOverride("bf16_gemm=" + v.name).ok());
        ExpectBitIdentical("bf16_gemm variant " + v.name,
                           [&] { return Tensors{Bf16GemmTransB(a, w)}; },
                           [&] { return Tensors{gemm_ref}; });
      }
    } else if (sel.op == KernelOp::kBf16Spmm) {
      for (const auto& v : sel.variants) {
        ASSERT_TRUE(reg->SetOverride("bf16_spmm=" + v.name).ok());
        ExpectBitIdentical("bf16_spmm variant " + v.name,
                           [&] { return Tensors{SpmmBf16(s, x)}; },
                           [&] { return Tensors{spmm_ref}; });
      }
    }
  }
}

// ------------------------- serving-path row helpers -----------------------

TEST_F(QuantizedKernelsTest, Int8GemmRowMatchesBatchKernelRow) {
  const Tensor a = RandomTensor(11, 23, 131);
  const Tensor w = RandomTensor(19, 23, 132);
  auto qa = QuantizeRowsInt8(a);
  auto qw = QuantizeRowsInt8(w);
  ASSERT_TRUE(qa.ok() && qw.ok());
  const Tensor full = Int8GemmTransB(*qa, *qw);
  std::vector<float> out(w.rows());
  for (int i = 0; i < a.rows(); ++i) {
    Int8GemmRow(a.row(i), a.cols(), *qw, out.data());
    for (int j = 0; j < w.rows(); ++j) {
      EXPECT_EQ(out[j], full.at(i, j)) << "row " << i << " col " << j;
    }
  }
}

TEST_F(QuantizedKernelsTest, Bf16GemmRowMatchesBatchKernelRow) {
  const Tensor a = RandomTensor(11, 23, 141);
  const Tensor w = RandomTensor(19, 23, 142);
  const Bf16Matrix hw = Bf16FromTensor(w);
  const Tensor full = Bf16GemmTransB(Bf16FromTensor(a), hw);
  std::vector<float> out(w.rows());
  for (int i = 0; i < a.rows(); ++i) {
    Bf16GemmRow(a.row(i), a.cols(), hw, out.data());
    for (int j = 0; j < w.rows(); ++j) {
      EXPECT_EQ(out[j], full.at(i, j)) << "row " << i << " col " << j;
    }
  }
}

// ------------------------- analytic error bounds --------------------------

// Per-element bound for the int8 product against the exact (fp64) one:
// dequantized operands carry |e| <= scale/2 each, so
//   |Cq[i,j] - C[i,j]| <= sum_p |a|*sb/2 + |b|*sa/2 + sa*sb/4
// (the int32 accumulation itself is exact; the final dequant multiply adds
// one fp32 rounding, absorbed in the slack factor).
TEST_F(QuantizedKernelsTest, Int8GemmStaysInsideTheAnalyticErrorBound) {
  const Tensor a = RandomTensor(17, 43, 151);
  const Tensor w = RandomTensor(13, 43, 152);
  auto qa = QuantizeRowsInt8(a);
  auto qw = QuantizeRowsInt8(w);
  ASSERT_TRUE(qa.ok() && qw.ok());
  const Tensor c = Int8GemmTransB(*qa, *qw);
  for (int i = 0; i < a.rows(); ++i) {
    const double sa = qa->scales[i];
    for (int j = 0; j < w.rows(); ++j) {
      const double sb = qw->scales[j];
      double exact = 0.0, bound = 0.0;
      for (int p = 0; p < a.cols(); ++p) {
        const double av = a.at(i, p), bv = w.at(j, p);
        exact += av * bv;
        bound += std::abs(av) * sb * 0.5 + std::abs(bv) * sa * 0.5 +
                 sa * sb * 0.25;
      }
      EXPECT_LE(std::abs(c.at(i, j) - exact), bound * 1.0001 + 1e-5)
          << "element (" << i << ", " << j << ")";
    }
  }
}

// bf16 rounding is relative (half an ulp, 2^-8 per operand for normals);
// the fp32 accumulation adds ~k ulps on the running sum. The bound below is
// the standard first-order estimate with generous slack.
TEST_F(QuantizedKernelsTest, Bf16GemmStaysInsideTheAnalyticErrorBound) {
  const Tensor a = RandomTensor(17, 43, 161);
  const Tensor w = RandomTensor(13, 43, 162);
  const Tensor c = Bf16GemmTransB(Bf16FromTensor(a), Bf16FromTensor(w));
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < w.rows(); ++j) {
      double exact = 0.0, mag = 0.0;
      for (int p = 0; p < a.cols(); ++p) {
        exact += static_cast<double>(a.at(i, p)) * w.at(j, p);
        mag += std::abs(static_cast<double>(a.at(i, p)) * w.at(j, p));
      }
      const double bound =
          mag * (2.0 * 0x1p-8 + 0x1p-16 + a.cols() * 0x1p-23) + 1e-6;
      EXPECT_LE(std::abs(c.at(i, j) - exact), bound)
          << "element (" << i << ", " << j << ")";
    }
  }
}

// ------------------------- differential sweep -----------------------------

// The quantized analogue of the repo's bit-identity sweeps: the int8 and
// bf16 products track the fp32 naive kernel within their analytic bounds
// for every thread-count x arena combination (the oracle harness's
// tolerance mode), i.e. quantization changes precision, never determinism.
TEST_F(QuantizedKernelsTest, QuantizedProductsTrackFp32UnderTheOracleSweep) {
  const Tensor a = RandomTensor(37, 29, 171);
  const Tensor w = RandomTensor(71, 29, 172);
  auto qa = QuantizeRowsInt8(a);
  auto qw = QuantizeRowsInt8(w);
  ASSERT_TRUE(qa.ok() && qw.ok());
  const Bf16Matrix ha = Bf16FromTensor(a);
  const Bf16Matrix hw = Bf16FromTensor(w);

  // Worst-case analytic bound over all elements, per precision.
  double int8_bound = 0.0, bf16_bound = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < w.rows(); ++j) {
      double b8 = 0.0, mag = 0.0;
      for (int p = 0; p < a.cols(); ++p) {
        const double av = a.at(i, p), bv = w.at(j, p);
        b8 += std::abs(av) * qw->scales[j] * 0.5 +
              std::abs(bv) * qa->scales[i] * 0.5 +
              qa->scales[i] * qw->scales[j] * 0.25;
        mag += std::abs(av * bv);
      }
      int8_bound = std::max(int8_bound, b8 * 1.0001 + 1e-5);
      bf16_bound = std::max(
          bf16_bound, mag * (2.0 * 0x1p-8 + 0x1p-16 + a.cols() * 0x1p-23));
    }
  }

  OracleSweep int8_sweep;
  int8_sweep.tolerance = int8_bound;
  ExpectBitIdentical(
      "int8 vs fp32", [&] { return Tensors{Int8GemmTransB(*qa, *qw)}; },
      [&] { return Tensors{MatMulNaive(a, Transpose(w))}; }, int8_sweep);

  OracleSweep bf16_sweep;
  bf16_sweep.tolerance = bf16_bound;
  ExpectBitIdentical(
      "bf16 vs fp32", [&] { return Tensors{Bf16GemmTransB(ha, hw)}; },
      [&] { return Tensors{MatMulNaive(a, Transpose(w))}; }, bf16_sweep);
}

}  // namespace
}  // namespace umgad
