// Corruption fuzzing for the .umgb readers: every mutation of a valid
// image — truncation at every byte length, seeded random byte flips,
// hostile header counts at computed offsets — must come back as a Status
// (or as a successfully loaded graph, for flips in sections whose bits are
// not structurally validated), never as a crash, a hang, or an attempted
// huge allocation. The copying reader and the mmap reader validate the
// same invariants, so the two must also *agree*: same ok-ness on every
// mutant, bit-identical graphs whenever both accept.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/datasets.h"
#include "graph/io/binary_format.h"
#include "graph/io/edge_list.h"
#include "graph/io/line_chunks.h"
#include "graph/io/mmap_format.h"
#include "graph/multiplex_graph.h"
#include "oracle_harness.h"
#include "tensor/init.h"

namespace umgad {
namespace {

using umgad::testing::ExpectGraphsBitIdentical;

/// Small on purpose: the truncation sweep writes one file per byte of
/// image, so the fixture graph keeps the image in the low kilobytes while
/// still exercising every section (two relations, attributes, labels).
MultiplexGraph FuzzGraph() {
  Rng rng(11);
  Tensor x = RandomNormal(6, 3, 0, 1, &rng);
  SparseMatrix a = SparseMatrix::FromEdges(
      6, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}, Edge{0, 5}}, true);
  SparseMatrix b = SparseMatrix::FromEdges(6, {Edge{3, 4}, Edge{4, 5}}, true);
  auto g = MultiplexGraph::Create("fuzz", x, {a, b}, {"r1", "r2"},
                                  {0, 0, 1, 0, 0, 1});
  UMGAD_CHECK(g.ok());
  return std::move(*g);
}

void WriteImage(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Each test case runs as its own ctest process, concurrently under
    // `ctest -j` — the scratch file must be per-test, or one process
    // truncates the mutant another has mapped (SIGBUS).
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/umgad_fuzz_" + info->name() + ".umgb";
    const MultiplexGraph g = FuzzGraph();
    ASSERT_TRUE(SaveGraphBinary(g, path_).ok());
    ASSERT_TRUE(ReadFileToString(path_, &image_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Loads the current on-disk mutant through both readers and enforces
  /// the agreement contract. Returns the copying reader's verdict.
  bool LoadBothAndCheckAgreement(const std::string& what) {
    Result<MultiplexGraph> copy = LoadGraphBinary(path_);
    Result<MappedGraph> mapped = MappedGraph::Load(path_);
    EXPECT_EQ(copy.ok(), mapped.ok())
        << what << ": copying reader says "
        << (copy.ok() ? "ok" : copy.status().message())
        << ", mmap reader says "
        << (mapped.ok() ? "ok" : mapped.status().message());
    if (copy.ok() && mapped.ok()) {
      ExpectGraphsBitIdentical(what, mapped->graph(), *copy);
    }
    return copy.ok();
  }

  std::string path_;
  std::string image_;
};

TEST_F(IoFuzzTest, TruncationAtEveryLengthIsAStatus) {
  // Every strict prefix of a valid image is invalid: the reader consumes
  // sections in order and the trailer magic sits at the very end, so a
  // truncation either starves a bounded read or loses the trailer.
  for (size_t len = 0; len < image_.size(); ++len) {
    WriteImage(path_, image_.substr(0, len));
    Result<MultiplexGraph> copy = LoadGraphBinary(path_);
    Result<MappedGraph> mapped = MappedGraph::Load(path_);
    EXPECT_FALSE(copy.ok()) << "copying reader accepted a " << len
                            << "-byte prefix of a " << image_.size()
                            << "-byte image";
    EXPECT_FALSE(mapped.ok()) << "mmap reader accepted a " << len
                              << "-byte prefix of a " << image_.size()
                              << "-byte image";
  }
}

TEST_F(IoFuzzTest, SeededByteFlipsNeverCrashAndReadersAgree) {
  Rng rng(0xF0552ULL);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutant = image_;
    // One to three byte flips per trial; xor with a nonzero mask so every
    // flip really changes the image.
    const int flips = 1 + static_cast<int>(rng.UniformInt(3));
    std::string what = "flip trial " + std::to_string(trial) + " @";
    for (int f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(rng.UniformInt(mutant.size()));
      const unsigned char mask =
          static_cast<unsigned char>(1 + rng.UniformInt(255));
      mutant[at] = static_cast<char>(
          static_cast<unsigned char>(mutant[at]) ^ mask);
      what += " " + std::to_string(at);
    }
    WriteImage(path_, mutant);
    LoadBothAndCheckAgreement(what);
  }
}

TEST_F(IoFuzzTest, SeededTailGrowthAndShrink) {
  // Appending junk leaves the trailer in the wrong place; doubling the
  // image embeds a second header the reader must never reach.
  WriteImage(path_, image_ + std::string(17, '\x5a'));
  EXPECT_FALSE(LoadBothAndCheckAgreement("17 junk bytes appended"));
  WriteImage(path_, image_ + image_);
  EXPECT_FALSE(LoadBothAndCheckAgreement("image doubled"));
}

/// Offset of the u64 node-count field: magic + version + flags (12), then
/// the length-prefixed name.
size_t NodeCountOffset(const std::string& image) {
  uint32_t name_len = 0;
  std::memcpy(&name_len, image.data() + 12, sizeof(name_len));
  return 12 + 4 + name_len;
}

TEST_F(IoFuzzTest, HostileHeaderCountsAreAStatusNotAnAllocation) {
  const size_t nodes_at = NodeCountOffset(image_);
  const size_t features_at = nodes_at + 8;
  const size_t relations_at = nodes_at + 16;
  // First relation: length-prefixed name then the u64 nnz.
  uint32_t rel_name_len = 0;
  std::memcpy(&rel_name_len, image_.data() + nodes_at + 24,
              sizeof(rel_name_len));
  const size_t nnz_at = nodes_at + 24 + 4 + rel_name_len;

  const uint64_t hostile[] = {
      0,                         // empty — "oversized or empty header"
      1ULL << 32,                // past every io_limits cap
      1ULL << 62,                // would overflow a size computation
      1ULL << 63,                // negative once cast to int64
      0xFFFFFFFFFFFFFFFFULL,
  };
  for (const size_t field_at : {nodes_at, features_at, relations_at, nnz_at}) {
    for (const uint64_t value : hostile) {
      std::string mutant = image_;
      std::memcpy(&mutant[field_at], &value, sizeof(value));
      WriteImage(path_, mutant);
      EXPECT_FALSE(LoadBothAndCheckAgreement(
          "hostile count " + std::to_string(value) + " at offset " +
          std::to_string(field_at)))
          << "a reader accepted a hostile section count";
    }
  }

  // A hostile string length: the name's own length prefix pointing past
  // the end of the file.
  std::string mutant = image_;
  const uint32_t huge_len = 0xFFFFFFFFu;
  std::memcpy(&mutant[12], &huge_len, sizeof(huge_len));
  WriteImage(path_, mutant);
  EXPECT_FALSE(LoadBothAndCheckAgreement("hostile name length"));
}

TEST_F(IoFuzzTest, EdgeListFuzzNeverCrashes) {
  // The text importer gets the same treatment: seeded mutations of a valid
  // export — truncations and byte flips, including ones that corrupt ids,
  // field counts, and relation names — must parse or fail cleanly, and the
  // serial and chunked parsers must agree on every mutant.
  const MultiplexGraph g = FuzzGraph();
  const std::string edges_path = ::testing::TempDir() + "/umgad_fuzz.tsv";
  ASSERT_TRUE(ExportEdgeList(g, edges_path).ok());
  std::string text;
  ASSERT_TRUE(ReadFileToString(edges_path, &text).ok());

  Rng rng(0xED6E5ULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutant = text;
    const size_t at = static_cast<size_t>(rng.UniformInt(mutant.size()));
    if (rng.Bernoulli(0.5)) {
      mutant[at] = static_cast<char>(
          static_cast<unsigned char>(mutant[at]) ^
          static_cast<unsigned char>(1 + rng.UniformInt(255)));
    } else {
      mutant.resize(at);
    }
    {
      std::ofstream out(edges_path, std::ios::binary | std::ios::trunc);
      out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    EdgeListOptions serial;
    serial.parallel = false;
    EdgeListOptions chunked;
    chunked.import_chunks = 4;
    Result<MultiplexGraph> s = ImportEdgeList(edges_path, serial);
    Result<MultiplexGraph> c = ImportEdgeList(edges_path, chunked);
    ASSERT_EQ(s.ok(), c.ok())
        << "trial " << trial << ": serial says "
        << (s.ok() ? "ok" : s.status().message()) << ", chunked says "
        << (c.ok() ? "ok" : c.status().message());
    if (!s.ok()) {
      EXPECT_EQ(s.status().message(), c.status().message())
          << "trial " << trial;
    } else {
      ExpectGraphsBitIdentical("edge-list flip trial " + std::to_string(trial),
                               *c, *s);
    }
  }
  std::remove(edges_path.c_str());
}

}  // namespace
}  // namespace umgad
