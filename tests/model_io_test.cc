// The trained-model artifact (.umgm): bit-exact round trips of weights,
// config, fingerprint, and scoring Rng state; Score() replaying the fitted
// scores exactly; the malformed-file matrix (bad magic/version,
// truncation sweep, hostile counts, corrupt config, trailer damage)
// mirroring the graph container's coverage in graph_io_test.cc; and the
// version-evolution matrix (v1 back-compat, trailing-config tolerance,
// future-version rejection) backing the policy in docs/FORMATS.md.

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "core/model_io.h"
#include "core/umgad.h"
#include "graph/datasets.h"

namespace umgad {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

template <typename T>
void PatchPod(std::string* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(&(*bytes)[offset], &value, sizeof(T));
}

UmgadConfig SmallConfig() {
  UmgadConfig config;
  config.epochs = 2;
  config.hidden_dim = 8;
  config.mask_repeats = 1;
  config.num_subgraphs = 1;
  config.subgraph_size = 4;
  config.num_score_negatives = 2;
  config.seed = 5;
  return config;
}

/// One fitted model per process: training even the small config is the
/// expensive part of this suite, and every test below only reads from it.
struct Fitted {
  MultiplexGraph graph = MakeTiny(123);
  UmgadModel model{SmallConfig()};
  TrainedModel trained;

  Fitted() {
    UMGAD_CHECK(model.Fit(graph).ok());
    auto snapshot = TrainedModel::FromFitted(model, graph);
    UMGAD_CHECK(snapshot.ok());
    trained = *std::move(snapshot);
  }
};

const Fitted& GetFitted() {
  static const Fitted* fitted = new Fitted();
  return *fitted;
}

/// Byte offsets inside a v2 .umgm file (docs/FORMATS.md). The config block
/// is length-prefixed (core 116 bytes today); the fingerprint's layer_nnz
/// array makes everything after it depend on the relation count.
struct Layout {
  static constexpr size_t kVersion = 4;
  static constexpr size_t kConfigLength = 12;
  static constexpr size_t kConfigEncoder = 16;
  static constexpr size_t kConfigHiddenDim = 20;
  static constexpr uint32_t kConfigCoreBytes = 116;
  size_t config_end;
  size_t tensor_count;
  size_t first_tensor_shape;

  explicit Layout(int num_relations) {
    // header 12 + config length 4 + config 116 +
    // fingerprint (12 + 8R + 8) + rng (32 + 1 + 8).
    config_end = 12 + 4 + 116;
    tensor_count = config_end + 12 + 8 * static_cast<size_t>(num_relations) +
                   8 + 41;
    first_tensor_shape = tensor_count + 8;
  }
};

std::string SavedArtifactBytes(const std::string& tag) {
  const std::string path = TempPath(tag + ".umgm");
  UMGAD_CHECK(GetFitted().trained.Save(path).ok());
  std::string bytes = ReadFile(path);
  std::remove(path.c_str());
  return bytes;
}

Result<TrainedModel> LoadBytes(const std::string& tag,
                               const std::string& bytes) {
  const std::string path = TempPath(tag + ".umgm");
  WriteFile(path, bytes);
  auto result = TrainedModel::Load(path);
  std::remove(path.c_str());
  return result;
}

// ------------------------- round trip -------------------------------------

TEST(ModelIoTest, FromFittedRequiresFit) {
  UmgadModel unfitted(SmallConfig());
  auto result = TrainedModel::FromFitted(unfitted, GetFitted().graph);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ModelIoTest, RoundTripIsBitExact) {
  const Fitted& fitted = GetFitted();
  const std::string path = TempPath("round_trip.umgm");
  ASSERT_TRUE(fitted.trained.Save(path).ok());
  auto loaded = TrainedModel::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  // Config: every serialised field, not just the ones the small config
  // overrides (a skipped field in WriteConfig/ReadConfig shifts all later
  // reads, so defaults catch it too).
  const UmgadConfig& a = fitted.trained.config();
  const UmgadConfig& b = loaded->config();
  EXPECT_EQ(a.encoder == EncoderKind::kGat, b.encoder == EncoderKind::kGat);
  EXPECT_EQ(a.hidden_dim, b.hidden_dim);
  EXPECT_EQ(a.encoder_layers, b.encoder_layers);
  EXPECT_EQ(a.decoder_layers, b.decoder_layers);
  EXPECT_EQ(a.mask_ratio, b.mask_ratio);
  EXPECT_EQ(a.mask_repeats, b.mask_repeats);
  EXPECT_EQ(a.subgraph_size, b.subgraph_size);
  EXPECT_EQ(a.num_subgraphs, b.num_subgraphs);
  EXPECT_EQ(a.rwr_restart, b.rwr_restart);
  EXPECT_EQ(a.attr_swap_ratio, b.attr_swap_ratio);
  EXPECT_EQ(a.eta, b.eta);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.epsilon, b.epsilon);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.learning_rate, b.learning_rate);
  EXPECT_EQ(a.weight_decay, b.weight_decay);
  EXPECT_EQ(a.num_negatives, b.num_negatives);
  EXPECT_EQ(a.num_score_negatives, b.num_score_negatives);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.use_masking, b.use_masking);
  EXPECT_EQ(a.use_original_view, b.use_original_view);
  EXPECT_EQ(a.use_attr_augmented_view, b.use_attr_augmented_view);
  EXPECT_EQ(a.use_subgraph_augmented_view, b.use_subgraph_augmented_view);
  EXPECT_EQ(a.use_contrastive, b.use_contrastive);
  EXPECT_EQ(a.use_relation_fusion, b.use_relation_fusion);
  EXPECT_EQ(a.use_attribute_recon, b.use_attribute_recon);
  EXPECT_EQ(a.use_structure_recon, b.use_structure_recon);

  // Fingerprint and Rng state.
  EXPECT_TRUE(loaded->fingerprint().Matches(fitted.trained.fingerprint()));
  EXPECT_EQ(loaded->fingerprint().content_hash,
            fitted.trained.fingerprint().content_hash);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded->scoring_rng_state().s[i],
              fitted.trained.scoring_rng_state().s[i]);
  }
  EXPECT_EQ(loaded->scoring_rng_state().has_cached_normal,
            fitted.trained.scoring_rng_state().has_cached_normal);
  EXPECT_EQ(loaded->scoring_rng_state().cached_normal,
            fitted.trained.scoring_rng_state().cached_normal);

  // Weights, bit for bit.
  ASSERT_EQ(loaded->weights().size(), fitted.trained.weights().size());
  EXPECT_GT(loaded->weights().size(), 0u);
  for (size_t t = 0; t < loaded->weights().size(); ++t) {
    const Tensor& got = loaded->weights()[t];
    const Tensor& want = fitted.trained.weights()[t];
    ASSERT_TRUE(got.SameShape(want)) << "weight " << t;
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          static_cast<size_t>(got.size()) * sizeof(float)),
              0)
        << "weight " << t;
  }
}

TEST(ModelIoTest, ScoreReplaysFittedScoresBitExact) {
  // The whole point of the artifact: a reloaded model re-scores the
  // training graph to exactly the floats the fitted model produced
  // (stored weights + checkpointed Rng stream, same kernels).
  const Fitted& fitted = GetFitted();
  const std::string path = TempPath("replay.umgm");
  ASSERT_TRUE(fitted.trained.Save(path).ok());
  auto loaded = TrainedModel::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  auto scores = loaded->Score(fitted.graph);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ASSERT_EQ(scores->size(), fitted.model.scores().size());
  for (size_t i = 0; i < scores->size(); ++i) {
    EXPECT_EQ((*scores)[i], fitted.model.scores()[i]) << "node " << i;
  }
}

TEST(ModelIoTest, ScoreChecksFingerprint) {
  const Fitted& fitted = GetFitted();
  MultiplexGraph other = MakeTiny(124);  // same shape, different content
  auto guarded = fitted.trained.Score(other);
  ASSERT_FALSE(guarded.ok());
  EXPECT_NE(guarded.status().message().find("fingerprint"),
            std::string::npos);
  // The serve layer's opt-out: same shape scores fine without the check.
  auto unguarded = fitted.trained.Score(other, /*check_fingerprint=*/false);
  ASSERT_TRUE(unguarded.ok()) << unguarded.status().ToString();
  EXPECT_EQ(unguarded->size(), static_cast<size_t>(other.num_nodes()));
}

TEST(ModelIoTest, FingerprintSeesContentChanges) {
  const Fitted& fitted = GetFitted();
  GraphFingerprint base = FingerprintGraph(fitted.graph);
  EXPECT_TRUE(base.Matches(FingerprintGraph(fitted.graph)));
  MultiplexGraph other = MakeTiny(124);
  GraphFingerprint changed = FingerprintGraph(other);
  // Same shape: only the content hash separates them.
  ASSERT_EQ(base.num_nodes, changed.num_nodes);
  EXPECT_FALSE(base.Matches(changed));
}

// ------------------------- error paths ------------------------------------

TEST(ModelIoTest, MissingAndUnwritablePaths) {
  auto missing = TrainedModel::Load("/nonexistent/model.umgm");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(
      GetFitted().trained.Save("/nonexistent/dir/model.umgm").ok());
}

TEST(ModelIoTest, RejectsBadMagicAndVersion) {
  auto garbage = LoadBytes("bad_magic", "XXXXYYYYZZZZ");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.status().message().find("not a umgad model"),
            std::string::npos);

  std::string bytes = SavedArtifactBytes("bad_version");
  bytes[Layout::kVersion] = 0x00;
  auto result = LoadBytes("bad_version", bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unsupported model format"),
            std::string::npos);
}

// --------------------- version evolution (FORMATS.md) ---------------------

TEST(ModelIoTest, RejectsFutureVersionWithUpgradeHint) {
  // An old server handed a v3 artifact must fail closed with a message
  // that names the fix, not limp along misparsing bytes.
  std::string bytes = SavedArtifactBytes("future_version");
  PatchPod<uint32_t>(&bytes, Layout::kVersion, 3);
  auto result = LoadBytes("future_version", bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("newer than this build supports"),
            std::string::npos);
}

TEST(ModelIoTest, LoadsV1ArtifactsForever) {
  // v1 had no config length prefix: excise it and stamp version 1. The
  // loader must read the fixed-size config path and produce a model that
  // re-saves byte-identically to the v2 original.
  const std::string v2 = SavedArtifactBytes("v1_compat");
  std::string v1 = v2.substr(0, Layout::kConfigLength) +
                   v2.substr(Layout::kConfigLength + 4);
  PatchPod<uint32_t>(&v1, Layout::kVersion, 1);
  auto loaded = LoadBytes("v1_compat", v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config().hidden_dim, SmallConfig().hidden_dim);

  const std::string path = TempPath("v1_resaved.umgm");
  ASSERT_TRUE(loaded->Save(path).ok());
  const std::string resaved = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(resaved, v2);
}

TEST(ModelIoTest, SkipsUnknownTrailingConfigFields) {
  // Forward compatibility within v2: a newer minor revision may append
  // optional config fields and bump only the length prefix. This build
  // must load the core fields and skip the rest.
  std::string bytes = SavedArtifactBytes("trailing_config");
  const Layout layout(GetFitted().trained.fingerprint().num_relations);
  const std::string extra(12, '\x5a');
  bytes.insert(layout.config_end, extra);
  PatchPod<uint32_t>(&bytes, Layout::kConfigLength,
                     Layout::kConfigCoreBytes + 12);
  auto loaded = LoadBytes("trailing_config", bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config().hidden_dim, SmallConfig().hidden_dim);
  EXPECT_EQ(loaded->config().seed, SmallConfig().seed);
  EXPECT_TRUE(
      loaded->fingerprint().Matches(GetFitted().trained.fingerprint()));
}

TEST(ModelIoTest, RejectsCorruptConfigLength) {
  // Shorter than the core this version requires: a semantic change snuck
  // in without a version bump, or plain corruption. Either way, refuse.
  std::string bytes = SavedArtifactBytes("bad_config_len");
  PatchPod<uint32_t>(&bytes, Layout::kConfigLength, 4);
  auto too_small = LoadBytes("bad_config_len", bytes);
  ASSERT_FALSE(too_small.ok());
  EXPECT_NE(too_small.status().message().find("smaller than"),
            std::string::npos);

  bytes = SavedArtifactBytes("bad_config_len");
  PatchPod<uint32_t>(&bytes, Layout::kConfigLength, 1u << 20);
  auto absurd = LoadBytes("bad_config_len", bytes);
  ASSERT_FALSE(absurd.ok());
  EXPECT_NE(absurd.status().message().find("absurd config block"),
            std::string::npos);
}

TEST(ModelIoTest, RejectsTruncation) {
  const std::string bytes = SavedArtifactBytes("trunc");
  // Mid-header, mid-config, mid-weights, and just before the trailer (the
  // trailer is what catches a file missing only its tail).
  for (size_t cut : {size_t{6}, size_t{40}, bytes.size() / 2,
                     bytes.size() - 2}) {
    EXPECT_FALSE(LoadBytes("trunc", bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(ModelIoTest, RejectsCorruptConfig) {
  std::string bytes = SavedArtifactBytes("bad_config");
  PatchPod<uint32_t>(&bytes, Layout::kConfigEncoder, 7);
  auto bad_encoder = LoadBytes("bad_config", bytes);
  ASSERT_FALSE(bad_encoder.ok());
  EXPECT_NE(bad_encoder.status().message().find("unknown encoder kind"),
            std::string::npos);

  bytes = SavedArtifactBytes("bad_config");
  PatchPod<int32_t>(&bytes, Layout::kConfigHiddenDim, -1);
  auto bad_dim = LoadBytes("bad_config", bytes);
  ASSERT_FALSE(bad_dim.ok());
  EXPECT_NE(bad_dim.status().message().find("corrupt model config"),
            std::string::npos);
}

TEST(ModelIoTest, CorruptWeightCountFailsWithoutOom) {
  const Layout layout(GetFitted().trained.fingerprint().num_relations);

  // All-ones count reads as negative.
  std::string bytes = SavedArtifactBytes("bad_count");
  PatchPod<int64_t>(&bytes, layout.tensor_count, int64_t{-1});
  auto negative = LoadBytes("bad_count", bytes);
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("weight tensors declared"),
            std::string::npos);

  // Just past the format cap.
  bytes = SavedArtifactBytes("bad_count");
  PatchPod<int64_t>(&bytes, layout.tensor_count, int64_t{(1 << 20) + 1});
  auto oversized = LoadBytes("bad_count", bytes);
  ASSERT_FALSE(oversized.ok());
  EXPECT_NE(oversized.status().message().find("weight tensors declared"),
            std::string::npos);
}

TEST(ModelIoTest, HostileTensorShapeFailsWithoutOom) {
  const Layout layout(GetFitted().trained.fingerprint().num_relations);
  // rows and cols each at the per-axis cap: the element count (2^48) must
  // be caught by the remaining-file-size guard, whose divide-based check
  // survives products that would wrap a 64-bit byte count.
  std::string bytes = SavedArtifactBytes("bad_shape");
  PatchPod<int32_t>(&bytes, layout.first_tensor_shape, 1 << 24);
  PatchPod<int32_t>(&bytes, layout.first_tensor_shape + 4, 1 << 24);
  auto result = LoadBytes("bad_shape", bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("weight data"), std::string::npos);

  // An axis beyond the cap is rejected at the shape check itself.
  bytes = SavedArtifactBytes("bad_shape");
  PatchPod<int32_t>(&bytes, layout.first_tensor_shape, (1 << 24) + 1);
  result = LoadBytes("bad_shape", bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("declares shape"),
            std::string::npos);
}

TEST(ModelIoTest, RejectsTrailerDamage) {
  std::string bytes = SavedArtifactBytes("bad_trailer");
  bytes[bytes.size() - 1] ^= 0x5a;
  auto result = LoadBytes("bad_trailer", bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailer mismatch"),
            std::string::npos);
}

TEST(ModelIoTest, WeightShapeMismatchIsCaughtAtScoreTime) {
  // A structurally valid file whose stored tensors do not fit the config's
  // registration structure: shrink hidden_dim so BuildViews wants smaller
  // weights than the file carries.
  std::string bytes = SavedArtifactBytes("shape_mismatch");
  PatchPod<int32_t>(&bytes, Layout::kConfigHiddenDim, 4);
  auto loaded = LoadBytes("shape_mismatch", bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto scores = loaded->Score(GetFitted().graph);
  ASSERT_FALSE(scores.ok());
  EXPECT_NE(scores.status().message().find("shape mismatch"),
            std::string::npos);
}

}  // namespace
}  // namespace umgad
