#include <cmath>

#include <gtest/gtest.h>

#include "core/umgad.h"
#include "eval/metrics.h"
#include "graph/datasets.h"

namespace umgad {
namespace {

UmgadConfig FastConfig() {
  UmgadConfig config;
  config.epochs = 20;
  config.hidden_dim = 24;
  config.mask_repeats = 1;
  config.num_subgraphs = 3;
  return config;
}

TEST(UmgadTest, FitProducesFiniteScores) {
  MultiplexGraph g = MakeTiny(1);
  UmgadModel model(FastConfig());
  ASSERT_TRUE(model.Fit(g).ok());
  ASSERT_EQ(model.scores().size(), static_cast<size_t>(g.num_nodes()));
  for (double s : model.scores()) EXPECT_TRUE(std::isfinite(s));
}

TEST(UmgadTest, LossDecreasesDuringTraining) {
  MultiplexGraph g = MakeTiny(2);
  UmgadConfig config = FastConfig();
  config.epochs = 30;
  UmgadModel model(config);
  ASSERT_TRUE(model.Fit(g).ok());
  const auto& hist = model.loss_history();
  ASSERT_GE(hist.size(), 10u);
  EXPECT_LT(hist.back(), hist.front() * 0.8);
}

TEST(UmgadTest, DetectsInjectedAnomalies) {
  MultiplexGraph g = MakeTiny(3);
  UmgadConfig config = FastConfig();
  config.epochs = 40;
  UmgadModel model(config);
  ASSERT_TRUE(model.Fit(g).ok());
  EXPECT_GT(RocAuc(model.scores(), g.labels()), 0.72);
}

TEST(UmgadTest, DeterministicForSameSeed) {
  MultiplexGraph g = MakeTiny(4);
  UmgadConfig config = FastConfig();
  UmgadModel a(config);
  UmgadModel b(config);
  ASSERT_TRUE(a.Fit(g).ok());
  ASSERT_TRUE(b.Fit(g).ok());
  for (size_t i = 0; i < a.scores().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.scores()[i], b.scores()[i]);
  }
}

TEST(UmgadTest, DifferentSeedsDiffer) {
  MultiplexGraph g = MakeTiny(5);
  UmgadConfig c1 = FastConfig();
  UmgadConfig c2 = FastConfig();
  c2.seed = 999;
  UmgadModel a(c1);
  UmgadModel b(c2);
  ASSERT_TRUE(a.Fit(g).ok());
  ASSERT_TRUE(b.Fit(g).ok());
  double diff = 0.0;
  for (size_t i = 0; i < a.scores().size(); ++i) {
    diff += std::abs(a.scores()[i] - b.scores()[i]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(UmgadTest, PredictUnsupervisedReturnsBinary) {
  MultiplexGraph g = MakeTiny(6);
  UmgadModel model(FastConfig());
  ASSERT_TRUE(model.Fit(g).ok());
  std::vector<int> pred = model.PredictUnsupervised();
  ASSERT_EQ(pred.size(), static_cast<size_t>(g.num_nodes()));
  int positives = 0;
  for (int p : pred) {
    EXPECT_TRUE(p == 0 || p == 1);
    positives += p;
  }
  EXPECT_EQ(positives, model.threshold_result().num_predicted);
  EXPECT_GT(positives, 0);
  EXPECT_LT(positives, g.num_nodes());
}

TEST(UmgadTest, RejectsTinyGraph) {

  auto g = MultiplexGraph::Create(
      "micro", Tensor(2, 2),
      {SparseMatrix::FromEdges(2, {Edge{0, 1}}, true)}, {"r"});
  ASSERT_TRUE(g.ok());
  UmgadModel model;
  EXPECT_EQ(model.Fit(*g).code(), StatusCode::kInvalidArgument);
}

TEST(UmgadTest, RejectsAllViewsDisabled) {
  MultiplexGraph g = MakeTiny(7);
  UmgadConfig config = FastConfig();
  config.use_original_view = false;
  config.use_attr_augmented_view = false;
  config.use_subgraph_augmented_view = false;
  UmgadModel model(config);
  EXPECT_EQ(model.Fit(g).code(), StatusCode::kInvalidArgument);
}

TEST(UmgadTest, RejectsBothBranchesDisabled) {
  MultiplexGraph g = MakeTiny(8);
  UmgadConfig config = FastConfig();
  config.use_attribute_recon = false;
  config.use_structure_recon = false;
  UmgadModel model(config);
  EXPECT_EQ(model.Fit(g).code(), StatusCode::kInvalidArgument);
}

TEST(UmgadTest, RejectsBadEta) {
  MultiplexGraph g = MakeTiny(9);
  UmgadConfig config = FastConfig();
  config.eta = 0.5f;
  UmgadModel model(config);
  EXPECT_EQ(model.Fit(g).code(), StatusCode::kInvalidArgument);
}

struct AblationCase {
  const char* name;
  void (*apply)(UmgadConfig*);
};

class AblationVariants : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationVariants, VariantTrainsAndScores) {
  MultiplexGraph g = MakeTiny(10);
  UmgadConfig config = FastConfig();
  GetParam().apply(&config);
  UmgadModel model(config);
  ASSERT_TRUE(model.Fit(g).ok()) << GetParam().name;
  EXPECT_EQ(model.scores().size(), static_cast<size_t>(g.num_nodes()));
  for (double s : model.scores()) EXPECT_TRUE(std::isfinite(s));
  // Every variant should still carry signal on the easy tiny dataset.
  EXPECT_GT(RocAuc(model.scores(), g.labels()), 0.55) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    TableIV, AblationVariants,
    ::testing::Values(
        AblationCase{"w/o M",
                     [](UmgadConfig* c) { c->use_masking = false; }},
        AblationCase{"w/o O",
                     [](UmgadConfig* c) { c->use_original_view = false; }},
        AblationCase{"w/o A",
                     [](UmgadConfig* c) { c->DisableAugmentedViews(); }},
        AblationCase{"w/o NA",
                     [](UmgadConfig* c) {
                       c->use_attr_augmented_view = false;
                     }},
        AblationCase{"w/o SA",
                     [](UmgadConfig* c) {
                       c->use_subgraph_augmented_view = false;
                     }},
        AblationCase{"w/o DCL",
                     [](UmgadConfig* c) { c->use_contrastive = false; }},
        AblationCase{"uniform-fusion",
                     [](UmgadConfig* c) {
                       c->use_relation_fusion = false;
                     }},
        AblationCase{"Att", [](UmgadConfig* c) {
                       c->use_structure_recon = false;
                     }},
        AblationCase{"Str",
                     [](UmgadConfig* c) {
                       c->use_attribute_recon = false;
                     }},
        AblationCase{"SGC-encoder", [](UmgadConfig* c) {
                       c->encoder = EncoderKind::kSgc;
                     }}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(UmgadTest, FusionWeightsOnSimplex) {
  MultiplexGraph g = MakeTiny(11);
  UmgadModel model(FastConfig());
  ASSERT_TRUE(model.Fit(g).ok());
  std::vector<double> w = model.OriginalFusionWeights();
  ASSERT_EQ(w.size(), static_cast<size_t>(g.num_relations()));
  double sum = 0.0;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(UmgadTest, TimingIsPopulated) {
  MultiplexGraph g = MakeTiny(12);
  UmgadModel model(FastConfig());
  ASSERT_TRUE(model.Fit(g).ok());
  EXPECT_GT(model.fit_seconds(), 0.0);
  EXPECT_GT(model.epoch_seconds(), 0.0);
  EXPECT_LT(model.epoch_seconds(), model.fit_seconds());
}

}  // namespace
}  // namespace umgad
