// End-to-end thread-count invariance: the per-epoch fan-out in
// UmgadModel::Fit pre-forks one Rng per view and every parallel kernel is
// row-partitioned with a fixed per-element accumulation order, so a fitted
// model must not depend on UMGAD_THREADS. The ISSUE-level contract is AUC
// agreement to 1e-6; the implementation actually delivers bit-identical
// scores, which the tighter check below pins down so regressions surface as
// exact diffs rather than silent drift.

#include <cmath>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/umgad.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace umgad {
namespace {

UmgadConfig SmallConfig() {
  UmgadConfig config;
  config.epochs = 12;
  config.hidden_dim = 24;
  config.mask_repeats = 2;
  config.num_subgraphs = 3;
  return config;
}

std::vector<double> FitScores(const MultiplexGraph& g, int threads) {
  SetNumThreads(threads);
  UmgadModel model(SmallConfig());
  EXPECT_TRUE(model.Fit(g).ok());
  return model.scores();
}

TEST(DeterminismTest, AucInvariantToThreadCount) {
  MultiplexGraph g = MakeTiny(77);
  std::vector<double> s1 = FitScores(g, 1);
  std::vector<double> s4 = FitScores(g, 4);
  SetNumThreads(1);
  ASSERT_EQ(s1.size(), s4.size());

  const double auc1 = RocAuc(s1, g.labels());
  const double auc4 = RocAuc(s4, g.labels());
  EXPECT_NEAR(auc1, auc4, 1e-6);

  double max_diff = 0.0;
  for (size_t i = 0; i < s1.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(s1[i] - s4[i]));
  }
  EXPECT_EQ(max_diff, 0.0) << "scores drifted across thread counts";
}

TEST(DeterminismTest, RepeatedFitSameThreadCountIsIdentical) {
  MultiplexGraph g = MakeTiny(78);
  std::vector<double> a = FitScores(g, 4);
  std::vector<double> b = FitScores(g, 4);
  SetNumThreads(1);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "node " << i;
  }
}

TEST(DeterminismTest, ArenaOnOffBitIdentical) {
  // The ISSUE acceptance bar: end-to-end Fit scores bit-identical between
  // the arena tape and the reference (seed-style, individually heap
  // allocated) engine, for UMGAD_THREADS in {1, 4}. The comparison harness
  // in docs/PERFORMANCE.md additionally pins both against the pre-refactor
  // shared_ptr engine itself.
  MultiplexGraph g = MakeTiny(79);
  const bool prev_arena = ArenaEnabled();
  for (int threads : {1, 4}) {
    SetArenaEnabled(true);
    std::vector<double> arena_scores = FitScores(g, threads);
    SetArenaEnabled(false);
    std::vector<double> heap_scores = FitScores(g, threads);
    ASSERT_EQ(arena_scores.size(), heap_scores.size());
    for (size_t i = 0; i < arena_scores.size(); ++i) {
      EXPECT_EQ(arena_scores[i], heap_scores[i])
          << "node " << i << " threads " << threads;
    }
  }
  SetArenaEnabled(prev_arena);
  SetNumThreads(1);
}

TEST(DeterminismTest, SteadyStateEpochsAllocateZeroTensorBytes) {
  MultiplexGraph g = MakeTiny(80);
  const bool prev_arena = ArenaEnabled();
  SetArenaEnabled(true);
  // One lane: with overlapping kernels the *peak* number of live scratch
  // buffers of a size class is timing-dependent, so the exact-zero claim is
  // only deterministic single-threaded (multi-threaded runs are near-zero).
  SetNumThreads(1);
  UmgadModel model(SmallConfig());
  ASSERT_TRUE(model.Fit(g).ok());
  EXPECT_GT(model.first_epoch_fresh_bytes(), 0)
      << "epoch 1 populates the pool";
  EXPECT_EQ(model.steady_state_fresh_bytes(), 0)
      << "epochs 2..N must recycle every tensor buffer";

  // A second Fit on the same model rebuilds the views but replays the same
  // shapes; its steady state must be allocation-free as well.
  ASSERT_TRUE(model.Fit(g).ok());
  EXPECT_EQ(model.steady_state_fresh_bytes(), 0);
  SetArenaEnabled(prev_arena);
}

TEST(DeterminismTest, MatMulBitIdenticalAcrossThreadCounts) {
  // The kernel-level invariant behind the model-level one: identical bits
  // from the blocked kernel no matter how rows are partitioned.
  Tensor a(301, 157);
  Tensor b(157, 203);
  for (int64_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(std::sin(0.01 * static_cast<double>(i)));
  }
  for (int64_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(std::cos(0.02 * static_cast<double>(i)));
  }
  SetNumThreads(1);
  Tensor c1 = MatMul(a, b);
  SetNumThreads(4);
  Tensor c4 = MatMul(a, b);
  SetNumThreads(1);
  EXPECT_EQ(MaxAbsDiff(c1, c4), 0.0);
}

}  // namespace
}  // namespace umgad
