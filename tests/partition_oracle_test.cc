// Differential oracle for partitioned training (src/graph/partition/):
// attaching a partition-derived RowBlocks schedule is a *cache schedule
// only* — every kernel that consumes it (SparseMatrix::Multiply /
// MultiplyTransposed, the GAT edge-softmax forward/backward, and the three
// loss closures) must produce the same floats as the flat engine, for any
// block count P, UMGAD_THREADS, and arena mode. Every comparison here is
// MaxAbsDiff == 0. Also pins the partitioner's structural invariants (DBH
// and HDRF, including skewed-degree and empty-relation graphs), the
// PartitionedCsr materialisation contract, and end-to-end fitted scores
// across P x threads x arena.

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/umgad.h"
#include "graph/datasets.h"
#include "graph/partition/partitioner.h"
#include "nn/loss.h"
#include "oracle_harness.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace umgad {
namespace {

using ::umgad::testing::ExpectBitIdentical;
using ::umgad::testing::Tensors;

Tensor Rand(int r, int c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return RandomNormal(r, c, 0.0, scale, &rng);
}

std::shared_ptr<const RowBlocks> Partition(const MultiplexGraph& graph,
                                           int p, PartitionMethod method) {
  PartitionOptions options;
  options.num_blocks = p;
  options.method = method;
  options.seed = 7;
  Result<VertexPartition> part = PartitionGraph(graph, options);
  UMGAD_CHECK(part.ok());
  return part.value().blocks;
}

/// A hub-and-spokes graph (every edge incident to node 0) plus an empty
/// second relation: the degree-skew worst case for edge balance and the
/// no-edges corner for the streaming pass.
MultiplexGraph MakeStarWithEmptyRelation(int n) {
  std::vector<Edge> star;
  for (int v = 1; v < n; ++v) star.push_back(Edge{0, v});
  std::vector<SparseMatrix> layers;
  layers.push_back(SparseMatrix::FromEdges(n, star, /*symmetrize=*/true));
  layers.push_back(SparseMatrix::FromEdges(n, {}, /*symmetrize=*/true));
  Rng rng(3);
  auto graph =
      MultiplexGraph::Create("star", RandomNormal(n, 4, 0.0, 1.0, &rng),
                             std::move(layers), {"star", "empty"});
  UMGAD_CHECK(graph.ok());
  return *std::move(graph);
}

/// Forward + Backward of a scalar loss over fresh leaves; returns the loss
/// value followed by every leaf's gradient (rebuilt per call, as the
/// harness requires).
Tensors LossOutputs(
    const std::vector<Tensor>& inputs,
    const std::function<ag::VarPtr(const std::vector<ag::VarPtr>&)>& build) {
  std::vector<ag::VarPtr> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(ag::Leaf(t));
  ag::VarPtr loss = build(leaves);
  ag::Backward(loss);
  Tensors out{loss->value()};
  for (const auto& leaf : leaves) out.push_back(leaf->grad());
  return out;
}

// ---------------------------------------------------------------------------
// Partitioner invariants
// ---------------------------------------------------------------------------

void CheckScheduleInvariants(const RowBlocks& blocks, int n, int p,
                             const std::string& label) {
  ASSERT_EQ(blocks.num_blocks, p) << label;
  ASSERT_EQ(static_cast<int>(blocks.block_ptr.size()), p + 1) << label;
  ASSERT_EQ(static_cast<int>(blocks.order.size()), n) << label;
  ASSERT_EQ(static_cast<int>(blocks.block_of.size()), n) << label;
  EXPECT_EQ(blocks.block_ptr.front(), 0) << label;
  EXPECT_EQ(blocks.block_ptr.back(), n) << label;
  std::vector<int> seen(n, 0);
  for (int b = 0; b < p; ++b) {
    ASSERT_LE(blocks.block_ptr[b], blocks.block_ptr[b + 1]) << label;
    for (int64_t k = blocks.block_ptr[b]; k < blocks.block_ptr[b + 1]; ++k) {
      const int row = blocks.order[k];
      ASSERT_GE(row, 0) << label;
      ASSERT_LT(row, n) << label;
      ++seen[row];
      EXPECT_EQ(blocks.block_of[row], b) << label << " row " << row;
      if (k > blocks.block_ptr[b]) {
        // Ascending within a block: the serial order per worker.
        EXPECT_LT(blocks.order[k - 1], row) << label;
      }
    }
  }
  for (int row = 0; row < n; ++row) {
    EXPECT_EQ(seen[row], 1) << label << " row " << row;
  }
}

TEST(PartitionInvariantsTest, ScheduleCoversEveryRowExactlyOnce) {
  const MultiplexGraph graph = MakeTiny(123);
  int64_t total_edges = 0;
  for (int r = 0; r < graph.num_relations(); ++r) {
    total_edges += graph.layer(r).nnz();
  }
  for (PartitionMethod method :
       {PartitionMethod::kDbh, PartitionMethod::kHdrf}) {
    for (int p : {1, 2, 8}) {
      PartitionOptions options;
      options.num_blocks = p;
      options.method = method;
      options.seed = 7;
      Result<VertexPartition> part = PartitionGraph(graph, options);
      ASSERT_TRUE(part.ok()) << part.status().ToString();
      const std::string label = std::string(PartitionMethodName(method)) +
                                " p=" + std::to_string(p);
      CheckScheduleInvariants(*part.value().blocks, graph.num_nodes(), p,
                              label);
      const PartitionStats& stats = part.value().stats;
      EXPECT_EQ(stats.num_blocks, p) << label;
      EXPECT_EQ(stats.total_edges, total_edges) << label;
      EXPECT_GE(stats.replication_factor, 1.0) << label;
      EXPECT_LE(stats.replication_factor, static_cast<double>(p)) << label;
      EXPECT_GE(stats.edge_balance, 1.0) << label;
      EXPECT_GE(stats.row_balance, 1.0) << label;
      EXPECT_LE(stats.max_block_edges, total_edges) << label;
      if (p == 1) {
        EXPECT_EQ(stats.replication_factor, 1.0) << label;
        EXPECT_EQ(stats.edge_balance, 1.0) << label;
        EXPECT_EQ(stats.max_block_edges, total_edges) << label;
      }

      // Deterministic: a second identical call yields the same schedule.
      Result<VertexPartition> again = PartitionGraph(graph, options);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.value().blocks->order, part.value().blocks->order)
          << label;
    }
  }
}

TEST(PartitionInvariantsTest, SkewedDegreesAndEmptyRelations) {
  const MultiplexGraph star = MakeStarWithEmptyRelation(129);
  for (PartitionMethod method :
       {PartitionMethod::kDbh, PartitionMethod::kHdrf}) {
    PartitionOptions options;
    options.num_blocks = 4;
    options.method = method;
    Result<VertexPartition> part = PartitionGraph(star, options);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    const std::string label = PartitionMethodName(method);
    CheckScheduleInvariants(*part.value().blocks, star.num_nodes(), 4,
                            label);
    const PartitionStats& stats = part.value().stats;
    EXPECT_EQ(stats.total_edges, star.layer(0).nnz()) << label;
    // Both heuristics anchor a star's edges at the low-degree leaves (DBH
    // hashes the leaf, HDRF's balance term spreads them), so the hub must
    // not collapse the edge partition onto one block.
    EXPECT_GE(stats.edge_balance, 1.0) << label;
    EXPECT_LT(stats.edge_balance, 2.0) << label;
    EXPECT_LT(stats.max_block_edges, stats.total_edges) << label;
  }

  // All-empty relations: no edges to stream; every vertex is isolated and
  // falls back to the v % P round-robin, still a valid schedule.
  std::vector<SparseMatrix> layers;
  layers.push_back(SparseMatrix::FromEdges(9, {}, /*symmetrize=*/true));
  Rng rng(5);
  auto empty =
      MultiplexGraph::Create("empty", RandomNormal(9, 2, 0.0, 1.0, &rng),
                             std::move(layers), {"none"});
  ASSERT_TRUE(empty.ok());
  PartitionOptions options;
  options.num_blocks = 3;
  Result<VertexPartition> part = PartitionGraph(*empty, options);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  CheckScheduleInvariants(*part.value().blocks, 9, 3, "all-empty");
  EXPECT_EQ(part.value().stats.total_edges, 0);

  // Invalid block counts are rejected.
  options.num_blocks = 0;
  EXPECT_FALSE(PartitionGraph(*empty, options).ok());
  options.num_blocks = -4;
  EXPECT_FALSE(PartitionGraph(*empty, options).ok());
}

TEST(PartitionInvariantsTest, PartitionedCsrRoundTripsTheMatrix) {
  const MultiplexGraph graph = MakeTiny(123);
  const SparseMatrix adj = graph.layer(0).NormalizedWithSelfLoops();
  const int n = adj.rows();
  for (int p : {2, 8}) {
    std::shared_ptr<const RowBlocks> blocks =
        Partition(graph, p, PartitionMethod::kDbh);
    Result<PartitionedCsr> built = BuildPartitionedCsr(adj, *blocks);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const PartitionedCsr& pc = built.value();
    ASSERT_EQ(static_cast<int>(pc.blocks.size()), p);

    std::vector<int> row_seen(n, 0);
    int64_t total_locals = 0;
    for (int b = 0; b < p; ++b) {
      const PartitionedCsr::Block& blk = pc.blocks[b];
      ASSERT_EQ(blk.row_ptr.size(), blk.rows.size() + 1);
      ASSERT_EQ(blk.col_idx.size(), blk.values.size());
      ASSERT_EQ(blk.num_owned, static_cast<int>(blk.rows.size()));
      total_locals += static_cast<int64_t>(blk.locals.size());
      // Owned locals lead and mirror `rows`; ghosts follow, each span
      // ascending in global id.
      for (size_t k = 0; k < blk.rows.size(); ++k) {
        EXPECT_EQ(blk.locals[k], blk.rows[k]);
        EXPECT_EQ(blocks->block_of[blk.rows[k]], b);
        ++row_seen[blk.rows[k]];
        if (k > 0) {
          EXPECT_LT(blk.rows[k - 1], blk.rows[k]);
        }
      }
      for (size_t k = blk.rows.size() + 1; k < blk.locals.size(); ++k) {
        EXPECT_LT(blk.locals[k - 1], blk.locals[k]);
      }
      // The sub-CSR reproduces the owned rows entry for entry under the
      // locals mapping, in the original column order.
      for (size_t i = 0; i < blk.rows.size(); ++i) {
        const int row = blk.rows[i];
        const int64_t begin = adj.row_ptr()[row];
        const int64_t end = adj.row_ptr()[row + 1];
        ASSERT_EQ(blk.row_ptr[i + 1] - blk.row_ptr[i], end - begin);
        for (int64_t k = begin; k < end; ++k) {
          const int64_t local_k = blk.row_ptr[i] + (k - begin);
          const int local_col = blk.col_idx[local_k];
          ASSERT_GE(local_col, 0);
          ASSERT_LT(local_col, static_cast<int>(blk.locals.size()));
          EXPECT_EQ(blk.locals[local_col], adj.col_idx()[k]);
          EXPECT_EQ(blk.values[local_k], adj.values()[k]);
        }
      }
    }
    for (int row = 0; row < n; ++row) EXPECT_EQ(row_seen[row], 1);
    EXPECT_EQ(pc.replication_factor,
              static_cast<double>(total_locals) / static_cast<double>(n));
    EXPECT_GE(pc.replication_factor, 1.0);
    EXPECT_GT(pc.MaxWorkingSetBytes(48), 0);
  }
}

// ---------------------------------------------------------------------------
// Kernel bit-identity: SpMM forward/backward
// ---------------------------------------------------------------------------

class PartitionedKernels : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedKernels, SpmmMatchesFlat) {
  const int p = GetParam();
  const MultiplexGraph graph = MakeTiny(123);
  const int n = graph.num_nodes();
  const SparseMatrix flat = graph.layer(0).NormalizedWithSelfLoops();
  SparseMatrix blocked = graph.layer(0).NormalizedWithSelfLoops();
  blocked.AttachRowBlocks(Partition(graph, p, PartitionMethod::kDbh));
  const Tensor x = Rand(n, 24, 11);
  ExpectBitIdentical(
      "spmm_forward p=" + std::to_string(p),
      [&] { return Tensors{blocked.Multiply(x)}; },
      [&] { return Tensors{flat.Multiply(x)}; });
  ExpectBitIdentical(
      "spmm_backward p=" + std::to_string(p),
      [&] { return Tensors{blocked.MultiplyTransposed(x)}; },
      [&] { return Tensors{flat.MultiplyTransposedNaive(x)}; });
}

TEST_P(PartitionedKernels, EdgeSoftmaxMatchesNaive) {
  const int p = GetParam();
  const MultiplexGraph graph = MakeTiny(123);
  const int n = graph.num_nodes();
  const int d = 16;
  auto adj = std::make_shared<const SparseMatrix>(
      graph.layer(1).NormalizedWithSelfLoops());
  adj->AttachRowBlocks(Partition(graph, p, PartitionMethod::kHdrf));
  Tensor h = Rand(n, d, 59, 0.5);
  Tensor a_src = Rand(1, d, 61, 0.5);
  Tensor a_dst = Rand(1, d, 67, 0.5);
  Tensor probe = Rand(n, d, 71);
  // The blocked kernels read adj->row_blocks(); the naive twins ignore it,
  // so this pins the full forward + backward chain against the flat
  // serial oracle with the schedule attached.
  auto run = [&](bool naive) {
    return [&, naive]() -> Tensors {
      ag::VarPtr hv = ag::Leaf(h);
      ag::VarPtr as = ag::Leaf(a_src);
      ag::VarPtr ad = ag::Leaf(a_dst);
      ag::VarPtr out = naive ? ag::GatAttentionNaive(hv, as, ad, adj, 0.2f)
                             : ag::GatAttention(hv, as, ad, adj, 0.2f);
      ag::Backward(ag::Sum(ag::Hadamard(out, ag::Constant(probe))));
      return Tensors{out->value(), hv->grad(), as->grad(), ad->grad()};
    };
  };
  ExpectBitIdentical("edge_softmax p=" + std::to_string(p), run(false),
                     run(true));
}

// ---------------------------------------------------------------------------
// Kernel bit-identity: the three loss closures
// ---------------------------------------------------------------------------

TEST_P(PartitionedKernels, ScaledCosineLossMatchesNaive) {
  const int p = GetParam();
  const MultiplexGraph graph = MakeTiny(123);
  const int n = graph.num_nodes();
  std::shared_ptr<const RowBlocks> blocks =
      Partition(graph, p, PartitionMethod::kDbh);
  Tensor recon = Rand(n, 12, 11);
  Tensor target = Rand(n, 12, 13);
  std::vector<int> idx;
  for (int i = 0; i < n; i += 2) idx.push_back(i);
  ExpectBitIdentical(
      "scaled_cosine p=" + std::to_string(p),
      [&] {
        return LossOutputs({recon}, [&](const auto& v) {
          return ag::ScaledCosineLoss(v[0], target, idx, 2.0f, blocks);
        });
      },
      [&] {
        return LossOutputs({recon}, [&](const auto& v) {
          return ag::ScaledCosineLossNaive(v[0], target, idx, 2.0f);
        });
      });
}

TEST_P(PartitionedKernels, MaskedEdgeSoftmaxCeMatchesNaive) {
  const int p = GetParam();
  const MultiplexGraph graph = MakeTiny(123);
  const int n = graph.num_nodes();
  std::shared_ptr<const RowBlocks> blocks =
      Partition(graph, p, PartitionMethod::kDbh);
  Tensor z = Rand(n, 16, 23, 0.5);
  Rng rng(29);
  std::vector<ag::EdgeCandidateSet> sets =
      nn::RandomEdgeCandidates(n, 150, 4, &rng);
  ExpectBitIdentical(
      "masked_edge_softmax_ce p=" + std::to_string(p),
      [&] {
        return LossOutputs({z}, [&](const auto& v) {
          return ag::MaskedEdgeSoftmaxCE(v[0], sets, blocks);
        });
      },
      [&] {
        return LossOutputs({z}, [&](const auto& v) {
          return ag::MaskedEdgeSoftmaxCENaive(v[0], sets);
        });
      });
}

TEST_P(PartitionedKernels, DualContrastiveLossMatchesNaive) {
  const int p = GetParam();
  const MultiplexGraph graph = MakeTiny(123);
  const int n = graph.num_nodes();
  std::shared_ptr<const RowBlocks> blocks =
      Partition(graph, p, PartitionMethod::kHdrf);
  Tensor zo = Rand(n, 16, 31, 0.4);
  Tensor za = Rand(n, 16, 37, 0.4);
  Rng rng(41);
  std::vector<int> neg = nn::SampleContrastiveNegatives(n, &rng);
  ExpectBitIdentical(
      "dual_contrastive p=" + std::to_string(p),
      [&] {
        return LossOutputs({zo, za}, [&](const auto& v) {
          return ag::DualContrastiveLoss(v[0], v[1], neg, blocks);
        });
      },
      [&] {
        return LossOutputs({zo, za}, [&](const auto& v) {
          return ag::DualContrastiveLossNaive(v[0], v[1], neg);
        });
      });
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, PartitionedKernels,
                         ::testing::Values(1, 2, 8));

// ---------------------------------------------------------------------------
// End-to-end: fitted scores across P x threads x arena
// ---------------------------------------------------------------------------

TEST(PartitionEndToEndTest, FittedScoresBitIdenticalAcrossPartitions) {
  UmgadConfig config;
  config.epochs = 2;
  config.hidden_dim = 8;
  config.mask_repeats = 1;
  config.num_subgraphs = 1;
  config.subgraph_size = 4;
  config.num_score_negatives = 2;
  config.seed = 5;

  const MultiplexGraph graph = MakeTiny(123);
  const bool prev_arena = ArenaEnabled();
  SetNumThreads(1);
  SetArenaEnabled(true);
  config.partitions = 0;  // flat engine: the reference
  std::vector<double> reference;
  {
    UmgadModel model(config);
    ASSERT_TRUE(model.Fit(graph).ok());
    reference = model.scores();
  }

  const ::umgad::testing::OracleSweep sweep;  // {1, 4} x arena on/off
  for (bool arena : sweep.arena_modes) {
    for (int threads : sweep.thread_counts) {
      for (int p : {1, 2, 8}) {
        SetArenaEnabled(arena);
        SetNumThreads(threads);
        config.partitions = p;
        config.partition_method =
            p == 2 ? PartitionMethod::kHdrf : PartitionMethod::kDbh;
        UmgadModel model(config);
        ASSERT_TRUE(model.Fit(graph).ok());
        const std::vector<double>& got = model.scores();
        ASSERT_EQ(got.size(), reference.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], reference[i])
              << "p=" << p << " threads=" << threads
              << " arena=" << (arena ? 1 : 0) << " node " << i;
        }
      }
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

}  // namespace
}  // namespace umgad
