#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "graph/datasets.h"
#include "tensor/init.h"

namespace umgad {
namespace {

TEST(ExperimentTest, RunExperimentAggregatesSeeds) {
  auto result = RunExperiment("PREM", "Tiny", {1, 2, 3},
                              ThresholdMode::kInflection);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->detector, "PREM");
  EXPECT_EQ(result->dataset, "Tiny");
  EXPECT_GT(result->auc.mean, 0.0);
  EXPECT_LE(result->auc.mean, 1.0);
  EXPECT_GE(result->macro_f1.mean, 0.0);
  EXPECT_GE(result->mean_fit_seconds, 0.0);
}

TEST(ExperimentTest, UnknownDetectorFails) {
  auto result =
      RunExperiment("Nope", "Tiny", {1}, ThresholdMode::kInflection);
  EXPECT_FALSE(result.ok());
}

TEST(ExperimentTest, UnknownDatasetFails) {
  auto result =
      RunExperiment("PREM", "Nope", {1}, ThresholdMode::kInflection);
  EXPECT_FALSE(result.ok());
}

TEST(ExperimentTest, UnlabeledDatasetFileFailsWithStatus) {
  // An on-disk dataset without ground truth (a raw import saved without
  // injection) must error cleanly, not trip EvaluateFitted's CHECK.
  Rng rng(3);
  Tensor x = RandomNormal(6, 4, 0, 1, &rng);
  SparseMatrix a = SparseMatrix::FromEdges(
      6, {Edge{0, 1}, Edge{1, 2}, Edge{3, 4}}, true);
  auto g = MultiplexGraph::Create("unlabeled", std::move(x), {a}, {"r"});
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/unlabeled_exp.txt";
  ASSERT_TRUE(SaveGraph(*g, path).ok());
  auto result = RunExperiment("PREM", path, {1}, ThresholdMode::kInflection);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("labels"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExperimentTest, LeakageModeUsesTrueCount) {
  MultiplexGraph g = MakeTiny(3);
  auto detector = MakeDetector("Radar", 3);
  ASSERT_TRUE((*detector)->Fit(g).ok());
  RunResult leak =
      EvaluateFitted(**detector, g, ThresholdMode::kTopKLeakage);
  EXPECT_EQ(leak.predicted_anomalies, g.num_anomalies());
  RunResult unsup =
      EvaluateFitted(**detector, g, ThresholdMode::kInflection);
  // AUC is threshold-independent.
  EXPECT_DOUBLE_EQ(leak.auc, unsup.auc);
}

TEST(ExperimentTest, LeakageNeverWorseOnAverage) {
  // With the true count, Macro-F1 is at least competitive with the
  // unsupervised threshold for a reasonable detector (paper Table V vs II).
  MultiplexGraph g = MakeTiny(5);
  auto detector = MakeDetector("PREM", 5);
  ASSERT_TRUE((*detector)->Fit(g).ok());
  RunResult leak =
      EvaluateFitted(**detector, g, ThresholdMode::kTopKLeakage);
  EXPECT_GE(leak.macro_f1, 0.0);
}

TEST(ExperimentTest, BenchSeedsHonorsEnvironment) {
  ::setenv("UMGAD_SEEDS", "4", 1);
  EXPECT_EQ(BenchSeeds(2).size(), 4u);
  ::unsetenv("UMGAD_SEEDS");
  EXPECT_EQ(BenchSeeds(2).size(), 2u);
}

TEST(ExperimentTest, BenchScaleHonorsEnvironment) {
  ::setenv("UMGAD_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScale(1.0), 0.5);
  ::unsetenv("UMGAD_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(1.0), 1.0);
}

TEST(ExperimentTest, SeedsAreDistinct) {
  std::vector<uint64_t> seeds = BenchSeeds(3);
  EXPECT_EQ(seeds.size(), 3u);
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_NE(seeds[1], seeds[2]);
}

}  // namespace
}  // namespace umgad
