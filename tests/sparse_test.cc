#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "oracle_harness.h"
#include "tensor/init.h"
#include "tensor/sparse.h"

namespace umgad {
namespace {

SparseMatrix RandomSparse(int n, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> e;
  for (int k = 0; k < edges; ++k) {
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u != v) e.push_back(Edge{u, v});
  }
  return SparseMatrix::FromEdges(n, e, /*symmetrize=*/true);
}

TEST(SparseTest, FromCooSortsAndStores) {
  SparseMatrix m = SparseMatrix::FromCoo(3, 3, {2, 0, 1}, {0, 1, 2},
                                         {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_TRUE(m.Has(0, 1));
  EXPECT_TRUE(m.Has(2, 0));
  EXPECT_FALSE(m.Has(0, 0));
}

TEST(SparseTest, FromCooMergesDuplicates) {
  SparseMatrix m = SparseMatrix::FromCoo(2, 2, {0, 0, 0}, {1, 1, 1},
                                         {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.values()[0], 6.0f);
}

TEST(SparseTest, FromEdgesSymmetrizes) {
  SparseMatrix m =
      SparseMatrix::FromEdges(3, {Edge{0, 1}, Edge{1, 2}}, true);
  EXPECT_TRUE(m.Has(1, 0));
  EXPECT_TRUE(m.Has(2, 1));
  EXPECT_EQ(m.nnz(), 4);
}

TEST(SparseTest, FromEdgesClampsDuplicateToOne) {
  SparseMatrix m = SparseMatrix::FromEdges(
      2, {Edge{0, 1}, Edge{0, 1}, Edge{1, 0}}, true);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.values()[0], 1.0f);
}

TEST(SparseTest, IdentityMultiplyIsNoop) {
  Rng rng(3);
  Tensor x = RandomNormal(5, 4, 0, 1, &rng);
  Tensor y = SparseMatrix::Identity(5).Multiply(x);
  EXPECT_LT(MaxAbsDiff(x, y), 1e-7);
}

TEST(SparseTest, MultiplyMatchesDense) {
  SparseMatrix s = RandomSparse(12, 40, 7);
  Rng rng(11);
  Tensor x = RandomNormal(12, 6, 0, 1, &rng);
  Tensor via_sparse = s.Multiply(x);
  Tensor via_dense = MatMul(s.ToDense(), x);
  EXPECT_LT(MaxAbsDiff(via_sparse, via_dense), 1e-4);
}

TEST(SparseTest, MultiplyTransposedMatchesDense) {
  SparseMatrix s = RandomSparse(10, 30, 13);
  Rng rng(17);
  Tensor x = RandomNormal(10, 3, 0, 1, &rng);
  Tensor via_sparse = s.MultiplyTransposed(x);
  Tensor via_dense = MatMul(Transpose(s.ToDense()), x);
  EXPECT_LT(MaxAbsDiff(via_sparse, via_dense), 1e-4);
}

TEST(SparseTest, RowSumsMatchDense) {
  SparseMatrix s = RandomSparse(9, 25, 19);
  Tensor dense = s.ToDense();
  std::vector<double> sums = s.RowSums();
  for (int i = 0; i < 9; ++i) {
    double expected = 0.0;
    for (int j = 0; j < 9; ++j) expected += dense.at(i, j);
    EXPECT_NEAR(sums[i], expected, 1e-5);
  }
}

TEST(SparseTest, NormalizedWithSelfLoopsSpectrum) {
  SparseMatrix s = RandomSparse(15, 40, 23);
  SparseMatrix norm = s.NormalizedWithSelfLoops();
  // Every node gets a self loop, so each row is non-empty.
  for (int i = 0; i < 15; ++i) EXPECT_GE(norm.RowNnz(i), 1);
  // Row sums of D^{-1/2}(A+I)D^{-1/2} are positive; they equal 1 exactly
  // on degree-regular graphs and stay near 1 otherwise (they can exceed 1
  // when a node's neighbours have smaller degrees than it).
  for (double rs : norm.RowSums()) {
    EXPECT_GT(rs, 0.0);
    EXPECT_LE(rs, 2.0);
  }
  // An isolated node's row is exactly its unit self loop.
  SparseMatrix isolated = SparseMatrix::FromEdges(3, {Edge{0, 1}}, true)
                              .NormalizedWithSelfLoops();
  auto [begin, end] = isolated.RowRange(2);
  ASSERT_EQ(end - begin, 1);
  EXPECT_FLOAT_EQ(isolated.values()[begin], 1.0f);
}

TEST(SparseTest, NormalizedSymmetric) {
  SparseMatrix s = RandomSparse(10, 25, 29);
  Tensor norm = s.NormalizedWithSelfLoops().ToDense();
  EXPECT_LT(MaxAbsDiff(norm, Transpose(norm)), 1e-6);
}

TEST(SparseTest, RowNormalizedIsStochastic) {
  SparseMatrix s = RandomSparse(10, 30, 31);
  std::vector<double> sums = s.RowNormalized().RowSums();
  for (int i = 0; i < 10; ++i) {
    if (s.RowNnz(i) > 0) {
      EXPECT_NEAR(sums[i], 1.0, 1e-5);
    }
  }
}

TEST(SparseTest, ToEdgesRoundTrip) {
  SparseMatrix s = RandomSparse(8, 20, 37);
  std::vector<Edge> edges = s.ToEdges();
  EXPECT_EQ(static_cast<int64_t>(edges.size()), s.nnz());
  SparseMatrix rebuilt = SparseMatrix::FromEdges(8, edges, false);
  EXPECT_LT(MaxAbsDiff(s.ToDense(), rebuilt.ToDense()), 1e-6);
}

TEST(SparseTest, RowRangeIteration) {
  SparseMatrix m = SparseMatrix::FromCoo(3, 3, {1, 1}, {0, 2}, {1.f, 1.f});
  auto [begin, end] = m.RowRange(1);
  EXPECT_EQ(end - begin, 2);
  EXPECT_EQ(m.RowNnz(0), 0);
  EXPECT_EQ(m.RowNnz(1), 2);
}

TEST(SparseTest, EmptyMatrix) {
  SparseMatrix m = SparseMatrix::FromCoo(4, 4, {}, {}, {});
  EXPECT_EQ(m.nnz(), 0);
  Tensor x = Tensor::Full(4, 2, 1.0f);
  Tensor y = m.Multiply(x);
  EXPECT_DOUBLE_EQ(y.Sum(), 0.0);
}

// ---------------------------------------------------------------------------
// MultiplyTransposed shape sweep through the shared differential-oracle
// harness (thread counts x arena modes live there): the transposed-index
// parallel kernel — the Spmm backward — must reproduce the seed's serial
// scatter loop bit-for-bit at every shape, including rectangular operators.
// ---------------------------------------------------------------------------

struct SpmmTShape {
  int rows;
  int cols;
  int nnz;
  int d;
};

SparseMatrix RandomRect(const SpmmTShape& s, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> r;
  std::vector<int> c;
  std::vector<float> v;
  for (int k = 0; k < s.nnz; ++k) {
    r.push_back(static_cast<int>(rng.UniformInt(s.rows)));
    c.push_back(static_cast<int>(rng.UniformInt(s.cols)));
    v.push_back(static_cast<float>(rng.Normal(0.0, 1.0)));
  }
  return SparseMatrix::FromCoo(s.rows, s.cols, r, c, v);
}

class SpmmTransposedVsNaive : public ::testing::TestWithParam<SpmmTShape> {};

TEST_P(SpmmTransposedVsNaive, BitIdenticalAcrossThreadCounts) {
  const SpmmTShape shape = GetParam();
  SparseMatrix s = RandomRect(shape, 41);
  Rng rng(43);
  Tensor x = RandomNormal(shape.rows, shape.d, 0, 1, &rng);
  umgad::testing::ExpectBitIdentical(
      "spmm_transposed",
      [&] { return umgad::testing::Tensors{s.MultiplyTransposed(x)}; },
      [&] { return umgad::testing::Tensors{s.MultiplyTransposedNaive(x)}; });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmTransposedVsNaive,
    ::testing::Values(SpmmTShape{1, 1, 1, 1},        // degenerate
                      SpmmTShape{7, 7, 20, 3},       // small square
                      SpmmTShape{64, 64, 500, 48},   // grain boundary
                      SpmmTShape{300, 120, 2000, 5}, // wide, rectangular
                      SpmmTShape{120, 300, 2000, 48},// tall, rectangular
                      SpmmTShape{1000, 1000, 8000, 48},  // GMAE-ish
                      SpmmTShape{500, 500, 0, 4},    // empty pattern
                      SpmmTShape{2000, 50, 4000, 16})); // skewed columns

TEST(SparseTest, IncomingIndexMatchesScatterOrder) {
  // The GAT-backward ownership map: every CSR entry must appear exactly
  // once, in its destination node's bucket, in ascending CSR-position
  // order — the order the serial all-rows scatter touches that node.
  SparseMatrix s = RandomSparse(25, 80, 59);
  auto inc = s.incoming_index();
  ASSERT_EQ(static_cast<int64_t>(inc->src.size()), s.nnz());
  ASSERT_EQ(static_cast<int>(inc->node_ptr.size()), s.cols() + 1);
  std::vector<char> seen(s.nnz(), 0);
  const auto& cols = s.col_idx();
  const auto& row_ptr = s.row_ptr();
  for (int v = 0; v < s.cols(); ++v) {
    int64_t prev = -1;
    for (int64_t p = inc->node_ptr[v]; p < inc->node_ptr[v + 1]; ++p) {
      const int64_t k = inc->edge[p];
      EXPECT_GT(k, prev) << "bucket " << v << " not in scatter order";
      prev = k;
      EXPECT_EQ(cols[k], v);
      EXPECT_TRUE(row_ptr[inc->src[p]] <= k && k < row_ptr[inc->src[p] + 1])
          << "src does not own CSR position " << k;
      EXPECT_FALSE(seen[k]);
      seen[k] = 1;
    }
  }
  for (char c : seen) EXPECT_TRUE(c);
  // Copies drop the cache and rebuild an identical index lazily.
  SparseMatrix copy = s;
  auto inc_copy = copy.incoming_index();
  EXPECT_EQ(inc_copy->node_ptr, inc->node_ptr);
  EXPECT_EQ(inc_copy->src, inc->src);
  EXPECT_EQ(inc_copy->edge, inc->edge);
}

TEST(SparseTest, MultiplyTransposedAfterCopyAndAssign) {
  // Copies drop the cached transposed index; results must stay exact.
  SparseMatrix s = RandomSparse(30, 120, 53);
  Tensor x(30, 4);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(i % 7) - 3.0f;
  }
  Tensor reference = s.MultiplyTransposedNaive(x);
  EXPECT_EQ(MaxAbsDiff(s.MultiplyTransposed(x), reference), 0.0);
  SparseMatrix copy = s;  // cache not copied; rebuilt lazily
  EXPECT_EQ(MaxAbsDiff(copy.MultiplyTransposed(x), reference), 0.0);
  SparseMatrix assigned;
  assigned = s;
  EXPECT_EQ(MaxAbsDiff(assigned.MultiplyTransposed(x), reference), 0.0);
}

}  // namespace
}  // namespace umgad
