// Golden-score regression: the end-to-end anomaly scores of a fixed UMGAD
// run (GAT encoder — edge-softmax backward, all three parallel losses) and
// a fixed AnomMAN run are pinned against a checked-in fixture, across
// UMGAD_THREADS x UMGAD_ARENA. The fixture was serialised from the engine
// that PR 3 verified bit-identical to the pre-refactor seed engine, so
// kernel work after this PR inherits seed protection without rebuilding an
// old binary. On an intentional pipeline change, regenerate with
// tests/golden_scores_gen.cc (instructions in golden_scores_common.h).
//
// Strictness: in the fixture's own build configuration — optimized,
// -march=native on an FMA host (UMGAD_GOLDEN_EXACT from CMake + __FMA__)
// — the comparison is exact bit-equality. Other configurations compile the
// same arithmetic to different contractions (-O0 keeps separate mul+add
// where -O3 emits FMA), which drifts trained scores by ~1e-7; they assert
// a 1e-4 bound instead — still far below any genuine kernel bug, which
// perturbs training trajectories at O(1e-2) or worse.

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "golden_scores_common.h"
#include "golden_scores_fixture.h"
#include "tensor/pool.h"

namespace umgad {
namespace testing {
namespace {

#if defined(UMGAD_GOLDEN_EXACT) && defined(__FMA__)
constexpr bool kExactConfig = true;
#else
constexpr bool kExactConfig = false;
#endif
constexpr double kCrossBuildTolerance = 1e-4;

void ExpectScoresMatchFixture(const std::vector<double>& scores,
                              const uint64_t (&golden)[kGoldenScoreCount],
                              const char* label, int threads, bool arena) {
  ASSERT_EQ(static_cast<int>(scores.size()), kGoldenScoreCount);
  for (int i = 0; i < kGoldenScoreCount; ++i) {
    uint64_t bits = 0;
    std::memcpy(&bits, &scores[i], sizeof(bits));
    double expected = 0.0;
    std::memcpy(&expected, &golden[i], sizeof(expected));
    if (kExactConfig) {
      // Self-diagnosing failure: a diff within the cross-build tolerance
      // is almost certainly compiler/CPU codegen drift (new FMA
      // contraction decisions after a toolchain bump) — regenerate the
      // fixture per golden_scores_common.h. A diff beyond it is a real
      // kernel regression.
      EXPECT_EQ(bits, golden[i])
          << label << " node " << i << " threads=" << threads
          << " arena=" << (arena ? 1 : 0) << ": got " << scores[i]
          << ", fixture " << expected << " (|diff| "
          << std::abs(scores[i] - expected)
          << (std::abs(scores[i] - expected) <= kCrossBuildTolerance
                  ? " <= 1e-4: likely toolchain codegen drift — regenerate "
                    "the fixture with golden_scores_gen"
                  : " > 1e-4: kernel regression")
          << ")";
    } else {
      EXPECT_LE(std::abs(scores[i] - expected), kCrossBuildTolerance)
          << label << " node " << i << " threads=" << threads
          << " arena=" << (arena ? 1 : 0) << ": got " << scores[i]
          << ", fixture " << expected;
    }
  }
}

TEST(GoldenScoresTest, UmgadBitEqualAcrossThreadsAndArena) {
  const bool prev_arena = ArenaEnabled();
  for (bool arena : {true, false}) {
    for (int threads : {1, 4}) {
      SetArenaEnabled(arena);
      SetNumThreads(threads);
      ExpectScoresMatchFixture(GoldenUmgadScores(), kGoldenUmgadScoreBits,
                               "UMGAD", threads, arena);
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

TEST(GoldenScoresTest, AnomManBitEqualAcrossThreadsAndArena) {
  const bool prev_arena = ArenaEnabled();
  for (bool arena : {true, false}) {
    for (int threads : {1, 4}) {
      SetArenaEnabled(arena);
      SetNumThreads(threads);
      ExpectScoresMatchFixture(GoldenAnomManScores(), kGoldenAnomManScoreBits,
                               "AnomMAN", threads, arena);
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

}  // namespace
}  // namespace testing
}  // namespace umgad
