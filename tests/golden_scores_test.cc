// Golden-score regression: the end-to-end anomaly scores of a fixed UMGAD
// run (GAT encoder — edge-softmax backward, all three parallel losses) and
// a fixed AnomMAN run are pinned against a checked-in fixture, across
// UMGAD_THREADS x UMGAD_ARENA. The fixture was serialised from the engine
// that PR 3 verified bit-identical to the pre-refactor seed engine, so
// kernel work after this PR inherits seed protection without rebuilding an
// old binary. On an intentional pipeline change, regenerate with
// tests/golden_scores_gen.cc (instructions in golden_scores_common.h).
//
// Strictness: in the fixture's own build configuration — optimized,
// -march=native on an FMA host (UMGAD_GOLDEN_EXACT from CMake + __FMA__)
// — the comparison is exact bit-equality. Other configurations compile the
// same arithmetic to different contractions (-O0 keeps separate mul+add
// where -O3 emits FMA), which drifts trained scores by ~1e-7; they assert
// a 1e-4 bound instead — still far below any genuine kernel bug, which
// perturbs training trajectories at O(1e-2) or worse.

#include <cmath>
#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/model_io.h"
#include "golden_scores_common.h"
#include "golden_scores_fixture.h"
#include "serve/online_scorer.h"
#include "tensor/pool.h"

namespace umgad {
namespace testing {
namespace {

#if defined(UMGAD_GOLDEN_EXACT) && defined(__FMA__)
constexpr bool kExactConfig = true;
#else
constexpr bool kExactConfig = false;
#endif
constexpr double kCrossBuildTolerance = 1e-4;

void ExpectScoresMatchFixture(const std::vector<double>& scores,
                              const uint64_t (&golden)[kGoldenScoreCount],
                              const char* label, int threads, bool arena) {
  ASSERT_EQ(static_cast<int>(scores.size()), kGoldenScoreCount);
  for (int i = 0; i < kGoldenScoreCount; ++i) {
    uint64_t bits = 0;
    std::memcpy(&bits, &scores[i], sizeof(bits));
    double expected = 0.0;
    std::memcpy(&expected, &golden[i], sizeof(expected));
    if (kExactConfig) {
      // Self-diagnosing failure: a diff within the cross-build tolerance
      // is almost certainly compiler/CPU codegen drift (new FMA
      // contraction decisions after a toolchain bump) — regenerate the
      // fixture per golden_scores_common.h. A diff beyond it is a real
      // kernel regression.
      EXPECT_EQ(bits, golden[i])
          << label << " node " << i << " threads=" << threads
          << " arena=" << (arena ? 1 : 0) << ": got " << scores[i]
          << ", fixture " << expected << " (|diff| "
          << std::abs(scores[i] - expected)
          << (std::abs(scores[i] - expected) <= kCrossBuildTolerance
                  ? " <= 1e-4: likely toolchain codegen drift — regenerate "
                    "the fixture with golden_scores_gen"
                  : " > 1e-4: kernel regression")
          << ")";
    } else {
      EXPECT_LE(std::abs(scores[i] - expected), kCrossBuildTolerance)
          << label << " node " << i << " threads=" << threads
          << " arena=" << (arena ? 1 : 0) << ": got " << scores[i]
          << ", fixture " << expected;
    }
  }
}

TEST(GoldenScoresTest, UmgadBitEqualAcrossThreadsAndArena) {
  const bool prev_arena = ArenaEnabled();
  for (bool arena : {true, false}) {
    for (int threads : {1, 4}) {
      SetArenaEnabled(arena);
      SetNumThreads(threads);
      ExpectScoresMatchFixture(GoldenUmgadScores(), kGoldenUmgadScoreBits,
                               "UMGAD", threads, arena);
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

TEST(GoldenScoresTest, ServedArtifactReproducesUmgadScores) {
  // The serve leg: the pinned scores must survive a full artifact round
  // trip — train, snapshot to .umgm, reload, stand up the online scorer,
  // and batch-replay. Training happens once (at the reference 1-thread /
  // arena-on setting); the replay through the reloaded artifact must then
  // reproduce the fixture for every thread-count x arena-mode, which is
  // exactly the serve layer's determinism contract.
  const bool prev_arena = ArenaEnabled();
  SetArenaEnabled(true);
  SetNumThreads(1);
  MultiplexGraph graph = MakeTiny(kGoldenGraphSeed);
  UmgadModel model(GoldenUmgadConfig());
  ASSERT_TRUE(model.Fit(graph).ok());
  auto trained = TrainedModel::FromFitted(model, graph);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  const std::string path = ::testing::TempDir() + "/golden_serve.umgm";
  ASSERT_TRUE(trained->Save(path).ok());
  auto loaded = TrainedModel::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  for (bool arena : {true, false}) {
    for (int threads : {1, 4}) {
      SetArenaEnabled(arena);
      SetNumThreads(threads);
      auto scorer = serve::OnlineScorer::Create(*loaded, graph);
      ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
      auto replay = (*scorer)->BatchReplayScores();
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      std::vector<double> scores = *std::move(replay);
      scores.resize(kGoldenScoreCount);
      ExpectScoresMatchFixture(scores, kGoldenUmgadScoreBits, "UMGAD-serve",
                               threads, arena);
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

TEST(GoldenScoresTest, AnomManBitEqualAcrossThreadsAndArena) {
  const bool prev_arena = ArenaEnabled();
  for (bool arena : {true, false}) {
    for (int threads : {1, 4}) {
      SetArenaEnabled(arena);
      SetNumThreads(threads);
      ExpectScoresMatchFixture(GoldenAnomManScores(), kGoldenAnomManScoreBits,
                               "AnomMAN", threads, arena);
    }
  }
  SetNumThreads(1);
  SetArenaEnabled(prev_arena);
}

}  // namespace
}  // namespace testing
}  // namespace umgad
