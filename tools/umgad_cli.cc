// umgad_cli — the user-facing entry point to the dataset subsystem and the
// detectors behind it.
//
//   umgad_cli list                          registered datasets + detectors
//   umgad_cli gen <name|all> [flags]        generate dataset(s) to disk
//   umgad_cli convert <in> <out>            re-encode between graph formats
//   umgad_cli inspect <path|name> [flags]   print stats (--time: load time)
//   umgad_cli run <path|name> [flags]       run UMGAD + a baseline end to end
//
// Common flags: --seed N, --scale S (registered generators only),
// --inject (edge-list imports without labels get injected anomalies).
// gen:  --out PATH_OR_DIR, --format binary|text
// run:  --detector NAME (repeatable), --baseline NAME, --epochs N,
//       --threshold inflection|topk
//
// Every path accepted here goes through LoadDataset (graph/io/graph_io.h),
// so text v1, binary v2, raw edge lists, and registered names (including
// UMGAD_DATASET_DIR resolution) all behave identically across subcommands.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/threshold.h"
#include "core/umgad.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "graph/dataset_registry.h"
#include "graph/io/binary_format.h"
#include "graph/io/graph_io.h"
#include "graph/io/text_format.h"

namespace umgad {
namespace {

struct CliArgs {
  std::string command;
  std::vector<std::string> positional;
  uint64_t seed = 1;
  double scale = 1.0;
  std::string out;
  std::string format = "binary";
  std::vector<std::string> detectors;
  int epochs = 0;
  std::string threshold = "inflection";
  bool time = false;
  bool inject = false;
};

int Usage() {
  std::cerr <<
      "usage: umgad_cli <command> [args]\n"
      "\n"
      "commands:\n"
      "  list                         registered datasets and detectors\n"
      "  gen <name|all> [--seed N] [--scale S] [--format binary|text]\n"
      "                 [--out PATH_OR_DIR]\n"
      "  convert <in> <out>           re-encode (format from <out> extension:\n"
      "                               .umgb = binary v2, else text v1)\n"
      "  inspect <path|name> [--seed N] [--scale S] [--time]\n"
      "  run <path|name> [--detector NAME]... [--baseline NAME]\n"
      "                  [--seed N] [--scale S] [--epochs N]\n"
      "                  [--threshold inflection|topk] [--inject]\n"
      "\n"
      "<path|name> is a registered dataset name (umgad_cli list), a graph\n"
      "file in either format, or a raw edge list (src dst [relation] per\n"
      "line; TSV/CSV/whitespace). UMGAD_DATASET_DIR redirects registered\n"
      "names to pre-generated files.\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      args->scale = std::atof(v);
      if (args->scale <= 0.0) {
        std::cerr << "--scale must be positive\n";
        return false;
      }
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      args->out = v;
    } else if (arg == "--format") {
      const char* v = next("--format");
      if (v == nullptr) return false;
      args->format = v;
      if (args->format != "binary" && args->format != "text") {
        std::cerr << "--format must be binary or text\n";
        return false;
      }
    } else if (arg == "--detector" || arg == "--baseline") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      args->detectors.push_back(v);
    } else if (arg == "--epochs") {
      const char* v = next("--epochs");
      if (v == nullptr) return false;
      args->epochs = std::atoi(v);
    } else if (arg == "--threshold") {
      const char* v = next("--threshold");
      if (v == nullptr) return false;
      args->threshold = v;
      if (args->threshold != "inflection" && args->threshold != "topk") {
        std::cerr << "--threshold must be inflection or topk\n";
        return false;
      }
    } else if (arg == "--time") {
      args->time = true;
    } else if (arg == "--inject") {
      args->inject = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return false;
    } else {
      args->positional.push_back(arg);
    }
  }
  return true;
}

LoadDatasetOptions LoadOptionsFrom(const CliArgs& args) {
  LoadDatasetOptions load;
  load.seed = args.seed;
  load.scale = args.scale;
  load.edge_list.inject_if_unlabeled = args.inject;
  load.edge_list.injection_seed = args.seed;
  return load;
}

int FailWith(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

const char* GroupName(DatasetGroup group) {
  switch (group) {
    case DatasetGroup::kSmall: return "small (Table II)";
    case DatasetGroup::kLarge: return "large (Table III)";
    case DatasetGroup::kTest: return "test";
  }
  return "?";
}

int CmdList(const CliArgs&) {
  TablePrinter datasets("Registered datasets");
  datasets.SetHeader({"Name", "Group", "Anomalies", "Relations",
                      "Paper #Nodes"});
  for (const DatasetSpec& spec : DatasetRegistry::Global().specs()) {
    std::vector<std::string> rels;
    for (const RelationSpec& rel : spec.relations) rels.push_back(rel.name);
    datasets.AddRow({spec.name, GroupName(spec.group),
                     spec.anomalies.kind ==
                             AnomalySpec::Kind::kInjectedCliques
                         ? "injected"
                         : "organic",
                     Join(rels, "/"),
                     spec.paper_nodes.empty() ? "-" : spec.paper_nodes});
  }
  datasets.Print(std::cout);

  std::cout << "\nDetectors: " << Join(AllDetectorNames(), ", ") << "\n";
  const std::string dir = DatasetDir();
  if (!dir.empty()) std::cout << "UMGAD_DATASET_DIR: " << dir << "\n";
  return 0;
}

/// --out names a single file only when it carries a known graph extension;
/// anything else — including dotted directory names like "corpora.v2" —
/// is a directory to drop "<name>.<ext>" into.
bool OutIsFile(const std::string& path) {
  return EndsWith(path, std::string(".") + kBinaryGraphExtension) ||
         EndsWith(path, std::string(".") + kTextGraphExtension);
}

int GenOne(const std::string& name, const CliArgs& args) {
  Result<MultiplexGraph> graph =
      DatasetRegistry::Global().Build(name, args.seed, args.scale);
  if (!graph.ok()) return FailWith(graph.status());
  const char* ext = args.format == "binary" ? kBinaryGraphExtension
                                            : kTextGraphExtension;
  std::string path = args.out;
  if (path.empty()) {
    path = name + "." + ext;
  } else if (!OutIsFile(path)) {
    path += "/" + name + "." + ext;
  }
  const Status saved = args.format == "binary"
                           ? SaveGraphBinary(*graph, path)
                           : SaveGraph(*graph, path);
  if (!saved.ok()) return FailWith(saved);
  std::cout << path << ": " << graph->Summary() << "\n";
  return 0;
}

int CmdGen(const CliArgs& args) {
  if (args.positional.size() != 1) return Usage();
  if (args.positional[0] == "all") {
    if (OutIsFile(args.out)) {
      std::cerr << "gen all needs --out to be a directory, not a single "
                   "file (every dataset would overwrite it)\n";
      return 2;
    }
    for (const std::string& name : DatasetRegistry::Global().Names()) {
      const int rc = GenOne(name, args);
      if (rc != 0) return rc;
    }
    return 0;
  }
  return GenOne(args.positional[0], args);
}

int CmdConvert(const CliArgs& args) {
  if (args.positional.size() != 2) return Usage();
  LoadDatasetOptions load = LoadOptionsFrom(args);
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  if (!graph.ok()) return FailWith(graph.status());
  const Status saved = SaveGraphAuto(*graph, args.positional[1]);
  if (!saved.ok()) return FailWith(saved);
  std::cout << args.positional[1] << ": " << graph->Summary() << "\n";
  return 0;
}

int CmdInspect(const CliArgs& args) {
  if (args.positional.size() != 1) return Usage();
  LoadDatasetOptions load = LoadOptionsFrom(args);
  WallTimer timer;
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  const double load_ms = timer.ElapsedMillis();
  if (!graph.ok()) return FailWith(graph.status());

  std::cout << graph->Summary() << "\n\n";
  TablePrinter table;
  table.SetHeader({"Relation", "#Edges", "Mean deg", "Max deg",
                   "Self-loops"});
  for (int r = 0; r < graph->num_relations(); ++r) {
    const SparseMatrix& layer = graph->layer(r);
    int max_degree = 0;
    int64_t self_loops = 0;
    for (int i = 0; i < layer.rows(); ++i) {
      max_degree = std::max(max_degree, layer.RowNnz(i));
      if (layer.Has(i, i)) ++self_loops;
    }
    table.AddRow({graph->relation_name(r),
                  StrFormat("%lld",
                            static_cast<long long>(graph->num_edges(r))),
                  FormatFloat(static_cast<double>(layer.nnz()) /
                                  std::max(1, graph->num_nodes()),
                              2),
                  StrFormat("%d", max_degree),
                  StrFormat("%lld", static_cast<long long>(self_loops))});
  }
  table.Print(std::cout);

  std::cout << "\nfeatures: " << graph->feature_dim() << "-d";
  if (graph->has_labels()) {
    std::cout << "; anomalies: " << graph->num_anomalies() << "/"
              << graph->num_nodes() << " ("
              << FormatFloat(100.0 * graph->num_anomalies() /
                                 graph->num_nodes(),
                             2)
              << "%)";
  } else {
    std::cout << "; unlabeled";
  }
  std::cout << "\n";
  if (args.time) {
    std::cout << "load time: " << FormatFloat(load_ms, 2) << " ms\n";
  }
  return 0;
}

int CmdRun(const CliArgs& args) {
  if (args.positional.size() != 1) return Usage();
  LoadDatasetOptions load = LoadOptionsFrom(args);
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  if (!graph.ok()) return FailWith(graph.status());
  std::cout << graph->Summary() << "\n\n";

  // UMGAD plus one chosen baseline by default; --detector/--baseline
  // override the roster entirely.
  std::vector<std::string> roster = args.detectors;
  if (roster.empty()) roster = {"UMGAD", "DOMINANT"};
  else if (std::find(roster.begin(), roster.end(), "UMGAD") == roster.end()) {
    roster.insert(roster.begin(), "UMGAD");
  }
  const bool labeled = graph->has_labels();
  TablePrinter table;
  if (labeled) {
    table.SetHeader({"Method", "AUC", "Macro-F1", "Pred./true anomalies",
                     "Fit (s)"});
  } else {
    table.SetHeader({"Method", "Predicted anomalies", "Threshold",
                     "Fit (s)"});
  }
  for (const std::string& name : roster) {
    Result<std::unique_ptr<Detector>> detector = [&] {
      // --epochs steers the UMGAD run directly; baselines keep their
      // published training budgets.
      if (name == "UMGAD" && args.epochs > 0) {
        UmgadConfig config;
        config.seed = args.seed;
        config.epochs = args.epochs;
        return Result<std::unique_ptr<Detector>>(
            std::unique_ptr<Detector>(new UmgadModel(config)));
      }
      return MakeDetector(name, args.seed);
    }();
    if (!detector.ok()) return FailWith(detector.status());
    const Status fitted = (*detector)->Fit(*graph);
    if (!fitted.ok()) return FailWith(fitted);
    if (labeled) {
      const RunResult run = EvaluateFitted(
          **detector, *graph,
          args.threshold == "topk" ? ThresholdMode::kTopKLeakage
                                   : ThresholdMode::kInflection);
      table.AddRow({name, FormatFloat(run.auc, 3),
                    FormatFloat(run.macro_f1, 3),
                    StrFormat("%d/%d", run.predicted_anomalies,
                              graph->num_anomalies()),
                    FormatFloat(run.fit_seconds, 2)});
    } else {
      const ThresholdResult threshold =
          SelectThresholdInflection((*detector)->scores());
      table.AddRow({name, StrFormat("%d", threshold.num_predicted),
                    FormatFloat(threshold.threshold, 4),
                    FormatFloat((*detector)->fit_seconds(), 2)});
    }
    std::cerr << "  done: " << name << "\n";
  }
  table.Print(std::cout);
  if (!labeled) {
    std::cout << "\n(no ground-truth labels: scores + label-free threshold "
                 "only; --inject marks up unlabeled edge-list imports)\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.command == "list") return CmdList(args);
  if (args.command == "gen") return CmdGen(args);
  if (args.command == "convert") return CmdConvert(args);
  if (args.command == "inspect") return CmdInspect(args);
  if (args.command == "run") return CmdRun(args);
  return Usage();
}

}  // namespace
}  // namespace umgad

int main(int argc, char** argv) { return umgad::Main(argc, argv); }
