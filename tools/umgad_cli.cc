// umgad_cli — the user-facing entry point to the dataset subsystem and the
// detectors behind it.
//
//   umgad_cli list                          registered datasets + detectors
//   umgad_cli gen <name|all> [flags]        generate dataset(s) to disk
//   umgad_cli convert <in> <out>            re-encode between graph formats
//   umgad_cli inspect <path|name> [flags]   print stats (--time: load time)
//   umgad_cli run <path|name> [flags]       run UMGAD + a baseline end to end
//   umgad_cli train <path|name> [flags]     fit UMGAD, save a .umgm artifact
//   umgad_cli serve <path|name> [flags]     online scoring from an artifact
//
// Common flags: --seed N, --scale S (registered generators only),
// --inject (edge-list imports without labels get injected anomalies),
// --mmap (map .umgb inputs read-only instead of copying them),
// --header auto|always|never (edge-list header row handling),
// --serial-import (disable the chunked parallel edge-list parser).
// gen:   --out PATH_OR_DIR, --format binary|text
// run:   --detector NAME (repeatable), --baseline NAME, --epochs N,
//        --threshold inflection|topk, --save-scores PATH (CSV)
// train: --save-model PATH.umgm, --epochs N
// serve: --model PATH.umgm, --stream FILE|- ("+ src dst rel" inserts an
//        edge, "- src dst rel" removes one, applied incrementally),
//        --naive / --replay-batch (score-path selection for differential
//        checks), --shards S / --queue-capacity N (concurrent sharded
//        serving; drained output byte-identical to the flat path),
//        --metrics (counters + latency percentiles to stderr),
//        --save-scores PATH (CSV; default stdout)
//
// Every path accepted here goes through LoadDataset (graph/io/graph_io.h),
// so text v1, binary v3, raw edge lists, and registered names (including
// UMGAD_DATASET_DIR resolution) all behave identically across subcommands.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/model_io.h"
#include "core/threshold.h"
#include "core/umgad.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "graph/dataset_registry.h"
#include "graph/io/binary_format.h"
#include "graph/io/graph_io.h"
#include "graph/io/text_format.h"
#include "serve/online_scorer.h"
#include "serve/serve_metrics.h"
#include "serve/shard_router.h"
#include "tensor/dispatch/precision.h"
#include "tensor/dispatch/registry.h"

namespace umgad {
namespace {

struct CliArgs {
  std::string command;
  std::vector<std::string> positional;
  uint64_t seed = 1;
  double scale = 1.0;
  std::string out;
  std::string format = "binary";
  std::vector<std::string> detectors;
  int epochs = 0;
  int partitions = 0;
  std::string partition_method;  // empty = config default (dbh)
  std::string threshold = "inflection";
  bool time = false;
  bool inject = false;
  std::string save_model;
  std::string model;
  std::string stream;
  std::string save_scores;
  bool naive = false;
  bool replay_batch = false;
  int shards = 0;  // 0 = flat single-scorer path
  int queue_capacity = 0;  // 0 = RouterOptions default
  bool metrics = false;
  bool mmap = false;
  std::string header = "auto";
  bool serial_import = false;
  std::string precision = "fp32";
  std::string kernel;     // registry override spec (--kernel)
  bool kernels = false;   // inspect --kernels
  std::string parity;     // serve --parity: reference-score CSV to gate on
  double parity_tol = 1e-3;
};

int Usage() {
  std::cerr <<
      "usage: umgad_cli <command> [args]\n"
      "\n"
      "commands:\n"
      "  list                         registered datasets and detectors\n"
      "  gen <name|all> [--seed N] [--scale S] [--format binary|text]\n"
      "                 [--out PATH_OR_DIR]\n"
      "  convert <in> <out>           re-encode (format from <out> extension:\n"
      "                               .umgb = binary v3, else text v1)\n"
      "  inspect <path|name> [--seed N] [--scale S] [--time]\n"
      "  inspect --kernels            registered kernel variants + CPU\n"
      "                               features + active selection\n"
      "  run <path|name> [--detector NAME]... [--baseline NAME]\n"
      "                  [--seed N] [--scale S] [--epochs N]\n"
      "                  [--partitions P] [--partition-method dbh|hdrf]\n"
      "                  [--threshold inflection|topk] [--inject]\n"
      "                  [--save-scores PATH]\n"
      "  train <path|name> --save-model PATH.umgm [--seed N] [--scale S]\n"
      "                  [--epochs N] [--partitions P]\n"
      "                  [--partition-method dbh|hdrf]\n"
      "  serve <path|name> --model PATH.umgm [--stream FILE|-]\n"
      "                  [--naive | --replay-batch] [--save-scores PATH]\n"
      "                  [--shards S] [--queue-capacity N] [--metrics]\n"
      "                  [--precision fp32|int8|bf16]\n"
      "                  [--parity CSV [--parity-tol X]]\n"
      "                  [--seed N] [--scale S]\n"
      "\n"
      "kernel flags (any command): --kernel NAME or --kernel op=name,...\n"
      "pins registry kernel variants (ops: matmul, matmul_transb, spmm,\n"
      "int8_gemm, bf16_gemm, bf16_spmm); same syntax as the UMGAD_KERNEL\n"
      "env var. inspect --kernels shows what is registered and selected.\n"
      "\n"
      "load flags (any command that loads a graph): --mmap maps .umgb\n"
      "inputs read-only (zero-copy; UMGAD_NO_MMAP=1 forces the copying\n"
      "fallback), --header auto|always|never controls edge-list header-row\n"
      "detection, --serial-import disables chunked parallel parsing (the\n"
      "loaded graph is bit-identical either way).\n"
      "\n"
      "serve applies a stream of edge updates (\"+ src dst rel\" inserts,\n"
      "\"- src dst rel\" removes; '#' comments) with incremental re-scoring\n"
      "and emits \"node,score\" CSV. --naive re-scores from scratch with the\n"
      "serial oracle kernels; --replay-batch replays the artifact's batch\n"
      "scoring pass over the final graph. All three paths agree on an\n"
      "unmutated graph; the first two agree after any stream. --shards S\n"
      "routes the stream through S concurrent scorer shards instead — the\n"
      "drained CSV is byte-identical to the single-scorer path (the CI\n"
      "cli-smoke job diffs them). --metrics prints serving counters and\n"
      "latency percentiles to stderr. --precision int8|bf16 runs the\n"
      "forward re-score through the quantized kernels (scores shift within\n"
      "quantization error; rankings hold). --parity CSV gates the run's\n"
      "scores against a reference CSV (normally a --precision fp32\n"
      "--save-scores run) by AUC parity on the dataset labels:\n"
      "|dAUC| <= --parity-tol (default 1e-3) or exit 1.\n"
      "\n"
      "<path|name> is a registered dataset name (umgad_cli list), a graph\n"
      "file in either format, or a raw edge list (src dst [relation] per\n"
      "line; TSV/CSV/whitespace). UMGAD_DATASET_DIR redirects registered\n"
      "names to pre-generated files.\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      args->scale = std::atof(v);
      if (args->scale <= 0.0) {
        std::cerr << "--scale must be positive\n";
        return false;
      }
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      args->out = v;
    } else if (arg == "--format") {
      const char* v = next("--format");
      if (v == nullptr) return false;
      args->format = v;
      if (args->format != "binary" && args->format != "text") {
        std::cerr << "--format must be binary or text\n";
        return false;
      }
    } else if (arg == "--detector" || arg == "--baseline") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      args->detectors.push_back(v);
    } else if (arg == "--epochs") {
      const char* v = next("--epochs");
      if (v == nullptr) return false;
      args->epochs = std::atoi(v);
    } else if (arg == "--partitions") {
      const char* v = next("--partitions");
      if (v == nullptr) return false;
      args->partitions = std::atoi(v);
      if (args->partitions < 1) {
        std::cerr << "--partitions must be >= 1\n";
        return false;
      }
    } else if (arg == "--partition-method") {
      const char* v = next("--partition-method");
      if (v == nullptr) return false;
      args->partition_method = v;
      if (args->partition_method != "dbh" &&
          args->partition_method != "hdrf") {
        std::cerr << "--partition-method must be dbh or hdrf\n";
        return false;
      }
    } else if (arg == "--threshold") {
      const char* v = next("--threshold");
      if (v == nullptr) return false;
      args->threshold = v;
      if (args->threshold != "inflection" && args->threshold != "topk") {
        std::cerr << "--threshold must be inflection or topk\n";
        return false;
      }
    } else if (arg == "--time") {
      args->time = true;
    } else if (arg == "--inject") {
      args->inject = true;
    } else if (arg == "--save-model") {
      const char* v = next("--save-model");
      if (v == nullptr) return false;
      args->save_model = v;
    } else if (arg == "--model") {
      const char* v = next("--model");
      if (v == nullptr) return false;
      args->model = v;
    } else if (arg == "--stream") {
      const char* v = next("--stream");
      if (v == nullptr) return false;
      args->stream = v;
    } else if (arg == "--save-scores") {
      const char* v = next("--save-scores");
      if (v == nullptr) return false;
      args->save_scores = v;
    } else if (arg == "--naive") {
      args->naive = true;
    } else if (arg == "--replay-batch") {
      args->replay_batch = true;
    } else if (arg == "--shards") {
      const char* v = next("--shards");
      if (v == nullptr) return false;
      args->shards = std::atoi(v);
      if (args->shards < 1) {
        std::cerr << "--shards must be >= 1\n";
        return false;
      }
    } else if (arg == "--queue-capacity") {
      const char* v = next("--queue-capacity");
      if (v == nullptr) return false;
      args->queue_capacity = std::atoi(v);
      if (args->queue_capacity < 1) {
        std::cerr << "--queue-capacity must be >= 1\n";
        return false;
      }
    } else if (arg == "--metrics") {
      args->metrics = true;
    } else if (arg == "--precision") {
      const char* v = next("--precision");
      if (v == nullptr) return false;
      args->precision = v;
      if (args->precision != "fp32" && args->precision != "int8" &&
          args->precision != "bf16") {
        std::cerr << "--precision must be fp32, int8, or bf16\n";
        return false;
      }
    } else if (arg == "--kernel") {
      const char* v = next("--kernel");
      if (v == nullptr) return false;
      args->kernel = v;
    } else if (arg == "--kernels") {
      args->kernels = true;
    } else if (arg == "--parity") {
      const char* v = next("--parity");
      if (v == nullptr) return false;
      args->parity = v;
    } else if (arg == "--parity-tol") {
      const char* v = next("--parity-tol");
      if (v == nullptr) return false;
      args->parity_tol = std::atof(v);
      if (args->parity_tol <= 0.0) {
        std::cerr << "--parity-tol must be positive\n";
        return false;
      }
    } else if (arg == "--mmap") {
      args->mmap = true;
    } else if (arg == "--serial-import") {
      args->serial_import = true;
    } else if (arg == "--header") {
      const char* v = next("--header");
      if (v == nullptr) return false;
      args->header = v;
      if (args->header != "auto" && args->header != "always" &&
          args->header != "never") {
        std::cerr << "--header must be auto, always, or never\n";
        return false;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return false;
    } else {
      args->positional.push_back(arg);
    }
  }
  return true;
}

LoadDatasetOptions LoadOptionsFrom(const CliArgs& args) {
  LoadDatasetOptions load;
  load.seed = args.seed;
  load.scale = args.scale;
  load.prefer_mmap = args.mmap;
  load.parallel_import = !args.serial_import;
  load.edge_list.inject_if_unlabeled = args.inject;
  load.edge_list.injection_seed = args.seed;
  load.edge_list.header = args.header == "always" ? HeaderMode::kAlways
                          : args.header == "never" ? HeaderMode::kNever
                                                   : HeaderMode::kAuto;
  return load;
}

int FailWith(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

const char* GroupName(DatasetGroup group) {
  switch (group) {
    case DatasetGroup::kSmall: return "small (Table II)";
    case DatasetGroup::kLarge: return "large (Table III)";
    case DatasetGroup::kTest: return "test";
  }
  return "?";
}

int CmdList(const CliArgs&) {
  TablePrinter datasets("Registered datasets");
  datasets.SetHeader({"Name", "Group", "Anomalies", "Relations",
                      "Paper #Nodes"});
  for (const DatasetSpec& spec : DatasetRegistry::Global().specs()) {
    std::vector<std::string> rels;
    for (const RelationSpec& rel : spec.relations) rels.push_back(rel.name);
    datasets.AddRow({spec.name, GroupName(spec.group),
                     spec.anomalies.kind ==
                             AnomalySpec::Kind::kInjectedCliques
                         ? "injected"
                         : "organic",
                     Join(rels, "/"),
                     spec.paper_nodes.empty() ? "-" : spec.paper_nodes});
  }
  datasets.Print(std::cout);

  std::cout << "\nDetectors: " << Join(AllDetectorNames(), ", ") << "\n";
  const std::string dir = DatasetDir();
  if (!dir.empty()) std::cout << "UMGAD_DATASET_DIR: " << dir << "\n";
  return 0;
}

/// --out names a single file only when it carries a known graph extension;
/// anything else — including dotted directory names like "corpora.v2" —
/// is a directory to drop "<name>.<ext>" into.
bool OutIsFile(const std::string& path) {
  return EndsWith(path, std::string(".") + kBinaryGraphExtension) ||
         EndsWith(path, std::string(".") + kTextGraphExtension);
}

int GenOne(const std::string& name, const CliArgs& args) {
  Result<MultiplexGraph> graph =
      DatasetRegistry::Global().Build(name, args.seed, args.scale);
  if (!graph.ok()) return FailWith(graph.status());
  const char* ext = args.format == "binary" ? kBinaryGraphExtension
                                            : kTextGraphExtension;
  std::string path = args.out;
  if (path.empty()) {
    path = name + "." + ext;
  } else if (!OutIsFile(path)) {
    path += "/" + name + "." + ext;
  }
  const Status saved = args.format == "binary"
                           ? SaveGraphBinary(*graph, path)
                           : SaveGraph(*graph, path);
  if (!saved.ok()) return FailWith(saved);
  std::cout << path << ": " << graph->Summary() << "\n";
  return 0;
}

int CmdGen(const CliArgs& args) {
  if (args.positional.size() != 1) return Usage();
  if (args.positional[0] == "all") {
    if (OutIsFile(args.out)) {
      std::cerr << "gen all needs --out to be a directory, not a single "
                   "file (every dataset would overwrite it)\n";
      return 2;
    }
    for (const std::string& name : DatasetRegistry::Global().Names()) {
      const int rc = GenOne(name, args);
      if (rc != 0) return rc;
    }
    return 0;
  }
  return GenOne(args.positional[0], args);
}

int CmdConvert(const CliArgs& args) {
  if (args.positional.size() != 2) return Usage();
  LoadDatasetOptions load = LoadOptionsFrom(args);
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  if (!graph.ok()) return FailWith(graph.status());
  const Status saved = SaveGraphAuto(*graph, args.positional[1]);
  if (!saved.ok()) return FailWith(saved);
  std::cout << args.positional[1] << ": " << graph->Summary() << "\n";
  return 0;
}

/// The `inspect --kernels` / `serve --metrics` kernel report: what the
/// registry registered, what cpuid found, and which variant each op
/// resolved to — the reproducibility header for cross-box perf reports.
void PrintKernelReport(std::ostream& os) {
  os << "cpu features: detected ["
     << dispatch::CpuFeatureListString(dispatch::DetectedCpuFeatures())
     << "], effective ["
     << dispatch::CpuFeatureListString(dispatch::EffectiveCpuFeatures())
     << "]\n\n";
  TablePrinter table;
  table.SetHeader({"Op", "Active", "Registered variants"});
  for (const dispatch::KernelSelection& sel :
       dispatch::KernelRegistry::Global()->Selections()) {
    std::string variants;
    for (const dispatch::KernelVariant& v : sel.variants) {
      if (!variants.empty()) variants += ", ";
      variants += v.name + StrFormat("(p%d", v.priority);
      if (v.required_features != 0) {
        variants +=
            "; " + dispatch::CpuFeatureListString(v.required_features);
      }
      variants += ")";
    }
    std::string active = sel.variant;
    if (sel.overridden) active += " (override)";
    if (sel.fell_back) active += " (fallback)";
    table.AddRow({dispatch::KernelOpName(sel.op), active, variants});
  }
  table.Print(os);
}

/// One-line form for serve --metrics (stderr, greppable).
std::string KernelSummaryLine(const std::string& precision) {
  std::string line = "kernels: precision=" + precision;
  for (const dispatch::KernelSelection& sel :
       dispatch::KernelRegistry::Global()->Selections()) {
    line += StrFormat(" %s=%s", dispatch::KernelOpName(sel.op),
                      sel.variant.c_str());
  }
  line += " features=" +
          dispatch::CpuFeatureListString(dispatch::EffectiveCpuFeatures());
  return line;
}

int CmdInspect(const CliArgs& args) {
  if (args.kernels) {
    PrintKernelReport(std::cout);
    return 0;
  }
  if (args.positional.size() != 1) return Usage();
  LoadDatasetOptions load = LoadOptionsFrom(args);
  WallTimer timer;
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  const double load_ms = timer.ElapsedMillis();
  if (!graph.ok()) return FailWith(graph.status());

  std::cout << graph->Summary() << "\n\n";
  TablePrinter table;
  table.SetHeader({"Relation", "#Edges", "Mean deg", "Max deg",
                   "Self-loops"});
  for (int r = 0; r < graph->num_relations(); ++r) {
    const SparseMatrix& layer = graph->layer(r);
    int max_degree = 0;
    int64_t self_loops = 0;
    for (int i = 0; i < layer.rows(); ++i) {
      max_degree = std::max(max_degree, layer.RowNnz(i));
      if (layer.Has(i, i)) ++self_loops;
    }
    table.AddRow({graph->relation_name(r),
                  StrFormat("%lld",
                            static_cast<long long>(graph->num_edges(r))),
                  FormatFloat(static_cast<double>(layer.nnz()) /
                                  std::max(1, graph->num_nodes()),
                              2),
                  StrFormat("%d", max_degree),
                  StrFormat("%lld", static_cast<long long>(self_loops))});
  }
  table.Print(std::cout);

  std::cout << "\nfeatures: " << graph->feature_dim() << "-d";
  if (graph->has_labels()) {
    std::cout << "; anomalies: " << graph->num_anomalies() << "/"
              << graph->num_nodes() << " ("
              << FormatFloat(100.0 * graph->num_anomalies() /
                                 graph->num_nodes(),
                             2)
              << "%)";
  } else {
    std::cout << "; unlabeled";
  }
  std::cout << "\n";
  if (args.time) {
    std::cout << "load time: " << FormatFloat(load_ms, 2) << " ms\n";
  }
  return 0;
}

/// "node,<name>..." header then one row per node. Scores are printed with
/// %.17g, which round-trips doubles exactly: diffing two of these CSVs is
/// a bit-equality check (the CI serve-smoke job relies on it).
Status WriteScoresCsv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& columns) {
  std::ofstream file;
  std::ostream* out = &std::cout;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      return Status::NotFound(
          StrFormat("cannot open %s for writing", path.c_str()));
    }
    out = &file;
  }
  *out << "node";
  for (const std::string& name : names) *out << "," << name;
  *out << "\n";
  const size_t n = columns.empty() ? 0 : columns[0].size();
  for (size_t i = 0; i < n; ++i) {
    *out << i;
    for (const std::vector<double>& column : columns) {
      *out << "," << StrFormat("%.17g", column[i]);
    }
    *out << "\n";
  }
  out->flush();
  if (!out->good()) {
    return Status::Internal(StrFormat("write to %s failed",
                                      path.empty() ? "stdout" : path.c_str()));
  }
  return Status::OK();
}

/// Reads the first score column of a WriteScoresCsv file ("node,score" with
/// a header row). Rows must be the ascending 0..n-1 node ids that
/// WriteScoresCsv emits.
Result<std::vector<double>> ReadScoresCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError(StrFormat("%s: empty file", path.c_str()));
  }
  std::vector<double> scores;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected node,score", path.c_str(), line_no));
    }
    scores.push_back(std::strtod(line.c_str() + comma + 1, nullptr));
  }
  return scores;
}

/// The serve --parity gate: AUC of this run's scores vs the reference CSV's
/// on the dataset labels must agree within --parity-tol. Returns the process
/// exit code (0 pass, 1 fail); no-op without --parity.
int CheckAucParity(const CliArgs& args, const MultiplexGraph& graph,
                   const std::vector<double>& scores) {
  if (args.parity.empty()) return 0;
  if (!graph.has_labels()) {
    std::cerr << "--parity needs a labeled dataset (AUC is undefined)\n";
    return 1;
  }
  Result<std::vector<double>> ref = ReadScoresCsv(args.parity);
  if (!ref.ok()) return FailWith(ref.status());
  if (ref->size() != scores.size()) {
    std::cerr << args.parity << ": " << ref->size() << " scores but graph has "
              << scores.size() << " nodes\n";
    return 1;
  }
  const double auc = RocAuc(scores, graph.labels());
  const double ref_auc = RocAuc(*ref, graph.labels());
  const double delta = std::abs(auc - ref_auc);
  const bool pass = delta <= args.parity_tol;
  std::cerr << StrFormat(
      "parity: precision=%s auc=%.6f ref_auc=%.6f |dAUC|=%.3g tol=%.3g %s\n",
      args.precision.c_str(), auc, ref_auc, delta, args.parity_tol,
      pass ? "OK" : "FAIL");
  return pass ? 0 : 1;
}

int CmdTrain(const CliArgs& args) {
  if (args.positional.size() != 1) return Usage();
  if (args.save_model.empty()) {
    std::cerr << "train needs --save-model PATH." << kModelExtension << "\n";
    return 2;
  }
  LoadDatasetOptions load = LoadOptionsFrom(args);
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  if (!graph.ok()) return FailWith(graph.status());
  // The same config surface `run` gives its UMGAD entry, so a train/run
  // pair with identical flags produces identical scores.
  UmgadConfig config;
  config.seed = args.seed;
  if (args.epochs > 0) config.epochs = args.epochs;
  config.partitions = args.partitions;
  if (args.partition_method == "hdrf") {
    config.partition_method = PartitionMethod::kHdrf;
  }
  UmgadModel model(config);
  WallTimer timer;
  const Status fitted = model.Fit(*graph);
  if (!fitted.ok()) return FailWith(fitted);
  Result<TrainedModel> trained = TrainedModel::FromFitted(model, *graph);
  if (!trained.ok()) return FailWith(trained.status());
  const Status saved = trained->Save(args.save_model);
  if (!saved.ok()) return FailWith(saved);
  std::cout << args.save_model << ": " << trained->weights().size()
            << " weight tensors (" << graph->Summary() << "; fit "
            << FormatFloat(timer.ElapsedMillis() / 1000.0, 2) << " s)\n";
  return 0;
}

/// Reads the --stream input ("+|- src dst rel" lines) and hands every
/// update to `apply` in order. Returns the number of updates delivered,
/// or -1 after reporting a parse/apply error to stderr.
int64_t ReplayStream(const CliArgs& args,
                     const std::function<Status(const serve::EdgeUpdate&)>&
                         apply) {
  std::ifstream stream_file;
  std::istream* in = &std::cin;
  if (args.stream != "-") {
    stream_file.open(args.stream);
    if (!stream_file) {
      std::cerr << "cannot open stream file " << args.stream << "\n";
      return -1;
    }
    in = &stream_file;
  }
  int64_t delivered = 0;
  int line_no = 0;
  std::string line;
  while (std::getline(*in, line)) {
    ++line_no;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string op;
    serve::EdgeUpdate update;
    if (!(fields >> op >> update.src >> update.dst >> update.relation) ||
        (op != "+" && op != "-")) {
      std::cerr << args.stream << ":" << line_no
                << ": expected '+|- src dst rel', got: " << line << "\n";
      return -1;
    }
    update.add = op == "+";
    const Status status = apply(update);
    if (!status.ok()) {
      std::cerr << args.stream << ":" << line_no << ": " << status.ToString()
                << "\n";
      return -1;
    }
    ++delivered;
  }
  return delivered;
}

/// The --shards path: the same stream replayed through a ShardRouter.
/// Once drained, the published snapshot is bit-identical to the flat
/// scorer's, so the CSV byte-diffs clean against the single-scorer run
/// (the CI cli-smoke job holds us to that).
int ServeSharded(const CliArgs& args, TrainedModel trained,
                 const MultiplexGraph& graph) {
  serve::RouterOptions options;
  options.num_shards = args.shards;
  if (args.queue_capacity > 0) options.queue_capacity = args.queue_capacity;
  {
    Result<dispatch::Precision> prec = dispatch::ParsePrecision(args.precision);
    if (!prec.ok()) return FailWith(prec.status());
    options.serve.precision = *prec;
  }
  auto router = serve::ShardRouter::Create(std::move(trained), graph, options);
  if (!router.ok()) return FailWith(router.status());

  if (!args.stream.empty()) {
    WallTimer timer;
    const int64_t submitted =
        ReplayStream(args, [&](const serve::EdgeUpdate& update) {
          (*router)->Submit({update});
          return Status::OK();
        });
    if (submitted < 0) return 1;
    (*router)->Flush();
    const double seconds = timer.ElapsedMillis() / 1000.0;
    const serve::RouterStats stats = (*router)->Stats();
    // Invalid updates surface only after the asynchronous apply; every
    // shard rejects the same ones, so report the per-replica count.
    if (stats.total_rejected > 0) {
      std::cerr << args.stream << ": "
                << stats.total_rejected / args.shards
                << " updates were invalid against the evolving graph\n";
      return 1;
    }
    std::cerr << "applied " << submitted << " updates across "
              << args.shards << " shards in "
              << FormatFloat(seconds * 1000.0, 2) << " ms ("
              << FormatFloat(seconds > 0 ? submitted / seconds : 0.0, 0)
              << " edges/s)\n";
  }
  if (args.metrics) {
    std::cerr << FormatRouterStats((*router)->Stats());
    std::cerr << KernelSummaryLine(args.precision) << "\n";
  }

  const std::vector<double> scores = (*router)->Snapshot()->scores;
  const Status written = WriteScoresCsv(args.save_scores, {"score"}, {scores});
  if (!written.ok()) return FailWith(written);
  if (!args.save_scores.empty()) {
    std::cerr << args.save_scores << ": " << scores.size() << " scores\n";
  }
  return CheckAucParity(args, graph, scores);
}

int CmdServe(const CliArgs& args) {
  if (args.positional.size() != 1) return Usage();
  if (args.model.empty()) {
    std::cerr << "serve needs --model PATH." << kModelExtension << "\n";
    return 2;
  }
  if (args.naive && args.replay_batch) {
    std::cerr << "--naive and --replay-batch are mutually exclusive\n";
    return 2;
  }
  if (args.shards > 0 && (args.naive || args.replay_batch)) {
    std::cerr << "--shards serves the incremental path only (no --naive/"
                 "--replay-batch)\n";
    return 2;
  }
  LoadDatasetOptions load = LoadOptionsFrom(args);
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  if (!graph.ok()) return FailWith(graph.status());
  Result<TrainedModel> trained = TrainedModel::Load(args.model);
  if (!trained.ok()) return FailWith(trained.status());
  if (args.shards > 0) {
    return ServeSharded(args, *std::move(trained), *graph);
  }
  serve::ServeOptions serve_options;
  {
    Result<dispatch::Precision> prec = dispatch::ParsePrecision(args.precision);
    if (!prec.ok()) return FailWith(prec.status());
    serve_options.precision = *prec;
  }
  if (args.replay_batch &&
      serve_options.precision != dispatch::Precision::kFp32) {
    std::cerr << "--replay-batch replays the fp32 training tape; it has no "
                 "quantized form (drop --precision)\n";
    return 2;
  }
  auto scorer =
      serve::OnlineScorer::Create(*std::move(trained), *graph, serve_options);
  if (!scorer.ok()) return FailWith(scorer.status());

  if (!args.stream.empty()) {
    WallTimer timer;
    const int64_t applied =
        ReplayStream(args, [&](const serve::EdgeUpdate& update) {
          return (*scorer)->ApplyEdgeUpdate(update);
        });
    if (applied < 0) return 1;
    const double seconds = timer.ElapsedMillis() / 1000.0;
    const serve::ServeStats& stats = (*scorer)->stats();
    std::cerr << "applied " << applied << " updates in "
              << FormatFloat(seconds * 1000.0, 2) << " ms ("
              << FormatFloat(seconds > 0 ? applied / seconds : 0.0, 0)
              << " edges/s); cache " << stats.cache_hits << " hits / "
              << stats.cache_misses << " misses\n";
  }
  if (args.metrics) {
    const serve::ServeStats& stats = (*scorer)->stats();
    const int64_t lookups = stats.cache_hits + stats.cache_misses;
    std::cerr << "scorer: updates=" << stats.updates_applied
              << " cache_hits=" << stats.cache_hits
              << " cache_misses=" << stats.cache_misses << " hit_rate="
              << FormatFloat(lookups > 0 ? static_cast<double>(
                                               stats.cache_hits) /
                                               lookups
                                         : 0.0,
                             4)
              << " last_dirty_rows=" << stats.last_dirty_rows
              << " last_rescored_nodes=" << stats.last_rescored_nodes << "\n";
    std::cerr << KernelSummaryLine(args.precision) << "\n";
  }

  std::vector<double> scores;
  if (args.replay_batch) {
    Result<std::vector<double>> replay = (*scorer)->BatchReplayScores();
    if (!replay.ok()) return FailWith(replay.status());
    scores = *std::move(replay);
  } else if (args.naive) {
    scores = (*scorer)->RescoreFullNaive();
  } else {
    scores = (*scorer)->scores();
  }
  const Status written = WriteScoresCsv(args.save_scores, {"score"}, {scores});
  if (!written.ok()) return FailWith(written);
  if (!args.save_scores.empty()) {
    std::cerr << args.save_scores << ": " << scores.size() << " scores\n";
  }
  return CheckAucParity(args, *graph, scores);
}

int CmdRun(const CliArgs& args) {
  if (args.positional.size() != 1) return Usage();
  LoadDatasetOptions load = LoadOptionsFrom(args);
  Result<MultiplexGraph> graph = LoadDataset(args.positional[0], load);
  if (!graph.ok()) return FailWith(graph.status());
  std::cout << graph->Summary() << "\n\n";

  // UMGAD plus one chosen baseline by default; --detector/--baseline
  // override the roster entirely.
  std::vector<std::string> roster = args.detectors;
  if (roster.empty()) roster = {"UMGAD", "DOMINANT"};
  else if (std::find(roster.begin(), roster.end(), "UMGAD") == roster.end()) {
    roster.insert(roster.begin(), "UMGAD");
  }
  const bool labeled = graph->has_labels();
  TablePrinter table;
  if (labeled) {
    table.SetHeader({"Method", "AUC", "Macro-F1", "Pred./true anomalies",
                     "Fit (s)"});
  } else {
    table.SetHeader({"Method", "Predicted anomalies", "Threshold",
                     "Fit (s)"});
  }
  std::vector<std::string> score_names;
  std::vector<std::vector<double>> score_columns;
  for (const std::string& name : roster) {
    Result<std::unique_ptr<Detector>> detector = [&] {
      // --epochs/--partitions steer the UMGAD run directly; baselines keep
      // their published training budgets (and have no partitioned path).
      if (name == "UMGAD" && (args.epochs > 0 || args.partitions > 0)) {
        UmgadConfig config;
        config.seed = args.seed;
        if (args.epochs > 0) config.epochs = args.epochs;
        config.partitions = args.partitions;
        if (args.partition_method == "hdrf") {
          config.partition_method = PartitionMethod::kHdrf;
        }
        return Result<std::unique_ptr<Detector>>(
            std::unique_ptr<Detector>(new UmgadModel(config)));
      }
      return MakeDetector(name, args.seed);
    }();
    if (!detector.ok()) return FailWith(detector.status());
    const Status fitted = (*detector)->Fit(*graph);
    if (!fitted.ok()) return FailWith(fitted);
    if (!args.save_scores.empty()) {
      score_names.push_back(name);
      score_columns.push_back((*detector)->scores());
    }
    if (labeled) {
      const RunResult run = EvaluateFitted(
          **detector, *graph,
          args.threshold == "topk" ? ThresholdMode::kTopKLeakage
                                   : ThresholdMode::kInflection);
      table.AddRow({name, FormatFloat(run.auc, 3),
                    FormatFloat(run.macro_f1, 3),
                    StrFormat("%d/%d", run.predicted_anomalies,
                              graph->num_anomalies()),
                    FormatFloat(run.fit_seconds, 2)});
    } else {
      const ThresholdResult threshold =
          SelectThresholdInflection((*detector)->scores());
      table.AddRow({name, StrFormat("%d", threshold.num_predicted),
                    FormatFloat(threshold.threshold, 4),
                    FormatFloat((*detector)->fit_seconds(), 2)});
    }
    std::cerr << "  done: " << name << "\n";
  }
  table.Print(std::cout);
  if (!labeled) {
    std::cout << "\n(no ground-truth labels: scores + label-free threshold "
                 "only; --inject marks up unlabeled edge-list imports)\n";
  }
  if (!args.save_scores.empty()) {
    const Status written =
        WriteScoresCsv(args.save_scores, score_names, score_columns);
    if (!written.ok()) return FailWith(written);
    std::cerr << args.save_scores << ": raw scores for "
              << Join(score_names, ", ") << "\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (!args.kernel.empty()) {
    // Unlike the UMGAD_KERNEL env var (warn-only), an explicit flag that
    // does not resolve is an error.
    const Status s =
        dispatch::KernelRegistry::Global()->SetOverride(args.kernel);
    if (!s.ok()) {
      std::cerr << "--kernel: " << s.ToString() << "\n";
      return 2;
    }
  }
  if (args.command == "list") return CmdList(args);
  if (args.command == "gen") return CmdGen(args);
  if (args.command == "convert") return CmdConvert(args);
  if (args.command == "inspect") return CmdInspect(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "serve") return CmdServe(args);
  return Usage();
}

}  // namespace
}  // namespace umgad

int main(int argc, char** argv) { return umgad::Main(argc, argv); }
