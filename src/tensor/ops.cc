#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/thread_pool.h"

namespace umgad {
namespace ag {

namespace {

/// Reusable per-thread scratch for the loss-backward ownership buckets
/// (MaskedEdgeSoftmaxCE and DualContrastiveLoss below). The bucket shapes
/// repeat exactly across training steps, so after the first backward of a
/// run every ScratchSized/ScratchZeroed call is served from the existing
/// capacity and steady-state backwards perform zero scratch mallocs
/// (asserted in pool_test). Safe as thread_local: wide-backward closures
/// run one at a time on any given thread, and the ParallelFor workers they
/// fan out to only read the owning thread's buckets.
struct LossScratch {
  std::vector<int64_t> ptr;
  std::vector<int64_t> fill;
  std::vector<int> other;
  std::vector<double> delta;
  std::vector<int> inc;
};

LossScratch& TlsLossScratch() {
  thread_local LossScratch scratch;
  return scratch;
}

std::atomic<int64_t> g_loss_scratch_fresh_bytes{0};

/// Size `v` to `n` elements, reusing capacity; counts fresh allocations.
template <typename T>
std::vector<T>& ScratchSized(std::vector<T>& v, size_t n) {
  if (v.capacity() < n) {
    g_loss_scratch_fresh_bytes.fetch_add(
        static_cast<int64_t>(n * sizeof(T)), std::memory_order_relaxed);
    v.reserve(n);
  }
  v.resize(n);
  return v;
}

/// Like ScratchSized, but every element reset to zero.
template <typename T>
std::vector<T>& ScratchZeroed(std::vector<T>& v, size_t n) {
  if (v.capacity() < n) {
    g_loss_scratch_fresh_bytes.fetch_add(
        static_cast<int64_t>(n * sizeof(T)), std::memory_order_relaxed);
    v.reserve(n);
  }
  v.assign(n, T{});
  return v;
}

/// Grain sizes for the parallel hot loops (shared with src/tensor/tensor.cc
/// via common/thread_pool.h).
constexpr int64_t kElemGrain = kParallelElemGrain;
constexpr int64_t kRowGrain = kParallelRowGrain;

/// All ops funnel through this helper: the node is drawn from the global
/// tape (transient — reclaimed by Tape::Reset()), requires a gradient iff
/// any input does, and the backward closure is only attached in that case.
VarPtr MakeNode(Tensor value, const VarPtr* inputs, uint32_t n,
                const char* op, std::function<void(Node*)>&& backward) {
  bool needs_grad = false;
  for (uint32_t i = 0; i < n; ++i) {
    needs_grad = needs_grad || inputs[i]->requires_grad();
  }
  Tape& tape = Tape::Global();
  Node* node = tape.NewNode(std::move(value), needs_grad, op,
                            /*persistent=*/false);
  node->set_inputs(tape.CopyInputs(inputs, n), n);
  if (needs_grad) node->set_backward(std::move(backward));
  return VarPtr(node);
}

VarPtr MakeNode(Tensor value, std::initializer_list<VarPtr> inputs,
                const char* op, std::function<void(Node*)> backward) {
  return MakeNode(std::move(value), inputs.begin(),
                  static_cast<uint32_t>(inputs.size()), op,
                  std::move(backward));
}

VarPtr MakeNode(Tensor value, const std::vector<VarPtr>& inputs,
                const char* op, std::function<void(Node*)> backward) {
  return MakeNode(std::move(value), inputs.data(),
                  static_cast<uint32_t>(inputs.size()), op,
                  std::move(backward));
}

bool Wants(const VarPtr& v) { return v->requires_grad(); }

/// Grain for fan-outs over edge-candidate sets (each set is an O(nc * d)
/// softmax, heavier than one row).
constexpr int64_t kSetGrain = 16;

/// True if `idx` names any row twice. The parallel ScaledCosine backward
/// needs exclusive row ownership; duplicate targets fall back to the
/// serial scatter (they do not occur on the trained paths, where masks are
/// drawn without replacement).
bool HasDuplicateRows(const std::vector<int>& idx) {
  std::vector<int> sorted = idx;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

/// Regroup a loss's scatter positions 0..m-1 by the partition block of the
/// row each position touches (key(k) -> global row), producing a schedule
/// ForEachRowBlocked can iterate. Positions stay ascending within a block
/// (stable counting sort), and every position is still processed exactly
/// once by one thread, so the blocked sweep computes the same floats as the
/// flat one — it only changes which rows a worker touches consecutively.
template <typename KeyFn>
std::shared_ptr<const RowBlocks> PositionBlocks(const RowBlocks* rows,
                                                int64_t m, KeyFn&& key) {
  if (rows == nullptr || rows->num_blocks <= 1) return nullptr;
  const int p = rows->num_blocks;
  auto out = std::make_shared<RowBlocks>();
  out->num_blocks = p;
  out->block_of.resize(m);
  out->block_ptr.assign(p + 1, 0);
  for (int64_t k = 0; k < m; ++k) {
    out->block_of[k] = rows->block_of[key(k)];
    ++out->block_ptr[out->block_of[k] + 1];
  }
  for (int b = 0; b < p; ++b) out->block_ptr[b + 1] += out->block_ptr[b];
  out->order.resize(m);
  std::vector<int64_t> fill(out->block_ptr.begin(),
                            out->block_ptr.end() - 1);
  for (int64_t k = 0; k < m; ++k) {
    out->order[fill[out->block_of[k]]++] = static_cast<int>(k);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Elementwise / linear algebra
// ---------------------------------------------------------------------------

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  UMGAD_CHECK(a->value().SameShape(b->value()));
  return MakeNode(umgad::Add(a->value(), b->value()), {a, b}, "add",
                  [](Node* self) {
                    const Tensor& g = self->grad();
                    const auto& in = self->inputs();
                    if (Wants(in[0])) in[0]->grad().AddInPlace(g);
                    if (Wants(in[1])) in[1]->grad().AddInPlace(g);
                  });
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  UMGAD_CHECK(a->value().SameShape(b->value()));
  return MakeNode(umgad::Sub(a->value(), b->value()), {a, b}, "sub",
                  [](Node* self) {
                    const Tensor& g = self->grad();
                    const auto& in = self->inputs();
                    if (Wants(in[0])) in[0]->grad().AddInPlace(g);
                    if (Wants(in[1])) in[1]->grad().AxpyInPlace(-1.0f, g);
                  });
}

VarPtr AddN(const std::vector<VarPtr>& xs) {
  UMGAD_CHECK(!xs.empty());
  Tensor acc = xs[0]->value();
  for (size_t i = 1; i < xs.size(); ++i) acc.AddInPlace(xs[i]->value());
  return MakeNode(std::move(acc), xs, "addn", [](Node* self) {
    const Tensor& g = self->grad();
    for (const auto& in : self->inputs()) {
      if (Wants(in)) in->grad().AddInPlace(g);
    }
  });
}

VarPtr Hadamard(const VarPtr& a, const VarPtr& b) {
  UMGAD_CHECK(a->value().SameShape(b->value()));
  return MakeNode(
      umgad::Hadamard(a->value(), b->value()), {a, b}, "hadamard",
      [](Node* self) {
        const Tensor& g = self->grad();
        const auto& in = self->inputs();
        if (Wants(in[0])) {
          in[0]->grad().AddInPlace(umgad::Hadamard(g, in[1]->value()));
        }
        if (Wants(in[1])) {
          in[1]->grad().AddInPlace(umgad::Hadamard(g, in[0]->value()));
        }
      });
}

VarPtr ScalarMul(const VarPtr& a, float alpha) {
  return MakeNode(Scale(a->value(), alpha), {a}, "scalar_mul",
                  [alpha](Node* self) {
                    const auto& in = self->inputs();
                    if (Wants(in[0])) {
                      in[0]->grad().AxpyInPlace(alpha, self->grad());
                    }
                  });
}

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  return MakeNode(umgad::MatMul(a->value(), b->value()), {a, b}, "matmul",
                  [](Node* self) {
                    const Tensor& g = self->grad();
                    const auto& in = self->inputs();
                    if (Wants(in[0])) {
                      in[0]->grad().AddInPlace(MatMulTransB(g, in[1]->value()));
                    }
                    if (Wants(in[1])) {
                      in[1]->grad().AddInPlace(MatMulTransA(in[0]->value(), g));
                    }
                  });
}

VarPtr Spmm(std::shared_ptr<const SparseMatrix> s, const VarPtr& x) {
  UMGAD_CHECK(s != nullptr);
  return MakeNode(s->Multiply(x->value()), {x}, "spmm",
                  [s](Node* self) {
                    const auto& in = self->inputs();
                    if (Wants(in[0])) {
                      in[0]->grad().AddInPlace(
                          s->MultiplyTransposed(self->grad()));
                    }
                  });
}

VarPtr AddRowBroadcast(const VarPtr& x, const VarPtr& bias) {
  UMGAD_CHECK_EQ(bias->value().rows(), 1);
  UMGAD_CHECK_EQ(bias->value().cols(), x->value().cols());
  Tensor out = x->value();
  const float* b = bias->value().data();
  ParallelFor(out.rows(), kRowGrain, [&out, b](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < r1; ++i) {
      float* row = out.row(i);
      for (int j = 0; j < out.cols(); ++j) row[j] += b[j];
    }
  });
  return MakeNode(std::move(out), {x, bias}, "add_row_broadcast",
                  [](Node* self) {
                    const Tensor& g = self->grad();
                    const auto& in = self->inputs();
                    if (Wants(in[0])) in[0]->grad().AddInPlace(g);
                    if (Wants(in[1])) {
                      float* db = in[1]->grad().data();
                      for (int i = 0; i < g.rows(); ++i) {
                        const float* grow = g.row(i);
                        for (int j = 0; j < g.cols(); ++j) db[j] += grow[j];
                      }
                    }
                  });
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

namespace {

template <typename Fwd, typename BwdFromInOut>
VarPtr UnaryOp(const VarPtr& a, const char* name, Fwd fwd,
               BwdFromInOut dval) {
  Tensor out = a->value();
  float* d = out.data();
  ParallelFor(out.size(), kElemGrain, [d, fwd](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) d[i] = fwd(d[i]);
  });
  return MakeNode(std::move(out), {a}, name, [dval](Node* self) {
    const auto& in = self->inputs();
    if (!Wants(in[0])) return;
    const Tensor& g = self->grad();
    const float* x = in[0]->value().data();
    const float* y = self->value().data();
    const float* gd = g.data();
    float* dx = in[0]->grad().data();
    ParallelFor(g.size(), kElemGrain,
                [dx, gd, x, y, dval](int64_t b, int64_t e) {
                  for (int64_t i = b; i < e; ++i) {
                    dx[i] += gd[i] * dval(x[i], y[i]);
                  }
                });
  });
}

}  // namespace

VarPtr Relu(const VarPtr& a) {
  return UnaryOp(
      a, "relu", [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

VarPtr LeakyRelu(const VarPtr& a, float slope) {
  return UnaryOp(
      a, "leaky_relu",
      [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

VarPtr Sigmoid(const VarPtr& a) {
  return UnaryOp(
      a, "sigmoid",
      [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

VarPtr Tanh(const VarPtr& a) {
  return UnaryOp(
      a, "tanh", [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

VarPtr Elu(const VarPtr& a, float alpha) {
  return UnaryOp(
      a, "elu",
      [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x > 0.0f ? 1.0f : y + alpha; });
}

// ---------------------------------------------------------------------------
// Row / shape ops
// ---------------------------------------------------------------------------

VarPtr RowL2Normalize(const VarPtr& a, float eps) {
  const Tensor& x = a->value();
  Tensor out = x;
  std::vector<float> norms(x.rows());
  ParallelFor(x.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < r1; ++i) {
      double n = x.RowNorm(i);
      norms[i] = static_cast<float>(n);
      if (n < eps) continue;
      float inv = static_cast<float>(1.0 / n);
      float* r = out.row(i);
      for (int j = 0; j < x.cols(); ++j) r[j] *= inv;
    }
  });
  return MakeNode(
      std::move(out), {a}, "row_l2_normalize",
      [norms = std::move(norms), eps](Node* self) {
        const auto& in = self->inputs();
        if (!Wants(in[0])) return;
        const Tensor& g = self->grad();
        const Tensor& y = self->value();
        Tensor& dx = in[0]->grad();
        const int d = g.cols();
        ParallelFor(g.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
          for (int i = static_cast<int>(r0); i < r1; ++i) {
            if (norms[i] < eps) continue;
            const float* grow = g.row(i);
            const float* yrow = y.row(i);
            double gy = 0.0;
            for (int j = 0; j < d; ++j) {
              gy += static_cast<double>(grow[j]) * yrow[j];
            }
            const float inv = 1.0f / norms[i];
            float* dxrow = dx.row(i);
            for (int j = 0; j < d; ++j) {
              dxrow[j] += inv * (grow[j] - static_cast<float>(gy) * yrow[j]);
            }
          }
        });
      });
}

VarPtr GatherRows(const VarPtr& a, std::vector<int> idx) {
  Tensor out = umgad::GatherRows(a->value(), idx);
  return MakeNode(std::move(out), {a}, "gather_rows",
                  [idx = std::move(idx)](Node* self) {
                    const auto& in = self->inputs();
                    if (!Wants(in[0])) return;
                    const Tensor& g = self->grad();
                    Tensor& dx = in[0]->grad();
                    const int d = g.cols();
                    for (size_t i = 0; i < idx.size(); ++i) {
                      const float* grow = g.row(static_cast<int>(i));
                      float* dxrow = dx.row(idx[i]);
                      for (int j = 0; j < d; ++j) dxrow[j] += grow[j];
                    }
                  });
}

VarPtr MaskRows(const VarPtr& a, std::vector<int> masked_idx,
                const VarPtr& token) {
  const Tensor& x = a->value();
  UMGAD_CHECK_EQ(token->value().rows(), 1);
  UMGAD_CHECK_EQ(token->value().cols(), x.cols());
  Tensor out = x;
  const float* tok = token->value().data();
  for (int i : masked_idx) {
    UMGAD_CHECK(i >= 0 && i < x.rows());
    std::copy(tok, tok + x.cols(), out.row(i));
  }
  std::vector<char> is_masked(x.rows(), 0);
  for (int i : masked_idx) is_masked[i] = 1;
  return MakeNode(
      std::move(out), {a, token}, "mask_rows",
      [flags = std::move(is_masked)](Node* self) {
        const Tensor& g = self->grad();
        const auto& in = self->inputs();
        const int d = g.cols();
        if (Wants(in[0])) {
          Tensor& dx = in[0]->grad();
          for (int i = 0; i < g.rows(); ++i) {
            if (flags[i]) continue;
            const float* grow = g.row(i);
            float* dxrow = dx.row(i);
            for (int j = 0; j < d; ++j) dxrow[j] += grow[j];
          }
        }
        if (Wants(in[1])) {
          float* dtok = in[1]->grad().data();
          for (int i = 0; i < g.rows(); ++i) {
            if (!flags[i]) continue;
            const float* grow = g.row(i);
            for (int j = 0; j < d; ++j) dtok[j] += grow[j];
          }
        }
      });
}

VarPtr SimplexWeightedSum(const std::vector<VarPtr>& xs,
                          const VarPtr& logits) {
  const int r_count = static_cast<int>(xs.size());
  UMGAD_CHECK_GT(r_count, 0);
  UMGAD_CHECK_EQ(logits->value().rows(), 1);
  UMGAD_CHECK_EQ(logits->value().cols(), r_count);

  // softmax over logits (stable).
  std::vector<float> w(r_count);
  {
    const float* l = logits->value().data();
    float mx = l[0];
    for (int r = 1; r < r_count; ++r) mx = std::max(mx, l[r]);
    double denom = 0.0;
    for (int r = 0; r < r_count; ++r) {
      w[r] = std::exp(l[r] - mx);
      denom += w[r];
    }
    for (int r = 0; r < r_count; ++r) {
      w[r] = static_cast<float>(w[r] / denom);
    }
  }

  Tensor out(xs[0]->value().rows(), xs[0]->value().cols());
  for (int r = 0; r < r_count; ++r) {
    UMGAD_CHECK(xs[r]->value().SameShape(out));
    out.AxpyInPlace(w[r], xs[r]->value());
  }

  std::vector<VarPtr> inputs = xs;
  inputs.push_back(logits);
  return MakeNode(
      std::move(out), std::move(inputs), "simplex_weighted_sum",
      [w, r_count](Node* self) {
        const Tensor& g = self->grad();
        const auto& in = self->inputs();
        std::vector<double> s(r_count, 0.0);
        for (int r = 0; r < r_count; ++r) {
          const float* xr = in[r]->value().data();
          const float* gd = g.data();
          double acc = 0.0;
          for (int64_t i = 0; i < g.size(); ++i) {
            acc += static_cast<double>(gd[i]) * xr[i];
          }
          s[r] = acc;
          if (Wants(in[r])) in[r]->grad().AxpyInPlace(w[r], g);
        }
        const VarPtr& logits_in = in[r_count];
        if (Wants(logits_in)) {
          double mean_s = 0.0;
          for (int r = 0; r < r_count; ++r) mean_s += w[r] * s[r];
          float* dl = logits_in->grad().data();
          for (int r = 0; r < r_count; ++r) {
            dl[r] += static_cast<float>(w[r] * (s[r] - mean_s));
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

VarPtr Sum(const VarPtr& a) {
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(a->value().Sum());
  return MakeNode(std::move(out), {a}, "sum", [](Node* self) {
    const auto& in = self->inputs();
    if (!Wants(in[0])) return;
    const float gv = self->grad().scalar();
    Tensor& dx = in[0]->grad();
    float* d = dx.data();
    for (int64_t i = 0; i < dx.size(); ++i) d[i] += gv;
  });
}

VarPtr Mean(const VarPtr& a) {
  const int64_t n = a->value().size();
  UMGAD_CHECK_GT(n, 0);
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(a->value().Sum() / static_cast<double>(n));
  return MakeNode(std::move(out), {a}, "mean", [n](Node* self) {
    const auto& in = self->inputs();
    if (!Wants(in[0])) return;
    const float gv = self->grad().scalar() / static_cast<float>(n);
    Tensor& dx = in[0]->grad();
    float* d = dx.data();
    for (int64_t i = 0; i < dx.size(); ++i) d[i] += gv;
  });
}

// ---------------------------------------------------------------------------
// Fused losses
// ---------------------------------------------------------------------------

VarPtr ScaledCosineLoss(const VarPtr& recon, const Tensor& target,
                        std::vector<int> idx, float eta,
                        std::shared_ptr<const RowBlocks> blocks) {
  UMGAD_CHECK(recon->value().SameShape(target));
  UMGAD_CHECK(!idx.empty());
  UMGAD_CHECK_GE(eta, 1.0f);
  constexpr double kEps = 1e-12;

  const Tensor& r = recon->value();
  const int m = static_cast<int>(idx.size());
  // Block-affine schedule over the index pool: positions grouped by the
  // partition block of their target row, so one worker streams rows that
  // live together in cache.
  const std::shared_ptr<const RowBlocks> pool_blocks =
      PositionBlocks(blocks.get(), m, [&](int64_t k) { return idx[k]; });
  std::vector<double> cos(m, 0.0);
  std::vector<double> rnorm(m, 0.0);
  std::vector<double> tnorm(m, 0.0);
  std::vector<double> term(m, 0.0);
  // Phase 1 — per-row cosines and loss terms in parallel (slot k is owned
  // by the thread that processes it; every term is computed exactly as the
  // serial loop computes it).
  ForEachRowBlocked(m, pool_blocks.get(), kRowGrain, [&](int k) {
    const int i = idx[k];
    rnorm[k] = r.RowNorm(i);
    tnorm[k] = target.RowNorm(i);
    if (rnorm[k] < kEps || tnorm[k] < kEps) {
      cos[k] = 0.0;
    } else {
      cos[k] = r.RowDot(i, target, i) / (rnorm[k] * tnorm[k]);
      cos[k] = std::clamp(cos[k], -1.0, 1.0);
    }
    term[k] = std::pow(1.0 - cos[k], static_cast<double>(eta));
  });
  // Phase 2 — scalar sum in index order: the serial loop's accumulation.
  double loss = 0.0;
  for (int k = 0; k < m; ++k) loss += term[k];
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / m);

  VarPtr node = MakeNode(
      std::move(out), {recon}, "scaled_cosine_loss",
      [idx = std::move(idx), target, eta, cos = std::move(cos),
       rnorm = std::move(rnorm), tnorm = std::move(tnorm),
       pool_blocks](Node* self) {
        const auto& in = self->inputs();
        if (!Wants(in[0])) return;
        const double gv = self->grad().scalar();
        const Tensor& r = in[0]->value();
        Tensor& dr = in[0]->grad();
        const int m = static_cast<int>(idx.size());
        const int d = r.cols();
        auto row_grad = [&](int k) {
          if (rnorm[k] < kEps || tnorm[k] < kEps) return;
          const int i = idx[k];
          // dL/dcos = -(eta/m) * (1 - cos)^(eta-1)
          const double dldc =
              -gv * (static_cast<double>(eta) / m) *
              std::pow(std::max(0.0, 1.0 - cos[k]),
                       static_cast<double>(eta) - 1.0);
          const double inv_rt = 1.0 / (rnorm[k] * tnorm[k]);
          const double c_over_r2 = cos[k] / (rnorm[k] * rnorm[k]);
          const float* rrow = r.row(i);
          const float* trow = target.row(i);
          float* drrow = dr.row(i);
          for (int j = 0; j < d; ++j) {
            drrow[j] += static_cast<float>(
                dldc * (trow[j] * inv_rt - c_over_r2 * rrow[j]));
          }
        };
        // Serial when idx aliases rows (the blocked/parallel sweep needs
        // exclusive row ownership) or when flat single-threaded anyway;
        // otherwise each k writes only dr.row(idx[k]), which it owns
        // exclusively, so the blocked sweep is race-free and order-proof —
        // it runs even at one thread to keep the cache-blocked row order.
        if (ThreadPool::InParallelRegion() || HasDuplicateRows(idx) ||
            (NumThreads() == 1 && pool_blocks == nullptr)) {
          for (int k = 0; k < m; ++k) row_grad(k);
        } else {
          ForEachRowBlocked(m, pool_blocks.get(), kRowGrain, row_grad);
        }
      });
  node->set_wide_backward(true);
  return node;
}

VarPtr ScaledCosineLossNaive(const VarPtr& recon, const Tensor& target,
                             std::vector<int> idx, float eta) {
  UMGAD_CHECK(recon->value().SameShape(target));
  UMGAD_CHECK(!idx.empty());
  UMGAD_CHECK_GE(eta, 1.0f);
  constexpr double kEps = 1e-12;

  // The seed's serial loops, kept verbatim as the differential oracle for
  // the row-partitioned kernel above.
  const Tensor& r = recon->value();
  const int m = static_cast<int>(idx.size());
  std::vector<double> cos(m, 0.0);
  std::vector<double> rnorm(m, 0.0);
  std::vector<double> tnorm(m, 0.0);
  double loss = 0.0;
  for (int k = 0; k < m; ++k) {
    const int i = idx[k];
    rnorm[k] = r.RowNorm(i);
    tnorm[k] = target.RowNorm(i);
    if (rnorm[k] < kEps || tnorm[k] < kEps) {
      cos[k] = 0.0;
    } else {
      cos[k] = r.RowDot(i, target, i) / (rnorm[k] * tnorm[k]);
      cos[k] = std::clamp(cos[k], -1.0, 1.0);
    }
    loss += std::pow(1.0 - cos[k], static_cast<double>(eta));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / m);

  return MakeNode(
      std::move(out), {recon}, "scaled_cosine_loss_naive",
      [idx = std::move(idx), target, eta, cos = std::move(cos),
       rnorm = std::move(rnorm), tnorm = std::move(tnorm)](Node* self) {
        const auto& in = self->inputs();
        if (!Wants(in[0])) return;
        const double gv = self->grad().scalar();
        const Tensor& r = in[0]->value();
        Tensor& dr = in[0]->grad();
        const int m = static_cast<int>(idx.size());
        const int d = r.cols();
        for (int k = 0; k < m; ++k) {
          if (rnorm[k] < kEps || tnorm[k] < kEps) continue;
          const int i = idx[k];
          // dL/dcos = -(eta/m) * (1 - cos)^(eta-1)
          const double dldc =
              -gv * (static_cast<double>(eta) / m) *
              std::pow(std::max(0.0, 1.0 - cos[k]),
                       static_cast<double>(eta) - 1.0);
          const double inv_rt = 1.0 / (rnorm[k] * tnorm[k]);
          const double c_over_r2 = cos[k] / (rnorm[k] * rnorm[k]);
          const float* rrow = r.row(i);
          const float* trow = target.row(i);
          float* drrow = dr.row(i);
          for (int j = 0; j < d; ++j) {
            drrow[j] += static_cast<float>(
                dldc * (trow[j] * inv_rt - c_over_r2 * rrow[j]));
          }
        }
      });
}

VarPtr MseLoss(const VarPtr& recon, const Tensor& target,
               std::vector<int> idx) {
  UMGAD_CHECK(recon->value().SameShape(target));
  if (idx.empty()) {
    idx.resize(recon->value().rows());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  }
  const Tensor& r = recon->value();
  const int d = r.cols();
  const double denom = static_cast<double>(idx.size()) * d;
  double loss = 0.0;
  for (int i : idx) {
    const float* rr = r.row(i);
    const float* tr = target.row(i);
    for (int j = 0; j < d; ++j) {
      const double diff = static_cast<double>(rr[j]) - tr[j];
      loss += diff * diff;
    }
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / denom);
  return MakeNode(std::move(out), {recon}, "mse_loss",
                  [idx = std::move(idx), target, denom](Node* self) {
                    const auto& in = self->inputs();
                    if (!Wants(in[0])) return;
                    const double gv = self->grad().scalar();
                    const Tensor& r = in[0]->value();
                    Tensor& dr = in[0]->grad();
                    const int d = r.cols();
                    const double coef = gv * 2.0 / denom;
                    for (int i : idx) {
                      const float* rr = r.row(i);
                      const float* tr = target.row(i);
                      float* drr = dr.row(i);
                      for (int j = 0; j < d; ++j) {
                        drr[j] += static_cast<float>(
                            coef * (static_cast<double>(rr[j]) - tr[j]));
                      }
                    }
                  });
}

VarPtr MaskedEdgeSoftmaxCE(const VarPtr& z,
                           std::vector<EdgeCandidateSet> sets,
                           std::shared_ptr<const RowBlocks> blocks) {
  UMGAD_CHECK(!sets.empty());
  const Tensor& zv = z->value();
  const int m = static_cast<int>(sets.size());
  // Block-affine schedule over the sets, keyed by source row (the row
  // every candidate dot of the set streams against).
  const std::shared_ptr<const RowBlocks> set_blocks = PositionBlocks(
      blocks.get(), m, [&](int64_t e) { return sets[e].src; });
  std::vector<std::vector<float>> probs(m);
  std::vector<double> term(m, 0.0);
  // Phase 1 — per-set softmaxes fan out (slot e owned by its thread).
  ForEachRowBlocked(m, set_blocks.get(), kSetGrain, [&](int e) {
    const auto& set = sets[e];
    UMGAD_CHECK(!set.cands.empty());
    const int nc = static_cast<int>(set.cands.size());
    std::vector<double> scores(nc);
    double mx = -1e300;
    for (int c = 0; c < nc; ++c) {
      scores[c] = zv.RowDot(set.src, zv, set.cands[c]);
      mx = std::max(mx, scores[c]);
    }
    double denom = 0.0;
    for (int c = 0; c < nc; ++c) {
      scores[c] = std::exp(scores[c] - mx);
      denom += scores[c];
    }
    probs[e].resize(nc);
    for (int c = 0; c < nc; ++c) {
      probs[e][c] = static_cast<float>(scores[c] / denom);
    }
    term[e] = -std::log(std::max(static_cast<double>(probs[e][0]), 1e-30));
  });
  // Phase 2 — scalar sum in set order (the serial accumulation).
  double loss = 0.0;
  for (int e = 0; e < m; ++e) loss += term[e];
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / m);

  VarPtr node = MakeNode(
      std::move(out), {z}, "masked_edge_softmax_ce",
      [sets = std::move(sets), probs = std::move(probs),
       blocks = std::move(blocks)](Node* self) {
        const auto& in = self->inputs();
        if (!Wants(in[0])) return;
        const double gv = self->grad().scalar();
        const Tensor& zv = in[0]->value();
        Tensor& dz = in[0]->grad();
        const int d = zv.cols();
        const int n = zv.rows();
        const double coef = gv / static_cast<double>(sets.size());
        const RowBlocks* row_blocks =
            (blocks != nullptr &&
             static_cast<int64_t>(blocks->block_of.size()) == n)
                ? blocks.get()
                : nullptr;
        if (ThreadPool::InParallelRegion() ||
            (NumThreads() == 1 && row_blocks == nullptr)) {
          // One flat lane (or inlined inside an outer fan-out): the
          // ownership buckets below would cost an O(C + N) build with
          // nothing to gain, so run the serial scatter directly —
          // bit-identical by the oracle contract, just cheaper. With a
          // partition attached the bucketed path runs even at one thread,
          // for the cache-blocked destination-row order.
          for (size_t e = 0; e < sets.size(); ++e) {
            const auto& set = sets[e];
            const float* zsrc = zv.row(set.src);
            float* dzsrc = dz.row(set.src);
            for (size_t c = 0; c < set.cands.size(); ++c) {
              const double delta =
                  coef * (probs[e][c] - (c == 0 ? 1.0 : 0.0));
              const float* zc = zv.row(set.cands[c]);
              float* dzc = dz.row(set.cands[c]);
              for (int j = 0; j < d; ++j) {
                dzsrc[j] += static_cast<float>(delta * zc[j]);
                dzc[j] += static_cast<float>(delta * zsrc[j]);
              }
            }
          }
          return;
        }
        // Sources and candidates alias freely across sets, so the serial
        // scatter cannot be partitioned by set. Two-phase ownership trick:
        // every (set, candidate) pair contributes delta * z.row(cand) to
        // dz.row(src) and delta * z.row(src) to dz.row(cand) — bucket both
        // contributions by *destination* row in the serial
        // (set, candidate, src-before-cand) order, then scatter with each
        // destination row owned by exactly one thread. Per element, the
        // additions land in the serial loop's order, so the result is
        // bit-identical for any UMGAD_THREADS.
        LossScratch& scratch = TlsLossScratch();
        std::vector<int64_t>& ptr = ScratchZeroed(scratch.ptr, n + 1);
        for (const auto& set : sets) {
          for (int c : set.cands) {
            ++ptr[set.src + 1];
            ++ptr[c + 1];
          }
        }
        for (int v = 0; v < n; ++v) ptr[v + 1] += ptr[v];
        std::vector<int>& other =
            ScratchSized(scratch.other, static_cast<size_t>(ptr[n]));
        std::vector<double>& delta =
            ScratchSized(scratch.delta, static_cast<size_t>(ptr[n]));
        std::vector<int64_t>& fill = ScratchSized(scratch.fill, n);
        std::copy(ptr.begin(), ptr.end() - 1, fill.begin());
        for (size_t e = 0; e < sets.size(); ++e) {
          const auto& set = sets[e];
          for (size_t c = 0; c < set.cands.size(); ++c) {
            const double dl = coef * (probs[e][c] - (c == 0 ? 1.0 : 0.0));
            const int cand = set.cands[c];
            int64_t slot = fill[set.src]++;
            other[slot] = cand;
            delta[slot] = dl;
            slot = fill[cand]++;
            other[slot] = set.src;
            delta[slot] = dl;
          }
        }
        ForEachRowBlocked(n, row_blocks, kRowGrain, [&](int v) {
          if (ptr[v] == ptr[v + 1]) return;
          float* dzrow = dz.row(v);
          for (int64_t p = ptr[v]; p < ptr[v + 1]; ++p) {
            const float* zrow = zv.row(other[p]);
            const double dl = delta[p];
            for (int j = 0; j < d; ++j) {
              dzrow[j] += static_cast<float>(dl * zrow[j]);
            }
          }
        });
      });
  node->set_wide_backward(true);
  return node;
}

VarPtr MaskedEdgeSoftmaxCENaive(const VarPtr& z,
                                std::vector<EdgeCandidateSet> sets) {
  UMGAD_CHECK(!sets.empty());
  // The seed's serial loops, kept as the differential oracle.
  const Tensor& zv = z->value();
  const int m = static_cast<int>(sets.size());
  std::vector<std::vector<float>> probs(m);
  double loss = 0.0;
  for (int e = 0; e < m; ++e) {
    const auto& set = sets[e];
    UMGAD_CHECK(!set.cands.empty());
    const int nc = static_cast<int>(set.cands.size());
    std::vector<double> scores(nc);
    double mx = -1e300;
    for (int c = 0; c < nc; ++c) {
      scores[c] = zv.RowDot(set.src, zv, set.cands[c]);
      mx = std::max(mx, scores[c]);
    }
    double denom = 0.0;
    for (int c = 0; c < nc; ++c) {
      scores[c] = std::exp(scores[c] - mx);
      denom += scores[c];
    }
    probs[e].resize(nc);
    for (int c = 0; c < nc; ++c) {
      probs[e][c] = static_cast<float>(scores[c] / denom);
    }
    loss += -std::log(std::max(static_cast<double>(probs[e][0]), 1e-30));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / m);

  return MakeNode(
      std::move(out), {z}, "masked_edge_softmax_ce_naive",
      [sets = std::move(sets), probs = std::move(probs)](Node* self) {
        const auto& in = self->inputs();
        if (!Wants(in[0])) return;
        const double gv = self->grad().scalar();
        const Tensor& zv = in[0]->value();
        Tensor& dz = in[0]->grad();
        const int d = zv.cols();
        const double coef = gv / static_cast<double>(sets.size());
        for (size_t e = 0; e < sets.size(); ++e) {
          const auto& set = sets[e];
          const float* zsrc = zv.row(set.src);
          float* dzsrc = dz.row(set.src);
          for (size_t c = 0; c < set.cands.size(); ++c) {
            const double delta =
                coef * (probs[e][c] - (c == 0 ? 1.0 : 0.0));
            const float* zc = zv.row(set.cands[c]);
            float* dzc = dz.row(set.cands[c]);
            for (int j = 0; j < d; ++j) {
              dzsrc[j] += static_cast<float>(delta * zc[j]);
              dzc[j] += static_cast<float>(delta * zsrc[j]);
            }
          }
        }
      });
}

VarPtr PairDotBceLoss(const VarPtr& a, const VarPtr& b,
                      std::vector<float> labels) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  UMGAD_CHECK_EQ(av.rows(), bv.rows());
  UMGAD_CHECK_EQ(av.cols(), bv.cols());
  UMGAD_CHECK_EQ(static_cast<size_t>(av.rows()), labels.size());
  const int m = av.rows();
  double loss = 0.0;
  std::vector<float> sig(m);
  for (int i = 0; i < m; ++i) {
    const double s = av.RowDot(i, bv, i);
    // Numerically stable BCE-with-logits.
    loss += std::max(s, 0.0) - s * labels[i] + std::log1p(std::exp(-std::abs(s)));
    sig[i] = static_cast<float>(1.0 / (1.0 + std::exp(-s)));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / m);
  return MakeNode(
      std::move(out), {a, b}, "pair_dot_bce",
      [labels = std::move(labels), sig = std::move(sig)](Node* self) {
        const auto& in = self->inputs();
        const double gv = self->grad().scalar();
        const Tensor& av = in[0]->value();
        const Tensor& bv = in[1]->value();
        const int m = av.rows();
        const int d = av.cols();
        const double coef = gv / m;
        for (int i = 0; i < m; ++i) {
          const double dls = coef * (sig[i] - labels[i]);
          if (Wants(in[0])) {
            float* da = in[0]->grad().row(i);
            const float* br = bv.row(i);
            for (int j = 0; j < d; ++j) {
              da[j] += static_cast<float>(dls * br[j]);
            }
          }
          if (Wants(in[1])) {
            float* db = in[1]->grad().row(i);
            const float* ar = av.row(i);
            for (int j = 0; j < d; ++j) {
              db[j] += static_cast<float>(dls * ar[j]);
            }
          }
        }
      });
}

VarPtr DualContrastiveLoss(const VarPtr& zo, const VarPtr& za,
                           std::vector<int> neg_idx,
                           std::shared_ptr<const RowBlocks> blocks) {
  const Tensor& o = zo->value();
  const Tensor& a = za->value();
  UMGAD_CHECK(o.SameShape(a));
  UMGAD_CHECK_EQ(static_cast<size_t>(o.rows()), neg_idx.size());
  const int n = o.rows();
  // The loss is dense over all n rows, so the graph's RowBlocks schedule
  // applies directly (dropped if it does not cover these rows).
  const RowBlocks* fwd_blocks =
      (blocks != nullptr &&
       static_cast<int64_t>(blocks->block_of.size()) == n)
          ? blocks.get()
          : nullptr;
  std::vector<double> term(n, 0.0);
  std::vector<float> sig1(n);
  std::vector<float> sig2(n);
  // Phase 1 — per-row dot products / log-sum-exp in parallel.
  ForEachRowBlocked(n, fwd_blocks, kRowGrain, [&](int i) {
    const int j = neg_idx[i];
    const double sp = o.RowDot(i, a, i);
    const double s1 = o.RowDot(i, o, j);
    const double s2 = o.RowDot(i, a, j);
    const double mx = std::max(s1, s2);
    const double lse = mx + std::log(std::exp(s1 - mx) + std::exp(s2 - mx));
    term[i] = -sp + lse;
    sig1[i] = static_cast<float>(std::exp(s1 - lse));
    sig2[i] = static_cast<float>(std::exp(s2 - lse));
  });
  // Phase 2 — scalar sum in row order.
  double loss = 0.0;
  for (int i = 0; i < n; ++i) loss += term[i];
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / n);
  VarPtr node = MakeNode(
      std::move(out), {zo, za}, "dual_contrastive",
      [neg_idx = std::move(neg_idx), sig1 = std::move(sig1),
       sig2 = std::move(sig2), blocks = std::move(blocks)](Node* self) {
        const auto& in = self->inputs();
        const double gv = self->grad().scalar();
        const Tensor& o = in[0]->value();
        const Tensor& a = in[1]->value();
        const int n = o.rows();
        const int d = o.cols();
        const double coef = gv / n;
        const bool wo = Wants(in[0]);
        const bool wa = Wants(in[1]);
        if (!wo && !wa) return;
        const RowBlocks* row_blocks =
            (blocks != nullptr &&
             static_cast<int64_t>(blocks->block_of.size()) == n)
                ? blocks.get()
                : nullptr;
        // Negatives are shared (many i can draw the same j), so the serial
        // scatter cannot be partitioned by i. Ownership trick: each
        // destination row v receives its own term (i == v) plus one term
        // per incoming negative (neg_idx[i] == v); bucket the incoming i's
        // by v (counting sort, stable, so each bucket is ascending in i)
        // and apply every row's contributions in ascending-i order — the
        // serial order — with the row owned by one thread.
        LossScratch& scratch = TlsLossScratch();
        std::vector<int64_t>& ptr = ScratchZeroed(scratch.ptr, n + 1);
        for (int i = 0; i < n; ++i) ++ptr[neg_idx[i] + 1];
        for (int v = 0; v < n; ++v) ptr[v + 1] += ptr[v];
        std::vector<int>& inc = ScratchSized(scratch.inc, n);
        {
          std::vector<int64_t>& fill = ScratchSized(scratch.fill, n);
          std::copy(ptr.begin(), ptr.end() - 1, fill.begin());
          for (int i = 0; i < n; ++i) inc[fill[neg_idx[i]]++] = i;
        }
        if (wo) {
          Tensor& dzo = in[0]->grad();
          ForEachRowBlocked(n, row_blocks, kRowGrain, [&](int v) {
            float* dv = dzo.row(v);
            int64_t p = ptr[v];
            const int64_t end = ptr[v + 1];
            // Incoming negatives with i < v land before row v's own
            // term, the rest after. A self-negative (neg_idx[v] == v,
            // excluded by the samplers but harmless) ties at i == v and
            // lands after the own term — the serial doi-before-doj order.
            for (; p < end && inc[p] < v; ++p) {
              const int i = inc[p];
              const float* oi = o.row(i);
              for (int k = 0; k < d; ++k) {
                dv[k] += static_cast<float>(coef * sig1[i] * oi[k]);
              }
            }
            {
              const int j = neg_idx[v];
              const float* av = a.row(v);
              const float* oj = o.row(j);
              const float* aj = a.row(j);
              for (int k = 0; k < d; ++k) {
                dv[k] += static_cast<float>(
                    coef * (-av[k] + sig1[v] * oj[k] + sig2[v] * aj[k]));
              }
            }
            for (; p < end; ++p) {
              const int i = inc[p];
              const float* oi = o.row(i);
              for (int k = 0; k < d; ++k) {
                dv[k] += static_cast<float>(coef * sig1[i] * oi[k]);
              }
            }
          });
        }
        if (wa) {
          Tensor& dza = in[1]->grad();
          ForEachRowBlocked(n, row_blocks, kRowGrain, [&](int v) {
            float* dv = dza.row(v);
            int64_t p = ptr[v];
            const int64_t end = ptr[v + 1];
            for (; p < end && inc[p] < v; ++p) {
              const int i = inc[p];
              const float* oi = o.row(i);
              for (int k = 0; k < d; ++k) {
                dv[k] += static_cast<float>(coef * sig2[i] * oi[k]);
              }
            }
            {
              const float* ov = o.row(v);
              for (int k = 0; k < d; ++k) {
                dv[k] += static_cast<float>(-coef * ov[k]);
              }
            }
            for (; p < end; ++p) {
              const int i = inc[p];
              const float* oi = o.row(i);
              for (int k = 0; k < d; ++k) {
                dv[k] += static_cast<float>(coef * sig2[i] * oi[k]);
              }
            }
          });
        }
      });
  node->set_wide_backward(true);
  return node;
}

VarPtr DualContrastiveLossNaive(const VarPtr& zo, const VarPtr& za,
                                std::vector<int> neg_idx) {
  // The seed's serial loops, kept as the differential oracle.
  const Tensor& o = zo->value();
  const Tensor& a = za->value();
  UMGAD_CHECK(o.SameShape(a));
  UMGAD_CHECK_EQ(static_cast<size_t>(o.rows()), neg_idx.size());
  const int n = o.rows();
  double loss = 0.0;
  std::vector<float> sig1(n);
  std::vector<float> sig2(n);
  for (int i = 0; i < n; ++i) {
    const int j = neg_idx[i];
    const double sp = o.RowDot(i, a, i);
    const double s1 = o.RowDot(i, o, j);
    const double s2 = o.RowDot(i, a, j);
    const double mx = std::max(s1, s2);
    const double lse = mx + std::log(std::exp(s1 - mx) + std::exp(s2 - mx));
    loss += -sp + lse;
    sig1[i] = static_cast<float>(std::exp(s1 - lse));
    sig2[i] = static_cast<float>(std::exp(s2 - lse));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / n);
  return MakeNode(
      std::move(out), {zo, za}, "dual_contrastive_naive",
      [neg_idx = std::move(neg_idx), sig1 = std::move(sig1),
       sig2 = std::move(sig2)](Node* self) {
        const auto& in = self->inputs();
        const double gv = self->grad().scalar();
        const Tensor& o = in[0]->value();
        const Tensor& a = in[1]->value();
        const int n = o.rows();
        const int d = o.cols();
        const double coef = gv / n;
        const bool wo = Wants(in[0]);
        const bool wa = Wants(in[1]);
        for (int i = 0; i < n; ++i) {
          const int j = neg_idx[i];
          const float* oi = o.row(i);
          const float* oj = o.row(j);
          const float* ai = a.row(i);
          const float* aj = a.row(j);
          if (wo) {
            float* doi = in[0]->grad().row(i);
            float* doj = in[0]->grad().row(j);
            for (int k = 0; k < d; ++k) {
              doi[k] += static_cast<float>(
                  coef * (-ai[k] + sig1[i] * oj[k] + sig2[i] * aj[k]));
              doj[k] += static_cast<float>(coef * sig1[i] * oi[k]);
            }
          }
          if (wa) {
            float* dai = in[1]->grad().row(i);
            float* daj = in[1]->grad().row(j);
            for (int k = 0; k < d; ++k) {
              dai[k] += static_cast<float>(-coef * oi[k]);
              daj[k] += static_cast<float>(coef * sig2[i] * oi[k]);
            }
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Graph attention
// ---------------------------------------------------------------------------

void EdgeSoftmaxForward(const SparseMatrix& adj, float slope, const Tensor& h,
                        const Tensor& a_src, const Tensor& a_dst, Tensor* out,
                        std::vector<float>* alpha, std::vector<char>* pos) {
  const int n = h.rows();
  const int d = h.cols();
  // Block-affine when the adjacency carries a partition schedule; the
  // per-row arithmetic is untouched, so the floats match the flat sweep.
  const std::shared_ptr<const RowBlocks> blocks = adj.row_blocks();

  // Per-node projections s_i = <a_src, h_i>, t_i = <a_dst, h_i>.
  std::vector<double> s(n, 0.0);
  std::vector<double> t(n, 0.0);
  const float* asv = a_src.data();
  const float* adv = a_dst.data();
  ForEachRowBlocked(n, blocks.get(), kRowGrain, [&](int i) {
    const float* hr = h.row(i);
    double ss = 0.0;
    double tt = 0.0;
    for (int j = 0; j < d; ++j) {
      ss += static_cast<double>(asv[j]) * hr[j];
      tt += static_cast<double>(adv[j]) * hr[j];
    }
    s[i] = ss;
    t[i] = tt;
  });

  const auto& row_ptr = adj.row_ptr();
  const auto& cols = adj.col_idx();
  alpha->assign(adj.nnz(), 0.0f);
  pos->assign(adj.nnz(), 0);  // pre-activation sign per edge
  *out = Tensor(n, d);
  std::vector<float>& al = *alpha;
  std::vector<char>& sg = *pos;
  // Row-partitioned: node i owns its edge slice [row_ptr[i], row_ptr[i+1])
  // of alpha/pos and its output row, so the parallel sweep is race-free and
  // thread-count invariant.
  ForEachRowBlocked(n, blocks.get(), kRowGrain, [&](int i) {
    const int64_t begin = row_ptr[i];
    const int64_t end = row_ptr[i + 1];
    if (begin == end) return;
    double mx = -1e300;
    for (int64_t k = begin; k < end; ++k) {
      const double zraw = s[i] + t[cols[k]];
      sg[k] = zraw > 0.0 ? 1 : 0;
      const double e = zraw > 0.0 ? zraw : slope * zraw;
      al[k] = static_cast<float>(e);
      mx = std::max(mx, e);
    }
    double denom = 0.0;
    for (int64_t k = begin; k < end; ++k) {
      al[k] = static_cast<float>(std::exp(al[k] - mx));
      denom += al[k];
    }
    float* orow = out->row(i);
    for (int64_t k = begin; k < end; ++k) {
      al[k] = static_cast<float>(al[k] / denom);
      const float* hj = h.row(cols[k]);
      for (int j = 0; j < d; ++j) orow[j] += al[k] * hj[j];
    }
  });
}

void EdgeSoftmaxForwardNaive(const SparseMatrix& adj, float slope,
                             const Tensor& h, const Tensor& a_src,
                             const Tensor& a_dst, Tensor* out,
                             std::vector<float>* alpha,
                             std::vector<char>* pos) {
  const int n = h.rows();
  const int d = h.cols();
  std::vector<double> s(n, 0.0);
  std::vector<double> t(n, 0.0);
  const float* asv = a_src.data();
  const float* adv = a_dst.data();
  for (int i = 0; i < n; ++i) {
    const float* hr = h.row(i);
    double ss = 0.0;
    double tt = 0.0;
    for (int j = 0; j < d; ++j) {
      ss += static_cast<double>(asv[j]) * hr[j];
      tt += static_cast<double>(adv[j]) * hr[j];
    }
    s[i] = ss;
    t[i] = tt;
  }

  const auto& row_ptr = adj.row_ptr();
  const auto& cols = adj.col_idx();
  alpha->assign(adj.nnz(), 0.0f);
  pos->assign(adj.nnz(), 0);
  *out = Tensor(n, d);
  std::vector<float>& al = *alpha;
  std::vector<char>& sg = *pos;
  for (int i = 0; i < n; ++i) {
    const int64_t begin = row_ptr[i];
    const int64_t end = row_ptr[i + 1];
    if (begin == end) continue;
    double mx = -1e300;
    for (int64_t k = begin; k < end; ++k) {
      const double zraw = s[i] + t[cols[k]];
      sg[k] = zraw > 0.0 ? 1 : 0;
      const double e = zraw > 0.0 ? zraw : slope * zraw;
      al[k] = static_cast<float>(e);
      mx = std::max(mx, e);
    }
    double denom = 0.0;
    for (int64_t k = begin; k < end; ++k) {
      al[k] = static_cast<float>(std::exp(al[k] - mx));
      denom += al[k];
    }
    float* orow = out->row(i);
    for (int64_t k = begin; k < end; ++k) {
      al[k] = static_cast<float>(al[k] / denom);
      const float* hj = h.row(cols[k]);
      for (int j = 0; j < d; ++j) orow[j] += al[k] * hj[j];
    }
  }
}

void EdgeSoftmaxBackward(const SparseMatrix& adj, float slope,
                         const std::vector<float>& alpha,
                         const std::vector<char>& pos,
                         const EdgeSoftmaxGrads& io) {
  const Tensor& g = *io.g;
  const Tensor& hv = *io.h;
  const int n = hv.rows();
  const int d = hv.cols();
  const auto& row_ptr = adj.row_ptr();
  const auto& cols = adj.col_idx();
  const bool wh = io.dh != nullptr;
  // Block-affine when the adjacency carries a partition schedule.
  const std::shared_ptr<const RowBlocks> blocks = adj.row_blocks();

  std::vector<double> ds(n, 0.0);
  std::vector<double> dt(n, 0.0);
  std::vector<double> dz(static_cast<size_t>(adj.nnz()), 0.0);

  // Phase 1 — per-edge pre-activation gradients, owned by the source row
  // (node i owns its edge slice of dz, plus ds[i]). Arithmetic per edge is
  // the serial loop's, including the ascending-k `weighted` and ds sums.
  ForEachRowBlocked(n, blocks.get(), kRowGrain, [&](int i) {
    const int64_t begin = row_ptr[i];
    const int64_t end = row_ptr[i + 1];
    if (begin == end) return;
    const float* grow = g.row(i);
    // dalpha_k = <g_i, h_{j_k}>, then softmax backward.
    double weighted = 0.0;
    for (int64_t k = begin; k < end; ++k) {
      const float* hj = hv.row(cols[k]);
      double acc = 0.0;
      for (int j = 0; j < d; ++j) {
        acc += static_cast<double>(grow[j]) * hj[j];
      }
      dz[k] = acc;
      weighted += alpha[k] * acc;
    }
    double dsi = 0.0;
    for (int64_t k = begin; k < end; ++k) {
      const double de = alpha[k] * (dz[k] - weighted);
      const double z = pos[k] ? de : slope * de;
      dz[k] = z;
      dsi += z;
    }
    ds[i] = dsi;
  });

  // Phase 2 — the dt / dh scatter, partitioned by *destination* node via
  // the cached incoming-edge index: every dt[v] / dh row v is written by
  // exactly one thread, and its contributions apply in ascending CSR
  // position — the order the serial all-rows scatter touches node v — so
  // the floats match the naive loop bit-for-bit.
  const std::shared_ptr<const SparseMatrix::IncomingIndex> inc =
      adj.incoming_index();
  ForEachRowBlocked(n, blocks.get(), kRowGrain, [&](int v) {
    const int64_t begin = inc->node_ptr[v];
    const int64_t end = inc->node_ptr[v + 1];
    double acc = 0.0;
    float* dhv = wh ? io.dh->row(v) : nullptr;
    for (int64_t p = begin; p < end; ++p) {
      const int64_t k = inc->edge[p];
      acc += dz[k];
      if (wh) {
        // Aggregation term: dH_v += alpha * g_i for each incoming i.
        const float* grow = g.row(inc->src[p]);
        for (int j = 0; j < d; ++j) {
          dhv[j] += alpha[k] * grow[j];
        }
      }
    }
    dt[v] = acc;
  });

  const float* asv = io.a_src->data();
  const float* adv = io.a_dst->data();
  // Phase 3 — per-row a_src/a_dst terms into dh (row-owned).
  if (wh) {
    Tensor& dh = *io.dh;
    ForEachRowBlocked(n, blocks.get(), kRowGrain, [&](int i) {
      float* dhr = dh.row(i);
      for (int j = 0; j < d; ++j) {
        dhr[j] += static_cast<float>(ds[i] * asv[j] + dt[i] * adv[j]);
      }
    });
  }
  // Phase 4 — the 1 x d attention-vector reductions stay serial: they
  // accumulate across *all* rows into one output row, and any chunked
  // combine would change the float summation order away from the oracle's.
  if (io.da_src != nullptr) {
    float* das = io.da_src->data();
    for (int i = 0; i < n; ++i) {
      if (ds[i] == 0.0) continue;
      const float* hr = hv.row(i);
      for (int j = 0; j < d; ++j) {
        das[j] += static_cast<float>(ds[i] * hr[j]);
      }
    }
  }
  if (io.da_dst != nullptr) {
    float* dad = io.da_dst->data();
    for (int i = 0; i < n; ++i) {
      if (dt[i] == 0.0) continue;
      const float* hr = hv.row(i);
      for (int j = 0; j < d; ++j) {
        dad[j] += static_cast<float>(dt[i] * hr[j]);
      }
    }
  }
}

void EdgeSoftmaxBackwardNaive(const SparseMatrix& adj, float slope,
                              const std::vector<float>& alpha,
                              const std::vector<char>& pos,
                              const EdgeSoftmaxGrads& io) {
  // The seed's serial scatter, kept as the differential oracle.
  const Tensor& g = *io.g;
  const Tensor& hv = *io.h;
  const int n = hv.rows();
  const int d = hv.cols();
  const auto& row_ptr = adj.row_ptr();
  const auto& cols = adj.col_idx();

  std::vector<double> ds(n, 0.0);
  std::vector<double> dt(n, 0.0);
  const bool wh = io.dh != nullptr;

  for (int i = 0; i < n; ++i) {
    const int64_t begin = row_ptr[i];
    const int64_t end = row_ptr[i + 1];
    if (begin == end) continue;
    const float* grow = g.row(i);
    // dalpha_k = <g_i, h_{j_k}>, then softmax backward.
    double weighted = 0.0;
    std::vector<double> dalpha(end - begin);
    for (int64_t k = begin; k < end; ++k) {
      const float* hj = hv.row(cols[k]);
      double acc = 0.0;
      for (int j = 0; j < d; ++j) {
        acc += static_cast<double>(grow[j]) * hj[j];
      }
      dalpha[k - begin] = acc;
      weighted += alpha[k] * acc;
    }
    for (int64_t k = begin; k < end; ++k) {
      const double de = alpha[k] * (dalpha[k - begin] - weighted);
      const double dzk = pos[k] ? de : slope * de;
      ds[i] += dzk;
      dt[cols[k]] += dzk;
      if (wh) {
        // Aggregation term: dH_j += alpha * g_i.
        float* dhj = io.dh->row(cols[k]);
        for (int j = 0; j < d; ++j) {
          dhj[j] += alpha[k] * grow[j];
        }
      }
    }
  }

  const float* asv = io.a_src->data();
  const float* adv = io.a_dst->data();
  if (wh) {
    Tensor& dh = *io.dh;
    for (int i = 0; i < n; ++i) {
      float* dhr = dh.row(i);
      for (int j = 0; j < d; ++j) {
        dhr[j] += static_cast<float>(ds[i] * asv[j] + dt[i] * adv[j]);
      }
    }
  }
  if (io.da_src != nullptr) {
    float* das = io.da_src->data();
    for (int i = 0; i < n; ++i) {
      if (ds[i] == 0.0) continue;
      const float* hr = hv.row(i);
      for (int j = 0; j < d; ++j) {
        das[j] += static_cast<float>(ds[i] * hr[j]);
      }
    }
  }
  if (io.da_dst != nullptr) {
    float* dad = io.da_dst->data();
    for (int i = 0; i < n; ++i) {
      if (dt[i] == 0.0) continue;
      const float* hr = hv.row(i);
      for (int j = 0; j < d; ++j) {
        dad[j] += static_cast<float>(dt[i] * hr[j]);
      }
    }
  }
}

namespace {

/// Shared body of GatAttention / GatAttentionNaive: forward kernel + tape
/// node whose closure routes to the matching backward kernel.
VarPtr MakeGatAttention(const VarPtr& h, const VarPtr& a_src,
                        const VarPtr& a_dst,
                        std::shared_ptr<const SparseMatrix> adj, float slope,
                        bool naive) {
  UMGAD_CHECK(adj != nullptr);
  const Tensor& hv = h->value();
  const int n = hv.rows();
  const int d = hv.cols();
  UMGAD_CHECK_EQ(adj->rows(), n);
  UMGAD_CHECK_EQ(a_src->value().cols(), d);
  UMGAD_CHECK_EQ(a_dst->value().cols(), d);

  Tensor out;
  std::vector<float> alpha;
  std::vector<char> pos;
  if (naive) {
    EdgeSoftmaxForwardNaive(*adj, slope, hv, a_src->value(), a_dst->value(),
                            &out, &alpha, &pos);
  } else {
    EdgeSoftmaxForward(*adj, slope, hv, a_src->value(), a_dst->value(), &out,
                       &alpha, &pos);
    if (h->requires_grad() || a_src->requires_grad() ||
        a_dst->requires_grad()) {
      // Build the ownership index during forward (often already inside the
      // K x R fan-out) rather than lazily inside the first backward batch.
      adj->EnsureIncomingIndex();
    }
  }

  VarPtr node = MakeNode(
      std::move(out), {h, a_src, a_dst},
      naive ? "gat_attention_naive" : "gat_attention",
      [adj, slope, naive, alpha = std::move(alpha),
       pos = std::move(pos)](Node* self) {
        const auto& in = self->inputs();
        EdgeSoftmaxGrads io;
        io.g = &self->grad();
        io.h = &in[0]->value();
        io.a_src = &in[1]->value();
        io.a_dst = &in[2]->value();
        if (Wants(in[0])) io.dh = &in[0]->grad();
        if (Wants(in[1])) io.da_src = &in[1]->grad();
        if (Wants(in[2])) io.da_dst = &in[2]->grad();
        if (naive) {
          EdgeSoftmaxBackwardNaive(*adj, slope, alpha, pos, io);
        } else {
          EdgeSoftmaxBackward(*adj, slope, alpha, pos, io);
        }
      });
  node->set_wide_backward(!naive);
  return node;
}

}  // namespace

VarPtr GatAttention(const VarPtr& h, const VarPtr& a_src, const VarPtr& a_dst,
                    std::shared_ptr<const SparseMatrix> adj, float slope) {
  return MakeGatAttention(h, a_src, a_dst, std::move(adj), slope,
                          /*naive=*/false);
}

VarPtr GatAttentionNaive(const VarPtr& h, const VarPtr& a_src,
                         const VarPtr& a_dst,
                         std::shared_ptr<const SparseMatrix> adj,
                         float slope) {
  return MakeGatAttention(h, a_src, a_dst, std::move(adj), slope,
                          /*naive=*/true);
}

int64_t LossScratchFreshBytes() {
  return g_loss_scratch_fresh_bytes.load(std::memory_order_relaxed);
}

}  // namespace ag
}  // namespace umgad
