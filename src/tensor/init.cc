#include "tensor/init.h"

#include <cmath>

namespace umgad {

Tensor XavierUniform(int rows, int cols, Rng* rng) {
  const double a = std::sqrt(6.0 / (rows + cols));
  return RandomUniform(rows, cols, -a, a, rng);
}

Tensor HeNormal(int rows, int cols, Rng* rng) {
  const double stddev = std::sqrt(2.0 / rows);
  return RandomNormal(rows, cols, 0.0, stddev, rng);
}

Tensor RandomNormal(int rows, int cols, double mean, double stddev, Rng* rng) {
  Tensor t(rows, cols);
  float* d = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    d[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor RandomUniform(int rows, int cols, double lo, double hi, Rng* rng) {
  Tensor t(rows, cols);
  float* d = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    d[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

}  // namespace umgad
