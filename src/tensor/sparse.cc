#include "tensor/sparse.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/thread_pool.h"
#include "graph/io/io_limits.h"
#include "tensor/dispatch/registry.h"

namespace umgad {

namespace {

/// Rows per parallel SpMM chunk. The pool oversubscribes chunks 4x over
/// lanes, so skewed degree distributions still balance.
constexpr int64_t kSpmmRowGrain = 64;

/// Rows per parallel CSR-validation chunk (pure read scan, memory bound).
constexpr int64_t kValidateRowGrain = 4096;

/// Shared validation behind FromCsr and FromBorrowedCsr. The row scan is
/// parallel (chunks of rows are independent once the chunk's starting
/// offset passes its own bounds check), with the first failing row
/// re-diagnosed serially so the Status message is deterministic across
/// thread counts. Each chunk is one flat cursor walk — row_ptr read once
/// per row, columns once each — so the scan runs at memory bandwidth; this
/// is the dominant cost of the mmap load path, which touches nothing else.
/// It never reads outside [0, nnz) of col_idx: the cursor only advances to
/// offsets already proven <= nnz.
Status ValidateCsr(int rows, int cols, ConstSpan<int64_t> row_ptr,
                   ConstSpan<int> col_idx, size_t values_size) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative CSR dimensions");
  }
  // Shared overflow guard (io_limits.h): the loaders hand this validator
  // attacker-controlled dimensions, and downstream consumers form rows x
  // cols products (dense bounds, per-block partition bookkeeping), so the
  // product must fit int64 before any per-row scan runs.
  if (io_limits::CheckedElemCount(rows, cols,
                                  std::numeric_limits<int64_t>::max()) < 0) {
    return Status::InvalidArgument("CSR dimension product overflows");
  }
  if (row_ptr.size() != static_cast<size_t>(rows) + 1) {
    return Status::InvalidArgument("row_ptr size must be rows + 1");
  }
  if (col_idx.size() != values_size) {
    return Status::InvalidArgument("col_idx/values size mismatch");
  }
  const int64_t nnz = static_cast<int64_t>(col_idx.size());
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    return Status::InvalidArgument("row_ptr must span [0, nnz]");
  }
  std::atomic<int64_t> first_bad{std::numeric_limits<int64_t>::max()};
  ParallelFor(rows, kValidateRowGrain, [&](int64_t r0, int64_t r1) {
    auto record = [&](int64_t i) {
      int64_t seen = first_bad.load(std::memory_order_relaxed);
      while (i < seen && !first_bad.compare_exchange_weak(
                             seen, i, std::memory_order_relaxed)) {
      }
    };
    int64_t k = row_ptr[r0];
    if (k < 0 || k > nnz) {
      record(r0);
      return;
    }
    for (int64_t i = r0; i < r1; ++i) {
      const int64_t end = row_ptr[i + 1];
      if (end < k || end > nnz) {
        record(i);
        return;
      }
      int prev = -1;
      for (; k < end; ++k) {
        const int c = col_idx[k];
        // c <= prev subsumes c < 0 on a row's first column (prev == -1).
        if (c <= prev || c >= cols) {
          record(i);
          return;
        }
        prev = c;
      }
    }
  });
  const int64_t bad = first_bad.load(std::memory_order_relaxed);
  if (bad == std::numeric_limits<int64_t>::max()) return Status::OK();
  // Serial re-diagnosis of the lowest failing row: same error strings, in
  // the same precedence, as the historical serial loop. A slice escaping
  // [0, nnz] implies a row_ptr decrease somewhere (back() == nnz), which the
  // historical loop reported as non-monotonic.
  const int i = static_cast<int>(bad);
  const int64_t begin = row_ptr[i];
  const int64_t end = row_ptr[i + 1];
  if (begin > end || begin < 0 || end > nnz) {
    return Status::InvalidArgument("row_ptr is not monotonic");
  }
  for (int64_t k = begin; k < end; ++k) {
    if (col_idx[k] < 0 || col_idx[k] >= cols) {
      return Status::OutOfRange("CSR column index out of range");
    }
    if (k > begin && col_idx[k] <= col_idx[k - 1]) {
      return Status::InvalidArgument(
          "CSR columns must be strictly ascending within each row");
    }
  }
  return Status::InvalidArgument("row_ptr is not monotonic");
}

}  // namespace

SparseMatrix SparseMatrix::FromCoo(int rows, int cols,
                                   const std::vector<int>& coo_rows,
                                   const std::vector<int>& coo_cols,
                                   const std::vector<float>& values) {
  UMGAD_CHECK_EQ(coo_rows.size(), coo_cols.size());
  UMGAD_CHECK_EQ(coo_rows.size(), values.size());
  const size_t nnz_in = coo_rows.size();

  std::vector<size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (coo_rows[a] != coo_rows[b]) return coo_rows[a] < coo_rows[b];
    return coo_cols[a] < coo_cols[b];
  });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_store_.assign(rows + 1, 0);
  m.col_idx_store_.reserve(nnz_in);
  m.values_store_.reserve(nnz_in);

  int prev_r = -1;
  int prev_c = -1;
  for (size_t k = 0; k < nnz_in; ++k) {
    const int r = coo_rows[order[k]];
    const int c = coo_cols[order[k]];
    const float v = values[order[k]];
    UMGAD_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    if (r == prev_r && c == prev_c) {
      m.values_store_.back() += v;  // merge duplicates
      continue;
    }
    m.col_idx_store_.push_back(c);
    m.values_store_.push_back(v);
    m.row_ptr_store_[r + 1] += 1;
    prev_r = r;
    prev_c = c;
  }
  for (int i = 0; i < rows; ++i) m.row_ptr_store_[i + 1] += m.row_ptr_store_[i];
  m.SyncSpans();
  return m;
}

SparseMatrix SparseMatrix::FromEdges(int n, const std::vector<Edge>& edges,
                                     bool symmetrize) {
  std::vector<int> r;
  std::vector<int> c;
  r.reserve(edges.size() * (symmetrize ? 2 : 1));
  c.reserve(r.capacity());
  for (const Edge& e : edges) {
    r.push_back(e.src);
    c.push_back(e.dst);
    if (symmetrize && e.src != e.dst) {
      r.push_back(e.dst);
      c.push_back(e.src);
    }
  }
  std::vector<float> v(r.size(), 1.0f);
  SparseMatrix m = FromCoo(n, n, r, c, v);
  // Clamp merged duplicates back to 1 so the result stays a 0/1 adjacency.
  for (auto& val : m.values_store_) val = 1.0f;
  return m;
}

Result<SparseMatrix> SparseMatrix::FromCsr(int rows, int cols,
                                           std::vector<int64_t> row_ptr,
                                           std::vector<int> col_idx,
                                           std::vector<float> values) {
  UMGAD_RETURN_IF_ERROR(
      ValidateCsr(rows, cols, row_ptr, col_idx, values.size()));
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_store_ = std::move(row_ptr);
  m.col_idx_store_ = std::move(col_idx);
  m.values_store_ = std::move(values);
  m.SyncSpans();
  return m;
}

Result<SparseMatrix> SparseMatrix::FromBorrowedCsr(
    int rows, int cols, ConstSpan<int64_t> row_ptr, ConstSpan<int> col_idx,
    ConstSpan<float> values, std::shared_ptr<const void> payload) {
  UMGAD_CHECK(payload != nullptr);
  UMGAD_RETURN_IF_ERROR(
      ValidateCsr(rows, cols, row_ptr, col_idx, values.size()));
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.payload_ = std::move(payload);
  m.row_ptr_ = row_ptr;
  m.col_idx_ = col_idx;
  m.values_ = values;
  return m;
}

void SparseMatrix::MaterializeOwned() {
  if (payload_ == nullptr) return;
  row_ptr_store_.assign(row_ptr_.begin(), row_ptr_.end());
  col_idx_store_.assign(col_idx_.begin(), col_idx_.end());
  values_store_.assign(values_.begin(), values_.end());
  payload_.reset();
  SyncSpans();
}

SparseMatrix SparseMatrix::Identity(int n) {
  SparseMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.row_ptr_store_.resize(n + 1);
  m.col_idx_store_.resize(n);
  m.values_store_.assign(n, 1.0f);
  for (int i = 0; i < n; ++i) {
    m.row_ptr_store_[i] = i;
    m.col_idx_store_[i] = i;
  }
  m.row_ptr_store_[n] = n;
  m.SyncSpans();
  return m;
}

bool SparseMatrix::Has(int i, int j) const {
  UMGAD_CHECK(i >= 0 && i < rows_);
  auto begin = col_idx_.begin() + row_ptr_[i];
  auto end = col_idx_.begin() + row_ptr_[i + 1];
  return std::binary_search(begin, end, j);
}

// The variant bodies live in dispatch/spmm_variants.cc; both partition by
// output row with the serial per-row nonzero order, so any selection is
// bit-identical for any thread count / schedule.
Tensor SparseMatrix::Multiply(const Tensor& x) const {
  UMGAD_CHECK_EQ(cols_, x.rows());
  return dispatch::KernelRegistry::Global()->spmm()(*this, x);
}

// The seed's serial scatter loop: the CSR walk scatters into
// y.row(col_idx_[k]), so a partition over *input* rows would race on output
// rows. Kept as the oracle the parallel kernel is pinned against.
Tensor SparseMatrix::MultiplyTransposedNaive(const Tensor& x) const {
  UMGAD_CHECK_EQ(rows_, x.rows());
  const int d = x.cols();
  Tensor y(cols_, d);
  for (int i = 0; i < rows_; ++i) {
    const float* xrow = x.row(i);
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const float v = values_[k];
      float* yrow = y.row(col_idx_[k]);
      for (int j = 0; j < d; ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

void SparseMatrix::EnsureTransposedIndex() const {
  // Lock-free publication via the shared_ptr atomic free functions: builds
  // on *different* matrices (each epoch's K x R perturbed operators hit
  // their first backward concurrently) proceed fully in parallel, and
  // cached reads are a single acquire load. Two threads racing on the same
  // matrix may both build; compare-exchange keeps the first — the content
  // is deterministic, so the duplicate is merely discarded work.
  if (std::atomic_load_explicit(&transposed_, std::memory_order_acquire)) {
    return;
  }
  // Counting-sort transpose. Walking rows in ascending order keeps each
  // column bucket sorted by original row index, which is exactly the order
  // the serial scatter loop adds contributions to that output row — the
  // parallel kernel below therefore reproduces its floats bit-for-bit.
  auto t = std::make_shared<TransposedIndex>();
  t->col_ptr.assign(cols_ + 1, 0);
  const int64_t nz = nnz();
  for (int64_t k = 0; k < nz; ++k) t->col_ptr[col_idx_[k] + 1] += 1;
  for (int c = 0; c < cols_; ++c) t->col_ptr[c + 1] += t->col_ptr[c];
  t->row_idx.resize(nz);
  t->values.resize(nz);
  std::vector<int64_t> fill(t->col_ptr.begin(), t->col_ptr.end() - 1);
  for (int i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const int64_t dst = fill[col_idx_[k]]++;
      t->row_idx[dst] = i;
      t->values[dst] = values_[k];
    }
  }
  std::shared_ptr<const TransposedIndex> expected;
  std::atomic_compare_exchange_strong(&transposed_, &expected,
                                      std::shared_ptr<const TransposedIndex>(
                                          std::move(t)));
}

void SparseMatrix::EnsureIncomingIndex() const {
  // Same lock-free publication scheme as EnsureTransposedIndex(). The
  // counting-sort over ascending rows keeps each node's incoming bucket in
  // ascending source-row order — equivalently ascending CSR position, the
  // order a serial all-rows sweep scatters into that node.
  if (std::atomic_load_explicit(&incoming_, std::memory_order_acquire)) {
    return;
  }
  auto t = std::make_shared<IncomingIndex>();
  t->node_ptr.assign(cols_ + 1, 0);
  const int64_t nz = nnz();
  for (int64_t k = 0; k < nz; ++k) t->node_ptr[col_idx_[k] + 1] += 1;
  for (int c = 0; c < cols_; ++c) t->node_ptr[c + 1] += t->node_ptr[c];
  t->src.resize(nz);
  t->edge.resize(nz);
  std::vector<int64_t> fill(t->node_ptr.begin(), t->node_ptr.end() - 1);
  for (int i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const int64_t dst = fill[col_idx_[k]]++;
      t->src[dst] = i;
      t->edge[dst] = k;
    }
  }
  std::shared_ptr<const IncomingIndex> expected;
  std::atomic_compare_exchange_strong(
      &incoming_, &expected,
      std::shared_ptr<const IncomingIndex>(std::move(t)));
}

std::shared_ptr<const SparseMatrix::IncomingIndex>
SparseMatrix::incoming_index() const {
  EnsureIncomingIndex();
  return std::atomic_load_explicit(&incoming_, std::memory_order_acquire);
}

void SparseMatrix::AttachRowBlocks(
    std::shared_ptr<const RowBlocks> blocks) const {
  UMGAD_CHECK(blocks == nullptr ||
              static_cast<int64_t>(blocks->block_of.size()) == rows_);
  std::atomic_store_explicit(&blocks_, std::move(blocks),
                             std::memory_order_release);
}

Tensor SparseMatrix::MultiplyTransposed(const Tensor& x) const {
  UMGAD_CHECK_EQ(rows_, x.rows());
  EnsureTransposedIndex();
  const std::shared_ptr<const TransposedIndex> t =
      std::atomic_load_explicit(&transposed_, std::memory_order_acquire);
  const int d = x.cols();
  Tensor y(cols_, d);
  // Row-partitioned over *output* rows (= original columns): each output
  // row is produced by exactly one task in ascending original-row order,
  // so results are bit-identical to MultiplyTransposedNaive and invariant
  // to UMGAD_THREADS and the schedule (flat or block-affine; square
  // operators reuse the row schedule for their columns).
  const std::shared_ptr<const RowBlocks> blocks = row_blocks();
  ForEachRowBlocked(cols_, blocks.get(), kSpmmRowGrain, [&](int c) {
    float* yrow = y.row(c);
    for (int64_t k = t->col_ptr[c]; k < t->col_ptr[c + 1]; ++k) {
      const float v = t->values[k];
      const float* xrow = x.row(t->row_idx[k]);
      for (int j = 0; j < d; ++j) yrow[j] += v * xrow[j];
    }
  });
  return y;
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      sums[i] += values_[k];
    }
  }
  return sums;
}

SparseMatrix SparseMatrix::NormalizedWithSelfLoops() const {
  UMGAD_CHECK_EQ(rows_, cols_);
  const int n = rows_;
  // Degrees of (S + I).
  std::vector<double> deg = RowSums();
  for (int i = 0; i < n; ++i) deg[i] += 1.0;

  std::vector<int> r;
  std::vector<int> c;
  std::vector<float> v;
  r.reserve(nnz() + n);
  c.reserve(nnz() + n);
  v.reserve(nnz() + n);
  auto inv_sqrt = [&](int i) { return 1.0 / std::sqrt(deg[i]); };
  for (int i = 0; i < n; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const int j = col_idx_[k];
      r.push_back(i);
      c.push_back(j);
      v.push_back(static_cast<float>(values_[k] * inv_sqrt(i) * inv_sqrt(j)));
    }
    r.push_back(i);
    c.push_back(i);
    v.push_back(static_cast<float>(inv_sqrt(i) * inv_sqrt(i)));
  }
  return FromCoo(n, n, r, c, v);
}

SparseMatrix SparseMatrix::RowNormalized() const {
  std::vector<double> deg = RowSums();
  SparseMatrix m = *this;
  m.MaterializeOwned();  // copies of borrowed matrices stay views; unshare
  for (int i = 0; i < rows_; ++i) {
    if (deg[i] <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / deg[i]);
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      m.values_store_[k] *= inv;
    }
  }
  return m;
}

std::vector<Edge> SparseMatrix::ToEdges() const {
  std::vector<Edge> out;
  out.reserve(nnz());
  for (int i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      out.push_back(Edge{i, col_idx_[k]});
    }
  }
  return out;
}

Tensor SparseMatrix::ToDense() const {
  Tensor d(rows_, cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      d.at(i, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

}  // namespace umgad
