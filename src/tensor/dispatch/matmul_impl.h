#ifndef UMGAD_TENSOR_DISPATCH_MATMUL_IMPL_H_
#define UMGAD_TENSOR_DISPATCH_MATMUL_IMPL_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace umgad {
namespace dispatch {

/// Blocked-core geometry, shared by every dense variant (and reused by the
/// int8 panel packing in quantize.cc).
inline constexpr int kMicroRows = 8;   // rows of C per micro-kernel call
inline constexpr int kPanelCols = 64;  // packed-panel width

/// Below this many multiply-adds, packing and dispatch cost more than the
/// whole product; blocked variants fall through to the naive loop.
inline constexpr int64_t kSmallMatMulMuls = 1 << 15;

/// Micro-kernel signatures. The bodies live in matmul_micro.inc and are
/// compiled once per ISA tier (baseline in matmul_variants.cc, AVX2 in
/// simd_avx2.cc) — same C source, different target attribute, so every tier
/// runs the identical ascending-k accumulation and stays bit-identical.
using MicroKernel8Fn = void (*)(const float* a, int64_t lda, const float* bp,
                                float* c, int64_t ldc, int k, int w);
using MicroKernel1Fn = void (*)(const float* a, const float* bp, float* c,
                                int k, int w);

/// The blocked driver: packs B into zero-padded kPanelCols panels, then
/// partitions rows of C across the pool, calling the given micro-kernels.
/// Small products short-circuit to MatMulNaive. Defined in
/// matmul_variants.cc.
Tensor BlockedMatMul(const Tensor& a, const Tensor& b, MicroKernel8Fn micro8,
                     MicroKernel1Fn micro1);

}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_MATMUL_IMPL_H_
