#ifndef UMGAD_TENSOR_DISPATCH_QUANTIZE_H_
#define UMGAD_TENSOR_DISPATCH_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace umgad {
namespace dispatch {

/// Per-row symmetric int8 quantization of a row-major float matrix:
/// codes[i][j] = clamp(round(x[i][j] * 127 / amax_i), -127, 127) with
/// dequant scale scales[i] = amax_i / 127 (0 for an all-zero row, whose
/// codes are all zero — the scale-0 guard). Symmetric, zero-point-free:
/// dequant is codes * scale exactly.
struct QuantizedRows {
  int rows = 0;
  int cols = 0;
  std::vector<int8_t> codes;  // row-major, rows x cols
  std::vector<float> scales;  // per-row dequant scale

  const int8_t* row(int i) const {
    return codes.data() + static_cast<int64_t>(i) * cols;
  }
};

/// Quantizes one row. `codes` must hold n values. Writes the dequant scale.
/// No input validation — callers on the serve hot path quantize activation
/// rows they just computed; use QuantizeRowsInt8 when the input is untrusted.
void QuantizeRowInt8(const float* x, int n, int8_t* codes, float* scale);

/// Quantizes every row of `t`. InvalidArgument if any value is NaN/Inf —
/// a non-finite amax would poison every code in its row silently, so model
/// weights are validated once at load time instead.
Result<QuantizedRows> QuantizeRowsInt8(const Tensor& t);

/// Dequantizes back to float (codes * per-row scale). Round-trip error per
/// element is bounded by scale/2 = amax/254 (tests/quantized_kernels_test).
Tensor DequantizeRowsInt8(const QuantizedRows& q);

/// C[i,j] = (sum_p qa[i,p]*qb[j,p]) * (a.scale[i] * b.scale[j]) — the W8A8
/// product against a transposed (row-major weights) B, int32 accumulation.
/// The integer sum is exact, so every variant is bitwise identical; the
/// registry serves this through KernelOp::kInt8Gemm. Requires
/// a.cols == b.cols and cols <= kInt8GemmMaxDepth (int32 overflow bound).
Tensor Int8GemmTransB(const QuantizedRows& a, const QuantizedRows& b);

/// Depth bound guaranteeing |sum| <= k * 127 * 127 stays inside int32.
inline constexpr int64_t kInt8GemmMaxDepth =
    (static_cast<int64_t>(1) << 31) / (127 * 127) - 1;

/// Serving-path helper: one output row of Int8GemmTransB without
/// materialising the full product. Quantizes the activation row `x` (length
/// k), then accumulates against pre-quantized weights `w` (n x k), writing
/// n floats to `out`. Bit-identical to row i of
/// Int8GemmTransB(QuantizeRowsInt8(X), w) when x == X.row(i).
void Int8GemmRow(const float* x, int k, const QuantizedRows& w, float* out);

}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_QUANTIZE_H_
