#ifndef UMGAD_TENSOR_DISPATCH_PRECISION_H_
#define UMGAD_TENSOR_DISPATCH_PRECISION_H_

#include <string>

#include "common/result.h"

namespace umgad {
namespace dispatch {

/// Numeric precision of the forward-only serving path. Training always runs
/// fp32 — precision is a ServeOptions knob, never a tape property. Under
/// kInt8 the dense projections run the W8A8 kernels and the neighborhood
/// SpMM runs bf16; under kBf16 both run bf16; GAT attention and bias/
/// activation stages stay fp32 in every mode (they are O(edges * 1) and
/// O(n * d) — quantizing them buys nothing and costs accuracy).
enum class Precision {
  kFp32 = 0,
  kInt8,
  kBf16,
};

inline const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
    case Precision::kBf16:
      return "bf16";
  }
  return "?";
}

inline Result<Precision> ParsePrecision(const std::string& name) {
  if (name == "fp32") return Precision::kFp32;
  if (name == "int8") return Precision::kInt8;
  if (name == "bf16") return Precision::kBf16;
  return Status::InvalidArgument("unknown precision \"" + name +
                                 "\" (want fp32, int8, or bf16)");
}

}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_PRECISION_H_
