#include "tensor/dispatch/registry.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "tensor/dispatch/builtin_kernels.h"

namespace umgad {
namespace dispatch {
namespace {

constexpr const char* kOpNames[kNumKernelOps] = {
    "matmul", "matmul_transb", "spmm", "int8_gemm", "bf16_gemm", "bf16_spmm",
};

int OpIndexByName(const std::string& name) {
  for (int i = 0; i < kNumKernelOps; ++i) {
    if (name == kOpNames[i]) return i;
  }
  return -1;
}

}  // namespace

const char* KernelOpName(KernelOp op) {
  return kOpNames[static_cast<int>(op)];
}

KernelRegistry* KernelRegistry::Global() {
  static KernelRegistry* registry = [] {
    KernelRegistry* r = new KernelRegistry();
    RegisterBuiltinMatMul(r);
    RegisterBuiltinSpmm(r);
    RegisterBuiltinInt8(r);
    RegisterBuiltinBf16(r);
    RegisterAvx2Kernels(r);
    RegisterInt8Avx2Kernels(r);
    if (const char* env = std::getenv("UMGAD_KERNEL")) {
      Status s = r->SetOverride(env);
      if (!s.ok()) {
        UMGAD_LOG(Warning) << "UMGAD_KERNEL ignored: " << s.ToString();
      }
    }
    return r;
  }();
  return registry;
}

void KernelRegistry::Register(KernelOp op, KernelVariant variant) {
  std::lock_guard<std::mutex> lock(mu_);
  OpState& st = ops_[static_cast<int>(op)];
  for (const KernelVariant& v : st.variants) {
    UMGAD_CHECK_MSG(v.name != variant.name,
                    "duplicate kernel variant registration");
  }
  st.variants.push_back(std::move(variant));
  st.cached.store(nullptr, std::memory_order_release);
}

Status KernelRegistry::SetOverride(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  // Parse and validate fully before mutating anything.
  struct Pin {
    int op;
    std::string name;
  };
  std::vector<Pin> pins;
  if (spec.find('=') == std::string::npos) {
    // Bare variant name: applies to every op that has a variant of that name.
    bool found = false;
    for (int i = 0; i < kNumKernelOps; ++i) {
      for (const KernelVariant& v : ops_[i].variants) {
        if (v.name == spec) {
          pins.push_back({i, spec});
          found = true;
          break;
        }
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("no kernel variant named \"%s\"", spec.c_str()));
    }
  } else {
    std::stringstream in(spec);
    std::string item;
    while (std::getline(in, item, ',')) {
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("bad kernel override term \"%s\" (want op=name)",
                      item.c_str()));
      }
      const std::string op_name = item.substr(0, eq);
      const std::string var_name = item.substr(eq + 1);
      const int op = OpIndexByName(op_name);
      if (op < 0) {
        return Status::InvalidArgument(
            StrFormat("unknown kernel op \"%s\"", op_name.c_str()));
      }
      bool found = false;
      for (const KernelVariant& v : ops_[op].variants) {
        if (v.name == var_name) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            StrFormat("op \"%s\" has no variant named \"%s\"", op_name.c_str(),
                      var_name.c_str()));
      }
      pins.push_back({op, var_name});
    }
  }
  for (const Pin& p : pins) {
    ops_[p.op].override_name = p.name;
    ops_[p.op].fell_back = false;
    ops_[p.op].cached.store(nullptr, std::memory_order_release);
  }
  return Status::OK();
}

void KernelRegistry::ClearOverrides() {
  std::lock_guard<std::mutex> lock(mu_);
  for (OpState& st : ops_) {
    st.override_name.clear();
    st.fell_back = false;
    st.cached.store(nullptr, std::memory_order_release);
  }
}

void KernelRegistry::InvalidateCache() {
  std::lock_guard<std::mutex> lock(mu_);
  for (OpState& st : ops_) {
    st.cached.store(nullptr, std::memory_order_release);
  }
}

KernelFn KernelRegistry::ResolveLocked(OpState& st) {
  const unsigned features = EffectiveCpuFeatures();
  st.fell_back = false;
  if (!st.override_name.empty()) {
    for (const KernelVariant& v : st.variants) {
      if (v.name != st.override_name) continue;
      if ((v.required_features & ~features) == 0) return v.fn;
      UMGAD_LOG(Warning) << "kernel override \"" << v.name
                         << "\" needs CPU features ["
                         << CpuFeatureListString(v.required_features)
                         << "] unavailable on this host; falling back";
      st.fell_back = true;
      break;
    }
  }
  const KernelVariant* best = nullptr;
  for (const KernelVariant& v : st.variants) {
    if ((v.required_features & ~features) != 0) continue;
    if (best == nullptr || v.priority > best->priority) best = &v;
  }
  UMGAD_CHECK_MSG(best != nullptr, "no eligible kernel variant");
  return best->fn;
}

KernelFn KernelRegistry::Resolve(KernelOp op) {
  OpState& st = ops_[static_cast<int>(op)];
  KernelFn fn = st.cached.load(std::memory_order_acquire);
  if (fn != nullptr) return fn;
  std::lock_guard<std::mutex> lock(mu_);
  fn = st.cached.load(std::memory_order_acquire);
  if (fn != nullptr) return fn;
  fn = ResolveLocked(st);
  st.cached.store(fn, std::memory_order_release);
  return fn;
}

std::vector<KernelSelection> KernelRegistry::Selections() {
  std::vector<KernelSelection> out;
  for (int i = 0; i < kNumKernelOps; ++i) {
    // Resolve outside the lock so fell_back is up to date.
    Resolve(static_cast<KernelOp>(i));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumKernelOps; ++i) {
    OpState& st = ops_[i];
    KernelSelection sel;
    sel.op = static_cast<KernelOp>(i);
    sel.overridden = !st.override_name.empty() && !st.fell_back;
    sel.fell_back = st.fell_back;
    const KernelFn active = st.cached.load(std::memory_order_acquire);
    sel.variants = st.variants;
    std::sort(sel.variants.begin(), sel.variants.end(),
              [](const KernelVariant& a, const KernelVariant& b) {
                return a.priority > b.priority;
              });
    for (const KernelVariant& v : sel.variants) {
      if (v.fn == active) {
        sel.variant = v.name;
        break;
      }
    }
    out.push_back(std::move(sel));
  }
  return out;
}

void SetDisabledCpuFeaturesForTest(unsigned mask) {
  internal::SetDisabledCpuFeatures(mask);
  KernelRegistry::Global()->InvalidateCache();
}

}  // namespace dispatch
}  // namespace umgad
