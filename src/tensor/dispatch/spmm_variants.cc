#include "common/check.h"
#include "tensor/dispatch/builtin_kernels.h"
#include "tensor/dispatch/registry.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace umgad {
namespace dispatch {
namespace {

constexpr int64_t kSpmmRowGrain = 64;

/// The seed's serial CSR row sweep — the oracle every other Spmm variant is
/// pinned against.
Tensor SpmmVariantSerial(const SparseMatrix& s, const Tensor& x) {
  UMGAD_CHECK_EQ(s.cols(), x.rows());
  const int d = x.cols();
  Tensor y(s.rows(), d);
  const ConstSpan<int64_t> row_ptr = s.row_ptr();
  const ConstSpan<int> col_idx = s.col_idx();
  const ConstSpan<float> values = s.values();
  for (int i = 0; i < s.rows(); ++i) {
    float* yrow = y.row(i);
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = values[k];
      const float* xrow = x.row(col_idx[k]);
      for (int j = 0; j < d; ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

/// Row-partitioned: each output row is produced by exactly one task with
/// the same nonzero order, so results are invariant to the thread count and
/// to the schedule — flat row ranges, or block-affine when a partition
/// schedule is attached (each lane then walks whole blocks whose
/// neighbourhoods stay cache-resident).
Tensor SpmmVariantBlocked(const SparseMatrix& s, const Tensor& x) {
  UMGAD_CHECK_EQ(s.cols(), x.rows());
  const int d = x.cols();
  Tensor y(s.rows(), d);
  const ConstSpan<int64_t> row_ptr = s.row_ptr();
  const ConstSpan<int> col_idx = s.col_idx();
  const ConstSpan<float> values = s.values();
  const std::shared_ptr<const RowBlocks> blocks = s.row_blocks();
  ForEachRowBlocked(s.rows(), blocks.get(), kSpmmRowGrain, [&](int i) {
    float* yrow = y.row(i);
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = values[k];
      const float* xrow = x.row(col_idx[k]);
      for (int j = 0; j < d; ++j) yrow[j] += v * xrow[j];
    }
  });
  return y;
}

}  // namespace

void RegisterBuiltinSpmm(KernelRegistry* r) {
  r->Register(KernelOp::kSpmm,
              {"naive", /*priority=*/0, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&SpmmVariantSerial)});
  r->Register(KernelOp::kSpmm,
              {"blocked", /*priority=*/10, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&SpmmVariantBlocked)});
}

}  // namespace dispatch
}  // namespace umgad
