// AVX2 tier of the int8 W8A8 GEMM. The inner product sign-extends 16 codes
// per operand to int16 and reduces with _mm256_madd_epi16 into int32 lanes
// — every partial is exact integer arithmetic, so this tier is bitwise
// identical to the scalar reference no matter how the lanes carve up the
// sum. That is why, unlike the float AVX2 tier (simd_avx2.cc), this TU is
// NOT gated on !UMGAD_MARCH_NATIVE: there is no contraction or rounding
// mode to keep consistent, only exact integers.
//
// Overflow: each madd lane pair is <= 2 * 127^2 and a full dot accumulates
// at most k * 127^2 in absolute value, which kInt8GemmMaxDepth keeps inside
// int32 (checked by Int8GemmTransB); per-lane partials are sums of subsets
// of the same bounded terms.

#include "tensor/dispatch/int8_impl.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/dispatch/builtin_kernels.h"
#include "tensor/dispatch/quantize.h"
#include "tensor/dispatch/registry.h"
#include "tensor/tensor.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

namespace umgad {
namespace dispatch {

namespace internal {

bool Int8DotAvx2Available() { return true; }

__attribute__((target("avx2"))) int32_t Int8DotAvx2(const int8_t* a,
                                                    const int8_t* b, int n) {
  __m256i acc = _mm256_setzero_si256();
  int p = 0;
  for (; p + 16 <= n; p += 16) {
    const __m256i wa = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i wb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
  }
  __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t out = _mm_cvtsi128_si32(sum);
  for (; p < n; ++p) {
    out += static_cast<int32_t>(a[p]) * b[p];
  }
  return out;
}

}  // namespace internal

namespace {

/// Registered batch variant: rows of C partitioned across the pool
/// (row-exclusive writes), one AVX2 dot per output element. The dequant
/// expression is kept literally identical to the scalar variants.
Tensor Int8GemmVariantDotAvx2(const QuantizedRows& a, const QuantizedRows& b) {
  const int k = a.cols;
  Tensor c(a.rows, b.rows);
  ParallelFor(a.rows, 8, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const int8_t* arow = a.row(static_cast<int>(i));
      const float sa = a.scales[i];
      float* crow = c.row(static_cast<int>(i));
      for (int j = 0; j < b.rows; ++j) {
        const int32_t acc = internal::Int8DotAvx2(arow, b.row(j), k);
        crow[j] = static_cast<float>(acc) * (sa * b.scales[j]);
      }
    }
  });
  return c;
}

}  // namespace

void RegisterInt8Avx2Kernels(KernelRegistry* r) {
  r->Register(KernelOp::kInt8Gemm,
              {"dot_avx2", /*priority=*/20, /*required_features=*/kFeatAvx2,
               reinterpret_cast<KernelFn>(&Int8GemmVariantDotAvx2)});
}

}  // namespace dispatch
}  // namespace umgad

#else  // non-x86-64 or non-GCC/Clang: no AVX2 tier in this build.

namespace umgad {
namespace dispatch {

namespace internal {
bool Int8DotAvx2Available() { return false; }
int32_t Int8DotAvx2(const int8_t*, const int8_t*, int) {
  UMGAD_CHECK_MSG(false, "Int8DotAvx2 called in a build without the tier");
  return 0;
}
}  // namespace internal

void RegisterInt8Avx2Kernels(KernelRegistry*) {}

}  // namespace dispatch
}  // namespace umgad

#endif
