#ifndef UMGAD_TENSOR_DISPATCH_REGISTRY_H_
#define UMGAD_TENSOR_DISPATCH_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/dispatch/cpu_features.h"

namespace umgad {

class Tensor;
class SparseMatrix;

namespace dispatch {

struct QuantizedRows;
struct Bf16Matrix;

/// Dispatchable kernel operations. Each op holds one or more named variants;
/// the registry resolves the active variant at first use (highest priority
/// whose required CPU features are available), overridable per-op or globally
/// via UMGAD_KERNEL / KernelRegistry::SetOverride.
enum class KernelOp : int {
  kMatMul = 0,
  kMatMulTransB,
  kSpmm,
  kInt8Gemm,
  kBf16Gemm,
  kBf16Spmm,
};
constexpr int kNumKernelOps = 6;

/// Typed signatures per op. Variants are stored type-erased; the accessors
/// below cast back. All variants of one op must be bit-identical for any
/// thread count / arena setting — the registry is a performance dial, never
/// a semantics dial.
using MatMulFn = Tensor (*)(const Tensor&, const Tensor&);
using SpmmFn = Tensor (*)(const SparseMatrix&, const Tensor&);
using Int8GemmFn = Tensor (*)(const QuantizedRows&, const QuantizedRows&);
using Bf16GemmFn = Tensor (*)(const Bf16Matrix&, const Bf16Matrix&);
using Bf16SpmmFn = Tensor (*)(const SparseMatrix&, const Bf16Matrix&);

using KernelFn = void (*)();

struct KernelVariant {
  std::string name;
  /// Higher wins among variants whose required_features are all available.
  int priority = 0;
  /// CpuFeature mask this variant needs (0 = runs anywhere).
  unsigned required_features = 0;
  KernelFn fn = nullptr;
};

/// Resolved selection for one op, for reporting (inspect --kernels).
struct KernelSelection {
  KernelOp op;
  std::string variant;   // active variant name
  /// True if the active variant was pinned by UMGAD_KERNEL / SetOverride
  /// *and* the pin took effect. A pin whose CPU features are unavailable
  /// reports fell_back instead (the two are mutually exclusive).
  bool overridden;
  bool fell_back;        // true if an override was unusable on this CPU
  std::vector<KernelVariant> variants;  // all registered, priority-descending
};

/// Process-wide kernel registry. Thread-safe; resolution results are cached
/// per op and invalidated by SetOverride / feature-mask changes.
class KernelRegistry {
 public:
  /// The global registry. First call registers the builtin variants and
  /// applies the UMGAD_KERNEL env override (warn-only if invalid).
  static KernelRegistry* Global();

  /// Registers a variant. Duplicate (op, name) is a fatal error.
  void Register(KernelOp op, KernelVariant variant);

  /// Pins variants by name. `spec` is either a bare variant name, applied to
  /// every op that has it, or a comma-separated `op=name` list with op names
  /// matmul, matmul_transb, spmm, int8_gemm, bf16_gemm, bf16_spmm.
  /// Unknown op or variant name → InvalidArgument, no state change. A known
  /// variant whose CPU features are unavailable is accepted; resolution
  /// falls back gracefully (with a warning) at first use.
  Status SetOverride(const std::string& spec);

  /// Clears all overrides (back to priority selection).
  void ClearOverrides();

  /// Resolves the active variant function for `op`.
  KernelFn Resolve(KernelOp op);

  /// Reporting snapshot for every op.
  std::vector<KernelSelection> Selections();

  /// Typed resolution helpers.
  MatMulFn matmul() { return reinterpret_cast<MatMulFn>(Resolve(KernelOp::kMatMul)); }
  MatMulFn matmul_trans_b() {
    return reinterpret_cast<MatMulFn>(Resolve(KernelOp::kMatMulTransB));
  }
  SpmmFn spmm() { return reinterpret_cast<SpmmFn>(Resolve(KernelOp::kSpmm)); }
  Int8GemmFn int8_gemm() {
    return reinterpret_cast<Int8GemmFn>(Resolve(KernelOp::kInt8Gemm));
  }
  Bf16GemmFn bf16_gemm() {
    return reinterpret_cast<Bf16GemmFn>(Resolve(KernelOp::kBf16Gemm));
  }
  Bf16SpmmFn bf16_spmm() {
    return reinterpret_cast<Bf16SpmmFn>(Resolve(KernelOp::kBf16Spmm));
  }

  /// Invalidates cached selections (after a feature-mask change).
  void InvalidateCache();

 private:
  KernelRegistry() = default;

  struct OpState {
    std::vector<KernelVariant> variants;  // insertion order
    std::string override_name;            // empty = no override
    bool fell_back = false;               // last resolution ignored override
    std::atomic<KernelFn> cached{nullptr};
  };

  KernelFn ResolveLocked(OpState& st);

  std::mutex mu_;
  OpState ops_[kNumKernelOps];
};

/// Display name of an op ("matmul", "int8_gemm", ...).
const char* KernelOpName(KernelOp op);

/// Test hook: masks CPU features off (as if the CPU lacked them) and
/// invalidates the registry's cached selections. Pass 0 to restore.
void SetDisabledCpuFeaturesForTest(unsigned mask);

}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_REGISTRY_H_
