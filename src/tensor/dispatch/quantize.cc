#include "tensor/dispatch/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "tensor/dispatch/builtin_kernels.h"
#include "tensor/dispatch/int8_impl.h"
#include "tensor/dispatch/matmul_impl.h"
#include "tensor/dispatch/registry.h"

namespace umgad {
namespace dispatch {

void QuantizeRowInt8(const float* x, int n, int8_t* codes, float* scale) {
  float amax = 0.0f;
  for (int j = 0; j < n; ++j) {
    const float a = std::fabs(x[j]);
    if (a > amax) amax = a;
  }
  if (amax == 0.0f) {
    std::memset(codes, 0, static_cast<size_t>(n));
    *scale = 0.0f;
    return;
  }
  const float inv = 127.0f / amax;
  for (int j = 0; j < n; ++j) {
    long q = std::lrintf(x[j] * inv);
    // lrintf(x * 127/amax) can land on ±128 when |x| == amax and the scale
    // rounds up; clamp keeps the symmetric [-127, 127] code book.
    if (q > 127) q = 127;
    if (q < -127) q = -127;
    codes[j] = static_cast<int8_t>(q);
  }
  *scale = amax / 127.0f;
}

Result<QuantizedRows> QuantizeRowsInt8(const Tensor& t) {
  const float* d = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(d[i])) {
      return Status::InvalidArgument(
          StrFormat("non-finite value at flat index %lld; refusing to "
                    "quantize (a NaN/Inf amax would poison the whole row)",
                    static_cast<long long>(i)));
    }
  }
  QuantizedRows q;
  q.rows = t.rows();
  q.cols = t.cols();
  q.codes.resize(static_cast<size_t>(t.rows()) * t.cols());
  q.scales.resize(t.rows());
  for (int i = 0; i < t.rows(); ++i) {
    QuantizeRowInt8(t.row(i), t.cols(),
                    q.codes.data() + static_cast<int64_t>(i) * t.cols(),
                    &q.scales[i]);
  }
  return q;
}

Tensor DequantizeRowsInt8(const QuantizedRows& q) {
  Tensor t(q.rows, q.cols);
  for (int i = 0; i < q.rows; ++i) {
    const int8_t* codes = q.row(i);
    const float s = q.scales[i];
    float* out = t.row(i);
    for (int j = 0; j < q.cols; ++j) {
      out[j] = static_cast<float>(codes[j]) * s;
    }
  }
  return t;
}

namespace {

/// Serial reference: exact int32 accumulation, one dequant multiply per
/// output. Every other variant reproduces this bitwise — integer sums have
/// no rounding, and the dequant expression float(acc) * (sa * sb) is kept
/// literally identical everywhere.
Tensor Int8GemmVariantNaive(const QuantizedRows& a, const QuantizedRows& b) {
  Tensor c(a.rows, b.rows);
  for (int i = 0; i < a.rows; ++i) {
    const int8_t* arow = a.row(i);
    const float sa = a.scales[i];
    float* crow = c.row(i);
    for (int j = 0; j < b.rows; ++j) {
      const int8_t* brow = b.row(j);
      int32_t acc = 0;
      for (int p = 0; p < a.cols; ++p) {
        acc += static_cast<int32_t>(arow[p]) * brow[p];
      }
      crow[j] = static_cast<float>(acc) * (sa * b.scales[j]);
    }
  }
  return c;
}

/// Packed variant (ruy-style): B rows are packed in groups of kMicroRows
/// interleaved by depth — panel[p * kMicroRows + t] = b.row(j0 + t)[p],
/// zero-padded — so the inner loop reads one contiguous 8-lane stripe per
/// depth step and keeps an 8-wide int32 accumulator tile in registers.
/// Rows of C are partitioned across the pool (row-exclusive writes).
Tensor Int8GemmVariantPacked(const QuantizedRows& a, const QuantizedRows& b) {
  const int m = a.rows;
  const int n = b.rows;
  const int k = a.cols;
  Tensor c(m, n);
  const int panels = (n + kMicroRows - 1) / kMicroRows;
  std::vector<int8_t> packed(static_cast<size_t>(panels) * k * kMicroRows, 0);
  for (int t = 0; t < panels; ++t) {
    const int j0 = t * kMicroRows;
    const int w = std::min(kMicroRows, n - j0);
    int8_t* panel = packed.data() + static_cast<size_t>(t) * k * kMicroRows;
    for (int r = 0; r < w; ++r) {
      const int8_t* brow = b.row(j0 + r);
      for (int p = 0; p < k; ++p) panel[p * kMicroRows + r] = brow[p];
    }
  }
  ParallelFor(m, kMicroRows, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const int8_t* arow = a.row(static_cast<int>(i));
      const float sa = a.scales[i];
      float* crow = c.row(static_cast<int>(i));
      for (int t = 0; t < panels; ++t) {
        const int j0 = t * kMicroRows;
        const int w = std::min(kMicroRows, n - j0);
        const int8_t* panel =
            packed.data() + static_cast<size_t>(t) * k * kMicroRows;
        int32_t acc[kMicroRows] = {0};
        for (int p = 0; p < k; ++p) {
          const int32_t av = arow[p];
          const int8_t* lane = panel + p * kMicroRows;
          for (int r = 0; r < kMicroRows; ++r) {
            acc[r] += av * lane[r];
          }
        }
        for (int r = 0; r < w; ++r) {
          crow[j0 + r] = static_cast<float>(acc[r]) * (sa * b.scales[j0 + r]);
        }
      }
    }
  });
  return c;
}

}  // namespace

Tensor Int8GemmTransB(const QuantizedRows& a, const QuantizedRows& b) {
  UMGAD_CHECK_EQ(a.cols, b.cols);
  UMGAD_CHECK_LE(a.cols, kInt8GemmMaxDepth);
  return KernelRegistry::Global()->int8_gemm()(a, b);
}

void Int8GemmRow(const float* x, int k, const QuantizedRows& w, float* out) {
  UMGAD_CHECK_EQ(k, w.cols);
  std::vector<int8_t> qx(k);
  float sx = 0.0f;
  QuantizeRowInt8(x, k, qx.data(), &sx);
  // The AVX2 dot is exact integer arithmetic, so using it here (outside the
  // registry — this helper is not an op) cannot change a bit of the result;
  // UMGAD_CPU_DISABLE=avx2 still turns it off via the effective mask.
  const bool avx2 = internal::Int8DotAvx2Available() &&
                    (EffectiveCpuFeatures() & kFeatAvx2) != 0;
  for (int j = 0; j < w.rows; ++j) {
    const int8_t* wrow = w.row(j);
    int32_t acc;
    if (avx2) {
      acc = internal::Int8DotAvx2(qx.data(), wrow, k);
    } else {
      acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(qx[p]) * wrow[p];
      }
    }
    out[j] = static_cast<float>(acc) * (sx * w.scales[j]);
  }
}

void RegisterBuiltinInt8(KernelRegistry* r) {
  r->Register(KernelOp::kInt8Gemm,
              {"naive", /*priority=*/0, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&Int8GemmVariantNaive)});
  r->Register(KernelOp::kInt8Gemm,
              {"packed", /*priority=*/10, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&Int8GemmVariantPacked)});
}

}  // namespace dispatch
}  // namespace umgad
