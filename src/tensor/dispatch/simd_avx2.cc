// AVX2-tier kernel variants, compiled with a function-level target attribute
// so the baseline build stays portable while capable hosts get 256-bit
// vectors at runtime.
//
// Registered only in non--march=native builds: a native build already
// compiles *every* TU for the host's widest ISA (and with FMA contraction),
// so a separate AVX2 tier adds nothing there — and mixing contraction-free
// target("avx2") code with contracted native code could break the
// bit-identity invariant. The target attribute deliberately enables avx2
// but NOT fma: without an FMA ISA the compiler cannot contract the
// multiply-add chains, so this tier rounds exactly like the baseline tier
// and stays bit-identical to it.

#include "tensor/dispatch/builtin_kernels.h"
#include "tensor/dispatch/matmul_impl.h"
#include "tensor/dispatch/registry.h"
#include "tensor/tensor.h"

namespace umgad {
namespace dispatch {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(UMGAD_MARCH_NATIVE)

namespace {

#define UMGAD_MICRO_TARGET_ATTR __attribute__((target("avx2")))
#include "tensor/dispatch/matmul_micro.inc"
#undef UMGAD_MICRO_TARGET_ATTR

Tensor MatMulBlockedAvx2(const Tensor& a, const Tensor& b) {
  return BlockedMatMul(a, b, MicroKernel8, MicroKernel1);
}

Tensor MatMulTransBBlockedAvx2(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.cols());
  return BlockedMatMul(a, Transpose(b), MicroKernel8, MicroKernel1);
}

}  // namespace

void RegisterAvx2Kernels(KernelRegistry* r) {
  r->Register(KernelOp::kMatMul,
              {"blocked_avx2", /*priority=*/20, kFeatAvx2,
               reinterpret_cast<KernelFn>(&MatMulBlockedAvx2)});
  r->Register(KernelOp::kMatMulTransB,
              {"blocked_avx2", /*priority=*/20, kFeatAvx2,
               reinterpret_cast<KernelFn>(&MatMulTransBBlockedAvx2)});
}

#else  // non-x86-64 or -march=native build

void RegisterAvx2Kernels(KernelRegistry*) {}

#endif

}  // namespace dispatch
}  // namespace umgad
