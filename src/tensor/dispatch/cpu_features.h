#ifndef UMGAD_TENSOR_DISPATCH_CPU_FEATURES_H_
#define UMGAD_TENSOR_DISPATCH_CPU_FEATURES_H_

#include <string>

#include "common/result.h"

namespace umgad {
namespace dispatch {

/// SIMD capability bits a kernel variant can require (see registry.h).
/// Detection uses the compiler's cpuid intrinsics on x86-64; every bit is
/// 0 on other architectures, so only feature-free variants are eligible
/// there and selection degrades gracefully.
enum CpuFeature : unsigned {
  kFeatSse2 = 1u << 0,
  kFeatAvx = 1u << 1,
  kFeatAvx2 = 1u << 2,
  kFeatFma = 1u << 3,
  kFeatAvx512f = 1u << 4,
};

/// Feature bits of the host CPU (cpuid; cached after the first call).
unsigned DetectedCpuFeatures();

/// DetectedCpuFeatures() minus the disabled mask. The mask seeds from the
/// UMGAD_CPU_DISABLE env var ("avx2,avx512f") on first use; tests override
/// it through SetDisabledCpuFeaturesForTest (registry.h), which also
/// invalidates the registry's cached selections.
unsigned EffectiveCpuFeatures();

/// Parse a comma-separated feature list ("avx2,fma"). InvalidArgument on an
/// unknown name; the empty string parses to 0.
Result<unsigned> ParseCpuFeatureList(const std::string& list);

/// Human-readable form of a feature mask ("sse2 avx avx2"); "-" when empty.
std::string CpuFeatureListString(unsigned mask);

namespace internal {
/// Raw setter behind SetDisabledCpuFeaturesForTest; does not touch the
/// registry cache. Not for direct use outside registry.cc/tests.
void SetDisabledCpuFeatures(unsigned mask);
}  // namespace internal

}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_CPU_FEATURES_H_
