#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/dispatch/builtin_kernels.h"
#include "tensor/dispatch/matmul_impl.h"
#include "tensor/dispatch/registry.h"
#include "tensor/tensor.h"

namespace umgad {
namespace dispatch {
namespace {

// Baseline-ISA micro-kernels (whatever the build's default target offers).
#define UMGAD_MICRO_TARGET_ATTR
#include "tensor/dispatch/matmul_micro.inc"
#undef UMGAD_MICRO_TARGET_ATTR

}  // namespace

Tensor BlockedMatMul(const Tensor& a, const Tensor& b, MicroKernel8Fn micro8,
                     MicroKernel1Fn micro1) {
  UMGAD_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  if (static_cast<int64_t>(m) * k * n < kSmallMatMulMuls) {
    return MatMulNaive(a, b);
  }
  Tensor c(m, n);

  // Pack B once into zero-padded panels: panel t holds columns
  // [t*kPanelCols, t*kPanelCols + w) contiguously per k-row, so the
  // micro-kernel streams it with unit stride and needs no column tail logic.
  // Pooled + uninitialised: the buffer is fully overwritten below and the
  // same pack shape recurs every step, so steady state pays neither a malloc
  // nor a value-initialisation pass over up to O(k*n) memory.
  const int panels = (n + kPanelCols - 1) / kPanelCols;
  PooledBuffer packed(static_cast<size_t>(panels) * k * kPanelCols);
  for (int t = 0; t < panels; ++t) {
    const int j0 = t * kPanelCols;
    const int w = std::min(kPanelCols, n - j0);
    float* panel = packed.get() + static_cast<size_t>(t) * k * kPanelCols;
    for (int p = 0; p < k; ++p) {
      const float* brow = b.row(p) + j0;
      float* dst = panel + static_cast<int64_t>(p) * kPanelCols;
      int j = 0;
      for (; j < w; ++j) dst[j] = brow[j];
      for (; j < kPanelCols; ++j) dst[j] = 0.0f;
    }
  }

  ParallelFor(m, kMicroRows, [&](int64_t r0, int64_t r1) {
    for (int t = 0; t < panels; ++t) {
      const int j0 = t * kPanelCols;
      const int w = std::min(kPanelCols, n - j0);
      const float* panel =
          packed.get() + static_cast<size_t>(t) * k * kPanelCols;
      int64_t i = r0;
      for (; i + kMicroRows <= r1; i += kMicroRows) {
        micro8(a.row(static_cast<int>(i)), k, panel,
               c.row(static_cast<int>(i)) + j0, n, k, w);
      }
      for (; i < r1; ++i) {
        micro1(a.row(static_cast<int>(i)), panel,
               c.row(static_cast<int>(i)) + j0, k, w);
      }
    }
  });
  return c;
}

namespace {

// kMatMul variants. "naive" is the public serial oracle; "blocked" is the
// packed register-tiled core. Both accumulate each C element in ascending-k
// order, so they are bit-identical (the registry invariant).
Tensor MatMulVariantNaive(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.rows());
  return MatMulNaive(a, b);
}

Tensor MatMulVariantBlocked(const Tensor& a, const Tensor& b) {
  return BlockedMatMul(a, b, MicroKernel8, MicroKernel1);
}

// kMatMulTransB variants: one cheap transpose away from the plain product.
// Both run the *float* ascending-k accumulation, so "naive" here matches
// "blocked" bitwise; the double-accumulating MatMulTransBNaive oracle stays
// a separate, unregistered function (tensor.cc).
Tensor MatMulTransBVariantNaive(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.cols());
  return MatMulNaive(a, Transpose(b));
}

Tensor MatMulTransBVariantBlocked(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.cols());
  return BlockedMatMul(a, Transpose(b), MicroKernel8, MicroKernel1);
}

}  // namespace

void RegisterBuiltinMatMul(KernelRegistry* r) {
  r->Register(KernelOp::kMatMul,
              {"naive", /*priority=*/0, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&MatMulVariantNaive)});
  r->Register(KernelOp::kMatMul,
              {"blocked", /*priority=*/10, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&MatMulVariantBlocked)});
  r->Register(KernelOp::kMatMulTransB,
              {"naive", /*priority=*/0, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&MatMulTransBVariantNaive)});
  r->Register(KernelOp::kMatMulTransB,
              {"blocked", /*priority=*/10, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&MatMulTransBVariantBlocked)});
}

}  // namespace dispatch
}  // namespace umgad
