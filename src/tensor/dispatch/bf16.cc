#include "tensor/dispatch/bf16.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/dispatch/builtin_kernels.h"
#include "tensor/dispatch/registry.h"
#include "tensor/sparse.h"

namespace umgad {
namespace dispatch {

Bf16Matrix Bf16FromTensor(const Tensor& t) {
  Bf16Matrix m;
  m.rows = t.rows();
  m.cols = t.cols();
  m.data.resize(static_cast<size_t>(t.rows()) * t.cols());
  const float* src = t.data();
  for (int64_t i = 0; i < t.size(); ++i) m.data[i] = Bf16FromFloat(src[i]);
  return m;
}

Tensor TensorFromBf16(const Bf16Matrix& m) {
  Tensor t(m.rows, m.cols);
  float* dst = t.data();
  for (size_t i = 0; i < m.data.size(); ++i) dst[i] = FloatFromBf16(m.data[i]);
  return t;
}

namespace {

/// Shared row body: all variants call this per output row, so serial and
/// row-parallel execution accumulate identically and stay bit-identical.
inline void Bf16GemmRowImpl(const uint16_t* arow, const Bf16Matrix& b,
                            float* crow) {
  const int k = b.cols;
  for (int j = 0; j < b.rows; ++j) {
    const uint16_t* brow = b.row(j);
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      acc += FloatFromBf16(arow[p]) * FloatFromBf16(brow[p]);
    }
    crow[j] = acc;
  }
}

Tensor Bf16GemmVariantSerial(const Bf16Matrix& a, const Bf16Matrix& b) {
  Tensor c(a.rows, b.rows);
  for (int i = 0; i < a.rows; ++i) {
    Bf16GemmRowImpl(a.row(i), b, c.row(i));
  }
  return c;
}

Tensor Bf16GemmVariantParallel(const Bf16Matrix& a, const Bf16Matrix& b) {
  Tensor c(a.rows, b.rows);
  ParallelFor(a.rows, /*grain=*/8, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      Bf16GemmRowImpl(a.row(static_cast<int>(i)), b,
                      c.row(static_cast<int>(i)));
    }
  });
  return c;
}

constexpr int64_t kBf16SpmmRowGrain = 64;

/// Shared row body for the bf16 SpMM variants: S's value and X's elements
/// are rounded to bf16, products accumulate in fp32 in CSR (ascending
/// column) order.
inline void SpmmBf16RowImpl(const SparseMatrix& s, const Bf16Matrix& x, int i,
                            float* yrow) {
  const int d = x.cols;
  const ConstSpan<int64_t> row_ptr = s.row_ptr();
  const ConstSpan<int> col_idx = s.col_idx();
  const ConstSpan<float> values = s.values();
  for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
    const float v = FloatFromBf16(Bf16FromFloat(values[k]));
    const uint16_t* xrow = x.row(col_idx[k]);
    for (int j = 0; j < d; ++j) yrow[j] += v * FloatFromBf16(xrow[j]);
  }
}

Tensor SpmmBf16VariantSerial(const SparseMatrix& s, const Bf16Matrix& x) {
  Tensor y(s.rows(), x.cols);
  for (int i = 0; i < s.rows(); ++i) SpmmBf16RowImpl(s, x, i, y.row(i));
  return y;
}

Tensor SpmmBf16VariantParallel(const SparseMatrix& s, const Bf16Matrix& x) {
  Tensor y(s.rows(), x.cols);
  const std::shared_ptr<const RowBlocks> blocks = s.row_blocks();
  ForEachRowBlocked(s.rows(), blocks.get(), kBf16SpmmRowGrain,
                    [&](int i) { SpmmBf16RowImpl(s, x, i, y.row(i)); });
  return y;
}

}  // namespace

Tensor Bf16GemmTransB(const Bf16Matrix& a, const Bf16Matrix& b) {
  UMGAD_CHECK_EQ(a.cols, b.cols);
  return KernelRegistry::Global()->bf16_gemm()(a, b);
}

Tensor SpmmBf16(const SparseMatrix& s, const Bf16Matrix& x) {
  UMGAD_CHECK_EQ(s.cols(), x.rows);
  return KernelRegistry::Global()->bf16_spmm()(s, x);
}

void Bf16GemmRow(const float* x, int k, const Bf16Matrix& w, float* out) {
  UMGAD_CHECK_EQ(k, w.cols);
  std::vector<uint16_t> hx(k);
  for (int p = 0; p < k; ++p) hx[p] = Bf16FromFloat(x[p]);
  Bf16GemmRowImpl(hx.data(), w, out);
}

void RegisterBuiltinBf16(KernelRegistry* r) {
  r->Register(KernelOp::kBf16Gemm,
              {"naive", /*priority=*/0, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&Bf16GemmVariantSerial)});
  r->Register(KernelOp::kBf16Gemm,
              {"parallel", /*priority=*/10, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&Bf16GemmVariantParallel)});
  r->Register(KernelOp::kBf16Spmm,
              {"naive", /*priority=*/0, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&SpmmBf16VariantSerial)});
  r->Register(KernelOp::kBf16Spmm,
              {"parallel", /*priority=*/10, /*required_features=*/0,
               reinterpret_cast<KernelFn>(&SpmmBf16VariantParallel)});
}

}  // namespace dispatch
}  // namespace umgad
