#ifndef UMGAD_TENSOR_DISPATCH_INT8_IMPL_H_
#define UMGAD_TENSOR_DISPATCH_INT8_IMPL_H_

#include <cstdint>

// Internal: the AVX2 int8 dot-product tier shared by the registered batch
// variant ("dot_avx2", int8_avx2.cc) and the serving row helper
// Int8GemmRow (quantize.cc). Integer accumulation is exact, so SIMD lane
// order cannot change a single bit of the result — unlike the float tiers
// this one needs no FMA-contraction guard and is compiled into
// UMGAD_NATIVE builds too (see dispatch/simd_avx2.cc for the float story).

namespace umgad {
namespace dispatch {
namespace internal {

/// True when this build carries the AVX2 int8 dot (x86-64 GCC/Clang).
/// Callers must ALSO check EffectiveCpuFeatures() & kFeatAvx2 before
/// calling Int8DotAvx2 — availability is a build property, eligibility a
/// host property (and tests mask it off via SetDisabledCpuFeaturesForTest).
bool Int8DotAvx2Available();

/// sum_p a[p] * b[p] over n int8 codes, exact int32 accumulation
/// (_mm256_madd_epi16 after sign-extension; per-lane partials stay inside
/// int32 for any n <= kInt8GemmMaxDepth). Bit-identical to the scalar loop.
int32_t Int8DotAvx2(const int8_t* a, const int8_t* b, int n);

}  // namespace internal
}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_INT8_IMPL_H_
