#ifndef UMGAD_TENSOR_DISPATCH_BUILTIN_KERNELS_H_
#define UMGAD_TENSOR_DISPATCH_BUILTIN_KERNELS_H_

namespace umgad {
namespace dispatch {

class KernelRegistry;

/// Registration entry points for the builtin kernel variants. Called exactly
/// once from KernelRegistry::Global()'s init — explicit calls rather than
/// self-registering globals because static-library link drops unreferenced
/// translation units (and their registrars) silently.
void RegisterBuiltinMatMul(KernelRegistry* r);  // matmul_variants.cc
void RegisterBuiltinSpmm(KernelRegistry* r);    // spmm_variants.cc
void RegisterBuiltinInt8(KernelRegistry* r);    // quantize.cc
void RegisterBuiltinBf16(KernelRegistry* r);    // bf16.cc
void RegisterAvx2Kernels(KernelRegistry* r);    // simd_avx2.cc
void RegisterInt8Avx2Kernels(KernelRegistry* r);  // int8_avx2.cc

}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_BUILTIN_KERNELS_H_
