#include "tensor/dispatch/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace umgad {
namespace dispatch {
namespace {

struct FeatureName {
  const char* name;
  unsigned bit;
};

constexpr FeatureName kFeatureNames[] = {
    {"sse2", kFeatSse2},   {"avx", kFeatAvx},
    {"avx2", kFeatAvx2},   {"fma", kFeatFma},
    {"avx512f", kFeatAvx512f},
};

unsigned Detect() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  unsigned mask = 0;
  if (__builtin_cpu_supports("sse2")) mask |= kFeatSse2;
  if (__builtin_cpu_supports("avx")) mask |= kFeatAvx;
  if (__builtin_cpu_supports("avx2")) mask |= kFeatAvx2;
  if (__builtin_cpu_supports("fma")) mask |= kFeatFma;
  if (__builtin_cpu_supports("avx512f")) mask |= kFeatAvx512f;
  return mask;
#else
  return 0;
#endif
}

/// Disabled mask, seeded once from UMGAD_CPU_DISABLE. ~0u = not yet seeded.
std::atomic<unsigned> g_disabled{~0u};
std::once_flag g_disabled_once;

unsigned DisabledMask() {
  std::call_once(g_disabled_once, [] {
    unsigned expect = ~0u;
    unsigned seed = 0;
    if (const char* env = std::getenv("UMGAD_CPU_DISABLE")) {
      Result<unsigned> parsed = ParseCpuFeatureList(env);
      if (parsed.ok()) {
        seed = *parsed;
      } else {
        UMGAD_LOG(Warning) << "UMGAD_CPU_DISABLE ignored: "
                           << parsed.status().ToString();
      }
    }
    // A test may have set the mask before the first env read; keep it.
    g_disabled.compare_exchange_strong(expect, seed);
  });
  return g_disabled.load(std::memory_order_acquire);
}

}  // namespace

unsigned DetectedCpuFeatures() {
  static const unsigned mask = Detect();
  return mask;
}

unsigned EffectiveCpuFeatures() {
  return DetectedCpuFeatures() & ~DisabledMask();
}

Result<unsigned> ParseCpuFeatureList(const std::string& list) {
  unsigned mask = 0;
  std::stringstream in(list);
  std::string item;
  while (std::getline(in, item, ',')) {
    const size_t b = item.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const size_t e = item.find_last_not_of(" \t");
    const std::string name = item.substr(b, e - b + 1);
    bool found = false;
    for (const FeatureName& f : kFeatureNames) {
      if (name == f.name) {
        mask |= f.bit;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("unknown CPU feature \"%s\"", name.c_str()));
    }
  }
  return mask;
}

std::string CpuFeatureListString(unsigned mask) {
  std::string out;
  for (const FeatureName& f : kFeatureNames) {
    if ((mask & f.bit) == 0) continue;
    if (!out.empty()) out += " ";
    out += f.name;
  }
  return out.empty() ? "-" : out;
}

namespace internal {
void SetDisabledCpuFeatures(unsigned mask) {
  // Force the env seed first so a later DisabledMask() cannot overwrite the
  // test's value through the once-flag race.
  DisabledMask();
  g_disabled.store(mask, std::memory_order_release);
}
}  // namespace internal

}  // namespace dispatch
}  // namespace umgad
