#ifndef UMGAD_TENSOR_DISPATCH_BF16_H_
#define UMGAD_TENSOR_DISPATCH_BF16_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/tensor.h"

namespace umgad {

class SparseMatrix;

namespace dispatch {

/// bfloat16: float32 with the mantissa truncated to 7 bits. Conversion
/// rounds to nearest-even; NaN payloads are squashed to a canonical quiet
/// NaN so rounding can never turn a NaN into Inf.
inline uint16_t Bf16FromFloat(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x007FFFFFu) != 0u) {
    return 0x7FC0;  // quiet NaN
  }
  bits += 0x7FFFu + ((bits >> 16) & 1u);  // round to nearest, ties to even
  return static_cast<uint16_t>(bits >> 16);
}

inline float FloatFromBf16(uint16_t h) {
  const uint32_t bits = static_cast<uint32_t>(h) << 16;
  float x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

/// Row-major bf16 matrix (storage half the size of a Tensor; arithmetic
/// widens back to fp32 per element).
struct Bf16Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<uint16_t> data;

  const uint16_t* row(int i) const {
    return data.data() + static_cast<int64_t>(i) * cols;
  }
  uint16_t* row(int i) {
    return data.data() + static_cast<int64_t>(i) * cols;
  }
};

/// Round every element of `t` to bf16.
Bf16Matrix Bf16FromTensor(const Tensor& t);

/// Widen back to fp32 (exact: bf16 values are representable floats).
Tensor TensorFromBf16(const Bf16Matrix& m);

/// C[i,j] = sum_p widen(a[i,p]) * widen(b[j,p]), fp32 accumulation in
/// ascending-p order — the bf16 analogue of MatMulTransB against row-major
/// weights. Served through KernelOp::kBf16Gemm; every variant owns whole
/// output rows with the same accumulation order, so all are bit-identical.
Tensor Bf16GemmTransB(const Bf16Matrix& a, const Bf16Matrix& b);

/// Y = S * X with S's values and X's elements rounded to bf16, fp32
/// accumulation in CSR order. Served through KernelOp::kBf16Spmm.
Tensor SpmmBf16(const SparseMatrix& s, const Bf16Matrix& x);

/// Serving-path helper: one output row of Bf16GemmTransB without
/// materialising the product — rounds the activation row `x` (length k) to
/// bf16, then accumulates against pre-rounded weights `w` (n x k) into
/// `out` (n floats). Bit-identical to row i of
/// Bf16GemmTransB(Bf16FromTensor(X), w) when x == X.row(i).
void Bf16GemmRow(const float* x, int k, const Bf16Matrix& w, float* out);

}  // namespace dispatch
}  // namespace umgad

#endif  // UMGAD_TENSOR_DISPATCH_BF16_H_
