#ifndef UMGAD_TENSOR_AUTOGRAD_H_
#define UMGAD_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace umgad {
namespace ag {

class Node;
class Tape;

/// Handle to an autograd node. Nodes are owned by the process-wide ag::Tape
/// (see below), not by the handle: VarPtr is a plain pointer wrapper — no
/// refcount traffic on the hot op path — that default-constructs to null so
/// it drops into the member/struct slots the old shared_ptr alias filled.
class VarPtr {
 public:
  VarPtr() noexcept : p_(nullptr) {}
  VarPtr(std::nullptr_t) noexcept : p_(nullptr) {}  // NOLINT(runtime/explicit)
  VarPtr(Node* p) noexcept : p_(p) {}               // NOLINT(runtime/explicit)

  Node* operator->() const noexcept { return p_; }
  Node& operator*() const noexcept { return *p_; }
  Node* get() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }
  friend bool operator==(const VarPtr& a, const VarPtr& b) noexcept {
    return a.p_ == b.p_;
  }
  friend bool operator!=(const VarPtr& a, const VarPtr& b) noexcept {
    return a.p_ != b.p_;
  }

 private:
  Node* p_;
};

/// Borrowed view of a node's inputs (a pointer array in the tape's arena).
/// operator[] / iteration yield VarPtr by value, so existing call sites
/// (`in[0]->grad()`, range-for) read unchanged.
class InputList {
 public:
  InputList(Node* const* data, uint32_t n) noexcept : data_(data), n_(n) {}

  VarPtr operator[](size_t i) const noexcept { return VarPtr(data_[i]); }
  size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  class Iterator {
   public:
    explicit Iterator(Node* const* p) noexcept : p_(p) {}
    VarPtr operator*() const noexcept { return VarPtr(*p_); }
    Iterator& operator++() noexcept {
      ++p_;
      return *this;
    }
    bool operator!=(const Iterator& o) const noexcept { return p_ != o.p_; }

   private:
    Node* const* p_;
  };
  Iterator begin() const noexcept { return Iterator(data_); }
  Iterator end() const noexcept { return Iterator(data_ + n_); }

 private:
  Node* const* data_;
  uint32_t n_;
};

/// One vertex of the reverse-mode tape: a value, the (lazily allocated)
/// gradient accumulator, and a closure that pushes this node's gradient into
/// its inputs' accumulators. Constructed only by Tape.
class Node {
 public:
  Node(Tensor value, bool requires_grad, const char* op)
      : value_(std::move(value)), requires_grad_(requires_grad), op_(op) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  /// Gradient of the loss w.r.t. this node. Zero tensor until Backward()
  /// reaches the node.
  Tensor& grad() {
    if (grad_.empty() && value_.size() > 0) {
      grad_ = Tensor(value_.rows(), value_.cols());
    }
    return grad_;
  }
  bool has_grad() const { return !grad_.empty(); }
  void ZeroGrad() {
    if (!grad_.empty()) grad_.SetZero();
  }

  bool requires_grad() const { return requires_grad_; }
  const char* op() const { return op_; }

  InputList inputs() const { return InputList(inputs_, num_inputs_); }

  // --- Graph construction (used by ops.cc via Tape) ---
  void set_inputs(Node* const* inputs, uint32_t n) {
    inputs_ = inputs;
    num_inputs_ = n;
  }
  void set_backward(std::function<void(Node*)> fn) {
    backward_fn_ = std::move(fn);
  }
  bool has_backward() const { return static_cast<bool>(backward_fn_); }
  void RunBackward() {
    if (backward_fn_) backward_fn_(this);
  }

  /// Marks a closure that parallelises internally over the global pool
  /// (edge-softmax backward, the fused loss scatters). Backward() runs wide
  /// nodes as singleton batches on the calling thread, so their internal
  /// ParallelFor reaches the pool instead of being inlined inside a batch
  /// worker. The flag is a property of the op, never of the thread count,
  /// so the schedule — and therefore every float — stays identical for any
  /// UMGAD_THREADS.
  bool wide_backward() const { return wide_backward_; }
  void set_wide_backward(bool wide) { wide_backward_ = wide; }

 private:
  friend void Backward(const VarPtr&);

  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  const char* op_;
  Node* const* inputs_ = nullptr;
  uint32_t num_inputs_ = 0;
  bool wide_backward_ = false;
  std::function<void(Node*)> backward_fn_;
  // Scratch used by Backward()'s scheduler (topo mark, unfinished-consumer
  // count, batch-conflict stamp). Valid only inside one Backward call;
  // Backward itself is not reentrant (training loops are sequential).
  uint64_t topo_mark_ = 0;
  uint64_t sched_stamp_ = 0;
  int32_t pending_consumers_ = 0;
};

/// Arena that owns every autograd Node.
///
/// Two regions with different lifetimes:
///  - persistent: trainable leaves (Leaf / PersistentConstant). Survive
///    Reset(); freed only at process exit. Model parameters live here.
///  - transient: everything ops.cc builds during a step (op nodes and
///    Constant leaves). Reset() destroys them, which returns their
///    value/grad buffers to the TensorPool, and rewinds the slabs for
///    reuse — steady-state steps allocate no new slabs and no new tensor
///    buffers.
///
/// With the arena disabled (SetArenaEnabled(false) / UMGAD_ARENA=0) nodes
/// are individually heap-allocated and Reset() deletes them — the seed
/// allocator behaviour, numerically indistinguishable by construction.
///
/// Thread-safe for allocation (ops fan out across the thread pool during
/// forward). Reset() must only run when no transient node is live: call it
/// between training steps, never while a graph you still hold is in scope.
class Tape {
 public:
  struct Stats {
    /// Node slabs ever allocated (flat across steady-state steps).
    int64_t node_slabs = 0;
    /// Cumulative bytes of slab memory (nodes + input-pointer arenas).
    int64_t slab_bytes = 0;
    /// Live node counts.
    int64_t transient_nodes = 0;
    int64_t persistent_nodes = 0;
    /// Total transient nodes created since process start.
    int64_t total_transient_nodes = 0;
  };

  /// The process-wide tape (never destroyed; see TensorPool::Global).
  static Tape& Global();

  /// Allocate a node. Transient nodes die at the next Reset(); persistent
  /// ones live for the process.
  Node* NewNode(Tensor value, bool requires_grad, const char* op,
                bool persistent);

  /// Copy `n` input handles into the transient pointer arena; the returned
  /// array is owned by the tape and freed by Reset().
  Node* const* CopyInputs(const VarPtr* inputs, uint32_t n);

  /// Destroy all transient nodes and rewind the transient arenas, returning
  /// their tensors to the TensorPool. Invalidates every VarPtr that is not a
  /// persistent leaf — callers must drop step-local handles first.
  void Reset();

  Stats stats() const;

  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

 private:
  friend class ParamScope;

  Tape();
  ~Tape();

  struct Impl;
  Impl* impl_;
};

/// RAII scoped persistent region: persistent nodes (Leaf /
/// PersistentConstant) created while a ParamScope is open are destroyed —
/// and their value/grad buffers returned to the TensorPool — when it
/// closes, instead of living for the process. This is what keeps
/// long-running servers leak-free across repeated model constructions
/// (TrainedModel::Load / BuildViews / OnlineScorer rebuilds): wrap the
/// construction + weight extraction in a scope and the parameter set's
/// arena slots are rewound on exit (ASan/LSan-verified by the rebuild
/// loop in tests/serve_concurrency_test.cc).
///
/// Rules (UMGAD_CHECK-enforced where possible):
///  - Scopes are process-global and strictly nested (LIFO). Closing an
///    outer scope before an inner one fails fast.
///  - Every VarPtr to a node allocated inside the scope must be dropped
///    before the scope closes; surviving handles dangle.
///  - No other thread may allocate persistent nodes while a scope is
///    open (the persistent arena is a bump region; a concurrent
///    allocation would be destroyed with the scope). Transient
///    allocation and Reset() are unaffected.
class ParamScope {
 public:
  ParamScope();
  ~ParamScope();
  ParamScope(const ParamScope&) = delete;
  ParamScope& operator=(const ParamScope&) = delete;

 private:
  size_t slab_mark_ = 0;
  size_t heap_mark_ = 0;
};

/// Trainable leaf (parameter). Persistent: survives Tape::Reset().
VarPtr Leaf(Tensor value);

/// Non-trainable leaf (input data). Gradients are not propagated into it.
/// Transient: invalidated by Tape::Reset(), so build one per step.
VarPtr Constant(Tensor value);

/// Non-trainable leaf that survives Tape::Reset() — for constants stored in
/// long-lived modules (e.g. frozen fusion logits).
VarPtr PersistentConstant(Tensor value);

/// Reverse-mode sweep from a scalar (1x1) root. Accumulates into the grad()
/// of every reachable node that requires a gradient. Safe to call on graphs
/// that share subexpressions (each node's backward runs exactly once, after
/// all its consumers). Independent tape segments run in parallel on the
/// global thread pool with a schedule that preserves the serial
/// accumulation order exactly, so gradients are bit-identical for any
/// UMGAD_THREADS (see the scheduler notes in autograd.cc).
void Backward(const VarPtr& root);

/// Convenience: zero the gradient accumulators of a parameter set.
void ZeroGradAll(const std::vector<VarPtr>& params);

}  // namespace ag
}  // namespace umgad

#endif  // UMGAD_TENSOR_AUTOGRAD_H_
