#ifndef UMGAD_TENSOR_AUTOGRAD_H_
#define UMGAD_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace umgad {
namespace ag {

class Node;

/// Shared handle to an autograd node. The computation graph is a DAG of
/// Nodes built eagerly by the ops in tensor/ops.h; Backward() releases no
/// memory — the graph is freed when the last VarPtr goes out of scope, which
/// happens naturally at the end of a training step.
using VarPtr = std::shared_ptr<Node>;

/// One vertex of the reverse-mode tape: a value, the (lazily allocated)
/// gradient accumulator, and a closure that pushes this node's gradient into
/// its inputs' accumulators.
class Node {
 public:
  Node(Tensor value, bool requires_grad, const char* op)
      : value_(std::move(value)), requires_grad_(requires_grad), op_(op) {}

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  /// Gradient of the loss w.r.t. this node. Zero tensor until Backward()
  /// reaches the node.
  Tensor& grad() {
    if (grad_.empty() && value_.size() > 0) {
      grad_ = Tensor(value_.rows(), value_.cols());
    }
    return grad_;
  }
  bool has_grad() const { return !grad_.empty(); }
  void ZeroGrad() {
    if (!grad_.empty()) grad_.SetZero();
  }

  bool requires_grad() const { return requires_grad_; }
  const char* op() const { return op_; }

  const std::vector<VarPtr>& inputs() const { return inputs_; }

  // --- Graph construction (used by ops.cc) ---
  void set_inputs(std::vector<VarPtr> inputs) { inputs_ = std::move(inputs); }
  void set_backward(std::function<void(Node*)> fn) {
    backward_fn_ = std::move(fn);
  }
  void RunBackward() {
    if (backward_fn_) backward_fn_(this);
  }

 private:
  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  const char* op_;
  std::vector<VarPtr> inputs_;
  std::function<void(Node*)> backward_fn_;
};

/// Trainable leaf (parameter).
VarPtr Leaf(Tensor value);

/// Non-trainable leaf (input data). Gradients are not propagated into it.
VarPtr Constant(Tensor value);

/// Reverse-mode sweep from a scalar (1x1) root. Accumulates into the grad()
/// of every reachable node that requires a gradient. Safe to call on graphs
/// that share subexpressions (each node's backward runs exactly once, after
/// all its consumers).
void Backward(const VarPtr& root);

/// Convenience: zero the gradient accumulators of a parameter set.
void ZeroGradAll(const std::vector<VarPtr>& params);

}  // namespace ag
}  // namespace umgad

#endif  // UMGAD_TENSOR_AUTOGRAD_H_
