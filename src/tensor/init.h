#ifndef UMGAD_TENSOR_INIT_H_
#define UMGAD_TENSOR_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace umgad {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// The default initialiser for linear/GNN weights.
Tensor XavierUniform(int rows, int cols, Rng* rng);

/// He (Kaiming) normal: N(0, sqrt(2 / fan_in)); used ahead of ReLU stacks.
Tensor HeNormal(int rows, int cols, Rng* rng);

/// N(mean, stddev) entries; used for fusion logits and [MASK] tokens
/// ("initially randomized using a normal distribution", Sec. IV-A).
Tensor RandomNormal(int rows, int cols, double mean, double stddev, Rng* rng);

/// U(lo, hi) entries.
Tensor RandomUniform(int rows, int cols, double lo, double hi, Rng* rng);

}  // namespace umgad

#endif  // UMGAD_TENSOR_INIT_H_
