#ifndef UMGAD_TENSOR_TENSOR_H_
#define UMGAD_TENSOR_TENSOR_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "tensor/pool.h"

namespace umgad {

/// Value-semantic float storage backed by the global TensorPool: buffers are
/// recycled through size buckets instead of hitting the heap on every
/// construction (see pool.h). Fresh buffers are zero-initialised, matching
/// the std::vector<float> storage this replaces.
///
/// A buffer can also *borrow* read-only external storage (the mmap graph
/// loader's attribute section): a borrowed buffer holds a keepalive on its
/// owner instead of a pool allocation, rejects every non-const access with
/// UMGAD_CHECK (the mapping is PROT_READ — writes must go through an owned
/// copy), and materialises into a normal pool buffer on copy.
class TensorBuffer {
 public:
  TensorBuffer() noexcept = default;
  explicit TensorBuffer(size_t n)
      : data_(TensorPool::Global().Acquire(n)), size_(n) {}
  /// Uninitialised variant for full overwrites (copies).
  struct Uninit {};
  TensorBuffer(size_t n, Uninit)
      : data_(TensorPool::Global().AcquireUninit(n)), size_(n) {}
  /// Borrowing constructor: view `n` floats at `borrowed`, kept alive by
  /// `owner` (never null). The buffer is read-only from here on.
  TensorBuffer(const float* borrowed, size_t n,
               std::shared_ptr<const void> owner)
      : data_(const_cast<float*>(borrowed)), size_(n),
        owner_(std::move(owner)) {
    UMGAD_CHECK(owner_ != nullptr);
  }
  TensorBuffer(const TensorBuffer& o) : TensorBuffer(o.size_, Uninit{}) {
    if (size_ > 0) std::memcpy(data_, o.data_, size_ * sizeof(float));
  }
  TensorBuffer(TensorBuffer&& o) noexcept
      : data_(o.data_), size_(o.size_), owner_(std::move(o.owner_)) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  TensorBuffer& operator=(const TensorBuffer& o) {
    if (this == &o) return *this;
    if (owner_ != nullptr || size_ != o.size_) {
      if (owner_ == nullptr) TensorPool::Global().Release(data_, size_);
      owner_.reset();
      size_ = o.size_;
      data_ = TensorPool::Global().AcquireUninit(size_);
    }
    if (size_ > 0) std::memcpy(data_, o.data_, size_ * sizeof(float));
    return *this;
  }
  TensorBuffer& operator=(TensorBuffer&& o) noexcept {
    if (this == &o) return *this;
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
    std::swap(owner_, o.owner_);
    return *this;
  }
  ~TensorBuffer() {
    if (owner_ == nullptr) TensorPool::Global().Release(data_, size_);
  }

  /// True when the storage is a read-only view into external memory.
  bool borrowed() const noexcept { return owner_ != nullptr; }

  float* data() noexcept {
    UMGAD_CHECK(owner_ == nullptr);  // writes rejected on borrowed storage
    return data_;
  }
  const float* data() const noexcept { return data_; }
  float& operator[](size_t i) noexcept {
    UMGAD_CHECK(owner_ == nullptr);  // writes rejected on borrowed storage
    return data_[i];
  }
  float operator[](size_t i) const noexcept { return data_[i]; }
  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  float* data_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<const void> owner_;
};

/// Dense row-major float32 matrix. This is the single dense container used
/// across the library; vectors are represented as 1xN or Nx1 tensors.
///
/// The class is a plain value type (copyable, movable). All shape errors are
/// programmer errors and fail fast via UMGAD_CHECK. Storage is recycled
/// through the global TensorPool.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols)) {
    UMGAD_CHECK_GE(rows, 0);
    UMGAD_CHECK_GE(cols, 0);
  }
  Tensor(int rows, int cols, const std::vector<float>& data)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols),
              TensorBuffer::Uninit{}) {
    UMGAD_CHECK_EQ(data.size(),
                   static_cast<size_t>(rows) * static_cast<size_t>(cols));
    if (!data.empty()) {
      std::memcpy(data_.data(), data.data(), data.size() * sizeof(float));
    }
  }

  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor Full(int rows, int cols, float value);
  static Tensor Identity(int n);
  /// 1xN row vector from values.
  static Tensor RowVector(std::vector<float> values);

  /// Read-only view over external row-major storage (the mmap loader's
  /// attribute section); `owner` keeps the backing memory alive. All
  /// mutating accessors UMGAD_CHECK-fail until EnsureOwned() materialises a
  /// pool-backed copy; const reads and copies behave like any other tensor.
  static Tensor FromBorrowed(const float* data, int rows, int cols,
                             std::shared_ptr<const void> owner) {
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.data_ = TensorBuffer(data, static_cast<size_t>(rows) * cols,
                           std::move(owner));
    return t;
  }

  /// True when the storage is a borrowed read-only view.
  bool borrowed() const { return data_.borrowed(); }

  /// Copy-on-write escape hatch: replaces borrowed storage with an owned
  /// pool buffer holding the same floats. No-op for owned tensors.
  void EnsureOwned() {
    if (!data_.borrowed()) return;
    TensorBuffer copy(data_);
    data_ = std::move(copy);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int i) { return data_.data() + static_cast<size_t>(i) * cols_; }
  const float* row(int i) const {
    return data_.data() + static_cast<size_t>(i) * cols_;
  }

  float& at(int i, int j) {
    UMGAD_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }
  float at(int i, int j) const {
    UMGAD_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }

  /// Value of a 1x1 tensor (losses).
  float scalar() const {
    UMGAD_CHECK_EQ(size(), 1);
    return data_[0];
  }

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// this += other (shape must match).
  void AddInPlace(const Tensor& other);
  /// this += alpha * other.
  void AxpyInPlace(float alpha, const Tensor& other);
  /// this *= alpha.
  void ScaleInPlace(float alpha);

  /// Squared Frobenius norm (double accumulation).
  double SquaredNorm() const;
  double Sum() const;
  double Max() const;
  double Min() const;
  bool AllFinite() const;

  /// L2 norm of row i.
  double RowNorm(int i) const;
  /// Dot product of row i with row j of another tensor (same cols).
  double RowDot(int i, const Tensor& other, int j) const;

  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  TensorBuffer data_;
};

/// C = A * B. Shapes: (m,k) x (k,n) -> (m,n).
///
/// Large products go through a cache-blocked, register-tiled kernel whose
/// rows are dispatched across the global thread pool (see
/// docs/PERFORMANCE.md). Each output element is accumulated in ascending-k
/// order by exactly one thread, so the result is bit-identical to
/// MatMulNaive and invariant to UMGAD_THREADS.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A * B^T. Shapes: (m,k) x (n,k) -> (m,n). Implemented as
/// MatMul(A, Transpose(B)); accumulates in float like MatMul (the seed's
/// double-accumulation variant survives as MatMulTransBNaive).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
/// C = A^T * B. Shapes: (k,m) x (k,n) -> (m,n). Implemented as
/// MatMul(Transpose(A), B).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

/// Reference kernels: the seed's single-threaded triple loops, kept as the
/// cross-check oracle for tests and as the "before" case in
/// bench_micro_kernels. MatMulNaive / MatMulTransANaive accumulate in float
/// in ascending-k order (the same per-element order as the blocked kernel);
/// MatMulTransBNaive accumulates each dot product in double.
Tensor MatMulNaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransANaive(const Tensor& a, const Tensor& b);
Tensor Transpose(const Tensor& a);
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Hadamard(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float alpha);

/// Rows of `a` gathered by index; out.row(i) = a.row(idx[i]).
Tensor GatherRows(const Tensor& a, const std::vector<int>& idx);

/// Per-row L2 normalisation with epsilon guard; zero rows stay zero.
Tensor RowL2Normalize(const Tensor& a, float eps = 1e-12f);

/// Cosine similarity between corresponding rows of a and b, as Nx1 tensor.
Tensor RowCosine(const Tensor& a, const Tensor& b, float eps = 1e-12f);

/// Per-row Euclidean distance ||a_i - b_i||_2, as Nx1 tensor.
Tensor RowL2Distance(const Tensor& a, const Tensor& b);

/// Per-row L1 distance ||a_i - b_i||_1, as Nx1 tensor.
Tensor RowL1Distance(const Tensor& a, const Tensor& b);

/// Max |a - b| over all entries (test helper).
double MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace umgad

#endif  // UMGAD_TENSOR_TENSOR_H_
