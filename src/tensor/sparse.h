#ifndef UMGAD_TENSOR_SPARSE_H_
#define UMGAD_TENSOR_SPARSE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace umgad {

/// An undirected or directed edge (row, col) used by COO builders.
struct Edge {
  int src = 0;
  int dst = 0;
};

/// A cache-blocked row schedule derived from a graph partition (built by
/// src/graph/partition/, attached via SparseMatrix::AttachRowBlocks): every
/// row belongs to exactly one of `num_blocks` blocks, and `order` lists all
/// rows grouped by block, ascending within each block. Hot kernels iterate
/// blocks on the pool instead of flat row ranges (ForEachRowBlocked), so a
/// worker's working set stays block-local. This is purely an *iteration
/// schedule*: each row is still produced by exactly one task with its
/// per-row arithmetic in the unchanged serial order, which keeps blocked
/// and flat execution bit-identical (the PR 2/4 determinism rules).
struct RowBlocks {
  int num_blocks = 0;
  /// Size num_blocks + 1: block b owns order[block_ptr[b], block_ptr[b+1]).
  std::vector<int64_t> block_ptr;
  /// All rows, grouped by block, ascending within each block.
  std::vector<int> order;
  /// Size rows: the owning block of each row.
  std::vector<int> block_of;
};

/// Runs fn(row) once for every row in [0, n): flat grain-sized row ranges
/// when `blocks` is null or does not cover n (the classic oversubscribed
/// schedule), block-affine otherwise (one task per block walking its owned
/// rows, so a pool lane processes whole blocks). fn must only write
/// row-exclusive state; per-row work is identical under both schedules, so
/// results are bit-identical for any UMGAD_THREADS / block count.
template <typename Fn>
void ForEachRowBlocked(int64_t n, const RowBlocks* blocks, int64_t grain,
                       Fn&& fn) {
  if (blocks != nullptr && blocks->num_blocks > 0 &&
      static_cast<int64_t>(blocks->block_of.size()) == n) {
    const RowBlocks& b = *blocks;
    ParallelFor(b.num_blocks, 1, [&](int64_t p0, int64_t p1) {
      for (int64_t p = p0; p < p1; ++p) {
        for (int64_t k = b.block_ptr[p]; k < b.block_ptr[p + 1]; ++k) {
          fn(b.order[k]);
        }
      }
    });
    return;
  }
  ParallelFor(n, grain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) fn(static_cast<int>(i));
  });
}

/// Compressed-sparse-row float matrix. Used for adjacency matrices and their
/// normalised variants; values default to 1.0 for unweighted graphs.
///
/// CSR is immutable after construction — graph perturbations (edge masking,
/// subgraph removal) build new instances, mirroring how the paper recreates
/// perturbed subgraphs per masking repeat.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Build from COO triplets. Duplicate (r,c) entries are summed. Entries
  /// are sorted by (row, col).
  static SparseMatrix FromCoo(int rows, int cols,
                              const std::vector<int>& coo_rows,
                              const std::vector<int>& coo_cols,
                              const std::vector<float>& values);

  /// Unweighted adjacency from an edge list. If `symmetrize` is true every
  /// edge is inserted in both directions (self-duplicates collapse).
  static SparseMatrix FromEdges(int n, const std::vector<Edge>& edges,
                                bool symmetrize);

  /// Adopt raw CSR arrays without re-sorting (the binary graph loader's
  /// zero-copy path). Validates the invariants every other constructor
  /// guarantees — monotonic row_ptr covering all of col_idx/values, and
  /// strictly ascending in-range columns within each row — and returns an
  /// error Status for malformed input instead of constructing a matrix
  /// that would break those invariants downstream.
  static Result<SparseMatrix> FromCsr(int rows, int cols,
                                      std::vector<int64_t> row_ptr,
                                      std::vector<int> col_idx,
                                      std::vector<float> values);

  /// Adopt CSR arrays the matrix does not own — the mmap loader's view
  /// straight into a mapped `.umgb` section. Runs the same validation as
  /// FromCsr; `payload` keeps the backing storage (the file mapping) alive
  /// for as long as this matrix — or any copy-on-write descendant that
  /// still shares the view — exists. The matrix is read-only like every
  /// other; mutating factories (RowNormalized) transparently materialise an
  /// owned copy first.
  static Result<SparseMatrix> FromBorrowedCsr(
      int rows, int cols, ConstSpan<int64_t> row_ptr, ConstSpan<int> col_idx,
      ConstSpan<float> values, std::shared_ptr<const void> payload);

  static SparseMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  /// True when the CSR arrays alias external storage (FromBorrowedCsr) and
  /// are kept alive by the payload rather than owned vectors.
  bool borrowed() const { return payload_ != nullptr; }

  ConstSpan<int64_t> row_ptr() const { return row_ptr_; }
  ConstSpan<int> col_idx() const { return col_idx_; }
  ConstSpan<float> values() const { return values_; }

  int RowNnz(int i) const {
    return static_cast<int>(row_ptr_[i + 1] - row_ptr_[i]);
  }

  /// Iterate columns/values of row i: [begin, end) indices into
  /// col_idx()/values().
  std::pair<int64_t, int64_t> RowRange(int i) const {
    return {row_ptr_[i], row_ptr_[i + 1]};
  }

  /// True if entry (i, j) is present (binary search within the row).
  bool Has(int i, int j) const;

  /// Dense Y = S * X. Shapes: (m,n) x (n,d) -> (m,d).
  Tensor Multiply(const Tensor& x) const;

  /// Dense Y = S^T * X. Shapes: (m,n)^T x (m,d) -> (n,d).
  ///
  /// Row-parallel like Multiply(): the first call builds (and caches) a
  /// transposed CSR index so each *output* row is owned by one thread, with
  /// contributions accumulated in ascending original-row order — exactly
  /// the serial scatter order, so results are bit-identical to
  /// MultiplyTransposedNaive for any UMGAD_THREADS. This is the Spmm
  /// backward kernel (see ops.cc).
  Tensor MultiplyTransposed(const Tensor& x) const;

  /// The seed's serial scatter loop, kept as the cross-check oracle for
  /// tests and benches.
  Tensor MultiplyTransposedNaive(const Tensor& x) const;

  /// Build the cached transposed index now (otherwise built lazily on the
  /// first MultiplyTransposed call; concurrent first calls may duplicate
  /// the build, the first publication wins).
  void EnsureTransposedIndex() const;

  /// Per-node incoming-edge index: for each node j, the stored entries
  /// (i -> j) in ascending source-row order, with each entry's position in
  /// the CSR arrays (`col_idx()`/`values()` order). Because the CSR itself
  /// is sorted by (row, col), ascending source order per node is exactly
  /// ascending CSR position — the order in which a serial sweep over all
  /// rows touches that node.
  ///
  /// This is the write-ownership map for backward kernels whose serial form
  /// scatters into per-destination rows (the GAT edge-softmax backward in
  /// tensor/ops.cc): partitioning by destination node makes every write
  /// exclusive to one thread while the ascending-source order reproduces
  /// the serial accumulation bit-for-bit.
  struct IncomingIndex {
    std::vector<int64_t> node_ptr;  // size cols() + 1
    std::vector<int> src;           // size nnz: source row per incoming edge
    std::vector<int64_t> edge;      // size nnz: CSR position of the edge
  };

  /// Build the cached incoming-edge index now (same lazy/concurrent
  /// publication contract as EnsureTransposedIndex()).
  void EnsureIncomingIndex() const;

  /// The incoming-edge index, building it on first use.
  std::shared_ptr<const IncomingIndex> incoming_index() const;

  /// Attach a cache-blocked row schedule (normally the one VertexPartition
  /// built for the whole MultiplexGraph — see src/graph/partition/):
  /// Multiply / MultiplyTransposed and the GAT edge-softmax kernels in
  /// tensor/ops.cc then iterate rows block-affinely instead of as flat row
  /// ranges. `blocks->block_of` must cover rows() (square operators reuse
  /// the same schedule for output columns); null detaches. Logically const
  /// like the lazy caches — attaching never changes any kernel's floats,
  /// only its iteration schedule — and published with the same shared_ptr
  /// atomics, so prewarm-time attachment cannot race readers. Copies drop
  /// the attachment.
  void AttachRowBlocks(std::shared_ptr<const RowBlocks> blocks) const;

  /// The attached block schedule, or null when running flat.
  std::shared_ptr<const RowBlocks> row_blocks() const {
    return std::atomic_load_explicit(&blocks_, std::memory_order_acquire);
  }

  /// Row sums (weighted degrees) as a length-m vector.
  std::vector<double> RowSums() const;

  /// Symmetrically normalised adjacency with self loops:
  /// D^{-1/2} (S + I) D^{-1/2} where D is the degree of (S + I).
  /// The standard GCN propagation operator.
  SparseMatrix NormalizedWithSelfLoops() const;

  /// Row-stochastic normalisation D^{-1} S (used by RWR and some baselines).
  SparseMatrix RowNormalized() const;

  /// All stored entries as COO edges (upper+lower; one per stored entry).
  std::vector<Edge> ToEdges() const;

  /// Dense copy (tests and small-graph scoring only).
  Tensor ToDense() const;

  // Copies drop the lazy caches; a copy of a borrowed matrix stays borrowed
  // (it shares the payload keepalive instead of materialising the arrays).
  SparseMatrix(const SparseMatrix& o)
      : rows_(o.rows_), cols_(o.cols_), row_ptr_store_(o.row_ptr_store_),
        col_idx_store_(o.col_idx_store_), values_store_(o.values_store_),
        payload_(o.payload_) {
    if (payload_ != nullptr) {
      row_ptr_ = o.row_ptr_;
      col_idx_ = o.col_idx_;
      values_ = o.values_;
    } else {
      SyncSpans();
    }
  }
  SparseMatrix& operator=(const SparseMatrix& o) {
    if (this != &o) {
      SparseMatrix copy(o);
      *this = std::move(copy);
    }
    return *this;
  }
  SparseMatrix(SparseMatrix&&) = default;
  SparseMatrix& operator=(SparseMatrix&&) = default;

 private:
  /// Re-points the span views at the owned vectors (after any store write).
  void SyncSpans() {
    row_ptr_ = row_ptr_store_;
    col_idx_ = col_idx_store_;
    values_ = values_store_;
  }

  /// Deep-copies borrowed arrays into the owned vectors and drops the
  /// payload. Called by mutating factories before they write; no-op for
  /// owned matrices.
  void MaterializeOwned();
  /// CSR of S^T: per original column, the (row, value) entries in ascending
  /// row order. Built lazily by EnsureTransposedIndex().
  struct TransposedIndex {
    std::vector<int64_t> col_ptr;  // size cols_ + 1
    std::vector<int> row_idx;      // size nnz
    std::vector<float> values;     // size nnz
  };

  int rows_;
  int cols_;
  // Owned storage (empty while borrowing) plus the span views every reader
  // goes through. For owned matrices the spans alias the vectors below; for
  // borrowed ones they alias external storage kept alive by payload_.
  std::vector<int64_t> row_ptr_store_;
  std::vector<int> col_idx_store_;
  std::vector<float> values_store_;
  std::shared_ptr<const void> payload_;
  ConstSpan<int64_t> row_ptr_;
  ConstSpan<int> col_idx_;
  ConstSpan<float> values_;
  // Mutable caches: logically const (derived from the CSR arrays, which are
  // immutable after construction). Concurrent lazy builds use the
  // shared_ptr atomic free functions (acquire load + CAS publication);
  // mutation (assignment) must not race with use, like the CSR arrays
  // themselves.
  mutable std::shared_ptr<const TransposedIndex> transposed_;
  mutable std::shared_ptr<const IncomingIndex> incoming_;
  mutable std::shared_ptr<const RowBlocks> blocks_;
};

}  // namespace umgad

#endif  // UMGAD_TENSOR_SPARSE_H_
