#ifndef UMGAD_TENSOR_POOL_H_
#define UMGAD_TENSOR_POOL_H_

#include <cstddef>
#include <cstdint>

namespace umgad {

/// Process-wide recycling allocator for tensor buffers.
///
/// Every `Tensor` (and the matmul pack buffers) draws its float storage from
/// this pool. Buffers are bucketed by their exact element count — tensor
/// shapes repeat exactly across training steps, so after the first step of a
/// run every Acquire is served from a retired buffer of the same size and
/// steady-state epochs perform zero tensor mallocs (asserted in tests; see
/// docs/PERFORMANCE.md for measured traffic).
///
/// The pool has two modes, switched by `SetArenaEnabled` (default: on,
/// overridable with the `UMGAD_ARENA` environment variable):
///  - enabled:  Release caches the buffer in its size bucket; Acquire pops
///    from the bucket when possible and only falls back to `new`.
///  - disabled: every Acquire is a fresh `new float[]` and every Release a
///    `delete[]` — the seed allocator behaviour, kept as the reference mode
///    for the arena-on/off bit-identity tests.
/// Mode changes only affect future calls; buffers from either mode are
/// interchangeable (all storage ultimately comes from `new float[]`).
///
/// Thread-safe: a single mutex guards the buckets. Acquire/Release happen at
/// op granularity (one lock per tensor, not per element), so contention is
/// negligible next to the kernels.
class TensorPool {
 public:
  struct Stats {
    /// Buffers/bytes handed out that required a fresh heap allocation
    /// (cumulative). Flat across steady-state epochs when the arena is on.
    int64_t fresh_buffers = 0;
    int64_t fresh_bytes = 0;
    /// Acquires served from a recycled buffer (cumulative).
    int64_t reused_buffers = 0;
    /// Currently cached (idle) buffers/bytes.
    int64_t cached_buffers = 0;
    int64_t cached_bytes = 0;
  };

  /// The process-wide pool. Never destroyed (avoids static-destruction
  /// races with late-destroyed tensors); the pointer keeps it reachable so
  /// LeakSanitizer stays quiet.
  static TensorPool& Global();

  /// A zero-initialised buffer of `n` floats.
  float* Acquire(size_t n);
  /// An uninitialised buffer of `n` floats (for callers that overwrite the
  /// whole buffer, e.g. full copies and the matmul pack buffers).
  float* AcquireUninit(size_t n);
  /// Return a buffer obtained from Acquire*(n) for reuse.
  void Release(float* p, size_t n);

  /// Free all cached buffers (stats keep their cumulative counters).
  void Trim();

  Stats stats() const;

  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

 private:
  TensorPool();
  ~TensorPool();

  struct Impl;
  Impl* impl_;
};

/// Whether the arena machinery (tensor-buffer recycling in TensorPool and
/// slab allocation in ag::Tape) is active. Reads `UMGAD_ARENA` on first use:
/// unset / "1" / anything but "0" means on.
bool ArenaEnabled();

/// Toggle the arena machinery at runtime (tests and benchmarks). Affects
/// future allocations only; outstanding buffers and nodes remain valid.
void SetArenaEnabled(bool enabled);

/// RAII scratch buffer drawn from the global pool (uninitialised).
class PooledBuffer {
 public:
  explicit PooledBuffer(size_t n)
      : n_(n), data_(TensorPool::Global().AcquireUninit(n)) {}
  ~PooledBuffer() { TensorPool::Global().Release(data_, n_); }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  float* get() { return data_; }

 private:
  size_t n_;
  float* data_;
};

}  // namespace umgad

#endif  // UMGAD_TENSOR_POOL_H_
