#ifndef UMGAD_TENSOR_OPS_H_
#define UMGAD_TENSOR_OPS_H_

#include <memory>
#include <vector>

#include "tensor/autograd.h"
#include "tensor/sparse.h"

namespace umgad {
namespace ag {

// ---------------------------------------------------------------------------
// Elementwise / linear algebra
// ---------------------------------------------------------------------------

VarPtr Add(const VarPtr& a, const VarPtr& b);
VarPtr Sub(const VarPtr& a, const VarPtr& b);
VarPtr AddN(const std::vector<VarPtr>& xs);
VarPtr Hadamard(const VarPtr& a, const VarPtr& b);
VarPtr ScalarMul(const VarPtr& a, float alpha);

/// C = A * B (dense).
VarPtr MatMul(const VarPtr& a, const VarPtr& b);

/// Y = S * X with a constant sparse operator (the normalised adjacency).
/// The matrix is shared, not copied; it must outlive the graph, which holds
/// a reference via shared_ptr.
VarPtr Spmm(std::shared_ptr<const SparseMatrix> s, const VarPtr& x);

/// Y = X + 1*bias^T broadcast over rows; bias is 1 x d.
VarPtr AddRowBroadcast(const VarPtr& x, const VarPtr& bias);

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

VarPtr Relu(const VarPtr& a);
VarPtr LeakyRelu(const VarPtr& a, float slope);
VarPtr Sigmoid(const VarPtr& a);
VarPtr Tanh(const VarPtr& a);
VarPtr Elu(const VarPtr& a, float alpha = 1.0f);

// ---------------------------------------------------------------------------
// Row / shape ops
// ---------------------------------------------------------------------------

/// Per-row L2 normalisation; rows with norm < eps pass through unscaled with
/// zero gradient (they only arise from degenerate inputs).
VarPtr RowL2Normalize(const VarPtr& a, float eps = 1e-12f);

/// out.row(i) = a.row(idx[i]).
VarPtr GatherRows(const VarPtr& a, std::vector<int> idx);

/// Copy of `a` with rows in `masked_idx` replaced by the (learnable) 1 x d
/// `token` — the paper's [MASK] token substitution (Eq. 1).
VarPtr MaskRows(const VarPtr& a, std::vector<int> masked_idx,
                const VarPtr& token);

/// y = sum_r softmax(logits)_r * xs[r]. Learnable relation fusion (Eq. 3):
/// the logits are free parameters and the weights live on the simplex.
VarPtr SimplexWeightedSum(const std::vector<VarPtr>& xs,
                          const VarPtr& logits);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

VarPtr Sum(const VarPtr& a);
VarPtr Mean(const VarPtr& a);

// ---------------------------------------------------------------------------
// Fused losses
// ---------------------------------------------------------------------------

/// Scaled cosine reconstruction error over a row subset (Eq. 4 / Eq. 13):
///   L = (1/|idx|) * sum_{i in idx} (1 - cos(recon_i, target_i))^eta.
/// `target` carries no gradient.
///
/// Forward and backward are row-partitioned over the pool (per-row terms in
/// parallel, the scalar sum serial in index order), bit-identical to the
/// kept-serial ScaledCosineLossNaive for any UMGAD_THREADS. When `idx`
/// contains duplicate rows the backward falls back to the serial scatter.
///
/// `blocks` (optional, from the graph partitioner) regroups the pool so
/// workers sweep rows block-affinely — a cache-locality schedule only,
/// bit-identical to the flat order for any P / thread count.
VarPtr ScaledCosineLoss(const VarPtr& recon, const Tensor& target,
                        std::vector<int> idx, float eta,
                        std::shared_ptr<const RowBlocks> blocks = nullptr);

/// The seed's fully serial forward+backward loops, kept as the
/// differential-testing oracle (tests/oracle_harness.h).
VarPtr ScaledCosineLossNaive(const VarPtr& recon, const Tensor& target,
                             std::vector<int> idx, float eta);

/// Mean squared error over all entries (or a row subset if idx not empty).
VarPtr MseLoss(const VarPtr& recon, const Tensor& target,
               std::vector<int> idx = {});

/// One masked edge with its softmax candidate set; cands[0] is the true
/// (masked) endpoint, the rest are negative samples.
struct EdgeCandidateSet {
  int src = 0;
  std::vector<int> cands;
};

/// Masked-edge reconstruction loss (Eq. 7): mean over sets of
///   -log softmax_c(z_src . z_cand)[0].
///
/// Forward fans the per-set softmaxes out across the pool; backward uses
/// the two-phase ownership trick — per-(set, candidate) coefficients from
/// the saved probabilities, then a scatter partitioned by *destination*
/// row of dz (sources and candidates alias freely across sets), with each
/// row's contributions applied in the serial loop's (set, candidate)
/// order. Bit-identical to MaskedEdgeSoftmaxCENaive for any UMGAD_THREADS.
/// `blocks` optionally makes both phases block-affine (cache schedule
/// only; same floats).
VarPtr MaskedEdgeSoftmaxCE(const VarPtr& z,
                           std::vector<EdgeCandidateSet> sets,
                           std::shared_ptr<const RowBlocks> blocks = nullptr);

/// Kept-serial oracle of MaskedEdgeSoftmaxCE.
VarPtr MaskedEdgeSoftmaxCENaive(const VarPtr& z,
                                std::vector<EdgeCandidateSet> sets);

/// Pairwise dot-product BCE: mean_i BCE(sigmoid(a_i . b_i), labels_i).
/// The discriminator loss used by the contrastive baselines.
VarPtr PairDotBceLoss(const VarPtr& a, const VarPtr& b,
                      std::vector<float> labels);

/// Dual-view contrastive loss (Eq. 17) between original-view rows `zo` and
/// augmented-view rows `za`, with per-node negatives `neg_idx`:
///   L = mean_i [ -zo_i . za_i + log(e^{zo_i . zo_j} + e^{zo_i . za_j}) ],
/// j = neg_idx[i]. Inputs should be row-normalised for numeric stability.
///
/// Forward is row-parallel (serial sum of per-row terms); backward
/// partitions by destination row, merging each row's own (i == v) and
/// incoming-negative (neg_idx[i] == v) contributions in ascending-i order
/// — the serial order. Bit-identical to DualContrastiveLossNaive.
/// `blocks` optionally makes the row sweeps block-affine (cache schedule
/// only; same floats).
VarPtr DualContrastiveLoss(const VarPtr& zo, const VarPtr& za,
                           std::vector<int> neg_idx,
                           std::shared_ptr<const RowBlocks> blocks = nullptr);

/// Kept-serial oracle of DualContrastiveLoss.
VarPtr DualContrastiveLossNaive(const VarPtr& zo, const VarPtr& za,
                                std::vector<int> neg_idx);

/// Cumulative bytes freshly allocated for the loss-backward ownership
/// buckets (the counting-sort scratch both parallel losses build each
/// step). The scratch is per-thread and reused across steps, so repeating a
/// backward at unchanged shapes must leave this counter flat — pool_test
/// asserts zero steady-state scratch allocations through it.
int64_t LossScratchFreshBytes();

// ---------------------------------------------------------------------------
// Graph attention
// ---------------------------------------------------------------------------

/// Single-head GAT aggregation: given projected features H (N x d) and
/// attention vectors a_src, a_dst (1 x d),
///   e_ij   = LeakyReLU(<a_src, h_i> + <a_dst, h_j>)  for j in N(i) u {i},
///   alpha  = softmax_j(e_ij),
///   out_i  = sum_j alpha_ij h_j.
/// The adjacency must contain self-loops if self-attention is desired (the
/// callers add them). Backward differentiates through the edge softmax via
/// EdgeSoftmaxBackward (parallel; bit-identical to GatAttentionNaive).
VarPtr GatAttention(const VarPtr& h, const VarPtr& a_src, const VarPtr& a_dst,
                    std::shared_ptr<const SparseMatrix> adj, float slope);

/// Kept-serial oracle of GatAttention: serial forward loops and
/// EdgeSoftmaxBackwardNaive in the closure.
VarPtr GatAttentionNaive(const VarPtr& h, const VarPtr& a_src,
                         const VarPtr& a_dst,
                         std::shared_ptr<const SparseMatrix> adj,
                         float slope);

// --- Raw edge-softmax kernels (exposed for tests and benches) ---

/// Gradient inputs/accumulators of the edge-softmax backward. Non-null
/// accumulator pointers are += targets, matching the tape closure's
/// accumulate-into-grad semantics.
struct EdgeSoftmaxGrads {
  const Tensor* g = nullptr;      // upstream gradient, n x d
  const Tensor* h = nullptr;      // forward features, n x d
  const Tensor* a_src = nullptr;  // 1 x d
  const Tensor* a_dst = nullptr;  // 1 x d
  Tensor* dh = nullptr;
  Tensor* da_src = nullptr;
  Tensor* da_dst = nullptr;
};

/// The GAT attention forward kernel: fills `out` (n x d, overwritten) and
/// the per-edge softmax state (`alpha` weights, `pos` pre-activation
/// signs) consumed by the backward. Row-parallel; the *Naive variant is
/// the same arithmetic in plain serial loops.
void EdgeSoftmaxForward(const SparseMatrix& adj, float slope, const Tensor& h,
                        const Tensor& a_src, const Tensor& a_dst, Tensor* out,
                        std::vector<float>* alpha, std::vector<char>* pos);
void EdgeSoftmaxForwardNaive(const SparseMatrix& adj, float slope,
                             const Tensor& h, const Tensor& a_src,
                             const Tensor& a_dst, Tensor* out,
                             std::vector<float>* alpha,
                             std::vector<char>* pos);

/// Edge-softmax backward. The parallel kernel runs in three row-partitioned
/// phases — per-edge softmax gradients by source row, the dh/dt scatter by
/// *destination* node via the adjacency's cached incoming-edge index
/// (SparseMatrix::incoming_index()), then the per-row a_src/a_dst terms —
/// and is bit-identical to the kept-serial scatter loop
/// (EdgeSoftmaxBackwardNaive) for any UMGAD_THREADS.
void EdgeSoftmaxBackward(const SparseMatrix& adj, float slope,
                         const std::vector<float>& alpha,
                         const std::vector<char>& pos,
                         const EdgeSoftmaxGrads& io);
void EdgeSoftmaxBackwardNaive(const SparseMatrix& adj, float slope,
                              const std::vector<float>& alpha,
                              const std::vector<char>& pos,
                              const EdgeSoftmaxGrads& io);

}  // namespace ag
}  // namespace umgad

#endif  // UMGAD_TENSOR_OPS_H_
