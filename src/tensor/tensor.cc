#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace umgad {

Tensor Tensor::Full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Identity(int n) {
  Tensor t(n, n);
  for (int i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::RowVector(std::vector<float> values) {
  int n = static_cast<int>(values.size());
  return Tensor(1, n, std::move(values));
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  UMGAD_CHECK(SameShape(other));
  const float* src = other.data();
  for (int64_t i = 0; i < size(); ++i) data_[i] += src[i];
}

void Tensor::AxpyInPlace(float alpha, const Tensor& other) {
  UMGAD_CHECK(SameShape(other));
  const float* src = other.data();
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * src[i];
}

void Tensor::ScaleInPlace(float alpha) {
  for (auto& v : data_) v *= alpha;
}

double Tensor::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::Max() const {
  UMGAD_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::Min() const {
  UMGAD_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

bool Tensor::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double Tensor::RowNorm(int i) const {
  const float* r = row(i);
  double acc = 0.0;
  for (int j = 0; j < cols_; ++j) acc += static_cast<double>(r[j]) * r[j];
  return std::sqrt(acc);
}

double Tensor::RowDot(int i, const Tensor& other, int j) const {
  UMGAD_CHECK_EQ(cols_, other.cols());
  const float* a = row(i);
  const float* b = other.row(j);
  double acc = 0.0;
  for (int c = 0; c < cols_; ++c) acc += static_cast<double>(a[c]) * b[c];
  return acc;
}

std::string Tensor::ShapeString() const {
  return StrFormat("(%d, %d)", rows_, cols_);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  Tensor c(m, n);
  // i-k-j loop order: streams over B's rows, cache-friendly for row-major.
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  Tensor c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.rows(), b.rows());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  Tensor c(m, n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  Tensor t(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.AxpyInPlace(-1.0f, b);
  return c;
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] *= bd[i];
  return c;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor c = a;
  c.ScaleInPlace(alpha);
  return c;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& idx) {
  Tensor out(static_cast<int>(idx.size()), a.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    UMGAD_CHECK(idx[i] >= 0 && idx[i] < a.rows());
    std::copy(a.row(idx[i]), a.row(idx[i]) + a.cols(),
              out.row(static_cast<int>(i)));
  }
  return out;
}

Tensor RowL2Normalize(const Tensor& a, float eps) {
  Tensor out = a;
  for (int i = 0; i < a.rows(); ++i) {
    double norm = a.RowNorm(i);
    if (norm < eps) continue;
    float inv = static_cast<float>(1.0 / norm);
    float* r = out.row(i);
    for (int j = 0; j < a.cols(); ++j) r[j] *= inv;
  }
  return out;
}

Tensor RowCosine(const Tensor& a, const Tensor& b, float eps) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor out(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    double denom = a.RowNorm(i) * b.RowNorm(i);
    out.at(i, 0) = denom < eps
                       ? 0.0f
                       : static_cast<float>(a.RowDot(i, b, i) / denom);
  }
  return out;
}

Tensor RowL2Distance(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor out(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    double acc = 0.0;
    for (int j = 0; j < a.cols(); ++j) {
      double d = static_cast<double>(ra[j]) - rb[j];
      acc += d * d;
    }
    out.at(i, 0) = static_cast<float>(std::sqrt(acc));
  }
  return out;
}

Tensor RowL1Distance(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor out(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    double acc = 0.0;
    for (int j = 0; j < a.cols(); ++j) {
      acc += std::abs(static_cast<double>(ra[j]) - rb[j]);
    }
    out.at(i, 0) = static_cast<float>(acc);
  }
  return out;
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  double m = 0.0;
  const float* da = a.data();
  const float* db = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(da[i]) - db[i]));
  }
  return m;
}

}  // namespace umgad
