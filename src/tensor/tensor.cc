#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "tensor/dispatch/registry.h"

namespace umgad {

namespace {

/// Grain sizes for the parallel hot loops (shared with src/tensor/ops.cc
/// via common/thread_pool.h).
constexpr int64_t kElemGrain = kParallelElemGrain;
constexpr int64_t kRowGrain = kParallelRowGrain;

}  // namespace

Tensor Tensor::Full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Identity(int n) {
  Tensor t(n, n);
  for (int i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::RowVector(std::vector<float> values) {
  int n = static_cast<int>(values.size());
  return Tensor(1, n, values);
}

void Tensor::Fill(float value) {
  std::fill(data_.data(), data_.data() + data_.size(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  UMGAD_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data_.data();
  ParallelFor(size(), kElemGrain, [src, dst](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dst[i] += src[i];
  });
}

void Tensor::AxpyInPlace(float alpha, const Tensor& other) {
  UMGAD_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data_.data();
  ParallelFor(size(), kElemGrain, [src, dst, alpha](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dst[i] += alpha * src[i];
  });
}

void Tensor::ScaleInPlace(float alpha) {
  float* dst = data_.data();
  ParallelFor(size(), kElemGrain, [dst, alpha](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dst[i] *= alpha;
  });
}

double Tensor::SquaredNorm() const {
  double acc = 0.0;
  const float* d = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) acc += static_cast<double>(d[i]) * d[i];
  return acc;
}

double Tensor::Sum() const {
  double acc = 0.0;
  const float* d = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) acc += d[i];
  return acc;
}

double Tensor::Max() const {
  UMGAD_CHECK(!data_.empty());
  return *std::max_element(data_.data(), data_.data() + data_.size());
}

double Tensor::Min() const {
  UMGAD_CHECK(!data_.empty());
  return *std::min_element(data_.data(), data_.data() + data_.size());
}

bool Tensor::AllFinite() const {
  const float* d = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) {
    if (!std::isfinite(d[i])) return false;
  }
  return true;
}

double Tensor::RowNorm(int i) const {
  const float* r = row(i);
  double acc = 0.0;
  for (int j = 0; j < cols_; ++j) acc += static_cast<double>(r[j]) * r[j];
  return std::sqrt(acc);
}

double Tensor::RowDot(int i, const Tensor& other, int j) const {
  UMGAD_CHECK_EQ(cols_, other.cols());
  const float* a = row(i);
  const float* b = other.row(j);
  double acc = 0.0;
  for (int c = 0; c < cols_; ++c) acc += static_cast<double>(a[c]) * b[c];
  return acc;
}

std::string Tensor::ShapeString() const {
  return StrFormat("(%d, %d)", rows_, cols_);
}

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  Tensor c(m, n);
  // i-k-j loop order: streams over B's rows, cache-friendly for row-major.
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  Tensor c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor MatMulTransANaive(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.rows(), b.rows());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  Tensor c(m, n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Dense products dispatch through the kernel registry (src/tensor/dispatch/):
// the blocked register-tiled core now lives in dispatch/matmul_variants.cc
// (design notes in docs/PERFORMANCE.md, registry design in
// docs/ARCHITECTURE.md §13). Every registered variant accumulates each C
// element in ascending-k order by exactly one thread, so any selection is
// bit-identical to MatMulNaive and invariant to UMGAD_THREADS.
// ---------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.rows());
  return dispatch::KernelRegistry::Global()->matmul()(a, b);
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.cols(), b.cols());
  return dispatch::KernelRegistry::Global()->matmul_trans_b()(a, b);
}

// A^T B stays a direct transpose + plain product; it only runs on the
// training tape (gradient accumulation), where the registry's matmul
// selection already applies through MatMul.
Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.rows(), b.rows());
  return MatMul(Transpose(a), b);
}

Tensor Transpose(const Tensor& a) {
  Tensor t(a.cols(), a.rows());
  const int rows = a.rows();
  const int cols = a.cols();
  if (a.size() < kElemGrain) {
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) t.at(j, i) = a.at(i, j);
    }
    return t;
  }
  // Cache-blocked 64x64 tiles, parallel over output row blocks (= input
  // column blocks); tiles are disjoint so the partition is race-free.
  constexpr int kTile = 64;
  const int col_blocks = (cols + kTile - 1) / kTile;
  ParallelFor(col_blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t bj = b0; bj < b1; ++bj) {
      const int j0 = static_cast<int>(bj) * kTile;
      const int j1 = std::min(cols, j0 + kTile);
      for (int i0 = 0; i0 < rows; i0 += kTile) {
        const int i1 = std::min(rows, i0 + kTile);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a.row(i);
          for (int j = j0; j < j1; ++j) {
            t.row(j)[i] = arow[j];
          }
        }
      }
    }
  });
  return t;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.AxpyInPlace(-1.0f, b);
  return c;
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] *= bd[i];
  return c;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor c = a;
  c.ScaleInPlace(alpha);
  return c;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& idx) {
  Tensor out(static_cast<int>(idx.size()), a.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    UMGAD_CHECK(idx[i] >= 0 && idx[i] < a.rows());
    std::copy(a.row(idx[i]), a.row(idx[i]) + a.cols(),
              out.row(static_cast<int>(i)));
  }
  return out;
}

Tensor RowL2Normalize(const Tensor& a, float eps) {
  Tensor out = a;
  ParallelFor(a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < r1; ++i) {
      double norm = a.RowNorm(i);
      if (norm < eps) continue;
      float inv = static_cast<float>(1.0 / norm);
      float* r = out.row(i);
      for (int j = 0; j < a.cols(); ++j) r[j] *= inv;
    }
  });
  return out;
}

Tensor RowCosine(const Tensor& a, const Tensor& b, float eps) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor out(a.rows(), 1);
  ParallelFor(a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < r1; ++i) {
      double denom = a.RowNorm(i) * b.RowNorm(i);
      out.at(i, 0) = denom < eps
                         ? 0.0f
                         : static_cast<float>(a.RowDot(i, b, i) / denom);
    }
  });
  return out;
}

Tensor RowL2Distance(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor out(a.rows(), 1);
  ParallelFor(a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < r1; ++i) {
      const float* ra = a.row(i);
      const float* rb = b.row(i);
      double acc = 0.0;
      for (int j = 0; j < a.cols(); ++j) {
        double d = static_cast<double>(ra[j]) - rb[j];
        acc += d * d;
      }
      out.at(i, 0) = static_cast<float>(std::sqrt(acc));
    }
  });
  return out;
}

Tensor RowL1Distance(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  Tensor out(a.rows(), 1);
  ParallelFor(a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < r1; ++i) {
      const float* ra = a.row(i);
      const float* rb = b.row(i);
      double acc = 0.0;
      for (int j = 0; j < a.cols(); ++j) {
        acc += std::abs(static_cast<double>(ra[j]) - rb[j]);
      }
      out.at(i, 0) = static_cast<float>(acc);
    }
  });
  return out;
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK(a.SameShape(b));
  double m = 0.0;
  const float* da = a.data();
  const float* db = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(da[i]) - db[i]));
  }
  return m;
}

}  // namespace umgad
