#include "tensor/autograd.h"

#include <unordered_set>

namespace umgad {
namespace ag {

VarPtr Leaf(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true,
                                "leaf");
}

VarPtr Constant(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false,
                                "const");
}

namespace {

/// Iterative post-order DFS (graphs from K masking repeats x R relations can
/// be deep enough that recursion is a liability).
void TopoSort(Node* root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_input < top.node->inputs().size()) {
      Node* child = top.node->inputs()[top.next_input].get();
      ++top.next_input;
      if (visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order->push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const VarPtr& root) {
  UMGAD_CHECK_EQ(root->value().size(), 1);
  std::vector<Node*> order;
  TopoSort(root.get(), &order);
  root->grad().Fill(1.0f);
  // Post-order list has the root last; walk in reverse so every node's
  // gradient is complete before its backward closure runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    (*it)->RunBackward();
  }
}

void ZeroGradAll(const std::vector<VarPtr>& params) {
  for (const auto& p : params) p->ZeroGrad();
}

}  // namespace ag
}  // namespace umgad
