#include "tensor/autograd.h"

#include <mutex>
#include <new>

#include "common/thread_pool.h"
#include "tensor/pool.h"

namespace umgad {
namespace ag {

// ---------------------------------------------------------------------------
// Tape: slab arenas for nodes and input-pointer arrays
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kNodesPerSlab = 256;
constexpr size_t kPtrsPerSlab = 8192;

}  // namespace

struct Tape::Impl {
  mutable std::mutex mu;

  // Slab mode (arena on). Nodes are placement-new'd consecutively; slab
  // index / offset are derived from the running count, so Reset() can walk
  // and destroy exactly the live transient prefix and rewind the count while
  // keeping the slabs for the next step.
  std::vector<void*> transient_slabs;
  size_t transient_count = 0;
  std::vector<void*> persistent_slabs;
  size_t persistent_count = 0;

  // Bump arena for input-pointer arrays (transient; rewound by Reset()).
  std::vector<Node**> ptr_slabs;
  size_t ptr_active_slab = 0;
  size_t ptr_used = 0;
  std::vector<Node**> loose_ptr_blocks;  // arrays larger than a slab

  // Heap mode (arena off): every node / array is its own allocation, freed
  // by Reset() — the seed allocator behaviour.
  std::vector<Node*> heap_transient;
  std::vector<Node*> heap_persistent;
  std::vector<Node**> heap_ptr_blocks;

  Stats stats;

  Node* SlabSlot(std::vector<void*>* slabs, size_t index) {
    const size_t slab = index / kNodesPerSlab;
    const size_t offset = index % kNodesPerSlab;
    if (slab == slabs->size()) {
      slabs->push_back(::operator new(kNodesPerSlab * sizeof(Node)));
      stats.node_slabs += 1;
      stats.slab_bytes += static_cast<int64_t>(kNodesPerSlab * sizeof(Node));
    }
    return reinterpret_cast<Node*>((*slabs)[slab]) + offset;
  }
};

Tape& Tape::Global() {
  // Intentionally leaked: persistent parameters may be referenced from
  // other statics during teardown; the static pointer keeps the arena
  // reachable so LeakSanitizer stays quiet.
  static Tape* tape = new Tape();
  return *tape;
}

Tape::Tape() : impl_(new Impl()) {}

Tape::~Tape() { delete impl_; }

Node* Tape::NewNode(Tensor value, bool requires_grad, const char* op,
                    bool persistent) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Node* slot;
  if (ArenaEnabled()) {
    if (persistent) {
      slot = impl_->SlabSlot(&impl_->persistent_slabs,
                             impl_->persistent_count);
      ++impl_->persistent_count;
    } else {
      slot = impl_->SlabSlot(&impl_->transient_slabs,
                             impl_->transient_count);
      ++impl_->transient_count;
    }
    new (slot) Node(std::move(value), requires_grad, op);
  } else {
    slot = new Node(std::move(value), requires_grad, op);
    (persistent ? impl_->heap_persistent : impl_->heap_transient)
        .push_back(slot);
  }
  if (persistent) {
    impl_->stats.persistent_nodes += 1;
  } else {
    impl_->stats.transient_nodes += 1;
    impl_->stats.total_transient_nodes += 1;
  }
  return slot;
}

Node* const* Tape::CopyInputs(const VarPtr* inputs, uint32_t n) {
  if (n == 0) return nullptr;
  std::lock_guard<std::mutex> lock(impl_->mu);
  Node** dst;
  if (!ArenaEnabled()) {
    dst = new Node*[n];
    impl_->heap_ptr_blocks.push_back(dst);
  } else if (n > kPtrsPerSlab) {
    dst = new Node*[n];
    impl_->loose_ptr_blocks.push_back(dst);
  } else {
    if (impl_->ptr_active_slab == impl_->ptr_slabs.size() ||
        impl_->ptr_used + n > kPtrsPerSlab) {
      if (impl_->ptr_active_slab < impl_->ptr_slabs.size() &&
          impl_->ptr_used + n > kPtrsPerSlab) {
        ++impl_->ptr_active_slab;
      }
      if (impl_->ptr_active_slab == impl_->ptr_slabs.size()) {
        impl_->ptr_slabs.push_back(new Node*[kPtrsPerSlab]);
        impl_->stats.node_slabs += 1;
        impl_->stats.slab_bytes +=
            static_cast<int64_t>(kPtrsPerSlab * sizeof(Node*));
      }
      impl_->ptr_used = 0;
    }
    dst = impl_->ptr_slabs[impl_->ptr_active_slab] + impl_->ptr_used;
    impl_->ptr_used += n;
  }
  for (uint32_t i = 0; i < n; ++i) dst[i] = inputs[i].get();
  return dst;
}

void Tape::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  // Slab-mode transients: destroy the live prefix, keep the slabs.
  for (size_t i = 0; i < impl_->transient_count; ++i) {
    Node* n = reinterpret_cast<Node*>(
                  impl_->transient_slabs[i / kNodesPerSlab]) +
              i % kNodesPerSlab;
    n->~Node();
  }
  impl_->transient_count = 0;
  impl_->ptr_active_slab = 0;
  impl_->ptr_used = 0;
  for (Node** block : impl_->loose_ptr_blocks) delete[] block;
  impl_->loose_ptr_blocks.clear();
  // Heap-mode transients.
  for (Node* n : impl_->heap_transient) delete n;
  impl_->heap_transient.clear();
  for (Node** block : impl_->heap_ptr_blocks) delete[] block;
  impl_->heap_ptr_blocks.clear();
  impl_->stats.transient_nodes = 0;
}

Tape::Stats Tape::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

// ---------------------------------------------------------------------------
// ParamScope: scoped persistent region
// ---------------------------------------------------------------------------

ParamScope::ParamScope() {
  Tape::Impl* impl = Tape::Global().impl_;
  std::lock_guard<std::mutex> lock(impl->mu);
  slab_mark_ = impl->persistent_count;
  heap_mark_ = impl->heap_persistent.size();
}

ParamScope::~ParamScope() {
  Tape::Impl* impl = Tape::Global().impl_;
  std::lock_guard<std::mutex> lock(impl->mu);
  // LIFO discipline: an inner scope must have already rewound past its own
  // marks, never below ours.
  UMGAD_CHECK_GE(impl->persistent_count, slab_mark_);
  UMGAD_CHECK_GE(impl->heap_persistent.size(), heap_mark_);
  int64_t destroyed = 0;
  // Slab mode: destroy the scope's suffix in reverse and rewind the bump
  // count; the slabs themselves are kept for the next construction.
  for (size_t i = impl->persistent_count; i-- > slab_mark_;) {
    Node* n = reinterpret_cast<Node*>(
                  impl->persistent_slabs[i / kNodesPerSlab]) +
              i % kNodesPerSlab;
    n->~Node();
    ++destroyed;
  }
  impl->persistent_count = slab_mark_;
  // Heap mode (arena off): the scope's suffix is individually freed.
  while (impl->heap_persistent.size() > heap_mark_) {
    delete impl->heap_persistent.back();
    impl->heap_persistent.pop_back();
    ++destroyed;
  }
  impl->stats.persistent_nodes -= destroyed;
}

// ---------------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------------

VarPtr Leaf(Tensor value) {
  return Tape::Global().NewNode(std::move(value), /*requires_grad=*/true,
                                "leaf", /*persistent=*/true);
}

VarPtr Constant(Tensor value) {
  return Tape::Global().NewNode(std::move(value), /*requires_grad=*/false,
                                "const", /*persistent=*/false);
}

VarPtr PersistentConstant(Tensor value) {
  return Tape::Global().NewNode(std::move(value), /*requires_grad=*/false,
                                "const", /*persistent=*/true);
}

// ---------------------------------------------------------------------------
// Backward: batched, order-preserving parallel sweep
//
// The serial reference semantics are the seed's: reverse post-order walk,
// each node's closure accumulating into its inputs' gradients. To run tape
// segments in parallel WITHOUT changing a single float: nodes are executed
// in "batches". A batch is built by scanning the remaining nodes in serial
// order and admitting every node that (a) has all consumers executed and
// (b) writes no gradient already claimed this scan — every node scanned
// (admitted or skipped) claims its write-set, so a later node can never
// overtake an earlier one that touches the same gradient. Batch members
// therefore write disjoint gradients (safe to run concurrently in any
// order), and for each gradient the accumulation sequence across batches is
// exactly the serial order. Results are bit-identical for any UMGAD_THREADS
// and identical to the serial sweep.
// ---------------------------------------------------------------------------

namespace {

/// Monotone stamps for the scratch fields in Node. Backward is documented
/// non-reentrant, so plain statics are fine.
uint64_t g_backward_epoch = 0;

/// Scan cap: bounds the O(remaining) rescan cost per batch. Must not depend
/// on the thread count (it never changes results, but keeping the schedule
/// fixed makes behaviour easier to reason about).
constexpr size_t kMaxBatch = 64;

}  // namespace

void Backward(const VarPtr& root) {
  UMGAD_CHECK_EQ(root->value().size(), 1);
  root->grad().Fill(1.0f);
  if (!root->requires_grad()) return;  // graph of constants: nothing to do

  const uint64_t epoch = ++g_backward_epoch;

  // Post-order DFS over the grad-requiring subgraph (iterative: graphs from
  // K masking repeats x R relations can be deep enough that recursion is a
  // liability). Reversed, this is the seed's serial execution order.
  std::vector<Node*> order;
  struct Frame {
    Node* node;
    uint32_t next_input;
  };
  std::vector<Frame> stack;
  root->topo_mark_ = epoch;
  stack.push_back({root.get(), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    Node* n = top.node;
    if (top.next_input < n->num_inputs_) {
      Node* child = n->inputs_[top.next_input];
      ++top.next_input;
      if (child->requires_grad_ && child->topo_mark_ != epoch) {
        child->topo_mark_ = epoch;
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }

  std::vector<Node*> sched(order.rbegin(), order.rend());
  const size_t n = sched.size();
  for (Node* v : sched) {
    v->pending_consumers_ = 0;
    v->sched_stamp_ = 0;
  }
  for (Node* v : sched) {
    for (uint32_t j = 0; j < v->num_inputs_; ++j) {
      Node* u = v->inputs_[j];
      if (u->requires_grad_) ++u->pending_consumers_;
    }
  }

  std::vector<uint8_t> done(n, 0);
  std::vector<Node*> batch;
  batch.reserve(kMaxBatch);
  uint64_t scan = 0;
  size_t executed = 0;
  size_t first_remaining = 0;
  while (executed < n) {
    ++scan;
    batch.clear();
    while (first_remaining < n && done[first_remaining]) ++first_remaining;
    bool batch_is_wide = false;
    for (size_t i = first_remaining; i < n && batch.size() < kMaxBatch;
         ++i) {
      Node* v = sched[i];
      if (done[i]) continue;
      bool admit = v->pending_consumers_ == 0;
      for (uint32_t j = 0; admit && j < v->num_inputs_; ++j) {
        Node* u = v->inputs_[j];
        if (u->requires_grad_ && u->sched_stamp_ == scan) admit = false;
      }
      // Wide closures (internally parallel over the pool — edge-softmax /
      // fused-loss backward) run as singleton batches on the calling
      // thread, where their own ParallelFor reaches the pool instead of
      // being inlined inside a batch worker. An admissible wide node joins
      // only an empty batch (and closes it); a non-empty batch defers it to
      // the next scan. Whether a node is wide depends only on its op, so
      // the schedule is identical for every thread count.
      if (admit && v->wide_backward() && !batch.empty()) admit = false;
      if (admit) {
        batch.push_back(v);
        done[i] = 1;
        batch_is_wide = v->wide_backward();
      }
      // Claim the write-set either way: a skipped node must still block
      // later nodes from overtaking it on a shared gradient.
      for (uint32_t j = 0; j < v->num_inputs_; ++j) {
        Node* u = v->inputs_[j];
        if (u->requires_grad_) u->sched_stamp_ = scan;
      }
      if (batch_is_wide) break;
    }
    // The first remaining node always qualifies (its consumers are earlier
    // in serial order, hence executed, and it is scanned before any claim),
    // so every pass makes progress.
    UMGAD_CHECK(!batch.empty());
    if (batch.size() == 1) {
      // Direct call on this thread: outside any parallel region, so a wide
      // closure's internal ParallelFor can fan out.
      batch[0]->RunBackward();
    } else {
      ParallelFor(static_cast<int64_t>(batch.size()), 1,
                  [&batch](int64_t b, int64_t e) {
                    for (int64_t i = b; i < e; ++i) batch[i]->RunBackward();
                  });
    }
    executed += batch.size();
    for (Node* v : batch) {
      for (uint32_t j = 0; j < v->num_inputs_; ++j) {
        Node* u = v->inputs_[j];
        if (u->requires_grad_) --u->pending_consumers_;
      }
    }
  }
}

void ZeroGradAll(const std::vector<VarPtr>& params) {
  for (const auto& p : params) p->ZeroGrad();
}

}  // namespace ag
}  // namespace umgad
