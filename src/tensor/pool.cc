#include "tensor/pool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace umgad {

namespace {

std::atomic<bool>& ArenaFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("UMGAD_ARENA");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}

}  // namespace

bool ArenaEnabled() { return ArenaFlag().load(std::memory_order_relaxed); }

void SetArenaEnabled(bool enabled) {
  ArenaFlag().store(enabled, std::memory_order_relaxed);
}

struct TensorPool::Impl {
  std::mutex mu;
  // Size-class buckets keyed by exact element count. Shapes repeat exactly
  // across steps, so exact keying maximises reuse and wastes no memory on
  // rounding.
  std::unordered_map<size_t, std::vector<float*>> buckets;
  Stats stats;
};

TensorPool& TensorPool::Global() {
  // Intentionally leaked: tensors owned by other never-destroyed singletons
  // (the tape) release buffers during process teardown, which must not race
  // with pool destruction.
  static TensorPool* pool = new TensorPool();
  return *pool;
}

TensorPool::TensorPool() : impl_(new Impl()) {}

TensorPool::~TensorPool() {
  Trim();
  delete impl_;
}

float* TensorPool::AcquireUninit(size_t n) {
  if (n == 0) return nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (ArenaEnabled()) {
      auto it = impl_->buckets.find(n);
      if (it != impl_->buckets.end() && !it->second.empty()) {
        float* p = it->second.back();
        it->second.pop_back();
        impl_->stats.reused_buffers += 1;
        impl_->stats.cached_buffers -= 1;
        impl_->stats.cached_bytes -= static_cast<int64_t>(n * sizeof(float));
        return p;
      }
    }
    impl_->stats.fresh_buffers += 1;
    impl_->stats.fresh_bytes += static_cast<int64_t>(n * sizeof(float));
  }
  return new float[n];
}

float* TensorPool::Acquire(size_t n) {
  float* p = AcquireUninit(n);
  for (size_t i = 0; i < n; ++i) p[i] = 0.0f;
  return p;
}

void TensorPool::Release(float* p, size_t n) {
  if (p == nullptr) return;
  if (ArenaEnabled()) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->buckets[n].push_back(p);
    impl_->stats.cached_buffers += 1;
    impl_->stats.cached_bytes += static_cast<int64_t>(n * sizeof(float));
    return;
  }
  delete[] p;
}

void TensorPool::Trim() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [n, bucket] : impl_->buckets) {
    (void)n;
    for (float* p : bucket) delete[] p;
  }
  impl_->buckets.clear();
  impl_->stats.cached_buffers = 0;
  impl_->stats.cached_bytes = 0;
}

TensorPool::Stats TensorPool::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

}  // namespace umgad
