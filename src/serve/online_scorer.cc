#include "serve/online_scorer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/thread_pool.h"
#include "core/scorer.h"
#include "core/views.h"
#include "nn/gcn.h"
#include "tensor/autograd.h"
#include "tensor/dispatch/bf16.h"
#include "tensor/dispatch/quantize.h"

namespace umgad {
namespace serve {
namespace {

double SigmoidD(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// The batch activations' float arithmetic (tensor/ops.cc UnaryOp lambdas),
/// applied elementwise after a stage's accumulation.
float ApplyActivation(float x, nn::Activation act) {
  switch (act) {
    case nn::Activation::kNone:
      return x;
    case nn::Activation::kRelu:
      return x > 0.0f ? x : 0.0f;
    case nn::Activation::kLeakyRelu:
      return x > 0.0f ? x : 0.2f * x;
    case nn::Activation::kElu:
      return x > 0.0f ? x : std::exp(x) - 1.0f;
    case nn::Activation::kTanh:
      return std::tanh(x);
  }
  return x;
}

uint64_t MixSeed(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Seed of the per-(view, relation, node) negative-sample stream. A node's
/// structure-residual negatives depend on nothing but this seed and the
/// node's own adjacency row, which is what makes single-node re-scoring
/// possible (the training-time sampler walks one sequential stream
/// node-major and cannot be replayed per node).
uint64_t NegativeStreamSeed(uint64_t model_seed, int view, int rel, int node) {
  uint64_t h = MixSeed(model_seed, 0x53455256454E4547ULL);  // "SERVENEG"
  h = MixSeed(h, static_cast<uint64_t>(view));
  h = MixSeed(h, static_cast<uint64_t>(rel));
  h = MixSeed(h, static_cast<uint64_t>(node));
  return h;
}

/// graph_ops.cc SampleNonNeighbors against the dynamic adjacency: the same
/// rejection walk and deterministic fallback pad.
std::vector<int> SampleNonNeighborsDyn(const DynamicAdjacency& adj, int src,
                                       int count, Rng* rng) {
  std::vector<int> out;
  out.reserve(count);
  const int n = adj.rows();
  int attempts = 0;
  const int max_attempts = count * 50 + 100;
  while (static_cast<int>(out.size()) < count && attempts < max_attempts) {
    ++attempts;
    const int cand = static_cast<int>(rng->UniformInt(n));
    if (cand == src || adj.Has(src, cand)) continue;
    out.push_back(cand);
  }
  int fallback = 0;
  while (static_cast<int>(out.size()) < count && fallback < n) {
    if (fallback != src) out.push_back(fallback);
    ++fallback;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stage pipeline: each GMAE encoder/decoder unrolls into a list of per-row
// stages. A stage's row i is a pure function of the previous stage's rows
// (its own row for kProject/kBiasAct, the normalised-operator row pattern
// for kSpmm/kGatAttend), which is what the dirty-front propagation and the
// row-level cache rely on.
// ---------------------------------------------------------------------------

enum class StageKind { kProject, kSpmm, kGatAttend, kBiasAct };

struct StagePlan {
  StageKind kind = StageKind::kProject;
  int out_dim = 0;
  Tensor weight;        // kProject
  Tensor a_src, a_dst;  // kGatAttend
  float slope = 0.2f;   // kGatAttend
  Tensor bias;          // kBiasAct
  nn::Activation act = nn::Activation::kNone;  // kGatAttend / kBiasAct
  // Low-precision forms of `weight`, transposed to d x k so the row kernels
  // run the TransB (output-row-major) walk. Built once at Create when
  // ServeOptions::precision asks for them; empty under fp32.
  dispatch::QuantizedRows weight_q8;   // Precision::kInt8
  dispatch::Bf16Matrix weight_bf16;    // Precision::kBf16
};

struct ChainPlan {
  std::vector<StagePlan> stages;
  int embed_stage = -1;  // last encoder stage (the structure embedding)
};

struct ViewPlan {
  bool attr_used = false;       // attribute distances feed the score
  bool struct_used = false;     // structure residuals feed the score
  bool separate_struct = false; // kOriginal: struct embeddings use own chains
  std::vector<ChainPlan> attr_chains;    // per relation
  std::vector<ChainPlan> struct_chains;  // per relation (separate_struct)
  std::vector<float> fusion_w;           // SimplexWeightedSum softmax weights
};

void AppendSgcStages(ChainPlan* chain, const nn::SgcConv& layer) {
  const int out_dim = layer.weight_value().cols();
  StagePlan p;
  p.kind = StageKind::kProject;
  p.weight = layer.weight_value();
  p.out_dim = out_dim;
  chain->stages.push_back(std::move(p));
  for (int h = 0; h < layer.hops(); ++h) {
    StagePlan s;
    s.kind = StageKind::kSpmm;
    s.out_dim = out_dim;
    chain->stages.push_back(std::move(s));
  }
  StagePlan b;
  b.kind = StageKind::kBiasAct;
  b.bias = layer.bias_value();
  b.act = layer.activation();
  b.out_dim = out_dim;
  chain->stages.push_back(std::move(b));
}

ChainPlan BuildChain(const Gmae& gmae, bool with_decoder) {
  ChainPlan chain;
  if (gmae.encoder_kind() == EncoderKind::kGat) {
    for (const auto& layer : gmae.gat_layers()) {
      StagePlan p;
      p.kind = StageKind::kProject;
      p.weight = layer->weight_value();
      p.out_dim = p.weight.cols();
      chain.stages.push_back(std::move(p));
      StagePlan a;
      a.kind = StageKind::kGatAttend;
      a.a_src = layer->attn_src_value();
      a.a_dst = layer->attn_dst_value();
      a.slope = layer->negative_slope();
      a.act = layer->activation();
      a.out_dim = a.a_src.cols();
      chain.stages.push_back(std::move(a));
    }
  } else {
    for (const auto& layer : gmae.sgc_layers()) {
      AppendSgcStages(&chain, *layer);
    }
  }
  chain.embed_stage = static_cast<int>(chain.stages.size()) - 1;
  if (with_decoder) AppendSgcStages(&chain, gmae.decoder());
  return chain;
}

std::vector<float> SoftmaxWeights(const Tensor& logits) {
  // The SimplexWeightedSum forward's float softmax (tensor/ops.cc).
  const int r_count = logits.cols();
  std::vector<float> w(r_count);
  const float* l = logits.data();
  float mx = l[0];
  for (int r = 1; r < r_count; ++r) mx = std::max(mx, l[r]);
  double denom = 0.0;
  for (int r = 0; r < r_count; ++r) {
    w[r] = std::exp(l[r] - mx);
    denom += w[r];
  }
  for (int r = 0; r < r_count; ++r) {
    w[r] = static_cast<float>(w[r] / denom);
  }
  return w;
}

struct StageState {
  Tensor cache;                // n x out_dim
  std::vector<uint8_t> valid;  // per row
  // kGatAttend only: the per-node attention logits <a_src, h_i>, <a_dst,
  // h_i> over the previous stage's rows. Always resident (two doubles per
  // node) — only invalidated when the underlying projection row changes.
  std::vector<double> s, t;
  std::vector<uint8_t> st_valid;
};

struct ChainState {
  std::vector<StageState> stages;
};

struct ViewState {
  std::vector<ChainState> attr_chains;
  std::vector<ChainState> struct_chains;
  std::vector<double> attr_val;                          // per node
  std::vector<std::vector<double>> residual;             // [rel][node]
  std::vector<std::vector<std::vector<int>>> negatives;  // [rel][node]
  std::vector<std::vector<std::vector<int>>> samplers;   // [rel][u] -> nodes
};

struct EngineState {
  std::vector<ViewState> views;
  std::vector<double> scores;
};

/// Dedup helper for dirty-set accumulation.
class NodeSet {
 public:
  explicit NodeSet(int n) : mark_(n, 0) {}
  void Add(int i) {
    if (!mark_[i]) {
      mark_[i] = 1;
      items_.push_back(i);
    }
  }
  const std::vector<int>& items() const { return items_; }

 private:
  std::vector<uint8_t> mark_;
  std::vector<int> items_;
};

}  // namespace

std::vector<double> CombineComponents(const std::vector<ViewComponents>& views,
                                      int num_nodes, int num_relations,
                                      float epsilon) {
  const int n = num_nodes;
  std::vector<double> total(n, 0.0);
  int contributing = 0;
  for (const ViewComponents& vc : views) {
    const bool has_attr = vc.attr_used;
    const bool has_struct = vc.struct_used;
    if (!has_attr && !has_struct) continue;
    ++contributing;
    std::vector<double> attr_part(n, 0.0);
    if (has_attr) attr_part = Standardize(*vc.attr_val);
    std::vector<double> struct_part(n, 0.0);
    if (has_struct) {
      for (int r = 0; r < num_relations; ++r) {
        const std::vector<double>& res = (*vc.residual)[r];
        for (int i = 0; i < n; ++i) struct_part[i] += res[i] / num_relations;
      }
      struct_part = Standardize(struct_part);
    }
    for (int i = 0; i < n; ++i) {
      if (has_attr && has_struct) {
        total[i] += epsilon * attr_part[i] + (1.0f - epsilon) * struct_part[i];
      } else if (has_attr) {
        total[i] += attr_part[i];
      } else {
        total[i] += struct_part[i];
      }
    }
  }
  UMGAD_CHECK_GT(contributing, 0);
  for (double& s : total) s /= contributing;
  return total;
}

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

struct OnlineScorer::Impl {
  UmgadConfig config;
  std::string name;
  std::vector<std::string> relation_names;
  std::vector<int> labels;
  Tensor x;  // node attributes (immutable under edge updates)
  int n = 0;
  int r_count = 0;
  std::vector<DynamicAdjacency> adj;
  std::vector<ViewPlan> plans;
  bool budgeted = false;
  std::vector<uint8_t> resident;
  // Owner mask (ServeOptions::owned_nodes): empty = every node owned.
  // Component maintenance (negatives, residuals, attribute distances) and
  // the global Combine are restricted to owned nodes; stage rows stay
  // global (a residual reads neighbour/negative embeddings anywhere).
  std::vector<uint8_t> owned;
  bool component_only = false;
  // Forward kernel precision (ServeOptions::precision). Under kInt8/kBf16
  // the kProject and kSpmm row walks run their quantized forms; everything
  // else (attention, bias/activation, combine) stays fp32. Both the
  // incremental path and RescoreFullNaive go through the same row walks,
  // so the scores()-equals-oracle invariant holds per precision.
  dispatch::Precision precision = dispatch::Precision::kFp32;
  EngineState state;

  bool Owned(int i) const { return owned.empty() || owned[i] != 0; }

  EngineState MakeEmptyState() const;
  void ComputeST(const ChainPlan& plan, ChainState& cs, int stage,
                 int i) const;
  void ComputeStageRow(const ChainPlan& plan, ChainState& cs, int stage,
                       int rel, int i) const;
  void EnsureST(const ChainPlan& plan, ChainState& cs, int stage, int rel,
                int i, ServeStats* stats) const;
  void EnsureRow(const ChainPlan& plan, ChainState& cs, int stage, int rel,
                 int i, ServeStats* stats) const;
  std::vector<int> DrawNegatives(int view, int rel, int node) const;
  void ComputeResidualNode(EngineState& st, int view, int rel, int i,
                           ServeStats* stats) const;
  void ComputeAttrValNode(EngineState& st, int view, int i,
                          ServeStats* stats) const;
  void Combine(EngineState& st) const;
  void FullCompute(EngineState* st, bool parallel) const;
  void EvictNonResident(EngineState* st) const;
  Status ApplyBatch(const std::vector<EdgeUpdate>& updates,
                    ServeStats* stats);
};

EngineState OnlineScorer::Impl::MakeEmptyState() const {
  EngineState st;
  st.views.resize(plans.size());
  for (size_t v = 0; v < plans.size(); ++v) {
    const ViewPlan& vp = plans[v];
    ViewState& vs = st.views[v];
    auto init_chains = [&](const std::vector<ChainPlan>& chain_plans,
                           std::vector<ChainState>* chain_states) {
      chain_states->resize(chain_plans.size());
      for (size_t c = 0; c < chain_plans.size(); ++c) {
        ChainState& cs = (*chain_states)[c];
        cs.stages.resize(chain_plans[c].stages.size());
        for (size_t s = 0; s < chain_plans[c].stages.size(); ++s) {
          const StagePlan& sp = chain_plans[c].stages[s];
          StageState& ss = cs.stages[s];
          ss.cache = Tensor(n, sp.out_dim);
          ss.valid.assign(n, 0);
          if (sp.kind == StageKind::kGatAttend) {
            ss.s.assign(n, 0.0);
            ss.t.assign(n, 0.0);
            ss.st_valid.assign(n, 0);
          }
        }
      }
    };
    init_chains(vp.attr_chains, &vs.attr_chains);
    init_chains(vp.struct_chains, &vs.struct_chains);
    if (vp.attr_used) vs.attr_val.assign(n, 0.0);
    if (vp.struct_used) {
      vs.residual.assign(r_count, std::vector<double>(n, 0.0));
      vs.negatives.assign(r_count, std::vector<std::vector<int>>(n));
      vs.samplers.assign(r_count, std::vector<std::vector<int>>(n));
    }
  }
  return st;
}

void OnlineScorer::Impl::ComputeST(const ChainPlan& plan, ChainState& cs,
                                   int stage, int i) const {
  const StagePlan& sp = plan.stages[stage];
  StageState& ss = cs.stages[stage];
  // A GAT attend stage always follows its projection stage.
  const Tensor& h = cs.stages[stage - 1].cache;
  const float* hr = h.row(i);
  const float* asv = sp.a_src.data();
  const float* adv = sp.a_dst.data();
  const int d = h.cols();
  double sacc = 0.0;
  double tacc = 0.0;
  for (int j = 0; j < d; ++j) {
    sacc += static_cast<double>(asv[j]) * hr[j];
    tacc += static_cast<double>(adv[j]) * hr[j];
  }
  ss.s[i] = sacc;
  ss.t[i] = tacc;
  ss.st_valid[i] = 1;
}

void OnlineScorer::Impl::ComputeStageRow(const ChainPlan& plan,
                                         ChainState& cs, int stage, int rel,
                                         int i) const {
  const StagePlan& sp = plan.stages[stage];
  StageState& ss = cs.stages[stage];
  const Tensor& prev = stage == 0 ? x : cs.stages[stage - 1].cache;
  float* out = ss.cache.row(i);
  const int d = sp.out_dim;
  switch (sp.kind) {
    case StageKind::kProject: {
      const float* arow = prev.row(i);
      const int k = sp.weight.rows();
      if (precision == dispatch::Precision::kInt8) {
        // Row i of the W8A8 product: quantize the activation row, exact
        // int32 accumulation against the pre-quantized (transposed)
        // weights, per-row dequant. Bit-identical to row i of
        // Int8GemmTransB over the whole activation matrix.
        dispatch::Int8GemmRow(arow, k, sp.weight_q8, out);
      } else if (precision == dispatch::Precision::kBf16) {
        dispatch::Bf16GemmRow(arow, k, sp.weight_bf16, out);
      } else {
        // MatMulNaive's row-i walk (i-k-j order, zero skip).
        std::fill(out, out + d, 0.0f);
        for (int p = 0; p < k; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          const float* brow = sp.weight.row(p);
          for (int j = 0; j < d; ++j) out[j] += av * brow[j];
        }
      }
      break;
    }
    case StageKind::kSpmm: {
      // SparseMatrix::Multiply's row-i walk over the normalised operator.
      // Quantized modes run the bf16 form (SpmmBf16's row walk): operator
      // values and activations round to bf16, accumulation stays fp32 in
      // the same ascending-column order. int8 SpMM is deliberately absent —
      // per-entry scale products cannot be factored out of an integer
      // accumulation, so bf16 is the fastest form that keeps the error
      // analytically bounded.
      std::fill(out, out + d, 0.0f);
      if (precision == dispatch::Precision::kFp32) {
        adj[rel].ForEachNormEntry(i, [&](int col, float v) {
          const float* xrow = prev.row(col);
          for (int j = 0; j < d; ++j) out[j] += v * xrow[j];
        });
      } else {
        adj[rel].ForEachNormEntry(i, [&](int col, float v) {
          const float vb = dispatch::FloatFromBf16(dispatch::Bf16FromFloat(v));
          const float* xrow = prev.row(col);
          for (int j = 0; j < d; ++j) {
            out[j] +=
                vb * dispatch::FloatFromBf16(dispatch::Bf16FromFloat(xrow[j]));
          }
        });
      }
      break;
    }
    case StageKind::kGatAttend: {
      // EdgeSoftmaxForwardNaive's row-i walk: pattern of the normalised
      // operator (neighbours + self loop, ascending; values unused).
      thread_local std::vector<int> cols;
      thread_local std::vector<float> al;
      cols.clear();
      al.clear();
      double mx = -1e300;
      auto visit = [&](int col) {
        const double zraw = ss.s[i] + ss.t[col];
        const double e = zraw > 0.0 ? zraw : sp.slope * zraw;
        al.push_back(static_cast<float>(e));
        cols.push_back(col);
        mx = std::max(mx, e);
      };
      bool self_done = false;
      for (int col : adj[rel].neighbors(i)) {
        if (!self_done && col > i) {
          visit(i);
          self_done = true;
        }
        visit(col);
      }
      if (!self_done) visit(i);
      double denom = 0.0;
      for (size_t k = 0; k < al.size(); ++k) {
        al[k] = static_cast<float>(std::exp(al[k] - mx));
        denom += al[k];
      }
      std::fill(out, out + d, 0.0f);
      for (size_t k = 0; k < al.size(); ++k) {
        al[k] = static_cast<float>(al[k] / denom);
        const float* hj = prev.row(cols[k]);
        for (int j = 0; j < d; ++j) out[j] += al[k] * hj[j];
      }
      if (sp.act != nn::Activation::kNone) {
        for (int j = 0; j < d; ++j) out[j] = ApplyActivation(out[j], sp.act);
      }
      break;
    }
    case StageKind::kBiasAct: {
      // AddRowBroadcast + Activate.
      const float* prow = prev.row(i);
      const float* b = sp.bias.data();
      for (int j = 0; j < d; ++j) {
        out[j] = ApplyActivation(prow[j] + b[j], sp.act);
      }
      break;
    }
  }
  ss.valid[i] = 1;
}

void OnlineScorer::Impl::EnsureST(const ChainPlan& plan, ChainState& cs,
                                  int stage, int rel, int i,
                                  ServeStats* stats) const {
  if (cs.stages[stage].st_valid[i]) return;
  EnsureRow(plan, cs, stage - 1, rel, i, stats);
  ComputeST(plan, cs, stage, i);
}

void OnlineScorer::Impl::EnsureRow(const ChainPlan& plan, ChainState& cs,
                                   int stage, int rel, int i,
                                   ServeStats* stats) const {
  StageState& ss = cs.stages[stage];
  if (ss.valid[i]) {
    if (stats != nullptr) ++stats->cache_hits;
    return;
  }
  if (stats != nullptr) ++stats->cache_misses;
  const StagePlan& sp = plan.stages[stage];
  switch (sp.kind) {
    case StageKind::kProject:
    case StageKind::kBiasAct:
      if (stage > 0) EnsureRow(plan, cs, stage - 1, rel, i, stats);
      break;
    case StageKind::kSpmm:
      adj[rel].ForEachNormEntry(i, [&](int col, float) {
        EnsureRow(plan, cs, stage - 1, rel, col, stats);
      });
      break;
    case StageKind::kGatAttend: {
      auto need = [&](int col) {
        EnsureRow(plan, cs, stage - 1, rel, col, stats);
        EnsureST(plan, cs, stage, rel, col, stats);
      };
      bool self_done = false;
      for (int col : adj[rel].neighbors(i)) {
        if (!self_done && col > i) {
          need(i);
          self_done = true;
        }
        need(col);
      }
      if (!self_done) need(i);
      break;
    }
  }
  ComputeStageRow(plan, cs, stage, rel, i);
}

std::vector<int> OnlineScorer::Impl::DrawNegatives(int view, int rel,
                                                   int node) const {
  // Mirrors the gate in StructureResidual: no draw when sampling is off or
  // the node neighbours every other node.
  const int count = config.num_score_negatives;
  const int degree = adj[rel].degree(node);
  if (count <= 0 || n - 1 - degree <= 0) return {};
  Rng rng(NegativeStreamSeed(config.seed, view, rel, node));
  return SampleNonNeighborsDyn(adj[rel], node, count, &rng);
}

void OnlineScorer::Impl::ComputeResidualNode(EngineState& st, int view,
                                             int rel, int i,
                                             ServeStats* stats) const {
  const ViewPlan& vp = plans[view];
  ViewState& vs = st.views[view];
  const ChainPlan* plan;
  ChainState* chain;
  int stage;
  if (vp.separate_struct) {
    plan = &vp.struct_chains[rel];
    chain = &vs.struct_chains[rel];
    stage = static_cast<int>(plan->stages.size()) - 1;
  } else {
    plan = &vp.attr_chains[rel];
    chain = &vs.attr_chains[rel];
    stage = plan->embed_stage;
  }
  EnsureRow(*plan, *chain, stage, rel, i, stats);
  const Tensor& z = chain->stages[stage].cache;
  // StructureResidual's degree-normalised form, per node.
  double edge_err = 0.0;
  int degree = 0;
  for (int col : adj[rel].neighbors(i)) {
    EnsureRow(*plan, *chain, stage, rel, col, stats);
    edge_err += 1.0 - SigmoidD(z.RowDot(i, z, col));
    ++degree;
  }
  double leak = 0.0;
  const std::vector<int>& negs = vs.negatives[rel][i];
  if (!negs.empty()) {
    for (int u : negs) {
      EnsureRow(*plan, *chain, stage, rel, u, stats);
      leak += SigmoidD(z.RowDot(i, z, u));
    }
    leak /= static_cast<double>(negs.size());
  }
  vs.residual[rel][i] = (degree > 0 ? edge_err / degree : 0.0) + leak;
}

void OnlineScorer::Impl::ComputeAttrValNode(EngineState& st, int view, int i,
                                            ServeStats* stats) const {
  const ViewPlan& vp = plans[view];
  ViewState& vs = st.views[view];
  const int f = x.cols();
  // SimplexWeightedSum's accumulation (zero, then += w_r * row_r ascending)
  // followed by RowL2Distance against the raw attributes.
  thread_local std::vector<float> fused;
  fused.assign(f, 0.0f);
  for (int r = 0; r < r_count; ++r) {
    const ChainPlan& cp = vp.attr_chains[r];
    ChainState& cs = vs.attr_chains[r];
    const int last = static_cast<int>(cp.stages.size()) - 1;
    EnsureRow(cp, cs, last, r, i, stats);
    const float w = vp.fusion_w[r];
    const float* row = cs.stages[last].cache.row(i);
    for (int j = 0; j < f; ++j) fused[j] += w * row[j];
  }
  const float* xi = x.row(i);
  double acc = 0.0;
  for (int j = 0; j < f; ++j) {
    const double diff = static_cast<double>(fused[j]) - xi[j];
    acc += diff * diff;
  }
  vs.attr_val[i] =
      static_cast<double>(static_cast<float>(std::sqrt(acc)));
}

void OnlineScorer::Impl::Combine(EngineState& st) const {
  // ComputeAnomalyScores (Eq. 19) over the cached per-node parts: the raw
  // components are maintained incrementally; standardisation and the
  // epsilon mix are cheap O(n) double passes. The standardisation is
  // *global* (a z-score over all nodes), so an owner-masked shard — which
  // only maintains its own nodes' components — cannot combine; ShardRouter
  // gathers every shard's owned slices and runs the same CombineComponents
  // over the full board instead.
  if (component_only) {
    st.scores.clear();
    return;
  }
  std::vector<ViewComponents> views;
  views.reserve(plans.size());
  for (size_t v = 0; v < plans.size(); ++v) {
    ViewComponents vc;
    vc.attr_used = plans[v].attr_used;
    vc.struct_used = plans[v].struct_used;
    if (vc.attr_used) vc.attr_val = &st.views[v].attr_val;
    if (vc.struct_used) vc.residual = &st.views[v].residual;
    views.push_back(vc);
  }
  st.scores = CombineComponents(views, n, r_count, config.epsilon);
}

void OnlineScorer::Impl::FullCompute(EngineState* st, bool parallel) const {
  // Stage-by-stage: every row of a stage only reads fully-valid previous
  // stages, so rows fan out across the pool race-free; with parallel ==
  // false the identical kernels run in one serial sweep (RescoreFullNaive).
  auto for_rows = [&](auto&& fn) {
    if (parallel) {
      ParallelFor(n, 8, [&](int64_t b, int64_t e) {
        for (int i = static_cast<int>(b); i < e; ++i) fn(i);
      });
    } else {
      for (int i = 0; i < n; ++i) fn(i);
    }
  };
  for (size_t v = 0; v < plans.size(); ++v) {
    const ViewPlan& vp = plans[v];
    ViewState& vs = st->views[v];
    auto run_chains = [&](const std::vector<ChainPlan>& chain_plans,
                          std::vector<ChainState>& chain_states) {
      for (size_t r = 0; r < chain_plans.size(); ++r) {
        const ChainPlan& cp = chain_plans[r];
        ChainState& cs = chain_states[r];
        for (size_t s = 0; s < cp.stages.size(); ++s) {
          if (cp.stages[s].kind == StageKind::kGatAttend) {
            for_rows([&](int i) {
              ComputeST(cp, cs, static_cast<int>(s), i);
            });
          }
          for_rows([&](int i) {
            ComputeStageRow(cp, cs, static_cast<int>(s),
                            static_cast<int>(r), i);
          });
        }
      }
    };
    run_chains(vp.attr_chains, vs.attr_chains);
    run_chains(vp.struct_chains, vs.struct_chains);
    // Per-node score components only exist for owned nodes: each node's
    // negative stream and component are independent of every other node's,
    // so the owned slice of a masked shard is bit-identical to the same
    // slice of an unmasked scorer.
    if (vp.struct_used) {
      for (int r = 0; r < r_count; ++r) {
        for_rows([&](int i) {
          vs.negatives[r][i] =
              Owned(i) ? DrawNegatives(static_cast<int>(v), r, i)
                       : std::vector<int>();
        });
        for (auto& list : vs.samplers[r]) list.clear();
        for (int i = 0; i < n; ++i) {
          for (int u : vs.negatives[r][i]) vs.samplers[r][u].push_back(i);
        }
        for_rows([&](int i) {
          if (!Owned(i)) return;
          ComputeResidualNode(*st, static_cast<int>(v), r, i, nullptr);
        });
      }
    }
    if (vp.attr_used) {
      for_rows([&](int i) {
        if (!Owned(i)) return;
        ComputeAttrValNode(*st, static_cast<int>(v), i, nullptr);
      });
    }
  }
  Combine(*st);
}

void OnlineScorer::Impl::EvictNonResident(EngineState* st) const {
  if (!budgeted) return;
  for (ViewState& vs : st->views) {
    for (auto* chains : {&vs.attr_chains, &vs.struct_chains}) {
      for (ChainState& cs : *chains) {
        for (StageState& ss : cs.stages) {
          for (int i = 0; i < n; ++i) {
            if (!resident[i]) ss.valid[i] = 0;
          }
        }
      }
    }
  }
}

Status OnlineScorer::Impl::ApplyBatch(const std::vector<EdgeUpdate>& updates,
                                      ServeStats* stats) {
  if (updates.empty()) return Status::OK();

  // Phase A — validate and mutate the adjacency sequentially, coalescing
  // each relation's dirty fronts. Validation is against the already-mutated
  // prefix, so a burst may legally add then remove the same edge. On the
  // first bad update the applied prefix is rolled back in reverse and the
  // cached state — untouched so far — stays exactly as before the call.
  //
  // s_norm[r]: rows of relation r's normalised operator whose entries
  // change — every update's endpoints (pattern + own degree) plus every
  // neighbour of an endpoint immediately before or after that mutation
  // (the 1/sqrt(deg) factor of the shared entry moves). Each update logs
  // its own before/after snapshot, so the union covers every row that
  // differs between the initial and final adjacency.
  // endpoints[r]: distinct endpoint nodes of relation r's updates — the
  // nodes whose own adjacency row (and negative stream) changed.
  std::vector<NodeSet> s_norm;
  std::vector<NodeSet> endpoints;
  s_norm.reserve(r_count);
  endpoints.reserve(r_count);
  for (int r = 0; r < r_count; ++r) {
    s_norm.emplace_back(n);
    endpoints.emplace_back(n);
  }
  Status error = Status::OK();
  size_t applied = 0;
  for (; applied < updates.size(); ++applied) {
    const EdgeUpdate& update = updates[applied];
    if (update.relation < 0 || update.relation >= r_count) {
      error = Status::InvalidArgument("edge update: relation out of range");
      break;
    }
    if (update.src < 0 || update.src >= n || update.dst < 0 ||
        update.dst >= n) {
      error = Status::InvalidArgument("edge update: endpoint out of range");
      break;
    }
    if (update.src == update.dst) {
      error = Status::InvalidArgument("edge update: self loops not allowed");
      break;
    }
    const int u = update.src;
    const int v = update.dst;
    const int rel = update.relation;
    DynamicAdjacency& a = adj[rel];
    const bool present = a.Has(u, v);
    if (update.add && present) {
      error = Status::FailedPrecondition("edge update: edge already present");
      break;
    }
    if (!update.add && !present) {
      error = Status::NotFound("edge update: edge not present");
      break;
    }
    NodeSet& sn = s_norm[rel];
    sn.Add(u);
    sn.Add(v);
    for (int j : a.neighbors(u)) sn.Add(j);
    for (int j : a.neighbors(v)) sn.Add(j);
    if (update.add) {
      a.AddEntry(u, v, 1.0f);
      a.AddEntry(v, u, 1.0f);
    } else {
      a.RemoveEntry(u, v);
      a.RemoveEntry(v, u);
    }
    for (int j : a.neighbors(u)) sn.Add(j);
    for (int j : a.neighbors(v)) sn.Add(j);
    endpoints[rel].Add(u);
    endpoints[rel].Add(v);
  }
  if (!error.ok()) {
    for (size_t i = applied; i-- > 0;) {
      const EdgeUpdate& update = updates[i];
      DynamicAdjacency& a = adj[update.relation];
      if (update.add) {
        a.RemoveEntry(update.src, update.dst);
        a.RemoveEntry(update.dst, update.src);
      } else {
        a.AddEntry(update.src, update.dst, 1.0f);
        a.AddEntry(update.dst, update.src, 1.0f);
      }
    }
    return error;
  }

  int64_t invalidated = 0;
  int64_t rescored = 0;

  // Phase B.1 — propagate the dirty fronts through every stage of each
  // updated relation's chains (all views) and invalidate those cache rows.
  // All invalidation across every relation happens before any
  // recomputation so EnsureRow never reads a stale-but-valid dependency
  // (ComputeAttrValNode fuses across all relations' chains).
  struct ChainDirty {
    std::vector<int> embed;
    std::vector<int> final;
  };
  auto propagate = [&](const ChainPlan& cp, ChainState& cs, int rel) {
    const DynamicAdjacency& a = adj[rel];
    const NodeSet& sn = s_norm[rel];
    const std::vector<int>& ends = endpoints[rel].items();
    ChainDirty out;
    std::vector<int> cur;
    for (size_t s = 0; s < cp.stages.size(); ++s) {
      const StagePlan& sp = cp.stages[s];
      StageState& ss = cs.stages[s];
      std::vector<int> next;
      switch (sp.kind) {
        case StageKind::kProject:
        case StageKind::kBiasAct:
          next = cur;
          break;
        case StageKind::kSpmm: {
          NodeSet set(n);
          for (int i : sn.items()) set.Add(i);
          for (int d : cur) {
            set.Add(d);
            for (int j : a.neighbors(d)) set.Add(j);
          }
          next = set.items();
          break;
        }
        case StageKind::kGatAttend: {
          // Attention pattern changes only at the endpoints; values follow
          // dirty projections one hop out. s/t of a node follow its own
          // projection row.
          for (int d : cur) ss.st_valid[d] = 0;
          NodeSet set(n);
          for (int d : ends) set.Add(d);
          for (int d : cur) {
            set.Add(d);
            for (int j : a.neighbors(d)) set.Add(j);
          }
          next = set.items();
          break;
        }
      }
      for (int i : next) {
        if (ss.valid[i]) {
          ss.valid[i] = 0;
          ++invalidated;
        }
      }
      if (static_cast<int>(s) == cp.embed_stage) out.embed = next;
      cur = std::move(next);
    }
    out.final = std::move(cur);
    return out;
  };

  std::vector<std::vector<ChainDirty>> attr_dirty(
      plans.size(), std::vector<ChainDirty>(r_count));
  std::vector<std::vector<ChainDirty>> struct_dirty(
      plans.size(), std::vector<ChainDirty>(r_count));
  for (size_t w = 0; w < plans.size(); ++w) {
    ViewPlan& vp = plans[w];
    ViewState& vs = state.views[w];
    for (int rel = 0; rel < r_count; ++rel) {
      if (endpoints[rel].items().empty()) continue;
      if (!vp.attr_chains.empty()) {
        attr_dirty[w][rel] =
            propagate(vp.attr_chains[rel], vs.attr_chains[rel], rel);
      }
      if (vp.separate_struct) {
        struct_dirty[w][rel] =
            propagate(vp.struct_chains[rel], vs.struct_chains[rel], rel);
      }
    }
  }

  // Phase B.2 — recompute the affected per-node score components, once per
  // node per component for the whole burst.
  for (size_t w = 0; w < plans.size(); ++w) {
    const ViewPlan& vp = plans[w];
    ViewState& vs = state.views[w];
    if (vp.struct_used) {
      for (int rel = 0; rel < r_count; ++rel) {
        const std::vector<int>& ends = endpoints[rel].items();
        if (ends.empty()) continue;
        const DynamicAdjacency& a = adj[rel];
        const std::vector<int>& embed_dirty =
            vp.separate_struct ? struct_dirty[w][rel].embed
                               : attr_dirty[w][rel].embed;
        // The endpoints' own adjacency rows changed, so their negative
        // draws re-run against the new rows (clean nodes' draws are
        // unaffected — each stream only rejects against its own row, and
        // each stream is stateless, so one redraw against the final row
        // matches replaying every intermediate redraw). Non-owned
        // endpoints carry no stream (their component lives on another
        // shard), so there is nothing to redraw.
        for (int node : ends) {
          if (!Owned(node)) continue;
          std::vector<std::vector<int>>& samplers = vs.samplers[rel];
          for (int old : vs.negatives[rel][node]) {
            std::vector<int>& list = samplers[old];
            auto it = std::find(list.begin(), list.end(), node);
            if (it != list.end()) {
              *it = list.back();
              list.pop_back();
            }
          }
          vs.negatives[rel][node] =
              DrawNegatives(static_cast<int>(w), rel, node);
          for (int nu : vs.negatives[rel][node]) {
            samplers[nu].push_back(node);
          }
        }
        // Residuals to recompute: the endpoints (adjacency row + negatives
        // changed), nodes with a dirty embedding, their neighbours (the
        // edge-error term reads neighbour embeddings), and nodes whose
        // negative set contains a dirty-embedding node.
        NodeSet dirty_res(n);
        for (int node : ends) dirty_res.Add(node);
        for (int d : embed_dirty) {
          dirty_res.Add(d);
          for (int j : a.neighbors(d)) dirty_res.Add(j);
          for (int i : vs.samplers[rel][d]) dirty_res.Add(i);
        }
        for (int i : dirty_res.items()) {
          if (!Owned(i)) continue;
          ComputeResidualNode(state, static_cast<int>(w), rel, i, stats);
          ++rescored;
        }
      }
    }
    if (vp.attr_used) {
      // One attribute-value pass over the union of every updated
      // relation's final dirty front (the fused value reads all chains).
      NodeSet attr_final(n);
      for (int rel = 0; rel < r_count; ++rel) {
        for (int i : attr_dirty[w][rel].final) attr_final.Add(i);
      }
      for (int i : attr_final.items()) {
        if (!Owned(i)) continue;
        ComputeAttrValNode(state, static_cast<int>(w), i, stats);
        ++rescored;
      }
    }
  }

  Combine(state);
  EvictNonResident(&state);
  if (stats != nullptr) {
    stats->updates_applied += static_cast<int64_t>(updates.size());
    stats->last_dirty_rows = invalidated;
    stats->last_rescored_nodes = rescored;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlineScorer
// ---------------------------------------------------------------------------

OnlineScorer::OnlineScorer() = default;
OnlineScorer::~OnlineScorer() = default;

Result<std::unique_ptr<OnlineScorer>> OnlineScorer::Create(
    TrainedModel model, const MultiplexGraph& graph, ServeOptions options) {
  if (!model.fingerprint().Matches(FingerprintGraph(graph))) {
    return Status::FailedPrecondition(
        "graph does not match the model's training fingerprint");
  }
  std::unique_ptr<OnlineScorer> scorer(new OnlineScorer());
  scorer->model_ = std::move(model);
  scorer->impl_ = std::make_unique<Impl>();
  Impl& impl = *scorer->impl_;
  const UmgadConfig& config = scorer->model_.config();
  impl.config = config;
  impl.name = graph.name();
  impl.labels = graph.labels();
  impl.x = graph.attributes();
  impl.n = graph.num_nodes();
  impl.r_count = graph.num_relations();
  impl.relation_names.reserve(impl.r_count);
  impl.adj.reserve(impl.r_count);
  for (int r = 0; r < impl.r_count; ++r) {
    impl.relation_names.push_back(graph.relation_name(r));
    impl.adj.emplace_back(graph.layer(r));
  }
  if (!options.owned_nodes.empty()) {
    if (static_cast<int>(options.owned_nodes.size()) != impl.n) {
      return Status::InvalidArgument(
          "ServeOptions::owned_nodes size does not match the graph");
    }
    impl.owned = options.owned_nodes;
    impl.component_only = true;
  }
  impl.precision = options.precision;

  // Unroll the views into stage plans; the weight tensors are copied out of
  // the reconstructed modules (Tensor is a deep-copy value type), so the
  // views are discarded before this block ends and the ParamScope reclaims
  // their persistent parameter leaves — repeated scorer (re)builds in a
  // long-running server allocate no lasting tape memory.
  {
    ag::ParamScope params;
    UMGAD_ASSIGN_OR_RETURN(
        std::vector<std::unique_ptr<ReconstructionView>> views,
        scorer->model_.BuildViews());
    for (const auto& view : views) {
      ViewPlan vp;
      vp.attr_used = config.use_attribute_recon;
      vp.struct_used = config.use_structure_recon;
      vp.separate_struct =
          config.use_structure_recon &&
          view->kind() == ReconstructionView::Kind::kOriginal;
      // Attr chains double as the shared structure encoder for non-original
      // views; they are not built at all when nothing reads them (the
      // structure-only pipeline on the original view).
      const bool need_attr_chains =
          vp.attr_used || (vp.struct_used && !vp.separate_struct);
      for (int r = 0; r < impl.r_count; ++r) {
        if (need_attr_chains) {
          vp.attr_chains.push_back(
              BuildChain(view->attr_gmae(r), /*with_decoder=*/vp.attr_used));
        }
        if (vp.separate_struct) {
          vp.struct_chains.push_back(
              BuildChain(*view->struct_gmae(r), /*with_decoder=*/false));
        }
      }
      if (vp.attr_used) {
        vp.fusion_w = SoftmaxWeights(view->fusion_a().logits_value());
      }
      impl.plans.push_back(std::move(vp));
    }
  }

  // Quantize the projection weights once, up front. Transposed to d x k so
  // the per-row kernels run the output-row-major (TransB) walk; int8 rows
  // are then per-output-channel quantized. A non-finite weight is a load
  // error, not a per-row surprise later.
  if (impl.precision != dispatch::Precision::kFp32) {
    for (ViewPlan& vp : impl.plans) {
      for (std::vector<ChainPlan>* chains : {&vp.attr_chains, &vp.struct_chains}) {
        for (ChainPlan& chain : *chains) {
          for (StagePlan& sp : chain.stages) {
            if (sp.kind != StageKind::kProject) continue;
            const Tensor wt = Transpose(sp.weight);
            if (impl.precision == dispatch::Precision::kInt8) {
              UMGAD_ASSIGN_OR_RETURN(sp.weight_q8,
                                     dispatch::QuantizeRowsInt8(wt));
            } else {
              sp.weight_bf16 = dispatch::Bf16FromTensor(wt);
            }
          }
        }
      }
    }
  }

  // Hot-node cache: the budget keeps the highest-(total-)degree nodes'
  // rows resident between updates.
  const int budget = options.cache_budget_nodes;
  impl.budgeted = budget >= 0 && budget < impl.n;
  if (impl.budgeted) {
    std::vector<int64_t> total_degree(impl.n, 0);
    for (int r = 0; r < impl.r_count; ++r) {
      for (int i = 0; i < impl.n; ++i) {
        total_degree[i] += impl.adj[r].degree(i);
      }
    }
    std::vector<int> order(impl.n);
    for (int i = 0; i < impl.n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](int l, int r) {
      if (total_degree[l] != total_degree[r]) {
        return total_degree[l] > total_degree[r];
      }
      return l < r;
    });
    impl.resident.assign(impl.n, 0);
    for (int k = 0; k < budget; ++k) impl.resident[order[k]] = 1;
  } else {
    impl.resident.assign(impl.n, 1);
  }

  impl.state = impl.MakeEmptyState();
  impl.FullCompute(&impl.state, /*parallel=*/true);
  impl.EvictNonResident(&impl.state);
  return scorer;
}

const std::vector<double>& OnlineScorer::scores() const {
  return impl_->state.scores;
}

Result<std::vector<double>> OnlineScorer::Query(
    const std::vector<int>& nodes) const {
  if (impl_->component_only) {
    return Status::FailedPrecondition(
        "owner-masked scorer has no combined scores; query the ShardRouter");
  }
  const std::vector<double>& s = impl_->state.scores;
  for (int node : nodes) {
    if (node < 0 || node >= impl_->n) {
      return Status::OutOfRange("query node out of range");
    }
  }
  std::vector<double> out(nodes.size(), 0.0);
  ParallelFor(static_cast<int64_t>(nodes.size()), 256,
              [&](int64_t b, int64_t e) {
                for (int64_t k = b; k < e; ++k) out[k] = s[nodes[k]];
              });
  return out;
}

Status OnlineScorer::ApplyEdgeUpdate(const EdgeUpdate& update) {
  return impl_->ApplyBatch({update}, &stats_);
}

Status OnlineScorer::ApplyEdgeUpdates(const std::vector<EdgeUpdate>& updates) {
  return impl_->ApplyBatch(updates, &stats_);
}

std::vector<double> OnlineScorer::RescoreFullNaive() const {
  EngineState scratch = impl_->MakeEmptyState();
  impl_->FullCompute(&scratch, /*parallel=*/false);
  return std::move(scratch.scores);
}

Result<std::vector<double>> OnlineScorer::BatchReplayScores() const {
  return model_.Score(SnapshotGraph(), /*check_fingerprint=*/false);
}

MultiplexGraph OnlineScorer::SnapshotGraph() const {
  std::vector<SparseMatrix> layers;
  layers.reserve(impl_->r_count);
  for (int r = 0; r < impl_->r_count; ++r) {
    layers.push_back(impl_->adj[r].ToSparse());
  }
  Result<MultiplexGraph> g =
      MultiplexGraph::Create(impl_->name, impl_->x, std::move(layers),
                             impl_->relation_names, impl_->labels);
  UMGAD_CHECK(g.ok());
  return std::move(g).value();
}

std::vector<ViewComponents> OnlineScorer::Components() const {
  std::vector<ViewComponents> out;
  out.reserve(impl_->plans.size());
  for (size_t v = 0; v < impl_->plans.size(); ++v) {
    ViewComponents vc;
    vc.attr_used = impl_->plans[v].attr_used;
    vc.struct_used = impl_->plans[v].struct_used;
    if (vc.attr_used) vc.attr_val = &impl_->state.views[v].attr_val;
    if (vc.struct_used) vc.residual = &impl_->state.views[v].residual;
    out.push_back(vc);
  }
  return out;
}

bool OnlineScorer::component_only() const { return impl_->component_only; }

int OnlineScorer::num_nodes() const { return impl_->n; }
int OnlineScorer::num_relations() const { return impl_->r_count; }

}  // namespace serve
}  // namespace umgad
