#ifndef UMGAD_SERVE_ONLINE_SCORER_H_
#define UMGAD_SERVE_ONLINE_SCORER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/model_io.h"
#include "graph/multiplex_graph.h"
#include "serve/dynamic_adjacency.h"
#include "tensor/dispatch/precision.h"

namespace umgad {
namespace serve {

/// Tuning knobs for an OnlineScorer instance.
struct ServeOptions {
  /// Hot-node row-cache budget: how many nodes keep their per-stage
  /// intermediate rows (projections, propagations, attention outputs)
  /// resident between updates. The resident set is the `cache_budget_nodes`
  /// highest-degree nodes at load time (ties broken by index); rows of
  /// other nodes are recomputed on demand and dropped after each update
  /// pass. Negative (the default) keeps every node resident. The budget
  /// changes memory and latency only — never scores (asserted in
  /// tests/serve_oracle_test.cc).
  int cache_budget_nodes = -1;

  /// Owner mask for sharded serving (ShardRouter). Empty (the default)
  /// means "this scorer owns every node" — the flat, self-contained mode.
  /// When set (size num_nodes, non-zero = owned), the scorer becomes a
  /// *component provider*: it still replicates the full graph (stage rows
  /// are global — a residual reads neighbour and negative embeddings
  /// anywhere), but maintains the per-node score components (attribute
  /// distances, structure residuals) and negative-sample streams only for
  /// owned nodes, and skips the global Combine entirely — scores() stays
  /// empty and Query() errors. The per-node components of owned nodes are
  /// bit-identical to an unmasked scorer's (each node's negatives come
  /// from its own stream; each component is a pure function of the
  /// adjacency, the weights, and that stream), which is what lets
  /// ShardRouter stitch S masked scorers back into the flat oracle's
  /// exact score vector.
  std::vector<uint8_t> owned_nodes;

  /// Numeric precision of the forward re-score kernels (fp32 default —
  /// the exact path, bit-identical to training). kInt8 runs the dense
  /// projections through the per-row symmetric W8A8 GEMM and the
  /// neighborhood propagation through bf16; kBf16 runs both through bf16.
  /// GAT attention, bias/activation, and the score combine always stay
  /// fp32. Quantized scores are NOT bit-identical to fp32 — they are gated
  /// by AUC parity (|dAUC| <= 1e-3) instead — but remain deterministic:
  /// scores() under any precision is still bit-identical to
  /// RescoreFullNaive() under the same precision, for any thread/arena/
  /// cache-budget setting. BatchReplayScores() stays fp32-only (it replays
  /// the training tape). Weights are quantized once at Create; activation
  /// rows quantize on the fly per re-scored row.
  dispatch::Precision precision = dispatch::Precision::kFp32;
};

/// One undirected edge mutation of a relation layer. `add == false`
/// removes the edge. Inserted edges carry weight 1.0 (the multiplex layers
/// are unweighted simple graphs).
struct EdgeUpdate {
  int src = 0;
  int dst = 0;
  int relation = 0;
  bool add = true;
};

/// Serving counters. Cache hits/misses count EnsureRow lookups during
/// incremental update passes (the initial full pass is excluded);
/// last_dirty_rows is the number of per-stage cache rows invalidated by
/// the most recent update, last_rescored_nodes the number of per-node
/// score components (attribute distances + structure residuals) it
/// recomputed.
struct ServeStats {
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t updates_applied = 0;
  int64_t last_dirty_rows = 0;
  int64_t last_rescored_nodes = 0;
};

/// Read-only borrow of one view's raw per-node score components, as
/// maintained by an OnlineScorer (attribute reconstruction distances and
/// per-relation structure residuals — the inputs of Eq. 19 *before*
/// standardisation). Pointers are null for parts the view does not use and
/// are invalidated by the next Apply* call on the owning scorer.
struct ViewComponents {
  bool attr_used = false;
  bool struct_used = false;
  /// num_nodes attribute distances (null unless attr_used).
  const std::vector<double>* attr_val = nullptr;
  /// [relation][node] structure residuals (null unless struct_used).
  const std::vector<std::vector<double>>* residual = nullptr;
};

/// ComputeAnomalyScores (Eq. 19) over raw per-node components: per view,
/// standardise the attribute distances and the relation-averaged residuals
/// globally (z-score over all nodes), mix with epsilon, then average over
/// contributing views. This is the exact float path Impl-side Combine used
/// to inline — extracted so ShardRouter can run the identical global
/// combine over components gathered from S masked shards and stay
/// bit-identical to the flat scorer. Checks that at least one view
/// contributes.
std::vector<double> CombineComponents(const std::vector<ViewComponents>& views,
                                      int num_nodes, int num_relations,
                                      float epsilon);

/// Online anomaly-scoring service over a trained-model artifact (Sec. IV-E
/// applied at serving time): load a TrainedModel (.umgm) plus the graph,
/// answer score queries, and absorb a stream of edge inserts/removals by
/// re-scoring only the O(neighbourhood) nodes each update can affect.
///
/// The engine unrolls every active view's GMAE encoder/decoder stack into
/// per-row stages whose arithmetic replicates the batch kernels
/// bit-for-bit (MatMulNaive rows, SparseMatrix::Multiply rows, the
/// edge-softmax GAT row walk, SimplexWeightedSum fusion). An edge update
/// invalidates exactly the rows whose inputs changed — degree
/// renormalisation touches the closed neighbourhood of the endpoints, and
/// each propagation stage widens the dirty front by one hop — and lazy
/// row-level recomputation restores them.
///
/// Determinism policy (two score paths, both exact):
///  - Incremental path (scores(), ApplyEdgeUpdate): structure-residual
///    negatives are drawn from per-(view, relation, node) Rng streams, so
///    a node's draw is independent of every other node. scores() is
///    bit-identical to RescoreFullNaive() — a from-scratch serial batch
///    recompute with the same kernels and streams — after any update
///    sequence, for any UMGAD_THREADS / arena / cache-budget setting
///    (tests/serve_oracle_test.cc). With num_score_negatives == 0 the
///    incremental scores also equal the training-time scores bit-for-bit.
///  - Batch-replay path (BatchReplayScores): TrainedModel::Score over the
///    current graph snapshot, using the artifact's captured Rng state.
///    On the unmutated training graph this reproduces the fitted model's
///    scores exactly (the golden-fixture serve leg).
/// The two paths differ only in where the residual's negative samples come
/// from; the training-time sampler walks one sequential stream node-major,
/// which cannot be replayed for a single node in isolation.
///
/// Thread-safety contract: an OnlineScorer is **not** internally
/// synchronised. ApplyEdgeUpdate(s) mutates the adjacency replicas, the
/// row caches, and the score vector in place, so
///   - at most one thread may be inside Apply* at a time, and
///   - no thread may call scores(), Query(), Components(),
///     RescoreFullNaive(), BatchReplayScores(), SnapshotGraph(), or stats()
///     while another is inside Apply* — a concurrent read observes torn
///     intermediate state (a data race, flagged by TSan).
/// Distinct OnlineScorer instances share no mutable state and may be
/// driven from different threads freely. Concurrent serving goes through
/// serve/shard_router.h, which serialises writes per shard behind bounded
/// queues and publishes immutable score snapshots that readers access
/// without ever blocking on an update (tests/serve_concurrency_test.cc
/// hammers that path under TSan).
class OnlineScorer {
 public:
  /// Build the serving state: verifies the artifact fingerprint against
  /// `graph`, unrolls the stage pipeline, and runs the initial full pass.
  static Result<std::unique_ptr<OnlineScorer>> Create(
      TrainedModel model, const MultiplexGraph& graph,
      ServeOptions options = ServeOptions());

  ~OnlineScorer();

  /// Current anomaly scores (Eq. 19) for all nodes. Empty in owner-masked
  /// component mode (the mask makes the global Combine impossible — see
  /// ServeOptions::owned_nodes).
  const std::vector<double>& scores() const;

  /// Batched score lookup (fans the gather across the thread pool).
  /// FailedPrecondition in owner-masked component mode.
  Result<std::vector<double>> Query(const std::vector<int>& nodes) const;

  /// Borrowed per-view raw score components (see ViewComponents). In
  /// owner-masked mode only owned nodes' entries are maintained; the rest
  /// hold stale or initial values. Invalidated by the next Apply* call.
  std::vector<ViewComponents> Components() const;

  /// True when ServeOptions::owned_nodes restricted this scorer to a
  /// component provider.
  bool component_only() const;

  /// Apply one undirected edge insert/removal and re-score the affected
  /// nodes. Rejects out-of-range endpoints/relation, self loops, inserting
  /// a present edge, and removing an absent one (state is untouched on
  /// error).
  Status ApplyEdgeUpdate(const EdgeUpdate& update);

  /// Apply a burst of edge updates as one coalesced re-score pass: the
  /// updates are validated and applied sequentially first (rolling back the
  /// applied prefix if one fails, so the state is untouched on error), then
  /// each relation's dirty fronts are unioned and every affected row is
  /// invalidated and recomputed once for the whole burst. Bit-identical to
  /// applying the updates one at a time through ApplyEdgeUpdate.
  Status ApplyEdgeUpdates(const std::vector<EdgeUpdate>& updates);

  /// Serial from-scratch batch recompute with the serving kernels and
  /// per-node negative streams: the differential oracle the incremental
  /// path is pinned against (mirrors the repo's *Naive convention). Does
  /// not touch the cached state. In owner-masked mode the result is empty
  /// (no global Combine); the sharded oracle comparisons run against a
  /// separate unmasked scorer instead (tests/shard_router_test.cc).
  std::vector<double> RescoreFullNaive() const;

  /// TrainedModel::Score over the current graph snapshot (training-time
  /// sequential negative stream). See the class comment for how this
  /// differs from scores().
  Result<std::vector<double>> BatchReplayScores() const;

  /// Immutable copy of the current (possibly mutated) graph.
  MultiplexGraph SnapshotGraph() const;

  const ServeStats& stats() const { return stats_; }
  const TrainedModel& model() const { return model_; }
  int num_nodes() const;
  int num_relations() const;

 private:
  struct Impl;
  OnlineScorer();

  TrainedModel model_;
  ServeStats stats_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace umgad

#endif  // UMGAD_SERVE_ONLINE_SCORER_H_
