#ifndef UMGAD_SERVE_SERVE_METRICS_H_
#define UMGAD_SERVE_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace umgad {
namespace serve {

/// Lock-free log₂-bucketed latency histogram. Record() is wait-free
/// (relaxed atomic increments) and safe from any number of threads;
/// Percentile()/Snapshot() read a racy-but-monotone view, which is exactly
/// right for metrics (each bucket is only ever incremented). Resolution is
/// one power of two: a percentile is reported as the geometric midpoint of
/// its bucket, so p50/p99 carry at most ~41% relative error — plenty for
/// SLO gating, and the price of never taking a lock on the serve path.
class LatencyHistogram {
 public:
  /// Bucket b holds samples in [2^b, 2^(b+1)) microseconds; bucket 0 also
  /// absorbs sub-microsecond samples. 2^39 us ≈ 6.4 days caps the top.
  static constexpr int kBuckets = 40;

  void Record(double micros);

  int64_t count() const;
  double sum_us() const;
  double mean_us() const;
  double max_us() const;
  /// p in [0, 100]. 0 with no samples.
  double Percentile(double p) const;

  /// Adds this histogram's buckets into `out` (size kBuckets) — the merge
  /// primitive for cross-shard aggregate percentiles.
  void AccumulateBuckets(int64_t* out) const;

  /// Percentile over a merged bucket array (same midpoint convention).
  static double PercentileFromBuckets(const int64_t* buckets, double p);

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_tenth_us_{0};  // sum in 0.1us ticks
  std::atomic<int64_t> max_tenth_us_{0};
};

/// Point-in-time copy of one histogram, embedded in stats snapshots.
struct HistogramSnapshot {
  int64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

HistogramSnapshot SnapshotHistogram(const LatencyHistogram& h);

/// One shard's serving counters, as captured by ShardRouter::Stats().
struct ShardStatsSnapshot {
  int shard = 0;
  int owned_nodes = 0;
  /// Updates accepted into this shard's queue / applied by its worker /
  /// rejected as invalid (bad endpoint, duplicate insert, absent removal) /
  /// dropped because the queue was full (drop_when_full mode only).
  int64_t enqueued = 0;
  int64_t applied = 0;
  int64_t rejected = 0;
  int64_t dropped = 0;
  /// Submit() calls that had to block on a full queue (backpressure mode).
  int64_t backpressure_waits = 0;
  int64_t queue_depth = 0;
  int64_t queue_peak = 0;
  /// Row-cache hit rate of the shard's incremental re-scoring
  /// (OnlineScorer ServeStats), plus the raw counters.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Per-update apply latency (burst latency divided evenly over the
  /// burst's updates) and per-publish combine+swap latency.
  HistogramSnapshot update_latency;
  HistogramSnapshot publish_latency;
};

/// Whole-router stats: per-shard snapshots plus cross-shard aggregates.
struct RouterStats {
  int num_shards = 0;
  /// Snapshot epoch readers currently see (number of publishes).
  uint64_t epoch = 0;
  /// True when every shard had applied the same number of updates at
  /// capture time (always true after Flush()): the published scores equal
  /// the flat oracle's at that stream position.
  bool stream_consistent = false;
  int64_t total_enqueued = 0;
  int64_t total_applied = 0;
  int64_t total_rejected = 0;
  int64_t total_dropped = 0;
  int64_t total_backpressure_waits = 0;
  int64_t queue_depth = 0;
  double cache_hit_rate = 0.0;
  /// Aggregate latency over all shards' merged buckets.
  HistogramSnapshot update_latency;
  HistogramSnapshot publish_latency;
  std::vector<ShardStatsSnapshot> shards;
};

/// Human-readable multi-line rendering (umgad_cli serve --metrics,
/// bench_serve_stream).
std::string FormatRouterStats(const RouterStats& stats);

}  // namespace serve
}  // namespace umgad

#endif  // UMGAD_SERVE_SERVE_METRICS_H_
