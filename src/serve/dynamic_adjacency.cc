#include "serve/dynamic_adjacency.h"

#include <algorithm>

#include "common/logging.h"

namespace umgad {
namespace serve {

DynamicAdjacency::DynamicAdjacency(const SparseMatrix& m) {
  UMGAD_CHECK_EQ(m.rows(), m.cols());
  const int n = m.rows();
  cols_.resize(n);
  vals_.resize(n);
  row_sum_.assign(n, 0.0);
  const auto& rp = m.row_ptr();
  const auto& ci = m.col_idx();
  const auto& v = m.values();
  for (int i = 0; i < n; ++i) {
    const int64_t begin = rp[i];
    const int64_t end = rp[i + 1];
    cols_[i].assign(ci.begin() + begin, ci.begin() + end);
    vals_[i].assign(v.begin() + begin, v.begin() + end);
    RecomputeRowSum(i);
  }
  nnz_ = m.nnz();
}

bool DynamicAdjacency::Has(int i, int j) const {
  UMGAD_CHECK(i >= 0 && i < rows());
  return std::binary_search(cols_[i].begin(), cols_[i].end(), j);
}

bool DynamicAdjacency::AddEntry(int i, int j, float value) {
  UMGAD_CHECK(i >= 0 && i < rows());
  UMGAD_CHECK(j >= 0 && j < rows());
  if (i == j) return false;
  auto it = std::lower_bound(cols_[i].begin(), cols_[i].end(), j);
  if (it != cols_[i].end() && *it == j) return false;
  const size_t pos = static_cast<size_t>(it - cols_[i].begin());
  cols_[i].insert(it, j);
  vals_[i].insert(vals_[i].begin() + pos, value);
  RecomputeRowSum(i);
  ++nnz_;
  return true;
}

bool DynamicAdjacency::RemoveEntry(int i, int j) {
  UMGAD_CHECK(i >= 0 && i < rows());
  auto it = std::lower_bound(cols_[i].begin(), cols_[i].end(), j);
  if (it == cols_[i].end() || *it != j) return false;
  const size_t pos = static_cast<size_t>(it - cols_[i].begin());
  cols_[i].erase(it);
  vals_[i].erase(vals_[i].begin() + pos);
  RecomputeRowSum(i);
  --nnz_;
  return true;
}

SparseMatrix DynamicAdjacency::ToSparse() const {
  const int n = rows();
  std::vector<int64_t> row_ptr(n + 1, 0);
  std::vector<int> col_idx;
  std::vector<float> values;
  col_idx.reserve(static_cast<size_t>(nnz_));
  values.reserve(static_cast<size_t>(nnz_));
  for (int i = 0; i < n; ++i) {
    row_ptr[i + 1] = row_ptr[i] + static_cast<int64_t>(cols_[i].size());
    col_idx.insert(col_idx.end(), cols_[i].begin(), cols_[i].end());
    values.insert(values.end(), vals_[i].begin(), vals_[i].end());
  }
  Result<SparseMatrix> m = SparseMatrix::FromCsr(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  UMGAD_CHECK(m.ok());
  return std::move(m).value();
}

void DynamicAdjacency::RecomputeRowSum(int i) {
  // Full ascending re-sum, not += delta: keeps the accumulation order (and
  // therefore the rounded double) identical to SparseMatrix::RowSums() on
  // the equivalent CSR.
  double s = 0.0;
  for (float v : vals_[i]) s += v;
  row_sum_[i] = s;
}

}  // namespace serve
}  // namespace umgad
