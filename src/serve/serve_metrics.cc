#include "serve/serve_metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace umgad {
namespace serve {
namespace {

int BucketOf(double micros) {
  if (!(micros > 1.0)) return 0;
  const int b = static_cast<int>(std::log2(micros));
  return std::min(std::max(b, 0), LatencyHistogram::kBuckets - 1);
}

/// Geometric midpoint of bucket b's [2^b, 2^(b+1)) range (lower bound
/// clamped to 1us for bucket 0, which also absorbs sub-us samples).
double BucketMidpoint(int b) {
  const double lo = std::max(std::pow(2.0, b), 1.0);
  const double hi = std::pow(2.0, b + 1);
  return std::sqrt(lo * hi);
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0 || !std::isfinite(micros)) micros = 0.0;
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t ticks = static_cast<int64_t>(micros * 10.0);
  sum_tenth_us_.fetch_add(ticks, std::memory_order_relaxed);
  int64_t prev = max_tenth_us_.load(std::memory_order_relaxed);
  while (ticks > prev && !max_tenth_us_.compare_exchange_weak(
                             prev, ticks, std::memory_order_relaxed)) {
  }
}

int64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::sum_us() const {
  return sum_tenth_us_.load(std::memory_order_relaxed) / 10.0;
}

double LatencyHistogram::mean_us() const {
  const int64_t c = count();
  return c > 0 ? sum_us() / c : 0.0;
}

double LatencyHistogram::max_us() const {
  return max_tenth_us_.load(std::memory_order_relaxed) / 10.0;
}

double LatencyHistogram::Percentile(double p) const {
  int64_t buckets[kBuckets] = {};
  AccumulateBuckets(buckets);
  const double raw = PercentileFromBuckets(buckets, p);
  const double mx = max_us();
  return mx > 0.0 ? std::min(raw, mx) : raw;
}

void LatencyHistogram::AccumulateBuckets(int64_t* out) const {
  for (int b = 0; b < kBuckets; ++b) {
    out[b] += buckets_[b].load(std::memory_order_relaxed);
  }
}

double LatencyHistogram::PercentileFromBuckets(const int64_t* buckets,
                                               double p) {
  int64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) total += buckets[b];
  if (total == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 100.0);
  // The sample at 1-based rank ceil(p/100 * total) (nearest-rank method).
  int64_t rank = static_cast<int64_t>(std::ceil(p / 100.0 * total));
  rank = std::max<int64_t>(rank, 1);
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return BucketMidpoint(b);
  }
  return BucketMidpoint(kBuckets - 1);
}

HistogramSnapshot SnapshotHistogram(const LatencyHistogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.p50_us = h.Percentile(50.0);
  s.p99_us = h.Percentile(99.0);
  s.mean_us = h.mean_us();
  s.max_us = h.max_us();
  return s;
}

std::string FormatRouterStats(const RouterStats& stats) {
  std::string out = StrFormat(
      "router: shards=%d epoch=%llu %s\n"
      "  updates: enqueued=%lld applied=%lld rejected=%lld dropped=%lld "
      "backpressure_waits=%lld queue_depth=%lld\n"
      "  update latency: p50=%.1fus p99=%.1fus mean=%.1fus max=%.1fus "
      "(n=%lld)\n"
      "  publish latency: p50=%.1fus p99=%.1fus mean=%.1fus max=%.1fus "
      "(n=%lld)\n"
      "  cache hit rate: %.4f\n",
      stats.num_shards, static_cast<unsigned long long>(stats.epoch),
      stats.stream_consistent ? "stream-consistent" : "converging",
      static_cast<long long>(stats.total_enqueued),
      static_cast<long long>(stats.total_applied),
      static_cast<long long>(stats.total_rejected),
      static_cast<long long>(stats.total_dropped),
      static_cast<long long>(stats.total_backpressure_waits),
      static_cast<long long>(stats.queue_depth), stats.update_latency.p50_us,
      stats.update_latency.p99_us, stats.update_latency.mean_us,
      stats.update_latency.max_us,
      static_cast<long long>(stats.update_latency.count),
      stats.publish_latency.p50_us, stats.publish_latency.p99_us,
      stats.publish_latency.mean_us, stats.publish_latency.max_us,
      static_cast<long long>(stats.publish_latency.count),
      stats.cache_hit_rate);
  for (const ShardStatsSnapshot& s : stats.shards) {
    out += StrFormat(
        "  shard %d: owned=%d applied=%lld rejected=%lld dropped=%lld "
        "depth=%lld peak=%lld hit_rate=%.4f update_p50=%.1fus "
        "update_p99=%.1fus\n",
        s.shard, s.owned_nodes, static_cast<long long>(s.applied),
        static_cast<long long>(s.rejected), static_cast<long long>(s.dropped),
        static_cast<long long>(s.queue_depth),
        static_cast<long long>(s.queue_peak), s.cache_hit_rate,
        s.update_latency.p50_us, s.update_latency.p99_us);
  }
  return out;
}

}  // namespace serve
}  // namespace umgad
