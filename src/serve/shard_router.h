#ifndef UMGAD_SERVE_SHARD_ROUTER_H_
#define UMGAD_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/model_io.h"
#include "graph/multiplex_graph.h"
#include "graph/partition/partition_options.h"
#include "serve/online_scorer.h"
#include "serve/serve_metrics.h"

namespace umgad {
namespace serve {

/// Knobs for a ShardRouter.
struct RouterOptions {
  /// Number of shards S. Each shard is an owner-masked OnlineScorer
  /// replica drained by its own worker thread; node ownership comes from
  /// the streaming graph partitioner (src/graph/partition/), so a shard's
  /// expensive re-scoring work is its owned rows only.
  int num_shards = 1;
  /// Bounded per-shard update-queue capacity (in updates).
  int queue_capacity = 4096;
  /// Max updates a worker coalesces into one ApplyEdgeUpdates pass.
  int max_burst = 64;
  /// Queue-full policy: false (default) = Submit blocks until space in
  /// every shard's queue (counted as backpressure_waits); true = the
  /// update is dropped from *all* shards (counted as dropped) — dropping
  /// must be all-or-nothing or the shard replicas would diverge.
  bool drop_when_full = false;
  /// Edge-partition heuristic behind the ownership derivation.
  PartitionMethod partition_method = PartitionMethod::kDbh;
  /// Per-shard scorer options (cache budget). owned_nodes is overwritten
  /// with each shard's ownership mask.
  ServeOptions serve;
};

/// One published score vector. Immutable once published; readers hold it
/// via shared_ptr, so a snapshot stays valid for as long as any reader
/// keeps it — publishes never invalidate an in-flight read.
struct ScoreSnapshot {
  /// Publish counter (strictly increasing; 1 = the initial full pass).
  uint64_t epoch = 0;
  /// Min/max over shards of the stream position (updates dequeued,
  /// rejected included) the publishing gather observed.
  int64_t min_applied = 0;
  int64_t max_applied = 0;
  /// min_applied == max_applied: every shard had processed the same
  /// prefix of the update stream, so `scores` is bit-identical to a flat
  /// OnlineScorer at that position. Always true for the snapshot visible
  /// after Flush(). When false the snapshot is still never torn — it is
  /// one atomic Combine over a consistent board — but mixes shards at
  /// different stream positions (see ARCHITECTURE.md §12).
  bool stream_consistent = false;
  std::vector<double> scores;
};

/// Sharded, snapshot-consistent serving front-end over S owner-masked
/// OnlineScorer replicas (ROADMAP item 5: concurrent update bursts must
/// not serialize on one scorer, and reads must never tear).
///
/// Architecture (ARCHITECTURE.md §12 has the diagram):
///  - Ownership: the streaming edge partitioner derives whole-row vertex
///    ownership; shard s maintains score components for its owned nodes
///    only, but replicates the full adjacency (cross-shard edges reach
///    every shard, so dirty-front propagation is exact everywhere).
///  - Writes: Submit() broadcasts each update to every shard's bounded
///    queue under a router order lock (all replicas consume the same
///    stream in the same order — the invariant that keeps them
///    convergent). A per-shard worker drains its queue in bursts through
///    ApplyEdgeUpdates; an invalid update inside a burst falls back to
///    deterministic one-at-a-time apply-or-skip, so the final state is
///    independent of how the stream was chopped into bursts.
///  - Reads: after a burst, the worker copies its owned component slices
///    onto a shared board, runs the *global* CombineComponents (the flat
///    scorer's exact float path) and publishes the result as an immutable
///    ScoreSnapshot behind one atomic pointer swap with a monotone epoch.
///    Query()/Snapshot() only ever touch that pointer: readers never
///    block on update application, never observe a torn vector, and a
///    drained router is bit-identical to the flat single-scorer oracle
///    (tests/shard_router_test.cc, tests/serve_concurrency_test.cc).
///
/// Thread-safety: Submit/Flush/Query/Snapshot/Stats are safe from any
/// number of threads. The destructor drains already-queued updates, then
/// joins the workers; no Submit/Flush/Query may race the destructor (the
/// usual single-owner teardown rule).
class ShardRouter {
 public:
  static Result<std::unique_ptr<ShardRouter>> Create(
      TrainedModel model, const MultiplexGraph& graph,
      RouterOptions options = RouterOptions());

  ~ShardRouter();

  /// The latest published snapshot (never null after Create).
  std::shared_ptr<const ScoreSnapshot> Snapshot() const;

  /// Score lookup against the latest snapshot. OutOfRange on a bad node
  /// id; never blocks on in-flight updates.
  Result<std::vector<double>> Query(const std::vector<int>& nodes) const;

  /// Enqueue the updates to every shard, in order. Returns the number
  /// accepted (== updates.size() unless drop_when_full shed some).
  /// Invalid updates are accepted here and rejected (counted, skipped) at
  /// apply time — rejection must happen in stream order on every shard.
  int64_t Submit(const std::vector<EdgeUpdate>& updates);

  /// Block until every update submitted before this call has been applied
  /// and the resulting snapshot (stream_consistent == true) is published.
  void Flush();

  /// Point-in-time metrics over all shards.
  RouterStats Stats() const;

  int num_shards() const;
  int num_nodes() const;
  /// Node -> owning shard.
  const std::vector<int>& shard_of() const;

 private:
  ShardRouter();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace umgad

#endif  // UMGAD_SERVE_SHARD_ROUTER_H_
