#ifndef UMGAD_SERVE_DYNAMIC_ADJACENCY_H_
#define UMGAD_SERVE_DYNAMIC_ADJACENCY_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/sparse.h"

namespace umgad {
namespace serve {

/// Mutable adjacency for the online scoring service: per-row sorted
/// neighbour lists supporting O(log deg) membership tests and O(deg)
/// single-entry inserts/removes, convertible back to the immutable CSR
/// form. The serve engine's per-row kernels read rows straight out of this
/// structure, merging the self loop of the symmetric-normalised operator on
/// the fly (see NormInvSqrt / ForEachNormEntry), so no CSR rebuild happens
/// on an edge update.
///
/// Bit-compatibility contract: for any state reachable by mutations,
/// ToSparse() equals the CSR FromCoo would build from the same entry set,
/// and row_sum(i) equals SparseMatrix::RowSums()[i] of that CSR — the
/// per-row sums are re-accumulated in ascending-column order on every
/// mutation rather than adjusted by +/- delta, so the floating-point
/// association matches the batch path exactly.
///
/// Rows are directed entries; the OnlineScorer applies undirected updates
/// symmetrically. Self loops are rejected (the multiplex layers are simple
/// graphs; the normalised operator adds its own loop).
class DynamicAdjacency {
 public:
  DynamicAdjacency() = default;
  explicit DynamicAdjacency(const SparseMatrix& m);

  int rows() const { return static_cast<int>(cols_.size()); }
  int64_t nnz() const { return nnz_; }

  bool Has(int i, int j) const;
  /// Insert entry (i, j) with the given value. Returns false (no change)
  /// if the entry already exists or i == j.
  bool AddEntry(int i, int j, float value);
  /// Remove entry (i, j). Returns false (no change) if absent.
  bool RemoveEntry(int i, int j);

  const std::vector<int>& neighbors(int i) const { return cols_[i]; }
  const std::vector<float>& values(int i) const { return vals_[i]; }
  int degree(int i) const { return static_cast<int>(cols_[i].size()); }

  /// Row sum of (this matrix), accumulated ascending like
  /// SparseMatrix::RowSums().
  double row_sum(int i) const { return row_sum_[i]; }

  /// 1/sqrt(deg_i) of (S + I) — the per-row scale of
  /// SparseMatrix::NormalizedWithSelfLoops().
  double NormInvSqrt(int i) const { return 1.0 / std::sqrt(row_sum_[i] + 1.0); }

  /// Visit row i of the symmetric-normalised operator with self loop, in
  /// ascending column order, producing per-entry float values bit-identical
  /// to NormalizedWithSelfLoops(): neighbours j get
  /// (float)(v_ij * inv_i * inv_j), the loop gets (float)(inv_i * inv_i).
  template <typename Fn>
  void ForEachNormEntry(int i, Fn&& fn) const {
    const double inv_i = NormInvSqrt(i);
    const std::vector<int>& cols = cols_[i];
    const std::vector<float>& vals = vals_[i];
    bool self_done = false;
    for (size_t k = 0; k < cols.size(); ++k) {
      const int j = cols[k];
      if (!self_done && j > i) {
        fn(i, static_cast<float>(inv_i * inv_i));
        self_done = true;
      }
      fn(j, static_cast<float>(vals[k] * inv_i * NormInvSqrt(j)));
    }
    if (!self_done) fn(i, static_cast<float>(inv_i * inv_i));
  }

  /// Rebuild the immutable CSR (FromCoo-canonical: ascending columns).
  SparseMatrix ToSparse() const;

 private:
  void RecomputeRowSum(int i);

  std::vector<std::vector<int>> cols_;
  std::vector<std::vector<float>> vals_;
  std::vector<double> row_sum_;
  int64_t nnz_ = 0;
};

}  // namespace serve
}  // namespace umgad

#endif  // UMGAD_SERVE_DYNAMIC_ADJACENCY_H_
