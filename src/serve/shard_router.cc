#include "serve/shard_router.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "graph/partition/partitioner.h"

namespace umgad {
namespace serve {

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

struct ShardRouter::Impl {
  int n = 0;
  int r_count = 0;
  float epsilon = 0.0f;
  RouterOptions options;
  std::vector<int> shard_of;
  // Per shard: its owned node ids, ascending.
  std::vector<std::vector<int>> owned_lists;

  /// One shard: an owner-masked scorer, its bounded MPSC queue, and the
  /// worker thread that drains it. The queue invariants:
  ///  - only Submit() (under submit_mu) pushes, so every shard sees the
  ///    same updates in the same order;
  ///  - only the shard's worker pops, so the scorer is single-writer.
  struct Shard {
    std::unique_ptr<OnlineScorer> scorer;
    std::thread worker;

    std::mutex mu;
    std::condition_variable can_push;  // space freed
    std::condition_variable can_pop;   // items arrived or stopping
    std::condition_variable idle;      // queue empty and worker not busy
    std::deque<EdgeUpdate> queue;
    bool busy = false;
    bool stop = false;
    int64_t queue_peak = 0;

    std::atomic<int64_t> enqueued{0};
    std::atomic<int64_t> applied{0};
    std::atomic<int64_t> rejected{0};
    std::atomic<int64_t> backpressure_waits{0};
    std::atomic<int64_t> cache_hits{0};
    std::atomic<int64_t> cache_misses{0};
    LatencyHistogram update_hist;
    LatencyHistogram publish_hist;
  };
  std::vector<std::unique_ptr<Shard>> shards;

  /// Serialises producers: the broadcast to all queues must be atomic so
  /// every replica consumes one global update order (shard replicas that
  /// saw different orders could diverge permanently).
  std::mutex submit_mu;
  std::atomic<int64_t> dropped_updates{0};

  /// The component board: every shard's owned slices of each view's raw
  /// score components, plus each shard's stream position at its last
  /// gather. Guarded by board_mu; the publish path (gather + global
  /// combine + snapshot swap) runs entirely under it.
  struct BoardView {
    bool attr_used = false;
    bool struct_used = false;
    std::vector<double> attr_val;               // n
    std::vector<std::vector<double>> residual;  // [rel][n]
  };
  std::mutex board_mu;
  std::vector<BoardView> board;
  std::vector<int64_t> board_pos;
  uint64_t epoch = 0;

  /// Readers go through std::atomic_load on this pointer only.
  std::shared_ptr<const ScoreSnapshot> snapshot;

  void CopyOwnedComponentsLocked(int s);
  void PublishLocked(LatencyHistogram* hist);
  void WorkerLoop(int s);
};

void ShardRouter::Impl::CopyOwnedComponentsLocked(int s) {
  const std::vector<ViewComponents> comps = shards[s]->scorer->Components();
  const std::vector<int>& owned = owned_lists[s];
  for (size_t v = 0; v < board.size(); ++v) {
    BoardView& bv = board[v];
    if (bv.attr_used) {
      const std::vector<double>& src = *comps[v].attr_val;
      for (int i : owned) bv.attr_val[i] = src[i];
    }
    if (bv.struct_used) {
      for (int r = 0; r < r_count; ++r) {
        const std::vector<double>& src = (*comps[v].residual)[r];
        std::vector<double>& dst = bv.residual[r];
        for (int i : owned) dst[i] = src[i];
      }
    }
  }
}

void ShardRouter::Impl::PublishLocked(LatencyHistogram* hist) {
  WallTimer timer;
  std::vector<ViewComponents> views;
  views.reserve(board.size());
  for (BoardView& bv : board) {
    ViewComponents vc;
    vc.attr_used = bv.attr_used;
    vc.struct_used = bv.struct_used;
    if (bv.attr_used) vc.attr_val = &bv.attr_val;
    if (bv.struct_used) vc.residual = &bv.residual;
    views.push_back(vc);
  }
  auto snap = std::make_shared<ScoreSnapshot>();
  snap->epoch = ++epoch;
  snap->min_applied = board_pos.empty() ? 0 : board_pos[0];
  snap->max_applied = snap->min_applied;
  for (int64_t p : board_pos) {
    snap->min_applied = std::min(snap->min_applied, p);
    snap->max_applied = std::max(snap->max_applied, p);
  }
  snap->stream_consistent = snap->min_applied == snap->max_applied;
  snap->scores = CombineComponents(views, n, r_count, epsilon);
  std::atomic_store(&snapshot,
                    std::shared_ptr<const ScoreSnapshot>(std::move(snap)));
  if (hist != nullptr) hist->Record(timer.ElapsedMillis() * 1000.0);
}

void ShardRouter::Impl::WorkerLoop(int s) {
  Shard& sh = *shards[s];
  int64_t pos = 0;  // stream position; worker-local, exported via the board
  std::vector<EdgeUpdate> burst;
  const int max_burst = options.max_burst;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(sh.mu);
      sh.can_pop.wait(lock, [&] { return sh.stop || !sh.queue.empty(); });
      if (sh.queue.empty()) return;  // stop requested, nothing left to do
      burst.clear();
      while (!sh.queue.empty() &&
             static_cast<int>(burst.size()) < max_burst) {
        burst.push_back(sh.queue.front());
        sh.queue.pop_front();
      }
      sh.busy = true;
    }
    sh.can_push.notify_all();

    WallTimer timer;
    Status status = sh.scorer->ApplyEdgeUpdates(burst);
    int64_t burst_rejected = 0;
    if (!status.ok()) {
      // Deterministic fallback: apply one at a time, skipping invalid
      // updates. Each update's validity depends only on the adjacency
      // after the previous accepted updates, so the final state is
      // independent of how the stream was chopped into bursts — every
      // shard converges to the same replica no matter its queue timing.
      for (const EdgeUpdate& u : burst) {
        if (!sh.scorer->ApplyEdgeUpdate(u).ok()) ++burst_rejected;
      }
    }
    pos += static_cast<int64_t>(burst.size());
    const double per_update_us =
        timer.ElapsedMillis() * 1000.0 / static_cast<double>(burst.size());
    for (size_t i = 0; i < burst.size(); ++i) {
      sh.update_hist.Record(per_update_us);
    }
    sh.applied.fetch_add(
        static_cast<int64_t>(burst.size()) - burst_rejected,
        std::memory_order_relaxed);
    sh.rejected.fetch_add(burst_rejected, std::memory_order_relaxed);
    const ServeStats& st = sh.scorer->stats();
    sh.cache_hits.store(st.cache_hits, std::memory_order_relaxed);
    sh.cache_misses.store(st.cache_misses, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lock(board_mu);
      CopyOwnedComponentsLocked(s);
      board_pos[s] = pos;
      PublishLocked(&sh.publish_hist);
    }

    {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.busy = false;
      if (sh.queue.empty()) sh.idle.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

ShardRouter::ShardRouter() = default;

ShardRouter::~ShardRouter() {
  if (impl_ == nullptr) return;
  for (auto& sh : impl_->shards) {
    if (sh == nullptr) continue;
    {
      std::lock_guard<std::mutex> lock(sh->mu);
      sh->stop = true;
    }
    sh->can_pop.notify_all();
    sh->can_push.notify_all();
  }
  for (auto& sh : impl_->shards) {
    if (sh != nullptr && sh->worker.joinable()) sh->worker.join();
  }
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    TrainedModel model, const MultiplexGraph& graph, RouterOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("ShardRouter needs num_shards >= 1");
  }
  if (options.queue_capacity < 1 || options.max_burst < 1) {
    return Status::InvalidArgument(
        "ShardRouter needs queue_capacity >= 1 and max_burst >= 1");
  }
  if (!options.serve.owned_nodes.empty()) {
    return Status::InvalidArgument(
        "RouterOptions::serve.owned_nodes is derived per shard; leave it "
        "empty");
  }

  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->impl_ = std::make_unique<Impl>();
  Impl& impl = *router->impl_;
  impl.options = options;
  impl.n = graph.num_nodes();
  impl.r_count = graph.num_relations();
  impl.epsilon = model.config().epsilon;

  // Whole-row vertex ownership from the streaming edge partitioner —
  // exactly the schedule partitioned training uses, so shard balance
  // follows the same replication/balance stats (PartitionStats).
  if (options.num_shards == 1) {
    impl.shard_of.assign(impl.n, 0);
  } else {
    PartitionOptions popt;
    popt.num_blocks = options.num_shards;
    popt.method = options.partition_method;
    UMGAD_ASSIGN_OR_RETURN(VertexPartition partition,
                           PartitionGraph(graph, popt));
    impl.shard_of = partition.blocks->block_of;
  }
  impl.owned_lists.assign(options.num_shards, {});
  for (int i = 0; i < impl.n; ++i) {
    impl.owned_lists[impl.shard_of[i]].push_back(i);
  }

  // Build the S owner-masked scorer replicas. Each runs its own initial
  // full pass (stage rows are global; components owner-only).
  impl.shards.resize(options.num_shards);
  for (int s = 0; s < options.num_shards; ++s) {
    ServeOptions so = options.serve;
    so.owned_nodes.assign(impl.n, 0);
    for (int i : impl.owned_lists[s]) so.owned_nodes[i] = 1;
    UMGAD_ASSIGN_OR_RETURN(std::unique_ptr<OnlineScorer> scorer,
                           OnlineScorer::Create(model, graph, so));
    impl.shards[s] = std::make_unique<Impl::Shard>();
    impl.shards[s]->scorer = std::move(scorer);
  }

  // Board layout mirrors the scorers' view structure; the initial gather
  // over every shard publishes epoch 1 (stream-consistent at position 0,
  // bit-identical to a flat scorer's initial scores).
  const std::vector<ViewComponents> layout =
      impl.shards[0]->scorer->Components();
  impl.board.resize(layout.size());
  for (size_t v = 0; v < layout.size(); ++v) {
    impl.board[v].attr_used = layout[v].attr_used;
    impl.board[v].struct_used = layout[v].struct_used;
    if (layout[v].attr_used) impl.board[v].attr_val.assign(impl.n, 0.0);
    if (layout[v].struct_used) {
      impl.board[v].residual.assign(impl.r_count,
                                    std::vector<double>(impl.n, 0.0));
    }
  }
  impl.board_pos.assign(options.num_shards, 0);
  {
    std::lock_guard<std::mutex> lock(impl.board_mu);
    for (int s = 0; s < options.num_shards; ++s) {
      impl.CopyOwnedComponentsLocked(s);
    }
    impl.PublishLocked(nullptr);
  }

  for (int s = 0; s < options.num_shards; ++s) {
    impl.shards[s]->worker = std::thread(&Impl::WorkerLoop, &impl, s);
  }
  return router;
}

std::shared_ptr<const ScoreSnapshot> ShardRouter::Snapshot() const {
  return std::atomic_load(&impl_->snapshot);
}

Result<std::vector<double>> ShardRouter::Query(
    const std::vector<int>& nodes) const {
  const std::shared_ptr<const ScoreSnapshot> snap = Snapshot();
  for (int node : nodes) {
    if (node < 0 || node >= impl_->n) {
      return Status::OutOfRange("query node out of range");
    }
  }
  std::vector<double> out(nodes.size(), 0.0);
  for (size_t k = 0; k < nodes.size(); ++k) out[k] = snap->scores[nodes[k]];
  return out;
}

int64_t ShardRouter::Submit(const std::vector<EdgeUpdate>& updates) {
  Impl& impl = *impl_;
  std::lock_guard<std::mutex> submit_lock(impl.submit_mu);
  int64_t accepted = 0;
  for (const EdgeUpdate& update : updates) {
    if (impl.options.drop_when_full) {
      // All-or-nothing shedding: only Submit pushes (we hold submit_mu)
      // and workers only free space, so a "space everywhere" check stays
      // true through the pushes below.
      bool full = false;
      for (auto& sh : impl.shards) {
        std::lock_guard<std::mutex> lock(sh->mu);
        if (static_cast<int>(sh->queue.size()) >=
            impl.options.queue_capacity) {
          full = true;
        }
      }
      if (full) {
        impl.dropped_updates.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    for (auto& sh : impl.shards) {
      std::unique_lock<std::mutex> lock(sh->mu);
      if (static_cast<int>(sh->queue.size()) >= impl.options.queue_capacity) {
        sh->backpressure_waits.fetch_add(1, std::memory_order_relaxed);
        sh->can_push.wait(lock, [&] {
          return sh->stop || static_cast<int>(sh->queue.size()) <
                                 impl.options.queue_capacity;
        });
        if (sh->stop) return accepted;
      }
      sh->queue.push_back(update);
      sh->queue_peak = std::max(
          sh->queue_peak, static_cast<int64_t>(sh->queue.size()));
      sh->enqueued.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      sh->can_pop.notify_one();
    }
    ++accepted;
  }
  return accepted;
}

void ShardRouter::Flush() {
  Impl& impl = *impl_;
  // Holding submit_mu stalls new producers, so "queue empty and worker
  // idle" is a stable condition per shard; the last shard to drain
  // publishes with every board position equal — the stream-consistent
  // snapshot the caller observes after this returns.
  std::lock_guard<std::mutex> submit_lock(impl.submit_mu);
  for (auto& sh : impl.shards) {
    std::unique_lock<std::mutex> lock(sh->mu);
    sh->idle.wait(lock,
                  [&] { return sh->stop || (sh->queue.empty() && !sh->busy); });
  }
}

RouterStats ShardRouter::Stats() const {
  Impl& impl = *impl_;
  RouterStats out;
  out.num_shards = static_cast<int>(impl.shards.size());
  const std::shared_ptr<const ScoreSnapshot> snap = Snapshot();
  out.epoch = snap->epoch;
  out.stream_consistent = snap->stream_consistent;
  out.total_dropped = impl.dropped_updates.load(std::memory_order_relaxed);

  int64_t update_buckets[LatencyHistogram::kBuckets] = {};
  int64_t publish_buckets[LatencyHistogram::kBuckets] = {};
  double update_sum = 0.0;
  int64_t update_count = 0;
  double publish_sum = 0.0;
  int64_t publish_count = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  for (size_t s = 0; s < impl.shards.size(); ++s) {
    Impl::Shard& sh = *impl.shards[s];
    ShardStatsSnapshot ss;
    ss.shard = static_cast<int>(s);
    ss.owned_nodes = static_cast<int>(impl.owned_lists[s].size());
    ss.enqueued = sh.enqueued.load(std::memory_order_relaxed);
    ss.applied = sh.applied.load(std::memory_order_relaxed);
    ss.rejected = sh.rejected.load(std::memory_order_relaxed);
    ss.dropped = out.total_dropped;  // shedding is all-or-nothing
    ss.backpressure_waits =
        sh.backpressure_waits.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      ss.queue_depth = static_cast<int64_t>(sh.queue.size());
      ss.queue_peak = sh.queue_peak;
    }
    ss.cache_hits = sh.cache_hits.load(std::memory_order_relaxed);
    ss.cache_misses = sh.cache_misses.load(std::memory_order_relaxed);
    const int64_t lookups = ss.cache_hits + ss.cache_misses;
    ss.cache_hit_rate =
        lookups > 0 ? static_cast<double>(ss.cache_hits) / lookups : 0.0;
    ss.update_latency = SnapshotHistogram(sh.update_hist);
    ss.publish_latency = SnapshotHistogram(sh.publish_hist);

    out.total_enqueued += ss.enqueued;
    out.total_applied += ss.applied;
    out.total_rejected += ss.rejected;
    out.total_backpressure_waits += ss.backpressure_waits;
    out.queue_depth += ss.queue_depth;
    hits += ss.cache_hits;
    misses += ss.cache_misses;
    sh.update_hist.AccumulateBuckets(update_buckets);
    sh.publish_hist.AccumulateBuckets(publish_buckets);
    update_sum += sh.update_hist.sum_us();
    update_count += sh.update_hist.count();
    publish_sum += sh.publish_hist.sum_us();
    publish_count += sh.publish_hist.count();
    out.update_latency.max_us =
        std::max(out.update_latency.max_us, ss.update_latency.max_us);
    out.publish_latency.max_us =
        std::max(out.publish_latency.max_us, ss.publish_latency.max_us);
    out.shards.push_back(std::move(ss));
  }
  out.cache_hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0.0;
  out.update_latency.count = update_count;
  out.update_latency.mean_us =
      update_count > 0 ? update_sum / update_count : 0.0;
  out.update_latency.p50_us =
      LatencyHistogram::PercentileFromBuckets(update_buckets, 50.0);
  out.update_latency.p99_us =
      LatencyHistogram::PercentileFromBuckets(update_buckets, 99.0);
  out.publish_latency.count = publish_count;
  out.publish_latency.mean_us =
      publish_count > 0 ? publish_sum / publish_count : 0.0;
  out.publish_latency.p50_us =
      LatencyHistogram::PercentileFromBuckets(publish_buckets, 50.0);
  out.publish_latency.p99_us =
      LatencyHistogram::PercentileFromBuckets(publish_buckets, 99.0);
  // Bucket midpoints can overshoot the true extremes; clamp like
  // LatencyHistogram::Percentile does so p99 <= max always holds.
  for (HistogramSnapshot* h : {&out.update_latency, &out.publish_latency}) {
    if (h->max_us > 0.0) {
      h->p50_us = std::min(h->p50_us, h->max_us);
      h->p99_us = std::min(h->p99_us, h->max_us);
    }
  }
  return out;
}

int ShardRouter::num_shards() const {
  return static_cast<int>(impl_->shards.size());
}

int ShardRouter::num_nodes() const { return impl_->n; }

const std::vector<int>& ShardRouter::shard_of() const {
  return impl_->shard_of;
}

}  // namespace serve
}  // namespace umgad
