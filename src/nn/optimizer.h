#ifndef UMGAD_NN_OPTIMIZER_H_
#define UMGAD_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/autograd.h"

namespace umgad {
namespace nn {

/// Optimiser interface over a fixed parameter set. The usage pattern per
/// training step is: ag::Tape::Global().Reset() -> ZeroGrad() -> build
/// graph -> ag::Backward -> Step(). Parameters are persistent tape leaves,
/// so they (and their gradient accumulators, and the m/v state here)
/// survive the per-step tape rewind.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::VarPtr> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  void ZeroGrad() { ag::ZeroGradAll(params_); }
  virtual void Step() = 0;

  const std::vector<ag::VarPtr>& params() const { return params_; }

 protected:
  std::vector<ag::VarPtr> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::VarPtr> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with bias correction; the optimiser used for every
/// trained model in the benchmarks.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::VarPtr> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace umgad

#endif  // UMGAD_NN_OPTIMIZER_H_
