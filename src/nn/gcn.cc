#include "nn/gcn.h"

#include "tensor/init.h"

namespace umgad {
namespace nn {

ag::VarPtr Activate(const ag::VarPtr& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kLeakyRelu:
      return ag::LeakyRelu(x, 0.2f);
    case Activation::kElu:
      return ag::Elu(x);
    case Activation::kTanh:
      return ag::Tanh(x);
  }
  return x;
}

GcnConv::GcnConv(int in_dim, int out_dim, Activation act, Rng* rng)
    : act_(act) {
  weight_ = RegisterParameter(XavierUniform(in_dim, out_dim, rng));
  bias_ = RegisterParameter(Tensor(1, out_dim));
}

ag::VarPtr GcnConv::Forward(std::shared_ptr<const SparseMatrix> norm_adj,
                            const ag::VarPtr& x) const {
  ag::VarPtr h = ag::MatMul(x, weight_);
  h = ag::Spmm(std::move(norm_adj), h);
  h = ag::AddRowBroadcast(h, bias_);
  return Activate(h, act_);
}

SgcConv::SgcConv(int in_dim, int out_dim, int hops, Activation act, Rng* rng)
    : hops_(hops), act_(act) {
  UMGAD_CHECK_GE(hops, 0);
  weight_ = RegisterParameter(XavierUniform(in_dim, out_dim, rng));
  bias_ = RegisterParameter(Tensor(1, out_dim));
}

ag::VarPtr SgcConv::Forward(std::shared_ptr<const SparseMatrix> norm_adj,
                            const ag::VarPtr& x) const {
  ag::VarPtr h = ag::MatMul(x, weight_);
  for (int l = 0; l < hops_; ++l) {
    h = ag::Spmm(norm_adj, h);
  }
  h = ag::AddRowBroadcast(h, bias_);
  return Activate(h, act_);
}

}  // namespace nn
}  // namespace umgad
