#ifndef UMGAD_NN_GAT_H_
#define UMGAD_NN_GAT_H_

#include <memory>

#include "common/rng.h"
#include "nn/gcn.h"
#include "nn/module.h"

namespace umgad {
namespace nn {

/// Single-head graph attention convolution (Velickovic et al.), the "GAT"
/// half of the paper's encoder choices:
///   h    = x W
///   e_ij = LeakyReLU(<a_src, h_i> + <a_dst, h_j>)
///   y_i  = act(sum_j softmax_j(e_ij) h_j)
/// The adjacency passed to Forward should contain self loops so a node can
/// attend to itself (use SparseMatrix::NormalizedWithSelfLoops()'s pattern
/// or add loops to the raw adjacency).
class GatConv : public Module {
 public:
  GatConv(int in_dim, int out_dim, Activation act, Rng* rng,
          float negative_slope = 0.2f);

  ag::VarPtr Forward(std::shared_ptr<const SparseMatrix> adj,
                     const ag::VarPtr& x) const;

  /// Same layer through the kept-serial attention oracle
  /// (ag::GatAttentionNaive) — differential tests pin Forward against this
  /// bit-for-bit across thread counts (tests/oracle_harness.h).
  ag::VarPtr ForwardNaive(std::shared_ptr<const SparseMatrix> adj,
                          const ag::VarPtr& x) const;

  // Weight/topology access for the serve-layer per-row forward engine
  // (src/serve), which re-runs this layer's exact arithmetic one node at a
  // time against a dynamic adjacency.
  const Tensor& weight_value() const { return weight_->value(); }
  const Tensor& attn_src_value() const { return attn_src_->value(); }
  const Tensor& attn_dst_value() const { return attn_dst_->value(); }
  Activation activation() const { return act_; }
  float negative_slope() const { return slope_; }

 private:
  Activation act_;
  float slope_;
  ag::VarPtr weight_;
  ag::VarPtr attn_src_;
  ag::VarPtr attn_dst_;
};

}  // namespace nn
}  // namespace umgad

#endif  // UMGAD_NN_GAT_H_
