#include "nn/linear.h"

#include "tensor/init.h"

namespace umgad {
namespace nn {

Linear::Linear(int in_dim, int out_dim, Rng* rng, bool bias)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = RegisterParameter(XavierUniform(in_dim, out_dim, rng));
  if (bias) {
    bias_ = RegisterParameter(Tensor(1, out_dim));
  }
}

ag::VarPtr Linear::Forward(const ag::VarPtr& x) const {
  ag::VarPtr out = ag::MatMul(x, weight_);
  if (bias_) out = ag::AddRowBroadcast(out, bias_);
  return out;
}

}  // namespace nn
}  // namespace umgad
