#ifndef UMGAD_NN_MODULE_H_
#define UMGAD_NN_MODULE_H_

#include <string>
#include <vector>

#include "tensor/autograd.h"

namespace umgad {
namespace nn {

/// Base class for parameterised layers/models. A Module owns trainable
/// leaves (ag::Leaf — *persistent* tape nodes, which survive the per-step
/// ag::Tape::Reset()) and can register child modules; Parameters() flattens
/// the tree for the optimiser.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module and its registered children.
  std::vector<ag::VarPtr> Parameters() const;

  /// Number of scalar parameters (for model-size reporting).
  int64_t ParameterCount() const;

 protected:
  /// Register a trainable tensor; returns the leaf handle.
  ag::VarPtr RegisterParameter(Tensor value);
  /// Register a child whose parameters are included in Parameters().
  /// The child must outlive this module (members of the subclass).
  void RegisterChild(Module* child);

 private:
  std::vector<ag::VarPtr> params_;
  std::vector<Module*> children_;
};

}  // namespace nn
}  // namespace umgad

#endif  // UMGAD_NN_MODULE_H_
