#include "nn/gat.h"

#include "tensor/init.h"

namespace umgad {
namespace nn {

GatConv::GatConv(int in_dim, int out_dim, Activation act, Rng* rng,
                 float negative_slope)
    : act_(act), slope_(negative_slope) {
  weight_ = RegisterParameter(XavierUniform(in_dim, out_dim, rng));
  attn_src_ = RegisterParameter(XavierUniform(1, out_dim, rng));
  attn_dst_ = RegisterParameter(XavierUniform(1, out_dim, rng));
}

ag::VarPtr GatConv::Forward(std::shared_ptr<const SparseMatrix> adj,
                            const ag::VarPtr& x) const {
  ag::VarPtr h = ag::MatMul(x, weight_);
  ag::VarPtr out =
      ag::GatAttention(h, attn_src_, attn_dst_, std::move(adj), slope_);
  return Activate(out, act_);
}

ag::VarPtr GatConv::ForwardNaive(std::shared_ptr<const SparseMatrix> adj,
                                 const ag::VarPtr& x) const {
  ag::VarPtr h = ag::MatMul(x, weight_);
  ag::VarPtr out =
      ag::GatAttentionNaive(h, attn_src_, attn_dst_, std::move(adj), slope_);
  return Activate(out, act_);
}

}  // namespace nn
}  // namespace umgad
