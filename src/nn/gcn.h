#ifndef UMGAD_NN_GCN_H_
#define UMGAD_NN_GCN_H_

#include <memory>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace umgad {
namespace nn {

enum class Activation { kNone, kRelu, kLeakyRelu, kElu, kTanh };

/// Apply an activation from the enum (identity for kNone).
ag::VarPtr Activate(const ag::VarPtr& x, Activation act);

/// One GCN convolution: y = act(Â (x W) + b), where Â is the symmetric
/// normalised adjacency with self loops (passed per Forward call so one set
/// of weights can run over many perturbed/masked adjacencies, as the GMAE
/// masking repeats require).
class GcnConv : public Module {
 public:
  GcnConv(int in_dim, int out_dim, Activation act, Rng* rng);

  ag::VarPtr Forward(std::shared_ptr<const SparseMatrix> norm_adj,
                     const ag::VarPtr& x) const;

 private:
  Activation act_;
  ag::VarPtr weight_;
  ag::VarPtr bias_;
};

/// Simplified GCN (SGC): L propagation steps with a single linear map,
/// y = act(Â^L x W). The paper's decoder (and the "simplified GCN" half of
/// its encoder choices).
class SgcConv : public Module {
 public:
  SgcConv(int in_dim, int out_dim, int hops, Activation act, Rng* rng);

  ag::VarPtr Forward(std::shared_ptr<const SparseMatrix> norm_adj,
                     const ag::VarPtr& x) const;

  // Weight/shape access for the serve-layer per-row forward engine.
  const Tensor& weight_value() const { return weight_->value(); }
  const Tensor& bias_value() const { return bias_->value(); }
  int hops() const { return hops_; }
  Activation activation() const { return act_; }

 private:
  int hops_;
  Activation act_;
  ag::VarPtr weight_;
  ag::VarPtr bias_;
};

}  // namespace nn
}  // namespace umgad

#endif  // UMGAD_NN_GCN_H_
