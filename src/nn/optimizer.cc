#include "nn/optimizer.h"

#include <cmath>

namespace umgad {
namespace nn {

void Sgd::Step() {
  for (auto& p : params_) {
    if (!p->has_grad()) continue;
    Tensor& w = p->mutable_value();
    const Tensor& g = p->grad();
    float* wd = w.data();
    const float* gd = g.data();
    for (int64_t i = 0; i < w.size(); ++i) {
      wd[i] -= lr_ * (gd[i] + weight_decay_ * wd[i]);
    }
  }
}

Adam::Adam(std::vector<ag::VarPtr> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    if (!p->has_grad()) continue;
    Tensor& w = p->mutable_value();
    const Tensor& g = p->grad();
    float* wd = w.data();
    const float* gd = g.data();
    float* md = m_[k].data();
    float* vd = v_[k].data();
    for (int64_t i = 0; i < w.size(); ++i) {
      const float grad = gd[i] + weight_decay_ * wd[i];
      md[i] = beta1_ * md[i] + (1.0f - beta1_) * grad;
      vd[i] = beta2_ * vd[i] + (1.0f - beta2_) * grad * grad;
      const double mhat = md[i] / bc1;
      const double vhat = vd[i] / bc2;
      wd[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace nn
}  // namespace umgad
