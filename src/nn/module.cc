#include "nn/module.h"

namespace umgad {
namespace nn {

std::vector<ag::VarPtr> Module::Parameters() const {
  std::vector<ag::VarPtr> out = params_;
  for (const Module* child : children_) {
    std::vector<ag::VarPtr> sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p->value().size();
  return total;
}

ag::VarPtr Module::RegisterParameter(Tensor value) {
  ag::VarPtr leaf = ag::Leaf(std::move(value));
  params_.push_back(leaf);
  return leaf;
}

void Module::RegisterChild(Module* child) { children_.push_back(child); }

}  // namespace nn
}  // namespace umgad
