#include "nn/loss.h"

#include "graph/graph_ops.h"

namespace umgad {
namespace nn {

std::vector<ag::EdgeCandidateSet> BuildEdgeCandidates(
    const std::vector<Edge>& masked_edges, const SparseMatrix& observed,
    int num_negatives, Rng* rng) {
  std::vector<ag::EdgeCandidateSet> sets;
  sets.reserve(masked_edges.size());
  for (const Edge& e : masked_edges) {
    ag::EdgeCandidateSet set;
    set.src = e.src;
    set.cands.push_back(e.dst);
    std::vector<int> negatives =
        SampleNonNeighbors(observed, e.src, num_negatives, rng);
    set.cands.insert(set.cands.end(), negatives.begin(), negatives.end());
    sets.push_back(std::move(set));
  }
  return sets;
}

std::vector<ag::EdgeCandidateSet> RandomEdgeCandidates(int n, int count,
                                                       int num_negatives,
                                                       Rng* rng) {
  UMGAD_CHECK_GT(n, 1);
  std::vector<ag::EdgeCandidateSet> sets(count);
  for (ag::EdgeCandidateSet& set : sets) {
    set.src = static_cast<int>(rng->UniformInt(n));
    set.cands.resize(1 + num_negatives);
    for (int& c : set.cands) {
      int v = static_cast<int>(rng->UniformInt(n - 1));
      if (v >= set.src) ++v;  // uniform over [0, n) \ {src}
      c = v;
    }
  }
  return sets;
}

std::vector<int> SampleContrastiveNegatives(int n, Rng* rng) {
  UMGAD_CHECK_GT(n, 1);
  std::vector<int> neg(n);
  for (int i = 0; i < n; ++i) {
    int j = static_cast<int>(rng->UniformInt(n - 1));
    if (j >= i) ++j;  // uniform over [0, n) \ {i}
    neg[i] = j;
  }
  return neg;
}

ag::VarPtr ConvexCombine(const ag::VarPtr& a, const ag::VarPtr& b,
                         float alpha) {
  return ag::Add(ag::ScalarMul(a, alpha), ag::ScalarMul(b, 1.0f - alpha));
}

}  // namespace nn
}  // namespace umgad
