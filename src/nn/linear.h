#ifndef UMGAD_NN_LINEAR_H_
#define UMGAD_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace umgad {
namespace nn {

/// Dense affine layer: y = x W + b, Xavier-initialised.
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng* rng, bool bias = true);

  ag::VarPtr Forward(const ag::VarPtr& x) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  int in_dim_;
  int out_dim_;
  ag::VarPtr weight_;
  ag::VarPtr bias_;  // nullptr when disabled
};

}  // namespace nn
}  // namespace umgad

#endif  // UMGAD_NN_LINEAR_H_
