#ifndef UMGAD_NN_LOSS_H_
#define UMGAD_NN_LOSS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"

namespace umgad {
namespace nn {

/// Build the softmax candidate sets for the masked-edge reconstruction loss
/// (Eq. 7): for each masked undirected edge (v, u) the set holds the true
/// endpoint first, followed by `num_negatives` sampled non-neighbours of v
/// in `observed` (the unmasked graph, which is what the model sees).
std::vector<ag::EdgeCandidateSet> BuildEdgeCandidates(
    const std::vector<Edge>& masked_edges, const SparseMatrix& observed,
    int num_negatives, Rng* rng);

/// Uniform per-node negative indices j != i for the dual-view contrastive
/// loss (Eq. 17).
std::vector<int> SampleContrastiveNegatives(int n, Rng* rng);

/// `count` synthetic candidate sets over `n` nodes, each with a random
/// source and 1 + num_negatives random candidates (self excluded, repeats
/// and cross-set aliasing allowed — the worst case for the edge-loss
/// backward's shared-row scatter). Used by the differential-oracle tests
/// and the loss microbenchmarks; training code builds its sets from real
/// masked edges via BuildEdgeCandidates.
std::vector<ag::EdgeCandidateSet> RandomEdgeCandidates(int n, int count,
                                                       int num_negatives,
                                                       Rng* rng);

/// Convex combination of two scalar losses: alpha*a + (1-alpha)*b
/// (Eq. 9 / Eq. 16).
ag::VarPtr ConvexCombine(const ag::VarPtr& a, const ag::VarPtr& b,
                         float alpha);

}  // namespace nn
}  // namespace umgad

#endif  // UMGAD_NN_LOSS_H_
