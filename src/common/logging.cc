#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace umgad {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
  (void)level_;
}

}  // namespace internal
}  // namespace umgad
