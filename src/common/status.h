#ifndef UMGAD_COMMON_STATUS_H_
#define UMGAD_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace umgad {

/// RocksDB-style status code for fallible public APIs. Library-internal
/// invariant violations use UMGAD_CHECK instead; Status is reserved for
/// conditions a caller can plausibly hit with bad input (malformed files,
/// inconsistent graph specifications, invalid configuration).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Value-semantic error carrier. Cheap to copy in the OK case (empty
/// message); never throws.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagate a non-OK status to the caller (Arrow/RocksDB idiom).
#define UMGAD_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::umgad::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace umgad

#endif  // UMGAD_COMMON_STATUS_H_
