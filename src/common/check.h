#ifndef UMGAD_COMMON_CHECK_H_
#define UMGAD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These are for programmer errors (index out of
/// range, shape mismatch in library-internal code paths); user-facing
/// fallible operations return Status/Result instead.
///
/// Active in all build types: the cost is negligible next to the numeric
/// kernels, and silent memory corruption in a Release-mode experiment is far
/// more expensive than the branch.
#define UMGAD_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "UMGAD_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define UMGAD_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "UMGAD_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define UMGAD_CHECK_EQ(a, b) UMGAD_CHECK((a) == (b))
#define UMGAD_CHECK_LT(a, b) UMGAD_CHECK((a) < (b))
#define UMGAD_CHECK_LE(a, b) UMGAD_CHECK((a) <= (b))
#define UMGAD_CHECK_GT(a, b) UMGAD_CHECK((a) > (b))
#define UMGAD_CHECK_GE(a, b) UMGAD_CHECK((a) >= (b))

#endif  // UMGAD_COMMON_CHECK_H_
