#ifndef UMGAD_COMMON_RNG_H_
#define UMGAD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace umgad {

/// Deterministic, seedable pseudo-random number generator used by every
/// stochastic component in the library (masking, sampling, initialisation,
/// generators). Xoshiro256++ core seeded through SplitMix64, so two Rng
/// instances with the same seed produce identical streams on every platform.
///
/// There is deliberately no global RNG: components receive an Rng (or a
/// seed) explicitly, which keeps experiments reproducible and lets tests pin
/// exact behaviour.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p);

  /// k distinct indices sampled uniformly without replacement from [0, n).
  /// Returned indices are in random order. Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Random permutation of [0, n).
  std::vector<int> Permutation(int n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Index sampled proportionally to the given non-negative weights.
  /// Falls back to uniform if all weights are zero.
  int SampleDiscrete(const std::vector<double>& weights);

  /// Derive an independent child generator (for per-component streams).
  Rng Fork();

  /// Full generator state (xoshiro words + the Box-Muller cache), for
  /// checkpointing a stream mid-walk. set_state() makes this generator
  /// continue exactly where the captured one would have — the trained-model
  /// artifact (.umgm) stores the post-training state so the scoring pass
  /// replays bit-identically after a reload.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const;
  void set_state(const State& state);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace umgad

#endif  // UMGAD_COMMON_RNG_H_
