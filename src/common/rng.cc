#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace umgad {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  UMGAD_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  UMGAD_CHECK_GE(n, 0);
  UMGAD_CHECK_GE(k, 0);
  UMGAD_CHECK_LE(k, n);
  // Partial Fisher-Yates: O(n) memory but exact and unbiased. All call
  // sites have n = |V| or |E| sized in the low millions at most.
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<int> Rng::Permutation(int n) {
  return SampleWithoutReplacement(n, n);
}

int Rng::SampleDiscrete(const std::vector<double>& weights) {
  UMGAD_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    UMGAD_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return static_cast<int>(UniformInt(weights.size()));
  double target = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::state() const {
  State out;
  for (int i = 0; i < 4; ++i) out.s[i] = state_[i];
  out.has_cached_normal = has_cached_normal_;
  out.cached_normal = cached_normal_;
  return out;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace umgad
