#ifndef UMGAD_COMMON_SPAN_H_
#define UMGAD_COMMON_SPAN_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace umgad {

/// Non-owning read-only view over a contiguous array. The accessor type of
/// SparseMatrix's CSR arrays: owned matrices view their internal vectors,
/// mmap-backed matrices view the mapped file directly, and callers cannot
/// tell the difference. Implicitly constructible from const std::vector<T>&
/// so existing `const auto& rp = m.row_ptr();` call sites keep working.
///
/// Like all views, a ConstSpan is valid only while its backing storage is —
/// for matrices that is managed by the SparseMatrix itself (vectors or a
/// keepalive on the mapping), so spans obtained from accessors share the
/// matrix's lifetime.
template <typename T>
class ConstSpan {
 public:
  ConstSpan() = default;
  ConstSpan(const T* data, size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate implicit view.
  ConstSpan(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T>
inline bool operator==(ConstSpan<T> a, ConstSpan<T> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T>
inline bool operator!=(ConstSpan<T> a, ConstSpan<T> b) {
  return !(a == b);
}

}  // namespace umgad

#endif  // UMGAD_COMMON_SPAN_H_
