#ifndef UMGAD_COMMON_TIMER_H_
#define UMGAD_COMMON_TIMER_H_

#include <chrono>

namespace umgad {

/// Monotonic wall-clock timer for the efficiency experiments (Fig. 6/7).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace umgad

#endif  // UMGAD_COMMON_TIMER_H_
