#ifndef UMGAD_COMMON_STRING_UTIL_H_
#define UMGAD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace umgad {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Join pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Strip ASCII whitespace from both ends.
std::string Trim(std::string_view text);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-precision float rendering used by the table printer ("0.770").
std::string FormatFloat(double value, int precision);

/// "mean±std" cell used across all paper-style tables.
std::string FormatMeanStd(double mean, double std, int precision = 3);

}  // namespace umgad

#endif  // UMGAD_COMMON_STRING_UTIL_H_
