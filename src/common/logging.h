#ifndef UMGAD_COMMON_LOGGING_H_
#define UMGAD_COMMON_LOGGING_H_

#include <ostream>
#include <sstream>
#include <string>

namespace umgad {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kInfo. Benchmarks raise it to kWarning to keep table output clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; flushes one formatted line to stderr on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// glog-style voidifier: makes the filtered branch of UMGAD_LOG have type
/// void regardless of what is streamed into the message.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace umgad

/// Usage: UMGAD_LOG(Info) << "trained " << epochs << " epochs";
#define UMGAD_LOG(level)                                                    \
  (static_cast<int>(::umgad::LogLevel::k##level) <                          \
   static_cast<int>(::umgad::GetLogLevel()))                                \
      ? (void)0                                                             \
      : ::umgad::internal::Voidify() &                                      \
            ::umgad::internal::LogMessage(::umgad::LogLevel::k##level,      \
                                          __FILE__, __LINE__)               \
                .stream()

#endif  // UMGAD_COMMON_LOGGING_H_
