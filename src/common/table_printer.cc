#include "common/table_printer.h"

#include <algorithm>

#include "common/check.h"

namespace umgad {

namespace {

/// Display width in terminal columns: the "±" glyph is two bytes of UTF-8
/// but renders one column wide, so byte length over-pads.
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  for (size_t i = 0; i < s.size();) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x80) {
      i += 1;
    } else if ((c >> 5) == 0x6) {
      i += 2;
    } else if ((c >> 4) == 0xE) {
      i += 3;
    } else {
      i += 4;
    }
    ++width;
  }
  return width;
}

}  // namespace

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  UMGAD_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  UMGAD_CHECK(!header_.empty());
  UMGAD_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() {
  separators_after_.push_back(static_cast<int>(rows_.size()) - 1);
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = DisplayWidth(header_[c]);
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }

  auto print_rule = [&]() {
    os << '+';
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      size_t pad = widths[c] - DisplayWidth(row[c]);
      os << ' ' << row[c] << std::string(pad, ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_rule();
  print_row(header_);
  print_rule();
  for (size_t r = 0; r < rows_.size(); ++r) {
    print_row(rows_[r]);
    if (std::find(separators_after_.begin(), separators_after_.end(),
                  static_cast<int>(r)) != separators_after_.end()) {
      print_rule();
    }
  }
  print_rule();
}

std::string TablePrinter::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += "\"\"";
      else out.push_back(ch);
    }
    out.push_back('"');
    return out;
  };
  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out.push_back(',');
    out += escape(header_[c]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      out += escape(row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace umgad
