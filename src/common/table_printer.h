#ifndef UMGAD_COMMON_TABLE_PRINTER_H_
#define UMGAD_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace umgad {

/// Assembles and prints an aligned ASCII table. The benchmark harness uses
/// this to emit the same rows the paper's tables report; rows are also
/// exportable as CSV for downstream plotting.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "");

  /// Header must be set before rows; column count is fixed by it.
  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Insert a horizontal separator after the last added row (used between
  /// method-category blocks, mirroring the paper's table layout).
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToCsv() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<int> separators_after_;  // row indices
};

}  // namespace umgad

#endif  // UMGAD_COMMON_TABLE_PRINTER_H_
