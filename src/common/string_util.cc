#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace umgad {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatFloat(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string FormatMeanStd(double mean, double std, int precision) {
  return StrFormat("%.*f\xC2\xB1%.*f", precision, mean, precision, std);
}

}  // namespace umgad
