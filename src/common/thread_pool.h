#ifndef UMGAD_COMMON_THREAD_POOL_H_
#define UMGAD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace umgad {

/// Fixed-size worker pool behind every `ParallelFor` in the library.
///
/// Design constraints (see docs/PERFORMANCE.md):
///  - **Determinism**: `ParallelFor` only partitions an index range; every
///    index is processed by exactly one thread with the same per-index
///    arithmetic regardless of the thread count or the partition. All
///    callers keep each output element owned by a single index, so results
///    are bit-identical for UMGAD_THREADS=1 and UMGAD_THREADS=N.
///  - **Nested calls run inline**: a `ParallelFor` issued from inside a
///    worker (e.g. a matmul inside a view-level fan-out) executes its whole
///    range on the calling thread. This avoids deadlock (workers never wait
///    on the queue they drain) and keeps the outermost, coarsest fan-out in
///    charge of the hardware.
///  - **Exceptions propagate**: the first exception thrown by a body is
///    captured and rethrown on the calling thread after all chunks finish;
///    the pool stays usable afterwards.
///
/// `num_threads` counts *lanes*, not spawned threads: the calling thread
/// participates in every `ParallelFor`, so a pool of size T spawns T-1
/// workers and a pool of size 1 spawns none (everything runs inline).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `body(chunk_begin, chunk_end)` over a disjoint partition of
  /// [begin, end). Blocks until every chunk has finished. `grain` is the
  /// minimum chunk size: ranges of at most `grain` items run inline, and no
  /// chunk is smaller than `grain` except the final remainder.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// True while the current thread is executing a ParallelFor chunk (worker
  /// or participating caller). Used to route nested parallelism inline.
  static bool InParallelRegion();

 private:
  struct Work;

  void WorkerLoop();
  static void RunChunks(Work* work);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Work>> queue_;
  bool stopping_ = false;
};

/// Process-wide pool shared by every kernel. Sized on first use from the
/// `UMGAD_THREADS` environment variable (unset/invalid/0 means "use
/// std::thread::hardware_concurrency()"); resizable at runtime via
/// SetNumThreads.
ThreadPool& GlobalThreadPool();

/// Lane count of the global pool (>= 1).
int NumThreads();

/// Rebuilds the global pool with `n` lanes (clamped to [1, 256]). Intended
/// for tests and benchmarks; do not call concurrently with running kernels.
void SetNumThreads(int n);

/// Parses an `UMGAD_THREADS`-style value: returns the thread count, or 0
/// when the value is unset/invalid/non-positive (meaning "auto"). Exposed
/// for tests.
int ParseThreadCount(const char* value);

/// Default grains shared by the tensor/autograd kernels: elementwise sweeps
/// dispatch in chunks of 32k entries, row-wise ops in chunks of 256 rows.
/// Memory-bound kernels gain nothing from finer grains, and ranges at or
/// below the grain never touch the pool.
inline constexpr int64_t kParallelElemGrain = int64_t{1} << 15;
inline constexpr int64_t kParallelRowGrain = 256;

/// ParallelFor over [0, n) on the global pool. The template avoids the
/// std::function allocation on the (hot) inline path: small ranges, a pool
/// of one lane, and nested calls dispatch `body(0, n)` directly.
template <typename Body>
inline void ParallelFor(int64_t n, int64_t grain, Body&& body) {
  if (n <= 0) return;
  if (n <= grain || ThreadPool::InParallelRegion()) {
    body(int64_t{0}, n);
    return;
  }
  ThreadPool& pool = GlobalThreadPool();
  if (pool.num_threads() == 1) {
    body(int64_t{0}, n);
    return;
  }
  pool.ParallelFor(0, n, grain, body);
}

}  // namespace umgad

#endif  // UMGAD_COMMON_THREAD_POOL_H_
