#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/check.h"

namespace umgad {

namespace {

thread_local bool tls_in_parallel_region = false;

/// RAII guard for the nested-parallelism flag.
struct RegionGuard {
  RegionGuard() : prev(tls_in_parallel_region) { tls_in_parallel_region = true; }
  ~RegionGuard() { tls_in_parallel_region = prev; }
  bool prev;
};

}  // namespace

/// Shared state of one ParallelFor call. Workers claim chunks from `next`
/// until the range is exhausted; the caller participates too, then waits for
/// `active` to reach zero.
struct ThreadPool::Work {
  std::function<void(int64_t, int64_t)> body;
  int64_t end = 0;
  int64_t chunk = 1;
  std::atomic<int64_t> next{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  int active = 0;  // workers currently inside RunChunks (caller excluded)
  std::exception_ptr error;  // first exception thrown by any chunk
};

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  UMGAD_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void ThreadPool::RunChunks(Work* work) {
  RegionGuard guard;
  for (;;) {
    const int64_t begin = work->next.fetch_add(work->chunk,
                                               std::memory_order_relaxed);
    if (begin >= work->end) return;
    const int64_t end = std::min(begin + work->chunk, work->end);
    try {
      work->body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(work->mutex);
      if (!work->error) work->error = std::current_exception();
      // Claim the rest of the range so other threads stop early.
      work->next.store(work->end, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Work> work;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      work = queue_.front();
      queue_.pop_front();
    }
    RunChunks(work.get());
    {
      std::lock_guard<std::mutex> lock(work->mutex);
      --work->active;
      if (work->active == 0) work->done_cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  const int64_t n = end - begin;

  // Inline when the range is small, the pool has one lane, or we are already
  // inside a chunk (nested call): see the class comment.
  if (n <= grain || num_threads_ == 1 || tls_in_parallel_region) {
    RegionGuard guard;
    body(begin, end);
    return;
  }

  auto work = std::make_shared<Work>();
  // Oversubscribe chunks 4x over lanes so dynamic claiming absorbs uneven
  // per-index cost (e.g. skewed SpMM rows) without a scheduler.
  const int64_t target_chunks =
      std::min<int64_t>(n, static_cast<int64_t>(num_threads_) * 4);
  work->chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  work->end = n;
  work->body = [&body, begin](int64_t s, int64_t e) {
    body(begin + s, begin + e);
  };

  const int64_t num_chunks = (n + work->chunk - 1) / work->chunk;
  const int helpers = static_cast<int>(
      std::min<int64_t>(num_chunks - 1,
                        static_cast<int64_t>(workers_.size())));
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      work->active = helpers;
      for (int i = 0; i < helpers; ++i) queue_.push_back(work);
    }
    queue_cv_.notify_all();
  }

  RunChunks(work.get());

  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(work->mutex);
    work->done_cv.wait(lock, [&work] { return work->active == 0; });
  }
  if (work->error) std::rethrow_exception(work->error);
}

int ParseThreadCount(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* parse_end = nullptr;
  const long parsed = std::strtol(value, &parse_end, 10);
  if (parse_end == value || *parse_end != '\0') return 0;
  if (parsed <= 0 || parsed > 256) return 0;
  return static_cast<int>(parsed);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mutex

int DefaultThreadCount() {
  const int from_env = ParseThreadCount(std::getenv("UMGAD_THREADS"));
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(DefaultThreadCount());
  return *g_pool;
}

int NumThreads() { return GlobalThreadPool().num_threads(); }

void SetNumThreads(int n) {
  n = std::max(1, std::min(n, 256));
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool && g_pool->num_threads() == n) return;
  g_pool.reset();  // join the old workers before spawning the new pool
  g_pool = std::make_unique<ThreadPool>(n);
}

}  // namespace umgad
