#ifndef UMGAD_COMMON_RESULT_H_
#define UMGAD_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace umgad {

/// Status-or-value, modelled on arrow::Result. A Result either holds a value
/// (status is OK) or a non-OK Status. Accessing the value of an errored
/// Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return MakeFoo();` and
  /// `return Status::InvalidArgument(...)` both work (Arrow idiom).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    UMGAD_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    UMGAD_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    UMGAD_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    UMGAD_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assign the value of a Result expression or propagate its error.
#define UMGAD_ASSIGN_OR_RETURN(lhs, expr)        \
  auto UMGAD_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!UMGAD_CONCAT_(_res_, __LINE__).ok())      \
    return UMGAD_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(UMGAD_CONCAT_(_res_, __LINE__)).value()

#define UMGAD_CONCAT_INNER_(a, b) a##b
#define UMGAD_CONCAT_(a, b) UMGAD_CONCAT_INNER_(a, b)

}  // namespace umgad

#endif  // UMGAD_COMMON_RESULT_H_
