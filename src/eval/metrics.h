#ifndef UMGAD_EVAL_METRICS_H_
#define UMGAD_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace umgad {

/// Area under the ROC curve of `scores` against binary `labels`, computed
/// exactly via the rank statistic (ties get half credit). Returns 0.5 when
/// one class is empty.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

/// Confusion counts of binary predictions against labels.
struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;
};
Confusion ConfusionCounts(const std::vector<int>& predictions,
                          const std::vector<int>& labels);

/// F1 of the positive class (0 when undefined).
double F1Positive(const Confusion& c);
/// F1 of the negative class.
double F1Negative(const Confusion& c);
/// Macro-F1: unweighted mean of the two per-class F1 scores — the paper's
/// second metric.
double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& labels);

double Precision(const Confusion& c);
double Recall(const Confusion& c);

/// Average precision (area under the PR curve, step-wise interpolation).
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels);

/// Mean and (population) standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd Aggregate(const std::vector<double>& values);

}  // namespace umgad

#endif  // UMGAD_EVAL_METRICS_H_
