#include "eval/experiment.h"

#include <cstdlib>

#include "common/logging.h"
#include "core/threshold.h"
#include "graph/io/graph_io.h"

namespace umgad {

RunResult EvaluateFitted(const Detector& detector,
                         const MultiplexGraph& graph, ThresholdMode mode) {
  UMGAD_CHECK(graph.has_labels());
  const std::vector<double>& scores = detector.scores();
  UMGAD_CHECK_EQ(scores.size(), static_cast<size_t>(graph.num_nodes()));

  RunResult out;
  out.auc = RocAuc(scores, graph.labels());
  out.average_precision = AveragePrecision(scores, graph.labels());

  double threshold = 0.0;
  switch (mode) {
    case ThresholdMode::kInflection:
      threshold = SelectThresholdInflection(scores).threshold;
      break;
    case ThresholdMode::kTopKLeakage:
      threshold = ThresholdTopK(scores, graph.num_anomalies());
      break;
  }
  std::vector<int> predictions = PredictWithThreshold(scores, threshold);
  out.macro_f1 = MacroF1(predictions, graph.labels());
  for (int p : predictions) out.predicted_anomalies += p;
  out.fit_seconds = detector.fit_seconds();
  out.epoch_seconds = detector.epoch_seconds();
  return out;
}

Result<AggregateResult> RunExperiment(const std::string& detector_name,
                                      const std::string& dataset,
                                      const std::vector<uint64_t>& seeds,
                                      ThresholdMode mode,
                                      double dataset_scale) {
  AggregateResult agg;
  agg.detector = detector_name;
  agg.dataset = dataset;
  std::vector<double> aucs;
  std::vector<double> f1s;
  std::vector<double> predicted;
  double fit_acc = 0.0;
  double epoch_acc = 0.0;
  for (uint64_t seed : seeds) {
    // Registered names build per seed; with UMGAD_DATASET_DIR set (or a
    // file path as `dataset`) every seed evaluates against the same
    // on-disk graph and only the detector seed varies.
    LoadDatasetOptions load;
    load.seed = seed;
    load.scale = dataset_scale;
    UMGAD_ASSIGN_OR_RETURN(MultiplexGraph graph, LoadDataset(dataset, load));
    if (!graph.has_labels()) {
      // On-disk datasets can legitimately be unlabeled (raw imports saved
      // without --inject); metrics need ground truth, so fail as a Status
      // instead of tripping EvaluateFitted's CHECK.
      return Status::InvalidArgument(
          "dataset '" + dataset +
          "' has no ground-truth labels; experiments need a labeled graph "
          "(import with injection, or evaluate scores directly)");
    }
    UMGAD_ASSIGN_OR_RETURN(std::unique_ptr<Detector> detector,
                           MakeDetector(detector_name, seed));
    UMGAD_RETURN_IF_ERROR(detector->Fit(graph));
    RunResult run = EvaluateFitted(*detector, graph, mode);
    aucs.push_back(run.auc);
    f1s.push_back(run.macro_f1);
    predicted.push_back(run.predicted_anomalies);
    fit_acc += run.fit_seconds;
    epoch_acc += run.epoch_seconds;
    UMGAD_LOG(Debug) << detector_name << " on " << dataset << " seed "
                     << seed << ": AUC=" << run.auc
                     << " F1=" << run.macro_f1;
  }
  agg.auc = Aggregate(aucs);
  agg.macro_f1 = Aggregate(f1s);
  agg.predicted = Aggregate(predicted);
  agg.mean_fit_seconds = fit_acc / static_cast<double>(seeds.size());
  agg.mean_epoch_seconds = epoch_acc / static_cast<double>(seeds.size());
  return agg;
}

std::vector<uint64_t> BenchSeeds(int default_count) {
  int count = default_count;
  if (const char* env = std::getenv("UMGAD_SEEDS")) {
    count = std::max(1, std::atoi(env));
  }
  std::vector<uint64_t> seeds;
  for (int i = 0; i < count; ++i) seeds.push_back(1000 + 7 * i);
  return seeds;
}

double BenchScale(double default_scale) {
  if (const char* env = std::getenv("UMGAD_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

}  // namespace umgad
