#ifndef UMGAD_EVAL_EXPERIMENT_H_
#define UMGAD_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "common/result.h"
#include "eval/metrics.h"
#include "graph/multiplex_graph.h"

namespace umgad {

/// How binary predictions are derived from anomaly scores.
enum class ThresholdMode {
  /// Paper Sec. IV-E: label-free inflection-point threshold (Table II/III).
  kInflection,
  /// Ground-truth leakage: threshold = top-k with k = true anomaly count
  /// (Table V protocol).
  kTopKLeakage,
};

/// One (detector, dataset, seed) evaluation.
struct RunResult {
  double auc = 0.0;
  double macro_f1 = 0.0;
  double average_precision = 0.0;
  int predicted_anomalies = 0;
  double fit_seconds = 0.0;
  double epoch_seconds = 0.0;
};

/// Aggregated over seeds.
struct AggregateResult {
  std::string detector;
  std::string dataset;
  MeanStd auc;
  MeanStd macro_f1;
  MeanStd predicted;
  double mean_fit_seconds = 0.0;
  double mean_epoch_seconds = 0.0;
};

/// Fit `detector_name` on a fresh instance of `dataset` per seed and
/// aggregate metrics. The same seed drives both the dataset generator and
/// the detector, so methods see identical data per seed.
///
/// `dataset` resolves through LoadDataset (graph/io/graph_io.h): a
/// registered name builds from the registry — or loads a pre-generated
/// file when UMGAD_DATASET_DIR is set — and a file path loads directly
/// (the graph is then fixed across seeds; only detector seeds vary).
Result<AggregateResult> RunExperiment(
    const std::string& detector_name, const std::string& dataset,
    const std::vector<uint64_t>& seeds, ThresholdMode mode,
    double dataset_scale = 1.0);

/// Evaluate an already-fitted detector against a labelled graph.
RunResult EvaluateFitted(const Detector& detector,
                         const MultiplexGraph& graph, ThresholdMode mode);

/// Seeds used by the benchmark harness; override count with the
/// UMGAD_SEEDS environment variable (the paper reports mean±std).
std::vector<uint64_t> BenchSeeds(int default_count = 2);

/// Scale factor for bench datasets; override with UMGAD_SCALE.
double BenchScale(double default_scale = 1.0);

}  // namespace umgad

#endif  // UMGAD_EVAL_EXPERIMENT_H_
