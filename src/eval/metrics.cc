#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace umgad {

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  UMGAD_CHECK_EQ(scores.size(), labels.size());
  const int n = static_cast<int>(scores.size());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });

  // Average ranks (1-based) with tie groups sharing their mean rank.
  std::vector<double> rank(n, 0.0);
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mean_rank = 0.5 * (i + j) + 1.0;
    for (int k = i; k <= j; ++k) rank[order[k]] = mean_rank;
    i = j + 1;
  }

  int64_t positives = 0;
  double rank_sum = 0.0;
  for (int k = 0; k < n; ++k) {
    if (labels[k] == 1) {
      ++positives;
      rank_sum += rank[k];
    }
  }
  const int64_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = rank_sum - 0.5 * positives * (positives + 1);
  return u / (static_cast<double>(positives) * negatives);
}

Confusion ConfusionCounts(const std::vector<int>& predictions,
                          const std::vector<int>& labels) {
  UMGAD_CHECK_EQ(predictions.size(), labels.size());
  Confusion c;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == 1) {
      (labels[i] == 1 ? c.tp : c.fp) += 1;
    } else {
      (labels[i] == 1 ? c.fn : c.tn) += 1;
    }
  }
  return c;
}

double Precision(const Confusion& c) {
  const int64_t denom = c.tp + c.fp;
  return denom > 0 ? static_cast<double>(c.tp) / denom : 0.0;
}

double Recall(const Confusion& c) {
  const int64_t denom = c.tp + c.fn;
  return denom > 0 ? static_cast<double>(c.tp) / denom : 0.0;
}

double F1Positive(const Confusion& c) {
  const double p = Precision(c);
  const double r = Recall(c);
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double F1Negative(const Confusion& c) {
  const int64_t pred_neg = c.tn + c.fn;
  const int64_t actual_neg = c.tn + c.fp;
  const double p = pred_neg > 0 ? static_cast<double>(c.tn) / pred_neg : 0.0;
  const double r =
      actual_neg > 0 ? static_cast<double>(c.tn) / actual_neg : 0.0;
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& labels) {
  const Confusion c = ConfusionCounts(predictions, labels);
  return 0.5 * (F1Positive(c) + F1Negative(c));
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels) {
  UMGAD_CHECK_EQ(scores.size(), labels.size());
  const int n = static_cast<int>(scores.size());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  int64_t positives = 0;
  for (int y : labels) positives += y;
  if (positives == 0) return 0.0;
  double ap = 0.0;
  int64_t tp = 0;
  for (int k = 0; k < n; ++k) {
    if (labels[order[k]] == 1) {
      ++tp;
      ap += static_cast<double>(tp) / (k + 1);
    }
  }
  return ap / positives;
}

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace umgad
