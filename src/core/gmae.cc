#include "core/gmae.h"

#include "tensor/init.h"

namespace umgad {

Gmae::Gmae(int in_dim, const UmgadConfig& config, Rng* rng)
    : kind_(config.encoder) {
  mask_token_ = RegisterParameter(
      RandomNormal(1, in_dim, 0.0, 0.02, rng));

  const int h = config.hidden_dim;
  const int depth = std::max(1, config.encoder_layers);
  if (kind_ == EncoderKind::kGat) {
    for (int l = 0; l < depth; ++l) {
      const int in = (l == 0) ? in_dim : h;
      // ELU between layers, linear final layer (embeddings feed dot
      // products, so an unbounded last layer helps edge logits).
      const nn::Activation act =
          (l + 1 < depth) ? nn::Activation::kElu : nn::Activation::kNone;
      gat_layers_.push_back(
          std::make_unique<nn::GatConv>(in, h, act, rng));
      RegisterChild(gat_layers_.back().get());
    }
  } else {
    for (int l = 0; l < depth; ++l) {
      const int in = (l == 0) ? in_dim : h;
      const nn::Activation act =
          (l + 1 < depth) ? nn::Activation::kRelu : nn::Activation::kNone;
      sgc_layers_.push_back(
          std::make_unique<nn::SgcConv>(in, h, /*hops=*/1, act, rng));
      RegisterChild(sgc_layers_.back().get());
    }
  }
  decoder_ = std::make_unique<nn::SgcConv>(
      h, in_dim, /*hops=*/std::max(1, config.decoder_layers),
      nn::Activation::kNone, rng);
  RegisterChild(decoder_.get());
}

ag::VarPtr Gmae::Encode(const std::shared_ptr<const SparseMatrix>& adj,
                        const ag::VarPtr& h0) const {
  ag::VarPtr h = h0;
  if (kind_ == EncoderKind::kGat) {
    for (const auto& layer : gat_layers_) h = layer->Forward(adj, h);
  } else {
    for (const auto& layer : sgc_layers_) h = layer->Forward(adj, h);
  }
  return h;
}

ag::VarPtr Gmae::ReconstructAttributes(
    std::shared_ptr<const SparseMatrix> adj, const Tensor& x,
    const std::vector<int>& masked) const {
  ag::VarPtr input = ag::Constant(x);
  if (!masked.empty()) {
    input = ag::MaskRows(input, masked, mask_token_);
  }
  ag::VarPtr h = Encode(adj, input);
  return decoder_->Forward(adj, h);
}

ag::VarPtr Gmae::Embed(std::shared_ptr<const SparseMatrix> adj,
                       const Tensor& x) const {
  return Encode(adj, ag::Constant(x));
}

}  // namespace umgad
