#include "core/model_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/string_util.h"
#include "core/scorer.h"
#include "graph/io/io_limits.h"

namespace umgad {

const char kModelExtension[] = "umgm";

namespace {

// "UMGM" little-endian, versioned like the graph container (docs/FORMATS.md).
//
// Config-evolution policy (v2, docs/FORMATS.md):
//  - The config block is length-prefixed. New *optional* config fields are
//    appended to the block and bump only the length — an older server
//    reads the fields it knows and skips the unknown tail (it serves the
//    artifact with the new knobs at their defaults, which is safe exactly
//    when the field is optional).
//  - A field whose misinterpretation would change results (new encoder
//    kind, changed field width, reordered layout, new weight framing)
//    must bump the format version instead. Loaders reject any version
//    above kVersion with a clear "newer than this build" Status rather
//    than misparsing (v1 servers predate the policy and reject v2
//    outright — that hard wall is why the prefix exists from v2 on).
//  - v1 files (fixed 116-byte config, no length prefix) load forever.
constexpr uint32_t kMagic = 0x4D474D55;         // 'U' 'M' 'G' 'M'
constexpr uint32_t kTrailerMagic = 0x444E454D;  // 'M' 'E' 'N' 'D'
constexpr uint32_t kVersion = 2;
// Bytes of the config fields this build knows (the v1 fixed block).
constexpr uint32_t kConfigCoreBytes = 116;
// Sanity cap on a declared config block: a future build appending enough
// optional fields to cross this is lying or corrupt.
constexpr uint32_t kMaxConfigBytes = 1 << 16;

// A model tensor axis never exceeds the feature cap (weights are
// in_dim x out_dim with in_dim <= kMaxFeatures), but hidden_dim is
// user-chosen, so allow headroom; the byte-level bound stays the Reader's
// remaining-file-size guard.
constexpr int64_t kMaxTensorDim = 1 << 24;
constexpr int64_t kMaxModelTensors = 1 << 20;

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char byte;
  std::memcpy(&byte, &probe, 1);
  return byte == 1;
}

class Writer {
 public:
  explicit Writer(const std::string& path) : out_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(out_); }

  template <typename T>
  void Pod(T value) {
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void Bytes(const void* data, size_t n) {
    if (n > 0) out_.write(reinterpret_cast<const char*>(data), n);
  }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      file_size_ = static_cast<int64_t>(in_.tellg());
      in_.seekg(0, std::ios::beg);
    }
  }

  bool open() const { return static_cast<bool>(in_.is_open()); }

  int64_t Remaining() {
    return file_size_ - static_cast<int64_t>(in_.tellg());
  }

  template <typename T>
  Status Pod(T* value, const char* what) {
    if (!in_.read(reinterpret_cast<char*>(value), sizeof(T))) {
      return Status::InvalidArgument(StrFormat("truncated %s", what));
    }
    return Status::OK();
  }

  Status Bytes(void* dst, int64_t n, const char* what) {
    if (n > Remaining()) {
      return Status::InvalidArgument(StrFormat(
          "truncated %s: need %lld bytes, %lld left", what,
          static_cast<long long>(n), static_cast<long long>(Remaining())));
    }
    if (n > 0 && !in_.read(reinterpret_cast<char*>(dst), n)) {
      return Status::InvalidArgument(StrFormat("truncated %s", what));
    }
    return Status::OK();
  }

  Status Skip(int64_t n, const char* what) {
    if (n > Remaining()) {
      return Status::InvalidArgument(StrFormat(
          "truncated %s: need %lld bytes, %lld left", what,
          static_cast<long long>(n), static_cast<long long>(Remaining())));
    }
    if (n > 0) in_.seekg(n, std::ios::cur);
    return Status::OK();
  }

  template <typename T>
  Status Array(std::vector<T>* v, int64_t count, const char* what) {
    // Divide instead of multiplying: count * sizeof(T) could wrap for a
    // hostile count and slip past the file-size bound into resize().
    if (count < 0 || count > Remaining() / static_cast<int64_t>(sizeof(T))) {
      return Status::InvalidArgument(StrFormat(
          "truncated or corrupt %s: %lld elements declared", what,
          static_cast<long long>(count)));
    }
    v->resize(count);
    return Bytes(v->empty() ? nullptr : v->data(),
                 count * static_cast<int64_t>(sizeof(T)), what);
  }

 private:
  std::ifstream in_;
  int64_t file_size_ = 0;
};

Status RequireLittleEndianHost() {
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "umgad model artifacts are little-endian; big-endian hosts are not "
        "supported");
  }
  return Status::OK();
}

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void WriteConfig(Writer* w, const UmgadConfig& c) {
  w->Pod<uint32_t>(c.encoder == EncoderKind::kGat ? 0u : 1u);
  w->Pod<int32_t>(c.hidden_dim);
  w->Pod<int32_t>(c.encoder_layers);
  w->Pod<int32_t>(c.decoder_layers);
  w->Pod<double>(c.mask_ratio);
  w->Pod<int32_t>(c.mask_repeats);
  w->Pod<int32_t>(c.subgraph_size);
  w->Pod<int32_t>(c.num_subgraphs);
  w->Pod<double>(c.rwr_restart);
  w->Pod<double>(c.attr_swap_ratio);
  w->Pod<float>(c.eta);
  w->Pod<float>(c.alpha);
  w->Pod<float>(c.beta);
  w->Pod<float>(c.lambda);
  w->Pod<float>(c.mu);
  w->Pod<float>(c.theta);
  w->Pod<float>(c.epsilon);
  w->Pod<int32_t>(c.epochs);
  w->Pod<float>(c.learning_rate);
  w->Pod<float>(c.weight_decay);
  w->Pod<int32_t>(c.num_negatives);
  w->Pod<int32_t>(c.num_score_negatives);
  w->Pod<uint64_t>(c.seed);
  const bool bools[8] = {c.use_masking,          c.use_original_view,
                         c.use_attr_augmented_view,
                         c.use_subgraph_augmented_view,
                         c.use_contrastive,      c.use_relation_fusion,
                         c.use_attribute_recon,  c.use_structure_recon};
  for (bool b : bools) w->Pod<uint8_t>(b ? 1 : 0);
}

Status ReadConfig(Reader* r, UmgadConfig* c) {
  uint32_t encoder = 0;
  UMGAD_RETURN_IF_ERROR(r->Pod(&encoder, "config.encoder"));
  if (encoder > 1) {
    return Status::InvalidArgument(
        StrFormat("unknown encoder kind %u in model file", encoder));
  }
  c->encoder = encoder == 0 ? EncoderKind::kGat : EncoderKind::kSgc;
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->hidden_dim, "config.hidden_dim"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->encoder_layers, "config.encoder_layers"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->decoder_layers, "config.decoder_layers"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->mask_ratio, "config.mask_ratio"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->mask_repeats, "config.mask_repeats"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->subgraph_size, "config.subgraph_size"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->num_subgraphs, "config.num_subgraphs"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->rwr_restart, "config.rwr_restart"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->attr_swap_ratio, "config.attr_swap_ratio"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->eta, "config.eta"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->alpha, "config.alpha"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->beta, "config.beta"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->lambda, "config.lambda"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->mu, "config.mu"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->theta, "config.theta"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->epsilon, "config.epsilon"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->epochs, "config.epochs"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->learning_rate, "config.learning_rate"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->weight_decay, "config.weight_decay"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->num_negatives, "config.num_negatives"));
  UMGAD_RETURN_IF_ERROR(
      r->Pod(&c->num_score_negatives, "config.num_score_negatives"));
  UMGAD_RETURN_IF_ERROR(r->Pod(&c->seed, "config.seed"));
  if (c->hidden_dim <= 0 || c->hidden_dim > kMaxTensorDim ||
      c->encoder_layers < 0 || c->decoder_layers < 0) {
    return Status::InvalidArgument("corrupt model config dimensions");
  }
  bool* bools[8] = {&c->use_masking,          &c->use_original_view,
                    &c->use_attr_augmented_view,
                    &c->use_subgraph_augmented_view,
                    &c->use_contrastive,      &c->use_relation_fusion,
                    &c->use_attribute_recon,  &c->use_structure_recon};
  for (bool* b : bools) {
    uint8_t raw = 0;
    UMGAD_RETURN_IF_ERROR(r->Pod(&raw, "config.flags"));
    *b = raw != 0;
  }
  return Status::OK();
}

}  // namespace

bool GraphFingerprint::Matches(const GraphFingerprint& other) const {
  return num_nodes == other.num_nodes && feature_dim == other.feature_dim &&
         num_relations == other.num_relations &&
         layer_nnz == other.layer_nnz && content_hash == other.content_hash;
}

GraphFingerprint FingerprintGraph(const MultiplexGraph& graph) {
  GraphFingerprint fp;
  fp.num_nodes = graph.num_nodes();
  fp.feature_dim = graph.feature_dim();
  fp.num_relations = graph.num_relations();
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const Tensor& x = graph.attributes();
  h = Fnv1a(h, x.data(), static_cast<size_t>(x.size()) * sizeof(float));
  for (int r = 0; r < graph.num_relations(); ++r) {
    const SparseMatrix& layer = graph.layer(r);
    fp.layer_nnz.push_back(layer.nnz());
    h = Fnv1a(h, layer.row_ptr().data(),
              layer.row_ptr().size() * sizeof(int64_t));
    h = Fnv1a(h, layer.col_idx().data(), layer.col_idx().size() * sizeof(int));
    h = Fnv1a(h, layer.values().data(), layer.values().size() * sizeof(float));
  }
  fp.content_hash = h;
  return fp;
}

Result<TrainedModel> TrainedModel::FromFitted(const UmgadModel& model,
                                              const MultiplexGraph& graph) {
  if (model.scores().empty()) {
    return Status::FailedPrecondition(
        "TrainedModel::FromFitted needs a fitted model (call Fit first)");
  }
  TrainedModel out;
  out.config_ = model.config();
  out.fingerprint_ = FingerprintGraph(graph);
  out.rng_state_ = model.scoring_rng_state();
  for (const ReconstructionView* view : model.ActiveViews()) {
    for (const ag::VarPtr& p : view->Parameters()) {
      out.weights_.push_back(p->value());
    }
  }
  return out;
}

Status TrainedModel::Save(const std::string& path) const {
  UMGAD_RETURN_IF_ERROR(RequireLittleEndianHost());
  Writer w(path);
  if (!w.ok()) {
    return Status::NotFound(StrFormat("cannot open %s for writing",
                                      path.c_str()));
  }
  w.Pod<uint32_t>(kMagic);
  w.Pod<uint32_t>(kVersion);
  w.Pod<uint32_t>(0);  // flags, reserved
  // v2: the config block is length-prefixed so future optional trailing
  // fields stay readable by this build (see the policy note at the top).
  w.Pod<uint32_t>(kConfigCoreBytes);
  WriteConfig(&w, config_);

  w.Pod<int32_t>(fingerprint_.num_nodes);
  w.Pod<int32_t>(fingerprint_.feature_dim);
  w.Pod<int32_t>(fingerprint_.num_relations);
  for (int64_t nnz : fingerprint_.layer_nnz) w.Pod<int64_t>(nnz);
  w.Pod<uint64_t>(fingerprint_.content_hash);

  for (uint64_t s : rng_state_.s) w.Pod<uint64_t>(s);
  w.Pod<uint8_t>(rng_state_.has_cached_normal ? 1 : 0);
  w.Pod<double>(rng_state_.cached_normal);

  w.Pod<int64_t>(static_cast<int64_t>(weights_.size()));
  for (const Tensor& t : weights_) {
    w.Pod<int32_t>(t.rows());
    w.Pod<int32_t>(t.cols());
    w.Bytes(t.data(), static_cast<size_t>(t.size()) * sizeof(float));
  }
  w.Pod<uint32_t>(kTrailerMagic);
  if (!w.ok()) {
    return Status::Internal(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::OK();
}

Result<TrainedModel> TrainedModel::Load(const std::string& path) {
  UMGAD_RETURN_IF_ERROR(RequireLittleEndianHost());
  Reader r(path);
  if (!r.open()) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t flags = 0;
  UMGAD_RETURN_IF_ERROR(r.Pod(&magic, "header"));
  if (magic != kMagic) {
    return Status::InvalidArgument(
        StrFormat("%s is not a umgad model file (bad magic)", path.c_str()));
  }
  UMGAD_RETURN_IF_ERROR(r.Pod(&version, "header"));
  if (version > kVersion) {
    return Status::InvalidArgument(StrFormat(
        "%s: model format version %u is newer than this build supports "
        "(max %u); upgrade the server or re-export the artifact with this "
        "build",
        path.c_str(), version, kVersion));
  }
  if (version < 1) {
    return Status::InvalidArgument(
        StrFormat("unsupported model format version %u", version));
  }
  UMGAD_RETURN_IF_ERROR(r.Pod(&flags, "header"));

  TrainedModel out;
  if (version >= 2) {
    // Length-prefixed config: read the fields this build knows, tolerate
    // (skip) optional trailing fields a newer minor revision appended.
    uint32_t config_bytes = 0;
    UMGAD_RETURN_IF_ERROR(r.Pod(&config_bytes, "config length"));
    if (config_bytes < kConfigCoreBytes) {
      return Status::InvalidArgument(StrFormat(
          "corrupt model: config block of %u bytes is smaller than the %u "
          "this format version requires",
          config_bytes, kConfigCoreBytes));
    }
    if (config_bytes > kMaxConfigBytes) {
      return Status::InvalidArgument(StrFormat(
          "corrupt model: absurd config block of %u bytes declared",
          config_bytes));
    }
    UMGAD_RETURN_IF_ERROR(ReadConfig(&r, &out.config_));
    UMGAD_RETURN_IF_ERROR(
        r.Skip(config_bytes - kConfigCoreBytes, "config trailing fields"));
  } else {
    // v1: fixed-size config block, no prefix.
    UMGAD_RETURN_IF_ERROR(ReadConfig(&r, &out.config_));
  }

  GraphFingerprint& fp = out.fingerprint_;
  UMGAD_RETURN_IF_ERROR(r.Pod(&fp.num_nodes, "fingerprint.num_nodes"));
  UMGAD_RETURN_IF_ERROR(r.Pod(&fp.feature_dim, "fingerprint.feature_dim"));
  UMGAD_RETURN_IF_ERROR(r.Pod(&fp.num_relations, "fingerprint.num_relations"));
  if (fp.num_nodes < 0 || fp.num_nodes > io_limits::kMaxNodes ||
      fp.feature_dim < 0 || fp.feature_dim > io_limits::kMaxFeatures ||
      fp.num_relations < 1 || fp.num_relations > io_limits::kMaxRelations) {
    return Status::InvalidArgument("corrupt model fingerprint dimensions");
  }
  for (int i = 0; i < fp.num_relations; ++i) {
    int64_t nnz = 0;
    UMGAD_RETURN_IF_ERROR(r.Pod(&nnz, "fingerprint.layer_nnz"));
    fp.layer_nnz.push_back(nnz);
  }
  UMGAD_RETURN_IF_ERROR(r.Pod(&fp.content_hash, "fingerprint.hash"));

  for (uint64_t& s : out.rng_state_.s) {
    UMGAD_RETURN_IF_ERROR(r.Pod(&s, "rng state"));
  }
  uint8_t has_cached = 0;
  UMGAD_RETURN_IF_ERROR(r.Pod(&has_cached, "rng state"));
  out.rng_state_.has_cached_normal = has_cached != 0;
  UMGAD_RETURN_IF_ERROR(r.Pod(&out.rng_state_.cached_normal, "rng state"));

  int64_t tensor_count = 0;
  UMGAD_RETURN_IF_ERROR(r.Pod(&tensor_count, "weight count"));
  if (tensor_count < 0 || tensor_count > kMaxModelTensors) {
    return Status::InvalidArgument(StrFormat(
        "corrupt model: %lld weight tensors declared",
        static_cast<long long>(tensor_count)));
  }
  for (int64_t t = 0; t < tensor_count; ++t) {
    int32_t rows = 0;
    int32_t cols = 0;
    UMGAD_RETURN_IF_ERROR(r.Pod(&rows, "weight shape"));
    UMGAD_RETURN_IF_ERROR(r.Pod(&cols, "weight shape"));
    if (rows < 0 || cols < 0 || rows > kMaxTensorDim || cols > kMaxTensorDim) {
      return Status::InvalidArgument(
          StrFormat("corrupt model: weight %lld declares shape %dx%d",
                    static_cast<long long>(t), rows, cols));
    }
    std::vector<float> data;
    UMGAD_RETURN_IF_ERROR(
        r.Array(&data, static_cast<int64_t>(rows) * cols, "weight data"));
    Tensor tensor(rows, cols);
    std::memcpy(tensor.data(), data.data(), data.size() * sizeof(float));
    out.weights_.push_back(std::move(tensor));
  }

  uint32_t trailer = 0;
  UMGAD_RETURN_IF_ERROR(r.Pod(&trailer, "trailer"));
  if (trailer != kTrailerMagic) {
    return Status::InvalidArgument(
        StrFormat("%s: trailer mismatch (truncated or corrupt file)",
                  path.c_str()));
  }
  return out;
}

Result<std::vector<std::unique_ptr<ReconstructionView>>>
TrainedModel::BuildViews() const {
  // The constructors draw fresh initial weights from this throwaway stream;
  // every parameter is then overwritten with the stored tensors, so only
  // the registration structure (a pure function of the config) matters.
  Rng init_rng(config_.seed);
  std::vector<std::unique_ptr<ReconstructionView>> views;
  const int f = fingerprint_.feature_dim;
  const int r_count = fingerprint_.num_relations;
  if (config_.use_original_view) {
    views.push_back(std::make_unique<ReconstructionView>(
        ReconstructionView::Kind::kOriginal, f, r_count, config_, &init_rng));
  }
  if (config_.use_attr_augmented_view && config_.use_attribute_recon) {
    views.push_back(std::make_unique<ReconstructionView>(
        ReconstructionView::Kind::kAttrAugmented, f, r_count, config_,
        &init_rng));
  }
  if (config_.use_subgraph_augmented_view) {
    views.push_back(std::make_unique<ReconstructionView>(
        ReconstructionView::Kind::kSubgraphAugmented, f, r_count, config_,
        &init_rng));
  }
  if (views.empty()) {
    return Status::InvalidArgument("model config enables no views");
  }

  size_t k = 0;
  for (const auto& view : views) {
    for (const ag::VarPtr& p : view->Parameters()) {
      if (k >= weights_.size()) {
        return Status::InvalidArgument(StrFormat(
            "model weight count mismatch: config wants more than the %zu "
            "stored tensors",
            weights_.size()));
      }
      if (!p->value().SameShape(weights_[k])) {
        return Status::InvalidArgument(StrFormat(
            "model weight %zu shape mismatch: stored %s, config wants %s",
            k, weights_[k].ShapeString().c_str(),
            p->value().ShapeString().c_str()));
      }
      p->mutable_value() = weights_[k];
      ++k;
    }
  }
  if (k != weights_.size()) {
    return Status::InvalidArgument(StrFormat(
        "model weight count mismatch: %zu stored tensors, config uses %zu",
        weights_.size(), k));
  }
  return views;
}

Result<std::vector<double>> TrainedModel::Score(const MultiplexGraph& graph,
                                                bool check_fingerprint) const {
  if (check_fingerprint && !fingerprint_.Matches(FingerprintGraph(graph))) {
    return Status::InvalidArgument(
        "graph does not match the model's training fingerprint "
        "(pass check_fingerprint=false to score anyway)");
  }
  if (graph.feature_dim() != fingerprint_.feature_dim ||
      graph.num_relations() != fingerprint_.num_relations) {
    return Status::InvalidArgument(
        "graph shape is incompatible with the stored model weights");
  }
  // The rebuilt views' parameters are persistent tape leaves; the scope
  // reclaims them once scoring is done, so repeated Load/Score cycles in a
  // long-running process are leak-free. The views (and every transient node
  // their forward passes build) must be gone before the scope closes, hence
  // the inner block: Reset() drops the transients, the block end drops the
  // views, the scope end rewinds the leaves.
  ag::ParamScope params;
  std::vector<double> scores;
  {
    Result<std::vector<std::unique_ptr<ReconstructionView>>> views =
        BuildViews();
    UMGAD_RETURN_IF_ERROR(views.status());

    std::vector<std::shared_ptr<const SparseMatrix>> norm_adjs;
    for (int r = 0; r < graph.num_relations(); ++r) {
      norm_adjs.push_back(std::make_shared<const SparseMatrix>(
          graph.layer(r).NormalizedWithSelfLoops()));
    }
    // Exactly the Fit scoring block: deterministic view passes, then the
    // residual negatives drawn from the checkpointed stream.
    std::vector<ViewScoring> scorings;
    for (const auto& view : *views) {
      scorings.push_back(view->Score(graph, norm_adjs));
    }
    Rng rng;
    rng.set_state(rng_state_);
    scores = ComputeAnomalyScores(graph, scorings, config_.epsilon,
                                  config_.num_score_negatives, &rng);
    ag::Tape::Global().Reset();
  }
  return scores;
}

}  // namespace umgad
