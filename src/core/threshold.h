#ifndef UMGAD_CORE_THRESHOLD_H_
#define UMGAD_CORE_THRESHOLD_H_

#include <vector>

namespace umgad {

/// Output of the unsupervised inflection-point threshold strategy
/// (Sec. IV-E, Eqs. 20-23).
struct ThresholdResult {
  /// Smoothed score at the inflection point; nodes with raw score >= this
  /// are predicted anomalous.
  double threshold = 0.0;
  /// Index T into the smoothed descending sequence.
  int inflection_index = 0;
  /// Number of nodes predicted anomalous at the threshold.
  int num_predicted = 0;
  /// Window w actually used after clamping.
  int window = 0;
  /// The smoothed descending sequence (for Fig. 2 curves).
  std::vector<double> smoothed;
};

/// The paper's label-free threshold: sort scores descending, moving-average
/// smooth with window w = max(floor(1e-4 * N), 5) (Eq. 20), take first and
/// second differences (Eqs. 21-22), and put the threshold at the inflection
/// point of maximal |Delta_2| (Eq. 23). Points whose |Delta_2| is within a
/// tolerance of the maximum are all "selectable" (the paper's
/// multi-candidate rule) and the one whose smoothed score is closest to the
/// tail plateau s(|V|) wins — this is what anchors the threshold at the
/// anomaly/normal boundary rather than at curvature among the extreme top
/// scores.
///
/// `window` <= 0 selects the paper's default.
ThresholdResult SelectThresholdInflection(const std::vector<double>& scores,
                                          int window = -1);

/// Ground-truth-leakage protocol of Table V: threshold passes exactly the
/// top `num_anomalies` scores.
double ThresholdTopK(const std::vector<double>& scores, int num_anomalies);

/// Oracle threshold maximising Macro-F1 against labels (upper bound used in
/// the thresholding discussion; never fed back into training).
double ThresholdBestF1(const std::vector<double>& scores,
                       const std::vector<int>& labels);

/// Binary predictions from a threshold: score >= threshold -> 1.
std::vector<int> PredictWithThreshold(const std::vector<double>& scores,
                                      double threshold);

/// Index t minimising the total squared error of fitting y[0..t) and
/// y[t..n) with two independent least-squares lines. Used by the inflection
/// strategy to localise the steep-to-stable transition; exposed for tests.
int TwoSegmentChangePoint(const std::vector<double>& y);

}  // namespace umgad

#endif  // UMGAD_CORE_THRESHOLD_H_
