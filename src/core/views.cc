#include "core/views.h"

#include <algorithm>
#include <unordered_set>

#include "common/thread_pool.h"
#include "core/masking.h"
#include "graph/graph_ops.h"
#include "nn/loss.h"

namespace umgad {

std::vector<int> AllNodes(int n) {
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

namespace {

/// Normalised operator for a perturbed adjacency, shared into the tape.
std::shared_ptr<const SparseMatrix> NormShared(const SparseMatrix& adj) {
  return std::make_shared<const SparseMatrix>(adj.NormalizedWithSelfLoops());
}

/// Uniform subsample of `edges` down to `cap` (order not preserved).
std::vector<Edge> CapEdges(std::vector<Edge> edges, int cap, Rng* rng) {
  if (static_cast<int>(edges.size()) <= cap) return edges;
  std::vector<int> keep =
      rng->SampleWithoutReplacement(static_cast<int>(edges.size()), cap);
  std::vector<Edge> out;
  out.reserve(cap);
  for (int k : keep) out.push_back(edges[k]);
  return out;
}

/// Sum of scalar loss nodes (already weighted); nullptr when empty.
ag::VarPtr SumLosses(const std::vector<ag::VarPtr>& losses) {
  if (losses.empty()) return nullptr;
  if (losses.size() == 1) return losses[0];
  return ag::AddN(losses);
}

/// One relation's pre-drawn structure-branch randomness. The per-relation
/// loops below are split into two phases so the fan-out stays deterministic:
/// phase 1 walks the shared Rng *sequentially* (mask/negative sampling),
/// phase 2 does the heavy, RNG-free work (re-normalising the perturbed
/// operator, GMAE encode, edge loss) in parallel across relations.
struct StructDraw {
  bool active = false;      // false -> contribute a constant-zero loss
  bool perturbed = false;   // true -> normalise `remaining`, else full op
  SparseMatrix remaining;   // adjacency minus masked edges (when perturbed)
  std::vector<ag::EdgeCandidateSet> cands;
};

/// Existing (unmasked) edges used as positive targets in the plain-GAE
/// ablation (w/o M): the model still reconstructs structure, but over the
/// observed graph rather than masked-out edges.
std::vector<Edge> SampleObservedEdges(const SparseMatrix& adj, double ratio,
                                      Rng* rng) {
  std::vector<Edge> all;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  for (int i = 0; i < adj.rows(); ++i) {
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      if (i < ci[k]) all.push_back(Edge{i, ci[k]});
    }
  }
  const int target = std::max<int>(1, static_cast<int>(ratio * all.size()));
  return CapEdges(std::move(all), target, rng);
}

}  // namespace

ReconstructionView::ReconstructionView(Kind kind, int in_dim,
                                       int num_relations,
                                       const UmgadConfig& config, Rng* rng)
    : kind_(kind), config_(config) {
  for (int r = 0; r < num_relations; ++r) {
    attr_gmae_.push_back(std::make_unique<Gmae>(in_dim, config, rng));
    RegisterChild(attr_gmae_.back().get());
  }
  if (kind_ == Kind::kOriginal && config.use_structure_recon) {
    // Separate structure-branch weights (the paper's W_enc2/W_dec2).
    for (int r = 0; r < num_relations; ++r) {
      struct_gmae_.push_back(std::make_unique<Gmae>(in_dim, config, rng));
      RegisterChild(struct_gmae_.back().get());
    }
  }
  fusion_a_ = std::make_unique<RelationFusion>(
      num_relations, config.use_relation_fusion, rng);
  RegisterChild(fusion_a_.get());
  fusion_b_ = std::make_unique<RelationFusion>(
      num_relations, config.use_relation_fusion, rng);
  RegisterChild(fusion_b_.get());
}

ViewForward ReconstructionView::Forward(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  switch (kind_) {
    case Kind::kOriginal:
      return ForwardOriginal(graph, norm_adjs, rng);
    case Kind::kAttrAugmented:
      return ForwardAttrAugmented(graph, norm_adjs, rng);
    case Kind::kSubgraphAugmented:
      return ForwardSubgraphAugmented(graph, norm_adjs, rng);
  }
  return {};
}

ViewForward ReconstructionView::ForwardOriginal(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  const Tensor& x = graph.attributes();
  const int n = graph.num_nodes();
  const int r_count = graph.num_relations();

  std::vector<ag::VarPtr> attr_losses;
  std::vector<ag::VarPtr> struct_losses;
  ag::VarPtr last_fused;

  for (int k = 0; k < config_.mask_repeats; ++k) {
    if (config_.use_attribute_recon) {
      // Eq. 1-4: token-mask nodes, reconstruct over the full edge set. The
      // mask is drawn once (sequentially); the R per-relation GMAE passes
      // are independent and fan out across the pool.
      std::vector<int> masked =
          config_.use_masking
              ? SampleMaskedNodes(n, config_.mask_ratio, rng)
              : std::vector<int>{};
      std::vector<ag::VarPtr> recons(r_count);
      ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
        for (int r = static_cast<int>(b); r < e; ++r) {
          recons[r] = attr_gmae_[r]->ReconstructAttributes(norm_adjs[r], x,
                                                           masked);
        }
      });
      ag::VarPtr fused = fusion_a_->FuseTensors(recons);
      const std::vector<int>& loss_idx =
          config_.use_masking ? masked : AllNodes(n);
      attr_losses.push_back(
          ag::ScaledCosineLoss(fused, x, loss_idx, config_.eta));
      last_fused = fused;
    }

    if (config_.use_structure_recon) {
      // Eq. 5-8: mask edges, re-normalise, predict the masked edges.
      // Phase 1 — all Rng draws, in relation order.
      std::vector<StructDraw> draws(r_count);
      for (int r = 0; r < r_count; ++r) {
        StructDraw& draw = draws[r];
        std::vector<Edge> targets;
        if (config_.use_masking) {
          EdgeMask mask =
              SampleEdgeMask(graph.layer(r), config_.mask_ratio, rng);
          targets = CapEdges(std::move(mask.masked), kMaxEdgeTargets, rng);
          draw.perturbed = true;
          draw.remaining = std::move(mask.remaining);
        } else {
          targets = SampleObservedEdges(graph.layer(r), config_.mask_ratio,
                                        rng);
        }
        if (targets.empty()) continue;
        draw.active = true;
        draw.cands = nn::BuildEdgeCandidates(targets, graph.layer(r),
                                             config_.num_negatives, rng);
      }
      // Phase 2 — re-normalisation, embedding, and edge loss per relation.
      std::vector<ag::VarPtr> per_relation(r_count);
      ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
        for (int r = static_cast<int>(b); r < e; ++r) {
          StructDraw& draw = draws[r];
          if (!draw.active) {
            per_relation[r] = ag::Constant(Tensor(1, 1));
            continue;
          }
          std::shared_ptr<const SparseMatrix> op =
              draw.perturbed ? NormShared(draw.remaining) : norm_adjs[r];
          ag::VarPtr z = struct_gmae_[r]->Embed(op, x);
          per_relation[r] =
              ag::MaskedEdgeSoftmaxCE(z, std::move(draw.cands));
        }
      });
      struct_losses.push_back(fusion_b_->FuseLosses(per_relation));
    }
  }

  ViewForward out;
  out.fused_recon = last_fused;
  ag::VarPtr la = SumLosses(attr_losses);
  ag::VarPtr ls = SumLosses(struct_losses);
  if (la && ls) {
    out.loss = nn::ConvexCombine(la, ls, config_.alpha);  // Eq. 9
  } else {
    out.loss = la ? la : ls;
  }
  return out;
}

ViewForward ReconstructionView::ForwardAttrAugmented(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  const Tensor& x = graph.attributes();
  const int r_count = graph.num_relations();

  std::vector<ag::VarPtr> losses;
  ag::VarPtr last_fused;
  for (int k = 0; k < config_.mask_repeats; ++k) {
    // Eq. 10: swap attributes; Eq. 11: mask exactly the swapped set.
    AttributeSwap swap =
        MakeAttributeSwap(x, config_.attr_swap_ratio, rng);
    const std::vector<int> masked =
        config_.use_masking ? swap.swapped_nodes : std::vector<int>{};
    std::vector<ag::VarPtr> recons(r_count);
    ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
      for (int r = static_cast<int>(b); r < e; ++r) {
        recons[r] = attr_gmae_[r]->ReconstructAttributes(
            norm_adjs[r], swap.augmented, masked);
      }
    });
    ag::VarPtr fused = fusion_a_->FuseTensors(recons);
    // Eq. 13: the target is the *original* attribute matrix.
    losses.push_back(
        ag::ScaledCosineLoss(fused, x, swap.swapped_nodes, config_.eta));
    last_fused = fused;
  }

  ViewForward out;
  out.loss = SumLosses(losses);
  out.fused_recon = last_fused;
  return out;
}

ViewForward ReconstructionView::ForwardSubgraphAugmented(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  (void)norm_adjs;
  const Tensor& x = graph.attributes();
  const int r_count = graph.num_relations();

  std::vector<ag::VarPtr> attr_losses;
  std::vector<ag::VarPtr> struct_losses;
  ag::VarPtr last_fused;

  for (int k = 0; k < config_.mask_repeats; ++k) {
    // Phase 1 — all Rng draws, in relation order: RWR subgraph masks, the
    // edge-target cap, and negative candidates.
    std::vector<SubgraphMask> masks(r_count);
    std::vector<StructDraw> draws(r_count);
    std::unordered_set<int> union_masked;
    for (int r = 0; r < r_count; ++r) {
      masks[r] = MakeSubgraphMask(
          graph.layer(r), config_.num_subgraphs, config_.subgraph_size,
          config_.rwr_restart, rng);
      union_masked.insert(masks[r].masked_nodes.begin(),
                          masks[r].masked_nodes.end());
      if (!config_.use_structure_recon) continue;
      std::vector<Edge> targets =
          CapEdges(std::move(masks[r].removed_edges), kMaxEdgeTargets, rng);
      // Self loops can appear among incident edges; drop them (a node
      // cannot be its own softmax candidate in Eq. 7).
      targets.erase(std::remove_if(targets.begin(), targets.end(),
                                   [](const Edge& e) {
                                     return e.src == e.dst;
                                   }),
                    targets.end());
      if (targets.empty()) continue;
      draws[r].active = true;
      draws[r].cands = nn::BuildEdgeCandidates(targets, graph.layer(r),
                                               config_.num_negatives, rng);
    }

    // Phase 2 — per relation: normalise the perturbed operator once, then
    // attribute reconstruction and/or the structure loss; independent
    // across relations, so fan out.
    std::vector<ag::VarPtr> recons(r_count);
    std::vector<ag::VarPtr> per_relation_struct(r_count);
    ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
      for (int r = static_cast<int>(b); r < e; ++r) {
        std::shared_ptr<const SparseMatrix> op =
            NormShared(masks[r].remaining);
        if (config_.use_attribute_recon) {
          recons[r] = attr_gmae_[r]->ReconstructAttributes(
              op, x,
              config_.use_masking ? masks[r].masked_nodes
                                  : std::vector<int>{});
        }
        if (config_.use_structure_recon) {
          if (!draws[r].active) {
            per_relation_struct[r] = ag::Constant(Tensor(1, 1));
          } else {
            ag::VarPtr z = attr_gmae_[r]->Embed(op, x);
            per_relation_struct[r] =
                ag::MaskedEdgeSoftmaxCE(z, std::move(draws[r].cands));
          }
        }
      }
    });

    if (config_.use_attribute_recon && r_count > 0) {
      ag::VarPtr fused = fusion_a_->FuseTensors(recons);
      std::vector<int> loss_idx(union_masked.begin(), union_masked.end());
      std::sort(loss_idx.begin(), loss_idx.end());
      if (!loss_idx.empty()) {
        attr_losses.push_back(
            ag::ScaledCosineLoss(fused, x, loss_idx, config_.eta));
      }
      last_fused = fused;
    }
    if (config_.use_structure_recon && r_count > 0) {
      struct_losses.push_back(fusion_b_->FuseLosses(per_relation_struct));
    }
  }

  ViewForward out;
  out.fused_recon = last_fused;
  ag::VarPtr lsa = SumLosses(attr_losses);
  ag::VarPtr lss = SumLosses(struct_losses);
  if (lsa && lss) {
    out.loss = nn::ConvexCombine(lsa, lss, config_.beta);  // Eq. 16
  } else {
    out.loss = lsa ? lsa : lss;
  }
  return out;
}

ViewScoring ReconstructionView::Score(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs) const {
  ViewScoring out;
  const Tensor& x = graph.attributes();
  const int r_count = graph.num_relations();

  // The scoring pass is deterministic (no masking, no Rng), so both
  // per-relation loops fan out directly.
  if (config_.use_attribute_recon) {
    std::vector<ag::VarPtr> recons(r_count);
    ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
      for (int r = static_cast<int>(b); r < e; ++r) {
        recons[r] = attr_gmae_[r]->ReconstructAttributes(norm_adjs[r], x, {});
      }
    });
    out.attr_recon = fusion_a_->FuseTensors(recons)->value();
  }
  if (config_.use_structure_recon) {
    out.embeddings.resize(r_count);
    ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
      for (int r = static_cast<int>(b); r < e; ++r) {
        const Gmae& encoder =
            struct_gmae_.empty() ? *attr_gmae_[r] : *struct_gmae_[r];
        out.embeddings[r] = encoder.Embed(norm_adjs[r], x)->value();
      }
    });
  }
  return out;
}

}  // namespace umgad
