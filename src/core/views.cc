#include "core/views.h"

#include <algorithm>
#include <unordered_set>

#include "common/thread_pool.h"
#include "core/masking.h"
#include "graph/graph_ops.h"
#include "nn/loss.h"

namespace umgad {

std::vector<int> AllNodes(int n) {
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

namespace {

/// Normalised operator for a perturbed adjacency, shared into the tape.
/// When the full operators carry a partition schedule, the perturbed
/// per-repeat operator reuses it — masking removes edges, never nodes, so
/// the row ownership still applies.
std::shared_ptr<const SparseMatrix> NormShared(
    const SparseMatrix& adj,
    std::shared_ptr<const RowBlocks> blocks = nullptr) {
  auto op =
      std::make_shared<const SparseMatrix>(adj.NormalizedWithSelfLoops());
  if (blocks != nullptr) op->AttachRowBlocks(std::move(blocks));
  return op;
}

/// Uniform subsample of `edges` down to `cap` (order not preserved).
std::vector<Edge> CapEdges(std::vector<Edge> edges, int cap, Rng* rng) {
  if (static_cast<int>(edges.size()) <= cap) return edges;
  std::vector<int> keep =
      rng->SampleWithoutReplacement(static_cast<int>(edges.size()), cap);
  std::vector<Edge> out;
  out.reserve(cap);
  for (int k : keep) out.push_back(edges[k]);
  return out;
}

/// Sum of scalar loss nodes (already weighted); nullptr when empty.
ag::VarPtr SumLosses(const std::vector<ag::VarPtr>& losses) {
  if (losses.empty()) return nullptr;
  if (losses.size() == 1) return losses[0];
  return ag::AddN(losses);
}

/// One relation's pre-drawn structure-branch randomness. Every Forward*
/// below is split into two phases so the fan-out stays deterministic:
/// phase 1 walks the shared Rng *sequentially* (mask/negative sampling for
/// all K repeats, in the serial loop's order), phase 2 does the heavy,
/// RNG-free work (re-normalising the perturbed operator, GMAE encode, edge
/// loss) in parallel across all K repeats x R relations.
struct StructDraw {
  bool active = false;      // false -> contribute a constant-zero loss
  bool perturbed = false;   // true -> normalise `remaining`, else full op
  SparseMatrix remaining;   // adjacency minus masked edges (when perturbed)
  std::vector<ag::EdgeCandidateSet> cands;
};

/// Existing (unmasked) edges used as positive targets in the plain-GAE
/// ablation (w/o M): the model still reconstructs structure, but over the
/// observed graph rather than masked-out edges.
std::vector<Edge> SampleObservedEdges(const SparseMatrix& adj, double ratio,
                                      Rng* rng) {
  std::vector<Edge> all;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  for (int i = 0; i < adj.rows(); ++i) {
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      if (i < ci[k]) all.push_back(Edge{i, ci[k]});
    }
  }
  const int target = std::max<int>(1, static_cast<int>(ratio * all.size()));
  return CapEdges(std::move(all), target, rng);
}

}  // namespace

ReconstructionView::ReconstructionView(Kind kind, int in_dim,
                                       int num_relations,
                                       const UmgadConfig& config, Rng* rng)
    : kind_(kind), config_(config) {
  for (int r = 0; r < num_relations; ++r) {
    attr_gmae_.push_back(std::make_unique<Gmae>(in_dim, config, rng));
    RegisterChild(attr_gmae_.back().get());
  }
  if (kind_ == Kind::kOriginal && config.use_structure_recon) {
    // Separate structure-branch weights (the paper's W_enc2/W_dec2).
    for (int r = 0; r < num_relations; ++r) {
      struct_gmae_.push_back(std::make_unique<Gmae>(in_dim, config, rng));
      RegisterChild(struct_gmae_.back().get());
    }
  }
  fusion_a_ = std::make_unique<RelationFusion>(
      num_relations, config.use_relation_fusion, rng);
  RegisterChild(fusion_a_.get());
  fusion_b_ = std::make_unique<RelationFusion>(
      num_relations, config.use_relation_fusion, rng);
  RegisterChild(fusion_b_.get());
}

ViewForward ReconstructionView::Forward(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  switch (kind_) {
    case Kind::kOriginal:
      return ForwardOriginal(graph, norm_adjs, rng);
    case Kind::kAttrAugmented:
      return ForwardAttrAugmented(graph, norm_adjs, rng);
    case Kind::kSubgraphAugmented:
      return ForwardSubgraphAugmented(graph, norm_adjs, rng);
  }
  return {};
}

ViewForward ReconstructionView::ForwardOriginal(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  const Tensor& x = graph.attributes();
  const int n = graph.num_nodes();
  const int r_count = graph.num_relations();
  const int repeats = config_.mask_repeats;

  // The K masking repeats are independent given their pre-drawn masks, so
  // the whole pass is two-phase: phase 1 walks the Rng *sequentially* in
  // the exact per-repeat order of the serial loop (attr mask first, then
  // the structure draws per relation), phase 2 fans the K x R RNG-free
  // branch constructions (Eq. 1-4 GMAE passes, Eq. 5-8 re-normalisation /
  // embedding / edge loss) out across the pool. Identical draws + an
  // identical graph make the result bit-identical to the serial loop.
  std::vector<std::vector<int>> attr_masks(repeats);
  std::vector<std::vector<StructDraw>> draws(repeats);
  for (int k = 0; k < repeats; ++k) {
    if (config_.use_attribute_recon && config_.use_masking) {
      attr_masks[k] = SampleMaskedNodes(n, config_.mask_ratio, rng);
    }
    if (config_.use_structure_recon) {
      draws[k].resize(r_count);
      for (int r = 0; r < r_count; ++r) {
        StructDraw& draw = draws[k][r];
        std::vector<Edge> targets;
        if (config_.use_masking) {
          EdgeMask mask =
              SampleEdgeMask(graph.layer(r), config_.mask_ratio, rng);
          targets = CapEdges(std::move(mask.masked), kMaxEdgeTargets, rng);
          draw.perturbed = true;
          draw.remaining = std::move(mask.remaining);
        } else {
          targets = SampleObservedEdges(graph.layer(r), config_.mask_ratio,
                                        rng);
        }
        if (targets.empty()) continue;
        draw.active = true;
        draw.cands = nn::BuildEdgeCandidates(targets, graph.layer(r),
                                             config_.num_negatives, rng);
      }
    }
  }

  // Partition schedule shared by all relations (null when unpartitioned).
  const std::shared_ptr<const RowBlocks> blocks =
      norm_adjs.empty() ? nullptr : norm_adjs[0]->row_blocks();
  std::vector<std::vector<ag::VarPtr>> recons(
      repeats, std::vector<ag::VarPtr>(r_count));
  std::vector<std::vector<ag::VarPtr>> per_relation(
      repeats, std::vector<ag::VarPtr>(r_count));
  ParallelFor(static_cast<int64_t>(repeats) * r_count, 1,
              [&](int64_t b, int64_t e) {
    for (int64_t t = b; t < e; ++t) {
      const int k = static_cast<int>(t / r_count);
      const int r = static_cast<int>(t % r_count);
      if (config_.use_attribute_recon) {
        recons[k][r] = attr_gmae_[r]->ReconstructAttributes(norm_adjs[r], x,
                                                            attr_masks[k]);
      }
      if (config_.use_structure_recon) {
        StructDraw& draw = draws[k][r];
        if (!draw.active) {
          per_relation[k][r] = ag::Constant(Tensor(1, 1));
        } else {
          std::shared_ptr<const SparseMatrix> op =
              draw.perturbed ? NormShared(draw.remaining, blocks)
                             : norm_adjs[r];
          ag::VarPtr z = struct_gmae_[r]->Embed(op, x);
          per_relation[k][r] =
              ag::MaskedEdgeSoftmaxCE(z, std::move(draw.cands), blocks);
        }
      }
    }
  });

  // Fusion and the per-repeat loss *nodes* are built sequentially in repeat
  // order so the loss-term order matches the serial loop. The loss forwards
  // themselves are row-parallel inside (ops.cc), so running this loop on
  // one thread costs only the node bookkeeping.
  std::vector<ag::VarPtr> attr_losses;
  std::vector<ag::VarPtr> struct_losses;
  ag::VarPtr last_fused;
  for (int k = 0; k < repeats; ++k) {
    if (config_.use_attribute_recon) {
      ag::VarPtr fused = fusion_a_->FuseTensors(recons[k]);
      const std::vector<int>& loss_idx =
          config_.use_masking ? attr_masks[k] : AllNodes(n);
      attr_losses.push_back(
          ag::ScaledCosineLoss(fused, x, loss_idx, config_.eta, blocks));
      last_fused = fused;
    }
    if (config_.use_structure_recon) {
      struct_losses.push_back(fusion_b_->FuseLosses(per_relation[k]));
    }
  }

  ViewForward out;
  out.fused_recon = last_fused;
  ag::VarPtr la = SumLosses(attr_losses);
  ag::VarPtr ls = SumLosses(struct_losses);
  if (la && ls) {
    out.loss = nn::ConvexCombine(la, ls, config_.alpha);  // Eq. 9
  } else {
    out.loss = la ? la : ls;
  }
  return out;
}

ViewForward ReconstructionView::ForwardAttrAugmented(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  const Tensor& x = graph.attributes();
  const int r_count = graph.num_relations();

  const int repeats = config_.mask_repeats;

  // Phase 1 — draw every repeat's swap (Eq. 10) sequentially.
  std::vector<AttributeSwap> swaps;
  swaps.reserve(repeats);
  for (int k = 0; k < repeats; ++k) {
    swaps.push_back(MakeAttributeSwap(x, config_.attr_swap_ratio, rng));
  }

  // Phase 2 — the K x R GMAE passes (Eq. 11) fan out across the pool.
  std::vector<std::vector<ag::VarPtr>> recons(
      repeats, std::vector<ag::VarPtr>(r_count));
  static const std::vector<int> kNoMask;
  ParallelFor(static_cast<int64_t>(repeats) * r_count, 1,
              [&](int64_t b, int64_t e) {
    for (int64_t t = b; t < e; ++t) {
      const int k = static_cast<int>(t / r_count);
      const int r = static_cast<int>(t % r_count);
      recons[k][r] = attr_gmae_[r]->ReconstructAttributes(
          norm_adjs[r], swaps[k].augmented,
          config_.use_masking ? swaps[k].swapped_nodes : kNoMask);
    }
  });

  std::vector<ag::VarPtr> losses;
  ag::VarPtr last_fused;
  const std::shared_ptr<const RowBlocks> blocks =
      norm_adjs.empty() ? nullptr : norm_adjs[0]->row_blocks();
  for (int k = 0; k < repeats; ++k) {
    ag::VarPtr fused = fusion_a_->FuseTensors(recons[k]);
    // Eq. 13: the target is the *original* attribute matrix.
    losses.push_back(ag::ScaledCosineLoss(fused, x, swaps[k].swapped_nodes,
                                          config_.eta, blocks));
    last_fused = fused;
  }

  ViewForward out;
  out.loss = SumLosses(losses);
  out.fused_recon = last_fused;
  return out;
}

ViewForward ReconstructionView::ForwardSubgraphAugmented(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
    Rng* rng) const {
  const Tensor& x = graph.attributes();
  const int r_count = graph.num_relations();
  // Partition schedule shared by all relations (null when unpartitioned);
  // this view builds only perturbed operators, so the schedule is the sole
  // thing it takes from the full ones.
  const std::shared_ptr<const RowBlocks> blocks =
      norm_adjs.empty() ? nullptr : norm_adjs[0]->row_blocks();

  const int repeats = config_.mask_repeats;

  // Phase 1 — all Rng draws for all K repeats, in the serial order (per
  // repeat, per relation: RWR subgraph mask, edge-target cap, negative
  // candidates).
  std::vector<std::vector<SubgraphMask>> masks(repeats);
  std::vector<std::vector<StructDraw>> draws(repeats);
  std::vector<std::vector<int>> union_masked(repeats);
  for (int k = 0; k < repeats; ++k) {
    masks[k].resize(r_count);
    draws[k].resize(r_count);
    std::unordered_set<int> masked_set;
    for (int r = 0; r < r_count; ++r) {
      masks[k][r] = MakeSubgraphMask(
          graph.layer(r), config_.num_subgraphs, config_.subgraph_size,
          config_.rwr_restart, rng);
      masked_set.insert(masks[k][r].masked_nodes.begin(),
                        masks[k][r].masked_nodes.end());
      if (!config_.use_structure_recon) continue;
      std::vector<Edge> targets = CapEdges(
          std::move(masks[k][r].removed_edges), kMaxEdgeTargets, rng);
      // Self loops can appear among incident edges; drop them (a node
      // cannot be its own softmax candidate in Eq. 7).
      targets.erase(std::remove_if(targets.begin(), targets.end(),
                                   [](const Edge& e) {
                                     return e.src == e.dst;
                                   }),
                    targets.end());
      if (targets.empty()) continue;
      draws[k][r].active = true;
      draws[k][r].cands = nn::BuildEdgeCandidates(
          targets, graph.layer(r), config_.num_negatives, rng);
    }
    union_masked[k].assign(masked_set.begin(), masked_set.end());
    std::sort(union_masked[k].begin(), union_masked[k].end());
  }

  // Phase 2 — fan the K x R branches out: normalise the perturbed operator
  // once per (repeat, relation), then attribute reconstruction and/or the
  // structure loss.
  std::vector<std::vector<ag::VarPtr>> recons(
      repeats, std::vector<ag::VarPtr>(r_count));
  std::vector<std::vector<ag::VarPtr>> per_relation_struct(
      repeats, std::vector<ag::VarPtr>(r_count));
  static const std::vector<int> kNoMask;
  ParallelFor(static_cast<int64_t>(repeats) * r_count, 1,
              [&](int64_t b, int64_t e) {
    for (int64_t t = b; t < e; ++t) {
      const int k = static_cast<int>(t / r_count);
      const int r = static_cast<int>(t % r_count);
      std::shared_ptr<const SparseMatrix> op =
          NormShared(masks[k][r].remaining, blocks);
      if (config_.use_attribute_recon) {
        recons[k][r] = attr_gmae_[r]->ReconstructAttributes(
            op, x,
            config_.use_masking ? masks[k][r].masked_nodes : kNoMask);
      }
      if (config_.use_structure_recon) {
        if (!draws[k][r].active) {
          per_relation_struct[k][r] = ag::Constant(Tensor(1, 1));
        } else {
          ag::VarPtr z = attr_gmae_[r]->Embed(op, x);
          per_relation_struct[k][r] =
              ag::MaskedEdgeSoftmaxCE(z, std::move(draws[k][r].cands),
                                      blocks);
        }
      }
    }
  });

  std::vector<ag::VarPtr> attr_losses;
  std::vector<ag::VarPtr> struct_losses;
  ag::VarPtr last_fused;
  for (int k = 0; k < repeats; ++k) {
    if (config_.use_attribute_recon && r_count > 0) {
      ag::VarPtr fused = fusion_a_->FuseTensors(recons[k]);
      if (!union_masked[k].empty()) {
        attr_losses.push_back(ag::ScaledCosineLoss(
            fused, x, union_masked[k], config_.eta, blocks));
      }
      last_fused = fused;
    }
    if (config_.use_structure_recon && r_count > 0) {
      struct_losses.push_back(fusion_b_->FuseLosses(per_relation_struct[k]));
    }
  }

  ViewForward out;
  out.fused_recon = last_fused;
  ag::VarPtr lsa = SumLosses(attr_losses);
  ag::VarPtr lss = SumLosses(struct_losses);
  if (lsa && lss) {
    out.loss = nn::ConvexCombine(lsa, lss, config_.beta);  // Eq. 16
  } else {
    out.loss = lsa ? lsa : lss;
  }
  return out;
}

ViewScoring ReconstructionView::Score(
    const MultiplexGraph& graph,
    const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs) const {
  ViewScoring out;
  const Tensor& x = graph.attributes();
  const int r_count = graph.num_relations();

  // The scoring pass is deterministic (no masking, no Rng), so both
  // per-relation loops fan out directly.
  if (config_.use_attribute_recon) {
    std::vector<ag::VarPtr> recons(r_count);
    ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
      for (int r = static_cast<int>(b); r < e; ++r) {
        recons[r] = attr_gmae_[r]->ReconstructAttributes(norm_adjs[r], x, {});
      }
    });
    out.attr_recon = fusion_a_->FuseTensors(recons)->value();
  }
  if (config_.use_structure_recon) {
    out.embeddings.resize(r_count);
    ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
      for (int r = static_cast<int>(b); r < e; ++r) {
        const Gmae& encoder =
            struct_gmae_.empty() ? *attr_gmae_[r] : *struct_gmae_[r];
        out.embeddings[r] = encoder.Embed(norm_adjs[r], x)->value();
      }
    });
  }
  return out;
}

}  // namespace umgad
