#ifndef UMGAD_CORE_RELATION_FUSION_H_
#define UMGAD_CORE_RELATION_FUSION_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace umgad {

/// Learnable per-relation fusion weights (the a_r of Eq. 3 and b_r of
/// Eq. 8). Logits are initialised from a normal distribution ("initially
/// randomized using a normal distribution") and pushed through a softmax so
/// fused weights stay positive and sum to one; with `learnable == false`
/// (the uniform-fusion ablation) the weights are frozen at 1/R.
class RelationFusion : public nn::Module {
 public:
  RelationFusion(int num_relations, bool learnable, Rng* rng);

  /// Fuse R same-shape matrices (Eq. 3 / Eq. 12).
  ag::VarPtr FuseTensors(const std::vector<ag::VarPtr>& xs) const;

  /// Fuse R scalar losses (Eq. 8). Identical math — scalars are 1x1.
  ag::VarPtr FuseLosses(const std::vector<ag::VarPtr>& losses) const;

  /// Current softmaxed weights (diagnostics; Table IV discussion).
  std::vector<double> Weights() const;

  /// Raw fusion logits (1 x R). The serve engine re-applies
  /// ag::SimplexWeightedSum's float softmax recipe to these so a fused row
  /// recomputed per-node matches the batch kernel bit-for-bit (Weights()
  /// above is the double-precision diagnostic, not that recipe).
  const Tensor& logits_value() const { return logits_->value(); }

 private:
  int num_relations_;
  bool learnable_;
  ag::VarPtr logits_;  // 1 x R
};

}  // namespace umgad

#endif  // UMGAD_CORE_RELATION_FUSION_H_
