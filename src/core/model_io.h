#ifndef UMGAD_CORE_MODEL_IO_H_
#define UMGAD_CORE_MODEL_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/umgad.h"
#include "graph/multiplex_graph.h"

namespace umgad {

/// Identity of the graph a model was fitted on: shape plus an FNV-1a hash
/// of the attribute matrix and every relation's CSR arrays. Stored in the
/// .umgm artifact so a serving process can refuse to score a graph the
/// weights were not trained for (TrainedModel::Score checks it by default).
struct GraphFingerprint {
  int32_t num_nodes = 0;
  int32_t feature_dim = 0;
  int32_t num_relations = 0;
  std::vector<int64_t> layer_nnz;
  uint64_t content_hash = 0;

  bool Matches(const GraphFingerprint& other) const;
};

GraphFingerprint FingerprintGraph(const MultiplexGraph& graph);

/// A fitted UMGAD model detached from its training process: the full
/// hyperparameter surface, every trainable tensor (flattened in
/// nn::Module::Parameters() registration order across the active views),
/// the dataset fingerprint, and the Rng state captured at the start of the
/// scoring pass. Round trips through the version-framed .umgm binary
/// container (spec: docs/FORMATS.md) and replays the batch scoring pass
/// bit-identically: Score() on the training graph returns exactly the
/// scores the fitted UmgadModel produced.
class TrainedModel {
 public:
  TrainedModel() = default;

  /// Snapshot a fitted model (`graph` must be the graph it was fitted on —
  /// it supplies the fingerprint).
  static Result<TrainedModel> FromFitted(const UmgadModel& model,
                                         const MultiplexGraph& graph);

  Status Save(const std::string& path) const;
  static Result<TrainedModel> Load(const std::string& path);

  /// Replay the post-training scoring pass (Eq. 19) with the stored
  /// weights and Rng state. With `check_fingerprint` (the default) the
  /// graph must match the training fingerprint exactly; the serve layer
  /// disables the check to re-score a stream-mutated graph. Resets the
  /// transient autograd tape, like UmgadModel::Fit.
  Result<std::vector<double>> Score(const MultiplexGraph& graph,
                                    bool check_fingerprint = true) const;

  /// Reconstruct live views (original / attr-augmented / subgraph-
  /// augmented, in scoring order) carrying the stored weights. The views'
  /// parameter leaves are persistent tape nodes (freed at process exit).
  Result<std::vector<std::unique_ptr<ReconstructionView>>> BuildViews() const;

  const UmgadConfig& config() const { return config_; }
  const GraphFingerprint& fingerprint() const { return fingerprint_; }
  const Rng::State& scoring_rng_state() const { return rng_state_; }
  const std::vector<Tensor>& weights() const { return weights_; }

 private:
  UmgadConfig config_;
  GraphFingerprint fingerprint_;
  Rng::State rng_state_;
  std::vector<Tensor> weights_;
};

/// Canonical artifact extension ("umgm", next to "umgb" graphs).
extern const char kModelExtension[];

}  // namespace umgad

#endif  // UMGAD_CORE_MODEL_IO_H_
