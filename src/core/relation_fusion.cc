#include "core/relation_fusion.h"

#include <cmath>

#include "tensor/init.h"

namespace umgad {

RelationFusion::RelationFusion(int num_relations, bool learnable, Rng* rng)
    : num_relations_(num_relations), learnable_(learnable) {
  UMGAD_CHECK_GT(num_relations, 0);
  if (learnable_) {
    logits_ = RegisterParameter(
        RandomNormal(1, num_relations, 0.0, 0.1, rng));
  } else {
    // Held across training steps, so it must survive Tape::Reset().
    logits_ = ag::PersistentConstant(Tensor(1, num_relations));  // 1/R each
  }
}

ag::VarPtr RelationFusion::FuseTensors(const std::vector<ag::VarPtr>& xs) const {
  UMGAD_CHECK_EQ(static_cast<int>(xs.size()), num_relations_);
  return ag::SimplexWeightedSum(xs, logits_);
}

ag::VarPtr RelationFusion::FuseLosses(
    const std::vector<ag::VarPtr>& losses) const {
  return FuseTensors(losses);
}

std::vector<double> RelationFusion::Weights() const {
  const Tensor& l = logits_->value();
  std::vector<double> w(num_relations_);
  double mx = l.at(0, 0);
  for (int r = 1; r < num_relations_; ++r) {
    mx = std::max(mx, static_cast<double>(l.at(0, r)));
  }
  double denom = 0.0;
  for (int r = 0; r < num_relations_; ++r) {
    w[r] = std::exp(l.at(0, r) - mx);
    denom += w[r];
  }
  for (double& v : w) v /= denom;
  return w;
}

}  // namespace umgad
