#ifndef UMGAD_CORE_DETECTOR_H_
#define UMGAD_CORE_DETECTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/multiplex_graph.h"

namespace umgad {

/// Common interface for every anomaly detector in the repository — UMGAD
/// itself and all baselines. A detector is fitted once on an (unlabelled)
/// multiplex graph and then exposes one anomaly score per node; thresholding
/// is a separate concern (core/threshold.h).
class Detector {
 public:
  virtual ~Detector() = default;

  /// Train/fit on the graph. Labels on the graph are ignored by Fit — they
  /// exist only for evaluation.
  virtual Status Fit(const MultiplexGraph& graph) = 0;

  /// Per-node anomaly scores (higher = more anomalous). Valid after Fit.
  virtual const std::vector<double>& scores() const = 0;

  virtual std::string name() const = 0;

  /// Wall-clock seconds spent in Fit (Fig. 7).
  virtual double fit_seconds() const = 0;
  /// Mean wall-clock seconds per training epoch (0 for closed-form
  /// methods).
  virtual double epoch_seconds() const = 0;
};

}  // namespace umgad

#endif  // UMGAD_CORE_DETECTOR_H_
