#ifndef UMGAD_CORE_SCORER_H_
#define UMGAD_CORE_SCORER_H_

#include <vector>

#include "common/rng.h"
#include "core/views.h"
#include "graph/multiplex_graph.h"

namespace umgad {

/// Per-node structure residual of one relation (the ||zeta~ - zeta|| term of
/// Eq. 19): how badly the inner-product decoder sigmoid(z_i . z_j)
/// reconstructs row i of the adjacency.
///
/// Both forms are degree-normalised:
///   residual(i) = mean_{j in N(i)} (1 - sig(z_i.z_j))
///                 + mean_{u not in N(i)} sig(z_i.z_u),
/// i.e. "how badly are my edges predicted" plus "how much probability do I
/// leak onto non-edges". The paper's raw row norm ||A~(i) - A(i)|| grows
/// linearly with degree, which on dense weakly-informative layers (Amazon
/// U-S-U) ranks hubs above true anomalies; normalisation keeps the ranking
/// on predictability. The exact version averages over all non-neighbours
/// (Theta(N) per node, tests/tiny graphs); the sampled version estimates
/// the leak term from `num_negatives` samples.
/// With `degree_normalized == false` the raw row-norm estimate
///   sum_{j in N(i)} (1 - sig) + (N-1-deg_i)/S * sum_samples sig
/// is returned instead — the form the GAE-family papers (DOMINANT,
/// AnomalyDAE, AnomMAN, ...) actually compute, which is hub-biased on
/// dense weakly-informative layers. The baselines use it; UMGAD uses the
/// normalised refinement.
std::vector<double> StructureResidual(const SparseMatrix& adj,
                                      const Tensor& z, int num_negatives,
                                      Rng* rng,
                                      bool degree_normalized = true);

/// Exact O(N^2 d) version, for tests and tiny graphs.
std::vector<double> StructureResidualExact(const SparseMatrix& adj,
                                           const Tensor& z);

/// Anomaly scores (Eq. 19): for each view with outputs available,
///   S_v(i) = eps * ||x~_v(i) - x(i)||_2
///            + (1-eps) * mean_r residual_r(i)   (standardised parts),
/// and S(i) is the arithmetic mean over views. Views missing a branch
/// contribute only the branch they have.
///
/// Both components are z-score standardised over nodes before combination
/// so eps weighs comparable magnitudes — attribute distances and edge
/// predictability residuals live on different scales, and min-max scaling
/// would let a single extreme outlier crush one component's effective
/// weight.
std::vector<double> ComputeAnomalyScores(
    const MultiplexGraph& graph, const std::vector<ViewScoring>& views,
    float epsilon, int num_negatives, Rng* rng);

/// Min-max normalise to [0, 1]; constant vectors map to all-zeros.
std::vector<double> MinMaxNormalize(const std::vector<double>& v);

/// Z-score standardise; constant vectors map to all-zeros.
std::vector<double> Standardize(const std::vector<double>& v);

}  // namespace umgad

#endif  // UMGAD_CORE_SCORER_H_
