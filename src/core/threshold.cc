#include "core/threshold.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/check.h"

namespace umgad {

namespace {

/// Exact descending sort of anomaly scores, ~5x faster than std::sort at
/// the 100k-score scale (see docs/PERFORMANCE.md §7).
///
/// SelectThresholdInflection consumes the *whole* sorted curve — the
/// sliding-window smoothing, the curvature scan and the two-segment change
/// point all run over its full length — so a top-w partial sort cannot
/// preserve the output. What can: an LSD radix sort on the order-preserving
/// key map for IEEE-754 doubles (flip all bits of negatives, flip the sign
/// bit of non-negatives), which produces exactly the value sequence
/// std::sort(greater<>) produces. Inputs with NaNs (never produced by the
/// scorers, and comparator UB for std::sort anyway) and small inputs fall
/// back to std::sort.
void SortScoresDescending(std::vector<double>* scores) {
  const size_t n = scores->size();
  constexpr size_t kRadixCutover = 2048;
  bool has_nan = false;
  for (double s : *scores) has_nan = has_nan || std::isnan(s);
  if (n < kRadixCutover || has_nan) {
    std::sort(scores->begin(), scores->end(), std::greater<double>());
    return;
  }

  std::vector<uint64_t> keys(n);
  std::vector<uint64_t> scratch(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &(*scores)[i], sizeof(bits));
    // Descending order == ascending order of the complemented key.
    bits = (bits & (uint64_t{1} << 63)) ? bits ^ ~uint64_t{0}
                                        : bits ^ (uint64_t{1} << 63);
    keys[i] = ~bits;
  }
  for (int shift = 0; shift < 64; shift += 8) {
    size_t count[257] = {0};
    for (size_t i = 0; i < n; ++i) {
      ++count[((keys[i] >> shift) & 0xff) + 1];
    }
    for (int b = 0; b < 256; ++b) count[b + 1] += count[b];
    for (size_t i = 0; i < n; ++i) {
      scratch[count[(keys[i] >> shift) & 0xff]++] = keys[i];
    }
    keys.swap(scratch);
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits = ~keys[i];
    // Inverse map: MSB set means the original was non-negative (its sign
    // bit was flipped on); MSB clear means it was negative (all bits were
    // flipped).
    bits = (bits & (uint64_t{1} << 63)) ? bits ^ (uint64_t{1} << 63)
                                        : ~bits;
    std::memcpy(&(*scores)[i], &bits, sizeof(bits));
  }
}

}  // namespace

int TwoSegmentChangePoint(const std::vector<double>& y) {
  const int n = static_cast<int>(y.size());
  if (n < 5) return n / 2;
  // Prefix sums let each split's two least-squares line fits be O(1).
  std::vector<double> sx(n + 1, 0.0);
  std::vector<double> sy(n + 1, 0.0);
  std::vector<double> sxx(n + 1, 0.0);
  std::vector<double> sxy(n + 1, 0.0);
  std::vector<double> syy(n + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i);
    sx[i + 1] = sx[i] + xi;
    sy[i + 1] = sy[i] + y[i];
    sxx[i + 1] = sxx[i] + xi * xi;
    sxy[i + 1] = sxy[i] + xi * y[i];
    syy[i + 1] = syy[i] + y[i] * y[i];
  }
  auto segment_sse = [&](int a, int b) {  // [a, b)
    const double m = b - a;
    if (m < 2.0) return 0.0;
    const double dx = sx[b] - sx[a];
    const double dy = sy[b] - sy[a];
    const double dxx = (sxx[b] - sxx[a]) - dx * dx / m;
    const double dxy = (sxy[b] - sxy[a]) - dx * dy / m;
    const double dyy = (syy[b] - syy[a]) - dy * dy / m;
    if (dxx <= 0.0) return std::max(0.0, dyy);
    return std::max(0.0, dyy - dxy * dxy / dxx);
  };
  int best_t = 2;
  double best_sse = 1e300;
  for (int t = 2; t <= n - 2; ++t) {
    const double sse = segment_sse(0, t) + segment_sse(t, n);
    if (sse < best_sse) {
      best_sse = sse;
      best_t = t;
    }
  }
  return best_t;
}

ThresholdResult SelectThresholdInflection(const std::vector<double>& scores,
                                          int window) {
  ThresholdResult out;
  const int n = static_cast<int>(scores.size());
  UMGAD_CHECK_GT(n, 0);

  std::vector<double> sorted = scores;
  SortScoresDescending(&sorted);

  // Eq. 20: w = max(floor(1e-4 * |V|), 5), clamped to the sequence length.
  int w = window > 0 ? window
                     : std::max(static_cast<int>(1e-4 * n), 5);
  w = std::min(w, n);
  out.window = w;

  const int smoothed_len = n - w + 1;
  out.smoothed.resize(smoothed_len);
  double acc = 0.0;
  for (int i = 0; i < w; ++i) acc += sorted[i];
  out.smoothed[0] = acc / w;
  for (int i = 1; i < smoothed_len; ++i) {
    acc += sorted[i + w - 1] - sorted[i - 1];
    out.smoothed[i] = acc / w;
  }

  if (smoothed_len < 3) {
    // Degenerate sequence: fall back to the first smoothed value; every
    // node at or above it is anomalous.
    out.threshold = out.smoothed[0];
    out.inflection_index = 0;
  } else {
    // Eqs. 21-22: first and second differences of the smoothed sequence.
    const int d1_len = smoothed_len - 1;
    std::vector<double> d1(d1_len);
    for (int i = 0; i < d1_len; ++i) {
      d1[i] = out.smoothed[i] - out.smoothed[i + 1];
    }
    const int d2_len = d1_len - 1;
    // The inflection the strategy looks for is where "the decline in
    // anomaly scores transitions from steep (anomalous nodes) to stable
    // (normal nodes)" — a *shrinking* decline, i.e. Delta_2(i) =
    // Delta_1(i) - Delta_1(i+1) > 0. The mirrored transition (plateau into
    // a final plunge at the very tail) has negative Delta_2 and is never
    // the anomaly boundary, so only positive curvature points qualify.
    std::vector<double> d2(d2_len);
    std::vector<double> abs_d2(d2_len);
    for (int i = 0; i < d2_len; ++i) {
      d2[i] = d1[i] - d1[i + 1];
      abs_d2[i] = std::abs(d2[i]);
    }

    // "Selectable points consistent with Eq. (23)": statistically
    // significant curvature, i.e. Delta_2 at least kSignificance times the
    // median |Delta_2| (the plateau noise floor). Extreme top-ranked
    // scores also produce large curvature at the head of the curve, so
    // significance alone cannot identify the boundary.
    std::vector<double> sorted_abs = abs_d2;
    std::nth_element(sorted_abs.begin(),
                     sorted_abs.begin() + d2_len / 2, sorted_abs.end());
    const double noise_floor = sorted_abs[d2_len / 2];
    constexpr double kSignificance = 8.0;
    std::vector<int> candidates;
    double max_pos = 0.0;
    int argmax_pos = 0;
    for (int i = 0; i < d2_len; ++i) {
      if (d2[i] > max_pos) {
        max_pos = d2[i];
        argmax_pos = i;
      }
      if (d2[i] > 0.0 && d2[i] >= kSignificance * noise_floor) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      // Monotone-curvature curves: fall back to the literal argmax.
      candidates.push_back(argmax_pos);
    }

    // Localise the global steep-to-stable transition — the paper's stated
    // intuition ("before the inflection point ... anomalous, after ...
    // stable") — with a two-segment least-squares fit of the smoothed
    // curve, then choose the selectable curvature point nearest the fitted
    // change point. On sharply separated score curves the change point and
    // the boundary curvature coincide exactly (property-tested); on blurred
    // curves this keeps the pick away from both the extreme head cliffs
    // and tail-plunge wiggles.
    const int change_point = TwoSegmentChangePoint(out.smoothed);
    int chosen = candidates[0];
    for (int i : candidates) {
      if (std::abs(i - change_point) < std::abs(chosen - change_point)) {
        chosen = i;
      }
    }
    out.inflection_index = chosen;
    out.threshold = out.smoothed[chosen];
  }

  for (double s : scores) {
    if (s >= out.threshold) ++out.num_predicted;
  }
  return out;
}

double ThresholdTopK(const std::vector<double>& scores, int num_anomalies) {
  UMGAD_CHECK_GT(num_anomalies, 0);
  UMGAD_CHECK_LE(static_cast<size_t>(num_anomalies), scores.size());
  std::vector<double> sorted = scores;
  std::nth_element(sorted.begin(), sorted.begin() + num_anomalies - 1,
                   sorted.end(), std::greater<double>());
  return sorted[num_anomalies - 1];
}

double ThresholdBestF1(const std::vector<double>& scores,
                       const std::vector<int>& labels) {
  UMGAD_CHECK_EQ(scores.size(), labels.size());
  const int n = static_cast<int>(scores.size());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });

  int total_pos = 0;
  for (int y : labels) total_pos += y;

  // Sweep descending thresholds; F1 of the positive class drives the pick
  // (Macro-F1 is monotone in it for fixed class sizes near the optimum).
  int tp = 0;
  double best_f1 = -1.0;
  double best_threshold = scores[order[0]] + 1.0;
  for (int k = 0; k < n; ++k) {
    tp += labels[order[k]];
    const int predicted = k + 1;
    const double precision = static_cast<double>(tp) / predicted;
    const double recall =
        total_pos > 0 ? static_cast<double>(tp) / total_pos : 0.0;
    if (precision + recall <= 0.0) continue;
    const double f1 = 2.0 * precision * recall / (precision + recall);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = scores[order[k]];
    }
  }
  return best_threshold;
}

std::vector<int> PredictWithThreshold(const std::vector<double>& scores,
                                      double threshold) {
  std::vector<int> out(scores.size(), 0);
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = scores[i] >= threshold ? 1 : 0;
  }
  return out;
}

}  // namespace umgad
