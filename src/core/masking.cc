#include "core/masking.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_ops.h"

namespace umgad {

std::vector<int> SampleMaskedNodes(int n, double ratio, Rng* rng) {
  UMGAD_CHECK(ratio >= 0.0 && ratio <= 1.0);
  int k = static_cast<int>(ratio * n);
  k = std::clamp(k, 1, n);  // at least one masked node keeps losses defined
  return rng->SampleWithoutReplacement(n, k);
}

AttributeSwap MakeAttributeSwap(const Tensor& x, double ratio, Rng* rng) {
  const int n = x.rows();
  AttributeSwap out;
  out.augmented = x;
  out.swapped_nodes = SampleMaskedNodes(n, ratio, rng);
  for (int i : out.swapped_nodes) {
    int j = static_cast<int>(rng->UniformInt(n - 1));
    if (j >= i) ++j;  // any node but i
    std::copy(x.row(j), x.row(j) + x.cols(), out.augmented.row(i));
  }
  return out;
}

SubgraphMask MakeSubgraphMask(const SparseMatrix& adj, int num_subgraphs,
                              int subgraph_size, double restart_prob,
                              Rng* rng) {
  RwrConfig rwr;
  rwr.restart_prob = restart_prob;
  rwr.target_size = subgraph_size;
  std::vector<std::vector<int>> subgraphs =
      SampleRwrSubgraphs(adj, num_subgraphs, rwr, rng);

  std::unordered_set<int> unionset;
  for (const auto& sg : subgraphs) {
    unionset.insert(sg.begin(), sg.end());
  }
  SubgraphMask mask;
  mask.masked_nodes.assign(unionset.begin(), unionset.end());
  std::sort(mask.masked_nodes.begin(), mask.masked_nodes.end());

  EdgeMask removed = RemoveIncidentEdges(adj, mask.masked_nodes);
  mask.remaining = std::move(removed.remaining);
  mask.removed_edges = std::move(removed.masked);
  return mask;
}

}  // namespace umgad
