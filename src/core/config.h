#ifndef UMGAD_CORE_CONFIG_H_
#define UMGAD_CORE_CONFIG_H_

#include <cstdint>

#include "graph/partition/partition_options.h"

namespace umgad {

/// Encoder family for the GMAEs ("Our method adopts GAT and simplified GCN
/// as the encoder and decoder", Sec. V-A.3). The decoder is always a
/// simplified GCN.
enum class EncoderKind { kGat, kSgc };

/// Full hyperparameter surface of UMGAD. Defaults follow the paper's tuned
/// small-dataset settings; the sensitivity benches (Figs. 3-5) sweep the
/// documented ranges.
struct UmgadConfig {
  // --- Architecture ---
  EncoderKind encoder = EncoderKind::kGat;
  /// Latent width d_h.
  int hidden_dim = 48;
  /// Encoder depth (paper: 2 for Amazon/YelpChi, 1 for Retail/Alibaba).
  int encoder_layers = 1;
  /// Decoder depth (paper: 1 everywhere).
  int decoder_layers = 1;

  // --- Masking (Sec. IV-A, IV-B) ---
  /// Masking ratio r_m shared by attribute and edge masking. The paper
  /// tunes 20% (Retail/Alibaba) to 40-60% (Amazon/YelpChi) per dataset;
  /// 0.3 is the best single global default on the bundled generators
  /// (Fig. 4 bench sweeps the range).
  double mask_ratio = 0.3;
  /// Masking repeats K.
  int mask_repeats = 2;
  /// RWR subgraph size |V_m| for the subgraph-level augmented view.
  int subgraph_size = 8;
  /// Subgraphs sampled per relation per repeat.
  int num_subgraphs = 6;
  /// RWR restart probability.
  double rwr_restart = 0.3;
  /// Fraction of nodes whose attributes are swapped in the attribute-level
  /// augmented view.
  double attr_swap_ratio = 0.15;

  // --- Loss weights (Eqs. 4, 9, 16, 18, 19) ---
  /// Scaled-cosine exponent eta (>= 1).
  float eta = 2.0f;
  /// Attribute-vs-structure balance in the original view (Eq. 9).
  float alpha = 0.5f;
  /// Attribute-vs-structure balance in the subgraph view (Eq. 16).
  float beta = 0.4f;
  /// Weight of the attribute-level augmented view loss (Eq. 18).
  float lambda = 0.3f;
  /// Weight of the subgraph-level augmented view loss (Eq. 18).
  float mu = 0.35f;
  /// Weight of the dual-view contrastive loss (Eq. 18).
  float theta = 0.1f;
  /// Attribute-vs-structure balance in the anomaly score (Eq. 19).
  float epsilon = 0.5f;

  // --- Training ---
  int epochs = 60;
  float learning_rate = 5e-3f;
  float weight_decay = 0.0f;
  /// Negative samples per masked edge in the softmax denominator (Eq. 7).
  int num_negatives = 4;
  /// Non-neighbour samples per node for the structure residual estimate in
  /// the anomaly score.
  int num_score_negatives = 16;
  uint64_t seed = 1;

  // --- Partitioned training (src/graph/partition/) ---
  /// Cache-sized blocks P for block-affine training. 0 defers to the
  /// UMGAD_PARTITIONS environment variable; a resolved value <= 1 runs the
  /// flat engine. Purely a performance knob: results are bit-identical for
  /// any value (and it is deliberately NOT serialised into .umgm models).
  int partitions = 0;
  /// Partitioner heuristic; UMGAD_PARTITION_METHOD ("dbh" | "hdrf")
  /// overrides when set.
  PartitionMethod partition_method = PartitionMethod::kDbh;

  // --- Ablation switches (Table IV) ---
  /// w/o M: replace the GMAE with a plain GAE (no [MASK] token, no edge
  /// masking; reconstruction over all nodes/edges).
  bool use_masking = true;
  /// w/o O: drop the original-view reconstruction.
  bool use_original_view = true;
  /// w/o NA: drop the node-attribute-level augmented view.
  bool use_attr_augmented_view = true;
  /// w/o SA: drop the subgraph-level augmented view.
  bool use_subgraph_augmented_view = true;
  /// w/o DCL: drop the dual-view contrastive loss.
  bool use_contrastive = true;
  /// Extra ablation (DESIGN.md §6): learnable a_r/b_r fusion vs uniform.
  bool use_relation_fusion = true;

  // --- Pruned pipelines (Fig. 6) ---
  /// "Str": attribute reconstruction disabled.
  bool use_attribute_recon = true;
  /// "Att": structure reconstruction disabled.
  bool use_structure_recon = true;

  /// Convenience: w/o A (drop the whole augmented view).
  void DisableAugmentedViews() {
    use_attr_augmented_view = false;
    use_subgraph_augmented_view = false;
  }
};

}  // namespace umgad

#endif  // UMGAD_CORE_CONFIG_H_
