#include "core/umgad.h"

#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/scorer.h"
#include "graph/partition/partitioner.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace umgad {

UmgadModel::UmgadModel(UmgadConfig config) : config_(std::move(config)) {}

UmgadModel::~UmgadModel() = default;

Status UmgadModel::Fit(const MultiplexGraph& graph) {
  if (graph.num_nodes() < 4) {
    return Status::InvalidArgument("graph too small to fit UMGAD");
  }
  if (!config_.use_original_view && !config_.use_attr_augmented_view &&
      !config_.use_subgraph_augmented_view) {
    return Status::InvalidArgument("all reconstruction views are disabled");
  }
  if (!config_.use_attribute_recon && !config_.use_structure_recon) {
    return Status::InvalidArgument(
        "both attribute and structure reconstruction are disabled");
  }
  if (config_.eta < 1.0f) {
    return Status::InvalidArgument("eta must be >= 1 (Eq. 4)");
  }

  WallTimer total_timer;
  Rng rng(config_.seed);
  const int n = graph.num_nodes();
  const int r_count = graph.num_relations();
  const int f = graph.feature_dim();

  // Build views.
  original_.reset();
  attr_augmented_.reset();
  subgraph_augmented_.reset();
  if (config_.use_original_view) {
    original_ = std::make_unique<ReconstructionView>(
        ReconstructionView::Kind::kOriginal, f, r_count, config_, &rng);
  }
  if (config_.use_attr_augmented_view && config_.use_attribute_recon) {
    // The attribute-level augmented view is attribute-only by construction;
    // it is meaningless in the structure-only (Fig. 6 "Str") pipeline.
    attr_augmented_ = std::make_unique<ReconstructionView>(
        ReconstructionView::Kind::kAttrAugmented, f, r_count, config_, &rng);
  }
  if (config_.use_subgraph_augmented_view) {
    subgraph_augmented_ = std::make_unique<ReconstructionView>(
        ReconstructionView::Kind::kSubgraphAugmented, f, r_count, config_,
        &rng);
  }

  // Full normalised operators, shared across epochs and views.
  std::vector<std::shared_ptr<const SparseMatrix>> norm_adjs;
  norm_adjs.reserve(r_count);
  for (int r = 0; r < r_count; ++r) {
    norm_adjs.push_back(std::make_shared<const SparseMatrix>(
        graph.layer(r).NormalizedWithSelfLoops()));
  }
  // Partitioned training (perf-only; bit-identical for any P): derive the
  // cache-blocked row schedule once per graph — the node set is shared by
  // all relations — and attach it to every shared operator. Views reuse it
  // across relations x masking repeats and re-attach it to their perturbed
  // per-repeat operators; a resolved count <= 1 with partitions == 0 keeps
  // the flat engine as the oracle path.
  const int num_partitions = ResolvePartitionCount(config_.partitions);
  if (num_partitions >= 1) {
    PartitionOptions popts;
    popts.num_blocks = num_partitions;
    popts.method = ResolvePartitionMethod(config_.partition_method);
    popts.seed = config_.seed;
    Result<VertexPartition> part = PartitionGraph(graph, popts);
    if (!part.ok()) return part.status();
    for (int r = 0; r < r_count; ++r) {
      norm_adjs[r]->AttachRowBlocks(part.value().blocks);
    }
  }
  // Prewarm the backward ownership indexes these operators will need on
  // every epoch (cached per matrix): the transposed CSR for the Spmm
  // backward and — for GAT encoders — the incoming-edge index for the
  // edge-softmax backward. Building them here, fanned across relations,
  // keeps the duplicate-build race of concurrent lazy first calls out of
  // epoch 1's backward entirely.
  ParallelFor(r_count, 1, [&](int64_t b, int64_t e) {
    for (int r = static_cast<int>(b); r < e; ++r) {
      norm_adjs[r]->EnsureTransposedIndex();
      if (config_.encoder == EncoderKind::kGat) {
        norm_adjs[r]->EnsureIncomingIndex();
      }
    }
  });

  std::vector<ag::VarPtr> params;
  for (ReconstructionView* view :
       {original_.get(), attr_augmented_.get(), subgraph_augmented_.get()}) {
    if (view == nullptr) continue;
    std::vector<ag::VarPtr> p = view->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::Adam optimizer(params, config_.learning_rate, 0.9f, 0.999f, 1e-8f,
                     config_.weight_decay);

  // The three views own disjoint parameters and their forward passes are
  // independent given independent random streams, so each epoch fans the
  // active views out across the thread pool (barrier before the joint loss;
  // backward and the Adam step stay sequential). Each view gets an Rng
  // forked *sequentially* from the epoch Rng, which keeps every draw — and
  // therefore the fitted model — identical for any UMGAD_THREADS value.
  std::vector<ReconstructionView*> active_views;
  for (ReconstructionView* view :
       {original_.get(), attr_augmented_.get(), subgraph_augmented_.get()}) {
    if (view != nullptr) active_views.push_back(view);
  }
  const int active_count = static_cast<int>(active_views.size());

  loss_history_.clear();
  first_epoch_fresh_bytes_ = 0;
  steady_state_fresh_bytes_ = 0;
  WallTimer epoch_timer;
  double epoch_time_acc = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    epoch_timer.Restart();
    // Rewind the tape: last epoch's graph nodes die, their tensors return
    // to the pool, and this epoch's identically-shaped graph reuses them —
    // steady-state epochs perform zero tensor mallocs (tracked below).
    ag::Tape::Global().Reset();
    const int64_t fresh_before = TensorPool::Global().stats().fresh_bytes;
    optimizer.ZeroGrad();

    std::vector<Rng> view_rngs;
    view_rngs.reserve(active_count);
    for (int v = 0; v < active_count; ++v) view_rngs.push_back(rng.Fork());
    std::vector<ViewForward> forwards(active_count);
    ParallelFor(active_count, 1, [&](int64_t b, int64_t e) {
      for (int v = static_cast<int>(b); v < e; ++v) {
        forwards[v] =
            active_views[v]->Forward(graph, norm_adjs, &view_rngs[v]);
      }
    });

    ViewForward orig;
    ViewForward attr_aug;
    ViewForward sub_aug;
    std::vector<ag::VarPtr> terms;
    int next = 0;
    if (original_) {
      orig = std::move(forwards[next++]);
      if (orig.loss) terms.push_back(orig.loss);  // L_O, weight 1
    }
    if (attr_augmented_) {
      attr_aug = std::move(forwards[next++]);
      if (attr_aug.loss) {
        terms.push_back(ag::ScalarMul(attr_aug.loss, config_.lambda));
      }
    }
    if (subgraph_augmented_) {
      sub_aug = std::move(forwards[next++]);
      if (sub_aug.loss) {
        terms.push_back(ag::ScalarMul(sub_aug.loss, config_.mu));
      }
    }

    // Dual-view contrastive learning (Eq. 17): original vs each augmented
    // view; with the original view ablated (w/o O) the two augmented views
    // contrast against each other so the term stays defined.
    if (config_.use_contrastive) {
      ag::VarPtr anchor = orig.fused_recon;
      std::vector<ag::VarPtr> others;
      if (anchor) {
        if (attr_aug.fused_recon) others.push_back(attr_aug.fused_recon);
        if (sub_aug.fused_recon) others.push_back(sub_aug.fused_recon);
      } else if (attr_aug.fused_recon && sub_aug.fused_recon) {
        anchor = attr_aug.fused_recon;
        others.push_back(sub_aug.fused_recon);
      }
      if (anchor && !others.empty()) {
        std::vector<int> neg = nn::SampleContrastiveNegatives(n, &rng);
        ag::VarPtr zo = ag::RowL2Normalize(anchor);
        std::vector<ag::VarPtr> cl_terms;
        for (const ag::VarPtr& other : others) {
          cl_terms.push_back(ag::DualContrastiveLoss(
              zo, ag::RowL2Normalize(other), neg,
              norm_adjs[0]->row_blocks()));
        }
        terms.push_back(ag::ScalarMul(
            cl_terms.size() == 1 ? cl_terms[0] : ag::AddN(cl_terms),
            config_.theta));
      }
    }

    if (terms.empty()) {
      return Status::Internal("no loss terms were produced");
    }
    ag::VarPtr loss = terms.size() == 1 ? terms[0] : ag::AddN(terms);
    const double loss_value = loss->value().scalar();
    if (!std::isfinite(loss_value)) {
      UMGAD_LOG(Warning) << "non-finite loss at epoch " << epoch
                         << "; stopping early";
      break;
    }
    loss_history_.push_back(loss_value);

    ag::Backward(loss);
    optimizer.Step();
    const int64_t fresh_delta =
        TensorPool::Global().stats().fresh_bytes - fresh_before;
    if (epoch == 0) {
      first_epoch_fresh_bytes_ = fresh_delta;
    } else {
      steady_state_fresh_bytes_ += fresh_delta;
    }
    epoch_time_acc += epoch_timer.ElapsedSeconds();
  }
  epoch_seconds_ = loss_history_.empty()
                       ? 0.0
                       : epoch_time_acc / static_cast<double>(
                             loss_history_.size());

  // Scoring (Eq. 19) over the unperturbed graph. The Rng state is captured
  // first so a serialized model (core/model_io) can replay this exact pass:
  // view->Score is deterministic, and ComputeAnomalyScores walks the stream
  // from precisely this point.
  scoring_rng_state_ = rng.state();
  std::vector<ViewScoring> scorings;
  for (ReconstructionView* view :
       {original_.get(), attr_augmented_.get(), subgraph_augmented_.get()}) {
    if (view == nullptr) continue;
    scorings.push_back(view->Score(graph, norm_adjs));
  }
  scores_ = ComputeAnomalyScores(graph, scorings, config_.epsilon,
                                 config_.num_score_negatives, &rng);
  threshold_ = SelectThresholdInflection(scores_);
  // Drop the scoring-pass graph (every step-local VarPtr is out of scope).
  ag::Tape::Global().Reset();
  fit_seconds_ = total_timer.ElapsedSeconds();
  return Status::OK();
}

std::vector<const ReconstructionView*> UmgadModel::ActiveViews() const {
  std::vector<const ReconstructionView*> views;
  for (const ReconstructionView* view :
       {original_.get(), attr_augmented_.get(), subgraph_augmented_.get()}) {
    if (view != nullptr) views.push_back(view);
  }
  return views;
}

std::vector<int> UmgadModel::PredictUnsupervised() const {
  UMGAD_CHECK(!scores_.empty());
  return PredictWithThreshold(scores_, threshold_.threshold);
}

std::vector<double> UmgadModel::OriginalFusionWeights() const {
  UMGAD_CHECK(original_ != nullptr);
  return original_->FusionWeights();
}

}  // namespace umgad
