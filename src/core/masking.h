#ifndef UMGAD_CORE_MASKING_H_
#define UMGAD_CORE_MASKING_H_

#include <vector>

#include "common/rng.h"
#include "graph/random_walk.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace umgad {

/// Uniformly sample floor(ratio * n) node indices without replacement — the
/// attribute-mask subset V_ma of Eq. 1.
std::vector<int> SampleMaskedNodes(int n, double ratio, Rng* rng);

/// Attribute-level augmentation (Eq. 10): a copy of `x` where a random
/// subset of rows is overwritten with the attributes of other random nodes.
struct AttributeSwap {
  Tensor augmented;
  std::vector<int> swapped_nodes;
};
AttributeSwap MakeAttributeSwap(const Tensor& x, double ratio, Rng* rng);

/// Subgraph-level masking (Sec. IV-B.2): sample `num_subgraphs` RWR
/// subgraphs of size `subgraph_size` on `adj`, take the union of their
/// nodes, and remove all incident edges.
struct SubgraphMask {
  std::vector<int> masked_nodes;   // union of sampled subgraph nodes
  SparseMatrix remaining;          // adj minus incident edges
  std::vector<Edge> removed_edges; // undirected, for reconstruction targets
};
SubgraphMask MakeSubgraphMask(const SparseMatrix& adj, int num_subgraphs,
                              int subgraph_size, double restart_prob,
                              Rng* rng);

}  // namespace umgad

#endif  // UMGAD_CORE_MASKING_H_
