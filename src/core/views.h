#ifndef UMGAD_CORE_VIEWS_H_
#define UMGAD_CORE_VIEWS_H_

#include <memory>
#include <vector>

#include "core/gmae.h"
#include "core/relation_fusion.h"
#include "graph/multiplex_graph.h"

namespace umgad {

/// Training-step output of a view: its scalar loss term and the fused
/// attribute reconstruction that feeds the dual-view contrastive loss.
struct ViewForward {
  ag::VarPtr loss;         // scalar; nullptr when the view has no active branch
  ag::VarPtr fused_recon;  // N x f; nullptr when attribute recon is off
};

/// Deterministic outputs used by the anomaly scorer (Eq. 19), computed on
/// the unperturbed graph after training.
struct ViewScoring {
  Tensor attr_recon;               // N x f; empty when attr recon is off
  std::vector<Tensor> embeddings;  // per relation, N x d_h; empty when off
};

/// One reconstruction view of UMGAD. A single class covers the three views
/// of Fig. 1 — they share the GMAE-per-relation + learnable-fusion skeleton
/// and differ in how inputs are perturbed:
///  - kOriginal (Sec. IV-A): token-mask attributes / mask edges on the
///    original graph; separate attribute and structure GMAEs (W_enc1 vs
///    W_enc2).
///  - kAttrAugmented (Sec. IV-B.1): swap node attributes, mask exactly the
///    swapped set, reconstruct against the *original* attributes.
///  - kSubgraphAugmented (Sec. IV-B.2): RWR-sample subgraphs, mask their
///    nodes and incident edges, reconstruct both attributes and structure.
class ReconstructionView : public nn::Module {
 public:
  enum class Kind { kOriginal, kAttrAugmented, kSubgraphAugmented };

  ReconstructionView(Kind kind, int in_dim, int num_relations,
                     const UmgadConfig& config, Rng* rng);

  /// One training forward pass (all K masking repeats).
  /// `norm_adjs` are the full normalised adjacencies (one per relation);
  /// structure branches build their own perturbed operators internally.
  ViewForward Forward(const MultiplexGraph& graph,
                      const std::vector<std::shared_ptr<const SparseMatrix>>&
                          norm_adjs,
                      Rng* rng) const;

  /// Deterministic pass over the unperturbed graph for scoring.
  ViewScoring Score(const MultiplexGraph& graph,
                    const std::vector<std::shared_ptr<const SparseMatrix>>&
                        norm_adjs) const;

  /// Learned attribute-fusion weights a_r (diagnostics).
  std::vector<double> FusionWeights() const { return fusion_a_->Weights(); }

  Kind kind() const { return kind_; }

  // Component access for model serialization (core/model_io) and the
  // serve-layer forward engine (src/serve). struct_gmae() is nullptr when
  // the view shares the attribute encoder for structure embeddings (every
  // view except kOriginal).
  const Gmae& attr_gmae(int r) const { return *attr_gmae_[r]; }
  const Gmae* struct_gmae(int r) const {
    return struct_gmae_.empty() ? nullptr : struct_gmae_[r].get();
  }
  const RelationFusion& fusion_a() const { return *fusion_a_; }

 private:
  ViewForward ForwardOriginal(
      const MultiplexGraph& graph,
      const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
      Rng* rng) const;
  ViewForward ForwardAttrAugmented(
      const MultiplexGraph& graph,
      const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
      Rng* rng) const;
  ViewForward ForwardSubgraphAugmented(
      const MultiplexGraph& graph,
      const std::vector<std::shared_ptr<const SparseMatrix>>& norm_adjs,
      Rng* rng) const;

  Kind kind_;
  UmgadConfig config_;
  std::vector<std::unique_ptr<Gmae>> attr_gmae_;    // one per relation
  std::vector<std::unique_ptr<Gmae>> struct_gmae_;  // original view only
  std::unique_ptr<RelationFusion> fusion_a_;        // Eq. 3 (attributes)
  std::unique_ptr<RelationFusion> fusion_b_;        // Eq. 8 (structure)
};

/// All node indices [0, n) — the loss subset for the no-masking ablation.
std::vector<int> AllNodes(int n);

/// Cap on edge-reconstruction targets per relation per repeat; bounds the
/// cost of Eq. 7 on dense layers (Amazon U-S-U) without changing the
/// estimator's expectation.
inline constexpr int kMaxEdgeTargets = 1536;

}  // namespace umgad

#endif  // UMGAD_CORE_VIEWS_H_
