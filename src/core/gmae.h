#ifndef UMGAD_CORE_GMAE_H_
#define UMGAD_CORE_GMAE_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/gat.h"
#include "nn/gcn.h"

namespace umgad {

/// Graph Masked AutoEncoder for one relational subgraph (Sec. IV-A): a GNN
/// encoder (GAT or simplified GCN), a simplified-GCN decoder back to the
/// input width, and a learnable [MASK] token.
///
/// One instance serves both GMAE roles:
///  - attribute branch: ReconstructAttributes() masks rows with the token,
///    encodes over the (full) adjacency and decodes back to feature space
///    (Eq. 2 / Eq. 11);
///  - structure branch: Embed() produces latent node embeddings over a
///    perturbed adjacency for inner-product edge prediction (Eq. 6).
///
/// Weights are shared across the K masking repeats: the repeats are
/// stochastic re-draws of the same objective (standard GMAE practice); the
/// paper's per-k weight subscript is treated as notation, see DESIGN.md.
class Gmae : public nn::Module {
 public:
  Gmae(int in_dim, const UmgadConfig& config, Rng* rng);

  /// Token-mask the rows in `masked` (empty = no masking, the plain-GAE
  /// ablation / scoring pass), then encode and decode. Returns N x in_dim.
  ag::VarPtr ReconstructAttributes(std::shared_ptr<const SparseMatrix> adj,
                                   const Tensor& x,
                                   const std::vector<int>& masked) const;

  /// Encoder output (N x hidden_dim) for structure reconstruction.
  ag::VarPtr Embed(std::shared_ptr<const SparseMatrix> adj,
                   const Tensor& x) const;

  // Layer access for the serve-layer per-row forward engine, which unrolls
  // the encoder/decoder stack into per-row stages (src/serve/engine.h).
  EncoderKind encoder_kind() const { return kind_; }
  const std::vector<std::unique_ptr<nn::GatConv>>& gat_layers() const {
    return gat_layers_;
  }
  const std::vector<std::unique_ptr<nn::SgcConv>>& sgc_layers() const {
    return sgc_layers_;
  }
  const nn::SgcConv& decoder() const { return *decoder_; }

 private:
  ag::VarPtr Encode(const std::shared_ptr<const SparseMatrix>& adj,
                    const ag::VarPtr& h) const;

  EncoderKind kind_;
  ag::VarPtr mask_token_;  // 1 x in_dim
  std::vector<std::unique_ptr<nn::GatConv>> gat_layers_;
  std::vector<std::unique_ptr<nn::SgcConv>> sgc_layers_;
  std::unique_ptr<nn::SgcConv> decoder_;
};

}  // namespace umgad

#endif  // UMGAD_CORE_GMAE_H_
