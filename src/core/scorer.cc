#include "core/scorer.h"

#include <algorithm>
#include <cmath>

#include "graph/graph_ops.h"

namespace umgad {

namespace {

double SigmoidD(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

std::vector<double> StructureResidual(const SparseMatrix& adj,
                                      const Tensor& z, int num_negatives,
                                      Rng* rng, bool degree_normalized) {
  const int n = adj.rows();
  std::vector<double> residual(n, 0.0);
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  for (int i = 0; i < n; ++i) {
    // Degree-normalised residual: "how badly are my edges predicted" plus
    // "how much do I leak probability onto non-edges". The unnormalised
    // row L1 norm grows linearly with degree, which ranks hubs of dense
    // noisy layers above true anomalies; normalising keeps the ranking on
    // predictability rather than volume.
    double edge_err = 0.0;
    int degree = 0;
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      edge_err += 1.0 - SigmoidD(z.RowDot(i, z, ci[k]));
      ++degree;
    }
    double leak = 0.0;
    if (num_negatives > 0 && n - 1 - degree > 0) {
      const std::vector<int> negs =
          SampleNonNeighbors(adj, i, num_negatives, rng);
      for (int u : negs) leak += SigmoidD(z.RowDot(i, z, u));
      leak /= static_cast<double>(negs.size());
    }
    if (degree_normalized) {
      residual[i] = (degree > 0 ? edge_err / degree : 0.0) + leak;
    } else {
      // Raw row-norm estimate (the GAE papers' scorer).
      residual[i] =
          edge_err + leak * static_cast<double>(n - 1 - degree);
    }
  }
  return residual;
}

std::vector<double> StructureResidualExact(const SparseMatrix& adj,
                                           const Tensor& z) {
  const int n = adj.rows();
  std::vector<double> residual(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double edge_err = 0.0;
    double leak = 0.0;
    int degree = 0;
    int non_edges = 0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const double p = SigmoidD(z.RowDot(i, z, j));
      if (adj.Has(i, j)) {
        edge_err += 1.0 - p;
        ++degree;
      } else {
        leak += p;
        ++non_edges;
      }
    }
    residual[i] = (degree > 0 ? edge_err / degree : 0.0) +
                  (non_edges > 0 ? leak / non_edges : 0.0);
  }
  return residual;
}

std::vector<double> MinMaxNormalize(const std::vector<double>& v) {
  if (v.empty()) return {};
  const auto [mn_it, mx_it] = std::minmax_element(v.begin(), v.end());
  const double mn = *mn_it;
  const double range = *mx_it - mn;
  std::vector<double> out(v.size(), 0.0);
  if (range <= 0.0) return out;
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mn) / range;
  return out;
}

std::vector<double> Standardize(const std::vector<double>& v) {
  if (v.empty()) return {};
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  const double stddev = std::sqrt(var);
  std::vector<double> out(v.size(), 0.0);
  if (stddev <= 1e-300) return out;
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mean) / stddev;
  return out;
}

std::vector<double> ComputeAnomalyScores(
    const MultiplexGraph& graph, const std::vector<ViewScoring>& views,
    float epsilon, int num_negatives, Rng* rng) {
  const int n = graph.num_nodes();
  const int r_count = graph.num_relations();
  std::vector<double> total(n, 0.0);
  int contributing_views = 0;

  for (const ViewScoring& view : views) {
    const bool has_attr = !view.attr_recon.empty();
    const bool has_struct = !view.embeddings.empty();
    if (!has_attr && !has_struct) continue;
    ++contributing_views;

    std::vector<double> attr_part(n, 0.0);
    if (has_attr) {
      Tensor dist = RowL2Distance(view.attr_recon, graph.attributes());
      for (int i = 0; i < n; ++i) attr_part[i] = dist.at(i, 0);
      attr_part = Standardize(attr_part);
    }

    std::vector<double> struct_part(n, 0.0);
    if (has_struct) {
      UMGAD_CHECK_EQ(static_cast<int>(view.embeddings.size()), r_count);
      for (int r = 0; r < r_count; ++r) {
        std::vector<double> res = StructureResidual(
            graph.layer(r), view.embeddings[r], num_negatives, rng);
        for (int i = 0; i < n; ++i) struct_part[i] += res[i] / r_count;
      }
      struct_part = Standardize(struct_part);
    }

    for (int i = 0; i < n; ++i) {
      if (has_attr && has_struct) {
        total[i] += epsilon * attr_part[i] + (1.0f - epsilon) * struct_part[i];
      } else if (has_attr) {
        total[i] += attr_part[i];
      } else {
        total[i] += struct_part[i];
      }
    }
  }

  UMGAD_CHECK_GT(contributing_views, 0);
  for (double& s : total) s /= contributing_views;
  return total;
}

}  // namespace umgad
