#ifndef UMGAD_CORE_UMGAD_H_
#define UMGAD_CORE_UMGAD_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/detector.h"
#include "core/threshold.h"
#include "core/views.h"

namespace umgad {

/// The UMGAD model (Fig. 1): original-view graph reconstruction,
/// attribute-level and subgraph-level augmented-view reconstruction, and
/// dual-view contrastive learning, trained jointly (Eq. 18); anomaly scores
/// from multi-view reconstruction residuals (Eq. 19) and the label-free
/// inflection-point threshold (Sec. IV-E).
///
/// Typical use:
///   UmgadConfig config;
///   UmgadModel model(config);
///   UMGAD_RETURN_IF_ERROR(model.Fit(graph));
///   const std::vector<double>& s = model.scores();
///   std::vector<int> predictions = model.PredictUnsupervised();
class UmgadModel : public Detector {
 public:
  explicit UmgadModel(UmgadConfig config = UmgadConfig());
  ~UmgadModel() override;

  Status Fit(const MultiplexGraph& graph) override;
  const std::vector<double>& scores() const override { return scores_; }
  std::string name() const override { return "UMGAD"; }
  double fit_seconds() const override { return fit_seconds_; }
  double epoch_seconds() const override { return epoch_seconds_; }

  /// Binary predictions via the unsupervised inflection threshold. Valid
  /// after Fit.
  std::vector<int> PredictUnsupervised() const;
  /// The full threshold diagnostics (Fig. 2). Valid after Fit.
  const ThresholdResult& threshold_result() const { return threshold_; }

  /// Per-epoch total loss (Fig. 7c).
  const std::vector<double>& loss_history() const { return loss_history_; }

  /// Learned original-view attribute fusion weights a_r (diagnostics).
  std::vector<double> OriginalFusionWeights() const;

  const UmgadConfig& config() const { return config_; }

  /// The fitted reconstruction views in scoring order (original,
  /// attr-augmented, subgraph-augmented; inactive views skipped). Valid
  /// after Fit. Used by core/model_io to serialize the trained weights.
  std::vector<const ReconstructionView*> ActiveViews() const;

  /// Rng state captured right before the post-training scoring pass
  /// (ComputeAnomalyScores draws the structure-residual negatives from this
  /// stream). Saved into the .umgm artifact so a reloaded model replays the
  /// scoring pass bit-identically. Valid after Fit.
  const Rng::State& scoring_rng_state() const { return scoring_rng_state_; }

  /// Allocator accounting from the last Fit: fresh tensor-buffer bytes the
  /// TensorPool had to heap-allocate during the first epoch vs. the sum
  /// over all later epochs. With the arena on, warm shapes recycle and the
  /// steady-state figure is zero (asserted in tests; recorded in
  /// docs/PERFORMANCE.md).
  int64_t first_epoch_fresh_bytes() const { return first_epoch_fresh_bytes_; }
  int64_t steady_state_fresh_bytes() const {
    return steady_state_fresh_bytes_;
  }

 private:
  UmgadConfig config_;
  std::unique_ptr<ReconstructionView> original_;
  std::unique_ptr<ReconstructionView> attr_augmented_;
  std::unique_ptr<ReconstructionView> subgraph_augmented_;
  std::vector<double> scores_;
  std::vector<double> loss_history_;
  ThresholdResult threshold_;
  Rng::State scoring_rng_state_;
  double fit_seconds_ = 0.0;
  double epoch_seconds_ = 0.0;
  int64_t first_epoch_fresh_bytes_ = 0;
  int64_t steady_state_fresh_bytes_ = 0;
};

}  // namespace umgad

#endif  // UMGAD_CORE_UMGAD_H_
