#include "baselines/common.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace umgad {
namespace baselines {
namespace {

/// SL-GAD (Zheng et al., TKDE'21): generative and contrastive
/// self-supervised learning. The generative branch regresses a node's
/// attributes from its subgraph context embedding; the contrastive branch
/// is node-vs-context discrimination. The score combines the generative
/// residual with the contrastive gap (the paper's alpha/beta mixture).
class SlGad : public BaselineBase {
 public:
  explicit SlGad(uint64_t seed) : BaselineBase("SL-GAD", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::Linear gen(kBaselineHidden, view.f, &rng_);  // context -> attrs
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : gen.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);
    constexpr int kBatch = 384;
    constexpr int kContextSize = 4;

    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<int> batch = SampleBatch(view.n, kBatch, &rng_);
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
      ag::VarPtr hb = ag::GatherRows(h, batch);
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, batch, kContextSize, &rng_));
      ag::VarPtr ctx = ag::Spmm(ctx_op, h);
      // Generative: predict the (target) node attributes from context.
      ag::VarPtr predicted = gen.Forward(ctx);
      Tensor target = GatherRows(x, batch);
      ag::VarPtr gen_loss = ag::MseLoss(predicted, target);
      // Contrastive: standard discrimination.
      std::vector<int> perm = rng_.Permutation(static_cast<int>(batch.size()));
      ag::VarPtr cl_loss = ag::Add(
          ag::PairDotBceLoss(hb, ctx,
                             std::vector<float>(batch.size(), 1.0f)),
          ag::PairDotBceLoss(hb, ag::GatherRows(ctx, perm),
                             std::vector<float>(batch.size(), 0.0f)));
      ag::Backward(ag::Add(ag::ScalarMul(gen_loss, 2.0f), cl_loss));
      opt.Step();
      ++epochs_run_;
    }

    // Score = alpha * generative residual + beta * contrastive gap.
    Tensor h = enc.Forward(view.norm, ag::Constant(x))->value();
    std::vector<int> all(view.n);
    for (int i = 0; i < view.n; ++i) all[i] = i;
    std::vector<double> gen_err(view.n, 0.0);
    std::vector<double> gap(view.n, 0.0);
    constexpr int kRounds = 3;
    for (int round = 0; round < kRounds; ++round) {
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, all, kContextSize, &rng_));
      Tensor ctx = ctx_op->Multiply(h);
      Tensor predicted = gen.Forward(ag::Constant(ctx))->value();
      std::vector<double> err = RowL2(predicted, x);
      std::vector<double> pos = RowDotSigmoid(h, ctx);
      std::vector<int> perm = rng_.Permutation(view.n);
      std::vector<double> neg = RowDotSigmoid(h, GatherRows(ctx, perm));
      for (int i = 0; i < view.n; ++i) {
        gen_err[i] += err[i] / kRounds;
        gap[i] += (neg[i] - pos[i]) / kRounds;
      }
    }
    scores_ = CombineStandardized({gen_err, gap}, {0.5, 0.5});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeSlGad(uint64_t seed) {
  return std::make_unique<SlGad>(seed);
}

}  // namespace baselines
}  // namespace umgad
