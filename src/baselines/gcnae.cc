#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// GCNAE (Kipf & Welling's GAE applied to anomaly detection, SDM'19
/// usage): a GCN encoder with a GCN decoder trained to reconstruct node
/// attributes; the anomaly score is the attribute reconstruction residual.
/// The weakest GAE baseline by construction — no structure branch.
class Gcnae : public BaselineBase {
 public:
  explicit Gcnae(uint64_t seed) : BaselineBase("GCNAE", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kRelu, &rng_);
    nn::SgcConv dec(kBaselineHidden, view.f, 1, nn::Activation::kNone,
                    &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);
    ag::VarPtr recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      recon = dec.Forward(view.norm,
                          enc.Forward(view.norm, ag::Constant(x)));
      ag::Backward(ag::MseLoss(recon, x));
      opt.Step();
      ++epochs_run_;
    }
    scores_ = RowL2(recon->value(), x);
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeGcnae(uint64_t seed) {
  return std::make_unique<Gcnae>(seed);
}

}  // namespace baselines
}  // namespace umgad
