#include "baselines/common.h"

namespace umgad {
namespace baselines {
namespace {

/// PREM (Pan et al., ICDM'23): a simple yet effective preprocessing-and-
/// ego-matching detector. Message passing happens once, as preprocessing
/// (no training-phase propagation): a node is scored by how badly its
/// attributes match its 1-hop and 2-hop ego contexts. Training-free and
/// the cheapest method in the suite, mirroring its role in the paper's
/// efficiency comparison.
class Prem : public BaselineBase {
 public:
  explicit Prem(uint64_t seed) : BaselineBase("PREM", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Preprocessing: 1-hop and 2-hop ego means.
    Tensor hop1 = NeighborMean(view, x);
    Tensor hop2 = view.row_norm->Multiply(hop1);

    std::vector<double> mismatch1 = RowCosineDistance(x, hop1);
    std::vector<double> mismatch2 = RowCosineDistance(x, hop2);

    scores_ = CombineStandardized({mismatch1, mismatch2}, {0.6, 0.4});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakePrem(uint64_t seed) {
  return std::make_unique<Prem>(seed);
}

}  // namespace baselines
}  // namespace umgad
