#include "baselines/detector.h"

#include <cmath>
#include <unordered_map>

#include "baselines/common.h"
#include "graph/random_walk.h"
#include "common/string_util.h"
#include "core/scorer.h"
#include "core/umgad.h"

namespace umgad {

namespace baselines {

SingleView::SingleView(const MultiplexGraph& graph)
    : n(graph.num_nodes()), f(graph.feature_dim()) {
  adj = FlattenToSingleView(graph);
  norm = std::make_shared<const SparseMatrix>(adj.NormalizedWithSelfLoops());
  row_norm = std::make_shared<const SparseMatrix>(adj.RowNormalized());
}

Tensor NeighborMean(const SingleView& view, const Tensor& x) {
  return view.row_norm->Multiply(x);
}

std::vector<double> RowCosineDistance(const Tensor& x, const Tensor& y) {
  Tensor cos = RowCosine(x, y);
  std::vector<double> out(x.rows());
  for (int i = 0; i < x.rows(); ++i) out[i] = 1.0 - cos.at(i, 0);
  return out;
}

std::vector<double> RowL2(const Tensor& x, const Tensor& y) {
  Tensor dist = RowL2Distance(x, y);
  std::vector<double> out(x.rows());
  for (int i = 0; i < x.rows(); ++i) out[i] = dist.at(i, 0);
  return out;
}

std::vector<double> CombineStandardized(
    const std::vector<std::vector<double>>& parts,
    const std::vector<double>& weights) {
  UMGAD_CHECK_EQ(parts.size(), weights.size());
  UMGAD_CHECK(!parts.empty());
  std::vector<double> out(parts[0].size(), 0.0);
  for (size_t p = 0; p < parts.size(); ++p) {
    std::vector<double> z = Standardize(parts[p]);
    UMGAD_CHECK_EQ(z.size(), out.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] += weights[p] * z[i];
  }
  return out;
}

std::shared_ptr<const SparseMatrix> BuildContextOperator(
    int n, const std::vector<std::vector<int>>& sets) {
  std::vector<int> rows;
  std::vector<int> cols;
  std::vector<float> vals;
  for (size_t i = 0; i < sets.size(); ++i) {
    UMGAD_CHECK(!sets[i].empty());
    const float w = 1.0f / static_cast<float>(sets[i].size());
    for (int v : sets[i]) {
      rows.push_back(static_cast<int>(i));
      cols.push_back(v);
      vals.push_back(w);
    }
  }
  return std::make_shared<const SparseMatrix>(SparseMatrix::FromCoo(
      static_cast<int>(sets.size()), n, rows, cols, vals));
}

std::vector<double> RowDotSigmoid(const Tensor& a, const Tensor& b) {
  UMGAD_CHECK_EQ(a.rows(), b.rows());
  std::vector<double> out(a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-a.RowDot(i, b, i)));
  }
  return out;
}

std::vector<int> SampleBatch(int n, int count, Rng* rng) {
  return rng->SampleWithoutReplacement(n, std::min(n, count));
}

std::vector<std::vector<int>> RwrContexts(const SparseMatrix& adj,
                                          const std::vector<int>& seeds,
                                          int size, Rng* rng) {
  RwrConfig config;
  config.target_size = size + 1;  // room for dropping the seed
  std::vector<std::vector<int>> contexts;
  contexts.reserve(seeds.size());
  for (int s : seeds) {
    std::vector<int> sub = SampleRwrSubgraph(adj, s, config, rng);
    if (sub.size() > 1) {
      sub.erase(sub.begin());  // the walk starts at the seed
    }
    contexts.push_back(std::move(sub));
  }
  return contexts;
}

// Factory functions implemented by the per-method translation units.
std::unique_ptr<Detector> MakeRadar(uint64_t seed);
std::unique_ptr<Detector> MakeComGa(uint64_t seed);
std::unique_ptr<Detector> MakeRand(uint64_t seed);
std::unique_ptr<Detector> MakeTam(uint64_t seed);
std::unique_ptr<Detector> MakeCoLa(uint64_t seed);
std::unique_ptr<Detector> MakeAnemone(uint64_t seed);
std::unique_ptr<Detector> MakeSubCr(uint64_t seed);
std::unique_ptr<Detector> MakeArise(uint64_t seed);
std::unique_ptr<Detector> MakeSlGad(uint64_t seed);
std::unique_ptr<Detector> MakePrem(uint64_t seed);
std::unique_ptr<Detector> MakeGccad(uint64_t seed);
std::unique_ptr<Detector> MakeGradate(uint64_t seed);
std::unique_ptr<Detector> MakeVgod(uint64_t seed);
std::unique_ptr<Detector> MakeDominant(uint64_t seed);
std::unique_ptr<Detector> MakeGcnae(uint64_t seed);
std::unique_ptr<Detector> MakeAnomalyDae(uint64_t seed);
std::unique_ptr<Detector> MakeAdone(uint64_t seed);
std::unique_ptr<Detector> MakeGadNr(uint64_t seed);
std::unique_ptr<Detector> MakeAdaGad(uint64_t seed);
std::unique_ptr<Detector> MakeGadam(uint64_t seed);
std::unique_ptr<Detector> MakeAnomMan(uint64_t seed);
std::unique_ptr<Detector> MakeDualGad(uint64_t seed);

}  // namespace baselines

namespace {

/// UMGAD behind the common Detector factory.
std::unique_ptr<Detector> MakeUmgadDetector(uint64_t seed) {
  UmgadConfig config;
  config.seed = seed;
  return std::make_unique<UmgadModel>(config);
}

struct Entry {
  DetectorCategory category;
  std::unique_ptr<Detector> (*make)(uint64_t);
};

const std::vector<std::pair<std::string, Entry>>& Registry() {
  using namespace baselines;
  static const auto* kRegistry =
      new std::vector<std::pair<std::string, Entry>>{
          {"Radar", {DetectorCategory::kTraditional, &MakeRadar}},
          {"ComGA", {DetectorCategory::kMpi, &MakeComGa}},
          {"RAND", {DetectorCategory::kMpi, &MakeRand}},
          {"TAM", {DetectorCategory::kMpi, &MakeTam}},
          {"CoLA", {DetectorCategory::kCl, &MakeCoLa}},
          {"ANEMONE", {DetectorCategory::kCl, &MakeAnemone}},
          {"Sub-CR", {DetectorCategory::kCl, &MakeSubCr}},
          {"ARISE", {DetectorCategory::kCl, &MakeArise}},
          {"SL-GAD", {DetectorCategory::kCl, &MakeSlGad}},
          {"PREM", {DetectorCategory::kCl, &MakePrem}},
          {"GCCAD", {DetectorCategory::kCl, &MakeGccad}},
          {"GRADATE", {DetectorCategory::kCl, &MakeGradate}},
          {"VGOD", {DetectorCategory::kCl, &MakeVgod}},
          {"DOMINANT", {DetectorCategory::kGae, &MakeDominant}},
          {"GCNAE", {DetectorCategory::kGae, &MakeGcnae}},
          {"AnomalyDAE", {DetectorCategory::kGae, &MakeAnomalyDae}},
          {"AdONE", {DetectorCategory::kGae, &MakeAdone}},
          {"GAD-NR", {DetectorCategory::kGae, &MakeGadNr}},
          {"ADA-GAD", {DetectorCategory::kGae, &MakeAdaGad}},
          {"GADAM", {DetectorCategory::kGae, &MakeGadam}},
          {"AnomMAN", {DetectorCategory::kMv, &MakeAnomMan}},
          {"DualGAD", {DetectorCategory::kMv, &MakeDualGad}},
          {"UMGAD", {DetectorCategory::kOurs, &MakeUmgadDetector}},
      };
  return *kRegistry;
}

}  // namespace

const char* CategoryName(DetectorCategory category) {
  switch (category) {
    case DetectorCategory::kTraditional:
      return "Trad.";
    case DetectorCategory::kMpi:
      return "MPI";
    case DetectorCategory::kCl:
      return "CL";
    case DetectorCategory::kGae:
      return "GAE";
    case DetectorCategory::kMv:
      return "MV";
    case DetectorCategory::kOurs:
      return "Ours";
  }
  return "?";
}

Result<std::unique_ptr<Detector>> MakeDetector(const std::string& name,
                                               uint64_t seed) {
  for (const auto& [known, entry] : Registry()) {
    if (known == name) return entry.make(seed);
  }
  return Status::NotFound(StrFormat("unknown detector '%s'", name.c_str()));
}

std::vector<std::string> AllDetectorNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, entry] : Registry()) names.push_back(name);
  return names;
}

std::vector<std::string> ScalableDetectorNames() {
  return {"ComGA", "RAND",    "PREM",  "GRADATE", "VGOD",
          "ADA-GAD", "GADAM", "DualGAD", "UMGAD"};
}

DetectorCategory CategoryOf(const std::string& name) {
  for (const auto& [known, entry] : Registry()) {
    if (known == name) return entry.category;
  }
  UMGAD_CHECK_MSG(false, ("unknown detector: " + name).c_str());
  return DetectorCategory::kTraditional;
}

}  // namespace umgad
