#ifndef UMGAD_BASELINES_DETECTOR_H_
#define UMGAD_BASELINES_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/detector.h"

namespace umgad {

/// Method category, mirroring the row blocks of Tables II/V.
enum class DetectorCategory { kTraditional, kMpi, kCl, kGae, kMv, kOurs };

const char* CategoryName(DetectorCategory category);

/// Factory: build a detector by its paper name (e.g. "Radar", "DOMINANT",
/// "UMGAD"). `seed` controls all of the detector's randomness.
Result<std::unique_ptr<Detector>> MakeDetector(const std::string& name,
                                               uint64_t seed);

/// All detector names in the row order of Table II (Radar ... DualGAD,
/// UMGAD last).
std::vector<std::string> AllDetectorNames();

/// The subset that survives large-scale graphs in the paper (Table III):
/// ComGA, RAND, PREM, GRADATE, VGOD, ADA-GAD, GADAM, DualGAD, UMGAD.
std::vector<std::string> ScalableDetectorNames();

/// Category of a known detector name (UMGAD_CHECKs on unknown names).
DetectorCategory CategoryOf(const std::string& name);

}  // namespace umgad

#endif  // UMGAD_BASELINES_DETECTOR_H_
