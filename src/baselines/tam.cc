#include "baselines/common.h"

namespace umgad {
namespace baselines {
namespace {

/// TAM (Qiao & Pang, NeurIPS'23/24): truncated affinity maximization.
/// One-class homophily: normal nodes have high local affinity (similarity
/// to neighbours); anomalies drag affinity down through non-homophilous
/// edges. TAM iteratively truncates the lowest-affinity edges so anomaly
/// edges stop contaminating the affinity field, then scores nodes by
/// negative local affinity on the truncated graph.
class Tam : public BaselineBase {
 public:
  explicit Tam(uint64_t seed) : BaselineBase("TAM", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    SparseMatrix current = view.adj;
    constexpr int kRounds = 3;
    constexpr double kTruncateFrac = 0.1;

    std::vector<double> affinity(view.n, 0.0);
    for (int round = 0; round < kRounds; ++round) {
      // Smoothed representation on the current (truncated) graph.
      auto norm = std::make_shared<const SparseMatrix>(
          current.NormalizedWithSelfLoops());
      Tensor h = norm->Multiply(graph.attributes());

      // Local affinity: mean cosine similarity to current neighbours.
      std::vector<Edge> edges;
      std::vector<double> edge_affinity;
      const auto& rp = current.row_ptr();
      const auto& ci = current.col_idx();
      std::fill(affinity.begin(), affinity.end(), 0.0);
      for (int i = 0; i < view.n; ++i) {
        double acc = 0.0;
        for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
          const int j = ci[k];
          const double denom = h.RowNorm(i) * h.RowNorm(j);
          const double cos =
              denom > 1e-12 ? h.RowDot(i, h, j) / denom : 0.0;
          acc += cos;
          if (i < j) {
            edges.push_back(Edge{i, j});
            edge_affinity.push_back(cos);
          }
        }
        const int degree = current.RowNnz(i);
        affinity[i] = degree > 0 ? acc / degree : -1.0;
      }
      if (round + 1 == kRounds || edges.empty()) break;

      // Truncate the least-affine edges.
      std::vector<int> order(edges.size());
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
      }
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return edge_affinity[a] < edge_affinity[b];
      });
      const int cut = static_cast<int>(edges.size() * kTruncateFrac);
      std::vector<Edge> removed(cut);
      for (int k = 0; k < cut; ++k) removed[k] = edges[order[k]];
      current = RemoveEdges(current, removed);
    }

    scores_.assign(view.n, 0.0);
    for (int i = 0; i < view.n; ++i) scores_[i] = -affinity[i];
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeTam(uint64_t seed) {
  return std::make_unique<Tam>(seed);
}

}  // namespace baselines
}  // namespace umgad
