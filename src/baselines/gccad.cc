#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// GCCAD (Chen et al., TKDE'22): graph contrastive coding. Normal nodes
/// (the majority) should embed close to a global context vector; nodes of
/// a corrupted graph (shuffled attributes) should embed far from it. The
/// anomaly score is the node's distance-to-global-context after training.
class Gccad : public BaselineBase {
 public:
  explicit Gccad(uint64_t seed) : BaselineBase("GCCAD", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Corruption: row-shuffled attributes (fixed per fit).
    std::vector<int> perm = rng_.Permutation(view.n);
    Tensor x_corrupt = GatherRows(x, perm);

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::Adam opt(enc.Parameters(), kBaselineLr);
    // 1 x n averaging operator: global readout c = mean_i h_i.
    Tensor avg(1, view.n);
    avg.Fill(1.0f / static_cast<float>(view.n));
    Tensor zeros_n(view.n, kBaselineHidden);

    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
      ag::VarPtr h_bad = enc.Forward(view.norm, ag::Constant(x_corrupt));
      // Per-epoch: tape constants do not survive the epoch Reset().
      ag::VarPtr avg_const = ag::Constant(avg);
      ag::VarPtr context = ag::MatMul(avg_const, h);  // 1 x d
      // Broadcast the context to every row so PairDotBceLoss applies.
      ag::VarPtr context_rows =
          ag::AddRowBroadcast(ag::Constant(zeros_n), context);
      ag::VarPtr loss = ag::Add(
          ag::PairDotBceLoss(h, context_rows,
                             std::vector<float>(view.n, 1.0f)),
          ag::PairDotBceLoss(h_bad, context_rows,
                             std::vector<float>(view.n, 0.0f)));
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    Tensor h = enc.Forward(view.norm, ag::Constant(x))->value();
    Tensor context(1, kBaselineHidden);
    for (int i = 0; i < view.n; ++i) {
      for (int j = 0; j < kBaselineHidden; ++j) {
        context.at(0, j) += h.at(i, j) / static_cast<float>(view.n);
      }
    }
    Tensor context_rows(view.n, kBaselineHidden);
    for (int i = 0; i < view.n; ++i) {
      std::copy(context.row(0), context.row(0) + kBaselineHidden,
                context_rows.row(i));
    }
    std::vector<double> agreement = RowDotSigmoid(h, context_rows);
    scores_.assign(view.n, 0.0);
    for (int i = 0; i < view.n; ++i) scores_[i] = 1.0 - agreement[i];
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeGccad(uint64_t seed) {
  return std::make_unique<Gccad>(seed);
}

}  // namespace baselines
}  // namespace umgad
