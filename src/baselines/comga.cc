#include <unordered_map>

#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {

/// Shared helper: hard community assignment by synchronous label
/// propagation on the flattened graph (used by ComGA's community-aware
/// module and DualGAD's cluster guidance).
std::vector<int> LabelPropagationCommunities(const SparseMatrix& adj,
                                             int rounds, Rng* rng) {
  const int n = adj.rows();
  std::vector<int> label(n);
  for (int i = 0; i < n; ++i) label[i] = i;
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  for (int round = 0; round < rounds; ++round) {
    rng->Shuffle(&order);
    for (int i : order) {
      auto [begin, end] = adj.RowRange(i);
      if (begin == end) continue;
      // Majority label among neighbours (first-seen tie-break).
      std::unordered_map<int, int> counts;
      int best_label = label[i];
      int best_count = 0;
      for (int64_t k = begin; k < end; ++k) {
        const int l = label[adj.col_idx()[k]];
        const int c = ++counts[l];
        if (c > best_count) {
          best_count = c;
          best_label = l;
        }
      }
      label[i] = best_label;
    }
  }
  return label;
}

namespace {

/// ComGA (Luo et al., WSDM'22): community-aware attributed graph anomaly
/// detection. Communities are detected first; the detector then combines a
/// GCN autoencoder's attribute residual with a community-structure signal
/// (fraction of a node's edges that leave its community — ComGA's "local"
/// anomalies break community boundaries).
class ComGa : public BaselineBase {
 public:
  explicit ComGa(uint64_t seed) : BaselineBase("ComGA", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    std::vector<int> community =
        LabelPropagationCommunities(view.adj, /*rounds=*/4, &rng_);
    std::vector<double> cross_fraction(view.n, 0.0);
    for (int i = 0; i < view.n; ++i) {
      auto [begin, end] = view.adj.RowRange(i);
      if (begin == end) continue;
      int cross = 0;
      for (int64_t k = begin; k < end; ++k) {
        if (community[view.adj.col_idx()[k]] != community[i]) ++cross;
      }
      cross_fraction[i] = static_cast<double>(cross) / (end - begin);
    }

    // GCN autoencoder on attributes.
    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kRelu, &rng_);
    nn::SgcConv dec(kBaselineHidden, view.f, 1, nn::Activation::kNone,
                    &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);
    ag::VarPtr recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      recon = dec.Forward(view.norm, enc.Forward(view.norm,
                                                 ag::Constant(x)));
      ag::VarPtr loss = ag::MseLoss(recon, x);
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }
    std::vector<double> attr_err = RowL2(recon->value(), x);

    scores_ = CombineStandardized({attr_err, cross_fraction}, {0.7, 0.3});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeComGa(uint64_t seed) {
  return std::make_unique<ComGa>(seed);
}

}  // namespace baselines
}  // namespace umgad
