#include "baselines/common.h"
#include "core/scorer.h"

namespace umgad {
namespace baselines {
namespace {

/// Radar (Li et al., IJCAI'17): residual analysis for anomaly detection on
/// attributed networks. Anomalies are nodes whose attributes cannot be
/// expressed by their network context — here realised as the residual of
/// iterated neighbourhood smoothing, the closed-form core of Radar's
/// attribute-residual + network-consistency objective. Training-free.
class Radar : public BaselineBase {
 public:
  explicit Radar(uint64_t seed) : BaselineBase("Radar", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Two rounds of Laplacian smoothing approximate the low-rank network
    // representation; the residual R = X - smoothed(X) carries the
    // anomaly signal (||r_i||_2 row norms in the paper).
    Tensor smooth = view.norm->Multiply(x);
    smooth = view.norm->Multiply(smooth);
    std::vector<double> residual = RowL2(x, smooth);

    // Network-consistency term: cosine disagreement with the 1-hop mean.
    std::vector<double> inconsistency =
        RowCosineDistance(x, NeighborMean(view, x));

    scores_ = CombineStandardized({residual, inconsistency}, {0.7, 0.3});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeRadar(uint64_t seed) {
  return std::make_unique<Radar>(seed);
}

}  // namespace baselines
}  // namespace umgad
