#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// ANEMONE (Jin et al., CIKM'21): multi-scale contrastive learning. Two
/// discrimination scales share one encoder: patch level (node vs 1-hop
/// neighbourhood mean) and context level (node vs RWR subgraph). The
/// anomaly score is the statistical combination of the two scales'
/// discrimination gaps.
class Anemone : public BaselineBase {
 public:
  explicit Anemone(uint64_t seed) : BaselineBase("ANEMONE", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::Adam opt(enc.Parameters(), kBaselineLr);
    constexpr int kBatch = 384;
    constexpr int kContextSize = 4;

    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<int> batch = SampleBatch(view.n, kBatch, &rng_);
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
      ag::VarPtr hb = ag::GatherRows(h, batch);
      // Patch scale: 1-hop mean embedding.
      ag::VarPtr patch_all = ag::Spmm(view.row_norm, h);
      ag::VarPtr patch = ag::GatherRows(patch_all, batch);
      // Context scale: RWR subgraph mean embedding.
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, batch, kContextSize, &rng_));
      ag::VarPtr ctx = ag::Spmm(ctx_op, h);
      std::vector<int> perm = rng_.Permutation(static_cast<int>(batch.size()));
      const std::vector<float> ones(batch.size(), 1.0f);
      const std::vector<float> zeros(batch.size(), 0.0f);
      ag::VarPtr loss = ag::AddN(
          {ag::PairDotBceLoss(hb, patch, ones),
           ag::PairDotBceLoss(hb, ag::GatherRows(patch, perm), zeros),
           ag::PairDotBceLoss(hb, ctx, ones),
           ag::PairDotBceLoss(hb, ag::GatherRows(ctx, perm), zeros)});
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    Tensor h = enc.Forward(view.norm, ag::Constant(x))->value();
    Tensor patch = view.row_norm->Multiply(h);
    std::vector<double> patch_gap(view.n, 0.0);
    {
      std::vector<double> pos = RowDotSigmoid(h, patch);
      std::vector<int> perm = rng_.Permutation(view.n);
      std::vector<double> neg = RowDotSigmoid(h, GatherRows(patch, perm));
      for (int i = 0; i < view.n; ++i) patch_gap[i] = neg[i] - pos[i];
    }
    std::vector<double> ctx_gap(view.n, 0.0);
    std::vector<int> all(view.n);
    for (int i = 0; i < view.n; ++i) all[i] = i;
    constexpr int kRounds = 3;
    for (int round = 0; round < kRounds; ++round) {
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, all, kContextSize, &rng_));
      Tensor ctx = ctx_op->Multiply(h);
      std::vector<double> pos = RowDotSigmoid(h, ctx);
      std::vector<int> perm = rng_.Permutation(view.n);
      std::vector<double> neg = RowDotSigmoid(h, GatherRows(ctx, perm));
      for (int i = 0; i < view.n; ++i) {
        ctx_gap[i] += (neg[i] - pos[i]) / kRounds;
      }
    }
    scores_ = CombineStandardized({patch_gap, ctx_gap}, {0.4, 0.6});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeAnemone(uint64_t seed) {
  return std::make_unique<Anemone>(seed);
}

}  // namespace baselines
}  // namespace umgad
