#include <algorithm>

#include "baselines/common.h"
#include "core/scorer.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// ADA-GAD (He et al., AAAI'24): anomaly-denoised autoencoders. Stage one
/// trains a quick autoencoder to produce preliminary anomaly scores and
/// builds a *denoised* graph by dropping the edges incident to the most
/// suspicious nodes; stage two trains the main autoencoder on the denoised
/// graph (so anomalies cannot contaminate the learned normality) and
/// scores nodes on the original graph.
class AdaGad : public BaselineBase {
 public:
  explicit AdaGad(uint64_t seed) : BaselineBase("ADA-GAD", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // --- Stage 1: preliminary scores from a short-trained GAE. ---
    std::vector<double> prelim;
    {
      nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kRelu, &rng_);
      nn::SgcConv dec(kBaselineHidden, view.f, 1, nn::Activation::kNone,
                      &rng_);
      std::vector<ag::VarPtr> params = enc.Parameters();
      for (auto& p : dec.Parameters()) params.push_back(p);
      nn::Adam opt(params, kBaselineLr);
      ag::VarPtr recon;
      const int stage1_epochs = kBaselineEpochs / 3;
      for (int epoch = 0; epoch < stage1_epochs; ++epoch) {
        ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
        opt.ZeroGrad();
        recon = dec.Forward(view.norm,
                            enc.Forward(view.norm, ag::Constant(x)));
        ag::Backward(ag::MseLoss(recon, x));
        opt.Step();
        ++epochs_run_;
      }
      prelim = RowL2(recon->value(), x);
    }

    // --- Denoise: drop edges touching the top-5% suspicious nodes. ---
    std::vector<int> order(view.n);
    for (int i = 0; i < view.n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return prelim[a] > prelim[b]; });
    const int suspicious_count = std::max(1, view.n / 20);
    std::vector<int> suspicious(order.begin(),
                                order.begin() + suspicious_count);
    EdgeMask denoised = RemoveIncidentEdges(view.adj, suspicious);
    auto denoised_norm = std::make_shared<const SparseMatrix>(
        denoised.remaining.NormalizedWithSelfLoops());

    // --- Stage 2: train on the denoised graph, score on the original. ---
    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kRelu, &rng_);
    nn::SgcConv dec(kBaselineHidden, view.f, 1, nn::Activation::kNone,
                    &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      ag::VarPtr recon = dec.Forward(
          denoised_norm, enc.Forward(denoised_norm, ag::Constant(x)));
      ag::Backward(ag::MseLoss(recon, x));
      opt.Step();
      ++epochs_run_;
    }
    // Scoring pass over the *original* graph.
    ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
    ag::VarPtr recon = dec.Forward(view.norm, h);
    std::vector<double> attr_err = RowL2(recon->value(), x);
    std::vector<double> struct_err =
        StructureResidual(view.adj, h->value(), 16, &rng_, false);
    scores_ = CombineStandardized({attr_err, struct_err}, {0.7, 0.3});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeAdaGad(uint64_t seed) {
  return std::make_unique<AdaGad>(seed);
}

}  // namespace baselines
}  // namespace umgad
