#include <cmath>

#include "baselines/common.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace umgad {
namespace baselines {
namespace {

/// GAD-NR (Roy et al., WSDM'24): graph anomaly detection via neighborhood
/// reconstruction. From a node's embedding the model reconstructs its
/// entire neighbourhood: its own attributes, its (log) degree, and the
/// mean of its neighbours' attributes. Anomalies fail one or more of the
/// three reconstructions.
class GadNr : public BaselineBase {
 public:
  explicit GadNr(uint64_t seed) : BaselineBase("GAD-NR", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Targets.
    Tensor log_degree(view.n, 1);
    for (int i = 0; i < view.n; ++i) {
      log_degree.at(i, 0) =
          static_cast<float>(std::log1p(view.adj.RowNnz(i)));
    }
    Tensor nbr_mean = NeighborMean(view, x);

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kRelu, &rng_);
    nn::Linear self_dec(kBaselineHidden, view.f, &rng_);
    nn::Linear degree_dec(kBaselineHidden, 1, &rng_);
    nn::Linear nbr_dec(kBaselineHidden, view.f, &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto* m : std::initializer_list<nn::Module*>{&self_dec, &degree_dec,
                                                      &nbr_dec}) {
      for (auto& p : m->Parameters()) params.push_back(p);
    }
    nn::Adam opt(params, kBaselineLr);

    ag::VarPtr self_recon;
    ag::VarPtr degree_recon;
    ag::VarPtr nbr_recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
      self_recon = self_dec.Forward(h);
      degree_recon = degree_dec.Forward(h);
      nbr_recon = nbr_dec.Forward(h);
      ag::VarPtr loss = ag::AddN({ag::MseLoss(self_recon, x),
                                  ag::MseLoss(degree_recon, log_degree),
                                  ag::MseLoss(nbr_recon, nbr_mean)});
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    std::vector<double> self_err = RowL2(self_recon->value(), x);
    std::vector<double> degree_err = RowL2(degree_recon->value(), log_degree);
    std::vector<double> nbr_err = RowL2(nbr_recon->value(), nbr_mean);
    scores_ = CombineStandardized({self_err, degree_err, nbr_err},
                                  {0.4, 0.2, 0.4});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeGadNr(uint64_t seed) {
  return std::make_unique<GadNr>(seed);
}

}  // namespace baselines
}  // namespace umgad
