#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// Sub-CR (Zhang et al., IJCAI'22): multi-view contrastive learning plus
/// attribute reconstruction. The local view contrasts nodes against RWR
/// subgraphs; the global view contrasts against a graph-diffusion context
/// (two-step propagation); an attribute decoder adds a reconstruction
/// residual. The score sums the contrastive gaps and the residual.
class SubCr : public BaselineBase {
 public:
  explicit SubCr(uint64_t seed) : BaselineBase("Sub-CR", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::SgcConv dec(kBaselineHidden, view.f, 1, nn::Activation::kNone,
                    &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);
    constexpr int kBatch = 384;
    constexpr int kContextSize = 4;

    ag::VarPtr recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<int> batch = SampleBatch(view.n, kBatch, &rng_);
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
      ag::VarPtr hb = ag::GatherRows(h, batch);
      // Local view: RWR context.
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, batch, kContextSize, &rng_));
      ag::VarPtr local = ag::Spmm(ctx_op, h);
      // Global view: two-step diffusion context.
      ag::VarPtr global_all = ag::Spmm(view.norm, ag::Spmm(view.norm, h));
      ag::VarPtr global = ag::GatherRows(global_all, batch);
      std::vector<int> perm = rng_.Permutation(static_cast<int>(batch.size()));
      const std::vector<float> ones(batch.size(), 1.0f);
      const std::vector<float> zeros(batch.size(), 0.0f);
      recon = dec.Forward(view.norm, h);
      ag::VarPtr loss = ag::AddN(
          {ag::PairDotBceLoss(hb, local, ones),
           ag::PairDotBceLoss(hb, ag::GatherRows(local, perm), zeros),
           ag::PairDotBceLoss(hb, global, ones),
           ag::PairDotBceLoss(hb, ag::GatherRows(global, perm), zeros),
           ag::ScalarMul(ag::MseLoss(recon, x), 2.0f)});
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    Tensor h = enc.Forward(view.norm, ag::Constant(x))->value();
    std::vector<double> attr_err = RowL2(recon->value(), x);
    Tensor global = view.norm->Multiply(view.norm->Multiply(h));
    std::vector<double> global_gap(view.n);
    {
      std::vector<double> pos = RowDotSigmoid(h, global);
      std::vector<int> perm = rng_.Permutation(view.n);
      std::vector<double> neg = RowDotSigmoid(h, GatherRows(global, perm));
      for (int i = 0; i < view.n; ++i) global_gap[i] = neg[i] - pos[i];
    }
    std::vector<double> local_gap(view.n, 0.0);
    std::vector<int> all(view.n);
    for (int i = 0; i < view.n; ++i) all[i] = i;
    for (int round = 0; round < 3; ++round) {
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, all, kContextSize, &rng_));
      Tensor local = ctx_op->Multiply(h);
      std::vector<double> pos = RowDotSigmoid(h, local);
      std::vector<int> perm = rng_.Permutation(view.n);
      std::vector<double> neg = RowDotSigmoid(h, GatherRows(local, perm));
      for (int i = 0; i < view.n; ++i) {
        local_gap[i] += (neg[i] - pos[i]) / 3.0;
      }
    }
    scores_ = CombineStandardized({local_gap, global_gap, attr_err},
                                  {0.35, 0.35, 0.3});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeSubCr(uint64_t seed) {
  return std::make_unique<SubCr>(seed);
}

}  // namespace baselines
}  // namespace umgad
