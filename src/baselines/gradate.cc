#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// GRADATE (Duan et al., AAAI'23): multi-scale contrastive learning with an
/// augmented view. Two graph views (original and edge-dropped) share an
/// encoder; training combines node-subgraph contrast within each view and
/// subgraph-subgraph contrast across views. The score blends the in-view
/// discrimination gap with the cross-view context disagreement.
class Gradate : public BaselineBase {
 public:
  explicit Gradate(uint64_t seed) : BaselineBase("GRADATE", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Augmented view: 10% of edges dropped (fixed for the fit).
    EdgeMask dropped = SampleEdgeMask(view.adj, 0.1, &rng_);
    auto norm2 = std::make_shared<const SparseMatrix>(
        dropped.remaining.NormalizedWithSelfLoops());

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::Adam opt(enc.Parameters(), kBaselineLr);
    constexpr int kBatch = 384;
    constexpr int kContextSize = 4;

    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<int> batch = SampleBatch(view.n, kBatch, &rng_);
      ag::VarPtr h1 = enc.Forward(view.norm, ag::Constant(x));
      ag::VarPtr h2 = enc.Forward(norm2, ag::Constant(x));
      ag::VarPtr hb1 = ag::GatherRows(h1, batch);
      auto ctx_sets = RwrContexts(view.adj, batch, kContextSize, &rng_);
      auto ctx_op = BuildContextOperator(view.n, ctx_sets);
      ag::VarPtr ctx1 = ag::Spmm(ctx_op, h1);
      ag::VarPtr ctx2 = ag::Spmm(ctx_op, h2);
      std::vector<int> perm = rng_.Permutation(static_cast<int>(batch.size()));
      const std::vector<float> ones(batch.size(), 1.0f);
      const std::vector<float> zeros(batch.size(), 0.0f);
      ag::VarPtr loss = ag::AddN({
          // Node-subgraph contrast, both views.
          ag::PairDotBceLoss(hb1, ctx1, ones),
          ag::PairDotBceLoss(hb1, ag::GatherRows(ctx1, perm), zeros),
          ag::PairDotBceLoss(ag::GatherRows(h2, batch), ctx2, ones),
          // Subgraph-subgraph contrast across views.
          ag::PairDotBceLoss(ctx1, ctx2, ones),
          ag::PairDotBceLoss(ctx1, ag::GatherRows(ctx2, perm), zeros),
      });
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    Tensor h1 = enc.Forward(view.norm, ag::Constant(x))->value();
    Tensor h2 = enc.Forward(norm2, ag::Constant(x))->value();
    std::vector<int> all(view.n);
    for (int i = 0; i < view.n; ++i) all[i] = i;
    std::vector<double> gap(view.n, 0.0);
    std::vector<double> cross(view.n, 0.0);
    constexpr int kRounds = 3;
    for (int round = 0; round < kRounds; ++round) {
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, all, kContextSize, &rng_));
      Tensor ctx1 = ctx_op->Multiply(h1);
      Tensor ctx2 = ctx_op->Multiply(h2);
      std::vector<double> pos = RowDotSigmoid(h1, ctx1);
      std::vector<int> perm = rng_.Permutation(view.n);
      std::vector<double> neg = RowDotSigmoid(h1, GatherRows(ctx1, perm));
      std::vector<double> disagreement = RowL2(ctx1, ctx2);
      for (int i = 0; i < view.n; ++i) {
        gap[i] += (neg[i] - pos[i]) / kRounds;
        cross[i] += disagreement[i] / kRounds;
      }
    }
    scores_ = CombineStandardized({gap, cross}, {0.6, 0.4});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeGradate(uint64_t seed) {
  return std::make_unique<Gradate>(seed);
}

}  // namespace baselines
}  // namespace umgad
