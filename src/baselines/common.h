#ifndef UMGAD_BASELINES_COMMON_H_
#define UMGAD_BASELINES_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/detector.h"
#include "graph/graph_ops.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace umgad {
namespace baselines {

/// Shared plumbing for baseline detectors: score storage, timing, seeding.
/// Subclasses implement FitImpl and fill scores_.
class BaselineBase : public Detector {
 public:
  explicit BaselineBase(std::string name, uint64_t seed)
      : name_(std::move(name)), seed_(seed) {}

  Status Fit(const MultiplexGraph& graph) final {
    if (graph.num_nodes() < 4) {
      return Status::InvalidArgument("graph too small for " + name_);
    }
    WallTimer timer;
    rng_ = Rng(seed_);
    epochs_run_ = 0;
    Status status = FitImpl(graph);
    // FitImpl has copied everything it needs out of the autograd graph
    // (scores_ etc.); rewind the tape so the next detector starts from an
    // empty transient arena. Training loops inside FitImpl additionally
    // Reset() at the top of every epoch so steady-state epochs reuse the
    // previous step's node slabs and tensor buffers.
    ag::Tape::Global().Reset();
    fit_seconds_ = timer.ElapsedSeconds();
    epoch_seconds_ =
        epochs_run_ > 0 ? fit_seconds_ / static_cast<double>(epochs_run_)
                        : 0.0;
    return status;
  }

  const std::vector<double>& scores() const final { return scores_; }
  std::string name() const final { return name_; }
  double fit_seconds() const final { return fit_seconds_; }
  double epoch_seconds() const final { return epoch_seconds_; }

 protected:
  virtual Status FitImpl(const MultiplexGraph& graph) = 0;

  std::string name_;
  uint64_t seed_;
  Rng rng_{0};
  std::vector<double> scores_;
  int epochs_run_ = 0;

 private:
  double fit_seconds_ = 0.0;
  double epoch_seconds_ = 0.0;
};

/// Flattened single-view working set: the union adjacency, its normalised
/// operator, and handles the single-view baselines share. This is how
/// non-multiplex methods consumed the datasets in the paper's evaluation.
struct SingleView {
  int n = 0;
  int f = 0;
  SparseMatrix adj;
  std::shared_ptr<const SparseMatrix> norm;       // sym-normalised + loops
  std::shared_ptr<const SparseMatrix> row_norm;   // D^-1 A
  explicit SingleView(const MultiplexGraph& graph);
};

/// Mean of neighbour attribute rows (D^-1 A X); isolated nodes get zeros.
Tensor NeighborMean(const SingleView& view, const Tensor& x);

/// Per-node cosine *distance* between x rows and y rows in [0, 2].
std::vector<double> RowCosineDistance(const Tensor& x, const Tensor& y);

/// Per-node L2 distance between rows.
std::vector<double> RowL2(const Tensor& x, const Tensor& y);

/// Weighted sum of standardised components (weights need not sum to 1).
std::vector<double> CombineStandardized(
    const std::vector<std::vector<double>>& parts,
    const std::vector<double>& weights);

/// Number of training epochs all GNN baselines use (comparable to UMGAD's
/// default; Fig. 7 reports per-epoch and total runtime).
inline constexpr int kBaselineEpochs = 60;
inline constexpr float kBaselineLr = 5e-3f;
inline constexpr int kBaselineHidden = 48;

/// Hard community assignment by synchronous label propagation (defined in
/// comga.cc; shared with DualGAD's cluster guidance).
std::vector<int> LabelPropagationCommunities(const SparseMatrix& adj,
                                             int rounds, Rng* rng);

/// Row-stochastic (|sets| x n) operator whose row i averages the rows in
/// sets[i]; Spmm with an embedding matrix yields per-set context vectors.
/// The workhorse of the subgraph-contrastive baselines (CoLA, ANEMONE,
/// GRADATE, ...).
std::shared_ptr<const SparseMatrix> BuildContextOperator(
    int n, const std::vector<std::vector<int>>& sets);

/// sigmoid(a_i . b_i) per row (no gradients; scoring passes).
std::vector<double> RowDotSigmoid(const Tensor& a, const Tensor& b);

/// `count` node ids sampled without replacement (count clamped to n).
std::vector<int> SampleBatch(int n, int count, Rng* rng);

/// RWR contexts of `size` nodes for every node id in `seeds`, excluding the
/// seed itself from its own context when possible.
std::vector<std::vector<int>> RwrContexts(const SparseMatrix& adj,
                                          const std::vector<int>& seeds,
                                          int size, Rng* rng);

}  // namespace baselines
}  // namespace umgad

#endif  // UMGAD_BASELINES_COMMON_H_
