#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// GADAM (Chen et al., ICLR'24): adaptive message passing driven by local
/// inconsistency mining (LIM). The LIM score — a node's disagreement with
/// its neighbourhood — gates how much aggregation each node receives, so
/// anomalies stop smoothing themselves into their neighbourhood; a global
/// branch then measures each (gated) embedding's agreement with the
/// dataset-level context. Scores combine the local and global signals.
class Gadam : public BaselineBase {
 public:
  explicit Gadam(uint64_t seed) : BaselineBase("GADAM", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Local inconsistency mining on raw attributes.
    std::vector<double> lim = RowCosineDistance(x, NeighborMean(view, x));

    // Adaptive messaging: nodes with high LIM keep their own features
    // (gate -> 0), consistent nodes aggregate fully (gate -> 1).
    std::vector<double> lim_01 = lim;
    const auto [mn, mx] = std::minmax_element(lim_01.begin(), lim_01.end());
    const double range = std::max(1e-12, *mx - *mn);
    Tensor gated(view.n, view.f);
    Tensor nbr = NeighborMean(view, x);
    for (int i = 0; i < view.n; ++i) {
      const float gate = static_cast<float>(1.0 - (lim[i] - *mn) / range);
      for (int d = 0; d < view.f; ++d) {
        gated.at(i, d) = gate * nbr.at(i, d) + (1.0f - gate) * x.at(i, d);
      }
    }

    // Global branch: train a GCN so gated embeddings agree with the global
    // context; anomalies end up with low agreement.
    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::Adam opt(enc.Parameters(), kBaselineLr);
    Tensor avg(1, view.n);
    avg.Fill(1.0f / static_cast<float>(view.n));
    Tensor zeros_n(view.n, kBaselineHidden);
    std::vector<int> shuffle = rng_.Permutation(view.n);
    Tensor x_corrupt = GatherRows(gated, shuffle);

    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(gated));
      ag::VarPtr h_bad = enc.Forward(view.norm, ag::Constant(x_corrupt));
      ag::VarPtr ctx_rows = ag::AddRowBroadcast(
          ag::Constant(zeros_n),
          // Per-epoch: tape constants do not survive the epoch Reset().
          ag::MatMul(ag::Constant(avg), h));
      ag::VarPtr loss = ag::Add(
          ag::PairDotBceLoss(h, ctx_rows,
                             std::vector<float>(view.n, 1.0f)),
          ag::PairDotBceLoss(h_bad, ctx_rows,
                             std::vector<float>(view.n, 0.0f)));
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    Tensor h = enc.Forward(view.norm, ag::Constant(gated))->value();
    Tensor ctx_rows(view.n, kBaselineHidden);
    for (int j = 0; j < kBaselineHidden; ++j) {
      double acc = 0.0;
      for (int i = 0; i < view.n; ++i) acc += h.at(i, j);
      const float mean = static_cast<float>(acc / view.n);
      for (int i = 0; i < view.n; ++i) ctx_rows.at(i, j) = mean;
    }
    std::vector<double> agreement = RowDotSigmoid(h, ctx_rows);
    std::vector<double> global(view.n);
    for (int i = 0; i < view.n; ++i) global[i] = 1.0 - agreement[i];

    scores_ = CombineStandardized({lim, global}, {0.5, 0.5});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeGadam(uint64_t seed) {
  return std::make_unique<Gadam>(seed);
}

}  // namespace baselines
}  // namespace umgad
