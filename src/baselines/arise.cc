#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// ARISE (Duan et al., TNNLS'23): graph anomaly detection via substructure
/// awareness. Region-level signal: RWR-sampled substructure density (fraud
/// regions are unusually sparse or dense relative to their nodes'
/// communities); node-level signal: node-subgraph contrast. The score
/// combines the substructure-density deviation with the contrast gap.
class Arise : public BaselineBase {
 public:
  explicit Arise(uint64_t seed) : BaselineBase("ARISE", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Substructure statistic: average internal-density of RWR subgraphs
    // seeded at each node, collected over a few rounds.
    std::vector<double> density(view.n, 0.0);
    std::vector<int> all(view.n);
    for (int i = 0; i < view.n; ++i) all[i] = i;
    constexpr int kDensityRounds = 3;
    constexpr int kSubSize = 6;
    for (int round = 0; round < kDensityRounds; ++round) {
      std::vector<std::vector<int>> subs =
          RwrContexts(view.adj, all, kSubSize, &rng_);
      for (int i = 0; i < view.n; ++i) {
        const auto& s = subs[i];
        if (s.size() < 2) continue;
        int links = 0;
        for (size_t a = 0; a < s.size(); ++a) {
          for (size_t b = a + 1; b < s.size(); ++b) {
            if (view.adj.Has(s[a], s[b])) ++links;
          }
        }
        const double possible = 0.5 * s.size() * (s.size() - 1);
        density[i] += links / possible / kDensityRounds;
      }
    }
    // Deviation from the global mean density (both too-sparse and
    // too-dense substructures are suspicious).
    double mean_density = 0.0;
    for (double d : density) mean_density += d;
    mean_density /= view.n;
    std::vector<double> density_dev(view.n);
    for (int i = 0; i < view.n; ++i) {
      density_dev[i] = std::abs(density[i] - mean_density);
    }

    // Node-subgraph contrast (shared skeleton with CoLA).
    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::Adam opt(enc.Parameters(), kBaselineLr);
    constexpr int kBatch = 384;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<int> batch = SampleBatch(view.n, kBatch, &rng_);
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
      ag::VarPtr hb = ag::GatherRows(h, batch);
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, batch, 4, &rng_));
      ag::VarPtr ctx = ag::Spmm(ctx_op, h);
      std::vector<int> perm = rng_.Permutation(static_cast<int>(batch.size()));
      ag::VarPtr loss = ag::Add(
          ag::PairDotBceLoss(hb, ctx,
                             std::vector<float>(batch.size(), 1.0f)),
          ag::PairDotBceLoss(hb, ag::GatherRows(ctx, perm),
                             std::vector<float>(batch.size(), 0.0f)));
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }
    Tensor h = enc.Forward(view.norm, ag::Constant(x))->value();
    std::vector<double> gap(view.n, 0.0);
    for (int round = 0; round < 3; ++round) {
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, all, 4, &rng_));
      Tensor ctx = ctx_op->Multiply(h);
      std::vector<double> pos = RowDotSigmoid(h, ctx);
      std::vector<int> perm = rng_.Permutation(view.n);
      std::vector<double> neg = RowDotSigmoid(h, GatherRows(ctx, perm));
      for (int i = 0; i < view.n; ++i) gap[i] += (neg[i] - pos[i]) / 3.0;
    }

    scores_ = CombineStandardized({gap, density_dev}, {0.6, 0.4});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeArise(uint64_t seed) {
  return std::make_unique<Arise>(seed);
}

}  // namespace baselines
}  // namespace umgad
