#include "baselines/common.h"
#include "core/scorer.h"
#include "nn/gcn.h"
#include "tensor/init.h"

namespace umgad {
namespace baselines {
namespace {

/// AnomMAN (Chen et al., Information Sciences'23): anomaly detection on
/// multi-view attributed networks. One GCN autoencoder per relation
/// (view); an attention mechanism (learnable simplex weights here) fuses
/// the per-view reconstructions; scores combine the fused attribute
/// residual with the per-view structure residuals. The strongest
/// multiplex-aware baseline besides DualGAD — but it has no masking,
/// no augmented views, and no contrastive refinement.
class AnomMan : public BaselineBase {
 public:
  explicit AnomMan(uint64_t seed) : BaselineBase("AnomMAN", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    const Tensor& x = graph.attributes();
    const int n = graph.num_nodes();
    const int f = graph.feature_dim();
    const int r_count = graph.num_relations();

    std::vector<std::shared_ptr<const SparseMatrix>> norms;
    for (int r = 0; r < r_count; ++r) {
      norms.push_back(std::make_shared<const SparseMatrix>(
          graph.layer(r).NormalizedWithSelfLoops()));
    }

    std::vector<std::unique_ptr<nn::GcnConv>> encoders;
    std::vector<std::unique_ptr<nn::SgcConv>> decoders;
    std::vector<ag::VarPtr> params;
    for (int r = 0; r < r_count; ++r) {
      encoders.push_back(std::make_unique<nn::GcnConv>(
          f, kBaselineHidden, nn::Activation::kRelu, &rng_));
      decoders.push_back(std::make_unique<nn::SgcConv>(
          kBaselineHidden, f, 1, nn::Activation::kNone, &rng_));
      for (auto& p : encoders.back()->Parameters()) params.push_back(p);
      for (auto& p : decoders.back()->Parameters()) params.push_back(p);
    }
    ag::VarPtr attn_logits = ag::Leaf(RandomNormal(1, r_count, 0.0, 0.1,
                                                   &rng_));
    params.push_back(attn_logits);
    nn::Adam opt(params, kBaselineLr);

    ag::VarPtr fused;
    std::vector<ag::VarPtr> embeddings(r_count);
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<ag::VarPtr> recons;
      for (int r = 0; r < r_count; ++r) {
        embeddings[r] = encoders[r]->Forward(norms[r], ag::Constant(x));
        recons.push_back(decoders[r]->Forward(norms[r], embeddings[r]));
      }
      fused = ag::SimplexWeightedSum(recons, attn_logits);
      ag::Backward(ag::MseLoss(fused, x));
      opt.Step();
      ++epochs_run_;
    }

    std::vector<double> attr_err = RowL2(fused->value(), x);
    std::vector<double> struct_err(n, 0.0);
    for (int r = 0; r < r_count; ++r) {
      std::vector<double> res = StructureResidual(
          graph.layer(r), embeddings[r]->value(), 16, &rng_,
          /*degree_normalized=*/false);
      for (int i = 0; i < n; ++i) struct_err[i] += res[i] / r_count;
    }
    scores_ = CombineStandardized({attr_err, struct_err}, {0.7, 0.3});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeAnomMan(uint64_t seed) {
  return std::make_unique<AnomMan>(seed);
}

}  // namespace baselines
}  // namespace umgad
