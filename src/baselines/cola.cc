#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// CoLA (Liu et al., TNNLS'21): contrastive self-supervised anomaly
/// detection via node-vs-local-subgraph instance pairs. A GCN encoder is
/// trained with a dot-product discriminator that scores (node, own RWR
/// subgraph) pairs high and (node, other node's subgraph) pairs low; the
/// anomaly score is the discrimination gap sigma(negative) -
/// sigma(positive) averaged over sampling rounds.
class CoLa : public BaselineBase {
 public:
  explicit CoLa(uint64_t seed) : BaselineBase("CoLA", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kNone, &rng_);
    nn::Adam opt(enc.Parameters(), kBaselineLr);
    constexpr int kBatch = 384;
    constexpr int kContextSize = 4;

    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<int> batch = SampleBatch(view.n, kBatch, &rng_);
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, batch, kContextSize, &rng_));
      ag::VarPtr h = enc.Forward(view.norm, ag::Constant(x));
      ag::VarPtr hb = ag::GatherRows(h, batch);
      ag::VarPtr ctx = ag::Spmm(ctx_op, h);
      std::vector<int> perm = rng_.Permutation(static_cast<int>(batch.size()));
      ag::VarPtr neg_ctx = ag::GatherRows(ctx, perm);
      ag::VarPtr loss = ag::Add(
          ag::PairDotBceLoss(hb, ctx,
                             std::vector<float>(batch.size(), 1.0f)),
          ag::PairDotBceLoss(hb, neg_ctx,
                             std::vector<float>(batch.size(), 0.0f)));
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    // Scoring: multi-round discrimination gap over all nodes.
    Tensor h = enc.Forward(view.norm, ag::Constant(x))->value();
    std::vector<int> all = AllNodesVec(view.n);
    scores_.assign(view.n, 0.0);
    constexpr int kRounds = 4;
    for (int round = 0; round < kRounds; ++round) {
      auto ctx_op = BuildContextOperator(
          view.n, RwrContexts(view.adj, all, kContextSize, &rng_));
      Tensor ctx = ctx_op->Multiply(h);
      std::vector<int> perm = rng_.Permutation(view.n);
      Tensor neg = GatherRows(ctx, perm);
      std::vector<double> pos_p = RowDotSigmoid(h, ctx);
      std::vector<double> neg_p = RowDotSigmoid(h, neg);
      for (int i = 0; i < view.n; ++i) {
        scores_[i] += (neg_p[i] - pos_p[i]) / kRounds;
      }
    }
    return Status::OK();
  }

 private:
  static std::vector<int> AllNodesVec(int n) {
    std::vector<int> v(n);
    for (int i = 0; i < n; ++i) v[i] = i;
    return v;
  }
};

}  // namespace

std::unique_ptr<Detector> MakeCoLa(uint64_t seed) {
  return std::make_unique<CoLa>(seed);
}

}  // namespace baselines
}  // namespace umgad
