#include "baselines/common.h"
#include "nn/linear.h"

namespace umgad {
namespace baselines {
namespace {

/// VGOD (Huang et al., ICDE'23): variance-based graph outlier detection.
/// Structural outliers are nodes whose neighbourhood embeddings have
/// abnormal variance (they sit between communities); attribute outliers
/// are caught by a lightweight attribute autoencoder. The two detectors
/// are normalised and summed — the paper's "balanced" combination.
class Vgod : public BaselineBase {
 public:
  explicit Vgod(uint64_t seed) : BaselineBase("VGOD", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Variance branch: per-node variance of neighbour attributes around
    // their mean, plus the node's deviation from that mean.
    Tensor mean = NeighborMean(view, x);
    std::vector<double> variance(view.n, 0.0);
    const auto& rp = view.adj.row_ptr();
    const auto& ci = view.adj.col_idx();
    for (int i = 0; i < view.n; ++i) {
      const int degree = view.adj.RowNnz(i);
      if (degree == 0) continue;
      double acc = 0.0;
      for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
        const int j = ci[k];
        for (int d = 0; d < view.f; ++d) {
          const double diff = x.at(j, d) - mean.at(i, d);
          acc += diff * diff;
        }
      }
      variance[i] = acc / degree;
    }
    std::vector<double> deviation = RowL2(x, mean);

    // Attribute reconstruction branch: linear autoencoder.
    // A genuine bottleneck, or the AE learns the identity map.
    const int bottleneck = std::max(2, view.f / 4);
    nn::Linear enc(view.f, bottleneck, &rng_);
    nn::Linear dec(bottleneck, view.f, &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);
    ag::VarPtr recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      recon = dec.Forward(ag::Relu(enc.Forward(ag::Constant(x))));
      ag::Backward(ag::MseLoss(recon, x));
      opt.Step();
      ++epochs_run_;
    }
    std::vector<double> attr_err = RowL2(recon->value(), x);

    scores_ = CombineStandardized({variance, deviation, attr_err},
                                  {0.35, 0.35, 0.3});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeVgod(uint64_t seed) {
  return std::make_unique<Vgod>(seed);
}

}  // namespace baselines
}  // namespace umgad
