#include "baselines/common.h"
#include "core/scorer.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// DOMINANT (Ding et al., SDM'19): deep anomaly detection on attributed
/// networks. A shared GCN encoder feeds two decoders — an attribute
/// decoder (GCN back to feature space) and a structure decoder (inner
/// product over embeddings, trained with sampled edge BCE). The score is
/// the paper's alpha-weighted sum of both residuals.
class Dominant : public BaselineBase {
 public:
  explicit Dominant(uint64_t seed) : BaselineBase("DOMINANT", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kRelu, &rng_);
    nn::SgcConv dec(kBaselineHidden, view.f, 1, nn::Activation::kNone,
                    &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);

    std::vector<Edge> edges;
    const auto& rp = view.adj.row_ptr();
    const auto& ci = view.adj.col_idx();
    for (int i = 0; i < view.n; ++i) {
      for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (i < ci[k]) edges.push_back(Edge{i, ci[k]});
      }
    }

    ag::VarPtr h;
    ag::VarPtr recon;
    constexpr int kEdgeBatch = 1024;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      h = enc.Forward(view.norm, ag::Constant(x));
      recon = dec.Forward(view.norm, h);
      // Structure decoder: sampled positive edges + uniform negatives.
      const int batch =
          std::min<int>(kEdgeBatch, static_cast<int>(edges.size()));
      std::vector<int> pick = rng_.SampleWithoutReplacement(
          static_cast<int>(edges.size()), batch);
      std::vector<int> src;
      std::vector<int> dst;
      std::vector<float> labels;
      for (int e : pick) {
        src.push_back(edges[e].src);
        dst.push_back(edges[e].dst);
        labels.push_back(1.0f);
        src.push_back(static_cast<int>(rng_.UniformInt(view.n)));
        dst.push_back(static_cast<int>(rng_.UniformInt(view.n)));
        labels.push_back(0.0f);
      }
      ag::VarPtr struct_loss = ag::PairDotBceLoss(
          ag::GatherRows(h, src), ag::GatherRows(h, dst), labels);
      ag::VarPtr loss = ag::Add(
          ag::ScalarMul(ag::MseLoss(recon, x), 0.8f),
          ag::ScalarMul(struct_loss, 0.2f));
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    std::vector<double> attr_err = RowL2(recon->value(), x);
    std::vector<double> struct_err =
        StructureResidual(view.adj, h->value(), 16, &rng_, false);
    scores_ = CombineStandardized({attr_err, struct_err}, {0.8, 0.2});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeDominant(uint64_t seed) {
  return std::make_unique<Dominant>(seed);
}

}  // namespace baselines
}  // namespace umgad
