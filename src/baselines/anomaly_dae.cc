#include "baselines/common.h"
#include "core/scorer.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace umgad {
namespace baselines {
namespace {

/// AnomalyDAE (Fan et al., ICASSP'20): dual autoencoders. The structure AE
/// embeds nodes with a GCN and reconstructs edges by inner product; the
/// attribute AE is a plain MLP autoencoder on the feature matrix. Both
/// residuals are combined with the paper's fixed balance weight.
class AnomalyDae : public BaselineBase {
 public:
  explicit AnomalyDae(uint64_t seed) : BaselineBase("AnomalyDAE", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Structure AE.
    nn::GcnConv struct_enc(view.f, kBaselineHidden, nn::Activation::kRelu,
                           &rng_);
    // Attribute AE (no propagation — pure MLP, per the paper's design).
    // Must be a genuine bottleneck or it learns the identity map and
    // reconstructs anomalies as well as normal nodes.
    const int bottleneck = std::max(2, view.f / 4);
    nn::Linear attr_enc(view.f, bottleneck, &rng_);
    nn::Linear attr_dec(bottleneck, view.f, &rng_);

    std::vector<ag::VarPtr> params = struct_enc.Parameters();
    for (auto& p : attr_enc.Parameters()) params.push_back(p);
    for (auto& p : attr_dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);

    std::vector<Edge> edges;
    const auto& rp = view.adj.row_ptr();
    const auto& ci = view.adj.col_idx();
    for (int i = 0; i < view.n; ++i) {
      for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (i < ci[k]) edges.push_back(Edge{i, ci[k]});
      }
    }

    ag::VarPtr h;
    ag::VarPtr recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      h = struct_enc.Forward(view.norm, ag::Constant(x));
      recon = attr_dec.Forward(ag::Relu(attr_enc.Forward(ag::Constant(x))));
      const int batch = std::min<int>(1024, static_cast<int>(edges.size()));
      std::vector<int> pick = rng_.SampleWithoutReplacement(
          static_cast<int>(edges.size()), batch);
      std::vector<int> src;
      std::vector<int> dst;
      std::vector<float> labels;
      for (int e : pick) {
        src.push_back(edges[e].src);
        dst.push_back(edges[e].dst);
        labels.push_back(1.0f);
        src.push_back(static_cast<int>(rng_.UniformInt(view.n)));
        dst.push_back(static_cast<int>(rng_.UniformInt(view.n)));
        labels.push_back(0.0f);
      }
      ag::VarPtr loss = ag::Add(
          ag::PairDotBceLoss(ag::GatherRows(h, src),
                             ag::GatherRows(h, dst), labels),
          ag::MseLoss(recon, x));
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    std::vector<double> struct_err =
        StructureResidual(view.adj, h->value(), 16, &rng_, false);
    std::vector<double> attr_err = RowL2(recon->value(), x);
    // The paper's alpha leans on the attribute residual; the raw
    // structure residual is hub-biased and only supplements it.
    scores_ = CombineStandardized({struct_err, attr_err}, {0.3, 0.7});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeAnomalyDae(uint64_t seed) {
  return std::make_unique<AnomalyDae>(seed);
}

}  // namespace baselines
}  // namespace umgad
