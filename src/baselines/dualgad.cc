#include <unordered_map>

#include "baselines/common.h"
#include "core/masking.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// DualGAD (Tang et al., Information Sciences'24): dual-bootstrapped
/// self-supervised learning. A generative module reconstructs masked
/// subgraphs (attributes of RWR-masked node sets); a cluster-guided
/// contrastive module pulls node embeddings toward their cluster centroid
/// and away from other centroids, attacking feature-structure
/// inconsistency. Runs per relation with uniform fusion — the second
/// multiplex-aware baseline.
class DualGad : public BaselineBase {
 public:
  explicit DualGad(uint64_t seed) : BaselineBase("DualGAD", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();
    const int n = view.n;
    const int r_count = graph.num_relations();

    // Cluster guidance from label propagation on the flattened graph.
    std::vector<int> cluster =
        LabelPropagationCommunities(view.adj, 4, &rng_);
    // Remap cluster labels to dense ids.
    std::unordered_map<int, int> remap;
    for (int& c : cluster) {
      auto [it, inserted] = remap.emplace(c, static_cast<int>(remap.size()));
      c = it->second;
    }
    const int num_clusters = static_cast<int>(remap.size());
    std::vector<std::vector<int>> members(num_clusters);
    for (int i = 0; i < n; ++i) members[cluster[i]].push_back(i);
    auto centroid_op = BuildContextOperator(n, members);

    std::vector<std::shared_ptr<const SparseMatrix>> norms;
    for (int r = 0; r < r_count; ++r) {
      norms.push_back(std::make_shared<const SparseMatrix>(
          graph.layer(r).NormalizedWithSelfLoops()));
    }

    std::vector<std::unique_ptr<nn::GcnConv>> encoders;
    std::vector<std::unique_ptr<nn::SgcConv>> decoders;
    std::vector<ag::VarPtr> params;
    for (int r = 0; r < r_count; ++r) {
      encoders.push_back(std::make_unique<nn::GcnConv>(
          view.f, kBaselineHidden, nn::Activation::kRelu, &rng_));
      decoders.push_back(std::make_unique<nn::SgcConv>(
          kBaselineHidden, view.f, 1, nn::Activation::kNone, &rng_));
      for (auto& p : encoders.back()->Parameters()) params.push_back(p);
      for (auto& p : decoders.back()->Parameters()) params.push_back(p);
    }
    nn::Adam opt(params, kBaselineLr);

    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      std::vector<ag::VarPtr> terms;
      for (int r = 0; r < r_count; ++r) {
        // Generative: reconstruct attributes of RWR-masked subgraphs.
        SubgraphMask mask =
            MakeSubgraphMask(graph.layer(r), 6, 8, 0.3, &rng_);
        auto op = std::make_shared<const SparseMatrix>(
            mask.remaining.NormalizedWithSelfLoops());
        ag::VarPtr h = encoders[r]->Forward(op, ag::Constant(x));
        ag::VarPtr recon = decoders[r]->Forward(op, h);
        if (!mask.masked_nodes.empty()) {
          terms.push_back(ag::MseLoss(recon, x, mask.masked_nodes));
        }
        // Cluster-guided contrast on the full relation graph.
        ag::VarPtr h_full = encoders[r]->Forward(norms[r], ag::Constant(x));
        ag::VarPtr centroids = ag::Spmm(centroid_op, h_full);
        ag::VarPtr own = ag::GatherRows(centroids, cluster);
        std::vector<int> wrong(n);
        for (int i = 0; i < n; ++i) {
          int c = static_cast<int>(rng_.UniformInt(num_clusters));
          if (num_clusters > 1 && c == cluster[i]) {
            c = (c + 1) % num_clusters;
          }
          wrong[i] = c;
        }
        ag::VarPtr other = ag::GatherRows(centroids, wrong);
        terms.push_back(ag::ScalarMul(
            ag::Add(ag::PairDotBceLoss(h_full, own,
                                       std::vector<float>(n, 1.0f)),
                    ag::PairDotBceLoss(h_full, other,
                                       std::vector<float>(n, 0.0f))),
            0.5f));
      }
      ag::Backward(ag::AddN(terms));
      opt.Step();
      ++epochs_run_;
    }

    // Scores: per-relation attribute residual + cluster disagreement,
    // uniformly fused.
    std::vector<double> attr_err(n, 0.0);
    std::vector<double> cluster_gap(n, 0.0);
    for (int r = 0; r < r_count; ++r) {
      ag::VarPtr h = encoders[r]->Forward(norms[r], ag::Constant(x));
      ag::VarPtr recon = decoders[r]->Forward(norms[r], h);
      std::vector<double> err = RowL2(recon->value(), x);
      Tensor centroids = centroid_op->Multiply(h->value());
      Tensor own = GatherRows(centroids, cluster);
      std::vector<double> agreement = RowDotSigmoid(h->value(), own);
      for (int i = 0; i < n; ++i) {
        attr_err[i] += err[i] / r_count;
        cluster_gap[i] += (1.0 - agreement[i]) / r_count;
      }
    }
    scores_ = CombineStandardized({attr_err, cluster_gap}, {0.6, 0.4});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeDualGad(uint64_t seed) {
  return std::make_unique<DualGad>(seed);
}

}  // namespace baselines
}  // namespace umgad
