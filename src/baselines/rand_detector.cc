#include "baselines/common.h"
#include "nn/gcn.h"

namespace umgad {
namespace baselines {
namespace {

/// RAND (Bei et al., ICDM'23): reinforced neighbourhood selection for
/// unsupervised graph anomaly detection. The agent's learned policy boils
/// down to keeping reliable neighbours and down-weighting unreliable ones;
/// here reliability is the attribute affinity of an edge's endpoints, the
/// bottom fraction of edges is pruned, and a GCN autoencoder reconstructs
/// attributes over the amplified (reliable) graph.
class RandDetector : public BaselineBase {
 public:
  explicit RandDetector(uint64_t seed) : BaselineBase("RAND", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();

    // Neighbourhood selection: score each undirected edge by endpoint
    // cosine affinity, prune the bottom 30%.
    std::vector<Edge> edges;
    std::vector<double> affinity;
    const auto& rp = view.adj.row_ptr();
    const auto& ci = view.adj.col_idx();
    for (int i = 0; i < view.n; ++i) {
      for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (i < ci[k]) {
          edges.push_back(Edge{i, ci[k]});
          const double denom = x.RowNorm(i) * x.RowNorm(ci[k]);
          affinity.push_back(
              denom > 1e-12 ? x.RowDot(i, x, ci[k]) / denom : 0.0);
        }
      }
    }
    std::vector<int> order(edges.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return affinity[a] < affinity[b]; });
    const int prune = static_cast<int>(edges.size() * 0.3);
    std::vector<Edge> pruned(prune);
    for (int k = 0; k < prune; ++k) pruned[k] = edges[order[k]];
    // Per-node fraction of pruned (unreliable) incident edges: RAND's
    // reliability signal.
    std::vector<double> unreliable(view.n, 0.0);
    for (const Edge& e : pruned) {
      unreliable[e.src] += 1.0;
      unreliable[e.dst] += 1.0;
    }
    for (int i = 0; i < view.n; ++i) {
      const int degree = view.adj.RowNnz(i);
      if (degree > 0) unreliable[i] /= degree;
    }

    SparseMatrix reliable = RemoveEdges(view.adj, pruned);
    auto reliable_norm = std::make_shared<const SparseMatrix>(
        reliable.NormalizedWithSelfLoops());

    nn::GcnConv enc(view.f, kBaselineHidden, nn::Activation::kRelu, &rng_);
    nn::SgcConv dec(kBaselineHidden, view.f, 1, nn::Activation::kNone,
                    &rng_);
    std::vector<ag::VarPtr> params = enc.Parameters();
    for (auto& p : dec.Parameters()) params.push_back(p);
    nn::Adam opt(params, kBaselineLr);
    ag::VarPtr recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      recon = dec.Forward(reliable_norm,
                          enc.Forward(reliable_norm, ag::Constant(x)));
      ag::Backward(ag::MseLoss(recon, x));
      opt.Step();
      ++epochs_run_;
    }
    std::vector<double> attr_err = RowL2(recon->value(), x);

    scores_ = CombineStandardized({attr_err, unreliable}, {0.7, 0.3});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeRand(uint64_t seed) {
  return std::make_unique<RandDetector>(seed);
}

}  // namespace baselines
}  // namespace umgad
