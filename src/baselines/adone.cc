#include "baselines/common.h"
#include "nn/linear.h"

namespace umgad {
namespace baselines {
namespace {

/// AdONE (Bandyopadhyay et al., WSDM'20): outlier-resistant embeddings via
/// two aligned autoencoders — one over structure (here: the propagated
/// attribute signal, a linear AE over A-hat X) and one over attributes —
/// with an alignment term that makes the two embeddings agree for normal
/// nodes. Scores combine both reconstruction errors with the
/// embedding-disagreement (the adversarial alignment signal).
class Adone : public BaselineBase {
 public:
  explicit Adone(uint64_t seed) : BaselineBase("AdONE", seed) {}

 protected:
  Status FitImpl(const MultiplexGraph& graph) override {
    SingleView view(graph);
    const Tensor& x = graph.attributes();
    const Tensor structure_signal = view.norm->Multiply(
        view.norm->Multiply(x));  // 2-hop propagated signal

    // Genuine bottlenecks, or the AEs learn identity maps.
    const int bottleneck = std::max(2, view.f / 4);
    nn::Linear attr_enc(view.f, bottleneck, &rng_);
    nn::Linear attr_dec(bottleneck, view.f, &rng_);
    nn::Linear struct_enc(view.f, bottleneck, &rng_);
    nn::Linear struct_dec(bottleneck, view.f, &rng_);
    std::vector<ag::VarPtr> params;
    for (auto* m : std::initializer_list<nn::Module*>{
             &attr_enc, &attr_dec, &struct_enc, &struct_dec}) {
      for (auto& p : m->Parameters()) params.push_back(p);
    }
    nn::Adam opt(params, kBaselineLr);

    ag::VarPtr za;
    ag::VarPtr zs;
    ag::VarPtr attr_recon;
    ag::VarPtr struct_recon;
    for (int epoch = 0; epoch < kBaselineEpochs; ++epoch) {
      ag::Tape::Global().Reset();  // reuse last epoch's slabs + buffers
      opt.ZeroGrad();
      za = ag::Relu(attr_enc.Forward(ag::Constant(x)));
      zs = ag::Relu(struct_enc.Forward(ag::Constant(structure_signal)));
      attr_recon = attr_dec.Forward(za);
      struct_recon = struct_dec.Forward(zs);
      ag::VarPtr align = ag::MseLoss(za, zs->value());
      ag::VarPtr loss = ag::AddN({ag::MseLoss(attr_recon, x),
                                  ag::MseLoss(struct_recon, structure_signal),
                                  ag::ScalarMul(align, 0.5f)});
      ag::Backward(loss);
      opt.Step();
      ++epochs_run_;
    }

    std::vector<double> attr_err = RowL2(attr_recon->value(), x);
    std::vector<double> struct_err =
        RowL2(struct_recon->value(), structure_signal);
    std::vector<double> disagreement = RowL2(za->value(), zs->value());
    scores_ = CombineStandardized({attr_err, struct_err, disagreement},
                                  {0.4, 0.4, 0.2});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Detector> MakeAdone(uint64_t seed) {
  return std::make_unique<Adone>(seed);
}

}  // namespace baselines
}  // namespace umgad
