#include "graph/partition/partitioner.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "graph/io/io_limits.h"

namespace umgad {

namespace {

/// splitmix64 finaliser: the DBH vertex hash. Statistically uniform over
/// blocks for any block count, unlike `id % P` which would alias the
/// generators' id structure.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Total degree per vertex across all relations (stored CSR entries).
std::vector<int64_t> TotalDegrees(const MultiplexGraph& graph) {
  std::vector<int64_t> deg(graph.num_nodes(), 0);
  for (int r = 0; r < graph.num_relations(); ++r) {
    const SparseMatrix& layer = graph.layer(r);
    for (int i = 0; i < layer.rows(); ++i) deg[i] += layer.RowNnz(i);
  }
  return deg;
}

}  // namespace

Result<VertexPartition> PartitionGraph(const MultiplexGraph& graph,
                                       const PartitionOptions& options) {
  const int n = graph.num_nodes();
  const int p = options.num_blocks;
  if (p < 1) {
    return Status::InvalidArgument("partition needs at least one block");
  }
  if (p > io_limits::kMaxPartitions) {
    return Status::InvalidArgument(
        StrFormat("%d partitions exceeds the cap of %lld", p,
                  static_cast<long long>(io_limits::kMaxPartitions)));
  }
  // Shared overflow-guarded size check (io_limits.h): the per-vertex x
  // per-block incidence counters are the partitioner's only superlinear
  // allocation.
  const int64_t counter_entries =
      io_limits::CheckedElemCount(n, p, io_limits::kMaxAttributeEntries);
  if (counter_entries < 0) {
    return Status::InvalidArgument(
        StrFormat("partition bookkeeping overflows: %d vertices x %d blocks",
                  n, p));
  }

  const std::vector<int64_t> deg = TotalDegrees(graph);
  // counts[v * p + b]: stored entries incident to v that landed in block b.
  std::vector<int32_t> counts(static_cast<size_t>(counter_entries), 0);
  std::vector<int64_t> load(p, 0);  // entries per block
  int64_t total_edges = 0;

  // One deterministic serial pass over every relation's stored entries in
  // (relation, row, column) order. Exact degrees are already materialised,
  // so the heuristics run in their "streaming" form at one-pass cost
  // without the approximation.
  const bool hdrf = options.method == PartitionMethod::kHdrf;
  int64_t max_load = 0;
  int64_t min_load = 0;  // maintained only for HDRF's balance term
  std::vector<double> score(p, 0.0);
  for (int r = 0; r < graph.num_relations(); ++r) {
    const SparseMatrix& layer = graph.layer(r);
    const auto& row_ptr = layer.row_ptr();
    const auto& cols = layer.col_idx();
    for (int u = 0; u < layer.rows(); ++u) {
      for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
        const int v = cols[k];
        int b = 0;
        if (!hdrf) {
          // DBH: hash the lower-degree endpoint (replicate the hub);
          // lowest id breaks degree ties so (u,v) and (v,u) agree.
          const int anchor = deg[u] < deg[v]          ? u
                             : deg[v] < deg[u]        ? v
                             : std::min(u, v);
          b = static_cast<int>(
              Mix64(static_cast<uint64_t>(anchor) ^ options.seed) %
              static_cast<uint64_t>(p));
        } else if (p > 1) {
          // HDRF greedy score: replication term g(u,b) + g(v,b) with the
          // degree-normalised preference for replicating the higher-degree
          // endpoint, plus the lambda-weighted balance term. Highest score
          // wins, lowest block id on ties — fully deterministic.
          const double du = static_cast<double>(deg[u]);
          const double dv = static_cast<double>(deg[v]);
          const double theta_u = du / std::max(1.0, du + dv);
          const double theta_v = 1.0 - theta_u;
          const double spread =
              static_cast<double>(max_load - min_load) + 1.0;
          double best = -1.0;
          for (int c = 0; c < p; ++c) {
            double s = 0.0;
            if (counts[static_cast<size_t>(u) * p + c] > 0) {
              s += 1.0 + (1.0 - theta_u);
            }
            if (counts[static_cast<size_t>(v) * p + c] > 0) {
              s += 1.0 + (1.0 - theta_v);
            }
            s += options.hdrf_lambda *
                 (static_cast<double>(max_load - load[c]) / spread);
            score[c] = s;
            if (s > best) best = s;
          }
          for (int c = 0; c < p; ++c) {
            if (score[c] == best) {
              b = c;
              break;
            }
          }
        }
        ++counts[static_cast<size_t>(u) * p + b];
        ++counts[static_cast<size_t>(v) * p + b];
        ++load[b];
        ++total_edges;
        if (load[b] > max_load) max_load = load[b];
        if (hdrf) min_load = *std::min_element(load.begin(), load.end());
      }
    }
  }

  // Derive whole-row ownership: plurality block per vertex, lowest block
  // on ties, v % p for isolated vertices (deterministic spread).
  auto blocks = std::make_shared<RowBlocks>();
  blocks->num_blocks = p;
  blocks->block_of.resize(n);
  double replicated = 0.0;
  int64_t non_isolated = 0;
  for (int v = 0; v < n; ++v) {
    const int32_t* row = counts.data() + static_cast<size_t>(v) * p;
    int owner = -1;
    int32_t best = 0;
    int distinct = 0;
    for (int b = 0; b < p; ++b) {
      if (row[b] > 0) ++distinct;
      if (row[b] > best) {
        best = row[b];
        owner = b;
      }
    }
    if (owner < 0) {
      owner = v % p;
    } else {
      replicated += distinct;
      ++non_isolated;
    }
    blocks->block_of[v] = owner;
  }
  // Counting-sort vertices by block; ascending id within each block.
  blocks->block_ptr.assign(p + 1, 0);
  for (int v = 0; v < n; ++v) ++blocks->block_ptr[blocks->block_of[v] + 1];
  for (int b = 0; b < p; ++b) blocks->block_ptr[b + 1] += blocks->block_ptr[b];
  blocks->order.resize(n);
  {
    std::vector<int64_t> fill(blocks->block_ptr.begin(),
                              blocks->block_ptr.end() - 1);
    for (int v = 0; v < n; ++v) {
      blocks->order[fill[blocks->block_of[v]]++] = v;
    }
  }

  VertexPartition out;
  out.stats.num_blocks = p;
  out.stats.total_edges = total_edges;
  out.stats.replication_factor =
      non_isolated > 0 ? replicated / static_cast<double>(non_isolated) : 0.0;
  const double mean_load =
      total_edges > 0 ? static_cast<double>(total_edges) / p : 0.0;
  out.stats.max_block_edges =
      *std::max_element(load.begin(), load.end());
  out.stats.edge_balance =
      mean_load > 0.0 ? static_cast<double>(out.stats.max_block_edges) /
                            mean_load
                      : 1.0;
  int64_t max_rows = 0;
  for (int b = 0; b < p; ++b) {
    max_rows = std::max<int64_t>(
        max_rows, blocks->block_ptr[b + 1] - blocks->block_ptr[b]);
  }
  out.stats.row_balance =
      n > 0 ? static_cast<double>(max_rows) * p / n : 1.0;
  out.blocks = std::move(blocks);
  return out;
}

int64_t PartitionedCsr::MaxWorkingSetBytes(int feature_dim) const {
  int64_t max_locals = 0;
  for (const Block& b : blocks) {
    max_locals = std::max<int64_t>(max_locals,
                                   static_cast<int64_t>(b.locals.size()));
  }
  return max_locals * feature_dim * static_cast<int64_t>(sizeof(float));
}

Result<PartitionedCsr> BuildPartitionedCsr(const SparseMatrix& adj,
                                           const RowBlocks& blocks) {
  const int n = adj.rows();
  if (adj.cols() != n ||
      static_cast<int64_t>(blocks.block_of.size()) != n ||
      blocks.num_blocks < 1) {
    return Status::InvalidArgument(
        "partition schedule does not cover the adjacency");
  }
  const int p = blocks.num_blocks;
  PartitionedCsr out;
  out.blocks.resize(p);
  // Per-block build; `local_of` is one n-sized scratch reused across
  // blocks (reset after each block via the block's own `locals` list).
  std::vector<int> local_of(n, -1);
  std::vector<int> touched;
  int64_t total_locals = 0;
  const auto& row_ptr = adj.row_ptr();
  const auto& cols = adj.col_idx();
  const auto& values = adj.values();
  for (int b = 0; b < p; ++b) {
    PartitionedCsr::Block& block = out.blocks[b];
    const int64_t begin = blocks.block_ptr[b];
    const int64_t end = blocks.block_ptr[b + 1];
    block.rows.assign(blocks.order.begin() + begin,
                      blocks.order.begin() + end);
    // Owned vertices take the first local ids, ascending (block order is
    // ascending within a block by construction).
    block.locals = block.rows;
    block.num_owned = static_cast<int>(block.rows.size());
    for (int i = 0; i < block.num_owned; ++i) local_of[block.locals[i]] = i;
    // Ghosts: referenced columns owned elsewhere, ascending in global id.
    touched.clear();
    for (int gr : block.rows) {
      for (int64_t k = row_ptr[gr]; k < row_ptr[gr + 1]; ++k) {
        const int c = cols[k];
        if (local_of[c] == -1) {
          local_of[c] = -2;  // seen ghost; local id assigned after sort
          touched.push_back(c);
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int c : touched) {
      local_of[c] = static_cast<int>(block.locals.size());
      block.locals.push_back(c);
    }
    // Sub-CSR: rows in block order, entries in the original column order.
    block.row_ptr.assign(block.rows.size() + 1, 0);
    int64_t nnz = 0;
    for (size_t i = 0; i < block.rows.size(); ++i) {
      nnz += row_ptr[block.rows[i] + 1] - row_ptr[block.rows[i]];
      block.row_ptr[i + 1] = nnz;
    }
    block.col_idx.reserve(nnz);
    block.values.reserve(nnz);
    for (int gr : block.rows) {
      for (int64_t k = row_ptr[gr]; k < row_ptr[gr + 1]; ++k) {
        block.col_idx.push_back(local_of[cols[k]]);
        block.values.push_back(values[k]);
      }
    }
    total_locals += static_cast<int64_t>(block.locals.size());
    // Reset the scratch for the next block.
    for (int v : block.locals) local_of[v] = -1;
  }
  out.replication_factor =
      n > 0 ? static_cast<double>(total_locals) / n : 0.0;
  return out;
}

int ResolvePartitionCount(int configured) {
  if (configured > 0) return configured;
  const char* env = std::getenv("UMGAD_PARTITIONS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 0;
  return static_cast<int>(v);
}

PartitionMethod ResolvePartitionMethod(PartitionMethod configured) {
  const char* env = std::getenv("UMGAD_PARTITION_METHOD");
  if (env == nullptr) return configured;
  if (std::strcmp(env, "dbh") == 0) return PartitionMethod::kDbh;
  if (std::strcmp(env, "hdrf") == 0) return PartitionMethod::kHdrf;
  return configured;
}

const char* PartitionMethodName(PartitionMethod method) {
  return method == PartitionMethod::kHdrf ? "hdrf" : "dbh";
}

}  // namespace umgad
