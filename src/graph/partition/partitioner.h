#ifndef UMGAD_GRAPH_PARTITION_PARTITIONER_H_
#define UMGAD_GRAPH_PARTITION_PARTITIONER_H_

// Cache-blocked graph partitioning for thread-affine training.
//
// UMGAD trains over every relation's full CSR on every epoch and masking
// repeat, so the SpMM / edge-softmax / loss-scatter hot loops stream the
// whole feature matrix through cache K x R times per epoch. This subsystem
// shards the *vertex set* into P cache-sized blocks, derived from a
// one-pass streaming **edge** partition (DBH or HDRF) over all relations
// at once:
//
//   1. stream every stored CSR entry of every relation, assigning it a
//      block with the chosen heuristic (exact degrees are available — the
//      CSR is already materialised — so "streaming" buys one-pass cost,
//      not approximation);
//   2. derive whole-row vertex ownership: owner(v) is the block holding
//      the plurality of v's incident entries (lowest block on ties,
//      v % P for isolated vertices), so every CSR row stays intact in
//      one block;
//   3. publish the ownership as a tensor-layer RowBlocks schedule
//      (tensor/sparse.h) that the hot kernels iterate block-affinely.
//
// Deriving *row* ownership from the *edge* partition is the move that
// squares cache blocking with this repo's bit-identity contract: a true
// edge partition would split rows across blocks and merge per-block
// partial sums — a different float accumulation order than the flat
// engine. Whole rows keep every per-row reduction in its serial order, so
// partitioned training is bit-identical to flat for any P, UMGAD_THREADS,
// and arena mode (pinned by tests/partition_oracle_test.cc).
//
// The partition is computed once per MultiplexGraph (the node set is
// shared by all R relations) and reused across relations x views x K
// masking repeats; per-repeat perturbed operators get the same schedule
// attached. PartitionedCsr additionally materialises per-block sub-CSRs
// with a block-local vertex remap — the on-disk/NUMA-shippable artifact
// (and the source of the replication / working-set stats reported by
// bench_partition).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "graph/multiplex_graph.h"
#include "graph/partition/partition_options.h"
#include "tensor/sparse.h"

namespace umgad {

/// Quality metrics of the streaming edge partition a VertexPartition was
/// derived from, plus the derived row ownership's balance.
struct PartitionStats {
  int num_blocks = 0;
  /// Stored CSR entries streamed across all relations.
  int64_t total_edges = 0;
  /// Mean over non-isolated vertices of the number of distinct blocks
  /// their incident entries landed in (1 = perfectly local edge
  /// partition; DBH typically sits well above HDRF here).
  double replication_factor = 0.0;
  /// Max block edge load / mean block edge load (1 = perfectly balanced).
  double edge_balance = 0.0;
  /// Max owned rows per block / mean owned rows per block.
  double row_balance = 0.0;
  int64_t max_block_edges = 0;
};

/// A whole-graph vertex partition: the RowBlocks schedule the tensor layer
/// iterates (shared across all relations, views, and masking repeats) plus
/// the stats of the edge partition it was derived from.
struct VertexPartition {
  std::shared_ptr<const RowBlocks> blocks;
  PartitionStats stats;
};

/// Partition `graph`'s vertex set into options.num_blocks blocks with the
/// selected streaming heuristic. Deterministic: one serial pass over the
/// relations' CSR entries in (relation, row, column) order. Errors on a
/// non-positive or absurd block count (io_limits::kMaxPartitions) or when
/// the vertices x blocks bookkeeping would overflow.
Result<VertexPartition> PartitionGraph(const MultiplexGraph& graph,
                                       const PartitionOptions& options);

/// Per-block materialisation of one relation's CSR under a RowBlocks
/// ownership: each block carries its owned rows as a compact sub-CSR whose
/// columns are remapped to block-local vertex ids (owned vertices first,
/// then replicated ghosts, both ascending in global id). This is the
/// shippable per-block artifact; the training kernels themselves iterate
/// the original CSR through the RowBlocks schedule, which is what keeps
/// them bit-identical to the flat engine.
struct PartitionedCsr {
  struct Block {
    /// Global ids of the rows this block owns, ascending.
    std::vector<int> rows;
    /// Local CSR over `rows`: row_ptr.size() == rows.size() + 1.
    std::vector<int64_t> row_ptr;
    /// Block-local vertex ids (indices into `locals`).
    std::vector<int> col_idx;
    std::vector<float> values;
    /// Block-local id -> global vertex id. The first `num_owned` entries
    /// are the block's owned vertices; the rest are ghosts replicated
    /// from other blocks. Each span is ascending in global id.
    std::vector<int> locals;
    int num_owned = 0;
  };
  std::vector<Block> blocks;
  /// Sum over blocks of locals.size() / num vertices: the vertex
  /// replication factor of the materialised sub-CSRs, ghosts included.
  double replication_factor = 0.0;

  /// Feature-row bytes the largest block touches during an SpMM at
  /// feature width `feature_dim` — the per-worker working set the blocks
  /// are sized to keep cache-resident.
  int64_t MaxWorkingSetBytes(int feature_dim) const;
};

/// Materialise `adj` (square, rows == blocks->block_of.size()) into
/// per-block sub-CSRs under `blocks`. Errors when the schedule does not
/// cover the matrix.
Result<PartitionedCsr> BuildPartitionedCsr(const SparseMatrix& adj,
                                           const RowBlocks& blocks);

/// Effective block count: `configured` when > 0, else the UMGAD_PARTITIONS
/// environment variable, else 0. A result <= 1 means "run flat" (0) or
/// "single-block partitioned path" (1); negative or unparsable inputs
/// resolve to 0.
int ResolvePartitionCount(int configured);

/// Effective method: the UMGAD_PARTITION_METHOD environment variable
/// ("dbh" | "hdrf") when set and valid, else `configured`. The method is
/// perf-only — results are bit-identical either way — so the env override
/// always wins, making sweeps cheap.
PartitionMethod ResolvePartitionMethod(PartitionMethod configured);

/// Printable method name ("dbh" / "hdrf").
const char* PartitionMethodName(PartitionMethod method);

}  // namespace umgad

#endif  // UMGAD_GRAPH_PARTITION_PARTITIONER_H_
