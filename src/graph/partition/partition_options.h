#ifndef UMGAD_GRAPH_PARTITION_PARTITION_OPTIONS_H_
#define UMGAD_GRAPH_PARTITION_PARTITION_OPTIONS_H_

#include <cstdint>

namespace umgad {

/// Streaming edge-partitioner family (src/graph/partition/partitioner.h).
/// Both are one-pass heuristics from the edge-partitioning literature:
///
///   kDbh   degree-based hashing — assign each edge by hashing its
///          lower-degree endpoint. Cheap, well balanced, no locality
///          objective (hubs are replicated, everything else scatters).
///   kHdrf  high-degree-replicated-first — greedy score combining a
///          replication term (prefer blocks that already host an
///          endpoint, weighted toward replicating the *higher*-degree
///          one) with a balance term. Produces community-coherent
///          blocks, which is what the cache-blocked training schedule
///          actually profits from.
///
/// The choice never changes training results — a partition is only an
/// iteration schedule (tensor/sparse.h RowBlocks) — it changes cache
/// behaviour and the replication stats.
enum class PartitionMethod { kDbh, kHdrf };

/// Knobs for PartitionGraph. Kept header-light so core/config.h can embed
/// them without dragging graph headers everywhere.
struct PartitionOptions {
  /// Number of cache-sized blocks P. 1 is a valid degenerate partition
  /// (everything in block 0); the flat/unpartitioned engine is selected
  /// one level up by not attaching a schedule at all.
  int num_blocks = 1;
  PartitionMethod method = PartitionMethod::kDbh;
  /// HDRF balance weight (lambda of the HDRF score; larger pushes edges
  /// harder toward under-full blocks at the cost of locality).
  double hdrf_lambda = 1.1;
  /// Salt for the DBH vertex hash.
  uint64_t seed = 0;
};

}  // namespace umgad

#endif  // UMGAD_GRAPH_PARTITION_PARTITION_OPTIONS_H_
