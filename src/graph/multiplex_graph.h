#ifndef UMGAD_GRAPH_MULTIPLEX_GRAPH_H_
#define UMGAD_GRAPH_MULTIPLEX_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace umgad {

/// A multiplex heterogeneous graph (Definition 1): one node set with shared
/// attributes, and R relational layers over that node set. Layers are
/// undirected simple graphs stored as symmetric CSR adjacency matrices.
///
/// `labels` is the evaluation ground truth (1 = anomalous, 0 = normal); it
/// is never consumed by detectors — only by metrics and by the Table V
/// "ground-truth leakage" thresholding protocol.
/// How much layer-content validation MultiplexGraph::Create performs beyond
/// the shape, relation-name, and label checks (those always run).
enum class LayerChecks {
  /// Verify every layer is symmetric (an O(nnz) merge over each layer's
  /// pattern). The default for graphs assembled in-process or parsed from
  /// human-editable formats.
  kFull,
  /// Trust symmetry. For the .umgb readers: SaveGraphBinary only serialises
  /// graphs that passed kFull, and both binary readers re-validate every
  /// element-level CSR invariant memory safety depends on (section bounds,
  /// row_ptr monotonicity, column range/ordering) — so a hand-corrupted
  /// file can at worst yield an asymmetric graph (wrong scores), never an
  /// unsafe one. Skipping the re-check keeps the load cost proportional to
  /// the bytes actually validated, which is what makes the mmap path fast.
  kTrustSymmetry,
};

class MultiplexGraph {
 public:
  MultiplexGraph() = default;

  /// Validating factory: checks layer shapes, symmetry of each layer (per
  /// `checks`), and attribute/label dimensions.
  static Result<MultiplexGraph> Create(std::string name, Tensor attributes,
                                       std::vector<SparseMatrix> layers,
                                       std::vector<std::string> relation_names,
                                       std::vector<int> labels = {},
                                       LayerChecks checks = LayerChecks::kFull);

  const std::string& name() const { return name_; }
  int num_nodes() const { return attributes_.rows(); }
  int num_relations() const { return static_cast<int>(layers_.size()); }
  int feature_dim() const { return attributes_.cols(); }

  const Tensor& attributes() const { return attributes_; }
  /// Mutable attribute access is copy-on-write: an mmap-loaded graph views
  /// the read-only mapped section until the first mutable request, which
  /// materialises an owned copy (so injection/perturbation work on mapped
  /// graphs without ever writing through the mapping).
  Tensor& mutable_attributes() {
    attributes_.EnsureOwned();
    return attributes_;
  }

  const SparseMatrix& layer(int r) const {
    UMGAD_CHECK(r >= 0 && r < num_relations());
    return layers_[r];
  }
  const std::vector<SparseMatrix>& layers() const { return layers_; }
  void set_layer(int r, SparseMatrix layer) {
    UMGAD_CHECK(r >= 0 && r < num_relations());
    layers_[r] = std::move(layer);
  }

  const std::string& relation_name(int r) const {
    UMGAD_CHECK(r >= 0 && r < num_relations());
    return relation_names_[r];
  }

  /// Undirected edge count of layer r (stored entries / 2, self loops
  /// counted once).
  int64_t num_edges(int r) const;
  int64_t total_edges() const;

  bool has_labels() const { return !labels_.empty(); }
  const std::vector<int>& labels() const { return labels_; }
  std::vector<int>& mutable_labels() { return labels_; }
  int num_anomalies() const;

  /// One-line summary for logs: name, |V|, R, per-layer |E|, #anomalies.
  std::string Summary() const;

 private:
  std::string name_;
  Tensor attributes_;
  std::vector<SparseMatrix> layers_;
  std::vector<std::string> relation_names_;
  std::vector<int> labels_;
};

}  // namespace umgad

#endif  // UMGAD_GRAPH_MULTIPLEX_GRAPH_H_
